// Benchmarks that regenerate the paper's evaluation: one benchmark per
// table and figure (reporting the headline numbers as custom metrics), plus
// micro-benchmarks of the core data structures and the ablation sweeps
// called out in DESIGN.md §5.
//
// The experiment benchmarks share one cached Runner, so the first benchmark
// to touch a (workload, scheme) pair pays for the simulation and the rest
// reuse it. Set LVM_BENCH_SCALE=quick for a fast pass.
package lvm_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"lvm"
	"lvm/internal/blake2b"
	"lvm/internal/core"
	"lvm/internal/experiments"
	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/sim"
	"lvm/internal/workload"
)

var (
	runnerOnce sync.Once
	benchR     *experiments.Runner
)

func runner() *experiments.Runner {
	runnerOnce.Do(func() {
		cfg := experiments.Default()
		if os.Getenv("LVM_BENCH_SCALE") == "quick" {
			cfg = experiments.Quick()
		}
		benchR = experiments.NewRunner(cfg)
	})
	return benchR
}

// --- Figure/table regeneration benchmarks -----------------------------------

func BenchmarkFig2GapCoverage(b *testing.B) {
	r := runner()
	var min float64
	for i := 0; i < b.N; i++ {
		res, err := r.Fig2GapCoverage()
		if err != nil {
			b.Fatal(err)
		}
		min = res.Min
	}
	b.ReportMetric(100*min, "min-coverage-%")
}

func BenchmarkFig3Contiguity(b *testing.B) {
	r := runner()
	var at256K, at256M float64
	for i := 0; i < b.N; i++ {
		res, err := r.Fig3Contiguity()
		if err != nil {
			b.Fatal(err)
		}
		at256K, at256M = res.Fraction[256<<10], res.Fraction[256<<20]
	}
	b.ReportMetric(100*at256K, "contig-256KB-%")
	b.ReportMetric(100*at256M, "contig-256MB-%")
}

func BenchmarkFig9Speedup(b *testing.B) {
	r := runner()
	var res experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Fig9Speedups()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(res.AvgLVM4K-1), "lvm-4K-speedup-%")
	b.ReportMetric(100*(res.AvgLVMTHP-1), "lvm-THP-speedup-%")
	b.ReportMetric(100*(res.AvgECPT4K-1), "ecpt-4K-speedup-%")
	b.ReportMetric(100*(res.AvgIdeal4K-1), "ideal-4K-speedup-%")
}

func BenchmarkFig10MMUOverhead(b *testing.B) {
	r := runner()
	var res experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Fig10MMUOverhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(1-res.AvgLVM4K), "lvm-mmu-reduction-4K-%")
	b.ReportMetric(100*(1-res.AvgLVMTHP), "lvm-mmu-reduction-THP-%")
	b.ReportMetric(100*res.LVMWalkReduction4K, "lvm-walkcyc-reduction-4K-%")
	b.ReportMetric(100*res.ECPTWalkReduction4K, "ecpt-walkcyc-reduction-4K-%")
}

func BenchmarkFig11WalkTraffic(b *testing.B) {
	r := runner()
	var res experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Fig11WalkTraffic()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AvgLVM4K, "lvm-traffic-vs-radix-4K")
	b.ReportMetric(res.AvgECPT4K, "ecpt-traffic-vs-radix-4K")
	b.ReportMetric(res.AvgLVMTHP, "lvm-traffic-vs-radix-THP")
	b.ReportMetric(res.AvgECPTTHP, "ecpt-traffic-vs-radix-THP")
	b.ReportMetric(res.LVMvsIdeal, "lvm-traffic-vs-ideal")
}

func BenchmarkFig12CacheMPKI(b *testing.B) {
	r := runner()
	var res experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Fig12CacheMPKI()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AvgLVML2, "lvm-L2-mpki-vs-radix")
	b.ReportMetric(res.AvgLVML3, "lvm-L3-mpki-vs-radix")
	b.ReportMetric(res.AvgECPTL2, "ecpt-L2-mpki-vs-radix")
	b.ReportMetric(res.AvgECPTL3, "ecpt-L3-mpki-vs-radix")
}

func BenchmarkTable2IndexSize(b *testing.B) {
	r := runner()
	var res experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.Table2IndexSize()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum4K, n float64
	for _, s := range res.Size4K {
		sum4K += float64(s)
		n++
	}
	b.ReportMetric(sum4K/n, "avg-index-bytes-4K")
	// Scaling claim: max index size across memcached footprints.
	maxScale := 0.0
	for _, s := range res.ScalingSizes {
		if float64(s) > maxScale {
			maxScale = float64(s)
		}
	}
	b.ReportMetric(maxScale, "mem$-scaling-max-bytes")
}

func BenchmarkCollisionRates(b *testing.B) {
	r := runner()
	var res experiments.CollisionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.CollisionRates()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.AvgLVM4K, "lvm-collisions-4K-%")
	b.ReportMetric(100*res.AvgLVMTHP, "lvm-collisions-THP-%")
	b.ReportMetric(100*res.AvgHash4K, "blake2-collisions-4K-%")
	b.ReportMetric(res.AvgExtraPerColl, "extra-accesses-per-collision")
}

func BenchmarkRetrainStats(b *testing.B) {
	r := runner()
	var res experiments.RetrainResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.RetrainStats()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Max), "max-retrain-events")
	b.ReportMetric(res.Avg, "avg-retrain-events")
	b.ReportMetric(100*res.AvgMgmt, "mgmt-overhead-%")
}

func BenchmarkMemoryOverhead(b *testing.B) {
	r := runner()
	var res experiments.MemoryOverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.MemoryOverhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	var lvmSum, ecptSum float64
	for name := range res.LVM {
		lvmSum += float64(res.LVM[name])
		ecptSum += float64(res.ECPT[name])
	}
	b.ReportMetric(lvmSum/(1<<20), "lvm-overhead-MB-total")
	b.ReportMetric(ecptSum/(1<<20), "ecpt-overhead-MB-total")
}

func BenchmarkFragmentationRobustness(b *testing.B) {
	r := runner()
	var res experiments.FragmentationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.FragmentationRobustness()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(res.Speedups["fresh"]-1), "speedup-fresh-%")
	b.ReportMetric(100*(res.Speedups["cap 256KB"]-1), "speedup-256KB-cap-%")
	b.ReportMetric(100*(res.Speedups["FMFI 0.9"]-1), "speedup-FMFI0.9-%")
	b.ReportMetric(100*res.LWCHits["cap 256KB"], "lwc-hit-256KB-cap-%")
}

func BenchmarkWalkCacheMissRates(b *testing.B) {
	r := runner()
	var res experiments.WalkCacheResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.WalkCacheMissRates()
		if err != nil {
			b.Fatal(err)
		}
	}
	var tlbSum, pdeSum, lwcSum, n float64
	for name := range res.L2TLBMiss {
		tlbSum += res.L2TLBMiss[name]
		pdeSum += res.PWCPDEMiss[name]
		lwcSum += res.LWCHit[name]
		n++
	}
	b.ReportMetric(100*tlbSum/n, "avg-L2TLB-miss-%")
	b.ReportMetric(100*pdeSum/n, "avg-radix-PDE-miss-%")
	b.ReportMetric(100*lwcSum/n, "avg-LWC-hit-%")
}

func BenchmarkPTWL1Connection(b *testing.B) {
	r := runner()
	var res experiments.PTWL1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.PTWL1Connection()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(res.SpeedupL1-1), "lvm-speedup-PTW-L1-%")
	b.ReportMetric(100*(res.SpeedupL2-1), "lvm-speedup-PTW-L2-%")
	b.ReportMetric(100*res.RadixL1MPKIIncrease, "radix-L1-mpki-increase-%")
	b.ReportMetric(100*res.LVML1MPKIIncrease, "lvm-L1-mpki-increase-%")
}

func BenchmarkMultiTenancy(b *testing.B) {
	r := runner()
	var res experiments.MultiTenancyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.MultiTenancy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.MaxDelta, "max-speedup-delta-%")
}

func BenchmarkTailLatency(b *testing.B) {
	r := runner()
	var res experiments.TailLatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.TailLatency()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.StaticP99, "p99-static-cycles")
	b.ReportMetric(res.ChurnP99, "p99-churn-cycles")
	b.ReportMetric(float64(res.ChurnOps), "churn-ops")
}

func BenchmarkHardwareArea(b *testing.B) {
	r := runner()
	var res experiments.HardwareResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.HardwareArea()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cmp.SizeX, "size-improvement-x")
	b.ReportMetric(res.Cmp.AreaX, "area-improvement-x")
	b.ReportMetric(res.Cmp.PowerX, "power-improvement-x")
	b.ReportMetric(res.Cmp.WalkerMM*1e6, "walker-um2")
}

func BenchmarkPriorWork(b *testing.B) {
	r := runner()
	var res experiments.PriorWorkResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.PriorWork()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(res.LVM-1), "lvm-speedup-%")
	b.ReportMetric(100*(res.ASAP-1), "asap-speedup-%")
	b.ReportMetric(100*(res.Midgard-1), "midgard-speedup-%")
	b.ReportMetric(100*(res.FPT-1), "fpt-speedup-%")
	b.ReportMetric(100*(res.FPTFragmented-1), "fpt-fragmented-speedup-%")
}

// --- Micro-benchmarks of the core structures --------------------------------

func benchIndex(b *testing.B, keys int) (*core.Index, []lvm.VPN) {
	b.Helper()
	mem := phys.New(1 << 30)
	ms := make([]core.Mapping, keys)
	for i := range ms {
		ms[i] = core.Mapping{VPN: lvm.VPN(0x1000 + i), Entry: pte.New(lvm.PPN(i+1), lvm.Page4K)}
	}
	ix, err := core.Build(mem, ms, core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	vpns := make([]lvm.VPN, keys)
	for i := range vpns {
		vpns[i] = lvm.VPN(0x1000 + (i*2654435761)%keys)
	}
	return ix, vpns
}

func BenchmarkIndexWalk(b *testing.B) {
	ix, vpns := benchIndex(b, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := ix.Walk(vpns[i%len(vpns)]); !r.Found {
			b.Fatal("miss")
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	ms := make([]core.Mapping, 1<<16)
	for i := range ms {
		ms[i] = core.Mapping{VPN: lvm.VPN(0x1000 + i), Entry: pte.New(lvm.PPN(i+1), lvm.Page4K)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := phys.New(1 << 30)
		ix, err := core.Build(mem, ms, core.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		ix.Release()
	}
}

func BenchmarkIndexInsertSequential(b *testing.B) {
	mem := phys.New(2 << 30)
	ms := []core.Mapping{{VPN: 0x1000, Entry: pte.New(1, lvm.Page4K)}}
	ix, err := core.Build(mem, ms, core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.Mapping{VPN: lvm.VPN(0x1001 + i), Entry: pte.New(lvm.PPN(i+2), lvm.Page4K)}
		if err := ix.Insert(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRadixWalk(b *testing.B) {
	mem := phys.New(1 << 30)
	sys := oskernel.NewSystem(mem, oskernel.SchemeRadix)
	cfg := lvm.DefaultLayout()
	cfg.HeapPages = 1 << 16
	cfg.MmapRegions = 1
	cfg.MmapPages = 1024
	space := lvm.GenerateAddressSpace(cfg, 3)
	if _, err := sys.Launch(1, space, false); err != nil {
		b.Fatal(err)
	}
	heap := space.Regions[0]
	for _, r := range space.Regions {
		if r.Kind == "heap" {
			heap = r
		}
	}
	w := sys.Walker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := heap.Mapped[(i*2654435761)%len(heap.Mapped)]
		if out := w.Walk(1, v); !out.Found {
			b.Fatal("miss")
		}
	}
}

// BenchmarkBlake2Sum64 measures the hash the ECPT baseline and the §7.3
// hash-table comparison pay per probe.
func BenchmarkBlake2Sum64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= blake2b.Sum64(uint64(i))
	}
	_ = acc
}

// --- Ablation sweeps (DESIGN.md §5) -----------------------------------------

func ablationSpace(n int) []core.Mapping {
	ms := make([]core.Mapping, 0, n)
	// Multi-segment space with holes: enough irregularity for parameters
	// to matter.
	segs := []struct {
		base lvm.VPN
		n    int
	}{{0x400, n / 4}, {0x40000, n / 2}, {0x90000, n / 4}}
	ppn := lvm.PPN(1)
	for _, s := range segs {
		for i := 0; i < s.n; i++ {
			if i%17 == 5 {
				continue // holes
			}
			ms = append(ms, core.Mapping{VPN: s.base + lvm.VPN(i), Entry: pte.New(ppn, lvm.Page4K)})
			ppn++
		}
	}
	return ms
}

func measureIndex(b *testing.B, p core.Params) (indexBytes int, collisionPct float64) {
	ms := ablationSpace(1 << 16)
	mem := phys.New(1 << 30)
	ix, err := core.Build(mem, ms, p)
	if err != nil {
		b.Fatal(err)
	}
	coll := 0
	for i := 0; i < len(ms); i += 7 {
		if r := ix.Walk(ms[i].VPN); r.PTEAccesses > 1 {
			coll++
		}
	}
	return ix.SizeBytes(), 100 * float64(coll) / float64(len(ms)/7)
}

func BenchmarkAblationGAScale(b *testing.B) {
	for _, ga := range []float64{1.0, 1.1, 1.3, 1.6, 2.0} {
		b.Run(formatF(ga), func(b *testing.B) {
			p := core.DefaultParams()
			p.GAScale = ga
			var size int
			var coll float64
			for i := 0; i < b.N; i++ {
				size, coll = measureIndex(b, p)
			}
			b.ReportMetric(float64(size), "index-bytes")
			b.ReportMetric(coll, "collisions-%")
		})
	}
}

func BenchmarkAblationDLimit(b *testing.B) {
	for _, d := range []int{1, 2, 3, 4, 5} {
		b.Run(formatI(d), func(b *testing.B) {
			p := core.DefaultParams()
			p.DLimit = d
			var size int
			var coll float64
			for i := 0; i < b.N; i++ {
				size, coll = measureIndex(b, p)
			}
			b.ReportMetric(float64(size), "index-bytes")
			b.ReportMetric(coll, "collisions-%")
		})
	}
}

func BenchmarkAblationX3(b *testing.B) {
	for _, x3 := range []float64{20, 200, 2000} {
		b.Run(formatF(x3), func(b *testing.B) {
			p := core.DefaultParams()
			p.X3 = x3
			var size int
			var coll float64
			for i := 0; i < b.N; i++ {
				size, coll = measureIndex(b, p)
			}
			b.ReportMetric(float64(size), "index-bytes")
			b.ReportMetric(coll, "collisions-%")
		})
	}
}

func BenchmarkAblationMinInsertDistance(b *testing.B) {
	for _, distMB := range []uint64{0, 4, 64, 256} {
		b.Run(formatI(int(distMB)), func(b *testing.B) {
			p := core.DefaultParams()
			p.MinInsertDistance = distMB << 20 >> 12
			var events uint64
			for i := 0; i < b.N; i++ {
				mem := phys.New(1 << 30)
				ms := []core.Mapping{{VPN: 0x1000, Entry: pte.New(1, lvm.Page4K)}}
				ix, err := core.Build(mem, ms, p)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 50000; j++ {
					m := core.Mapping{VPN: lvm.VPN(0x1001 + j), Entry: pte.New(lvm.PPN(j+2), lvm.Page4K)}
					if err := ix.Insert(m); err != nil {
						b.Fatal(err)
					}
				}
				s := ix.Stats()
				events = s.Retrains + s.Rebuilds + s.EdgeExpansions
				ix.Release()
			}
			b.ReportMetric(float64(events), "maintenance-events")
		})
	}
}

func BenchmarkAblationLWCSize(b *testing.B) {
	for _, entries := range []int{4, 8, 16, 32, 64} {
		b.Run(formatI(entries), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				w, err := workload.Build("bfs", workload.QuickParams())
				if err != nil {
					b.Fatal(err)
				}
				mem := phys.New(1 << 30)
				sys := oskernel.NewSystemHW(mem, oskernel.SchemeLVM,
					oskernel.HWConfig{PWCEntriesPerLevel: 32, LWCEntries: entries})
				if _, err := sys.Launch(1, w.Space, false); err != nil {
					b.Fatal(err)
				}
				cpu := sim.New(sim.ScaledConfig(), sys.Walker())
				cpu.Run(1, w)
				hit = sys.LVMWalker().LWC().HitRate()
			}
			b.ReportMetric(100*hit, "lwc-hit-%")
		})
	}
}

func formatF(f float64) string { return fmt.Sprintf("v%g", f) }
func formatI(i int) string     { return fmt.Sprintf("v%d", i) }
