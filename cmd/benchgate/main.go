// Command benchgate is the benchmark regression gate: it diffs a current
// lvmbench -json document against a committed baseline. Counters — every
// integer metric — must match exactly (simulated results are bit-for-bit
// deterministic); gauges are compared with a tiny relative tolerance that
// only absorbs float-formatting differences; host wall-clock fields get a
// generous tripwire factor, because they measure the machine, not the
// simulator.
//
// Usage:
//
//	benchgate -baseline bench_baseline.json -current out.json
//
// Exit status 0 means no regression; 1 prints every difference found.
// Refresh the baseline by regenerating it (see EXPERIMENTS.md) whenever a
// simulator change intentionally shifts the numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"lvm/internal/experiments"
)

func main() {
	def := experiments.DefaultGateOptions()
	baseline := flag.String("baseline", "bench_baseline.json", "committed baseline JSON")
	current := flag.String("current", "", "freshly generated lvmbench -json output")
	gaugeTol := flag.Float64("gauge-tol", def.GaugeRelTol, "relative tolerance for gauge (non-integer) metrics")
	hostFactor := flag.Float64("host-factor", def.HostFactor, "max allowed current/baseline wall-clock factor (0 ignores timings)")
	maxDiffs := flag.Int("max-diffs", def.MaxDiffs, "differences listed before truncating")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	if err := gate(*baseline, *current, experiments.GateOptions{
		GaugeRelTol: *gaugeTol,
		HostFactor:  *hostFactor,
		MaxDiffs:    *maxDiffs,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}

func gate(baselinePath, currentPath string, opt experiments.GateOptions) error {
	base, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	cur, err := os.ReadFile(currentPath)
	if err != nil {
		return err
	}
	return experiments.CompareRunsJSON(base, cur, opt)
}
