// Command fragstudy reproduces the Figure-3 physical-contiguity study: it
// ages a buddy allocator into datacenter-like fragmentation and reports the
// fraction of free memory immediately allocatable at each block size.
package main

import (
	"flag"
	"fmt"

	"lvm"
	"lvm/internal/phys"
)

func main() {
	memGB := flag.Uint64("mem", 2, "simulated memory size in GiB")
	seed := flag.Int64("seed", 42, "aging seed")
	fmfi := flag.Bool("fmfi", false, "also print the FMFI sweep levels of §7.3")
	flag.Parse()

	mem := lvm.NewPhysicalMemory(*memGB << 30)
	mem.Fragment(*seed, phys.DatacenterFragmentation)

	fmt.Printf("aged server: %.1f%% of memory free, FMFI(2MB)=%.2f\n\n",
		100*float64(mem.FreePages())/float64(mem.TotalPages()), mem.FMFI(9))
	fmt.Printf("%-10s %s\n", "block", "fraction of free memory contiguously allocatable")
	for _, o := range []int{0, 2, 4, 6, 8, 9, 11, 13, 16, 18} {
		size := phys.BlockBytes(o)
		label := fmt.Sprintf("%dKB", size>>10)
		if size >= 1<<20 {
			label = fmt.Sprintf("%dMB", size>>20)
		}
		if size >= 1<<30 {
			label = fmt.Sprintf("%dGB", size>>30)
		}
		fmt.Printf("%-10s %6.1f%%\n", label, 100*mem.ContiguousFreeFraction(o))
	}

	if *fmfi {
		fmt.Println("\nFMFI sweep (§7.3):")
		for _, target := range []float64{0.8, 0.85, 0.9} {
			m := lvm.NewPhysicalMemory(*memGB << 30)
			m.FragmentToFMFI(*seed, 9, target)
			fmt.Printf("target %.2f -> achieved FMFI(2MB) %.3f, 256KB contiguity %.1f%%\n",
				target, m.FMFI(9), 100*m.ContiguousFreeFraction(6))
		}
	}
}
