// Command lvmbench regenerates every table and figure of the paper's
// evaluation (§7) and prints them in order. This is the reproduction's
// headline artifact: run it and compare against EXPERIMENTS.md.
//
// The pipeline is plan/execute: the selected experiments declare the
// simulations they need, the scheduler dedupes that run matrix and
// executes it on -j workers under a memory budget, and the tables are
// rendered afterwards in registry order. Tables go to stdout and are
// bit-for-bit identical at any -j; progress and timings go to stderr.
//
// Usage:
//
//	lvmbench              # full scale (several minutes)
//	lvmbench -quick       # reduced scale (seconds)
//	lvmbench -only fig9,table2
//	lvmbench -j 8 -mem 64 # 8 workers under a 64 GiB simulated-memory budget
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"lvm/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workload scale")
	only := flag.String("only", "", "comma-separated experiment keys: fig2, fig3, fig9, fig10, fig11, fig12, table2, collisions, retrain, memory, fragmentation, walkcaches, ptwl1, multitenancy, tail, hardware, priorwork")
	workers := flag.Int("j", runtime.NumCPU(), "simulation worker goroutines")
	memGiB := flag.Uint64("mem", 0, "memory budget in GiB bounding the summed simulated footprint of in-flight runs (0 = default 32)")
	flag.Parse()

	if err := run(*quick, *only, *workers, *memGiB); err != nil {
		fmt.Fprintf(os.Stderr, "lvmbench: %v\n", err)
		os.Exit(1)
	}
}

func run(quick bool, only string, workers int, memGiB uint64) error {
	cfg := experiments.Default()
	if quick {
		cfg = experiments.Quick()
	}

	var keys []string
	if only != "" {
		keys = strings.Split(only, ",")
	}
	exps, err := experiments.Select(keys...)
	if err != nil {
		return err
	}

	r := experiments.NewRunner(cfg)
	r.SetSink(experiments.NewWriterSink(os.Stderr))
	plan := experiments.NewPlan(cfg, exps)
	fmt.Fprintf(os.Stderr, "plan: %d experiments, %d deduped runs, %d workers\n",
		len(plan.Experiments), len(plan.Runs), workers)

	results, err := r.ExecutePlan(plan, experiments.ExecOptions{
		Workers:        workers,
		MemBudgetBytes: memGiB << 30,
	})
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Print(res.Render())
	}
	return nil
}
