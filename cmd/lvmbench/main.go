// Command lvmbench regenerates every table and figure of the paper's
// evaluation (§7) and prints them in order. This is the reproduction's
// headline artifact: run it and compare against EXPERIMENTS.md.
//
// Usage:
//
//	lvmbench              # full scale (several minutes)
//	lvmbench -quick       # reduced scale (seconds)
//	lvmbench -only fig9   # one experiment
package main

import (
	"flag"
	"fmt"
	"strings"

	"lvm"
	"lvm/internal/wallclock"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workload scale")
	only := flag.String("only", "", "run one experiment: fig2, fig3, fig9, fig10, fig11, fig12, table2, collisions, retrain, memory, fragmentation, walkcaches, ptwl1, multitenancy, tail, hardware, priorwork")
	flag.Parse()

	cfg := lvm.DefaultExperiments()
	if *quick {
		cfg = lvm.QuickExperiments()
	}
	r := lvm.NewExperiments(cfg)

	type experiment struct {
		key, title string
		run        func()
	}
	exps := []experiment{
		{"fig2", "Figure 2: virtual memory gap coverage (paper: min 78%)", func() {
			res := r.Fig2GapCoverage()
			fmt.Print(res.Table)
			fmt.Printf("minimum coverage: %.1f%%\n", 100*res.Min)
		}},
		{"fig3", "Figure 3: contiguous free memory on an aged server (paper: ~30% at 256KB, ~0 at 100s of MB)", func() {
			fmt.Print(r.Fig3Contiguity().Table)
		}},
		{"fig9", "Figure 9: end-to-end speedups vs radix (paper: LVM avg +14% 4KB / +7% THP, within 1% of ideal)", func() {
			res := r.Fig9Speedups()
			fmt.Print(res.Table)
		}},
		{"fig10", "Figure 10: MMU overhead vs radix (paper: LVM -39% 4KB / -29% THP; walk cycles -52%/-44%)", func() {
			res := r.Fig10MMUOverhead()
			fmt.Print(res.Table)
			fmt.Printf("LVM walk-cycle reduction: %.1f%% (4KB), %.1f%% (THP); ECPT: %.1f%%, %.1f%%\n",
				100*res.LVMWalkReduction4K, 100*res.LVMWalkReductionTHP,
				100*res.ECPTWalkReduction4K, 100*res.ECPTWalkReductionTHP)
		}},
		{"fig11", "Figure 11: page walk traffic vs radix (paper: LVM -43%/-34%; ECPT 1.7x/2.1x)", func() {
			res := r.Fig11WalkTraffic()
			fmt.Print(res.Table)
			fmt.Printf("averages: LVM %.2fx / %.2fx, ECPT %.2fx / %.2fx; LVM vs ideal %.3fx\n",
				res.AvgLVM4K, res.AvgLVMTHP, res.AvgECPT4K, res.AvgECPTTHP, res.LVMvsIdeal)
		}},
		{"fig12", "Figure 12: cache MPKI vs radix (paper: LVM within ~1%; ECPT +44% L2 / +40% L3)", func() {
			res := r.Fig12CacheMPKI()
			fmt.Print(res.Table)
			fmt.Printf("averages: LVM L2 %.3f L3 %.3f; ECPT L2 %.3f L3 %.3f\n",
				res.AvgLVML2, res.AvgLVML3, res.AvgECPTL2, res.AvgECPTL3)
		}},
		{"table2", "Table 2: learned index size (paper: 96-192B steady state, footprint-independent)", func() {
			fmt.Print(r.Table2IndexSize().Table)
		}},
		{"collisions", "§7.3 collision rates (paper: LVM 0.2%/0.6%; Blake2 hash 22%/19%; 2.36 extra accesses/collision)", func() {
			res := r.CollisionRates()
			fmt.Print(res.Table)
			fmt.Printf("averages: LVM %.2f%%/%.2f%%, hash %.1f%%/%.1f%%, extra/coll %.2f\n",
				100*res.AvgLVM4K, 100*res.AvgLVMTHP, 100*res.AvgHash4K, 100*res.AvgHashTHP, res.AvgExtraPerColl)
		}},
		{"retrain", "§7.3 retraining (paper: at most 3 events, avg 2; mgmt 1.17% avg / 1.91% peak, THP <0.01%)", func() {
			res := r.RetrainStats()
			fmt.Print(res.Table)
			fmt.Printf("max events %d, avg %.1f, avg mgmt %.2f%%\n", res.Max, res.Avg, 100*res.AvgMgmt)
		}},
		{"memory", "§7.3 memory consumption beyond 8B/translation (paper: LVM < ECPT)", func() {
			fmt.Print(r.MemoryOverhead().Table)
		}},
		{"fragmentation", "§7.3 fragmentation robustness (paper: performance flat, LWC hit >99%)", func() {
			fmt.Print(r.FragmentationRobustness().Table)
		}},
		{"walkcaches", "§7.2 TLB/PWC/LWC rates (paper: L2 TLB miss 57-99%, PDE miss 60-99%, LWC hit >99%)", func() {
			fmt.Print(r.WalkCacheMissRates().Table)
		}},
		{"ptwl1", "§7.2 PTW connected to L1 vs L2 (paper: +11% vs +14%; L1 MPKI +59% radix vs +38% LVM)", func() {
			fmt.Print(r.PTWL1Connection().Table)
		}},
		{"multitenancy", "§7.1 multi-tenancy (paper: speedups within 0.5% of solo)", func() {
			res := r.MultiTenancy()
			fmt.Print(res.Table)
			fmt.Printf("max delta: %.3f\n", res.MaxDelta)
		}},
		{"tail", "§7.3 memcached tail latency under LVM management churn (paper: p99 unaffected)", func() {
			fmt.Print(r.TailLatency().Table)
		}},
		{"hardware", "§7.4 hardware area/power (paper: 3.0x size, 1.5x area, 1.9x power; walker 0.000637mm²)", func() {
			fmt.Print(r.HardwareArea().Table)
		}},
		{"priorwork", "§7.5 ASAP / Midgard / FPT comparison", func() {
			fmt.Print(r.PriorWork().Table)
		}},
	}

	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.key) {
			continue
		}
		fmt.Printf("\n================================================================\n%s\n================================================================\n", e.title)
		// Host-time throughput readout only; simulated results never depend
		// on it (see internal/wallclock).
		sw := wallclock.Start()
		e.run()
		fmt.Printf("[%s in %.1fs]\n", e.key, sw.Seconds())
	}
}
