// Command lvmbench regenerates every table and figure of the paper's
// evaluation (§7) and prints them in order. This is the reproduction's
// headline artifact: run it and compare against EXPERIMENTS.md.
//
// The pipeline is plan/execute: the selected experiments declare the
// simulations they need, the scheduler dedupes that run matrix and
// executes it on -j workers under a memory budget, and the tables are
// rendered afterwards in registry order. Tables go to stdout and are
// bit-for-bit identical at any -j; progress and timings go to stderr.
//
// Usage:
//
//	lvmbench              # full scale (several minutes)
//	lvmbench -quick       # reduced scale (seconds)
//	lvmbench -only fig9,table2
//	lvmbench -j 8 -mem 64 # 8 workers under a 64 GiB simulated-memory budget
//	lvmbench -list        # print the plan (experiments + run matrix + costs), no execution
//	lvmbench -quick -json out.json            # also write per-run metrics JSON
//	lvmbench -quick -json out.json -timings   # include host wall-clock fields
//	lvmbench -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Scale-out sweeps split the execute phase across hosts and skip repeated
// work (see EXPERIMENTS.md "Sharding and caching sweeps"):
//
//	lvmbench -shard 0/2 -json part0.json      # this host's partition only
//	lvmbench -shard 1/2 -json part1.json      # another host's partition
//	lvmbench -merge part0.json,part1.json     # recombine: tables + optional -json
//	lvmbench -cache ~/.cache/lvmbench         # persist run outputs; warm reruns skip sims
//	lvmbench -shard 0/2 -list                 # show the cost-balanced assignment
//
// The orchestrator runs the same sweep across live worker processes
// instead of pre-partitioned shards (see EXPERIMENTS.md "Orchestrated
// sweeps"): the coordinator owns the plan and hands runs out cost-aware
// largest-first, idle workers steal from stragglers, failures retry on a
// different worker, and completed runs stream into -cache so an
// interrupted sweep resumes without re-simulating:
//
//	lvmbench -serve 127.0.0.1:7077 -cache dir -json out.json   # coordinator
//	lvmbench -worker 127.0.0.1:7077 -j 8                       # each worker host
//
// The -json document is schema-versioned and byte-identical at any -j
// (unless -timings adds the machine-dependent host_seconds fields); CI
// diffs it against the committed bench_baseline.json with cmd/benchgate.
// A merged document is byte-identical to an unsharded run's, and a warm
// -cache sweep re-simulates nothing while emitting identical bytes.
//
// The -cpuprofile/-memprofile flags capture pprof profiles of the whole
// sweep (see EXPERIMENTS.md "Profiling the hot path" for the workflow).
// Profiling does not perturb the simulated results — the gathered tables
// and -json output stay byte-identical.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"lvm/internal/experiments"
	"lvm/internal/experiments/orch"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workload scale")
	only := flag.String("only", "", "comma-separated experiment keys: "+strings.Join(experiments.Keys(), ", "))
	workers := flag.Int("j", runtime.NumCPU(), "simulation worker goroutines")
	memGiB := flag.Uint64("mem", 0, "memory budget in GiB bounding the summed simulated footprint of in-flight runs (0 = default 32)")
	list := flag.Bool("list", false, "print the selected experiments and deduped run matrix with estimated costs, then exit without executing")
	jsonPath := flag.String("json", "", "write per-run metrics as schema-versioned JSON to this path (with -shard: the partial shard document)")
	timings := flag.Bool("timings", false, "include host wall-clock fields in -json output (breaks byte-identity across invocations)")
	shard := flag.String("shard", "", "execute only shard i/n of the run matrix (deterministic cost-balanced partition) and write a partial document to -json")
	merge := flag.String("merge", "", "comma-separated shard documents to recombine; computes tables exactly as an unsharded run would")
	cacheDir := flag.String("cache", "", "persistent run-output cache directory; completed runs are stored there and warm sweeps skip their simulations")
	warmup := flag.Int("warmup", 0, "fast-forward the first N accesses of every run through functional state before measuring (changes measured counters; part of the run key and config fingerprint)")
	batch := flag.Int("batch", 0, "translation pipeline chunk size; pure performance knob, every value produces bit-identical output (0 = default, 1 = scalar path)")
	serve := flag.String("serve", "", "listen on this address as the sweep coordinator: dispatch the plan's runs to -worker processes, then render tables locally")
	worker := flag.String("worker", "", "connect to a coordinator at this address and execute assigned runs with -j local workers until the sweep shuts down")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile taken after the sweep to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvmbench: creating %s: %v\n", *cpuprofile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lvmbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvmbench: creating %s: %v\n", *memprofile, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lvmbench: writing heap profile: %v\n", err)
			os.Exit(1)
		}
	}()

	jExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "j" {
			jExplicit = true
		}
	})

	if err := run(options{
		quick:     *quick,
		only:      *only,
		workers:   *workers,
		jExplicit: jExplicit,
		memGiB:    *memGiB,
		list:      *list,
		jsonPath:  *jsonPath,
		timings:   *timings,
		shard:     *shard,
		merge:     *merge,
		cacheDir:  *cacheDir,
		warmup:    *warmup,
		batch:     *batch,
		serve:     *serve,
		worker:    *worker,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "lvmbench: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	quick     bool
	only      string
	workers   int
	jExplicit bool
	memGiB    uint64
	list      bool
	jsonPath  string
	timings   bool
	shard     string
	merge     string
	cacheDir  string
	warmup    int
	batch     int
	serve     string
	worker    string
}

func run(o options) error {
	if o.worker != "" {
		switch {
		case o.serve != "":
			return fmt.Errorf("-worker and -serve are mutually exclusive: a process is either a coordinator or a worker")
		case o.shard != "", o.merge != "", o.list:
			return fmt.Errorf("-worker takes its runs from the coordinator; -shard/-merge/-list do not apply")
		case o.jsonPath != "", o.cacheDir != "", o.only != "":
			return fmt.Errorf("-json/-cache/-only belong on the coordinator; the worker only executes assigned runs")
		}
		return runWorker(o)
	}
	if o.serve != "" && (o.shard != "" || o.merge != "" || o.list) {
		return fmt.Errorf("-serve owns the whole plan; -shard/-merge/-list do not apply")
	}

	if o.merge != "" {
		if o.shard != "" {
			return fmt.Errorf("-merge and -shard are mutually exclusive: shards execute, merge recombines")
		}
		if o.list {
			return fmt.Errorf("-merge and -list are mutually exclusive")
		}
		return runMerge(o)
	}

	cfg := experiments.Default()
	if o.quick {
		cfg = experiments.Quick()
	}
	cfg.Warmup = o.warmup
	cfg.Sim.BatchSize = o.batch

	var keys []string
	if o.only != "" {
		keys = strings.Split(o.only, ",")
	}
	exps, err := experiments.Select(keys...)
	if err != nil {
		return err
	}

	r := experiments.NewRunner(cfg)
	r.SetSink(experiments.NewWriterSink(os.Stderr))
	plan := experiments.NewPlan(cfg, exps)

	var spec experiments.ShardSpec
	if o.shard != "" {
		spec, err = experiments.ParseShard(o.shard)
		if err != nil {
			return err
		}
	}

	if o.list {
		return printPlan(r, plan, o, spec)
	}

	opt := experiments.ExecOptions{
		Workers:        o.workers,
		MemBudgetBytes: o.memGiB << 30,
		Shard:          spec,
	}
	if o.cacheDir != "" {
		opt.Cache, err = experiments.NewRunCache(o.cacheDir, cfg)
		if err != nil {
			return err
		}
	}

	if o.serve != "" {
		ln, err := net.Listen("tcp", o.serve)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		defer ln.Close() // Serve closes it too; this covers the fully-warm early return
		fmt.Fprintf(os.Stderr, "plan: %d experiments, %d deduped runs, serving on %s\n",
			len(plan.Experiments), len(plan.Runs), ln.Addr())
		if err := orch.Serve(ln, r, plan, orch.Options{Cache: opt.Cache}); err != nil {
			return err
		}
		// Every run is installed now; ExecutePlan below dispatches zero
		// simulations and renders the tables exactly as an unsharded run.
		results, err := r.ExecutePlan(plan, opt)
		if err != nil {
			return err
		}
		for _, res := range results {
			fmt.Print(res.Render())
		}
		return writeRunsJSON(r, plan, o)
	}

	if o.shard != "" {
		if o.jsonPath == "" {
			return fmt.Errorf("-shard requires -json: the partial document is the shard's only output")
		}
		fmt.Fprintf(os.Stderr, "plan: %d experiments, %d deduped runs, shard %s, %d workers\n",
			len(plan.Experiments), len(plan.Runs), spec, o.workers)
		if err := r.ExecuteRuns(plan, opt); err != nil {
			return err
		}
		b, err := r.ShardJSON(plan, keys, spec, experiments.RunJSONOptions{Timings: o.timings})
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, b, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", o.jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote shard %s to %s\n", spec, o.jsonPath)
		return nil
	}

	fmt.Fprintf(os.Stderr, "plan: %d experiments, %d deduped runs, %d workers\n",
		len(plan.Experiments), len(plan.Runs), o.workers)

	results, err := r.ExecutePlan(plan, opt)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Print(res.Render())
	}

	return writeRunsJSON(r, plan, o)
}

// runMerge recombines shard documents, computes every table over the
// merged run matrix (nothing re-executes: the documents carry all runs),
// and optionally re-emits the unsharded-identical -json document.
func runMerge(o options) error {
	var files []experiments.ShardFile
	for _, name := range strings.Split(o.merge, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, err := os.ReadFile(name)
		if err != nil {
			return fmt.Errorf("merge: reading %s: %w", name, err)
		}
		files = append(files, experiments.ShardFile{Name: name, Data: b})
	}
	r, plan, err := experiments.MergeShards(files)
	if err != nil {
		return err
	}
	r.SetSink(experiments.NewWriterSink(os.Stderr))
	fmt.Fprintf(os.Stderr, "merged %d shard(s): %d experiments, %d runs\n",
		len(files), len(plan.Experiments), len(plan.Runs))

	results, err := r.ExecutePlan(plan, experiments.ExecOptions{
		Workers:        o.workers,
		MemBudgetBytes: o.memGiB << 30,
	})
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Print(res.Render())
	}

	return writeRunsJSON(r, plan, o)
}

// runWorker connects to a coordinator and executes assigned runs until the
// sweep shuts down. The worker builds its config from the same scale flags
// as the coordinator (-quick/-warmup/-batch); the handshake's config
// fingerprint catches any mismatch before a single run is dispatched.
func runWorker(o options) error {
	cfg := experiments.Default()
	if o.quick {
		cfg = experiments.Quick()
	}
	cfg.Warmup = o.warmup
	cfg.Sim.BatchSize = o.batch
	fp, err := cfg.Fingerprint()
	if err != nil {
		return err
	}

	r := experiments.NewRunner(cfg)
	r.SetSink(experiments.NewWriterSink(os.Stderr))
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	w := &orch.Worker{
		Exec:        r.ExecuteKey,
		Fingerprint: fp,
		Name:        fmt.Sprintf("%s:%d", host, os.Getpid()),
		Capacity:    o.workers,
		BudgetBytes: o.memGiB << 30,
	}
	fmt.Fprintf(os.Stderr, "worker %s: connecting to %s (%d slots)\n", w.Name, o.worker, o.workers)
	return w.Run(o.worker)
}

func writeRunsJSON(r *experiments.Runner, plan experiments.Plan, o options) error {
	if o.jsonPath == "" {
		return nil
	}
	b, err := r.RunsJSON(plan, experiments.RunJSONOptions{Timings: o.timings})
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.jsonPath, b, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", o.jsonPath, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d runs to %s\n", len(plan.Runs), o.jsonPath)
	return nil
}

// printPlan renders the plan phase without executing or building anything:
// the selected experiments in registry order and the deduped run matrix in
// plan (first-appearance) order with each run's estimated scheduler cost.
// Under -shard i/n the cost-balanced shard assignment is shown per run
// (with this shard's rows marked); otherwise an explicit -j previews how
// the LPT partition would spread the matrix across that many bins.
func printPlan(r *experiments.Runner, p experiments.Plan, o options, spec experiments.ShardSpec) error {
	fmt.Printf("experiments (%d):\n", len(p.Experiments))
	for _, e := range p.Experiments {
		fmt.Printf("  %-14s %s\n", e.Key, e.Title)
	}

	costs, err := r.EstimateCosts(p)
	if err != nil {
		return err
	}
	bins := 0
	label := ""
	switch {
	case o.shard != "":
		bins, label = spec.Count, "shard"
	case o.jExplicit && o.workers > 1:
		bins, label = o.workers, "worker"
	}
	var assign []int
	if bins > 1 {
		assign = experiments.AssignShards(costs, bins)
	}

	fmt.Printf("runs (%d deduped):\n", len(p.Runs))
	for i, k := range p.Runs {
		line := fmt.Sprintf("  %-28s %8.2f GiB", k.String(), float64(costs[i])/(1<<30))
		if assign != nil {
			line += fmt.Sprintf("  %s %d", label, assign[i])
			if o.shard != "" && assign[i] == spec.Index {
				line += "  *"
			}
		}
		fmt.Println(line)
	}
	if assign != nil {
		loads := make([]uint64, bins)
		counts := make([]int, bins)
		for i, s := range assign {
			loads[s] += costs[i]
			counts[s]++
		}
		fmt.Printf("%s totals:\n", label)
		for s := 0; s < bins; s++ {
			mark := ""
			if o.shard != "" && s == spec.Index {
				mark = "  * (this shard)"
			}
			fmt.Printf("  %s %d: %d runs, %8.2f GiB%s\n", label, s, counts[s], float64(loads[s])/(1<<30), mark)
		}
	}
	return nil
}
