// Command lvmbench regenerates every table and figure of the paper's
// evaluation (§7) and prints them in order. This is the reproduction's
// headline artifact: run it and compare against EXPERIMENTS.md.
//
// The pipeline is plan/execute: the selected experiments declare the
// simulations they need, the scheduler dedupes that run matrix and
// executes it on -j workers under a memory budget, and the tables are
// rendered afterwards in registry order. Tables go to stdout and are
// bit-for-bit identical at any -j; progress and timings go to stderr.
//
// Usage:
//
//	lvmbench              # full scale (several minutes)
//	lvmbench -quick       # reduced scale (seconds)
//	lvmbench -only fig9,table2
//	lvmbench -j 8 -mem 64 # 8 workers under a 64 GiB simulated-memory budget
//	lvmbench -list        # print the plan (experiments + run matrix), no execution
//	lvmbench -quick -json out.json            # also write per-run metrics JSON
//	lvmbench -quick -json out.json -timings   # include host wall-clock fields
//	lvmbench -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The -json document is schema-versioned and byte-identical at any -j
// (unless -timings adds the machine-dependent host_seconds fields); CI
// diffs it against the committed bench_baseline.json with cmd/benchgate.
//
// The -cpuprofile/-memprofile flags capture pprof profiles of the whole
// sweep (see EXPERIMENTS.md "Profiling the hot path" for the workflow).
// Profiling does not perturb the simulated results — the gathered tables
// and -json output stay byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"lvm/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workload scale")
	only := flag.String("only", "", "comma-separated experiment keys: fig2, fig3, fig9, fig10, fig11, fig12, table2, collisions, retrain, memory, fragmentation, walkcaches, ptwl1, multitenancy, tail, hardware, priorwork")
	workers := flag.Int("j", runtime.NumCPU(), "simulation worker goroutines")
	memGiB := flag.Uint64("mem", 0, "memory budget in GiB bounding the summed simulated footprint of in-flight runs (0 = default 32)")
	list := flag.Bool("list", false, "print the selected experiments and deduped run matrix, then exit without executing")
	jsonPath := flag.String("json", "", "write per-run metrics as schema-versioned JSON to this path")
	timings := flag.Bool("timings", false, "include host wall-clock fields in -json output (breaks byte-identity across invocations)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile taken after the sweep to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvmbench: creating %s: %v\n", *cpuprofile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lvmbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvmbench: creating %s: %v\n", *memprofile, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lvmbench: writing heap profile: %v\n", err)
			os.Exit(1)
		}
	}()

	if err := run(options{
		quick:    *quick,
		only:     *only,
		workers:  *workers,
		memGiB:   *memGiB,
		list:     *list,
		jsonPath: *jsonPath,
		timings:  *timings,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "lvmbench: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	quick    bool
	only     string
	workers  int
	memGiB   uint64
	list     bool
	jsonPath string
	timings  bool
}

func run(o options) error {
	cfg := experiments.Default()
	if o.quick {
		cfg = experiments.Quick()
	}

	var keys []string
	if o.only != "" {
		keys = strings.Split(o.only, ",")
	}
	exps, err := experiments.Select(keys...)
	if err != nil {
		return err
	}

	r := experiments.NewRunner(cfg)
	r.SetSink(experiments.NewWriterSink(os.Stderr))
	plan := experiments.NewPlan(cfg, exps)

	if o.list {
		printPlan(plan)
		return nil
	}

	fmt.Fprintf(os.Stderr, "plan: %d experiments, %d deduped runs, %d workers\n",
		len(plan.Experiments), len(plan.Runs), o.workers)

	results, err := r.ExecutePlan(plan, experiments.ExecOptions{
		Workers:        o.workers,
		MemBudgetBytes: o.memGiB << 30,
	})
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Print(res.Render())
	}

	if o.jsonPath != "" {
		b, err := r.RunsJSON(plan, experiments.RunJSONOptions{Timings: o.timings})
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, b, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", o.jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d runs to %s\n", len(plan.Runs), o.jsonPath)
	}
	return nil
}

// printPlan renders the plan phase without executing it: the selected
// experiments in registry order and the deduped run matrix in plan
// (first-appearance) order — exactly what ExecutePlan would simulate.
func printPlan(p experiments.Plan) {
	fmt.Printf("experiments (%d):\n", len(p.Experiments))
	for _, e := range p.Experiments {
		fmt.Printf("  %-14s %s\n", e.Key, e.Title)
	}
	fmt.Printf("runs (%d deduped):\n", len(p.Runs))
	for _, k := range p.Runs {
		fmt.Printf("  %s\n", k)
	}
}
