// Command lvmd runs the translation-simulation daemon: it listens for
// lvmd wire-protocol clients (cmd/lvmload, tests), serves each connection
// one access-trace session on a per-tenant simulated machine, and streams
// live metric windows back. See DESIGN.md §10 for the protocol and the
// serving bit-identity contract.
//
// Usage:
//
//	lvmd -listen 127.0.0.1:7087 -quick
//
// SIGTERM/SIGINT shut the daemon down cleanly: open sessions are
// cancelled, admission queues drain, and the process self-asserts that no
// goroutines leaked before printing "clean shutdown".
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lvm/internal/lvmd"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7087", "address to serve the lvmd wire protocol on")
	quick := flag.Bool("quick", false, "serve the reduced quick-scale config (tests, CI) instead of the full sweep config")
	mem := flag.Uint64("mem", 0, "admission budget in bytes over summed per-tenant footprint charges (0 = default)")
	workers := flag.Int("workers", 0, "concurrently simulating sessions (0 = GOMAXPROCS)")
	every := flag.Int("every", 0, "default interval window in accesses for sessions that do not set one (0 = one whole-trace window)")
	flag.Parse()

	// Goroutine baseline for the shutdown self-check, taken before any
	// server machinery (or the signal handler) spawns.
	baseline := runtime.NumGoroutine()

	cfg := lvmd.Default()
	if *quick {
		cfg = lvmd.Quick()
	}
	cfg.MemBudgetBytes = *mem
	cfg.Workers = *workers
	cfg.DefaultEvery = *every

	srv, err := lvmd.NewServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lvmd: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lvmd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("lvmd: listening on %s (quick=%t)\n", ln.Addr(), *quick)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case s := <-sig:
		fmt.Printf("lvmd: %v: shutting down\n", s)
		srv.Close()
		if err := <-done; err != nil {
			fmt.Fprintf(os.Stderr, "lvmd: %v\n", err)
			os.Exit(1)
		}
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvmd: %v\n", err)
			os.Exit(1)
		}
	}

	// Self-assert the shutdown drained every goroutine the daemon spawned
	// (the signal handler's internal goroutine accounts for the slack).
	leaked := 0
	for i := 0; i < 200; i++ {
		if leaked = runtime.NumGoroutine() - baseline; leaked <= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leaked > 2 {
		fmt.Fprintf(os.Stderr, "lvmd: %d goroutines leaked past shutdown\n", leaked)
		os.Exit(1)
	}
	fmt.Println("lvmd: clean shutdown")
}
