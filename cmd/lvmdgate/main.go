// Command lvmdgate compares a current lvmload report against the
// committed serving baseline (bench_lvmd.json) and fails on throughput
// regressions, mirroring cmd/benchgate for the batch pipeline.
//
// Wall-clock throughput is host-dependent, so the comparison is
// tolerance-based: current TPS must stay within -host-factor of the
// baseline, and above the absolute -min-tps floor the roadmap commits to.
// The two reports must describe the same experiment (schema version,
// session count, scheme and workload rosters, translation total — the
// translation total is deterministic, so it must match exactly).
//
// Exit status: 0 pass, 1 regression or mismatch, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report mirrors cmd/lvmload's JSON document (the fields the gate reads).
type report struct {
	SchemaVersion int      `json:"schema_version"`
	Quick         bool     `json:"quick"`
	Sessions      int      `json:"sessions"`
	Schemes       []string `json:"schemes"`
	Workloads     []string `json:"workloads"`
	Translations  uint64   `json:"translations"`
	TPS           float64  `json:"translations_per_sec"`
}

func main() {
	baselinePath := flag.String("baseline", "bench_lvmd.json", "committed baseline report")
	currentPath := flag.String("current", "", "freshly generated report to gate")
	minTPS := flag.Float64("min-tps", 1_000_000, "absolute translations/sec floor (0 disables)")
	hostFactor := flag.Float64("host-factor", 3, "allowed slowdown vs the baseline host (>= 1)")
	flag.Parse()
	if *currentPath == "" || *hostFactor < 1 {
		fmt.Fprintln(os.Stderr, "usage: lvmdgate -baseline bench_lvmd.json -current out.json [-min-tps N] [-host-factor F>=1]")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lvmdgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lvmdgate: %v\n", err)
		os.Exit(2)
	}

	var problems []string
	if base.SchemaVersion != cur.SchemaVersion {
		problems = append(problems, fmt.Sprintf("schema version %d vs baseline %d", cur.SchemaVersion, base.SchemaVersion))
	}
	if base.Quick != cur.Quick || base.Sessions != cur.Sessions ||
		strings.Join(base.Schemes, ",") != strings.Join(cur.Schemes, ",") ||
		strings.Join(base.Workloads, ",") != strings.Join(cur.Workloads, ",") {
		problems = append(problems, "experiment shape differs from baseline (quick/sessions/schemes/workloads)")
	}
	// Translation totals are fully deterministic — any drift means the
	// simulation changed, which a throughput gate must not silently absorb.
	if base.Translations != cur.Translations {
		problems = append(problems, fmt.Sprintf("translations %d vs baseline %d — refresh the baseline deliberately", cur.Translations, base.Translations))
	}
	if floor := base.TPS / *hostFactor; cur.TPS < floor {
		problems = append(problems, fmt.Sprintf("throughput %.0f/s below baseline %.0f/s ÷ host factor %.1f = %.0f/s", cur.TPS, base.TPS, *hostFactor, floor))
	}
	if *minTPS > 0 && cur.TPS < *minTPS {
		problems = append(problems, fmt.Sprintf("throughput %.0f/s below the absolute floor %.0f/s", cur.TPS, *minTPS))
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "lvmdgate: FAIL: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("lvmdgate: PASS: %.0f translations/sec (baseline %.0f/s, host factor %.1f, floor %.0f/s)\n",
		cur.TPS, base.TPS, *hostFactor, *minTPS)
}

func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.SchemaVersion == 0 {
		return r, fmt.Errorf("%s: missing schema_version", path)
	}
	return r, nil
}
