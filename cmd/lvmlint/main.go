// Command lvmlint runs the repository's custom static-analysis suite (see
// internal/lint): fixedq, addrtypes, nondeterm, and floatfree.
//
// Standalone:
//
//	go run ./cmd/lvmlint ./...          # whole module
//	go run ./cmd/lvmlint ./internal/core
//
// As a go vet tool (unitchecker protocol):
//
//	go build -o lvmlint ./cmd/lvmlint
//	go vet -vettool=$PWD/lvmlint ./...
//
// Exit status is 1 (standalone) or 2 (vettool) when violations are found.
// Legitimate exceptions are suppressed with a //lint:allow <analyzer>
// <reason> comment on the flagged line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lvm/internal/lint"
)

func main() {
	// go vet probes the tool with -V=full and -flags before handing it work.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Println("lvmlint version 1")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		// JSON description of tool flags; the suite takes none.
		fmt.Println("[]")
		return
	}
	// go vet invokes the tool with a single *.cfg argument per package.
	if len(os.Args) >= 2 && strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg") {
		os.Exit(runUnitchecker(os.Args[len(os.Args)-1]))
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	nocache := flag.Bool("nocache", false, "skip the result cache and always type-check from source")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lvmlint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvmlint:", err)
		os.Exit(2)
	}

	// The diagnostics are a pure function of (toolchain, suite, module
	// source, patterns): replay a previously recorded run when nothing has
	// changed, skipping the multi-second from-source type check. The cache
	// is transparent — any problem computing the key or reading the entry
	// falls back to a full run, and a full run records its result best
	// effort.
	cacheDir, cacheKey := "", ""
	if !*nocache {
		if dir, err := lint.DefaultCacheDir(); err == nil {
			if key, err := lint.CacheKey(loader.ModRoot(), flag.Args()); err == nil {
				cacheDir, cacheKey = dir, key
				if diags, ok := lint.LoadCachedResult(dir, key); ok {
					exitWithDiagnostics(diags)
				}
			}
		}
	}

	pkgs, err := loader.Load(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvmlint:", err)
		os.Exit(2)
	}
	var diags []string
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, lint.Analyzers()) {
			diags = append(diags, d.String())
		}
	}
	if cacheKey != "" {
		// Best effort: an unwritable cache must not fail the lint run.
		_ = lint.StoreCachedResult(cacheDir, cacheKey, diags)
	}
	exitWithDiagnostics(diags)
}

// exitWithDiagnostics prints the diagnostics exactly as a full run would
// and exits 1 when there are any — cached and fresh runs are observably
// identical apart from wall-clock time.
func exitWithDiagnostics(diags []string) {
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lvmlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
	os.Exit(0)
}
