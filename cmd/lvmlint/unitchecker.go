package main

// Minimal implementation of the cmd/go vet-tool ("unitchecker") protocol,
// enough for `go vet -vettool=lvmlint ./...`: cmd/go hands the tool one JSON
// .cfg per package naming the source files and the export data of every
// dependency; the tool type-checks from export data, runs the analyzers,
// prints diagnostics to stderr, writes an (empty — lvmlint exports no facts)
// facts file, and exits 2 when violations were found.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"lvm/internal/lint"
)

// vetConfig mirrors the fields of cmd/go's vet config that lvmlint needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvmlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lvmlint:", err)
		return 1
	}
	// lvmlint exports no facts, but cmd/go expects the facts file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "lvmlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "lvmlint:", err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports through the export data cmd/go supplied.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "lvmlint:", err)
		return 1
	}

	pkg := &lint.Package{
		PkgPath: lint.StripVariant(cfg.ImportPath),
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	diags := lint.Run(pkg, lint.Analyzers())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
