package main

// Minimal implementation of the cmd/go vet-tool ("unitchecker") protocol,
// enough for `go vet -vettool=lvmlint ./...`: cmd/go hands the tool one JSON
// .cfg per package naming the source files, the export data of every
// dependency, and the dependencies' fact files (PackageVetx); the tool
// type-checks from export data, merges the imported facts, runs the full
// analyzer suite (the whole-program analyzers see a one-package program
// whose out-of-package calls are judged by the imported facts), writes its
// own facts — this package's summaries plus everything imported, so facts
// flow transitively in dependency order — to VetxOutput, prints
// diagnostics to stderr, and exits 2 when violations were found.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"lvm/internal/lint"
)

// vetConfig mirrors the fields of cmd/go's vet config that lvmlint needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// moduleInternal reports whether the package belongs to this module (and
// therefore has facts worth computing even on VetxOnly visits).
func moduleInternal(importPath string) bool {
	p := lint.StripVariant(importPath)
	return p == lint.ModulePath || strings.HasPrefix(p, lint.ModulePath+"/")
}

func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvmlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lvmlint:", err)
		return 1
	}
	// cmd/go expects the facts file to exist on every exit path; start
	// with an empty one and overwrite it with real facts below.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "lvmlint:", err)
			return 1
		}
	}
	// A VetxOnly visit means "this package is a dependency of the named
	// patterns": no diagnostics wanted, but module-internal packages must
	// still export their facts or downstream hotalloc/snapshotpure
	// frontier checks would run blind.
	if cfg.VetxOnly && !moduleInternal(cfg.ImportPath) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "lvmlint:", err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports through the export data cmd/go supplied.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "lvmlint:", err)
		return 1
	}

	imported := readImportedFacts(cfg)
	pkg := &lint.Package{
		PkgPath: lint.StripVariant(cfg.ImportPath),
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	diags, facts := lint.RunSuite([]*lint.Package{pkg}, lint.Analyzers(), imported)

	// Export this package's facts plus everything imported: cmd/go hands
	// each package only its direct deps' vetx files, so transitive flow
	// relies on every package re-exporting what it received.
	if cfg.VetxOutput != "" {
		merged := lint.NewFactSet()
		merged.Merge(imported)
		merged.Merge(facts)
		if err := os.WriteFile(cfg.VetxOutput, merged.Encode(), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "lvmlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// readImportedFacts decodes every dependency fact file cmd/go supplied.
// Unreadable or foreign (empty) files are skipped: facts degrade to the
// assumption table, they never fail the run.
func readImportedFacts(cfg vetConfig) *lint.FactSet {
	merged := lint.NewFactSet()
	for path, file := range cfg.PackageVetx {
		if !moduleInternal(path) {
			continue
		}
		b, err := os.ReadFile(file)
		if err != nil || len(b) == 0 {
			continue
		}
		fs, err := lint.DecodeFacts(b)
		if err != nil {
			continue
		}
		merged.Merge(fs)
	}
	return merged
}
