// Command lvmload drives a running lvmd daemon with N concurrent tenant
// sessions and reports serving throughput: aggregate translations/sec,
// p50/p99 session latency, and the deepest admission queue any session
// saw. Sessions round-robin over the requested schemes and workloads, one
// connection each, exactly as independent tenants would.
//
// Usage (against a quick-config daemon):
//
//	lvmload -addr 127.0.0.1:7087 -quick -sessions 64 -json bench_lvmd.json
//
// All timing is host wall-clock (internal/wallclock) and therefore
// machine-dependent; cmd/lvmdgate applies a host tolerance factor when
// comparing reports. Simulated results remain bit-identical to standalone
// runs regardless of load — only the timing varies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"lvm/internal/lvmd"
	"lvm/internal/oskernel"
	"lvm/internal/wallclock"
)

// reportSchemaVersion stamps the JSON report so cmd/lvmdgate refuses to
// compare documents produced by incompatible harness versions.
const reportSchemaVersion = 1

// report is the JSON document written by -json (and committed as
// bench_lvmd.json by the EXPERIMENTS.md refresh workflow).
type report struct {
	SchemaVersion int      `json:"schema_version"`
	Quick         bool     `json:"quick"`
	Sessions      int      `json:"sessions"`
	Schemes       []string `json:"schemes"`
	Workloads     []string `json:"workloads"`
	Every         int      `json:"every"`
	Translations  uint64   `json:"translations"`
	WallSeconds   float64  `json:"wall_seconds"`
	TPS           float64  `json:"translations_per_sec"`
	P50Seconds    float64  `json:"p50_session_seconds"`
	P99Seconds    float64  `json:"p99_session_seconds"`
	MaxQueueDepth int      `json:"max_queue_depth"`
}

type sessionOutcome struct {
	accesses uint64
	seconds  float64
	queue    int
	err      error
}

func main() {
	addrFlag := flag.String("addr", "127.0.0.1:7087", "lvmd daemon address")
	sessions := flag.Int("sessions", 64, "concurrent tenant sessions to drive")
	schemesFlag := flag.String("schemes", "lvm,radix", "comma-separated translation schemes to round-robin over")
	workloadsFlag := flag.String("workloads", "", "comma-separated workloads to round-robin over (default: the config's workload roster)")
	quick := flag.Bool("quick", false, "use the quick-scale config (must match the daemon)")
	every := flag.Int("every", 0, "per-session interval window in accesses (0 = daemon default)")
	thp := flag.Bool("thp", false, "request transparent huge pages for every tenant")
	jsonPath := flag.String("json", "", "write the report as JSON to this path")
	flag.Parse()
	if *sessions < 1 {
		fmt.Fprintln(os.Stderr, "lvmload: -sessions must be >= 1")
		os.Exit(2)
	}

	cfg := lvmd.Default()
	if *quick {
		cfg = lvmd.Quick()
	}
	schemes := splitList(*schemesFlag)
	workloads := splitList(*workloadsFlag)
	if len(workloads) == 0 {
		workloads = append(workloads, cfg.Exp.Workloads...)
	}
	if len(schemes) == 0 || len(workloads) == 0 {
		fmt.Fprintln(os.Stderr, "lvmload: need at least one scheme and one workload")
		os.Exit(2)
	}

	outcomes := make([]sessionOutcome, *sessions)
	var wg sync.WaitGroup
	sw := wallclock.Start()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = drive(*addrFlag, cfg, lvmd.OpenRequest{
				Workload: workloads[(i/len(schemes))%len(workloads)],
				Scheme:   oskernel.Scheme(schemes[i%len(schemes)]),
				THP:      *thp,
				Every:    *every,
			})
		}(i)
	}
	wg.Wait()
	wall := sw.Seconds()

	var total uint64
	var failed int
	lat := make([]float64, 0, *sessions)
	maxQueue := 0
	for i, o := range outcomes {
		if o.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "lvmload: session %d: %v\n", i, o.err)
			continue
		}
		total += o.accesses
		lat = append(lat, o.seconds)
		if o.queue > maxQueue {
			maxQueue = o.queue
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lvmload: %d/%d sessions failed\n", failed, *sessions)
		os.Exit(1)
	}
	sort.Float64s(lat)

	rep := report{
		SchemaVersion: reportSchemaVersion,
		Quick:         *quick,
		Sessions:      *sessions,
		Schemes:       schemes,
		Workloads:     workloads,
		Every:         *every,
		Translations:  total,
		WallSeconds:   wall,
		TPS:           float64(total) / wall,
		P50Seconds:    quantile(lat, 50),
		P99Seconds:    quantile(lat, 99),
		MaxQueueDepth: maxQueue,
	}
	fmt.Printf("lvmload: %d sessions  %d translations  %.2fs wall  %.0f translations/sec\n",
		rep.Sessions, rep.Translations, rep.WallSeconds, rep.TPS)
	fmt.Printf("lvmload: session latency p50 %.3fs  p99 %.3fs  max admission queue depth %d\n",
		rep.P50Seconds, rep.P99Seconds, rep.MaxQueueDepth)
	if *jsonPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvmload: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lvmload: %v\n", err)
			os.Exit(1)
		}
	}
}

// drive runs one tenant session on its own connection and measures it.
func drive(addr string, cfg lvmd.Config, open lvmd.OpenRequest) sessionOutcome {
	c, err := lvmd.DialRetry(addr, cfg, 0, 0)
	if err != nil {
		return sessionOutcome{err: err}
	}
	defer c.Close()
	sw := wallclock.Start()
	res, st, err := c.Run(open, nil)
	if err != nil {
		return sessionOutcome{err: err}
	}
	return sessionOutcome{
		accesses: res.Accesses,
		seconds:  sw.Seconds(),
		queue:    st.QueueDepth,
	}
}

// quantile returns the p-th percentile of sorted (nearest-rank).
func quantile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i < 1 {
		i = 1
	}
	return sorted[i-1]
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
