// Command lvmsim runs one workload under one page-table scheme through the
// full-system timing model and prints the stat block.
//
// Usage:
//
//	lvmsim -workload gups -scheme lvm -thp=false -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lvm"
)

func main() {
	workloadName := flag.String("workload", "gups", "workload: "+strings.Join(lvm.WorkloadNames(), ", "))
	scheme := flag.String("scheme", "lvm", "scheme: radix, ecpt, lvm, ideal, fpt, asap, midgard")
	thp := flag.Bool("thp", false, "use transparent huge pages")
	scale := flag.String("scale", "quick", "workload scale: quick or full")
	machine := flag.String("machine", "scaled", "machine model: scaled or table1")
	flag.Parse()

	wp := lvm.QuickWorkloadParams()
	if *scale == "full" {
		wp = lvm.DefaultWorkloadParams()
	}
	mc := lvm.ScaledMachine()
	if *machine == "table1" {
		mc = lvm.DefaultMachine()
	}

	res, err := lvm.Simulate(*workloadName, lvm.Scheme(*scheme), *thp, wp, mc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvmsim:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	fmt.Printf("cycles            %14.0f\n", res.Cycles)
	fmt.Printf("instructions      %14d\n", res.Instructions)
	fmt.Printf("accesses          %14d\n", res.Accesses)
	fmt.Printf("walks             %14d\n", res.Walks)
	fmt.Printf("walk refs         %14d (%.2f per walk)\n", res.WalkRefs, float64(res.WalkRefs)/float64(res.Walks))
	fmt.Printf("walk cycles       %14.0f (%.1f%% of total)\n", res.WalkCycles, 100*res.WalkCycles/res.Cycles)
	fmt.Printf("MMU cycles        %14.0f (%.1f%% of total)\n", res.MMUCycles(), 100*res.MMUCycles()/res.Cycles)
	fmt.Printf("L2 TLB miss rate  %14.1f%%\n", 100*res.L2TLBMiss)
	fmt.Printf("L1/L2/L3 MPKI     %8.1f / %.1f / %.1f\n", res.L1MPKI, res.L2MPKI, res.L3MPKI)
	fmt.Printf("DRAM accesses     %14d\n", res.DRAMAccesses)
	if res.Faults > 0 {
		fmt.Printf("TRANSLATION FAULTS %13d\n", res.Faults)
	}
}
