// Command vastudy reproduces the Figure-2 virtual-memory gap-coverage
// study: it generates the address-space layout of each application profile
// and reports the fraction of sequential (gap = 1) mapped pages.
package main

import (
	"flag"
	"fmt"
	"os"

	"lvm"
)

func main() {
	seed := flag.Int64("seed", 42, "layout generation seed")
	flag.Parse()

	cfg := lvm.QuickExperiments()
	cfg.Params.Seed = *seed
	r := lvm.NewExperiments(cfg)
	res, err := r.Fig2GapCoverage()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vastudy: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Table)
	fmt.Printf("\nminimum gap=1 coverage: %.1f%% (paper reports a 78%% floor)\n", 100*res.Min)
}
