// Fragmentation scenario: LVM adapting its leaf page tables to the
// physical contiguity actually available (paper §4.2.2 / §7.3). The same
// address space is built on a fresh machine and on a datacenter-aged one
// with contiguity capped at 256 KB; translation keeps working and the
// index stays walkable.
//
// Run: go run ./examples/fragmentation
package main

import (
	"fmt"

	"lvm"
	"lvm/internal/phys"
)

func main() {
	cfg := lvm.DefaultLayout()
	cfg.HeapPages = 1 << 16 // 256 MB heap
	cfg.MmapRegions = 2
	cfg.MmapPages = 4096
	space := lvm.GenerateAddressSpace(cfg, 11)
	fmt.Printf("address space: %d mapped pages (%d MB)\n\n",
		space.TotalMapped(), space.FootprintBytes()>>20)

	for _, aged := range []bool{false, true} {
		mem := lvm.NewPhysicalMemory(2 << 30)
		label := "fresh machine (1GB blocks available)"
		if aged {
			mem.Fragment(7, phys.DatacenterFragmentation)
			mem.SetContiguityCap(6) // nothing above 256 KB
			label = "aged machine (≤256KB contiguity, 25% free)"
		}
		fmt.Printf("--- %s ---\n", label)
		fmt.Printf("largest allocatable block: %d KB\n", phys.BlockBytes(mem.MaxFreeOrder())>>10)

		sys := lvm.NewSystem(mem, lvm.SchemeLVM)
		p, err := sys.Launch(1, space, false)
		if err != nil {
			fmt.Println("launch failed:", err)
			continue
		}
		ix := p.LvmIx
		fmt.Printf("index: %d bytes, %d leaf tables (more, smaller tables under fragmentation)\n",
			ix.SizeBytes(), ix.LeafCount())

		// Verify translation end to end through the hardware walker.
		w := sys.Walker()
		checked, misses := 0, 0
		for _, r := range space.Regions {
			for i := 0; i < len(r.Mapped); i += 257 {
				checked++
				if out := w.Walk(1, r.Mapped[i]); !out.Found {
					misses++
				}
			}
		}
		fmt.Printf("hardware walks: %d checked, %d misses\n\n", checked, misses)
	}
}
