// Graph analytics end-to-end: run BFS over a Kronecker graph through the
// full-system model and compare radix, ECPT, LVM, and the ideal page table
// — a one-workload slice of the paper's Figure 9/10/11.
//
// Run: go run ./examples/graphanalytics
package main

import (
	"fmt"

	"lvm"
)

func main() {
	wp := lvm.QuickWorkloadParams()
	wp.GraphScale = 18 // 262144 vertices, ~2M edges
	wp.TraceLen = 300_000
	mc := lvm.ScaledMachine()

	fmt.Println("BFS on a Kronecker graph (RMAT), trace of", wp.TraceLen, "memory accesses")
	fmt.Println()
	fmt.Printf("%-8s %14s %10s %12s %10s\n", "scheme", "cycles", "refs/walk", "walk-cycles%", "L2 MPKI")

	var radix, lvmCycles float64
	for _, scheme := range []lvm.Scheme{lvm.SchemeRadix, lvm.SchemeECPT, lvm.SchemeLVM, lvm.SchemeIdeal} {
		res, err := lvm.Simulate("bfs", scheme, false, wp, mc)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %14.0f %10.2f %11.1f%% %10.1f\n",
			scheme, res.Cycles,
			float64(res.WalkRefs)/float64(res.Walks),
			100*res.WalkCycles/res.Cycles, res.L2MPKI)
		switch scheme {
		case lvm.SchemeRadix:
			radix = res.Cycles
		case lvm.SchemeLVM:
			lvmCycles = res.Cycles
		}
	}
	fmt.Printf("\nLVM speedup over radix: %.1f%%\n", 100*(radix/lvmCycles-1))
	fmt.Println("(the paper's graph workloads see 5-26% at 75 GB scale; shrink/grow")
	fmt.Println(" wp.GraphScale and wp.TraceLen to explore the regime)")
}
