// Key-value store scenario: a memcached-like workload under 4 KB pages and
// transparent huge pages, showing how THP shrinks the translation problem
// and how LVM's single index covers both page sizes (paper §4.4).
//
// Run: go run ./examples/keyvalue
package main

import (
	"fmt"

	"lvm"
)

func main() {
	wp := lvm.QuickWorkloadParams()
	wp.MemcachedBytes = 256 << 20
	wp.TraceLen = 300_000
	mc := lvm.ScaledMachine()

	fmt.Println("memcached-like key-value store, zipf-skewed GETs with 10% SETs")
	fmt.Println()
	for _, thp := range []bool{false, true} {
		label := "4KB pages"
		if thp {
			label = "THP (2MB)"
		}
		fmt.Printf("--- %s ---\n", label)
		var radix float64
		for _, scheme := range []lvm.Scheme{lvm.SchemeRadix, lvm.SchemeLVM, lvm.SchemeIdeal} {
			res, err := lvm.Simulate("mem$", scheme, thp, wp, mc)
			if err != nil {
				panic(err)
			}
			if scheme == lvm.SchemeRadix {
				radix = res.Cycles
			}
			fmt.Printf("%-8s cycles=%12.0f speedup=%6.3f walks=%8d L2TLB-miss=%5.1f%%\n",
				scheme, res.Cycles, radix/res.Cycles, res.Walks, 100*res.L2TLBMiss)
		}
		fmt.Println()
	}

	// Show the single-index multi-page-size property directly: one index,
	// mixed 4K and 2M translations.
	mem := lvm.NewPhysicalMemory(128 << 20)
	var ms []lvm.Mapping
	for i := 0; i < 4096; i++ { // 4K item pages
		ms = append(ms, lvm.Mapping{VPN: lvm.VPN(0x1000 + i), Entry: lvm.NewEntry(lvm.PPN(i+1), lvm.Page4K)})
	}
	for i := 0; i < 8; i++ { // 2M slab pages
		ms = append(ms, lvm.Mapping{VPN: lvm.VPN(0x4000 + i*512), Entry: lvm.NewEntry(lvm.PPN(0x10000+i*512), lvm.Page2M)})
	}
	ix, err := lvm.BuildIndex(mem, ms, lvm.DefaultParams())
	if err != nil {
		panic(err)
	}
	small := ix.Walk(0x1000 + 7)
	big := ix.Walk(0x4000 + 3*512 + 99) // interior VPN of the 4th huge page
	fmt.Printf("one %d-byte index serves both: 4K walk size=%s, 2M interior walk size=%s (accesses %d/%d)\n",
		ix.SizeBytes(), small.Entry.Size(), big.Entry.Size(), small.PTEAccesses, big.PTEAccesses)
}
