// Multi-tenant scenario: several processes share one machine under LVM,
// including the kernel's own shared learned index (paper §5.2). Each tenant
// gets a private per-process index a few hundred bytes in size; map/unmap
// churn in one tenant leaves the others untouched, and the ASID-tagged LWC
// needs no flush on context switch (paper §4.6.2, §7.1).
//
// Run: go run ./examples/multitenant
package main

import (
	"fmt"

	"lvm"
)

func main() {
	mem := lvm.NewPhysicalMemory(2 << 30)
	sys := lvm.NewSystem(mem, lvm.SchemeLVM)

	// The kernel installs its own shared index once at boot: direct map,
	// vmalloc, and text/data regions, shared by every address space.
	if err := sys.InstallKernel(sys.DefaultKernelLayout()); err != nil {
		panic(err)
	}
	fmt.Printf("kernel: %d mappings in a %d-byte shared index\n\n",
		sys.KernelMappings(), sys.KernelIndexBytes())

	// Launch four tenants with different layouts (different ASLR seeds and
	// region mixes — a web server, two analytics jobs, a cache).
	layouts := []struct {
		name      string
		heapPages int
		seed      int64
	}{
		{"webserver", 16384, 11},
		{"analytics-1", 65536, 22},
		{"analytics-2", 65536, 33},
		{"cache", 32768, 44},
	}
	fmt.Printf("%-12s %6s %14s %12s %7s\n",
		"tenant", "asid", "mapped pages", "index bytes", "depth")
	for i, l := range layouts {
		cfg := lvm.DefaultLayout()
		cfg.HeapPages = l.heapPages
		cfg.MmapPages = l.heapPages / 8
		space := lvm.GenerateAddressSpace(cfg, l.seed)
		asid := uint16(i + 1)
		p, err := sys.Launch(asid, space, false)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %6d %14d %12d %7d\n",
			l.name, asid, p.LvmIx.MappedPages(), p.LvmIx.SizeBytes(), p.LvmIx.Depth())
	}

	// Tenant 2 churns: unmap then remap a window of its heap. Count the
	// retrain-class events it causes and prove the other tenants' indices
	// and translations are untouched.
	fmt.Println("\ntenant analytics-1 (asid 2) unmaps and remaps 2048 heap pages...")
	p2 := sys.Process(2)
	before := map[uint16]int{}
	for asid := uint16(1); asid <= 4; asid++ {
		before[asid] = sys.Process(asid).LvmIx.SizeBytes()
	}
	heap := p2.Space.Regions[0]
	for i := range p2.Space.Regions {
		if len(p2.Space.Regions[i].Mapped) > len(heap.Mapped) {
			heap = p2.Space.Regions[i]
		}
	}
	churned := 0
	for _, v := range heap.Mapped {
		if churned == 2048 {
			break
		}
		if sys.UnmapPage(2, v) {
			if err := sys.MapPage(2, v, lvm.Page4K); err != nil {
				panic(err)
			}
			churned++
		}
	}
	st := p2.LvmIx.Stats()
	fmt.Printf("churned %d pages: %d retrains, %d rebuilds in asid 2\n",
		churned, st.Retrains, st.Rebuilds)
	for asid := uint16(1); asid <= 4; asid++ {
		if asid == 2 {
			continue
		}
		if got := sys.Process(asid).LvmIx.SizeBytes(); got != before[asid] {
			panic(fmt.Sprintf("asid %d index changed: %d -> %d", asid, before[asid], got))
		}
	}
	fmt.Println("other tenants' indices unchanged — per-process isolation holds")

	// Every tenant still translates every one of its pages through the
	// shared hardware walker, with the LWC tagged by ASID.
	w := sys.Walker()
	for asid := uint16(1); asid <= 4; asid++ {
		p := sys.Process(asid)
		for _, r := range p.Space.Regions {
			for i := 0; i < len(r.Mapped); i += 257 {
				if out := w.Walk(asid, r.Mapped[i]); !out.Found {
					panic(fmt.Sprintf("asid %d lost VPN %#x", asid, uint64(r.Mapped[i])))
				}
			}
		}
	}
	lwc := sys.LVMWalker().LWC()
	fmt.Printf("\nall tenants translate correctly; shared LWC hit rate %.1f%% "+
		"(ASID-tagged, never flushed on context switch)\n", 100*lwc.HitRate())

	// Tenant exit: frames, gapped tables, index node arrays, and LWC
	// entries all return to the system.
	freeBefore := mem.FreePages()
	if err := sys.Kill(3); err != nil {
		panic(err)
	}
	fmt.Printf("\nkilled analytics-2: %d pages (%d MB) returned to the allocator\n",
		mem.FreePages()-freeBefore, (mem.FreePages()-freeBefore)>>8)
	if out := w.Walk(3, heap.Mapped[0]); out.Found {
		panic("dead tenant still translates")
	}
	if out := w.Walk(4, sys.Process(4).Space.Regions[0].Mapped[0]); !out.Found {
		panic("survivor lost translations")
	}
	fmt.Println("dead ASID no longer translates; survivors unaffected")
}
