// Quickstart: build a learned page table over a synthetic address space,
// translate through it exactly as the hardware walker would, insert new
// mappings, and inspect the index.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"lvm"
)

func main() {
	// A simulated machine with 256 MB of physical memory managed by a
	// buddy allocator.
	mem := lvm.NewPhysicalMemory(256 << 20)

	// A process address space: a few segments of mapped pages, the way a
	// normalized (post-ASLR) layout looks (paper §5.2).
	var mappings []lvm.Mapping
	ppn := lvm.PPN(0x10000)
	segment := func(base lvm.VPN, pages int) {
		for i := 0; i < pages; i++ {
			mappings = append(mappings, lvm.Mapping{
				VPN:   base + lvm.VPN(i),
				Entry: lvm.NewEntry(ppn, lvm.Page4K),
			})
			ppn++
		}
	}
	segment(0x400, 512)   // text
	segment(0x800, 256)   // data
	segment(0xa00, 8192)  // heap
	segment(0x3000, 2048) // mmap arena

	// And one 2 MB huge page (VPN must be 512-aligned; one index handles
	// all page sizes, paper §4.4).
	mappings = append(mappings, lvm.Mapping{
		VPN:   0x4000,
		Entry: lvm.NewEntry(0x80000, lvm.Page2M),
	})

	// Train the learned index (paper §4.3). This is what the OS does when
	// the process' first pages are mapped.
	ix, err := lvm.BuildIndex(mem, mappings, lvm.DefaultParams())
	if err != nil {
		panic(err)
	}
	fmt.Printf("learned index: %d bytes (%d nodes, depth %d, %d leaf tables)\n",
		ix.SizeBytes(), ix.NodeCount(), ix.Depth(), ix.LeafCount())

	// Translate: Walk is the hardware path — fixed-point multiply-add per
	// node, then one PTE cluster fetch.
	r := ix.Walk(0xa00 + 1234)
	fmt.Printf("walk VPN 0xa00+1234: found=%t ppn=%#x accesses=%d (1 = single-access)\n",
		r.Found, uint64(r.Entry.PPN()), r.PTEAccesses)

	// A VA inside the huge page resolves to the 2 MB entry.
	pa, ok := ix.Lookup(lvm.VAOf(0x4000) + 0x123456)
	fmt.Printf("huge-page lookup: ok=%t pa=%#x\n", ok, uint64(pa))

	// Insert new mappings: contiguous growth takes the no-retrain path
	// (minimum insertion distance + rescaling, paper §4.3.4).
	for i := 0; i < 1000; i++ {
		err := ix.Insert(lvm.Mapping{
			VPN:   0x3000 + 2048 + lvm.VPN(i),
			Entry: lvm.NewEntry(ppn, lvm.Page4K),
		})
		if err != nil {
			panic(err)
		}
		ppn++
	}
	s := ix.Stats()
	fmt.Printf("after 1000 inserts: retrains=%d rebuilds=%d rescales=%d index=%dB\n",
		s.Retrains, s.Rebuilds, s.Rescales, ix.SizeBytes())

	// Verify everything still translates.
	misses := 0
	for _, m := range mappings {
		if !ix.Walk(m.VPN).Found {
			misses++
		}
	}
	fmt.Printf("post-insert verification: %d misses out of %d mappings\n", misses, len(mappings))
	fmt.Printf("page tables use %d KB for %d translations (ga_scale bounds the gap overhead)\n",
		ix.TableFootprintBytes()>>10, ix.MappedPages())
}
