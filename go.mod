module lvm

go 1.24
