// Package addr defines virtual and physical address types, page sizes, and
// the VPN arithmetic shared by every page-table scheme in the repository.
//
// The conventions follow x86-64 with 48-bit canonical virtual addresses and
// a 4 KB base page. Virtual page numbers (VPNs) are always expressed in
// units of the 4 KB base page, even for huge pages: a 2 MB page is
// identified by the VPN of its first 4 KB sub-page (paper §4.4).
package addr

import "fmt"

// Address-space geometry (x86-64).
const (
	// VABits is the number of meaningful virtual address bits.
	VABits = 48
	// PageShift is log2 of the base page size (4 KB).
	PageShift = 12
	// PageSize4K is the base page size.
	PageSize4K = 1 << PageShift
	// PageSize2M is the transparent-huge-page size.
	PageSize2M = 1 << 21
	// PageSize1G is the 1 GB page size.
	PageSize1G = 1 << 30
	// VPNsPer2M is the number of base-page VPNs covered by a 2 MB page.
	VPNsPer2M = PageSize2M / PageSize4K
	// VPNsPer1G is the number of base-page VPNs covered by a 1 GB page.
	VPNsPer1G = PageSize1G / PageSize4K
	// MaxVPN is the largest base-page VPN in a 48-bit address space.
	MaxVPN = (1 << (VABits - PageShift)) - 1
)

// VA is a virtual address.
type VA uint64

// PA is a physical address.
type PA uint64

// VPN is a virtual page number in units of the 4 KB base page.
type VPN uint64

// PPN is a physical page number in units of the 4 KB base page.
type PPN uint64

// PageSize identifies one of the supported translation granularities.
// LVM supports arbitrarily many page sizes (§4.4); this enum mirrors the
// three x86-64 sizes encoded by the PTE's two size bits.
type PageSize uint8

const (
	// Page4K is a 4 KB base page.
	Page4K PageSize = iota
	// Page2M is a 2 MB huge page.
	Page2M
	// Page1G is a 1 GB huge page.
	Page1G
)

// Bytes returns the size of the page in bytes.
func (s PageSize) Bytes() uint64 {
	switch s {
	case Page4K:
		return PageSize4K
	case Page2M:
		return PageSize2M
	case Page1G:
		return PageSize1G
	}
	//lint:allow hotalloc panic guard, unreachable for the three valid sizes
	panic(fmt.Sprintf("addr: invalid page size %d", s))
}

// BaseVPNs returns the number of 4 KB VPNs the page spans.
func (s PageSize) BaseVPNs() uint64 { return s.Bytes() >> PageShift }

// String implements fmt.Stringer.
func (s PageSize) String() string {
	switch s {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return fmt.Sprintf("PageSize(%d)", uint8(s))
}

// VPNOf returns the base-page VPN containing the virtual address.
func VPNOf(va VA) VPN { return VPN(va >> PageShift) }

// VAOf returns the first virtual address of the VPN.
func VAOf(v VPN) VA { return VA(v << PageShift) }

// PAOf returns the first physical address of the PPN — the page base every
// table scheme uses to locate its structures in physical memory.
func PAOf(p PPN) PA { return PA(p << PageShift) }

// PPNOf returns the physical page number containing the physical address.
func PPNOf(pa PA) PPN { return PPN(pa >> PageShift) }

// SlotPA returns the physical address of the index'th slot of slotBytes
// bytes in a table based at page p. Every scheme's slot/entry addressing is
// this one shape; keeping it here means the PPN→PA step happens in exactly
// one audited place.
func SlotPA(p PPN, index, slotBytes uint64) PA {
	return PAOf(p) + PA(index*slotBytes)
}

// Offset returns the in-page offset of va for the given page size.
func Offset(va VA, s PageSize) uint64 { return uint64(va) & (s.Bytes() - 1) }

// AlignDown rounds the VPN down to the page-size boundary; this is the
// "round down to the first 4 KB sub-page" step used for huge-page lookups
// (paper §4.4).
func AlignDown(v VPN, s PageSize) VPN {
	mask := VPN(s.BaseVPNs() - 1)
	return v &^ mask
}

// Aligned reports whether the VPN sits on the page-size boundary.
func Aligned(v VPN, s PageSize) bool { return v == AlignDown(v, s) }

// Translate combines a PPN with the in-page offset of va to produce the
// final physical address.
func Translate(va VA, ppn PPN, s PageSize) PA {
	return PAOf(ppn) + PA(Offset(va, s))
}

// Radix-level index extraction for 4-level x86-64 page tables. Level 4 is
// the root (PGD), level 1 indexes the leaf (PTE) table. Each level consumes
// 9 bits of the VPN.
const (
	// RadixLevels is the number of levels in an x86-64 radix page table.
	RadixLevels = 4
	// RadixBitsPerLevel is the number of VPN bits consumed per level.
	RadixBitsPerLevel = 9
	// RadixFanout is the number of entries per radix table.
	RadixFanout = 1 << RadixBitsPerLevel
)

// RadixIndex returns the table index used at the given radix level
// (4 = PGD/root ... 1 = PTE/leaf).
func RadixIndex(v VPN, level int) int {
	if level < 1 || level > RadixLevels {
		//lint:allow hotalloc panic guard, unreachable for in-range levels
		panic(fmt.Sprintf("addr: invalid radix level %d", level))
	}
	shift := uint((level - 1) * RadixBitsPerLevel)
	return int((uint64(v) >> shift) & (RadixFanout - 1))
}

// RadixCoverage returns the number of base-page VPNs mapped beneath a single
// entry at the given level (level 1 entry covers 1 page, level 2 covers
// 512 pages = 2 MB, etc.).
func RadixCoverage(level int) uint64 {
	return 1 << uint((level-1)*RadixBitsPerLevel)
}
