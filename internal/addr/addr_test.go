package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSizeBytes(t *testing.T) {
	if Page4K.Bytes() != 4096 {
		t.Errorf("4K = %d", Page4K.Bytes())
	}
	if Page2M.Bytes() != 2<<20 {
		t.Errorf("2M = %d", Page2M.Bytes())
	}
	if Page1G.Bytes() != 1<<30 {
		t.Errorf("1G = %d", Page1G.Bytes())
	}
}

func TestPageSizeBaseVPNs(t *testing.T) {
	if Page4K.BaseVPNs() != 1 {
		t.Errorf("4K VPNs = %d", Page4K.BaseVPNs())
	}
	if Page2M.BaseVPNs() != 512 {
		t.Errorf("2M VPNs = %d", Page2M.BaseVPNs())
	}
	if Page1G.BaseVPNs() != 512*512 {
		t.Errorf("1G VPNs = %d", Page1G.BaseVPNs())
	}
}

func TestPageSizeString(t *testing.T) {
	if Page4K.String() != "4KB" || Page2M.String() != "2MB" || Page1G.String() != "1GB" {
		t.Errorf("String() = %s %s %s", Page4K, Page2M, Page1G)
	}
}

func TestVPNRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		va := VA(raw & ((1 << VABits) - 1))
		v := VPNOf(va)
		return VAOf(v) <= va && va < VAOf(v)+PageSize4K
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignDown(t *testing.T) {
	// Paper §4.4 example: the 2MB page spans VPNs [1024, 1536); every VPN
	// inside it must round down to 1024.
	for _, v := range []VPN{1024, 1025, 1300, 1535} {
		if got := AlignDown(v, Page2M); got != 1024 {
			t.Errorf("AlignDown(%d, 2M) = %d want 1024", v, got)
		}
	}
	if got := AlignDown(1536, Page2M); got != 1536 {
		t.Errorf("AlignDown(1536, 2M) = %d want 1536", got)
	}
	if got := AlignDown(142, Page4K); got != 142 {
		t.Errorf("AlignDown(142, 4K) = %d want 142", got)
	}
}

func TestAligned(t *testing.T) {
	if !Aligned(1024, Page2M) {
		t.Error("1024 should be 2M-aligned")
	}
	if Aligned(1025, Page2M) {
		t.Error("1025 should not be 2M-aligned")
	}
	if !Aligned(7, Page4K) {
		t.Error("every VPN is 4K-aligned")
	}
}

func TestTranslate(t *testing.T) {
	va := VA(139<<PageShift + 0x123)
	got := Translate(va, PPN(0xff), Page4K)
	want := PA(0xff<<PageShift + 0x123)
	if got != want {
		t.Errorf("Translate = %#x want %#x", got, want)
	}
}

func TestTranslateHugePreservesOffset(t *testing.T) {
	// A 2MB translation must preserve the full 21-bit offset.
	va := VA(uint64(1024)<<PageShift + 0x1fe345)
	got := Translate(va, PPN(512), Page2M) // PPN of the huge page's base
	want := PA(uint64(512)<<PageShift + 0x1fe345)
	if got != want {
		t.Errorf("huge Translate = %#x want %#x", got, want)
	}
}

func TestRadixIndex(t *testing.T) {
	// VPN bits: [35:27]=L4, [26:18]=L3, [17:9]=L2, [8:0]=L1.
	v := VPN(0)
	v |= 5 << 27  // L4
	v |= 17 << 18 // L3
	v |= 511 << 9 // L2
	v |= 3        // L1
	if got := RadixIndex(v, 4); got != 5 {
		t.Errorf("L4 index = %d", got)
	}
	if got := RadixIndex(v, 3); got != 17 {
		t.Errorf("L3 index = %d", got)
	}
	if got := RadixIndex(v, 2); got != 511 {
		t.Errorf("L2 index = %d", got)
	}
	if got := RadixIndex(v, 1); got != 3 {
		t.Errorf("L1 index = %d", got)
	}
}

func TestRadixIndexPanicsOnBadLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for level 0")
		}
	}()
	RadixIndex(0, 0)
}

func TestRadixCoverage(t *testing.T) {
	if RadixCoverage(1) != 1 {
		t.Errorf("L1 coverage = %d", RadixCoverage(1))
	}
	if RadixCoverage(2) != 512 {
		t.Errorf("L2 coverage = %d (one L2 entry maps 2MB)", RadixCoverage(2))
	}
	if RadixCoverage(4) != 512*512*512 {
		t.Errorf("L4 coverage = %d", RadixCoverage(4))
	}
}

func TestQuickRadixIndicesReconstructVPN(t *testing.T) {
	f := func(raw uint64) bool {
		v := VPN(raw & MaxVPN)
		var rebuilt uint64
		for level := RadixLevels; level >= 1; level-- {
			rebuilt = rebuilt<<RadixBitsPerLevel | uint64(RadixIndex(v, level))
		}
		return VPN(rebuilt) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffset(t *testing.T) {
	va := VA(0x12345678)
	if got := Offset(va, Page4K); got != 0x678 {
		t.Errorf("4K offset = %#x", got)
	}
	if got := Offset(va, Page2M); got != 0x145678 {
		t.Errorf("2M offset = %#x", got)
	}
}
