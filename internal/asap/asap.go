// Package asap implements ASAP-style prefetched address translation
// (Margaritov et al., MICRO'19), the §7.5.1 comparison. ASAP keeps leaf
// page tables in contiguous physical memory per VMA so the PTE's location
// is directly computable; on a TLB miss it prefetches that location (and
// the PMD's) in parallel with the normal radix walk, which validates the
// prefetch.
//
// The effect the paper measures: latency approaches a single access when
// prefetching works, but every walk still issues the radix requests PLUS
// the prefetches — more traffic and more cache pollution than either ECPT
// or LVM.
package asap

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/radix"
	"lvm/internal/stats"
)

// vma is one registered virtual memory area with its contiguous leaf-table
// region.
type vma struct {
	lo, hi addr.VPN
	// ptBase is the contiguous flat PTE region (8 B per page), when the
	// allocation succeeded.
	prefetchable bool
	ptBase       addr.PPN
	pmdBase      addr.PPN
}

// Table is one process's ASAP state: a plain radix table (the validator)
// plus per-VMA contiguous leaf-table regions.
type Table struct {
	mem   *phys.Memory
	Radix *radix.Table
	vmas  []vma

	allocFailures stats.Counter
}

// New wraps a fresh radix table.
func New(mem *phys.Memory) (*Table, error) {
	rt, err := radix.New(mem)
	if err != nil {
		return nil, err
	}
	return &Table{mem: mem, Radix: rt}, nil
}

// AddVMA registers an area and attempts the contiguous leaf-table
// allocation ASAP requires (potentially hundreds of MB for big VMAs —
// the availability problem §7.5.1 highlights).
func (t *Table) AddVMA(lo, hi addr.VPN) error {
	pages := uint64(hi-lo) + 1
	ptOrder := phys.OrderForBytes(pages * pte.Bytes)
	pmdOrder := phys.OrderForBytes(pages/512*pte.Bytes + pte.Bytes)
	v := vma{lo: lo, hi: hi}
	if ptBase, err := t.mem.Alloc(ptOrder); err == nil {
		if pmdBase, err := t.mem.Alloc(pmdOrder); err == nil {
			v.prefetchable = true
			v.ptBase = ptBase
			v.pmdBase = pmdBase
		} else {
			t.mem.Free(ptBase, ptOrder)
			t.allocFailures.Inc()
		}
	} else {
		t.allocFailures.Inc()
	}
	t.vmas = append(t.vmas, v)
	if !v.prefetchable {
		return fmt.Errorf("asap: VMA [%#x,%#x] not prefetchable (no contiguity)", uint64(lo), uint64(hi))
	}
	return nil
}

// Map installs a translation in the validating radix table.
func (t *Table) Map(v addr.VPN, e pte.Entry) error { return t.Radix.Map(v, e) }

// Unmap removes a translation.
func (t *Table) Unmap(v addr.VPN) bool { return t.Radix.Unmap(v) }

// Lookup is the software walk.
func (t *Table) Lookup(v addr.VPN) (pte.Entry, bool) { return t.Radix.Lookup(v) }

// AllocFailures counts VMAs whose contiguous tables could not be placed.
func (t *Table) AllocFailures() uint64 { return t.allocFailures.Value() }

func (t *Table) vmaFor(v addr.VPN) *vma {
	for i := range t.vmas {
		if v >= t.vmas[i].lo && v <= t.vmas[i].hi {
			return &t.vmas[i]
		}
	}
	return nil
}

// Release frees the per-VMA contiguous arrays and the underlying radix
// table (process exit).
func (t *Table) Release() {
	for _, v := range t.vmas {
		if !v.prefetchable {
			continue
		}
		pages := uint64(v.hi-v.lo) + 1
		t.mem.Free(v.ptBase, phys.OrderForBytes(pages*pte.Bytes))
		t.mem.Free(v.pmdBase, phys.OrderForBytes(pages/512*pte.Bytes+pte.Bytes))
	}
	t.vmas = nil
	t.Radix.Release()
}

// Walker is the ASAP hardware walker: a radix walker plus the prefetcher.
type Walker struct {
	tables map[uint16]*Table
	// lastASID/lastTable memoize the most recent tables lookup so batched
	// walks skip the map per access; Attach/Detach invalidate it.
	lastASID  uint16
	lastTable *Table
	rad       *radix.Walker
	// buf is the reusable walk-trace buffer for prefetchable walks; the
	// embedded radix walker appends into it directly, so composing the
	// prefetches with the validating walk never copies a trace.
	buf mmu.WalkBuf

	// plans queue the VMA decisions recorded by Lookup, consumed in order
	// by WalkBatch; the embedded radix walker queues the matching walk
	// plans (see the mmu.Lookuper contract).
	plans    []plan
	planPos  int
	planASID uint16
}

// plan is one functional lookup's record: whether the VMA is prefetchable
// and, if so, the two flat prefetch PAs. The translation itself is planned
// by the embedded radix walker.
type plan struct {
	vpn      addr.VPN
	noTable  bool
	prefetch bool
	pt, pmd  addr.PA
}

// NewWalker creates the walker (radix PWC sizing from Table 1).
func NewWalker() *Walker {
	return &Walker{tables: make(map[uint16]*Table), rad: radix.NewWalker(32)}
}

// Attach registers a table under an ASID.
func (w *Walker) Attach(asid uint16, t *Table) {
	w.tables[asid] = t
	w.lastTable = nil
	w.rad.Attach(asid, t.Radix)
}

// Detach removes a process's table (and its radix walker state).
func (w *Walker) Detach(asid uint16) {
	delete(w.tables, asid)
	w.lastTable = nil
	w.rad.Detach(asid)
}

// table resolves an ASID's table through the one-entry memo.
func (w *Walker) table(asid uint16) (*Table, bool) {
	if w.lastTable != nil && w.lastASID == asid {
		return w.lastTable, true
	}
	t, ok := w.tables[asid]
	if ok {
		w.lastASID, w.lastTable = asid, t
	}
	return t, ok
}

// Name implements mmu.Walker.
func (w *Walker) Name() string { return "asap" }

// Snapshot implements metrics.Source: ASAP walks through a radix walker,
// so its walk-cache counters are the embedded radix PWC's.
func (w *Walker) Snapshot() metrics.Set { return w.rad.Snapshot() }

var _ metrics.Source = (*Walker)(nil)

// Walk implements mmu.Walker. For prefetchable VMAs all requests — the
// radix walk AND the flat PTE/PMD prefetches — are issued in one parallel
// group: latency collapses to the slowest single request, but the traffic
// is the radix walk plus two.
func (w *Walker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	t, ok := w.table(asid)
	if !ok {
		return mmu.Outcome{}
	}
	vm := t.vmaFor(v)
	if vm == nil || !vm.prefetchable {
		return w.rad.Walk(asid, v) // plain radix behaviour
	}
	// Seed the collapsed buffer with the flat PTE/PMD prefetches, then let
	// the validating radix walk append its requests into the same parallel
	// group — no intermediate slice, no copy.
	w.buf.Reset()
	w.buf.Collapse()
	w.buf.Add(addr.SlotPA(vm.ptBase, uint64(v-vm.lo), pte.Bytes))
	w.buf.Add(addr.SlotPA(vm.pmdBase, uint64(v-vm.lo)/512, pte.Bytes))
	return w.rad.WalkInto(&w.buf, asid, v)
}

// Lookup implements mmu.Lookuper: record the VMA decision (and prefetch
// PAs) here, and delegate the translation to the embedded radix walker's
// Lookup so its plan queue stays aligned with ours.
func (w *Walker) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	if w.planASID != asid {
		w.plans = w.plans[:0]
		w.planPos = 0
		w.planASID = asid
		w.rad.FlushPlans()
	}
	var p plan
	p.vpn = v
	t, ok := w.table(asid)
	if !ok {
		p.noTable = true
		//lint:allow hotalloc plan queue grows to the batch size once, then recycles
		w.plans = append(w.plans, p)
		return 0, false
	}
	if vm := t.vmaFor(v); vm != nil && vm.prefetchable {
		p.prefetch = true
		p.pt = addr.SlotPA(vm.ptBase, uint64(v-vm.lo), pte.Bytes)
		p.pmd = addr.SlotPA(vm.pmdBase, uint64(v-vm.lo)/512, pte.Bytes)
	}
	//lint:allow hotalloc plan queue grows to the batch size once, then recycles
	w.plans = append(w.plans, p)
	return w.rad.Lookup(asid, v)
}

// WalkBatch implements mmu.BatchWalker: seed each slot with its planned
// prefetches and let the embedded radix walker replay (or recompute) the
// validating walk into the same buffer, then drain both plan queues.
func (w *Walker) WalkBatch(asid uint16, vpns []addr.VPN, bufs *mmu.WalkBatchBuf) {
	bufs.Reset(len(vpns))
	for i, v := range vpns {
		b := bufs.Buf(i)
		if w.planPos < len(w.plans) && asid == w.planASID && w.plans[w.planPos].vpn == v {
			p := &w.plans[w.planPos]
			w.planPos++
			if p.noTable {
				bufs.SetOutcome(i, mmu.Outcome{})
				continue
			}
			if p.prefetch {
				b.Collapse()
				b.Add(p.pt)
				b.Add(p.pmd)
			}
			bufs.SetOutcome(i, w.rad.WalkNextInto(b, asid, v))
			continue
		}
		// Mismatch fallback: recompute the VMA decision and walk fresh.
		t, ok := w.table(asid)
		if !ok {
			bufs.SetOutcome(i, mmu.Outcome{})
			continue
		}
		if vm := t.vmaFor(v); vm != nil && vm.prefetchable {
			b.Collapse()
			b.Add(addr.SlotPA(vm.ptBase, uint64(v-vm.lo), pte.Bytes))
			b.Add(addr.SlotPA(vm.pmdBase, uint64(v-vm.lo)/512, pte.Bytes))
		}
		bufs.SetOutcome(i, w.rad.WalkNextInto(b, asid, v))
	}
	w.plans = w.plans[:0]
	w.planPos = 0
	w.rad.FlushPlans()
}

var _ mmu.Walker = (*Walker)(nil)
var _ mmu.BatchWalker = (*Walker)(nil)
var _ mmu.Lookuper = (*Walker)(nil)
