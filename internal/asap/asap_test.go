package asap

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func TestPrefetchableVMA(t *testing.T) {
	mem := phys.New(256 << 20)
	tb, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddVMA(1000, 1000+8191); err != nil {
		t.Fatalf("fresh memory must allow the contiguous table: %v", err)
	}
	tb.Map(1500, pte.New(0xff, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)

	out := w.Walk(1, 1500)
	if !out.Found {
		t.Fatal("walk failed")
	}
	// All requests in one parallel group: the prefetch hides the radix
	// latency, but the traffic is radix + 2.
	if out.NumGroups() != 1 {
		t.Errorf("ASAP must issue one parallel group, got %d", out.NumGroups())
	}
	if out.Refs() < 3 {
		t.Errorf("ASAP refs = %d, want radix walk + 2 prefetches", out.Refs())
	}
}

func TestTrafficExceedsRadix(t *testing.T) {
	mem := phys.New(256 << 20)
	tb, _ := New(mem)
	tb.AddVMA(0, 16383)
	for i := 0; i < 1024; i++ {
		tb.Map(addr.VPN(i), pte.New(addr.PPN(i+1), addr.Page4K))
	}
	w := NewWalker()
	w.Attach(1, tb)
	// Warm walks: radix alone would be 1 ref (PWC hit); ASAP adds 2.
	w.Walk(1, 0)
	out := w.Walk(1, 1)
	if out.Refs() != 3 {
		t.Errorf("warm ASAP refs = %d, want 1 (radix PWC hit) + 2 prefetch", out.Refs())
	}
}

func TestUnprefetchableFallsBackToRadix(t *testing.T) {
	mem := phys.New(64 << 20)
	mem.SetContiguityCap(3) // 32 KB max: a large VMA's table cannot fit
	tb, _ := New(mem)
	if err := tb.AddVMA(0, 1<<20); err == nil {
		t.Fatal("expected prefetchability failure")
	}
	if tb.AllocFailures() != 1 {
		t.Errorf("alloc failures = %d", tb.AllocFailures())
	}
	mem.SetContiguityCap(-1)
	tb.Map(5, pte.New(1, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)
	out := w.Walk(1, 5)
	if !out.Found {
		t.Fatal("walk failed")
	}
	// Plain radix: sequential groups.
	if out.NumGroups() != out.Refs() {
		t.Error("fallback walk must be sequential radix")
	}
}

func TestUnmap(t *testing.T) {
	mem := phys.New(64 << 20)
	tb, _ := New(mem)
	tb.Map(5, pte.New(1, addr.Page4K))
	if !tb.Unmap(5) {
		t.Error("unmap failed")
	}
	if _, ok := tb.Lookup(5); ok {
		t.Error("still mapped")
	}
}
