package asap

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// TestChurnOracle verifies ASAP's table stays a faithful radix table under
// map/unmap churn inside a prefetchable VMA, and that every hit collapses
// to a single parallel group (the prefetcher never changes *what* is found,
// only *when* the requests issue).
func TestChurnOracle(t *testing.T) {
	mem := phys.New(256 << 20)
	tb, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	const lo, span = 4096, 8192
	if err := tb.AddVMA(lo, lo+span-1); err != nil {
		t.Fatal(err)
	}
	w := NewWalker()
	w.Attach(1, tb)

	rng := rand.New(rand.NewSource(23))
	oracle := map[addr.VPN]pte.Entry{}
	for op := 0; op < 6000; op++ {
		v := addr.VPN(lo + rng.Intn(span))
		if _, ok := oracle[v]; ok && rng.Intn(3) == 0 {
			if !tb.Unmap(v) {
				t.Fatalf("op %d: unmap failed", op)
			}
			delete(oracle, v)
		} else {
			e := pte.New(addr.PPN(op+1), addr.Page4K)
			if err := tb.Map(v, e); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			oracle[v] = e
		}
	}
	for v := addr.VPN(lo); v < lo+span; v += 5 {
		out := w.Walk(1, v)
		want, mapped := oracle[v]
		if out.Found != mapped {
			t.Fatalf("VPN %d: found=%t oracle=%t", v, out.Found, mapped)
		}
		if mapped && out.Entry != want {
			t.Fatalf("VPN %d: entry %v want %v", v, out.Entry, want)
		}
		if mapped && out.NumGroups() != 1 {
			t.Fatalf("VPN %d: prefetchable walk has %d groups, want 1", v, out.NumGroups())
		}
	}
}

// TestPrefetchLatencyCollapses checks the core ASAP trade: within a
// prefetchable VMA the walk has strictly fewer sequential groups than plain
// radix (latency), while issuing strictly more total requests (traffic).
func TestPrefetchLatencyCollapses(t *testing.T) {
	mem := phys.New(256 << 20)
	tb, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddVMA(1<<20, 1<<20+4095); err != nil {
		t.Fatal(err)
	}
	inVMA := addr.VPN(1<<20 + 77)
	outVMA := addr.VPN(1 << 24)
	tb.Map(inVMA, pte.New(1, addr.Page4K))
	tb.Map(outVMA, pte.New(2, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)

	// Walk outcomes view the walker's reusable buffer, so snapshot the
	// first walk's counts before issuing the second.
	pref := w.Walk(1, inVMA)
	prefGroups, prefRefs := pref.NumGroups(), pref.Refs()
	plain := w.Walk(1, outVMA)
	if prefGroups >= plain.NumGroups() {
		t.Errorf("prefetch groups %d not fewer than radix groups %d",
			prefGroups, plain.NumGroups())
	}
	if prefRefs <= plain.Refs() {
		t.Errorf("prefetch refs %d not more than radix refs %d (cold)",
			prefRefs, plain.Refs())
	}
}

// TestAllocFailuresUnderFragmentation: ASAP needs physically contiguous
// PT/PMD arrays per VMA; on capped memory AddVMA records the failure and
// the VMA degrades to plain radix walking.
func TestAllocFailuresUnderFragmentation(t *testing.T) {
	mem := phys.New(256 << 20)
	mem.Fragment(3, phys.DatacenterFragmentation)
	mem.SetContiguityCap(4) // ≤64KB: an 8192-page VMA's flat PT can't allocate
	tb, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddVMA(0, 1<<20-1); err == nil {
		t.Fatal("AddVMA allocated contiguous arrays on capped memory")
	}
	if tb.AllocFailures() == 0 {
		t.Fatal("no alloc failures recorded on capped memory")
	}
	tb.Map(500, pte.New(9, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)
	out := w.Walk(1, 500)
	if !out.Found {
		t.Fatal("walk failed")
	}
	if out.NumGroups() < 2 {
		t.Errorf("unprefetchable VMA should walk sequentially, got %d groups", out.NumGroups())
	}
}
