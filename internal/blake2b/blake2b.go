// Package blake2b implements the BLAKE2b hash function of RFC 7693,
// unkeyed, with selectable digest size up to 64 bytes.
//
// The paper's §7.3 collision-rate baseline is "a hash table that has a load
// factor of 0.6 and uses the state-of-the-art hash function Blake2"; the
// repository is restricted to the standard library, so the algorithm is
// implemented here from the RFC. Only the pieces the baseline needs are
// provided: one-shot hashing and a convenience Sum64 for table indexing.
package blake2b

import "encoding/binary"

// iv is the BLAKE2b initialization vector (RFC 7693 §2.6).
var iv = [8]uint64{
	0x6a09e667f3bcc908, 0xbb67ae8584caa73b,
	0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
	0x510e527fade682d1, 0x9b05688c2b3e6c1f,
	0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
}

// sigma is the message schedule (RFC 7693 §2.7).
var sigma = [12][16]uint8{
	{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	{14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
	{11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
	{7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
	{9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
	{2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
	{12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
	{13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
	{6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
	{10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0},
	{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	{14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
}

func rotr(x uint64, n uint) uint64 { return x>>n | x<<(64-n) }

// g is the BLAKE2b mixing function (RFC 7693 §3.1).
func g(v *[16]uint64, a, b, c, d int, x, y uint64) {
	v[a] = v[a] + v[b] + x
	v[d] = rotr(v[d]^v[a], 32)
	v[c] = v[c] + v[d]
	v[b] = rotr(v[b]^v[c], 24)
	v[a] = v[a] + v[b] + y
	v[d] = rotr(v[d]^v[a], 16)
	v[c] = v[c] + v[d]
	v[b] = rotr(v[b]^v[c], 63)
}

// compress applies the F compression function to one 128-byte block.
func compress(h *[8]uint64, block *[128]byte, t uint64, final bool) {
	var m [16]uint64
	for i := range m {
		m[i] = binary.LittleEndian.Uint64(block[i*8:])
	}
	var v [16]uint64
	copy(v[:8], h[:])
	copy(v[8:], iv[:])
	v[12] ^= t // low word of the offset counter; high word is 0 for our sizes
	if final {
		v[14] = ^v[14]
	}
	for r := 0; r < 12; r++ {
		s := &sigma[r]
		g(&v, 0, 4, 8, 12, m[s[0]], m[s[1]])
		g(&v, 1, 5, 9, 13, m[s[2]], m[s[3]])
		g(&v, 2, 6, 10, 14, m[s[4]], m[s[5]])
		g(&v, 3, 7, 11, 15, m[s[6]], m[s[7]])
		g(&v, 0, 5, 10, 15, m[s[8]], m[s[9]])
		g(&v, 1, 6, 11, 12, m[s[10]], m[s[11]])
		g(&v, 2, 7, 8, 13, m[s[12]], m[s[13]])
		g(&v, 3, 4, 9, 14, m[s[14]], m[s[15]])
	}
	for i := 0; i < 8; i++ {
		h[i] ^= v[i] ^ v[i+8]
	}
}

// Sum computes the unkeyed BLAKE2b digest of data with the given output
// size in bytes (1..64).
func Sum(data []byte, size int) []byte {
	if size < 1 || size > 64 {
		panic("blake2b: digest size out of range")
	}
	var h [8]uint64
	copy(h[:], iv[:])
	// Parameter block: digest length, fanout=1, depth=1.
	h[0] ^= 0x01010000 ^ uint64(size)

	var block [128]byte
	var t uint64
	for len(data) > 128 {
		copy(block[:], data[:128])
		t += 128
		compress(&h, &block, t, false)
		data = data[128:]
	}
	// Final (possibly partial, possibly empty) block.
	block = [128]byte{}
	copy(block[:], data)
	t += uint64(len(data))
	compress(&h, &block, t, true)

	out := make([]byte, 64)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], h[i])
	}
	return out[:size]
}

// Sum256 computes the 32-byte BLAKE2b-256 digest.
func Sum256(data []byte) [32]byte {
	var d [32]byte
	copy(d[:], Sum(data, 32))
	return d
}

// Sum64 hashes a 64-bit key and returns the first 8 digest bytes as a
// uint64, the form the hashed-page-table baseline uses for slot selection.
// It runs the single-block path inline — same parameter block and final
// compression as Sum(key, 8) — so hot-path table indexing never allocates
// a digest buffer.
func Sum64(key uint64) uint64 {
	var h [8]uint64
	copy(h[:], iv[:])
	h[0] ^= 0x01010000 ^ 8
	var block [128]byte
	binary.LittleEndian.PutUint64(block[:], key)
	compress(&h, &block, 8, true)
	return h[0]
}
