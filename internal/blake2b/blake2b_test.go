package blake2b

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Known-answer tests from the RFC 7693 appendix and the official BLAKE2
// test vectors (unkeyed BLAKE2b-512).
func TestKnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		// RFC 7693 Appendix A: BLAKE2b-512("abc").
		{"abc", "ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d17d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923"},
		// Empty input, from the official test vectors.
		{"", "786a02f742015903c6c6fd852552d272912f4740e15847618a86e217f71f5419d25e1031afee585313896444934eb04b903a685b1448b755d56f701afe9be2ce"},
	}
	for _, c := range cases {
		got := hex.EncodeToString(Sum([]byte(c.in), 64))
		if got != c.want {
			t.Errorf("BLAKE2b-512(%q) =\n%s want\n%s", c.in, got, c.want)
		}
	}
}

func TestMultiBlock(t *testing.T) {
	// Exercise the multi-block path: input longer than 128 bytes must not
	// equal the hash of its prefix and must be deterministic.
	long := bytes.Repeat([]byte("x"), 1000)
	a := Sum256(long)
	b := Sum256(long)
	if a != b {
		t.Error("hash not deterministic")
	}
	c := Sum256(long[:999])
	if a == c {
		t.Error("prefix collision")
	}
}

func TestExactBlockBoundaries(t *testing.T) {
	// Lengths around the 128-byte block size all hash distinctly.
	seen := map[[32]byte]int{}
	for _, n := range []int{127, 128, 129, 255, 256, 257} {
		d := Sum256(bytes.Repeat([]byte{0xab}, n))
		if prev, dup := seen[d]; dup {
			t.Errorf("lengths %d and %d collide", prev, n)
		}
		seen[d] = n
	}
}

func TestDigestSizes(t *testing.T) {
	for _, size := range []int{1, 8, 16, 32, 64} {
		if got := len(Sum([]byte("key"), size)); got != size {
			t.Errorf("size %d: got %d bytes", size, got)
		}
	}
	// Different sizes are different hash functions (parameter block).
	a := Sum([]byte("key"), 32)
	b := Sum([]byte("key"), 64)
	if bytes.Equal(a, b[:32]) {
		t.Error("digest size must alter the parameter block")
	}
}

func TestBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	Sum(nil, 0)
}

func TestSum64Distribution(t *testing.T) {
	// Sanity: low bits of Sum64 over sequential keys look uniform enough
	// for table indexing (no bucket gets > 3x its fair share).
	const buckets = 64
	const n = 64 * 256
	var counts [buckets]int
	for i := uint64(0); i < n; i++ {
		counts[Sum64(i)%buckets]++
	}
	for b, c := range counts {
		if c > 3*n/buckets {
			t.Errorf("bucket %d has %d of %d keys", b, c, n)
		}
	}
}

func TestQuickNoTrivialCollisions(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Sum64(a) != Sum64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
