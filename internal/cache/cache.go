// Package cache models a three-level set-associative cache hierarchy with
// LRU replacement and per-level hit/miss accounting split between demand
// (data/instruction) requests and page-walk requests.
//
// The split matters: the paper's Figure 12 shows ECPT polluting L2/L3 with
// speculative PTE fetches while LVM stays within 1% of radix's MPKI. Walk
// requests can be configured to enter the hierarchy at L2 (the default) or
// L1 (the §7.2 "Connecting PTW to L1/L2 cache" study).
package cache

import (
	"lvm/internal/addr"
	"lvm/internal/dram"
	"lvm/internal/metrics"
	"lvm/internal/stats"
)

// LineBytes is the cache line size.
const LineBytes = 64

// LevelConfig describes one cache level.
type LevelConfig struct {
	SizeBytes int
	Ways      int
	// LatencyCycles is the round-trip latency on a hit at this level.
	LatencyCycles int
}

// Config is the hierarchy configuration (Table 1).
type Config struct {
	L1, L2, L3 LevelConfig
	// WalkEntryLevel is where page-walk requests enter: 1 (L1) or 2 (L2).
	WalkEntryLevel int
}

// DefaultConfig matches Table 1: 32 KB 8-way L1 (1 cycle), 1 MB 8-way L2
// (20 cycles), 2 MB 16-way L3 slice (56 cycles); walkers connect to L2.
func DefaultConfig() Config {
	return Config{
		L1:             LevelConfig{32 << 10, 8, 1},
		L2:             LevelConfig{1 << 20, 8, 20},
		L3:             LevelConfig{2 << 20, 16, 56},
		WalkEntryLevel: 2,
	}
}

// noLine is the empty-way sentinel: line tags are PA/LineBytes, so no
// reachable physical address can produce it.
const noLine = ^uint64(0)

type level struct {
	cfg  LevelConfig
	slab []uint64 // nsets × Ways line tags, most-recent-first per set
	// ways mirrors cfg.Ways; nsets the set count — kept flat so the lookup
	// hot path indexes the contiguous slab without pointer-chasing per-set
	// slice headers.
	ways, nsets int

	demandHits, demandMisses stats.Counter
	walkHits, walkMisses     stats.Counter
}

func newLevel(cfg LevelConfig) *level {
	nsets := cfg.SizeBytes / LineBytes / cfg.Ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		//lint:allow nopanic compile-time geometry from sim.Config, never reachable from run inputs
		panic("cache: set count must be a positive power of two")
	}
	l := &level{cfg: cfg, ways: cfg.Ways, nsets: nsets, slab: make([]uint64, nsets*cfg.Ways)}
	for i := range l.slab {
		l.slab[i] = noLine
	}
	return l
}

// setIndex hashes the line address into a set, as modern LLCs do: pure
// modulo indexing makes every page-aligned structure (page tables are page
// aligned) collide in set 0 once set counts are small, which is an artifact
// of the scaled-down model rather than of any translation scheme.
func (l *level) setIndex(line uint64) int {
	h := line ^ line>>7 ^ line>>13
	return int(h) & (l.nsets - 1)
}

func (l *level) lookup(line uint64, walk bool) bool {
	base := l.setIndex(line) * l.ways
	set := l.slab[base : base+l.ways]
	for i, tag := range set {
		if tag == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			if walk {
				l.walkHits.Inc()
			} else {
				l.demandHits.Inc()
			}
			return true
		}
	}
	if walk {
		l.walkMisses.Inc()
	} else {
		l.demandMisses.Inc()
	}
	return false
}

func (l *level) fill(line uint64) {
	base := l.setIndex(line) * l.ways
	set := l.slab[base : base+l.ways]
	copy(set[1:], set[:l.ways-1])
	set[0] = line
}

// Hierarchy is the L1/L2/L3 + DRAM stack.
type Hierarchy struct {
	cfg    Config
	levels [3]*level
	dram   *dram.Model
}

// New builds the hierarchy over the given DRAM model.
func New(cfg Config, mem *dram.Model) *Hierarchy {
	if cfg.WalkEntryLevel != 1 && cfg.WalkEntryLevel != 2 {
		//lint:allow nopanic compile-time geometry from sim.Config, never reachable from run inputs
		panic("cache: WalkEntryLevel must be 1 or 2")
	}
	return &Hierarchy{
		cfg:    cfg,
		levels: [3]*level{newLevel(cfg.L1), newLevel(cfg.L2), newLevel(cfg.L3)},
		dram:   mem,
	}
}

// Access performs one request and returns its latency in cycles. Walk
// requests enter at the configured level; demand requests at L1.
func (h *Hierarchy) Access(pa addr.PA, walk bool) int {
	line := uint64(pa) / LineBytes
	start := 0
	if walk && h.cfg.WalkEntryLevel == 2 {
		start = 1
	}
	latency := 0
	for i := start; i < 3; i++ {
		latency = h.levels[i].cfg.LatencyCycles
		if h.levels[i].lookup(line, walk) {
			// Fill upward so subsequent accesses hit closer (but never
			// above the entry point).
			for j := start; j < i; j++ {
				h.levels[j].fill(line)
			}
			return latency
		}
	}
	latency = h.levels[2].cfg.LatencyCycles + h.dram.Access(pa)
	for j := start; j < 3; j++ {
		h.levels[j].fill(line)
	}
	return latency
}

// MPKI returns misses-per-kilo-instruction at the given level (1-3) for
// the given instruction count, counting both demand and walk misses —
// the Figure 12 metric.
func (h *Hierarchy) MPKI(level int, instructions uint64) float64 {
	l := h.levels[level-1]
	return stats.PerKilo(l.demandMisses.Value()+l.walkMisses.Value(), instructions)
}

// Misses returns total misses at a level.
func (h *Hierarchy) Misses(level int) uint64 {
	l := h.levels[level-1]
	return l.demandMisses.Value() + l.walkMisses.Value()
}

// WalkMisses returns walk-request misses at a level.
func (h *Hierarchy) WalkMisses(level int) uint64 { return h.levels[level-1].walkMisses.Value() }

// DemandMisses returns demand-request misses at a level.
func (h *Hierarchy) DemandMisses(level int) uint64 { return h.levels[level-1].demandMisses.Value() }

// HitRate returns the hit rate at a level.
func (h *Hierarchy) HitRate(level int) float64 {
	l := h.levels[level-1]
	hits := l.demandHits.Value() + l.walkHits.Value()
	misses := l.demandMisses.Value() + l.walkMisses.Value()
	return stats.Ratio(hits, hits+misses)
}

// DRAM returns the underlying memory model.
func (h *Hierarchy) DRAM() *dram.Model { return h.dram }

// levelNames index the metric namespace per cache level.
var levelNames = [3]string{"l1", "l2", "l3"}

// Snapshot implements metrics.Source: per-level hit/miss counters split by
// request class (demand vs page-walk). The split is the Figure-12
// interface — walk pollution is only visible when walk misses are
// distinguishable. The backing DRAM model snapshots separately (the
// simulator namespaces it under "dram").
func (h *Hierarchy) Snapshot() metrics.Set {
	var s metrics.Set
	for i, l := range h.levels {
		name := levelNames[i]
		s.Counter(name+".demand_hits", l.demandHits.Value())
		s.Counter(name+".demand_misses", l.demandMisses.Value())
		s.Counter(name+".walk_hits", l.walkHits.Value())
		s.Counter(name+".walk_misses", l.walkMisses.Value())
	}
	return s
}

var _ metrics.Source = (*Hierarchy)(nil)
