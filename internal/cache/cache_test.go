package cache

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/dram"
)

func newHier() *Hierarchy {
	return New(DefaultConfig(), dram.New(dram.DefaultConfig()))
}

func TestColdMissThenHit(t *testing.T) {
	h := newHier()
	first := h.Access(0x1000, false)
	if first <= DefaultConfig().L3.LatencyCycles {
		t.Errorf("cold miss latency %d should include DRAM", first)
	}
	second := h.Access(0x1000, false)
	if second != DefaultConfig().L1.LatencyCycles {
		t.Errorf("warm hit latency = %d want L1 %d", second, DefaultConfig().L1.LatencyCycles)
	}
}

func TestSameLineSharesEntry(t *testing.T) {
	h := newHier()
	h.Access(0x1000, false)
	if got := h.Access(0x1030, false); got != DefaultConfig().L1.LatencyCycles {
		t.Errorf("same-line access latency = %d", got)
	}
}

func TestWalkEntersAtL2(t *testing.T) {
	h := newHier()
	h.Access(0x1000, true) // cold walk miss
	lat := h.Access(0x1000, true)
	if lat != DefaultConfig().L2.LatencyCycles {
		t.Errorf("warm walk hit latency = %d want L2 %d (walks bypass L1)", lat, DefaultConfig().L2.LatencyCycles)
	}
	// The walk line was never installed in L1: a demand access to it must
	// miss L1 and hit L2.
	if got := h.Access(0x1000, false); got != DefaultConfig().L2.LatencyCycles {
		t.Errorf("demand after walk = %d want L2 hit", got)
	}
}

func TestWalkEntersAtL1WhenConfigured(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WalkEntryLevel = 1
	h := New(cfg, dram.New(dram.DefaultConfig()))
	h.Access(0x1000, true)
	if got := h.Access(0x1000, true); got != cfg.L1.LatencyCycles {
		t.Errorf("PTW-to-L1 warm walk = %d want L1 hit", got)
	}
}

func TestMPKIAccounting(t *testing.T) {
	h := newHier()
	// 3 distinct lines cold-miss all levels.
	h.Access(0x10000, false)
	h.Access(0x20000, false)
	h.Access(0x30000, false)
	if got := h.MPKI(3, 1000); got != 3 {
		t.Errorf("L3 MPKI = %v want 3", got)
	}
	if h.DemandMisses(1) != 3 || h.WalkMisses(1) != 0 {
		t.Errorf("demand/walk split wrong: %d/%d", h.DemandMisses(1), h.WalkMisses(1))
	}
	h.Access(0x40000, true)
	if h.WalkMisses(2) != 1 {
		t.Errorf("walk misses L2 = %d", h.WalkMisses(2))
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg, dram.New(dram.DefaultConfig()))
	l1 := h.levels[0]
	// Collect ways+1 lines that hash into line 0's L1 set (set indexing is
	// hashed, so conflicting lines are found by search).
	target := l1.setIndex(0)
	lines := []uint64{0}
	for cand := uint64(1); len(lines) <= l1.cfg.Ways; cand++ {
		if l1.setIndex(cand) == target {
			lines = append(lines, cand)
		}
	}
	for _, line := range lines {
		h.Access(addr.PA(line*LineBytes), false)
	}
	// Line 0 must have been evicted from L1 (hits L2 now).
	if got := h.Access(0, false); got != cfg.L2.LatencyCycles {
		t.Errorf("evicted line latency = %d want L2 %d", got, cfg.L2.LatencyCycles)
	}
}

func TestDRAMCounting(t *testing.T) {
	h := newHier()
	h.Access(0x1000, false)
	h.Access(0x1000, false)
	if h.DRAM().Accesses() != 1 {
		t.Errorf("DRAM accesses = %d want 1", h.DRAM().Accesses())
	}
}

func TestHitRate(t *testing.T) {
	h := newHier()
	h.Access(0x1000, false)
	h.Access(0x1000, false)
	h.Access(0x1000, false)
	if got := h.HitRate(1); got < 0.66 || got > 0.67 {
		t.Errorf("L1 hit rate = %v want 2/3", got)
	}
}

func TestBadWalkEntryPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WalkEntryLevel = 3
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(cfg, dram.New(dram.DefaultConfig()))
}
