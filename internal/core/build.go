package core

import (
	"errors"
	"fmt"
	"math"

	"lvm/internal/addr"
	"lvm/internal/fixed"
	"lvm/internal/gapped"
	"lvm/internal/model"
	"lvm/internal/pte"
)

// errErrBound signals that a trained leaf cannot satisfy the error bound;
// the parent responds by boosting x3 and subdividing further (paper §4.3.3).
var errErrBound = errors.New("core: leaf error bound violated")

// builder runs the recursive training process of §4.3.1–§4.3.3.
type builder struct {
	ix *Index
	p  Params
	// totalPages is the whole index's mapped base-page count.
	totalPages uint64
}

// pagesOf sums the base-page coverage of a mapping set.
func pagesOf(ms []Mapping) uint64 {
	var pages uint64
	for _, m := range ms {
		pages += m.Entry.Size().BaseVPNs()
	}
	return pages
}

// buildNode trains the node responsible for mappings ms covering the VPN
// range [lo, hi].
//
// The loop implements §4.3.3's feedback: if any leaf in the subtree cannot
// satisfy the error bound, the cost model is re-evaluated with a boosted x3
// and a higher minimum fanout so the key space is subdivided more finely,
// until the bound holds, widening is impossible, or attempts run out.
func (b *builder) buildNode(ms []Mapping, lo, hi uint64, depth int) (*node, error) {
	if len(ms) == 0 {
		return b.makeEmptyLeaf(lo, hi)
	}
	if depth >= b.p.DLimit {
		// Depth limit reached: the node must be a leaf regardless of the
		// cost model (the d_limit constraint of §4.2.3).
		return b.makeLeaf(ms, lo, hi, true)
	}

	x3 := b.p.X3
	minN := 0
	var best *node
	for attempt := 0; attempt < 6; attempt++ {
		fanout := b.chooseFanout(ms, lo, hi, depth, x3, minN)
		if fanout <= 1 {
			// Skip the (expensive) table build when the trial placement
			// or the regression residual already shows the error bound
			// cannot hold.
			if _, _, disp := b.trialLeaf(ms); disp <= b.p.ErrSlotBudget &&
				b.residualOf(ms) <= b.p.ResidualSlotBudget {
				n, err := b.makeLeaf(ms, lo, hi, false)
				if err == nil {
					return n, nil
				}
				if !errors.Is(err, errErrBound) {
					return nil, err
				}
			}
			// The leaf cannot meet the error bound: force subdividing on
			// the next attempt.
			x3 *= b.p.X3BoostFactor
			if minN = 2 * max2(minN, 1); minN < b.minFanoutForSlope(lo, hi) {
				minN = b.minFanoutForSlope(lo, hi)
			}
			continue
		}
		n, err := b.makeInternal(ms, lo, hi, fanout, depth)
		if errors.Is(err, errDegenerate) {
			// Quantization collapsed the internal model; fall back to a
			// leaf with a relaxed bound.
			if best != nil {
				releaseSubtree(best)
			}
			return b.makeLeaf(ms, lo, hi, true)
		}
		if err != nil {
			if best != nil {
				releaseSubtree(best)
			}
			return nil, err
		}
		if w := b.violationKeys(n); w*10 <= uint64(len(ms)) {
			// Accept: violations (if any) affect a negligible fraction of
			// keys — widening the whole node to chase them would inflate
			// the index against the cost model's own objective.
			if best != nil {
				releaseSubtree(best)
			}
			return n, nil
		}
		// Some leaf below still violates the bound: keep this attempt as
		// the best so far and retry with a boosted x3 and more children.
		if best != nil {
			releaseSubtree(best)
		}
		best = n
		x3 *= b.p.X3BoostFactor
		minN = fanout * 2
		if minN > b.p.MaxFanout || fanout >= b.maxFanoutForCoverage(lo, hi, depth) {
			break
		}
	}
	if best != nil {
		return best, nil
	}
	return b.makeLeaf(ms, lo, hi, true)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// violationKeys returns the keys held by leaves that exceed the error
// budgets, the quantity the §4.3.3 feedback loop drives down.
func (b *builder) violationKeys(n *node) uint64 {
	if n.isLeaf() {
		if n.maxDisp > b.p.ErrSlotBudget || n.residual > b.p.ResidualSlotBudget {
			if n.table != nil {
				return uint64(n.table.Used())
			}
		}
		return 0
	}
	var total uint64
	for _, c := range n.children {
		total += b.violationKeys(c)
	}
	return total
}

// releaseSubtree frees the gapped tables of a discarded build attempt.
func releaseSubtree(n *node) {
	if n.isLeaf() {
		if n.table != nil {
			n.table.Release()
		}
		return
	}
	for _, c := range n.children {
		releaseSubtree(c)
	}
}

// maxFanoutForCoverage returns the coverage-floor cap on children created
// at depth+1. The floor scales with depth the way radix locality does: a
// node near the root must cover as much per byte as an upper radix level
// (256 KB of VA per byte), while a node at the leaf level only needs to
// match a radix PTE table's locality (a 4 KB table mapping 2 MB), giving a
// 16× smaller floor per level (paper §4.2.3).
func (b *builder) maxFanoutForCoverage(lo, hi uint64, depth int) int {
	rangeBytes := (hi - lo + 1) << addr.PageShift
	floor := b.p.CoverageFloor >> (4 * uint(depth-1))
	if floor < 4<<10 {
		floor = 4 << 10
	}
	n := int(rangeBytes / (NodeBytes * floor))
	if n < 1 {
		n = 1
	}
	return n
}

// errBudgetRanks converts the residual budget into rank units for spline
// counting (ranks are pre-GAScale positions).
func (b *builder) errBudgetRanks() float64 {
	return float64(b.p.ResidualSlotBudget) / b.p.GAScale
}

// residualOf returns the scaled worst-case model residual, in slots, of a
// single linear model over the mappings.
func (b *builder) residualOf(ms []Mapping) int {
	keys := make([]uint64, len(ms))
	for i, m := range ms {
		keys[i] = uint64(m.VPN)
	}
	l := model.FitRanks(keys)
	return int(l.MaxAbsErr() * b.p.GAScale)
}

func splineEstimate(ms []Mapping, errBudget float64) int {
	keys := make([]uint64, len(ms))
	for i, m := range ms {
		keys[i] = uint64(m.VPN)
	}
	return model.SplinePoints(keys, errBudget)
}

// chooseFanout evaluates the cost model C(n) = x1·d + x2·s + x3·cr·ma over
// candidate child counts around the spline-point estimate (±2, §4.2.3) and
// returns the winner; a result of 1 means "stay a leaf".
func (b *builder) chooseFanout(ms []Mapping, lo, hi uint64, depth int, x3 float64, minN int) int {
	sp := splineEstimate(ms, b.errBudgetRanks())

	// Constraint: children must each cover enough address space per byte
	// of index (the cacheability floor of §4.2.3).
	maxByCoverage := b.maxFanoutForCoverage(lo, hi, depth)

	// Constraint: if the leaf table would exceed the available physical
	// contiguity, enough siblings must be created for each table to fit
	// (the adaptive leaf sizing of §4.2.2).
	minByContiguity := b.minFanoutForContiguity(len(ms))

	// Constraint: an internal model's quantized slope (n / range) must be
	// at least one Q44.20 ulp or the model cannot distinguish children.
	minInternal := b.minFanoutForSlope(lo, hi)
	if minByContiguity > minInternal {
		minInternal = minByContiguity
	}
	if minN > minInternal {
		minInternal = minN
	}

	bestN, bestC := 0, math.Inf(1)
	if minByContiguity <= 1 && minN <= 1 {
		// A leaf is admissible.
		cr, ma, _ := b.trialLeaf(ms)
		bestN, bestC = 1, b.p.X1*1+b.p.X2*lines(NodeBytes)+x3*cr*ma
	}
	// Candidates: ±2 around the spline estimate (§4.2.3), plus small
	// fanouts — when one giant segment dominates the key space, a narrow
	// node that descends is far cheaper in walk-cache pressure than a wide
	// one whose width mirrors the count of tiny auxiliary segments.
	candidates := []int{2, 3, 4}
	for n := sp - 2; n <= sp+2; n++ {
		candidates = append(candidates, n)
	}
	// The feedback loop (§4.3.3) may demand a minimum fanout beyond every
	// spline-based candidate; the minimum itself must stay evaluable or
	// escalation would dead-end in a leaf.
	candidates = append(candidates, minInternal, minInternal+1, minInternal+2)
	seen := map[int]bool{}
	for _, n := range candidates {
		if n < minInternal || n > b.p.MaxFanout || n > maxByCoverage || seen[n] {
			continue
		}
		seen[n] = true
		c := b.splitCost(ms, lo, hi, n, depth, x3)
		if c < bestC {
			bestC, bestN = c, n
		}
	}
	if bestN == 0 {
		// No admissible split and no admissible leaf (contiguity demanded
		// a split that coverage or fanout forbids): fall back to a leaf,
		// which will chain extents if it must.
		bestN = 1
	}
	_ = depth
	return bestN
}

// minFanoutForSlope returns the smallest child count whose internal model
// slope n/(hi−lo+1) survives Q44.20 quantization (≥ 2^-20).
func (b *builder) minFanoutForSlope(lo, hi uint64) int {
	span := hi - lo + 1
	n := int(span>>fixed.FracBits) + 2
	if n < 2 {
		n = 2
	}
	return n
}

// lines converts bytes to 64-byte cache lines, the size unit s of the cost
// model (a node's cost is its pressure on the walk cache).
func lines(bytes int) float64 { return float64(bytes) / 64 }

// splitCost estimates C(n) for subdividing into n children: depth, index
// size, and the children's collision costs. A child whose keys cannot be
// described by one model within the error bounds will subdivide again, so
// its hidden depth and width are priced with a one-level lookahead.
func (b *builder) splitCost(ms []Mapping, lo, hi uint64, n, depth int, x3 float64) float64 {
	parts := partitionEven(ms, lo, hi, n)
	var crma float64
	d := 2.0
	extraNodes := 0
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		cr, ma, disp := b.trialLeaf(part)
		crma += cr * ma * float64(len(part))
		if depth+1 < b.p.DLimit &&
			(disp > b.p.ErrSlotBudget || b.residualOf(part) > b.p.ResidualSlotBudget) {
			// This child will split again: one more level, and its own
			// children join the index.
			d = 3
			extraNodes += splineEstimate(part, b.errBudgetRanks())
		}
	}
	crma /= float64(len(ms))
	return b.p.X1*d + b.p.X2*lines((1+n+extraNodes)*NodeBytes) + x3*crma
}

// partitionEven splits mappings by even key-space division (float-space;
// used only for cost estimation).
func partitionEven(ms []Mapping, lo, hi uint64, n int) [][]Mapping {
	parts := make([][]Mapping, n)
	span := float64(hi-lo) + 1
	for _, m := range ms {
		i := int(float64(uint64(m.VPN)-lo) / span * float64(n))
		if i >= n {
			i = n - 1
		}
		parts[i] = append(parts[i], m)
	}
	return parts
}

// trialLeaf fits a leaf model over the mappings and simulates placement
// into a gapped array, returning the collision rate cr, the mean extra
// memory accesses per collision ma (the cost-model inputs of §4.2.3), and
// the maximum displacement between prediction and placement.
func (b *builder) trialLeaf(ms []Mapping) (cr, ma float64, maxDisp int) {
	preds := b.predictedSlots(ms)
	size := preds[len(preds)-1] + b.p.InsertReach + 1
	if occ := int(float64(len(ms))*b.p.GAScale) + 1; size < occ {
		size = occ
	}
	// Predictions are monotone but may repeat; simulate nearest-free-slot
	// placement. Keys arrive in ascending order, so when a prediction
	// plateau piles up, the free slot is always upward of the plateau —
	// track a rolling hint to keep the trial linear.
	occupied := make([]bool, size)
	collisions, extra := 0, 0
	hint := 0
	for _, p := range preds {
		if p >= size {
			p = size - 1
		}
		if !occupied[p] {
			occupied[p] = true
			continue
		}
		collisions++
		if hint <= p {
			hint = p + 1
		}
		for hint < size && occupied[hint] {
			hint++
		}
		d := 0
		if hint < size {
			occupied[hint] = true
			d = hint - p
		} else {
			d = size - p
		}
		extra += clusterDistance(d)
		if d > maxDisp {
			maxDisp = d
		}
	}
	if collisions == 0 {
		return 0, 0, maxDisp
	}
	return float64(collisions) / float64(len(ms)), float64(extra) / float64(collisions), maxDisp
}

// clusterDistance converts a slot displacement into the number of extra
// cluster fetches a lookup needs (outward search visits both sides).
func clusterDistance(slots int) int {
	c := (slots + pte.ClusterSlots - 1) / pte.ClusterSlots
	if c == 0 {
		return 0
	}
	return 2*c - 1
}

// predictedSlots trains the (quantized) leaf model over ms and returns the
// predicted slot of every key, shifted so the minimum is 0, in key order.
// The same quantized arithmetic is used at build and walk time.
func (b *builder) predictedSlots(ms []Mapping) []int {
	keys := make([]uint64, len(ms))
	for i, m := range ms {
		keys[i] = uint64(m.VPN)
	}
	l := model.FitRanks(keys)
	l.Slope *= b.p.GAScale
	l.Intercept *= b.p.GAScale
	slope, intercept := l.Quantize()
	preds := make([]int, len(ms))
	minP := int64(math.MaxInt64)
	for i, k := range keys {
		p := fixed.MulAdd(slope, fixed.FromInt(int64(k)), intercept).Floor()
		preds[i] = int(p)
		if p < minP {
			minP = p
		}
	}
	for i := range preds {
		preds[i] -= int(minP)
	}
	return preds
}

// minFanoutForContiguity returns the minimum number of children needed so
// each child's table fits the largest physically contiguous block available.
func (b *builder) minFanoutForContiguity(keys int) int {
	maxOrder := b.ix.mem.MaxFreeOrder()
	if maxOrder < 0 {
		return 1 // out of memory; allocation will fail loudly later
	}
	tableBytes := uint64(float64(keys)*b.p.GAScale) * gapped.SlotBytes
	blockBytes := uint64(1) << uint(maxOrder+addr.PageShift)
	if tableBytes <= blockBytes {
		return 1
	}
	n := int((tableBytes + blockBytes - 1) / blockBytes)
	if n > b.p.MaxFanout {
		n = b.p.MaxFanout
	}
	return n
}

// errDegenerate signals that quantization collapsed an internal model so it
// cannot distinguish children.
var errDegenerate = errors.New("core: internal model degenerate after quantization")

// makeInternal trains an internal node with ~n children: a linear model
// that evenly divides [lo, hi] (paper §4.3.2), quantized to Q44.20.
//
// The child granule is snapped to a power-of-two multiple of 512 pages
// (2 MB) nearest span/n. Two properties follow: the slope 1/granule and
// the intercept −lo/granule are exactly representable in Q44.20 (so the
// quantized model's boundaries are exact), and no boundary can fall inside
// a huge page — with 2 MB-aligned regions (the ASLR normalizer guarantees
// this), a child never splits a translation granule, which keeps interior
// huge-page lookups routed to the right leaf.
func (b *builder) makeInternal(ms []Mapping, lo, hi uint64, n int, depth int) (*node, error) {
	span := hi - lo + 1
	granule := uint64(512)
	for granule*2 <= span/uint64(n) && granule < 1<<fixed.FracBits {
		granule *= 2
	}
	nEff := int((span + granule - 1) / granule)
	for nEff > b.p.MaxFanout && granule < 1<<fixed.FracBits {
		granule *= 2
		nEff = int((span + granule - 1) / granule)
	}
	if nEff < 2 {
		return nil, errDegenerate
	}
	n = nEff
	l := model.Linear{Slope: 1 / float64(granule), Intercept: -float64(lo) / float64(granule)}
	slope, intercept := l.Quantize()
	if slope <= 0 {
		return nil, errDegenerate
	}
	nd := &node{
		slope:     slope,
		intercept: intercept,
		loKey:     lo,
		hiKey:     hi,
	}
	predict := func(v uint64) int {
		p := fixed.MulAdd(slope, fixed.FromInt(int64(v)), intercept).Floor()
		if p < 0 {
			p = 0
		}
		if p >= int64(n) {
			p = int64(n) - 1
		}
		return int(p)
	}
	// Partition mappings by the quantized model.
	parts := make([][]Mapping, n)
	distinct := 0
	for _, m := range ms {
		i := predict(uint64(m.VPN))
		if len(parts[i]) == 0 {
			distinct++
		}
		parts[i] = append(parts[i], m)
	}
	if distinct < 2 {
		return nil, errDegenerate
	}
	// Child key ranges: child i is responsible for the contiguous VPN span
	// the quantized model routes to it, found by binary search (the model
	// is monotone).
	bounds := make([]uint64, n+1)
	bounds[0] = lo
	bounds[n] = hi + 1
	for i := 1; i < n; i++ {
		// Smallest v in [bounds[i-1], hi] with predict(v) >= i.
		loV, hiV := bounds[i-1], hi+1
		for loV < hiV {
			mid := loV + (hiV-loV)/2
			if predict(mid) >= i {
				hiV = mid
			} else {
				loV = mid + 1
			}
		}
		bounds[i] = loV
	}
	nd.children = make([]*node, n)
	for i := 0; i < n; i++ {
		cLo, cHi := bounds[i], bounds[i+1]-1
		if cHi < cLo {
			cHi = cLo
		}
		child, err := b.buildNode(parts[i], cLo, cHi, depth+1)
		if err != nil {
			return nil, err
		}
		nd.children[i] = child
	}
	return nd, nil
}

// makeLeaf trains a leaf node over ms: least-squares over (VPN, rank),
// scaled by ga_scale, quantized, backed by a freshly allocated gapped page
// table with the entries inserted at their predicted positions (§4.3.2).
//
// If relaxed is false, the leaf reports errErrBound when any key's actual
// slot is farther than ErrSlotBudget from its prediction.
func (b *builder) makeLeaf(ms []Mapping, lo, hi uint64, relaxed bool) (*node, error) {
	// Relaxed leaves over small spans use a positional model instead of a
	// rank model: slot = ga_scale x (VPN - lo). Predictions are then exact
	// for every key regardless of how 4 KB and 2 MB densities mix (the
	// mixed-density boundary case), trading bounded table slack for
	// single-access lookups. Large sparse spans keep the rank model (a
	// positional table there would waste real memory).
	// (A positional-model variant for relaxed leaves lives in
	// makePositionalLeaf, exercised by TestPositionalLeafExactPredictions;
	// it trades table slack for exact predictions but
	// its sparse tables are cache-hostile at scaled cache sizes, so the
	// rank model below is used for all leaves.)
	keys := make([]uint64, len(ms))
	for i, m := range ms {
		keys[i] = uint64(m.VPN)
	}
	l := model.FitRanks(keys)
	residual := int(l.MaxAbsErr() * b.p.GAScale)
	if !relaxed && residual > b.p.ResidualSlotBudget {
		// The error bound enforced during regression (§4.3.3): the parent
		// must subdivide.
		return nil, errErrBound
	}
	l.Slope *= b.p.GAScale
	l.Intercept *= b.p.GAScale
	slope, intercept := l.Quantize()

	nd := &node{slope: slope, intercept: intercept, loKey: lo, hiKey: hi, leaf: true, residual: residual}

	// Shift the intercept so the smallest prediction is slot 0, then size
	// the table to cover the largest prediction plus search margin.
	minP, maxP := int64(math.MaxInt64), int64(math.MinInt64)
	for _, k := range keys {
		p := fixed.MulAdd(slope, fixed.FromInt(int64(k)), intercept).Floor()
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	nd.intercept = nd.intercept.Add(fixed.FromInt(-minP))
	needSlots := int(maxP-minP) + b.p.InsertReach + pte.ClusterSlots + 1
	// Guarantee enough total room for every key even when quantization
	// flattens predictions (pathological spaces): at least ga_scale × keys.
	if occ := int(float64(len(ms))*b.p.GAScale) + pte.ClusterSlots + 1; needSlots < occ {
		needSlots = occ
	}

	table, err := gapped.New(b.ix.mem, needSlots, b.availOrder())
	if err != nil {
		return nil, err
	}
	for table.Slots() < needSlots {
		// Contiguity-limited: chain extents so the logical table still
		// covers the prediction range.
		if err := table.Expand(needSlots-table.Slots(), b.availOrder()); err != nil {
			table.Release()
			return nil, err
		}
	}
	nd.table = table

	// Insert entries at predicted slots. Build uses a generous reach so a
	// dense cluster of equal predictions can still place (the error bound
	// decides afterwards whether the leaf is acceptable). Relaxed builds
	// (pathological spaces) use monotone placement instead, which stays
	// linear even when quantization flattens predictions into plateaus.
	buildReach := b.p.InsertReach * 8
	if buildReach < pte.ClusterSlots*2 {
		buildReach = pte.ClusterSlots * 2
	}
	hint := 0
	for _, m := range ms {
		pred := nd.predict(m.VPN)
		var slot int
		var err error
		if relaxed {
			slot, err = table.PlaceFrom(hint, int(pred), m.VPN, m.Entry)
			hint = slot + 1
		} else {
			slot, _, err = table.Insert(int(pred), m.VPN, m.Entry, buildReach)
		}
		if err != nil {
			table.Release()
			nd.table = nil
			if relaxed {
				return nil, fmt.Errorf("core: leaf table overflow on build: %w", err)
			}
			return nil, errErrBound
		}
		if d := abs(slot - int(pred)); d > nd.maxDisp {
			nd.maxDisp = d
		}
	}
	if !relaxed && nd.maxDisp > b.p.ErrSlotBudget {
		table.Release()
		nd.table = nil
		return nil, errErrBound
	}
	return nd, nil
}

// makePositionalLeaf builds a leaf whose model is positional: slot =
// ga_scale x (VPN - lo). Every key's prediction is exact, so lookups are
// single-access even for arbitrarily mixed page-size content.
func (b *builder) makePositionalLeaf(ms []Mapping, lo, hi uint64) (*node, error) {
	slope := fixed.FromFloat(b.p.GAScale)
	intercept := slope.Mul(fixed.FromInt(int64(lo))).Neg()
	nd := &node{slope: slope, intercept: intercept, loKey: lo, hiKey: hi, leaf: true}
	span := hi - lo + 1
	needSlots := int(slope.MulInt(int64(span))) + pte.ClusterSlots + 1
	table, err := gapped.New(b.ix.mem, needSlots, b.availOrder())
	if err != nil {
		return nil, err
	}
	for table.Slots() < needSlots {
		if err := table.Expand(needSlots-table.Slots(), b.availOrder()); err != nil {
			table.Release()
			return nil, err
		}
	}
	nd.table = table
	for _, m := range ms {
		pred := nd.predict(m.VPN)
		slot, _, err := table.Insert(int(pred), m.VPN, m.Entry, b.p.InsertReach)
		if err != nil {
			table.Release()
			nd.table = nil
			return nil, fmt.Errorf("core: positional leaf overflow: %w", err)
		}
		if d := abs(slot - int(pred)); d > nd.maxDisp {
			nd.maxDisp = d
		}
	}
	return nd, nil
}

// makeEmptyLeaf builds a leaf with no keys (an empty child range). It has
// no table; walks through it miss, and a first insert creates the table by
// retraining the leaf.
func (b *builder) makeEmptyLeaf(lo, hi uint64) (*node, error) {
	return &node{loKey: lo, hiKey: hi, leaf: true}, nil
}

// availOrder returns the current physical contiguity limit for table
// allocations.
func (b *builder) availOrder() int {
	if o := b.ix.mem.MaxFreeOrder(); o >= 0 {
		return o
	}
	return 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
