package core

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func newMem() *phys.Memory { return phys.New(256 << 20) }

// seqMappings builds n sequential 4K mappings starting at VPN base.
func seqMappings(base addr.VPN, n int) []Mapping {
	ms := make([]Mapping, n)
	for i := range ms {
		ms[i] = Mapping{
			VPN:   base + addr.VPN(i),
			Entry: pte.New(addr.PPN(0x1000+i), addr.Page4K),
		}
	}
	return ms
}

// segmented builds a multi-segment address space resembling a process
// layout after ASLR normalization (paper §5.2): the OS exposes region
// bases to hardware, so the index sees segments packed with modest gaps.
func segmented() []Mapping {
	return layout([]seg{
		{0x400, 512},   // text
		{0x800, 256},   // data
		{0xa00, 8192},  // heap
		{0x2c00, 2048}, // mmap 1
		{0x3800, 4096}, // mmap 2
		{0x4c00, 1024}, // stack
	})
}

// scattered builds the same segments at pre-normalization ASLR-style bases
// spread across the full address space — the pathological case the cost
// model must bound (§4.2.3) but is not expected to make collision-free.
func scattered() []Mapping {
	return layout([]seg{
		{0x400, 512},     // text
		{0x800, 256},     // data
		{0x10000, 8192},  // heap
		{0x80000, 2048},  // mmap 1
		{0x90000, 4096},  // mmap 2
		{0x7f0000, 1024}, // stack
	})
}

type seg struct {
	base addr.VPN
	n    int
}

func layout(segs []seg) []Mapping {
	var ms []Mapping
	ppn := addr.PPN(1)
	for _, s := range segs {
		for i := 0; i < s.n; i++ {
			ms = append(ms, Mapping{VPN: s.base + addr.VPN(i), Entry: pte.New(ppn, addr.Page4K)})
			ppn++
		}
	}
	return ms
}

func build(t *testing.T, ms []Mapping) *Index {
	t.Helper()
	ix, err := Build(newMem(), ms, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := Build(newMem(), nil, DefaultParams()); err != ErrEmpty {
		t.Errorf("err = %v", err)
	}
}

func TestBuildBadParams(t *testing.T) {
	p := DefaultParams()
	p.DLimit = 0
	if _, err := Build(newMem(), seqMappings(1, 10), p); err == nil {
		t.Error("expected param validation error")
	}
}

func TestSequentialSpaceSingleAccess(t *testing.T) {
	// A perfectly regular space: every walk must be single-access and the
	// index must be tiny.
	ix := build(t, seqMappings(0x1000, 10000))
	for i := 0; i < 10000; i++ {
		r := ix.Walk(0x1000 + addr.VPN(i))
		if !r.Found {
			t.Fatalf("VPN %d not found", 0x1000+i)
		}
		if r.PTEAccesses != 1 {
			t.Fatalf("VPN %d took %d PTE accesses", 0x1000+i, r.PTEAccesses)
		}
		if r.Entry.PPN() != addr.PPN(0x1000+i) {
			t.Fatalf("VPN %d wrong PPN %#x", 0x1000+i, uint64(r.Entry.PPN()))
		}
	}
	if ix.SizeBytes() > 64 {
		t.Errorf("sequential index size = %d bytes", ix.SizeBytes())
	}
	if ix.Depth() != 1 {
		t.Errorf("sequential index depth = %d", ix.Depth())
	}
}

func TestSegmentedSpaceCorrect(t *testing.T) {
	ms := segmented()
	ix := build(t, ms)
	for _, m := range ms {
		r := ix.Walk(m.VPN)
		if !r.Found {
			t.Fatalf("VPN %#x not found", uint64(m.VPN))
		}
		if r.Entry != m.Entry {
			t.Fatalf("VPN %#x wrong entry", uint64(m.VPN))
		}
	}
	// The index must stay within the paper's ballpark: Table 2 reports
	// 96–192 bytes for similar segment counts.
	if ix.SizeBytes() > 1024 {
		t.Errorf("segmented index size = %d bytes", ix.SizeBytes())
	}
	if ix.Depth() > DefaultParams().DLimit {
		t.Errorf("depth %d exceeds d_limit", ix.Depth())
	}
}

func TestUnmappedVPNNotFound(t *testing.T) {
	ix := build(t, segmented())
	for _, v := range []addr.VPN{0, 0x300, 0x2a80, 0x4a00, 0x6000} {
		if r := ix.Walk(v); r.Found {
			t.Errorf("unmapped VPN %#x translated", uint64(v))
		}
	}
}

func TestScatteredLayoutBounded(t *testing.T) {
	// A pre-normalization ASLR-scattered layout must stay correct and the
	// cost model must bound depth and index size even though the space is
	// pathological for even division (§4.2.3).
	ms := scattered()
	ix := build(t, ms)
	for _, m := range ms {
		if r := ix.Walk(m.VPN); !r.Found || r.Entry != m.Entry {
			t.Fatalf("VPN %#x lost in scattered layout", uint64(m.VPN))
		}
	}
	if ix.Depth() > DefaultParams().DLimit {
		t.Errorf("depth = %d > d_limit", ix.Depth())
	}
	if ix.SizeBytes() > 64<<10 {
		t.Errorf("pathological index grew to %d bytes", ix.SizeBytes())
	}
}

func TestLookupTranslatesOffsets(t *testing.T) {
	ix := build(t, seqMappings(100, 10))
	va := addr.VAOf(103) + 0x2a
	pa, ok := ix.Lookup(va)
	if !ok {
		t.Fatal("lookup failed")
	}
	want := addr.PA(uint64(0x1000+3)<<addr.PageShift + 0x2a)
	if pa != want {
		t.Errorf("pa = %#x want %#x", pa, want)
	}
	if _, ok := ix.Lookup(addr.VAOf(5000)); ok {
		t.Error("unmapped lookup succeeded")
	}
}

func TestDepthNeverExceedsDLimit(t *testing.T) {
	// An adversarially irregular space must still respect d_limit.
	rng := rand.New(rand.NewSource(42))
	var ms []Mapping
	v := addr.VPN(0x1000)
	for i := 0; i < 20000; i++ {
		v += addr.VPN(1 + rng.Intn(2000))
		ms = append(ms, Mapping{VPN: v, Entry: pte.New(addr.PPN(i+1), addr.Page4K)})
	}
	ix := build(t, ms)
	if ix.Depth() > DefaultParams().DLimit {
		t.Errorf("depth = %d > d_limit", ix.Depth())
	}
	for _, m := range ms {
		if r := ix.Walk(m.VPN); !r.Found || r.Entry != m.Entry {
			t.Fatalf("VPN %#x lost in irregular space", uint64(m.VPN))
		}
	}
}

func TestHugePages(t *testing.T) {
	// Mixed 4K and 2M mappings in one index (paper §4.4 / Fig. 6).
	var ms []Mapping
	for i := 0; i < 512; i++ {
		ms = append(ms, Mapping{VPN: addr.VPN(0x100 + i), Entry: pte.New(addr.PPN(i+1), addr.Page4K)})
	}
	// 2M pages at VPNs 1024, 1536, 2048 (aligned).
	for i := 0; i < 3; i++ {
		base := addr.VPN(1024 + i*512)
		ms = append(ms, Mapping{VPN: base, Entry: pte.New(addr.PPN(0x10000+i*512), addr.Page2M)})
	}
	ix := build(t, ms)

	// Any VPN inside a huge page must resolve to its entry.
	for _, v := range []addr.VPN{1024, 1100, 1535, 1536, 2000, 2048, 2500, 2559} {
		r := ix.Walk(v)
		if !r.Found {
			t.Fatalf("huge-page VPN %d not found", v)
		}
		if r.Entry.Size() != addr.Page2M {
			t.Fatalf("VPN %d returned size %s", v, r.Entry.Size())
		}
		wantBase := addr.AlignDown(v, addr.Page2M)
		//lint:allow addrtypes the test's synthetic mapping derives each expected PPN from the VPN by construction
		wantPPN := addr.PPN(0x10000 + (uint64(wantBase)-1024)/512*512)
		if r.Entry.PPN() != wantPPN {
			t.Fatalf("VPN %d ppn=%#x want %#x", v, uint64(r.Entry.PPN()), uint64(wantPPN))
		}
	}
	// VPNs outside all mappings must miss.
	if r := ix.Walk(2560); r.Found {
		t.Error("VPN beyond last huge page translated")
	}
	// Full-address translation preserves the 2M offset.
	va := addr.VAOf(1024) + 0x123456
	pa, ok := ix.Lookup(va)
	if !ok {
		t.Fatal("huge lookup failed")
	}
	if want := addr.PA(uint64(0x10000)<<addr.PageShift + 0x123456); pa != want {
		t.Errorf("huge pa = %#x want %#x", pa, want)
	}
}

func TestInsertWithinBounds(t *testing.T) {
	// Space with holes; fill one in.
	var ms []Mapping
	for i := 0; i < 1000; i++ {
		if i%7 == 3 {
			continue // holes
		}
		ms = append(ms, Mapping{VPN: addr.VPN(0x5000 + i), Entry: pte.New(addr.PPN(i+1), addr.Page4K)})
	}
	ix := build(t, ms)
	before := ix.MappedPages()
	m := Mapping{VPN: 0x5000 + 3, Entry: pte.New(0x999, addr.Page4K)}
	if err := ix.Insert(m); err != nil {
		t.Fatal(err)
	}
	if ix.MappedPages() != before+1 {
		t.Errorf("mapped = %d want %d", ix.MappedPages(), before+1)
	}
	if r := ix.Walk(m.VPN); !r.Found || r.Entry != m.Entry {
		t.Error("inserted key not found")
	}
	// No structural churn for a within-bounds insert into a gap.
	s := ix.Stats()
	if s.Rebuilds != 0 {
		t.Errorf("rebuilds = %d", s.Rebuilds)
	}
}

func TestInsertEdgeHighBatchesAndRescales(t *testing.T) {
	p := DefaultParams()
	p.MinInsertDistance = 50                             // the paper's Fig. 5 example granule
	ix, err := Build(newMem(), seqMappings(500, 501), p) // VPNs 500..1000
	if err != nil {
		t.Fatal(err)
	}
	nodesBefore := ix.NodeCount()

	// Insert VPN 1030: close to the edge; range must extend to 1050
	// (batching) and the table must rescale without retraining.
	if err := ix.Insert(Mapping{VPN: 1030, Entry: pte.New(0xaaa, addr.Page4K)}); err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.EdgeExpansions != 1 {
		t.Errorf("edge expansions = %d", s.EdgeExpansions)
	}
	if s.Retrains != 0 || s.Rebuilds != 0 {
		t.Errorf("edge insert caused retrain=%d rebuild=%d", s.Retrains, s.Rebuilds)
	}
	if _, hi := ix.KeyRange(); hi != 1050 {
		t.Errorf("hiKey = %d want 1050", hi)
	}
	if ix.NodeCount() != nodesBefore {
		t.Errorf("node count changed: %d -> %d", nodesBefore, ix.NodeCount())
	}
	if r := ix.Walk(1030); !r.Found || r.Entry.PPN() != 0xaaa {
		t.Error("edge-inserted key not found")
	}
	// Old keys still resolve (the model did not move).
	for v := addr.VPN(500); v <= 1000; v += 37 {
		if r := ix.Walk(v); !r.Found {
			t.Fatalf("pre-existing VPN %d lost after edge expansion", v)
		}
	}
	// The batched window 1001..1050 accepts inserts with no further
	// expansion events.
	if err := ix.Insert(Mapping{VPN: 1045, Entry: pte.New(0xbbb, addr.Page4K)}); err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().EdgeExpansions; got != 1 {
		t.Errorf("insert into batched window caused expansion (%d)", got)
	}
}

func TestInsertEdgeLowRetrainsLocally(t *testing.T) {
	ix := build(t, seqMappings(10000, 1000))
	if err := ix.Insert(Mapping{VPN: 9990, Entry: pte.New(0xccc, addr.Page4K)}); err != nil {
		t.Fatal(err)
	}
	if r := ix.Walk(9990); !r.Found || r.Entry.PPN() != 0xccc {
		t.Error("below-edge key not found")
	}
	if lo, _ := ix.KeyRange(); lo != 9990 {
		t.Errorf("loKey = %d", lo)
	}
	s := ix.Stats()
	if s.Rebuilds != 0 {
		t.Errorf("below-edge insert rebuilt (%d)", s.Rebuilds)
	}
	for v := addr.VPN(10000); v < 11000; v += 101 {
		if r := ix.Walk(v); !r.Found {
			t.Fatalf("VPN %d lost after low-edge insert", v)
		}
	}
}

func TestInsertFarTriggersRebuild(t *testing.T) {
	ix := build(t, seqMappings(0x1000, 1000))
	far := addr.VPN(uint64(0x1000+1000) + DefaultParams().EdgeWindow + 100)
	if err := ix.Insert(Mapping{VPN: far, Entry: pte.New(0xddd, addr.Page4K)}); err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Rebuilds != 1 {
		t.Errorf("rebuilds = %d want 1", ix.Stats().Rebuilds)
	}
	if r := ix.Walk(far); !r.Found {
		t.Error("far key not found after rebuild")
	}
	for v := addr.VPN(0x1000); v < 0x1000+1000; v += 97 {
		if r := ix.Walk(v); !r.Found {
			t.Fatalf("VPN %#x lost in rebuild", uint64(v))
		}
	}
}

func TestFreeKeepsIndex(t *testing.T) {
	ix := build(t, seqMappings(100, 500))
	sizeBefore := ix.SizeBytes()
	if !ix.Free(250) {
		t.Fatal("free failed")
	}
	if ix.Free(250) {
		t.Error("double free succeeded")
	}
	if r := ix.Walk(250); r.Found {
		t.Error("freed VPN still translates")
	}
	if ix.SizeBytes() != sizeBefore {
		t.Error("free changed the index structure (paper §5.2 forbids)")
	}
	// The gap is reusable: re-inserting lands without structural churn.
	if err := ix.Insert(Mapping{VPN: 250, Entry: pte.New(0xeee, addr.Page4K)}); err != nil {
		t.Fatal(err)
	}
	if r := ix.Walk(250); !r.Found || r.Entry.PPN() != 0xeee {
		t.Error("reused gap lookup failed")
	}
	if ix.Stats().Retrains != 0 {
		t.Errorf("gap reuse retrained (%d)", ix.Stats().Retrains)
	}
}

func TestSetFlags(t *testing.T) {
	ix := build(t, seqMappings(100, 10))
	if !ix.SetFlags(105, pte.FlagDirty|pte.FlagAccessed, 0) {
		t.Fatal("SetFlags failed")
	}
	r := ix.Walk(105)
	if !r.Entry.Dirty() || !r.Entry.Accessed() {
		t.Error("flags not visible after SetFlags")
	}
	if !ix.SetFlags(105, 0, pte.FlagDirty) {
		t.Fatal("clear failed")
	}
	if ix.Walk(105).Entry.Dirty() {
		t.Error("dirty flag not cleared")
	}
	if ix.SetFlags(9999, pte.FlagDirty, 0) {
		t.Error("SetFlags on unmapped VPN succeeded")
	}
}

func TestWalkReportsNodeTrace(t *testing.T) {
	ix := build(t, segmented())
	r := ix.Walk(0xa00)
	if !r.Found {
		t.Fatal("walk failed")
	}
	if len(r.Nodes) == 0 || len(r.Nodes) > DefaultParams().DLimit {
		t.Errorf("node trace length = %d", len(r.Nodes))
	}
	if r.Nodes[0].Level != 1 || r.Nodes[0].Offset != 0 {
		t.Errorf("walk must start at the root: %+v", r.Nodes[0])
	}
	for i := 1; i < len(r.Nodes); i++ {
		if r.Nodes[i].Level != r.Nodes[i-1].Level+1 {
			t.Errorf("non-consecutive levels in trace: %+v", r.Nodes)
		}
	}
	if len(r.PTEPAs) != r.PTEAccesses {
		t.Errorf("PTE PA trace (%d) disagrees with access count (%d)", len(r.PTEPAs), r.PTEAccesses)
	}
	// Node PAs must be 16-byte aligned and distinct per node.
	for _, n := range r.Nodes {
		if n.PA%NodeBytes != 0 {
			t.Errorf("node PA %#x misaligned", n.PA)
		}
	}
}

func TestCollisionRateRegularSpace(t *testing.T) {
	// Paper §7.3: regular spaces yield near-zero collision rates. Measure
	// over all mapped keys.
	ms := segmented()
	ix := build(t, ms)
	collisions := 0
	for _, m := range ms {
		if r := ix.Walk(m.VPN); r.Collided {
			collisions++
		}
	}
	rate := float64(collisions) / float64(len(ms))
	if rate > 0.01 {
		t.Errorf("collision rate = %.4f, want < 1%%", rate)
	}
}

func TestFragmentationAdaptsLeafTables(t *testing.T) {
	// Fragment physical memory down to ≤256 KB contiguity and build: LVM
	// must create more, smaller tables instead of failing (§4.2.2).
	mem := phys.New(256 << 20)
	mem.Fragment(5, phys.DatacenterFragmentation)
	mem.SetContiguityCap(6) // 256 KB

	ms := seqMappings(0x8000, 60000) // needs ~1.2 MB of PTE slots
	ix, err := Build(mem, ms, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ms); i += 613 {
		if r := ix.Walk(ms[i].VPN); !r.Found {
			t.Fatalf("VPN %#x lost under fragmentation", uint64(ms[i].VPN))
		}
	}
	// No single contiguous run may exceed the contiguity cap.
	for _, l := range ix.levels {
		for _, n := range l {
			if n.isLeaf() && n.table.Extents() == 1 && n.table.FootprintBytes() > phys.BlockBytes(6) {
				t.Errorf("leaf table footprint %d exceeds 256KB contiguity in one run", n.table.FootprintBytes())
			}
		}
	}
}

func TestTableFootprintWithinGAScale(t *testing.T) {
	// §7.3 memory consumption: footprint ≤ ~GAScale × minimum, with slack
	// for page rounding.
	ms := seqMappings(0x1000, 100000)
	ix := build(t, ms)
	minBytes := uint64(len(ms)) * 16 // tagged slots are the minimum here
	foot := ix.TableFootprintBytes()
	if float64(foot) > float64(minBytes)*1.5 {
		t.Errorf("footprint %d > 1.5x minimum %d", foot, minBytes)
	}
}

func TestIndexSizeIndependentOfFootprint(t *testing.T) {
	// Table 2's scaling claim: same layout, larger footprint, same index.
	small := build(t, seqMappings(0x1000, 10000))
	large := build(t, seqMappings(0x1000, 400000))
	if small.SizeBytes() != large.SizeBytes() {
		t.Errorf("index size depends on footprint: %d vs %d bytes",
			small.SizeBytes(), large.SizeBytes())
	}
}

func TestReleaseReturnsMemory(t *testing.T) {
	mem := phys.New(256 << 20)
	free := mem.FreePages()
	ix, err := Build(mem, segmented(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ix.Release()
	if mem.FreePages() != free {
		t.Errorf("release leaked %d pages", free-mem.FreePages())
	}
}

func TestRebuildPreservesEverything(t *testing.T) {
	ms := segmented()
	ix := build(t, ms)
	if err := ix.Rebuild(); err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if r := ix.Walk(m.VPN); !r.Found || r.Entry != m.Entry {
			t.Fatalf("VPN %#x lost in rebuild", uint64(m.VPN))
		}
	}
	if ix.Stats().Rebuilds != 1 {
		t.Errorf("rebuilds = %d", ix.Stats().Rebuilds)
	}
}

func TestPeakIndexBytesTracked(t *testing.T) {
	ix := build(t, segmented())
	if ix.Stats().PeakIndexBytes < ix.SizeBytes() {
		t.Errorf("peak %d < current %d", ix.Stats().PeakIndexBytes, ix.SizeBytes())
	}
}

func TestSearchOverflowAccounting(t *testing.T) {
	// Force a leaf whose displaced keys exceed the hardware search bound:
	// the walk must still find them (software-assisted path) and count
	// the overflow.
	p := DefaultParams()
	mem := newMem()
	// A dense run plus a far singleton forces a relaxed mixed leaf at the
	// depth limit when MaxFanout is squeezed.
	p.MaxFanout = 2
	p.DLimit = 1
	var ms []Mapping
	for i := 0; i < 2000; i++ {
		ms = append(ms, Mapping{VPN: addr.VPN(0x1000 + i*3), Entry: pte.New(addr.PPN(i+1), addr.Page4K)})
	}
	ix, err := Build(mem, ms, p)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, m := range ms {
		r := ix.Walk(m.VPN)
		if r.Found {
			found++
		}
	}
	if found != len(ms) {
		t.Fatalf("lost %d keys", len(ms)-found)
	}
}

func TestInsertOverwriteNoDuplicates(t *testing.T) {
	// Overwriting a key repeatedly must never create duplicates, even in
	// leaves whose entries are displaced from their predictions.
	ix := build(t, seqMappings(0x1000, 5000))
	for round := 0; round < 5; round++ {
		for i := 0; i < 5000; i += 97 {
			m := Mapping{VPN: addr.VPN(0x1000 + i), Entry: pte.New(addr.PPN(0x9000+round), addr.Page4K)}
			if err := ix.Insert(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := ix.MappedPages(); got != 5000 {
		t.Fatalf("mapped = %d after overwrites, want 5000 (duplicates?)", got)
	}
}
