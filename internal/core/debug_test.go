package core

import (
	"fmt"
	"testing"
)

// TestDebugDumpSegmented prints the tree shape for the segmented space;
// run with -v when diagnosing build quality.
func TestDebugDumpSegmented(t *testing.T) {
	ms := segmented()
	ix := build(t, ms)
	t.Logf("depth=%d nodes=%d size=%dB leaves=%d", ix.Depth(), ix.NodeCount(), ix.SizeBytes(), ix.LeafCount())
	for d, level := range ix.levels {
		for _, n := range level {
			kind := "int "
			extra := ""
			if n.isLeaf() {
				kind = "leaf"
				if n.table != nil {
					extra = fmt.Sprintf(" slots=%d used=%d maxDisp=%d", n.table.Slots(), n.table.Used(), n.maxDisp)
				} else {
					extra = " empty"
				}
			} else {
				extra = fmt.Sprintf(" children=%d", len(n.children))
			}
			t.Logf("L%d[%d] %s range=[%#x,%#x] slope=%v%s", d+1, n.offset, kind, n.loKey, n.hiKey, n.slope.Float(), extra)
		}
	}
	collisions := 0
	for _, m := range ms {
		if r := ix.Walk(m.VPN); r.Collided {
			collisions++
		}
	}
	t.Logf("collision rate = %.4f", float64(collisions)/float64(len(ms)))
}
