package core

import (
	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/pte"
)

// HWWalker is LVM's hardware page table walker (paper §4.6.2, Fig. 7): on
// an L2 TLB miss it traverses the learned index, consulting the LVM Walk
// Cache for each node and fetching missing nodes from memory, then fetches
// the predicted PTE cluster. Each node step costs one fixed-point
// multiply-add (2 cycles, §7.4).
type HWWalker struct {
	lwc     *mmu.LWC
	indexes map[uint16]attachment
	// flushes counts LWC invalidations driven by OS retrains (§5.2).
	flushes uint64
	// lastRetrains tracks per-ASID retrain counts already reconciled.
	lastRetrains map[uint16]uint64
	lastRebuilds map[uint16]uint64
	lastLazy     map[uint16]uint64
	// buf is the reusable walk-trace buffer; Walk outcomes view it and
	// stay valid until the next Walk.
	buf mmu.WalkBuf

	// lastASID/lastAt memoize the most recent indexes lookup so batched
	// walks skip the map per access; Attach/Detach invalidate it.
	lastASID uint16
	lastAt   attachment
	hasLast  bool

	// plans queue the walk plans recorded by Lookup, consumed in order by
	// WalkBatch (see the mmu.Lookuper contract). Index.Walk returns slices
	// viewing the index's reusable scratch, so Lookup copies each result's
	// nodes and cluster PAs into the walker-owned flat arrays below.
	plans      []walkPlan
	planNodes  []NodeRef
	planPTEPAs []addr.PA
	planPos    int
	planASID   uint16
	// reconciled marks that OS retrain/rebuild events were already applied
	// for the current batch; within one batch nothing mutates the index
	// (Index.Walk only bumps SearchOverflows, which reconcile ignores), so
	// one reconcile per batch equals the scalar per-walk reconcile.
	reconciled bool
}

// walkPlan is one functional traversal's record: offsets into the shared
// planNodes/planPTEPAs scratch plus the resolved entry.
type walkPlan struct {
	vpn              addr.VPN
	noIndex          bool
	nodeOff, nodeEnd int32
	pteOff, pteEnd   int32
	entry            pte.Entry
	found            bool
}

type attachment struct {
	ix *Index
	// norm applies the ASLR base registers (§5.2): raw VPN → the canonical
	// VPN the index was trained on. Nil means identity.
	norm func(addr.VPN) addr.VPN
}

// NewHWWalker creates a walker with the Table-1 LWC size (16 entries).
func NewHWWalker(lwcEntries int) *HWWalker {
	return &HWWalker{
		lwc:          mmu.NewLWC(lwcEntries),
		indexes:      make(map[uint16]attachment),
		lastRetrains: make(map[uint16]uint64),
		lastRebuilds: make(map[uint16]uint64),
		lastLazy:     make(map[uint16]uint64),
	}
}

// Attach registers a process's learned index under an ASID.
func (w *HWWalker) Attach(asid uint16, ix *Index) {
	w.indexes[asid] = attachment{ix: ix}
	w.hasLast = false
}

// AttachNormalized registers an index together with the ASLR normalization
// the OS exposed through base registers (§5.2).
func (w *HWWalker) AttachNormalized(asid uint16, ix *Index, norm func(addr.VPN) addr.VPN) {
	w.indexes[asid] = attachment{ix: ix, norm: norm}
	w.hasLast = false
}

// Detach removes a process's index and flushes its LWC entries (process
// exit; §4.6.2's ASID tagging makes this the only flush needed).
func (w *HWWalker) Detach(asid uint16) {
	delete(w.indexes, asid)
	delete(w.lastRetrains, asid)
	delete(w.lastRebuilds, asid)
	delete(w.lastLazy, asid)
	w.hasLast = false
	w.lwc.FlushASID(asid)
	w.flushes++
}

// attachmentFor resolves an ASID's attachment through the one-entry memo.
func (w *HWWalker) attachmentFor(asid uint16) (attachment, bool) {
	if w.hasLast && w.lastASID == asid {
		return w.lastAt, true
	}
	at, ok := w.indexes[asid]
	if ok {
		w.lastASID, w.lastAt, w.hasLast = asid, at, true
	}
	return at, ok
}

// Name implements mmu.Walker.
func (w *HWWalker) Name() string { return "lvm" }

// LWC exposes the walk cache for stats.
func (w *HWWalker) LWC() *mmu.LWC { return w.lwc }

// Flushes returns the number of LWC flush events the OS has issued.
func (w *HWWalker) Flushes() uint64 { return w.flushes }

// Snapshot implements metrics.Source: the LWC hit/miss counters plus the
// OS-driven flush count (lwc.hits, lwc.misses, lwc.flushes).
func (w *HWWalker) Snapshot() metrics.Set {
	var s metrics.Set
	s.Merge("lwc", w.lwc.Snapshot())
	s.Counter("lwc.flushes", w.flushes)
	return s
}

var _ metrics.Source = (*HWWalker)(nil)

// Walk implements mmu.Walker.
func (w *HWWalker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	w.buf.Reset()
	return w.walkInto(&w.buf, asid, v)
}

// walkInto is Walk's engine over a caller-supplied (already reset) buffer,
// so the batch path's mismatch fallback can walk into a slot buffer.
func (w *HWWalker) walkInto(b *mmu.WalkBuf, asid uint16, v addr.VPN) mmu.Outcome {
	at, ok := w.attachmentFor(asid)
	if !ok {
		return mmu.Outcome{}
	}
	ix := at.ix
	w.reconcile(asid, ix)
	if at.norm != nil {
		v = at.norm(v)
	}
	r := ix.Walk(v)
	wcc := 0
	for _, n := range r.Nodes {
		wcc += mmu.StepCycles
		if !w.lwc.Lookup(asid, n.Level, n.Offset) {
			// Fetch the 64-byte line holding the node from memory.
			b.AddGroup(n.PA)
			w.lwc.Insert(asid, n.Level, n.Offset)
		}
	}
	for _, pa := range r.PTEPAs {
		b.AddGroup(pa)
	}
	return b.Outcome(r.Entry, r.Found, wcc)
}

// Lookup implements mmu.Lookuper: one Index.Walk resolves the translation
// and its plan — the node chain and cluster PAs — which Lookup copies into
// walker-owned scratch for the following WalkBatch to replay (Index.Walk's
// result views index scratch valid only until the next Walk, and it
// mutates the search-overflow counter, so it must run exactly once per
// miss). OS retrain/rebuild reconciliation runs once per batch; see the
// reconciled field for why that equals the scalar per-walk reconcile.
func (w *HWWalker) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	if w.planASID != asid {
		w.drainPlans(asid)
	}
	var p walkPlan
	p.vpn = v
	at, ok := w.attachmentFor(asid)
	if !ok {
		p.noIndex = true
		//lint:allow hotalloc plan queue grows to the batch size once, then recycles
		w.plans = append(w.plans, p)
		return 0, false
	}
	if !w.reconciled {
		w.reconcile(asid, at.ix)
		w.reconciled = true
	}
	nv := v
	if at.norm != nil {
		nv = at.norm(v)
	}
	r := at.ix.Walk(nv)
	p.nodeOff = int32(len(w.planNodes))
	//lint:allow hotalloc plan scratch grows to the batch's trace volume once, then recycles
	w.planNodes = append(w.planNodes, r.Nodes...)
	p.nodeEnd = int32(len(w.planNodes))
	p.pteOff = int32(len(w.planPTEPAs))
	//lint:allow hotalloc plan scratch grows to the batch's trace volume once, then recycles
	w.planPTEPAs = append(w.planPTEPAs, r.PTEPAs...)
	p.pteEnd = int32(len(w.planPTEPAs))
	p.entry, p.found = r.Entry, r.Found
	//lint:allow hotalloc plan queue grows to the batch size once, then recycles
	w.plans = append(w.plans, p)
	return p.entry, p.found
}

// WalkBatch implements mmu.BatchWalker: replay the plans recorded by the
// preceding Lookup sequence — the LWC lookups and fills run live, in
// arrival order, against walker-owned copies of each walk's node chain —
// falling back to fresh walks on mismatch, then drain the plan queue.
func (w *HWWalker) WalkBatch(asid uint16, vpns []addr.VPN, bufs *mmu.WalkBatchBuf) {
	bufs.Reset(len(vpns))
	for i, v := range vpns {
		b := bufs.Buf(i)
		if w.planPos < len(w.plans) && asid == w.planASID && w.plans[w.planPos].vpn == v {
			p := &w.plans[w.planPos]
			w.planPos++
			if p.noIndex {
				bufs.SetOutcome(i, mmu.Outcome{})
				continue
			}
			wcc := 0
			for _, n := range w.planNodes[p.nodeOff:p.nodeEnd] {
				wcc += mmu.StepCycles
				if !w.lwc.Lookup(asid, n.Level, n.Offset) {
					b.AddGroup(n.PA)
					w.lwc.Insert(asid, n.Level, n.Offset)
				}
			}
			for _, pa := range w.planPTEPAs[p.pteOff:p.pteEnd] {
				b.AddGroup(pa)
			}
			bufs.SetOutcome(i, b.Outcome(p.entry, p.found, wcc))
			continue
		}
		bufs.SetOutcome(i, w.walkInto(b, asid, v))
	}
	w.drainPlans(asid)
}

// drainPlans clears the plan queue and scratch for a new batch.
func (w *HWWalker) drainPlans(asid uint16) {
	w.plans = w.plans[:0]
	w.planNodes = w.planNodes[:0]
	w.planPTEPAs = w.planPTEPAs[:0]
	w.planPos = 0
	w.planASID = asid
	w.reconciled = false
}

// reconcile applies OS-side retrain/rebuild events to the LWC: a retrain
// flushes the affected node, a rebuild flushes the address space (§5.2).
// The walker polls the index's counters, which models the OS issuing the
// flush at the moment it retrains.
func (w *HWWalker) reconcile(asid uint16, ix *Index) {
	s := ix.Stats()
	if s.Rebuilds > w.lastRebuilds[asid] {
		w.lwc.FlushASID(asid)
		w.flushes += s.Rebuilds - w.lastRebuilds[asid]
		w.lastRebuilds[asid] = s.Rebuilds
		// A rebuild subsumes outstanding retrain flushes.
		w.lastRetrains[asid] = s.Retrains
		return
	}
	if s.Retrains > w.lastRetrains[asid] {
		// The OS flushes only the retrained node; we conservatively flush
		// the ASID's leaf entries by dropping the whole ASID — with a
		// 16-entry LWC the cost is indistinguishable, and retrains are
		// rare (≤3 per run, §7.3).
		w.lwc.FlushASID(asid)
		w.flushes += s.Retrains - w.lastRetrains[asid]
		w.lastRetrains[asid] = s.Retrains
	}
	if s.LazyTrains > w.lastLazy[asid] {
		// A previously empty leaf got its first model: its cached
		// empty-model LWC entry is stale.
		w.lwc.FlushASID(asid)
		w.flushes += s.LazyTrains - w.lastLazy[asid]
		w.lastLazy[asid] = s.LazyTrains
	}
}

var _ mmu.Walker = (*HWWalker)(nil)
var _ mmu.BatchWalker = (*HWWalker)(nil)
var _ mmu.Lookuper = (*HWWalker)(nil)
