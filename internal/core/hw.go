package core

import (
	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
)

// HWWalker is LVM's hardware page table walker (paper §4.6.2, Fig. 7): on
// an L2 TLB miss it traverses the learned index, consulting the LVM Walk
// Cache for each node and fetching missing nodes from memory, then fetches
// the predicted PTE cluster. Each node step costs one fixed-point
// multiply-add (2 cycles, §7.4).
type HWWalker struct {
	lwc     *mmu.LWC
	indexes map[uint16]attachment
	// flushes counts LWC invalidations driven by OS retrains (§5.2).
	flushes uint64
	// lastRetrains tracks per-ASID retrain counts already reconciled.
	lastRetrains map[uint16]uint64
	lastRebuilds map[uint16]uint64
	lastLazy     map[uint16]uint64
	// buf is the reusable walk-trace buffer; Walk outcomes view it and
	// stay valid until the next Walk.
	buf mmu.WalkBuf
}

type attachment struct {
	ix *Index
	// norm applies the ASLR base registers (§5.2): raw VPN → the canonical
	// VPN the index was trained on. Nil means identity.
	norm func(addr.VPN) addr.VPN
}

// NewHWWalker creates a walker with the Table-1 LWC size (16 entries).
func NewHWWalker(lwcEntries int) *HWWalker {
	return &HWWalker{
		lwc:          mmu.NewLWC(lwcEntries),
		indexes:      make(map[uint16]attachment),
		lastRetrains: make(map[uint16]uint64),
		lastRebuilds: make(map[uint16]uint64),
		lastLazy:     make(map[uint16]uint64),
	}
}

// Attach registers a process's learned index under an ASID.
func (w *HWWalker) Attach(asid uint16, ix *Index) {
	w.indexes[asid] = attachment{ix: ix}
}

// AttachNormalized registers an index together with the ASLR normalization
// the OS exposed through base registers (§5.2).
func (w *HWWalker) AttachNormalized(asid uint16, ix *Index, norm func(addr.VPN) addr.VPN) {
	w.indexes[asid] = attachment{ix: ix, norm: norm}
}

// Detach removes a process's index and flushes its LWC entries (process
// exit; §4.6.2's ASID tagging makes this the only flush needed).
func (w *HWWalker) Detach(asid uint16) {
	delete(w.indexes, asid)
	delete(w.lastRetrains, asid)
	delete(w.lastRebuilds, asid)
	delete(w.lastLazy, asid)
	w.lwc.FlushASID(asid)
	w.flushes++
}

// Name implements mmu.Walker.
func (w *HWWalker) Name() string { return "lvm" }

// LWC exposes the walk cache for stats.
func (w *HWWalker) LWC() *mmu.LWC { return w.lwc }

// Flushes returns the number of LWC flush events the OS has issued.
func (w *HWWalker) Flushes() uint64 { return w.flushes }

// Snapshot implements metrics.Source: the LWC hit/miss counters plus the
// OS-driven flush count (lwc.hits, lwc.misses, lwc.flushes).
func (w *HWWalker) Snapshot() metrics.Set {
	var s metrics.Set
	s.Merge("lwc", w.lwc.Snapshot())
	s.Counter("lwc.flushes", w.flushes)
	return s
}

var _ metrics.Source = (*HWWalker)(nil)

// Walk implements mmu.Walker.
func (w *HWWalker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	at, ok := w.indexes[asid]
	if !ok {
		return mmu.Outcome{}
	}
	ix := at.ix
	w.reconcile(asid, ix)
	if at.norm != nil {
		v = at.norm(v)
	}
	r := ix.Walk(v)
	w.buf.Reset()
	wcc := 0
	for _, n := range r.Nodes {
		wcc += mmu.StepCycles
		if !w.lwc.Lookup(asid, n.Level, n.Offset) {
			// Fetch the 64-byte line holding the node from memory.
			w.buf.AddGroup(n.PA)
			w.lwc.Insert(asid, n.Level, n.Offset)
		}
	}
	for _, pa := range r.PTEPAs {
		w.buf.AddGroup(pa)
	}
	return w.buf.Outcome(r.Entry, r.Found, wcc)
}

// reconcile applies OS-side retrain/rebuild events to the LWC: a retrain
// flushes the affected node, a rebuild flushes the address space (§5.2).
// The walker polls the index's counters, which models the OS issuing the
// flush at the moment it retrains.
func (w *HWWalker) reconcile(asid uint16, ix *Index) {
	s := ix.Stats()
	if s.Rebuilds > w.lastRebuilds[asid] {
		w.lwc.FlushASID(asid)
		w.flushes += s.Rebuilds - w.lastRebuilds[asid]
		w.lastRebuilds[asid] = s.Rebuilds
		// A rebuild subsumes outstanding retrain flushes.
		w.lastRetrains[asid] = s.Retrains
		return
	}
	if s.Retrains > w.lastRetrains[asid] {
		// The OS flushes only the retrained node; we conservatively flush
		// the ASID's leaf entries by dropping the whole ASID — with a
		// 16-entry LWC the cost is indistinguishable, and retrains are
		// rare (≤3 per run, §7.3).
		w.lwc.FlushASID(asid)
		w.flushes += s.Retrains - w.lastRetrains[asid]
		w.lastRetrains[asid] = s.Retrains
	}
	if s.LazyTrains > w.lastLazy[asid] {
		// A previously empty leaf got its first model: its cached
		// empty-model LWC entry is stale.
		w.lwc.FlushASID(asid)
		w.flushes += s.LazyTrains - w.lastLazy[asid]
		w.lastLazy[asid] = s.LazyTrains
	}
}

var _ mmu.Walker = (*HWWalker)(nil)
