package core

import (
	"errors"
	"fmt"
	"sort"

	"lvm/internal/addr"
	"lvm/internal/fixed"
	"lvm/internal/gapped"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// Mapping is one virtual-to-physical translation handed to the index. For
// huge pages, VPN is the first 4 KB sub-page of the huge page (paper §4.4)
// and Entry's size bits identify the granularity.
type Mapping struct {
	VPN   addr.VPN
	Entry pte.Entry
}

// ErrEmpty is returned when building an index with no mappings.
var ErrEmpty = errors.New("core: no mappings")

// node is one 16-byte model in the hierarchy. Internal nodes predict the
// offset of a child at the next level; leaf nodes predict a slot in their
// gapped page table.
type node struct {
	level  int // 1-based depth; the root is level 1
	offset int // position in the contiguous per-level node array

	slope     fixed.Q
	intercept fixed.Q

	// Responsibility range [loKey, hiKey], in VPN units, inclusive.
	loKey, hiKey uint64

	// Internal node state.
	children []*node

	// Leaf node state. A leaf with a nil table maps nothing (an empty
	// child range); its table is created lazily on first insert.
	leaf  bool
	table *gapped.Table
	// maxDisp is the largest displacement (in slots) between a key's
	// predicted and actual slot observed so far, for diagnostics.
	maxDisp int
	// residual is the scaled worst-case regression residual, in slots,
	// observed at training time (the §4.3.3 error bound).
	residual int
}

func (n *node) isLeaf() bool { return n.leaf }

// predict evaluates the node's model in fixed point, exactly as the
// hardware walker does: floor(slope·vpn + intercept).
func (n *node) predict(v addr.VPN) int64 {
	return fixed.MulAdd(n.slope, fixed.FromInt(int64(v)), n.intercept).Floor()
}

// Index is a per-process LVM learned index.
type Index struct {
	mem    *phys.Memory
	params Params

	root   *node
	levels [][]*node // levels[d-1] holds all nodes of depth d, contiguous

	// levelBase[d-1] is the physical page backing the level-d node array;
	// node PAs are levelBase + offset·16.
	levelBase  []addr.PPN
	levelOrder []int

	// Key range currently covered.
	loKey, hiKey uint64
	mapped       int

	// Reusable walk scratch: Walk's returned Nodes/PTEPAs slices view
	// walkNodes/walkPTEPAs and stay valid until the next Walk; walkSeen
	// holds the probed-cluster dedup set (regioned per nested invocation).
	walkNodes  []NodeRef
	walkPTEPAs []addr.PA
	walkSeen   []int

	stats IndexStats
}

// IndexStats accumulates the maintenance statistics reported in §7.3.
type IndexStats struct {
	// Retrains counts leaf-local retraining events (these are the only
	// events that require an LWC flush of the affected node).
	Retrains uint64
	// Rebuilds counts full index rebuilds.
	Rebuilds uint64
	// InsertCollisions counts inserts whose predicted slot was occupied.
	InsertCollisions uint64
	// Inserts counts all successful inserts.
	Inserts uint64
	// EdgeExpansions counts out-of-bounds-near-edge batch extensions.
	EdgeExpansions uint64
	// Rescales counts gapped-table expansions.
	Rescales uint64
	// LazyTrains counts deferred first-training of empty leaves (not
	// retrains: no previously trained model existed).
	LazyTrains uint64
	// SearchOverflows counts walks that exceeded the C_err bound and
	// needed the extended software-assisted search (should be ~0).
	SearchOverflows uint64
	// PeakIndexBytes tracks the largest index size seen, including during
	// initial training (Table 2 discussion).
	PeakIndexBytes int
}

// Build trains a new index over the given mappings (paper §4.3.1). The
// mappings need not be sorted; duplicates (same VPN) keep the last entry.
func Build(mem *phys.Memory, mappings []Mapping, p Params) (*Index, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(mappings) == 0 {
		return nil, ErrEmpty
	}
	ms := normalize(mappings)
	ix := &Index{mem: mem, params: p}
	if err := ix.construct(ms); err != nil {
		return nil, err
	}
	return ix, nil
}

// normalize sorts by VPN and deduplicates keeping the last mapping.
func normalize(mappings []Mapping) []Mapping {
	ms := append([]Mapping(nil), mappings...)
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].VPN < ms[j].VPN })
	out := ms[:0]
	for _, m := range ms {
		if len(out) > 0 && out[len(out)-1].VPN == m.VPN {
			out[len(out)-1] = m
			continue
		}
		out = append(out, m)
	}
	return out
}

// construct builds the tree, assigns per-level offsets, and allocates the
// physical node arrays. Called by Build and by full rebuilds.
func (ix *Index) construct(sorted []Mapping) error {
	var totalPages uint64
	for _, m := range sorted {
		totalPages += m.Entry.Size().BaseVPNs()
	}
	b := &builder{ix: ix, p: ix.params, totalPages: totalPages}
	root, err := b.buildNode(sorted, uint64(sorted[0].VPN), uint64(sorted[len(sorted)-1].VPN), 1)
	if err != nil {
		return err
	}
	ix.root = root
	ix.loKey = uint64(sorted[0].VPN)
	ix.hiKey = uint64(sorted[len(sorted)-1].VPN)
	ix.mapped = len(sorted)
	ix.assignOffsets()
	if err := ix.allocLevelStorage(); err != nil {
		return err
	}
	if s := ix.SizeBytes(); s > ix.stats.PeakIndexBytes {
		ix.stats.PeakIndexBytes = s
	}
	return nil
}

// assignOffsets lays out nodes contiguously per level in BFS order and
// rewrites internal intercepts so each model outputs the absolute offset of
// its children within the next level's array (paper §4.2.1).
func (ix *Index) assignOffsets() {
	ix.levels = nil
	frontier := []*node{ix.root}
	for level := 1; len(frontier) > 0; level++ {
		var next []*node
		for i, n := range frontier {
			n.level = level
			n.offset = i
		}
		for _, n := range frontier {
			if n.isLeaf() {
				continue
			}
			first := len(next)
			next = append(next, n.children...)
			// The model was trained to output relative child index
			// 0..n-1; shift to the absolute offset of the first child.
			n.intercept = n.intercept.Add(fixed.FromInt(int64(first)))
		}
		ix.levels = append(ix.levels, frontier)
		frontier = next
	}
}

// allocLevelStorage allocates physical memory for the per-level contiguous
// node arrays. Nodes are tiny, so these are the small allocations §4.2.1
// promises.
func (ix *Index) allocLevelStorage() error {
	// Release previous storage (on rebuild).
	for i, base := range ix.levelBase {
		ix.mem.Free(base, ix.levelOrder[i])
	}
	ix.levelBase = ix.levelBase[:0]
	ix.levelOrder = ix.levelOrder[:0]
	for _, level := range ix.levels {
		order := phys.OrderForBytes(uint64(len(level)) * NodeBytes)
		base, err := ix.mem.Alloc(order)
		if err != nil {
			return fmt.Errorf("core: allocating level storage: %w", err)
		}
		ix.levelBase = append(ix.levelBase, base)
		ix.levelOrder = append(ix.levelOrder, order)
	}
	return nil
}

// NodePA returns the physical address of the node at (level, offset); the
// walker fetches the 64-byte line containing it on an LWC miss.
func (ix *Index) NodePA(level, offset int) addr.PA {
	return addr.SlotPA(ix.levelBase[level-1], uint64(offset), NodeBytes)
}

// Depth returns the number of node levels.
func (ix *Index) Depth() int { return len(ix.levels) }

// NodeCount returns the total number of nodes.
func (ix *Index) NodeCount() int {
	total := 0
	for _, l := range ix.levels {
		total += len(l)
	}
	return total
}

// SizeBytes returns the learned index size: 16 bytes per node (Table 2's
// metric). Gapped page tables are not index — they are the page table
// proper.
func (ix *Index) SizeBytes() int { return ix.NodeCount() * NodeBytes }

// LeafCount returns the number of leaf nodes (== gapped page tables).
func (ix *Index) LeafCount() int {
	count := 0
	for _, l := range ix.levels {
		for _, n := range l {
			if n.isLeaf() {
				count++
			}
		}
	}
	return count
}

// MappedPages returns the number of live translations.
func (ix *Index) MappedPages() int {
	total := 0
	for _, l := range ix.levels {
		for _, n := range l {
			if n.isLeaf() && n.table != nil {
				total += n.table.Used()
			}
		}
	}
	return total
}

// KeyRange returns the VPN range currently covered by the index.
func (ix *Index) KeyRange() (lo, hi addr.VPN) { return addr.VPN(ix.loKey), addr.VPN(ix.hiKey) }

// TableFootprintBytes returns the physical memory consumed by all gapped
// page tables, including gaps — the overhead metric of §7.3.
func (ix *Index) TableFootprintBytes() uint64 {
	var total uint64
	for _, l := range ix.levels {
		for _, n := range l {
			if n.isLeaf() && n.table != nil {
				total += n.table.FootprintBytes()
			}
		}
	}
	return total
}

// Stats returns the accumulated maintenance statistics.
func (ix *Index) Stats() IndexStats { return ix.stats }

// Params returns the index configuration.
func (ix *Index) Params() Params { return ix.params }

// Release frees all physical memory held by the index (tables and node
// arrays).
func (ix *Index) Release() {
	for _, l := range ix.levels {
		for _, n := range l {
			if n.isLeaf() && n.table != nil {
				n.table.Release()
			}
		}
	}
	for i, base := range ix.levelBase {
		ix.mem.Free(base, ix.levelOrder[i])
	}
	ix.levels = nil
	ix.levelBase = nil
	ix.levelOrder = nil
	ix.root = nil
	ix.mapped = 0
}

// collectMappings gathers every live translation from the leaf tables, in
// VPN order, for rebuilds.
func (ix *Index) collectMappings() []Mapping {
	var out []Mapping
	var visit func(n *node)
	visit = func(n *node) {
		if n.isLeaf() {
			if n.table == nil {
				return
			}
			for i := 0; i < n.table.Slots(); i++ {
				if s := n.table.Get(i); s.Valid() {
					out = append(out, Mapping{VPN: s.Tag, Entry: s.Entry})
				}
			}
			return
		}
		for _, c := range n.children {
			visit(c)
		}
	}
	if ix.root != nil {
		visit(ix.root)
	}
	return normalize(out)
}

// DumpTree renders the tree structure (up to maxPerLevel nodes per level)
// for diagnostics.
func (ix *Index) DumpTree(maxPerLevel int) string {
	out := ""
	for d, level := range ix.levels {
		out += fmt.Sprintf("level %d: %d nodes\n", d+1, len(level))
		for i, n := range level {
			if i >= maxPerLevel {
				out += "  ...\n"
				break
			}
			if n.isLeaf() {
				slots := -1
				used := 0
				if n.table != nil {
					slots = n.table.Slots()
					used = n.table.Used()
				}
				out += fmt.Sprintf("  [%d] leaf [%#x,%#x] slope=%.4f slots=%d used=%d disp=%d resid=%d\n",
					n.offset, n.loKey, n.hiKey, n.slope.Float(), slots, used, n.maxDisp, n.residual)
			} else {
				out += fmt.Sprintf("  [%d] int  [%#x,%#x] kids=%d\n", n.offset, n.loKey, n.hiKey, len(n.children))
			}
		}
	}
	return out
}
