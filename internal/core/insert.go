package core

import (
	"errors"
	"fmt"
	"sort"

	"lvm/internal/addr"
	"lvm/internal/fixed"
	"lvm/internal/gapped"
	"lvm/internal/pte"
)

// Insert adds one translation to the index, choosing among the paths of
// §4.3.4: within-bounds insert, out-of-bounds insert close to the edge
// (batched extension + rescaling, no retraining), or — for far out-of-bounds
// inserts — a full rebuild.
func (ix *Index) Insert(m Mapping) error {
	if ix.root == nil {
		return errors.New("core: insert into released index")
	}
	v := uint64(m.VPN)
	var err error
	switch {
	case v >= ix.loKey && v <= ix.hiKey:
		err = ix.insertWithin(m)
	case v > ix.hiKey && v-ix.hiKey <= ix.params.EdgeWindow:
		err = ix.insertEdgeHigh(m)
	case v < ix.loKey && ix.loKey-v <= ix.params.EdgeWindow:
		err = ix.insertEdgeLow(m)
	default:
		err = ix.rebuildWith([]Mapping{m})
	}
	if err == nil {
		ix.stats.Inserts++
	}
	return err
}

// InsertBatch adds many translations, sorted so edge extensions batch
// naturally.
func (ix *Index) InsertBatch(ms []Mapping) error {
	sorted := append([]Mapping(nil), ms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].VPN < sorted[j].VPN })
	for _, m := range sorted {
		if err := ix.Insert(m); err != nil {
			return err
		}
	}
	return nil
}

// insertWithin handles a key inside the current bounds: the model predicts
// the slot, the gapped array almost always has room, and only on a local
// failure is the leaf retrained (paper §4.3.4).
func (ix *Index) insertWithin(m Mapping) error {
	leaf := ix.leafFor(m.VPN)
	if leaf.table == nil {
		return ix.lazyTrainLeaf(leaf, m)
	}
	pred := int(leaf.predict(m.VPN))
	// Remap of an already-present key: update in place so the table never
	// holds two entries for one VPN (a later rebuild could otherwise
	// resurrect the stale one). This existence check must be sound, so its
	// window is an access budget covering the leaf's largest observed
	// displacement in BOTH search directions (the outward search spends two
	// fetches per cluster of distance), with a floor that keeps Lookup's
	// directional pruning — a hardware fast-path heuristic that can skip
	// the matching cluster — disabled for this software-side check. An
	// unsorted table voids displacement bounds entirely: cover it whole.
	window := 2*(leaf.maxDisp/pte.ClusterSlots+1) + ix.params.CErr + 1
	if leaf.table.Unsorted() {
		if cover := leaf.table.Slots()/pte.ClusterSlots + 1; cover > window {
			window = cover
		}
	}
	if window < 9 {
		window = 9
	}
	if lr := leaf.table.Lookup(pred, m.VPN, window); lr.Found {
		leaf.table.Set(lr.Slot, pte.Tagged{Tag: leaf.table.Get(lr.Slot).Tag, Entry: m.Entry})
		return nil
	}
	slot, collided, err := leaf.table.Insert(pred, m.VPN, m.Entry, ix.params.InsertReach)
	if err == nil {
		if collided {
			ix.stats.InsertCollisions++
		}
		if d := abs(slot - pred); d > leaf.maxDisp {
			leaf.maxDisp = d
		}
		return nil
	}
	// A prediction at or beyond the table's edge means a region is growing
	// into a gap inside the index bounds: apply the rescaling technique
	// leaf-locally (§4.3.4) — expand the table, keep the model, and batch
	// the expansion by the minimum insertion distance so the next pages
	// land in pre-expanded slots.
	if pred+ix.params.InsertReach >= leaf.table.Slots() && pred < leaf.table.Slots()+(1<<26) {
		batch := int(leaf.slope.MulInt(int64(ix.params.MinInsertDistance))) + 1
		need := pred + batch + ix.params.InsertReach + pte.ClusterSlots + 1 - leaf.table.Slots()
		if leaf.table.Expand(need, ix.availOrder()) == nil {
			ix.stats.Rescales++
			slot, collided, err = leaf.table.Insert(pred, m.VPN, m.Entry, ix.params.InsertReach)
			if err == nil {
				if collided {
					ix.stats.InsertCollisions++
				}
				if d := abs(slot - pred); d > leaf.maxDisp {
					leaf.maxDisp = d
				}
				return nil
			}
		}
	}
	// The slot neighbourhood is full: retrain only this leaf (local, no
	// LWC impact beyond one entry).
	if err := ix.retrainLeaf(leaf, []Mapping{m}); err == nil {
		return nil
	}
	// Local retraining failed (the leaf's key space got too complex for
	// one model): rebuild the whole index — cheap and rare (§4.3.4).
	return ix.rebuildWith([]Mapping{m})
}

// insertEdgeHigh handles the common case of address-space growth: the key
// range is extended by at least MinInsertDistance (batching future inserts)
// and the rightmost leaf's table is rescaled — the model is NOT retrained,
// so existing PTEs stay put and the LWC stays valid (paper §4.3.4, Fig. 5).
func (ix *Index) insertEdgeHigh(m Mapping) error {
	v := uint64(m.VPN)
	dist := ix.params.MinInsertDistance
	if dist == 0 {
		dist = 1
	}
	steps := (v - ix.hiKey + dist - 1) / dist
	newHi := ix.hiKey + steps*dist

	leaf := ix.leafFor(m.VPN)
	if leaf.table == nil {
		if err := ix.lazyTrainLeaf(leaf, m); err != nil {
			return ix.rebuildWith([]Mapping{m})
		}
		ix.extendHighBookkeeping(newHi)
		ix.stats.EdgeExpansions++
		return nil
	}
	// Grow the table to cover predictions up to the new edge.
	needSlots := int(leaf.predict(addr.VPN(newHi))) + ix.params.InsertReach + pte.ClusterSlots + 1
	if needSlots > leaf.table.Slots() {
		if err := leaf.table.Expand(needSlots-leaf.table.Slots(), ix.availOrder()); err != nil {
			return fmt.Errorf("core: rescaling edge leaf: %w", err)
		}
		ix.stats.Rescales++
	}
	ix.stats.EdgeExpansions++
	ix.extendHighBookkeeping(newHi)

	pred := int(leaf.predict(m.VPN))
	slot, collided, err := leaf.table.Insert(pred, m.VPN, m.Entry, ix.params.InsertReach)
	if err != nil {
		// Extrapolation failed to leave room; fall back to retraining the
		// leaf, then to a rebuild.
		if err := ix.retrainLeaf(leaf, []Mapping{m}); err == nil {
			return nil
		}
		return ix.rebuildWith([]Mapping{m})
	}
	if collided {
		ix.stats.InsertCollisions++
	}
	if d := abs(slot - pred); d > leaf.maxDisp {
		leaf.maxDisp = d
	}
	return nil
}

// lazyTrainLeaf gives a previously empty leaf its first model and table.
// Regions grow contiguously in the common case (§4.3.4), so the model
// assumes density 1 (slope = ga_scale anchored at the first key) and the
// table is sized for up to MinInsertDistance pages of growth; subsequent
// sequential inserts then land in pre-allocated gaps with no retraining.
func (ix *Index) lazyTrainLeaf(leaf *node, m Mapping) error {
	slope := fixed.FromFloat(ix.params.GAScale)
	leaf.slope = slope
	leaf.intercept = slope.Mul(fixed.FromInt(int64(m.VPN))).Neg()
	span := leaf.hiKey - leaf.loKey + 1
	if d := ix.params.MinInsertDistance; d > 0 && span > d {
		span = d
	}
	// Size the table with the same quantized slope the walker predicts
	// with, so every reachable prediction lands inside the table.
	slots := int(slope.MulInt(int64(span))) + pte.ClusterSlots + 1
	table, err := gapped.New(ix.mem, slots, ix.availOrder())
	if err != nil {
		return err
	}
	leaf.table = table
	leaf.residual = 0
	leaf.maxDisp = 0
	ix.stats.LazyTrains++
	pred := int(leaf.predict(m.VPN))
	if _, _, err := table.Insert(pred, m.VPN, m.Entry, ix.params.InsertReach); err != nil {
		return err
	}
	return nil
}

// extendHighBookkeeping records the new upper key bound along the rightmost
// path of the tree.
func (ix *Index) extendHighBookkeeping(newHi uint64) {
	if ix.hiKey < newHi {
		ix.hiKey = newHi
	}
	for n := ix.root; ; {
		if n.hiKey < newHi {
			n.hiKey = newHi
		}
		if n.isLeaf() {
			break
		}
		n = n.children[len(n.children)-1]
	}
}

// insertEdgeLow handles growth below the current range (e.g. a stack
// growing down). Gapped tables cannot grow toward negative slots, so the
// leftmost leaf is retrained with the new key — a local operation.
func (ix *Index) insertEdgeLow(m Mapping) error {
	leaf := ix.leafFor(m.VPN)
	if err := ix.retrainLeaf(leaf, []Mapping{m}); err != nil {
		return ix.rebuildWith([]Mapping{m})
	}
	v := uint64(m.VPN)
	ix.loKey = v
	for n := ix.root; ; {
		if n.loKey > v {
			n.loKey = v
		}
		if n.isLeaf() {
			break
		}
		n = n.children[0]
	}
	return nil
}

// retrainLeaf refits one leaf's model over its live keys plus extras and
// re-places the entries in a fresh gapped table. This is the only operation
// that invalidates an LWC entry (paper §5.2 "LWC Flushes"); the caller's
// MMU model observes it via Stats().Retrains.
func (ix *Index) retrainLeaf(leaf *node, extras []Mapping) error {
	var ms []Mapping
	if leaf.table != nil {
		for i := 0; i < leaf.table.Slots(); i++ {
			if s := leaf.table.Get(i); s.Valid() {
				ms = append(ms, Mapping{VPN: s.Tag, Entry: s.Entry})
			}
		}
	}
	ms = normalize(append(ms, extras...))
	if len(ms) == 0 {
		return nil
	}
	lo, hi := leaf.loKey, leaf.hiKey
	if k := uint64(ms[0].VPN); k < lo {
		lo = k
	}
	if k := uint64(ms[len(ms)-1].VPN); k > hi {
		hi = k
	}
	b := &builder{ix: ix, p: ix.params}
	fresh, err := b.makeLeaf(ms, lo, hi, false)
	if err != nil {
		// The leaf's key space no longer fits one model within the bound;
		// fall back to relaxed (monotone, perfectly sorted) placement —
		// lookups resolve through the binary miss path.
		if fresh, err = b.makeLeaf(ms, lo, hi, true); err != nil {
			return err
		}
	}
	// Swap the new model and table into the existing node, preserving its
	// identity (level, offset) so the rest of the hierarchy is untouched.
	if leaf.table != nil {
		leaf.table.Release()
	}
	leaf.slope = fresh.slope
	leaf.intercept = fresh.intercept
	leaf.table = fresh.table
	leaf.maxDisp = fresh.maxDisp
	leaf.loKey = lo
	leaf.hiKey = hi
	ix.stats.Retrains++
	return nil
}

// rebuildWith reconstructs the whole index over its live translations plus
// extras (paper §4.3.4's last resort; also used for far-out-of-bounds
// inserts). Rebuilds are counted and, per §7.3, should stay in the low
// single digits over an application's lifetime.
func (ix *Index) rebuildWith(extras []Mapping) error {
	ms := normalize(append(ix.collectMappings(), extras...))
	if len(ms) == 0 {
		return ErrEmpty
	}
	// Release old tables (node-array storage is released by construct).
	for _, l := range ix.levels {
		for _, n := range l {
			if n.isLeaf() && n.table != nil {
				n.table.Release()
			}
		}
	}
	ix.stats.Rebuilds++
	return ix.construct(ms)
}

// Rebuild forces a full rebuild over the live translations (the OS invokes
// this to reclaim space after a workload shrinks far below its peak, §5.2).
func (ix *Index) Rebuild() error { return ix.rebuildWith(nil) }

// Free removes the translation for v. Following §5.2, the index and the
// gap are kept: only the PTE is cleared, so no retraining and no LWC flush.
// Returns false if v was not mapped.
func (ix *Index) Free(v addr.VPN) bool {
	leaf := ix.leafFor(v)
	if leaf == nil || leaf.table == nil {
		return false
	}
	pred := int(leaf.predict(v))
	reach := leaf.table.Slots()
	if !leaf.table.Erase(pred, v, reach) {
		return false
	}
	return true
}

// availOrder returns the contiguity limit for new table allocations.
func (ix *Index) availOrder() int {
	if o := ix.mem.MaxFreeOrder(); o >= 0 {
		return o
	}
	return 0
}
