// Package core implements Learned Virtual Memory's learned index: a shallow
// hierarchy of Q44.20 linear models that maps virtual page numbers to the
// physical locations of page table entries held in gapped page tables
// (paper §4).
//
// The index is built and maintained by the OS side (floating-point training,
// insertions, retraining) and traversed by the hardware side (fixed-point
// multiply-add per node, bounded search in the PTE table). Walk results
// carry the full memory-access trace — node fetches and PTE cluster fetches
// — so the simulator can charge the exact cache/DRAM costs.
package core

import "lvm/internal/pte"

// Params are LVM's tunable parameters. Defaults follow paper §5.1.
type Params struct {
	// X1, X2, X3 are the cost-model weights of C(n) = x1·d + x2·s + x3·cr·ma
	// (paper Eq. 1): depth, size, and collision-resolution cost.
	X1, X2, X3 float64
	// DLimit is the hard bound on index depth: at most DLimit node
	// traversals before the PTE fetch (3 in the paper, so a walk touches
	// at most 4 memory locations).
	DLimit int
	// GAScale is the gapped-array scale factor: tables are sized to
	// GAScale × keys, leaving gaps for future inserts (1.3 in the paper).
	GAScale float64
	// MinInsertDistance is the minimum address-space extension, in base
	// pages, applied on an out-of-bounds insert near the edge (64 MB in
	// the paper = 16384 pages). Extensions are batched to this granule.
	MinInsertDistance uint64
	// EdgeWindow is how far (in base pages) beyond the current key range
	// an insert still counts as "close to the edge"; farther inserts
	// trigger a full rebuild (paper §4.3.4).
	EdgeWindow uint64
	// CErr is the upper bound on additional memory accesses during
	// collision resolution (3 in the paper §4.3.3).
	CErr int
	// ErrSlotBudget is the largest tolerated displacement, in slots,
	// between a key's predicted and placed position at build time.
	ErrSlotBudget int
	// ResidualSlotBudget is the largest tolerated |model residual| in
	// table slots after GAScale scaling (the error bound enforced during
	// regression, §4.3.3). Placed keys are always found at their own
	// predictions (displacement is bounded separately by ErrSlotBudget),
	// so the residual budget only limits how far interior-of-huge-page and
	// hole predictions can stray; those are resolved by the aligned-base
	// probe and land in empty inter-run slots respectively, which lets the
	// budget stay loose without hurting lookups.
	ResidualSlotBudget int
	// InsertReach is how far (in slots) an insertion may displace an
	// entry from its predicted slot before the leaf is retrained.
	InsertReach int
	// MaxFanout caps the number of children of a single node.
	MaxFanout int
	// CoverageFloor is the minimum address-space coverage, in bytes of
	// virtual address space per byte of index, a child node must provide;
	// nodes that would fall below it are not subdivided (the cacheability
	// constraint of §4.2.3).
	CoverageFloor uint64
	// X3BoostFactor multiplies X3 when a leaf cannot meet the error
	// bound and its parent's cost model is re-evaluated (§4.3.3).
	X3BoostFactor float64
}

// DefaultParams returns the paper's §5.1 configuration.
func DefaultParams() Params {
	return Params{
		X1:                 10,
		X2:                 5,
		X3:                 200,
		DLimit:             3,
		GAScale:            1.3,
		MinInsertDistance:  (64 << 20) >> 12, // 64 MB of pages
		EdgeWindow:         8 * ((64 << 20) >> 12),
		CErr:               3,
		ErrSlotBudget:      8,
		ResidualSlotBudget: 2048,
		InsertReach:        8,
		MaxFanout:          4096,
		CoverageFloor:      256 << 10,
		X3BoostFactor:      4,
	}
}

// NodeBytes is the physical size of one index node: a Q44.20 slope and
// intercept (paper §4.5).
const NodeBytes = 16

// ClusterSlots re-exports the PTE cluster geometry for convenience.
const ClusterSlots = pte.ClusterSlots

func (p Params) validate() error {
	switch {
	case p.DLimit < 1:
		return errBadParam("DLimit must be >= 1")
	case p.GAScale < 1:
		return errBadParam("GAScale must be >= 1")
	case p.CErr < 0:
		return errBadParam("CErr must be >= 0")
	case p.MaxFanout < 2:
		return errBadParam("MaxFanout must be >= 2")
	case p.X3BoostFactor <= 1:
		return errBadParam("X3BoostFactor must be > 1")
	}
	return nil
}

type errBadParam string

func (e errBadParam) Error() string { return "core: " + string(e) }
