package core

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// TestPositionalLeafExactPredictions pins down the positional-leaf
// strategy (the alternative leaf model makeLeaf's comment discusses): a
// model of slot = ga_scale·(VPN−lo) predicts every key exactly — zero
// displacement, single-access lookups — even for a pathological mix of
// 4 KB and 2 MB densities that a regression-trained leaf cannot fit
// within the error budget.
func TestPositionalLeafExactPredictions(t *testing.T) {
	mem := phys.New(64 << 20)
	ix := &Index{mem: mem, params: DefaultParams()}
	b := &builder{ix: ix, p: ix.params}

	// Alternating density: a 2 MB run (one key per 512 pages) then a dense
	// 4 KB run, repeated — the mixed-density boundary case.
	var ms []Mapping
	v := addr.VPN(1 << 20)
	for blk := 0; blk < 8; blk++ {
		ms = append(ms, Mapping{VPN: v, Entry: pte.New(addr.PPN(blk*1000+1), addr.Page2M)})
		v += 512
		for i := 0; i < 64; i++ {
			ms = append(ms, Mapping{VPN: v, Entry: pte.New(addr.PPN(blk*1000+2+i), addr.Page4K)})
			v++
		}
		v += addr.VPN(512 - 64)
	}
	lo, hi := uint64(ms[0].VPN), uint64(ms[len(ms)-1].VPN)

	nd, err := b.makePositionalLeaf(ms, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.table.Release()
	if nd.maxDisp != 0 {
		t.Errorf("positional leaf displaced a key by %d slots, want exact", nd.maxDisp)
	}
	for _, m := range ms {
		res := nd.table.Lookup(int(nd.predict(m.VPN)), m.VPN, 0)
		if res.Entry != m.Entry {
			t.Fatalf("VPN %#x: lookup returned %v want %v", uint64(m.VPN), res.Entry, m.Entry)
		}
		if res.Accesses != 1 {
			t.Fatalf("VPN %#x: %d cluster accesses, positional must need 1", uint64(m.VPN), res.Accesses)
		}
	}

	// The price: table slack proportional to the span, not the key count.
	span := hi - lo + 1
	minSlots := int(float64(span) * b.p.GAScale)
	if nd.table.Slots() < minSlots {
		t.Errorf("positional table has %d slots, expected ≥ ga_scale·span = %d",
			nd.table.Slots(), minSlots)
	}
}
