package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// Property tests of the learned index's core invariants, driven by random
// address-space shapes (testing/quick).

// genLayout turns raw fuzz bytes into a multi-segment address space.
func genLayout(raw []byte) []Mapping {
	if len(raw) == 0 {
		return nil
	}
	var ms []Mapping
	base := addr.VPN(0x400)
	ppn := addr.PPN(1)
	for i := 0; i < len(raw); i += 2 {
		gap := addr.VPN(raw[i])*4 + 1
		n := int(raw[min(i+1, len(raw)-1)])%300 + 1
		base += gap
		for j := 0; j < n; j++ {
			ms = append(ms, Mapping{VPN: base, Entry: pte.New(ppn, addr.Page4K)})
			base++
			ppn++
		}
	}
	return ms
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestQuickBuildFindsEveryKey(t *testing.T) {
	f := func(raw []byte) bool {
		ms := genLayout(raw)
		if len(ms) == 0 {
			return true
		}
		mem := phys.New(64 << 20)
		ix, err := Build(mem, ms, DefaultParams())
		if err != nil {
			return false
		}
		for _, m := range ms {
			r := ix.Walk(m.VPN)
			if !r.Found || r.Entry != m.Entry {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickDepthAndSizeBounded(t *testing.T) {
	p := DefaultParams()
	f := func(raw []byte) bool {
		ms := genLayout(raw)
		if len(ms) == 0 {
			return true
		}
		mem := phys.New(64 << 20)
		ix, err := Build(mem, ms, p)
		if err != nil {
			return false
		}
		// d_limit bounds depth; index bytes stay far below the PTE space.
		if ix.Depth() > p.DLimit {
			return false
		}
		return ix.SizeBytes() <= len(ms)*NodeBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickInsertThenFindAll(t *testing.T) {
	f := func(raw []byte, extra []uint16) bool {
		ms := genLayout(raw)
		if len(ms) < 2 {
			return true
		}
		mem := phys.New(64 << 20)
		ix, err := Build(mem, ms, DefaultParams())
		if err != nil {
			return false
		}
		lo, hi := ix.KeyRange()
		span := uint64(hi - lo)
		if span == 0 {
			return true
		}
		inserted := map[addr.VPN]pte.Entry{}
		for i, e := range extra {
			v := lo + addr.VPN(uint64(e)%span)
			ent := pte.New(addr.PPN(0x100000+i), addr.Page4K)
			if err := ix.Insert(Mapping{VPN: v, Entry: ent}); err != nil {
				return false
			}
			inserted[v] = ent
		}
		for v, ent := range inserted {
			r := ix.Walk(v)
			if !r.Found || r.Entry != ent {
				return false
			}
		}
		// Original keys survive unless overwritten.
		for _, m := range ms {
			if _, over := inserted[m.VPN]; over {
				continue
			}
			if r := ix.Walk(m.VPN); !r.Found || r.Entry != m.Entry {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickFreeIsExact(t *testing.T) {
	f := func(raw []byte, which []uint16) bool {
		ms := genLayout(raw)
		if len(ms) == 0 {
			return true
		}
		mem := phys.New(64 << 20)
		ix, err := Build(mem, ms, DefaultParams())
		if err != nil {
			return false
		}
		freed := map[addr.VPN]bool{}
		for _, w := range which {
			v := ms[int(w)%len(ms)].VPN
			if freed[v] {
				continue
			}
			if !ix.Free(v) {
				return false
			}
			freed[v] = true
		}
		for _, m := range ms {
			r := ix.Walk(m.VPN)
			if freed[m.VPN] {
				if r.Found {
					return false
				}
			} else if !r.Found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickWalkAccessesBounded(t *testing.T) {
	// The C_err bound: non-overflowing walks perform at most 1 + 2·C_err
	// PTE accesses (down-first outward search over ±C_err clusters), and
	// overflows are counted.
	p := DefaultParams()
	f := func(raw []byte) bool {
		ms := genLayout(raw)
		if len(ms) == 0 {
			return true
		}
		mem := phys.New(64 << 20)
		ix, err := Build(mem, ms, p)
		if err != nil {
			return false
		}
		for _, m := range ms {
			r := ix.Walk(m.VPN)
			if !r.Found {
				return false
			}
			if !r.Overflowed && r.PTEAccesses > 1+2*p.CErr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandomizedMixedPageSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		mem := phys.New(128 << 20)
		var ms []Mapping
		v := addr.VPN(0x10000)
		expected := map[addr.VPN]Mapping{}
		for i := 0; i < 300; i++ {
			if rng.Intn(4) == 0 {
				// Huge page at the next 512 boundary.
				v = addr.AlignDown(v+511, addr.Page2M)
				m := Mapping{VPN: v, Entry: pte.New(addr.PPN(uint64(0x100000)+uint64(i)*512), addr.Page2M)}
				ms = append(ms, m)
				expected[v] = m
				v += 512
			} else {
				run := 1 + rng.Intn(64)
				for j := 0; j < run; j++ {
					m := Mapping{VPN: v, Entry: pte.New(addr.PPN(0x1000+len(ms)), addr.Page4K)}
					ms = append(ms, m)
					expected[v] = m
					v++
				}
				v += addr.VPN(rng.Intn(16))
			}
		}
		ix, err := Build(mem, ms, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		for base, m := range expected {
			// Probe the base and, for huge pages, random interiors.
			probes := []addr.VPN{base}
			if m.Entry.Size() == addr.Page2M {
				probes = append(probes, base+addr.VPN(rng.Intn(512)), base+511)
			}
			for _, pv := range probes {
				r := ix.Walk(pv)
				if !r.Found || r.Entry != m.Entry {
					t.Fatalf("trial %d: VPN %#x (base %#x, %s) wrong: found=%t",
						trial, uint64(pv), uint64(base), m.Entry.Size(), r.Found)
				}
			}
		}
	}
}
