package core

import (
	"fmt"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// TestReproStaleDuplicateOnReinsert pins the stale-duplicate-on-reinsert
// bug once tracked in ROADMAP's open items (repro seed {0x64, 0x4b, 0xc1,
// 0x0e, 0xc0, 0x63}): this layout builds a relaxed leaf whose build-time
// placements are displaced far beyond the insert-time existence-check
// window, so re-inserting an already-mapped VPN used to place a second
// entry for the same tag; a later retrain then resurrected the stale PPN.
// The extras vector is a deterministic instance of the failure found by
// seeded search over the documented layout.
func TestReproStaleDuplicateOnReinsert(t *testing.T) {
	raw := []byte{0x64, 0x4b, 0xc1, 0x0e, 0xc0, 0x63}
	extra := []uint16{0x341e, 0x9b8e, 0x976, 0xb02, 0xa30c, 0x9672, 0xa558, 0xfe90, 0x8f48, 0xf98d, 0xb55f, 0xff45, 0xbfe3, 0x42b0, 0x2a35, 0xed16, 0xb92b, 0x7e4a, 0x17c5, 0xe1e, 0x11b5, 0xa4d1, 0x3d24, 0x88fe, 0x9a56, 0xa05f, 0x99f0, 0x986c, 0x2fef, 0x166b, 0xdef1, 0x33b6, 0xf61f, 0x6f4a, 0x1299, 0x6052, 0x87ef, 0x85fa, 0x9725, 0x2d1a, 0x8525}
	ms := genLayout(raw)
	mem := phys.New(64 << 20)
	ix, err := Build(mem, ms, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ix.KeyRange()
	span := uint64(hi - lo)
	inserted := map[addr.VPN]pte.Entry{}
	for i, e := range extra {
		v := lo + addr.VPN(uint64(e)%span)
		ent := pte.New(addr.PPN(0x100000+i), addr.Page4K)
		if err := ix.Insert(Mapping{VPN: v, Entry: ent}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		inserted[v] = ent
	}
	for v, ent := range inserted {
		r := ix.Walk(v)
		if !r.Found || r.Entry != ent {
			t.Fatalf("inserted VPN %#x: found=%t entry=%#x want=%#x (stale duplicate?)",
				uint64(v), r.Found, uint64(r.Entry), uint64(ent))
		}
	}
	for _, m := range ms {
		if _, over := inserted[m.VPN]; over {
			continue
		}
		if r := ix.Walk(m.VPN); !r.Found || r.Entry != m.Entry {
			t.Fatalf("original VPN %#x lost: found=%t entry=%#x want=%#x",
				uint64(m.VPN), r.Found, uint64(r.Entry), uint64(m.Entry))
		}
	}
}

func TestReproQuickInsert(t *testing.T) {
	raw := []byte{0x2e, 0x65, 0xd9, 0x14, 0x9, 0xf5, 0x23, 0x39, 0x1e, 0x20, 0xcd, 0xaa, 0xa8, 0x22, 0x18, 0x41, 0x0, 0x9f, 0x97, 0x10, 0xa, 0x8c, 0xc9, 0x75, 0x31}
	extra := []uint16{0xafc6, 0xf1ea, 0x588b, 0xaaf5, 0x246e, 0x2ead, 0x965c, 0x5e1, 0xe33b, 0x263b, 0x298a, 0x6f58, 0xc57a, 0x5a60, 0xa7f, 0x57b9, 0x65bd, 0x12d0, 0x1510, 0x323b, 0xbc1c, 0xd724, 0xd201, 0x995f, 0x270, 0xda6e, 0x4fbf, 0xd8e7, 0xe550, 0x5eb3, 0x4830, 0x5f5e, 0x3aa5, 0xe811, 0x636f, 0x597c, 0x2f16, 0xd32f, 0xab9f, 0xfd81, 0x7b10, 0x9d4, 0x2673, 0xd2ae, 0x6272, 0xc832}
	ms := genLayout(raw)
	mem := phys.New(64 << 20)
	ix, err := Build(mem, ms, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ix.KeyRange()
	span := uint64(hi - lo)
	inserted := map[addr.VPN]pte.Entry{}
	for i, e := range extra {
		v := lo + addr.VPN(uint64(e)%span)
		ent := pte.New(addr.PPN(0x100000+i), addr.Page4K)
		if err := ix.Insert(Mapping{VPN: v, Entry: ent}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		inserted[v] = ent
		// verify incrementally
		for vv, ee := range inserted {
			r := ix.Walk(vv)
			if !r.Found || r.Entry != ee {
				fmt.Printf("after insert %d (v=%#x): lost vv=%#x found=%t stats=%+v\n", i, uint64(v), uint64(vv), r.Found, ix.Stats())
				leaf := ix.leafFor(vv)
				fmt.Printf("  leaf [%#x,%#x] slope=%.6f slots=%d used=%d pred=%d\n", leaf.loKey, leaf.hiKey, leaf.slope.Float(), leaf.table.Slots(), leaf.table.Used(), leaf.predict(vv))
				t.FailNow()
			}
		}
	}
}
