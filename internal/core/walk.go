package core

import (
	"lvm/internal/addr"
	"lvm/internal/gapped"
	"lvm/internal/pte"
)

// NodeRef identifies one index node touched during a walk. Level and Offset
// key the LVM walk cache (plus the ASID, added by the MMU); PA is the
// memory location fetched on an LWC miss.
type NodeRef struct {
	Level  int
	Offset int
	PA     addr.PA
}

// WalkResult is the full trace of one hardware page walk (paper Fig. 4(c)):
// the nodes traversed and the PTE cluster fetches performed. The simulator
// charges LWC lookups for Nodes and cache-hierarchy requests for PTEPAs.
type WalkResult struct {
	Entry pte.Entry
	Found bool
	// Nodes lists the index nodes traversed root-to-leaf.
	Nodes []NodeRef
	// PTEAccesses is the number of 64-byte PTE cluster fetches (1 in the
	// collision-free case).
	PTEAccesses int
	// PTEPAs are the physical addresses of the fetched clusters.
	PTEPAs []addr.PA
	// Collided reports that the translation was not in the predicted
	// cluster (§7.3's collision definition for lookups).
	Collided bool
	// Overflowed reports that the C_err bound was insufficient and the
	// extended search ran (counted, should be ≈0).
	Overflowed bool
}

// Walk translates a VPN exactly as the hardware page walker does: traverse
// internal models root-to-leaf with fixed-point multiply-adds, then probe
// the leaf's gapped page table in stages:
//
//  1. the predicted cluster for the VPN (the single-access common case);
//  2. the predicted cluster for the 2 MB-aligned VPN — interior sub-pages
//     of a huge page predict between keys, but the huge page's own
//     prediction is exact (the round-down of §4.4);
//  3. the C_err-bounded outward searches (§4.3.3) for both;
//  4. the wide software-assisted search (counted as an overflow).
//
// Internal-node granules are whole 2 MB multiples, so a huge page's
// interior always routes to the same leaf as its base.
//
// The returned Nodes and PTEPAs slices view the Index's reusable walk
// scratch and stay valid only until the next Walk.
func (ix *Index) Walk(v addr.VPN) WalkResult {
	var res WalkResult
	ix.walkNodes = ix.walkNodes[:0]
	ix.walkPTEPAs = ix.walkPTEPAs[:0]
	ix.walkSeen = ix.walkSeen[:0]
	ix.walkInto(&res, v, true)
	res.Nodes = ix.walkNodes
	res.PTEPAs = ix.walkPTEPAs
	return res
}

// seenCluster reports whether cluster c was already probed by the walk
// invocation whose seen region starts at base (the 1 GB retry runs as a
// nested invocation with its own region, like the recursive formulation's
// per-call set).
func (ix *Index) seenCluster(base, c int) bool {
	for _, s := range ix.walkSeen[base:] {
		if s == c {
			return true
		}
	}
	return false
}

// walkInto is Walk's engine: it appends node and PTE-cluster refs onto the
// Index's shared scratch buffers and fills res's scalar fields. retry1G
// guards the nested gigabyte-aligned retry (the nested walk never needs
// one itself: its VPN is already 1 GB-aligned).
func (ix *Index) walkInto(res *WalkResult, v addr.VPN, retry1G bool) {
	if ix.root == nil {
		return
	}
	// Traverse internal nodes once.
	n := ix.root
	for !n.isLeaf() {
		ix.walkNodes = append(ix.walkNodes, NodeRef{n.level, n.offset, ix.NodePA(n.level, n.offset)})
		p := n.predict(v)
		first := n.children[0].offset
		idx := int(p) - first
		if idx < 0 {
			idx = 0
		}
		if idx >= len(n.children) {
			idx = len(n.children) - 1
		}
		n = n.children[idx]
	}
	ix.walkNodes = append(ix.walkNodes, NodeRef{n.level, n.offset, ix.NodePA(n.level, n.offset)})
	if n.table == nil {
		// Empty leaf: nothing is mapped in this range; the walker reports
		// not-present without a PTE fetch (a null table descriptor).
		return
	}

	base := addr.AlignDown(v, addr.Page2M)
	type stage struct {
		target addr.VPN
		budget int
	}
	var stages [4]stage
	nstages := 0
	//lint:allow hotalloc non-escaping closure over a stack array, stack-allocated; TestStepZeroAllocs backstop
	push := func(s stage) { stages[nstages] = s; nstages++ }
	push(stage{v, 0})
	if base != v {
		push(stage{base, 0})
	}
	push(stage{v, ix.params.CErr})
	if base != v {
		push(stage{base, ix.params.CErr})
	}
	seenBase := len(ix.walkSeen)
	for _, st := range stages[:nstages] {
		pred := int(n.predict(st.target))
		if st.budget == 0 && ix.seenCluster(seenBase, gapped.ClusterOf(clampPred(pred, n.table.Slots()))) {
			continue
		}
		lr := n.table.Lookup(pred, v, st.budget)
		for _, c := range lr.Clusters {
			ix.walkSeen = append(ix.walkSeen, c)
			ix.walkPTEPAs = append(ix.walkPTEPAs, n.table.ClusterPA(c))
		}
		res.PTEAccesses += lr.Accesses
		if lr.Found {
			res.Found = true
			res.Entry = lr.Entry
			res.Collided = res.PTEAccesses > 1
			return
		}
	}
	// Bounded binary search over the approximately sorted table — the
	// §4.3.3 miss path. Counted as an overflow of the fast path.
	lr := n.table.LookupBinary(int(n.predict(v)), v)
	res.PTEAccesses += lr.Accesses
	for _, c := range lr.Clusters {
		ix.walkPTEPAs = append(ix.walkPTEPAs, n.table.ClusterPA(c))
	}
	if !lr.Found {
		// The binary navigation is a heuristic over approximately sorted
		// content (long empty-cluster runs can mislead it); the exhaustive
		// software search is the correctness backstop (counted).
		lr = n.table.Lookup(int(n.predict(v)), v, n.table.Slots()/pte.ClusterSlots+1)
		res.PTEAccesses += lr.Accesses
		for _, c := range lr.Clusters {
			ix.walkPTEPAs = append(ix.walkPTEPAs, n.table.ClusterPA(c))
		}
	}
	if lr.Found {
		ix.stats.SearchOverflows++
		res.Found = true
		res.Entry = lr.Entry
		res.Collided = true
		res.Overflowed = true
		return
	}
	// 1 GB pages: a final retry with the gigabyte-aligned VPN, which may
	// route to a different leaf (1 GB granules are not boundary-protected
	// the way 2 MB granules are). Its node and PTE refs land on the shared
	// scratch in traversal order; only a 1 GB hit propagates the entry.
	if b1 := addr.AlignDown(v, addr.Page1G); retry1G && b1 != v && b1 != base {
		var r1 WalkResult
		ix.walkInto(&r1, b1, false)
		res.PTEAccesses += r1.PTEAccesses
		if r1.Found && r1.Entry.Size() == addr.Page1G {
			res.Found = true
			res.Entry = r1.Entry
			res.Collided = true
		}
	}
}

func clampPred(p, slots int) int {
	if p < 0 {
		return 0
	}
	if p >= slots {
		return slots - 1
	}
	return p
}

// Lookup is the software-walk convenience used by the OS (paper §5.2): it
// translates a full virtual address to a physical address.
func (ix *Index) Lookup(va addr.VA) (addr.PA, bool) {
	r := ix.Walk(addr.VPNOf(va))
	if !r.Found {
		return 0, false
	}
	return addr.Translate(va, r.Entry.PPN(), r.Entry.Size()), true
}

// leafFor returns the leaf node a VPN routes to (clamped walk).
func (ix *Index) leafFor(v addr.VPN) *node {
	n := ix.root
	for n != nil && !n.isLeaf() {
		p := n.predict(v)
		first := n.children[0].offset
		idx := int(p) - first
		if idx < 0 {
			idx = 0
		}
		if idx >= len(n.children) {
			idx = len(n.children) - 1
		}
		n = n.children[idx]
	}
	return n
}

// SetFlags performs the OS software-walk PTE modification path (accessed /
// dirty / permission bits) without moving the entry (paper §5.2).
func (ix *Index) SetFlags(v addr.VPN, set, clear pte.Entry) bool {
	n := ix.leafFor(v)
	if n == nil || n.table == nil {
		return false
	}
	pred := int(n.predict(v))
	lr := n.table.Lookup(pred, v, n.table.Slots()/pte.ClusterSlots+1)
	if !lr.Found {
		return false
	}
	e := lr.Entry.WithFlags(set).ClearFlags(clear)
	n.table.Set(lr.Slot, pte.Tagged{Tag: n.table.Get(lr.Slot).Tag, Entry: e})
	return true
}
