// Package dram provides a DDR4-like main-memory latency model: channels and
// banks decoded from the physical address, per-bank open rows, and row
// buffer hit/miss latencies. It stands in for DRAMSim3 in the paper's
// simulation stack: the quantities that matter to the evaluation are the
// number of requests that reach memory and the latency each pays.
package dram

import (
	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/stats"
)

// Config describes the memory organization (Table 1: DDR4 3200MT/s, 8
// banks, 4 channels) and its latencies in CPU cycles at 2 GHz.
type Config struct {
	Channels int
	Banks    int
	// RowBytes is the row-buffer size per bank.
	RowBytes uint64
	// RowHitCycles is the latency of a row-buffer hit (CAS only).
	RowHitCycles int
	// RowMissCycles is the latency of a precharge+activate+CAS sequence.
	RowMissCycles int
}

// DefaultConfig matches Table 1 at 2 GHz: ~22 ns CAS (44 cycles) on a row
// hit, roughly double on a row miss.
func DefaultConfig() Config {
	return Config{
		Channels:      4,
		Banks:         8,
		RowBytes:      8 << 10,
		RowHitCycles:  44,
		RowMissCycles: 90,
	}
}

// Model is the memory-latency model. It is deterministic: latency depends
// only on the access sequence.
type Model struct {
	cfg Config
	// openRow[channel][bank] is the currently open row (or ^0 if none).
	openRow [][]uint64

	accesses, rowHits stats.Counter
}

// New creates a model from the configuration.
func New(cfg Config) *Model {
	m := &Model{cfg: cfg, openRow: make([][]uint64, cfg.Channels)}
	for c := range m.openRow {
		m.openRow[c] = make([]uint64, cfg.Banks)
		for b := range m.openRow[c] {
			m.openRow[c][b] = ^uint64(0)
		}
	}
	return m
}

// decode splits a physical address into channel, bank, and row. Channel
// bits are taken just above the cache line, banks above that, so
// consecutive lines stripe across channels (the usual interleaving).
func (m *Model) decode(pa addr.PA) (ch, bank int, row uint64) {
	line := uint64(pa) >> 6
	ch = int(line % uint64(m.cfg.Channels))
	rest := line / uint64(m.cfg.Channels)
	bank = int(rest % uint64(m.cfg.Banks))
	row = uint64(pa) / (m.cfg.RowBytes * uint64(m.cfg.Channels) * uint64(m.cfg.Banks))
	return ch, bank, row
}

// Access performs one memory access and returns its latency in cycles.
func (m *Model) Access(pa addr.PA) int {
	ch, bank, row := m.decode(pa)
	m.accesses.Inc()
	if m.openRow[ch][bank] == row {
		m.rowHits.Inc()
		return m.cfg.RowHitCycles
	}
	m.openRow[ch][bank] = row
	return m.cfg.RowMissCycles
}

// Accesses returns the total number of requests that reached memory.
func (m *Model) Accesses() uint64 { return m.accesses.Value() }

// RowHitRate returns the row-buffer hit rate.
func (m *Model) RowHitRate() float64 {
	return stats.Ratio(m.rowHits.Value(), m.accesses.Value())
}

// ResetStats clears the counters.
func (m *Model) ResetStats() {
	m.accesses.Reset()
	m.rowHits.Reset()
}

// Snapshot implements metrics.Source: total requests that reached memory
// and how many of them hit an open row.
func (m *Model) Snapshot() metrics.Set {
	var s metrics.Set
	s.Counter("accesses", m.accesses.Value())
	s.Counter("row_hits", m.rowHits.Value())
	return s
}

var _ metrics.Source = (*Model)(nil)
