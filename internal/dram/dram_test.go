package dram

import (
	"testing"

	"lvm/internal/addr"
)

func TestRowBufferHit(t *testing.T) {
	m := New(DefaultConfig())
	first := m.Access(0x1000)
	if first != DefaultConfig().RowMissCycles {
		t.Errorf("cold access latency = %d", first)
	}
	// The same line again: same channel/bank/row — a row hit.
	second := m.Access(0x1000)
	if second != DefaultConfig().RowHitCycles {
		t.Errorf("repeat access latency = %d want row hit", second)
	}
}

func TestChannelInterleaving(t *testing.T) {
	m := New(DefaultConfig())
	// Consecutive lines go to different channels: decode must spread them.
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		ch, _, _ := m.decode(0x1000 + addr.PA(i)*64)
		seen[ch] = true
	}
	if len(seen) != DefaultConfig().Channels {
		t.Errorf("consecutive lines hit %d channels, want %d", len(seen), DefaultConfig().Channels)
	}
}

func TestRowConflictEvictsRow(t *testing.T) {
	m := New(DefaultConfig())
	cfg := DefaultConfig()
	stride := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Banks)
	m.Access(0)
	m.Access(addr.PA(stride)) // same channel/bank, different row
	if got := m.Access(0); got != cfg.RowMissCycles {
		t.Errorf("row conflict latency = %d want miss", got)
	}
}

func TestStats(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0x40)
	m.Access(0x40)
	if m.Accesses() != 2 {
		t.Errorf("accesses = %d", m.Accesses())
	}
	if got := m.RowHitRate(); got != 0.5 {
		t.Errorf("row hit rate = %v", got)
	}
	m.ResetStats()
	if m.Accesses() != 0 {
		t.Error("reset failed")
	}
}
