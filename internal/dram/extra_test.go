package dram

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
)

// TestSequentialBeatsRandomRowHits: a streaming access pattern must enjoy a
// far higher row-buffer hit rate (and lower average latency) than uniform
// random traffic — the locality property the row-buffer model exists to
// capture.
func TestSequentialBeatsRandomRowHits(t *testing.T) {
	run := func(next func(i int) addr.PA) (hitRate float64, avg float64) {
		m := New(DefaultConfig())
		total := 0
		const n = 20000
		for i := 0; i < n; i++ {
			total += m.Access(next(i))
		}
		return m.RowHitRate(), float64(total) / n
	}
	seqHits, seqAvg := run(func(i int) addr.PA { return addr.PA(i * 64) })
	rng := rand.New(rand.NewSource(9))
	rndHits, rndAvg := run(func(int) addr.PA { return addr.PA(rng.Int63n(4 << 30)) })

	if seqHits < 0.9 {
		t.Errorf("sequential row hit rate = %.3f, want ≥ 0.9", seqHits)
	}
	if rndHits > 0.2 {
		t.Errorf("random row hit rate = %.3f, want ≤ 0.2", rndHits)
	}
	if seqAvg >= rndAvg {
		t.Errorf("sequential avg latency %.1f not below random %.1f", seqAvg, rndAvg)
	}
}

// TestBankIsolation: an access stream alternating between two different
// banks must keep both rows open — the second visit to each address is a
// row hit, because row buffers are per (channel, bank).
func TestBankIsolation(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	a := addr.PA(0)
	// Same channel (line % channels equal), different bank.
	b := addr.PA(64 * uint64(cfg.Channels))
	ca, ba, _ := m.decode(a)
	cb, bb, _ := m.decode(b)
	if ca != cb || ba == bb {
		t.Fatalf("test addresses don't alternate banks within a channel: (%d,%d) vs (%d,%d)", ca, ba, cb, bb)
	}
	m.Access(a)
	m.Access(b)
	if got := m.Access(a); got != cfg.RowHitCycles {
		t.Errorf("revisit after other-bank access = %d cycles, want row hit %d", got, cfg.RowHitCycles)
	}
	if got := m.Access(b); got != cfg.RowHitCycles {
		t.Errorf("second bank lost its open row: %d cycles", got)
	}
}

// TestDeterministicReplay: the model's latencies depend only on the access
// sequence — two replays of the same stream produce identical totals (the
// whole simulator relies on this for reproducible experiments).
func TestDeterministicReplay(t *testing.T) {
	replay := func() int {
		m := New(DefaultConfig())
		rng := rand.New(rand.NewSource(4))
		total := 0
		for i := 0; i < 5000; i++ {
			total += m.Access(addr.PA(rng.Int63n(1 << 32)))
		}
		return total
	}
	if a, b := replay(), replay(); a != b {
		t.Errorf("replay diverged: %d vs %d cycles", a, b)
	}
}
