package ecpt

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// TestChurnOracleWithResizes interleaves inserts and unmaps across multiple
// elastic resizes and checks the table against a ground-truth map. Unmaps
// during growth are the risky path: a key displaced mid-kick-chain or moved
// during a resize must remain removable and must never resurrect.
func TestChurnOracleWithResizes(t *testing.T) {
	tb, err := New(phys.New(256<<20), 64) // tiny: many resizes
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	oracle := map[addr.VPN]pte.Entry{}
	for op := 0; op < 20000; op++ {
		v := addr.VPN(rng.Intn(1 << 14))
		if e, ok := oracle[v]; ok && rng.Intn(3) == 0 {
			if !tb.Unmap(v) {
				t.Fatalf("op %d: unmap of mapped %d failed", op, v)
			}
			delete(oracle, v)
			_ = e
		} else {
			e := pte.New(addr.PPN(op+1), addr.Page4K)
			if err := tb.Map(v, e); err != nil {
				t.Fatalf("op %d: map %d: %v", op, v, err)
			}
			oracle[v] = e
		}
	}
	for v := addr.VPN(0); v < 1<<14; v++ {
		got, ok := tb.Lookup(v)
		want, mapped := oracle[v]
		if ok != mapped {
			t.Fatalf("VPN %d: lookup=%t oracle=%t", v, ok, mapped)
		}
		if mapped && got != want {
			t.Fatalf("VPN %d: entry %v want %v", v, got, want)
		}
	}
}

// TestResizeUnderHighLoad grows a minimal table far past several doublings
// and verifies capacity scales with the key count and the load factor stays
// under the elastic bound.
func TestResizeUnderHighLoad(t *testing.T) {
	tb, err := New(phys.New(256<<20), 32)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	for i := 0; i < n; i++ {
		if err := tb.Map(addr.VPN(i*3), pte.New(addr.PPN(i+1), addr.Page4K)); err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
	c4 := tb.tables[addr.Page4K]
	if lf := c4.loadFactor(); lf > MaxLoadFactor {
		t.Errorf("load factor %.3f exceeds elastic bound %.2f", lf, MaxLoadFactor)
	}
	if cap := c4.capacity(); cap < n {
		t.Errorf("capacity %d below key count %d", cap, n)
	}
	for i := 0; i < n; i += 97 {
		if _, ok := tb.Lookup(addr.VPN(i * 3)); !ok {
			t.Fatalf("key %d lost across resizes", i*3)
		}
	}
}

// TestMixedSizeChurn maps both 4K and 2M pages (separate cuckoo tables),
// then unmaps the 2M run and verifies its interior VPNs miss while
// neighbouring 4K pages survive.
func TestMixedSizeChurn(t *testing.T) {
	tb, err := New(phys.New(128<<20), 1024)
	if err != nil {
		t.Fatal(err)
	}
	huge := addr.VPN(512 * 10)
	if err := tb.Map(huge, pte.New(512, addr.Page2M)); err != nil {
		t.Fatal(err)
	}
	small := huge + 512 // first VPN after the huge run
	if err := tb.Map(small, pte.New(7, addr.Page4K)); err != nil {
		t.Fatal(err)
	}
	if !tb.Unmap(huge) {
		t.Fatal("huge unmap failed")
	}
	if _, ok := tb.Lookup(huge + 300); ok {
		t.Error("interior of unmapped 2M page still resolves")
	}
	if _, ok := tb.Lookup(small); !ok {
		t.Error("adjacent 4K page lost when 2M page unmapped")
	}
}
