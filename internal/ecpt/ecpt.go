// Package ecpt implements Elastic Cuckoo Page Tables (Skarlatos et al.,
// ASPLOS'20), the state-of-the-art hashed page table the paper compares
// against (§2.2, §6.3).
//
// Each page size has its own d-ary (3-way) cuckoo hash table. A hardware
// walk probes all d ways of the relevant table in parallel — a single
// sequential step, but d memory requests, which is exactly the
// latency-for-bandwidth trade the paper measures in Figures 11/12. Cuckoo
// Walk Tables (CWTs) record which page sizes are mapped in each region, and
// the Cuckoo Walk Cache (CWC) caches CWT entries so most walks probe only
// one table's ways.
package ecpt

import (
	"fmt"
	"math/rand"

	"lvm/internal/addr"
	"lvm/internal/blake2b"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/stats"
)

// Ways is the cuckoo associativity (Table 1: 3 ways).
const Ways = 3

// MaxKicks bounds displacement chains before a resize.
const MaxKicks = 32

// DefaultInitialEntries is the initial per-way table size (Table 1: 16384
// entries split across ways).
const DefaultInitialEntries = 16384

// MaxLoadFactor triggers a resize when exceeded (the "elastic" part).
const MaxLoadFactor = 0.85

// way is one hash table of one cuckoo structure, physically contiguous.
type way struct {
	seed  uint64
	base  addr.PPN
	order int
	slots []pte.Tagged
}

func (w *way) index(v addr.VPN) int {
	return int(blake2b.Sum64(uint64(v)^w.seed) % uint64(len(w.slots)))
}

func (w *way) slotPA(i int) addr.PA {
	return addr.SlotPA(w.base, uint64(i), pte.TaggedBytes)
}

// cuckoo is a d-ary cuckoo hash table for one page size.
type cuckoo struct {
	mem  *phys.Memory
	size addr.PageSize
	ways [Ways]*way
	used int
	rng  *rand.Rand

	rehashes stats.Counter
}

func newCuckoo(mem *phys.Memory, size addr.PageSize, perWay int) (*cuckoo, error) {
	c := &cuckoo{mem: mem, size: size, rng: rand.New(rand.NewSource(int64(size) + 12345))}
	for i := range c.ways {
		w, err := allocWay(mem, perWay, uint64(i)*0x9e3779b97f4a7c15+uint64(size))
		if err != nil {
			return nil, err
		}
		c.ways[i] = w
	}
	return c, nil
}

func allocWay(mem *phys.Memory, slots int, seed uint64) (*way, error) {
	order := phys.OrderForBytes(uint64(slots) * pte.TaggedBytes)
	base, err := mem.Alloc(order)
	if err != nil {
		return nil, fmt.Errorf("ecpt: allocating way: %w", err)
	}
	n := int(phys.BlockBytes(order) / pte.TaggedBytes)
	return &way{seed: seed, base: base, order: order, slots: make([]pte.Tagged, n)}, nil
}

func (c *cuckoo) capacity() int {
	n := 0
	for _, w := range c.ways {
		n += len(w.slots)
	}
	return n
}

func (c *cuckoo) loadFactor() float64 {
	return float64(c.used) / float64(c.capacity())
}

// insert places a tagged entry, displacing existing entries cuckoo-style;
// resizes and rehashes when a chain exceeds MaxKicks or the load factor is
// too high.
func (c *cuckoo) insert(tag addr.VPN, e pte.Entry) error {
	if c.loadFactor() > MaxLoadFactor {
		if err := c.resize(); err != nil {
			return err
		}
	}
	item := pte.Tagged{Tag: tag, Entry: e}
	// Overwrite if present.
	for _, w := range c.ways {
		i := w.index(tag)
		if w.slots[i].Valid() && w.slots[i].Tag == tag {
			w.slots[i] = item
			return nil
		}
	}
	for attempt := 0; attempt < 4; attempt++ {
		homeless, ok := c.tryPlace(item)
		if ok {
			c.used++
			return nil
		}
		// The displacement chain ran out of kicks: some victim is now
		// homeless (the original item itself landed in the table). Resize,
		// which rehashes everything placed, then re-insert the victim.
		if err := c.resize(); err != nil {
			return err
		}
		item = homeless
	}
	return fmt.Errorf("ecpt: insert failed after resize")
}

// tryPlace attempts cuckoo placement. On failure it returns the item left
// homeless at the end of the displacement chain (which is generally NOT the
// item passed in — earlier links of the chain have been placed).
func (c *cuckoo) tryPlace(item pte.Tagged) (pte.Tagged, bool) {
	for kick := 0; kick < MaxKicks; kick++ {
		for _, w := range c.ways {
			i := w.index(item.Tag)
			if !w.slots[i].Valid() {
				w.slots[i] = item
				return pte.Tagged{}, true
			}
		}
		// All ways occupied: evict from a random way and retry with the
		// displaced item.
		w := c.ways[c.rng.Intn(Ways)]
		i := w.index(item.Tag)
		item, w.slots[i] = w.slots[i], item
	}
	return item, false
}

// resize doubles every way and rehashes — the elastic growth operation.
func (c *cuckoo) resize() error {
	c.rehashes.Inc()
	old := c.ways
	for i := range c.ways {
		w, err := allocWay(c.mem, len(old[i].slots)*2, old[i].seed)
		if err != nil {
			return err
		}
		c.ways[i] = w
	}
	c.used = 0
	for _, ow := range old {
		for _, s := range ow.slots {
			if s.Valid() {
				if _, ok := c.tryPlace(s); !ok {
					return fmt.Errorf("ecpt: rehash failed")
				}
				c.used++
			}
		}
		c.mem.Free(ow.base, ow.order)
	}
	return nil
}

// lookup returns the entry and which way holds it.
func (c *cuckoo) lookup(v addr.VPN) (pte.Entry, bool) {
	tag := addr.AlignDown(v, c.size)
	for _, w := range c.ways {
		i := w.index(tag)
		if w.slots[i].Matches(v) {
			return w.slots[i].Entry, true
		}
	}
	return 0, false
}

// remove clears a translation.
func (c *cuckoo) remove(v addr.VPN) bool {
	tag := addr.AlignDown(v, c.size)
	for _, w := range c.ways {
		i := w.index(tag)
		if w.slots[i].Valid() && w.slots[i].Tag == tag {
			w.slots[i] = pte.Tagged{}
			c.used--
			return true
		}
	}
	return false
}

// probeInto appends the d physical addresses a hardware walk fetches to
// the open group of b, allocation-free.
func (c *cuckoo) probeInto(b *mmu.WalkBuf, v addr.VPN) {
	tag := addr.AlignDown(v, c.size)
	for _, w := range c.ways {
		b.Add(w.slotPA(w.index(tag)))
	}
}

// Table is one process's ECPT: one cuckoo structure per page size plus the
// CWTs describing which sizes are present per region.
type Table struct {
	mem    *phys.Memory
	tables map[addr.PageSize]*cuckoo
	// cwt maps a 2MB-region number (VPN>>9) to the set of page sizes
	// present in that region; it is itself stored in memory at cwtBase.
	cwt     map[uint64]uint8
	cwtBase addr.PPN
	cwtOrdr int
}

// New creates an empty ECPT.
func New(mem *phys.Memory, initialPerWay int) (*Table, error) {
	if initialPerWay <= 0 {
		initialPerWay = DefaultInitialEntries / Ways
	}
	t := &Table{mem: mem, tables: make(map[addr.PageSize]*cuckoo), cwt: make(map[uint64]uint8)}
	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M} {
		c, err := newCuckoo(mem, s, initialPerWay)
		if err != nil {
			return nil, err
		}
		t.tables[s] = c
	}
	base, err := mem.Alloc(2) // 16 KB of CWT backing to give walks real PAs
	if err != nil {
		return nil, err
	}
	t.cwtBase = base
	t.cwtOrdr = 2
	return t, nil
}

func (t *Table) region(v addr.VPN) uint64 { return uint64(v) >> 9 }

// cwtPA returns the memory location of a region's CWT entry (one byte per
// region, packed).
func (t *Table) cwtPA(region uint64) addr.PA {
	span := phys.BlockBytes(t.cwtOrdr)
	return addr.PAOf(t.cwtBase) + addr.PA(region%span)
}

// Map installs a translation.
func (t *Table) Map(v addr.VPN, e pte.Entry) error {
	c := t.tables[e.Size()]
	if c == nil {
		return fmt.Errorf("ecpt: unsupported page size %s", e.Size())
	}
	tag := addr.AlignDown(v, e.Size())
	if err := c.insert(tag, e); err != nil {
		return err
	}
	// Update CWT bits for every region the mapping touches.
	regions := uint64(1)
	if e.Size() == addr.Page2M {
		regions = 1
	}
	base := t.region(tag)
	for r := uint64(0); r < regions; r++ {
		t.cwt[base+r] |= 1 << uint(e.Size())
	}
	return nil
}

// Unmap removes a translation from whichever size table holds it.
func (t *Table) Unmap(v addr.VPN) bool {
	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M} {
		if t.tables[s].remove(addr.AlignDown(v, s)) {
			return true
		}
	}
	return false
}

// Lookup is the software walk.
func (t *Table) Lookup(v addr.VPN) (pte.Entry, bool) {
	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M} {
		if e, ok := t.tables[s].lookup(v); ok {
			return e, true
		}
	}
	return 0, false
}

// TableBytes returns the physical footprint of all ways of all sizes — the
// over-provisioned hash-table space of §7.3's memory comparison.
func (t *Table) TableBytes() uint64 {
	var b uint64
	for _, c := range t.tables {
		for _, w := range c.ways {
			b += phys.BlockBytes(w.order)
		}
	}
	return b
}

// Rehashes returns the number of elastic resizes performed.
func (t *Table) Rehashes() uint64 {
	var n uint64
	for _, c := range t.tables {
		n += c.rehashes.Value()
	}
	return n
}

// release frees the ways of one cuckoo table.
func (c *cuckoo) release() {
	for _, w := range c.ways {
		c.mem.Free(w.base, w.order)
	}
	c.used = 0
}

// Release returns all cuckoo ways and the CWT block to the allocator; the
// table is unusable afterwards (process exit).
func (t *Table) Release() {
	for _, c := range t.tables {
		c.release()
	}
	t.tables = map[addr.PageSize]*cuckoo{}
	t.mem.Free(t.cwtBase, t.cwtOrdr)
	t.cwt = map[uint64]uint8{}
}

// Walker is the hardware ECPT walker with a CWC.
type Walker struct {
	tables map[uint16]*Table
	// lastASID/lastTable memoize the most recent tables lookup so batched
	// walks skip the map per access; Attach/Detach invalidate it.
	lastASID  uint16
	lastTable *Table
	// cwcPMD caches CWT entries at 2MB-region granularity; cwcPUD at
	// 1GB-region granularity (Table 1: 16 and 2 entries).
	cwcPMD, cwcPUD *mmu.PWC
	// buf is the reusable walk-trace buffer; Walk outcomes view it and
	// stay valid until the next Walk.
	buf mmu.WalkBuf

	// plans queue the walk plans recorded by Lookup, consumed in order by
	// WalkBatch (see the mmu.Lookuper contract).
	plans    []plan
	planPos  int
	planASID uint16
}

// plan is one functional lookup's record: the CWT entry location and the
// way-probe PAs of every indicated page-size table, computed with a single
// hash per way (the scalar Walk hashes twice: once for the probe trace,
// once for the match). The replay adds the live CWC probes.
type plan struct {
	vpn     addr.VPN
	noTable bool
	region  uint64
	cwtPA   addr.PA
	probes  [2 * Ways]addr.PA
	nprobe  int8
	entry   pte.Entry
	found   bool
}

// NewWalker creates the walker with Table-1 CWC sizing.
func NewWalker() *Walker {
	return &Walker{
		tables: make(map[uint16]*Table),
		cwcPMD: mmu.NewPWC("cwc-pmd", 16),
		cwcPUD: mmu.NewPWC("cwc-pud", 2),
	}
}

// Attach registers a process's ECPT under an ASID.
func (w *Walker) Attach(asid uint16, t *Table) {
	w.tables[asid] = t
	w.lastTable = nil
}

// Detach removes a process's table and flushes its CWC entries (process
// exit).
func (w *Walker) Detach(asid uint16) {
	delete(w.tables, asid)
	w.lastTable = nil
	w.cwcPMD.FlushASID(asid)
	w.cwcPUD.FlushASID(asid)
}

// table resolves an ASID's table through the one-entry memo.
func (w *Walker) table(asid uint16) (*Table, bool) {
	if w.lastTable != nil && w.lastASID == asid {
		return w.lastTable, true
	}
	t, ok := w.tables[asid]
	if ok {
		w.lastASID, w.lastTable = asid, t
	}
	return t, ok
}

// Name implements mmu.Walker.
func (w *Walker) Name() string { return "ecpt" }

// CWCs returns the walk-cache levels for stats.
func (w *Walker) CWCs() (pmd, pud *mmu.PWC) { return w.cwcPMD, w.cwcPUD }

// Snapshot implements metrics.Source: the CWC level counters
// (cwc.pmd.hits, cwc.pud.misses, ...).
func (w *Walker) Snapshot() metrics.Set {
	var s metrics.Set
	s.Merge("cwc.pmd", w.cwcPMD.Snapshot())
	s.Merge("cwc.pud", w.cwcPUD.Snapshot())
	return s
}

var _ metrics.Source = (*Walker)(nil)

// Walk implements mmu.Walker. With CWC section information the walker
// probes the d ways of the right page-size table in parallel; on a CWC
// miss it first fetches the CWT entry, then probes the tables indicated —
// without size information it must probe both sizes (2d requests).
func (w *Walker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	t, ok := w.table(asid)
	if !ok {
		return mmu.Outcome{}
	}
	w.buf.Reset()
	return w.walkInto(&w.buf, t, asid, v)
}

// walkInto is Walk's engine over a caller-supplied (already reset) buffer,
// so the batch path's mismatch fallback can walk into a slot buffer.
func (w *Walker) walkInto(b *mmu.WalkBuf, t *Table, asid uint16, v addr.VPN) mmu.Outcome {
	region := t.region(v)

	// An empty mask truly means nothing is mapped in the region (the CWT
	// is updated on Map), so no size bit is set and no probe is issued.
	mask := t.cwt[region]
	if !w.cwcPMD.Lookup(asid, region) && !w.cwcPUD.Lookup(asid, region>>9) {
		// CWC miss: fetch the CWT entry from memory, then probe.
		b.AddGroup(t.cwtPA(region))
		w.cwcPMD.Insert(asid, region)
		w.cwcPUD.Insert(asid, region>>9)
	}

	// All indicated page-size tables are probed as one parallel group,
	// appended straight into the walk buffer; an empty group is dropped.
	probeSizes := [...]addr.PageSize{addr.Page4K, addr.Page2M}
	b.Group()
	for _, s := range probeSizes {
		if mask&(1<<uint(s)) != 0 {
			t.tables[s].probeInto(b, v)
		}
	}
	var entry pte.Entry
	found := false
	for _, s := range probeSizes {
		if mask&(1<<uint(s)) != 0 {
			if e, ok := t.tables[s].lookup(v); ok {
				entry, found = e, true
				break
			}
		}
	}
	return b.Outcome(entry, found, mmu.StepCycles)
}

// Lookup implements mmu.Lookuper: resolve the translation functionally and
// record a walk plan. Each indicated way is hashed exactly once, serving
// both the probe trace and the tag match — the scalar Walk hashes every
// way twice (probeInto, then lookup).
func (w *Walker) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	if w.planASID != asid {
		w.plans = w.plans[:0]
		w.planPos = 0
		w.planASID = asid
	}
	var p plan
	p.vpn = v
	t, ok := w.table(asid)
	if !ok {
		p.noTable = true
		//lint:allow hotalloc plan queue grows to the batch size once, then recycles
		w.plans = append(w.plans, p)
		return 0, false
	}
	p.region = t.region(v)
	p.cwtPA = t.cwtPA(p.region)
	mask := t.cwt[p.region]
	// Sizes probed 4K before 2M and ways in order, matching the scalar
	// probe trace; the first matching (size, way) wins, matching the
	// scalar break-at-first-size lookup loop.
	for _, s := range [...]addr.PageSize{addr.Page4K, addr.Page2M} {
		if mask&(1<<uint(s)) == 0 {
			continue
		}
		c := t.tables[s]
		tag := addr.AlignDown(v, c.size)
		for _, wy := range c.ways {
			i := wy.index(tag)
			p.probes[p.nprobe] = wy.slotPA(i)
			p.nprobe++
			if !p.found && wy.slots[i].Matches(v) {
				p.entry, p.found = wy.slots[i].Entry, true
			}
		}
	}
	//lint:allow hotalloc plan queue grows to the batch size once, then recycles
	w.plans = append(w.plans, p)
	return p.entry, p.found
}

// replay performs the timing half of a planned walk: live CWC probes and
// fills, probe trace from the plan. The emitted trace is exactly the
// scalar Walk's for the same table state.
func (w *Walker) replay(b *mmu.WalkBuf, asid uint16, p *plan) mmu.Outcome {
	if p.noTable {
		return mmu.Outcome{}
	}
	if !w.cwcPMD.Lookup(asid, p.region) && !w.cwcPUD.Lookup(asid, p.region>>9) {
		b.AddGroup(p.cwtPA)
		w.cwcPMD.Insert(asid, p.region)
		w.cwcPUD.Insert(asid, p.region>>9)
	}
	b.Group()
	for i := 0; i < int(p.nprobe); i++ {
		b.Add(p.probes[i])
	}
	return b.Outcome(p.entry, p.found, mmu.StepCycles)
}

// WalkBatch implements mmu.BatchWalker: replay the plans recorded by the
// preceding Lookup sequence (falling back to fresh walks on mismatch) and
// drain the plan queue.
func (w *Walker) WalkBatch(asid uint16, vpns []addr.VPN, bufs *mmu.WalkBatchBuf) {
	bufs.Reset(len(vpns))
	for i, v := range vpns {
		b := bufs.Buf(i)
		if w.planPos < len(w.plans) && asid == w.planASID && w.plans[w.planPos].vpn == v {
			p := &w.plans[w.planPos]
			w.planPos++
			bufs.SetOutcome(i, w.replay(b, asid, p))
			continue
		}
		if t, ok := w.table(asid); ok {
			bufs.SetOutcome(i, w.walkInto(b, t, asid, v))
		} else {
			bufs.SetOutcome(i, mmu.Outcome{})
		}
	}
	w.plans = w.plans[:0]
	w.planPos = 0
}

var _ mmu.Walker = (*Walker)(nil)
var _ mmu.BatchWalker = (*Walker)(nil)
var _ mmu.Lookuper = (*Walker)(nil)
