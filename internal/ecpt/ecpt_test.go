package ecpt

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	tb, err := New(phys.New(128<<20), 1024)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestMapLookup(t *testing.T) {
	tb := newTable(t)
	e := pte.New(0xff, addr.Page4K)
	if err := tb.Map(139, e); err != nil {
		t.Fatal(err)
	}
	got, ok := tb.Lookup(139)
	if !ok || got != e {
		t.Fatalf("lookup failed: %v %t", got, ok)
	}
	if _, ok := tb.Lookup(140); ok {
		t.Error("unmapped found")
	}
}

func TestHugePages(t *testing.T) {
	tb := newTable(t)
	e := pte.New(512, addr.Page2M)
	if err := tb.Map(1024, e); err != nil {
		t.Fatal(err)
	}
	for _, v := range []addr.VPN{1024, 1300, 1535} {
		if got, ok := tb.Lookup(v); !ok || got != e {
			t.Errorf("VPN %d missed in 2M cuckoo table", v)
		}
	}
}

func TestUnmap(t *testing.T) {
	tb := newTable(t)
	tb.Map(7, pte.New(1, addr.Page4K))
	if !tb.Unmap(7) {
		t.Fatal("unmap failed")
	}
	if _, ok := tb.Lookup(7); ok {
		t.Error("unmapped VPN found")
	}
}

func TestElasticResize(t *testing.T) {
	mem := phys.New(256 << 20)
	tb, err := New(mem, 64) // tiny: forces resizes
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tb.Map(addr.VPN(1000+i), pte.New(addr.PPN(i+1), addr.Page4K)); err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
	if tb.Rehashes() == 0 {
		t.Error("expected elastic resizes")
	}
	// All keys survive rehashing.
	for i := 0; i < 2000; i++ {
		if _, ok := tb.Lookup(addr.VPN(1000 + i)); !ok {
			t.Fatalf("VPN %d lost across resize", 1000+i)
		}
	}
}

func TestWalkerParallelProbes(t *testing.T) {
	mem := phys.New(128 << 20)
	tb, _ := New(mem, 1024)
	tb.Map(139, pte.New(0xff, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)

	// Cold walk: CWT fetch + 3 parallel way probes.
	out := w.Walk(1, 139)
	if !out.Found {
		t.Fatal("walk failed")
	}
	if out.Refs() != 1+Ways {
		t.Errorf("cold ECPT walk made %d refs, want %d", out.Refs(), 1+Ways)
	}
	// Warm walk (CWC hit): 3 parallel refs in one group — the
	// latency-for-traffic trade of §2.2.
	out = w.Walk(1, 139)
	if out.Refs() != Ways {
		t.Errorf("warm ECPT walk made %d refs, want %d", out.Refs(), Ways)
	}
	if out.NumGroups() != 1 || len(out.Group(0)) != Ways {
		t.Errorf("warm probes must be one parallel group: %+v", out.AllRefs())
	}
}

func TestWalkerMixedSizesProbesBoth(t *testing.T) {
	mem := phys.New(128 << 20)
	tb, _ := New(mem, 1024)
	// The same 2MB region contains 4K pages; a second region has a 2M page.
	tb.Map(10, pte.New(1, addr.Page4K))
	tb.Map(1024, pte.New(512, addr.Page2M))
	w := NewWalker()
	w.Attach(1, tb)
	w.Walk(1, 10) // warm the CWC
	out := w.Walk(1, 10)
	if out.Refs() != Ways {
		t.Errorf("single-size region probed %d refs, want %d", out.Refs(), Ways)
	}
	out = w.Walk(1, 1300)
	if !out.Found || out.Entry.Size() != addr.Page2M {
		t.Error("2M region walk failed")
	}
}

func TestWalkerMiss(t *testing.T) {
	mem := phys.New(128 << 20)
	tb, _ := New(mem, 1024)
	tb.Map(10, pte.New(1, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)
	if out := w.Walk(1, 999999); out.Found {
		t.Error("unmapped VPN translated")
	}
}

func TestTableBytesOverProvisioned(t *testing.T) {
	tb := newTable(t)
	tb.Map(1, pte.New(1, addr.Page4K))
	// ECPT reserves full tables regardless of occupancy: 2 sizes × 3 ways.
	min := uint64(2 * Ways * 1024 * pte.TaggedBytes)
	if tb.TableBytes() < min {
		t.Errorf("table bytes = %d, want ≥ %d (over-provisioning)", tb.TableBytes(), min)
	}
}
