package experiments

// Compute-phase artifact caching: several experiments measure things no
// RunKey covers — the tail-latency study, the fragmentation sweep, the
// Table-2 scaling launches, the hash-collision baseline, and the other
// bespoke one-off simulations. Each of those measurements is a pure
// function of the sweep Config, so its result can be persisted in the run
// cache's fingerprint namespace exactly like a RunOutput: a warm sweep
// reloads the measured data and only re-renders the table from it. The
// cold path renders from the same data struct, which is what makes a warm
// re-render byte-identical by construction.

// SetArtifactCache installs (or, with nil, removes) the persistent store
// for bespoke compute-phase measurements. ExecutePlan wires it
// automatically from ExecOptions.Cache.
func (r *Runner) SetArtifactCache(c *RunCache) { r.arts = c }

// artifactFor returns the named compute-phase measurement: loaded from the
// runner's artifact cache when present, computed (and stored) otherwise.
// T must round-trip losslessly through encoding/json — pure data structs
// of numbers, strings, maps, and slices.
func artifactFor[T any](r *Runner, name string, compute func() (T, error)) (T, error) {
	var zero T
	if r.arts == nil {
		return compute()
	}
	var v T
	hit, err := r.arts.LoadArtifact(name, &v)
	if err != nil {
		return zero, err
	}
	if hit {
		if as, ok := r.sink.(ArtifactSink); ok {
			as.ArtifactCached(name)
		}
		return v, nil
	}
	v, err = compute()
	if err != nil {
		return zero, err
	}
	if err := r.arts.StoreArtifact(name, v); err != nil {
		return zero, err
	}
	if as, ok := r.sink.(ArtifactSink); ok {
		as.ArtifactStored(name)
	}
	return v, nil
}
