package experiments

import (
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// testArtifact is shaped like the real compute-phase payloads: floats,
// counters, and a uint64-keyed map (which encoding/json round-trips through
// string keys).
type testArtifact struct {
	P50      float64           `json:"p50"`
	Ops      int               `json:"ops"`
	Fraction map[uint64]string `json:"fraction"`
}

func TestArtifactRoundTrip(t *testing.T) {
	c, err := NewRunCache(t.TempDir(), jsonSweepConfig())
	if err != nil {
		t.Fatal(err)
	}

	var miss testArtifact
	if hit, err := c.LoadArtifact("tail", &miss); err != nil || hit {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}

	want := testArtifact{P50: 42.125, Ops: 7, Fraction: map[uint64]string{1 << 18: "a", 1 << 28: "b"}}
	if err := c.StoreArtifact("tail", want); err != nil {
		t.Fatal(err)
	}
	var got testArtifact
	hit, err := c.LoadArtifact("tail", &got)
	if err != nil || !hit {
		t.Fatalf("LoadArtifact after Store: hit=%v err=%v", hit, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the artifact:\n got %+v\nwant %+v", got, want)
	}
}

func TestArtifactCorruptAndForeignEntries(t *testing.T) {
	root := t.TempDir()
	cfgA := jsonSweepConfig()
	cfgB := jsonSweepConfig()
	cfgB.Params.Seed++
	a, err := NewRunCache(root, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunCache(root, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	art := testArtifact{Ops: 1}
	if err := a.StoreArtifact("tail", art); err != nil {
		t.Fatal(err)
	}

	// Corrupt JSON must be a hard error naming the artifact, never a miss.
	if err := os.WriteFile(a.artifactPath("tail"), []byte("{ truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	var v testArtifact
	if _, err := a.LoadArtifact("tail", &v); err == nil {
		t.Error("corrupt artifact loaded without error")
	} else {
		for _, want := range []string{"tail", "corrupt"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	}

	// A hand-copied entry from another config's namespace is rejected by
	// the embedded fingerprint; a renamed one by the embedded name.
	if err := a.StoreArtifact("tail", art); err != nil {
		t.Fatal(err)
	}
	entry, err := os.ReadFile(a.artifactPath("tail"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b.artifactPath("tail"), entry, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.LoadArtifact("tail", &v); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign-fingerprint artifact accepted: %v", err)
	}
	if err := os.WriteFile(a.artifactPath("frag"), entry, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadArtifact("frag", &v); err == nil || !strings.Contains(err.Error(), "holds artifact") {
		t.Errorf("renamed artifact accepted: %v", err)
	}
}

// artifactRecorder counts artifact events alongside the core sink.
type artifactRecorder struct {
	countingSink
	mu     sync.Mutex
	cached []string
	stored []string
}

func (s *artifactRecorder) ArtifactCached(name string) {
	s.mu.Lock()
	s.cached = append(s.cached, name)
	s.mu.Unlock()
}
func (s *artifactRecorder) ArtifactStored(name string) {
	s.mu.Lock()
	s.stored = append(s.stored, name)
	s.mu.Unlock()
}

// A bespoke study renders byte-identically whether its measurement was just
// computed or reloaded from the artifact cache, and the warm pass reports
// the cache hit instead of recomputing.
func TestArtifactWarmRenderIdentity(t *testing.T) {
	cache, err := NewRunCache(t.TempDir(), Quick())
	if err != nil {
		t.Fatal(err)
	}

	cold := &artifactRecorder{}
	r1 := NewRunner(Quick())
	r1.SetSink(cold)
	r1.SetArtifactCache(cache)
	res1, err := r1.Fig3Contiguity()
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.stored) != 1 || len(cold.cached) != 0 {
		t.Fatalf("cold pass: stored=%v cached=%v, want one store", cold.stored, cold.cached)
	}

	warm := &artifactRecorder{}
	r2 := NewRunner(Quick())
	r2.SetSink(warm)
	r2.SetArtifactCache(cache)
	res2, err := r2.Fig3Contiguity()
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.cached) != 1 || len(warm.stored) != 0 {
		t.Fatalf("warm pass: stored=%v cached=%v, want one cache hit", warm.stored, warm.cached)
	}
	if !reflect.DeepEqual(res1.Fraction, res2.Fraction) {
		t.Errorf("warm measurement differs:\n cold %v\n warm %v", res1.Fraction, res2.Fraction)
	}
	if res1.Table.String() != res2.Table.String() {
		t.Errorf("warm render differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s",
			res1.Table.String(), res2.Table.String())
	}
}
