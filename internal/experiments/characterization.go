package experiments

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/hashpt"
	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/sim"
	"lvm/internal/stats"
	"lvm/internal/vas"
)

// CollisionResult carries the §7.3 collision comparison.
type CollisionResult struct {
	LVM4K, LVMTHP   map[string]float64
	Hash4K, HashTHP map[string]float64
	AvgLVM4K        float64
	AvgLVMTHP       float64
	AvgHash4K       float64
	AvgHashTHP      float64
	AvgExtraPerColl float64
	Table           *stats.Table
}

// CollisionRates reproduces §7.3's collision study: LVM vs a Blake2 hash
// table at load factor 0.6. Paper: LVM 0.2%/0.6%, hash 22%/19%; extra
// accesses per collision avg 2.36 under C_err = 3.
func (r *Runner) CollisionRates() (CollisionResult, error) {
	res := CollisionResult{
		LVM4K: map[string]float64{}, LVMTHP: map[string]float64{},
		Hash4K: map[string]float64{}, HashTHP: map[string]float64{},
	}
	tb := stats.NewTable("workload", "pages", "lvm", "blake2 hash", "extra/coll")
	var l4, lt, h4, ht, extra []float64
	for _, thp := range []bool{false, true} {
		for _, name := range r.Cfg.Workloads {
			lv, err := r.Run(name, oskernel.SchemeLVM, thp)
			if err != nil {
				return CollisionResult{}, err
			}
			// Hash baseline: insert the same translations into an
			// open-addressing Blake2 table at load 0.6.
			w, err := r.Workload(name)
			if err != nil {
				return CollisionResult{}, err
			}
			trs := w.Space.Translations(thp)
			h := hashpt.New(len(trs), hashpt.DefaultLoadFactor)
			for _, tr := range trs {
				if _, err := h.Insert(tr.VPN, entryFor(tr)); err != nil {
					return CollisionResult{}, fmt.Errorf("collisions %s thp=%t: hash insert: %w", name, thp, err)
				}
			}
			hc := h.CollisionRate()
			label := "4KB"
			if thp {
				label = "THP"
				res.LVMTHP[name], res.HashTHP[name] = lv.CollisionRate, hc
				lt = append(lt, lv.CollisionRate)
				ht = append(ht, hc)
			} else {
				res.LVM4K[name], res.Hash4K[name] = lv.CollisionRate, hc
				l4 = append(l4, lv.CollisionRate)
				h4 = append(h4, hc)
			}
			if lv.ExtraPerColl > 0 {
				extra = append(extra, lv.ExtraPerColl)
			}
			tb.AddRow(name, label, pct(lv.CollisionRate), pct(hc), lv.ExtraPerColl)
		}
	}
	res.AvgLVM4K, res.AvgLVMTHP = stats.Mean(l4), stats.Mean(lt)
	res.AvgHash4K, res.AvgHashTHP = stats.Mean(h4), stats.Mean(ht)
	res.AvgExtraPerColl = stats.Mean(extra)
	res.Table = tb
	return res, nil
}

// entryFor builds a placeholder entry for the hash-table baseline (the
// collision study depends only on key placement, not on the PPN).
func entryFor(tr vas.Translation) pte.Entry { return pte.New(1, tr.Size) }

// RetrainResult carries the §7.3 maintenance study.
type RetrainResult struct {
	// Retrain-class events (retrains + rebuilds) per workload run,
	// including a growth phase. Paper: at most 3, average 2 (measured
	// on the authors' OS prototype over complete application runtimes).
	Events map[string]uint64
	Max    uint64
	Avg    float64
	// Management cycles — initialization plus ongoing maintenance, as the
	// paper counts them — as a fraction of a 1-billion-instruction
	// simulation window (the paper's region of interest). Paper: 1.17%
	// average, 1.91% peak (dfs); THP < 0.01%.
	MgmtFraction map[string]float64
	MgmtTHP      map[string]float64
	AvgMgmt      float64
	Table        *stats.Table
}

// paperWindowInstrs is the simulated region of interest in §6: "we execute
// 1 billion instructions". Our traces sample fewer instructions, so the
// management fraction scales run cycles up to this window.
const paperWindowInstrs = 1e9

// RetrainStats reproduces §7.3's retraining study. Two measurements per
// workload, matching the paper's two methodologies:
//
//   - Retrain events: launch, then grow the heap by ~12% page by page
//     past the initially-trained span (the paper ran applications
//     end-to-end on its OS prototype). Events must stay in the low
//     single digits.
//   - Management overhead: all management cycles as they occur —
//     initialization plus growth — against a 1-billion-instruction
//     execution window, the paper's simulated region of interest. Our
//     traces sample fewer instructions, so run cycles are scaled up to
//     that window at the workload's measured CPI.
func (r *Runner) RetrainStats() (RetrainResult, error) {
	res := RetrainResult{
		Events:       map[string]uint64{},
		MgmtFraction: map[string]float64{},
		MgmtTHP:      map[string]float64{},
	}
	tb := stats.NewTable("workload", "retrain events", "mgmt 4KB", "mgmt THP")
	var evs, fracs []float64
	for _, name := range r.Cfg.Workloads {
		w, err := r.Workload(name)
		if err != nil {
			return RetrainResult{}, err
		}
		sys, p, err := launchScaled(r.physFor(w), oskernel.SchemeLVM, w.Space, false)
		if err != nil {
			return RetrainResult{}, fmt.Errorf("retrain %s: launch: %w", name, err)
		}
		// Growth phase: extend the heap tail by ~12% beyond its current
		// high-water mark (brk/mmap growth past the initially-trained span).
		heap, err := heapOf(w.Space)
		if err != nil {
			return RetrainResult{}, fmt.Errorf("retrain %s: %w", name, err)
		}
		grow := heap.Span / 8
		start := heap.Mapped[len(heap.Mapped)-1] + 1
		for i := 0; i < grow; i++ {
			v := start + addr.VPN(i)
			if _, ok := sys.SoftwareLookup(1, v); ok {
				continue // another region's page: skip, keep extending
			}
			if err := sys.MapPage(1, v, addr.Page4K); err != nil {
				break
			}
		}
		events := p.LvmIx.Stats().Retrains + p.LvmIx.Stats().Rebuilds
		res.Events[name] = events
		evs = append(evs, float64(events))
		// Management fraction over the paper's 1B-instruction window.
		run4k, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return RetrainResult{}, err
		}
		frac := mgmtFraction(p.MgmtCycles, run4k.Sim)
		res.MgmtFraction[name] = frac
		fracs = append(fracs, frac)
		// THP: far fewer translations to manage (paper: < 0.01%).
		_, tp, err := launchScaled(r.physFor(w), oskernel.SchemeLVM, w.Space, true)
		if err != nil {
			return RetrainResult{}, fmt.Errorf("retrain %s thp: launch: %w", name, err)
		}
		runTHP, err := r.Run(name, oskernel.SchemeLVM, true)
		if err != nil {
			return RetrainResult{}, err
		}
		thpFrac := mgmtFraction(tp.MgmtCycles, runTHP.Sim)
		res.MgmtTHP[name] = thpFrac
		tb.AddRow(name, events, pct(frac), pct(thpFrac))
	}
	for _, e := range evs {
		if uint64(e) > res.Max {
			res.Max = uint64(e)
		}
	}
	res.Avg = stats.Mean(evs)
	res.AvgMgmt = stats.Mean(fracs)
	res.Table = tb
	return res, nil
}

// mgmtFraction scales a sampled run up to the paper's 1B-instruction
// region of interest at the measured CPI and reports management cycles as
// a fraction of that window.
func mgmtFraction(mgmtCycles uint64, run sim.Result) float64 {
	if run.Instructions == 0 {
		return 0
	}
	window := run.Cycles * paperWindowInstrs / float64(run.Instructions)
	return float64(mgmtCycles) / (window + float64(mgmtCycles))
}

// MemoryOverheadResult carries §7.3's memory-consumption comparison.
type MemoryOverheadResult struct {
	// Overhead beyond 8 B per translation, per scheme, for each workload.
	LVM, ECPT, Radix map[string]uint64
	Table            *stats.Table
}

// MemoryOverhead reproduces §7.3: extra memory each structure uses beyond
// the 8-byte-per-translation minimum. Paper: LVM ≤ 1.3× minimum (e.g.
// +12 MB at 20 GB); ECPT +27 MB.
func (r *Runner) MemoryOverhead() (MemoryOverheadResult, error) {
	res := MemoryOverheadResult{
		LVM: map[string]uint64{}, ECPT: map[string]uint64{}, Radix: map[string]uint64{},
	}
	tb := stats.NewTable("workload", "lvm overhead", "ecpt overhead", "radix overhead")
	for _, name := range r.Cfg.Workloads {
		lv, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return MemoryOverheadResult{}, err
		}
		ec, err := r.Run(name, oskernel.SchemeECPT, false)
		if err != nil {
			return MemoryOverheadResult{}, err
		}
		rad, err := r.Run(name, oskernel.SchemeRadix, false)
		if err != nil {
			return MemoryOverheadResult{}, err
		}
		res.LVM[name], res.ECPT[name], res.Radix[name] = lv.OverheadBytes, ec.OverheadBytes, rad.OverheadBytes
		tb.AddRow(name, byteLabel(lv.OverheadBytes), byteLabel(ec.OverheadBytes), byteLabel(rad.OverheadBytes))
	}
	res.Table = tb
	return res, nil
}

// FragmentationResult carries §7.3's fragmentation robustness study.
type FragmentationResult struct {
	// Speedup of LVM over radix per fragmentation level.
	Speedups map[string]float64
	// LWC hit rates per level (paper: stays > 99%).
	LWCHits map[string]float64
	Table   *stats.Table
}

// FragmentationRobustness reproduces §7.3's fragmentation sweep: LVM with
// contiguity capped at 256 KB and at FMFI 0.8/0.85/0.9 must keep its
// speedup and LWC hit rate.
func (r *Runner) FragmentationRobustness() (FragmentationResult, error) {
	res := FragmentationResult{Speedups: map[string]float64{}, LWCHits: map[string]float64{}}
	tb := stats.NewTable("environment", "lvm speedup vs radix", "lwc hit")
	name := translationBoundWorkload(r.Cfg)
	w, err := r.Workload(name)
	if err != nil {
		return FragmentationResult{}, err
	}

	levels := []struct {
		label string
		prep  func(*phys.Memory)
	}{
		{"fresh", func(m *phys.Memory) {}},
		{"cap 256KB", func(m *phys.Memory) {
			m.Fragment(r.Cfg.Params.Seed, phys.DatacenterFragmentation)
			m.SetContiguityCap(6)
		}},
		{"FMFI 0.8", func(m *phys.Memory) { m.FragmentToFMFI(r.Cfg.Params.Seed, 9, 0.8) }},
		{"FMFI 0.9", func(m *phys.Memory) { m.FragmentToFMFI(r.Cfg.Params.Seed, 9, 0.9) }},
	}
	for _, lvl := range levels {
		run := func(scheme oskernel.Scheme) (cycles, hit float64, err error) {
			// Fragmented memories need headroom: aged memories keep 25%
			// free, so size at 4× footprint.
			mem := phys.New(4*w.FootprintBytes() + r.Cfg.PhysSlackBytes)
			lvl.prep(mem)
			sys, _, err := launchScaled(mem, scheme, w.Space, false)
			if err != nil {
				return 0, 0, fmt.Errorf("fragmentation %s/%s: launch: %w", lvl.label, scheme, err)
			}
			cpu := sim.New(r.Cfg.Sim, sys.Walker())
			cycles = cpu.Run(1, w).Cycles
			if lw := sys.LVMWalker(); lw != nil {
				hit = lw.LWC().HitRate()
			}
			return cycles, hit, nil
		}
		radCycles, _, err := run(oskernel.SchemeRadix)
		if err != nil {
			return FragmentationResult{}, err
		}
		lvmCycles, hit, err := run(oskernel.SchemeLVM)
		if err != nil {
			return FragmentationResult{}, err
		}
		sp := speedup(radCycles, lvmCycles)
		res.Speedups[lvl.label] = sp
		res.LWCHits[lvl.label] = hit
		tb.AddRow(lvl.label, sp, pct(hit))
	}
	res.Table = tb
	return res, nil
}

// WalkCacheResult carries §7.2's miss-rate characterization.
type WalkCacheResult struct {
	L2TLBMiss  map[string]float64
	PWCPDEMiss map[string]float64
	LWCHit     map[string]float64
	Table      *stats.Table
}

// WalkCacheMissRates reproduces §7.2: L2 TLB miss rates (57.5–99.4%,
// scheme-independent), radix PMD-level PWC miss rates (59.7–99.6%), and
// LVM LWC hit rates (> 99%).
func (r *Runner) WalkCacheMissRates() (WalkCacheResult, error) {
	res := WalkCacheResult{
		L2TLBMiss: map[string]float64{}, PWCPDEMiss: map[string]float64{}, LWCHit: map[string]float64{},
	}
	tb := stats.NewTable("workload", "L2 TLB miss", "radix PDE miss", "LWC hit")
	for _, name := range r.Cfg.Workloads {
		rad, err := r.Run(name, oskernel.SchemeRadix, false)
		if err != nil {
			return WalkCacheResult{}, err
		}
		lv, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return WalkCacheResult{}, err
		}
		res.L2TLBMiss[name] = rad.Sim.L2TLBMiss
		res.PWCPDEMiss[name] = rad.PWCPDEMissRate
		res.LWCHit[name] = lv.LWCHitRate
		tb.AddRow(name, pct(rad.Sim.L2TLBMiss), pct(rad.PWCPDEMissRate), pct(lv.LWCHitRate))
	}
	res.Table = tb
	return res, nil
}

// PTWL1Result carries §7.2's PTW-connection study.
type PTWL1Result struct {
	// Speedups of LVM over radix when walkers connect to L1 vs L2.
	SpeedupL1, SpeedupL2 float64
	// L1 MPKI increase from moving the PTW to L1 (radix vs LVM).
	RadixL1MPKIIncrease, LVML1MPKIIncrease float64
	Table                                  *stats.Table
}

// PTWL1Connection reproduces §7.2's study: connecting page walkers to the
// L1 cache. Paper: LVM +11% (L1) vs +14% (L2); L1 MPKI rises 59% for
// radix but only 38% for LVM.
func (r *Runner) PTWL1Connection() (PTWL1Result, error) {
	var res PTWL1Result
	tb := stats.NewTable("config", "lvm speedup", "radix L1 MPKI", "lvm L1 MPKI")
	name := translationBoundWorkload(r.Cfg)
	w, err := r.Workload(name)
	if err != nil {
		return PTWL1Result{}, err
	}
	type out struct{ cycles, l1mpki float64 }
	run := func(scheme oskernel.Scheme, entry int) (out, error) {
		sys, _, err := launchScaled(r.physFor(w), scheme, w.Space, false)
		if err != nil {
			return out{}, fmt.Errorf("ptw-l1 %s entry=L%d: launch: %w", scheme, entry, err)
		}
		cfg := r.Cfg.Sim
		cfg.Cache.WalkEntryLevel = entry
		cpu := sim.New(cfg, sys.Walker())
		res := cpu.Run(1, w)
		return out{res.Cycles, res.L1MPKI}, nil
	}
	radL2, err := run(oskernel.SchemeRadix, 2)
	if err != nil {
		return PTWL1Result{}, err
	}
	radL1, err := run(oskernel.SchemeRadix, 1)
	if err != nil {
		return PTWL1Result{}, err
	}
	lvmL2, err := run(oskernel.SchemeLVM, 2)
	if err != nil {
		return PTWL1Result{}, err
	}
	lvmL1, err := run(oskernel.SchemeLVM, 1)
	if err != nil {
		return PTWL1Result{}, err
	}
	res.SpeedupL2 = speedup(radL2.cycles, lvmL2.cycles)
	res.SpeedupL1 = speedup(radL1.cycles, lvmL1.cycles)
	res.RadixL1MPKIIncrease = radL1.l1mpki/radL2.l1mpki - 1
	res.LVML1MPKIIncrease = lvmL1.l1mpki/lvmL2.l1mpki - 1
	tb.AddRow("PTW->L2", res.SpeedupL2, radL2.l1mpki, lvmL2.l1mpki)
	tb.AddRow("PTW->L1", res.SpeedupL1, radL1.l1mpki, lvmL1.l1mpki)
	res.Table = tb
	return res, nil
}

// MultiTenancyResult carries §7.1's stacked-workload study.
type MultiTenancyResult struct {
	// Per-workload LVM speedups, solo vs stacked (paper: within 0.5%).
	Solo, Stacked map[string]float64
	MaxDelta      float64
	Table         *stats.Table
}

// MultiTenancy reproduces §7.1's multi-tenant study: workloads run on
// separate cores (private caches/TLBs per Table 1) with their own address
// spaces; per-workload speedups must match the solo runs.
func (r *Runner) MultiTenancy() (MultiTenancyResult, error) {
	res := MultiTenancyResult{Solo: map[string]float64{}, Stacked: map[string]float64{}}
	tb := stats.NewTable("workload", "solo speedup", "stacked speedup", "delta")
	names := tenancyNames(r.Cfg)
	// Stacked: all processes share one OS/phys memory and scheme walker,
	// each on its own core.
	stackedCycles := map[string]float64{}
	for _, scheme := range []oskernel.Scheme{oskernel.SchemeRadix, oskernel.SchemeLVM} {
		var total uint64
		for _, name := range names {
			w, err := r.Workload(name)
			if err != nil {
				return MultiTenancyResult{}, err
			}
			total += w.FootprintBytes()
		}
		mem := phys.New(total + total/2 + r.Cfg.PhysSlackBytes)
		sys := newScaledSystem(mem, scheme)
		for i, name := range names {
			w, err := r.Workload(name)
			if err != nil {
				return MultiTenancyResult{}, err
			}
			if _, err := sys.Launch(uint16(i+1), w.Space, false); err != nil {
				return MultiTenancyResult{}, fmt.Errorf("multitenancy %s/%s asid=%d: launch: %w", name, scheme, i+1, err)
			}
		}
		for i, name := range names {
			w, err := r.Workload(name)
			if err != nil {
				return MultiTenancyResult{}, err
			}
			cpu := sim.New(r.Cfg.Sim, sys.Walker())
			cycles := cpu.Run(uint16(i+1), w).Cycles
			key := name + "/" + string(scheme)
			stackedCycles[key] = cycles
		}
	}
	for _, name := range names {
		soloBase, err := r.Run(name, oskernel.SchemeRadix, false)
		if err != nil {
			return MultiTenancyResult{}, err
		}
		soloLVM, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return MultiTenancyResult{}, err
		}
		solo := speedup(soloBase.Sim.Cycles, soloLVM.Sim.Cycles)
		stacked := speedup(stackedCycles[name+"/radix"], stackedCycles[name+"/lvm"])
		res.Solo[name], res.Stacked[name] = solo, stacked
		d := stacked - solo
		if d < 0 {
			d = -d
		}
		if d > res.MaxDelta {
			res.MaxDelta = d
		}
		tb.AddRow(name, solo, stacked, d)
	}
	res.Table = tb
	return res, nil
}

// PriorWorkResult carries the §7.5 comparisons.
type PriorWorkResult struct {
	// Speedups over radix for each scheme on the first workload.
	LVM, ECPT, ASAP, Midgard, FPT float64
	// FPT under fragmentation (paper: degrades toward radix).
	FPTFragmented float64
	Table         *stats.Table
}

// PriorWork reproduces §7.5: ASAP (slower than ECPT and LVM from prefetch
// traffic), Midgard (+3% over radix; LVM ahead), and FPT (close behind LVM
// when unfragmented, degrading to radix under fragmentation).
func (r *Runner) PriorWork() (PriorWorkResult, error) {
	var res PriorWorkResult
	tb := stats.NewTable("scheme", "speedup vs radix")
	name := translationBoundWorkload(r.Cfg)
	rad, err := r.Run(name, oskernel.SchemeRadix, false)
	if err != nil {
		return PriorWorkResult{}, err
	}
	base := rad.Sim.Cycles
	for _, sc := range []struct {
		scheme oskernel.Scheme
		dst    *float64
	}{
		{oskernel.SchemeLVM, &res.LVM},
		{oskernel.SchemeECPT, &res.ECPT},
		{oskernel.SchemeASAP, &res.ASAP},
		{oskernel.SchemeMidgard, &res.Midgard},
		{oskernel.SchemeFPT, &res.FPT},
	} {
		out, err := r.Run(name, sc.scheme, false)
		if err != nil {
			return PriorWorkResult{}, err
		}
		*sc.dst = speedup(base, out.Sim.Cycles)
	}

	// FPT under heavy fragmentation: 2MB table allocations fail.
	w, err := r.Workload(name)
	if err != nil {
		return PriorWorkResult{}, err
	}
	mem := phys.New(4*w.FootprintBytes() + r.Cfg.PhysSlackBytes)
	mem.Fragment(r.Cfg.Params.Seed, phys.DatacenterFragmentation)
	mem.SetContiguityCap(6)
	sys, _, err := launchScaled(mem, oskernel.SchemeFPT, w.Space, false)
	if err != nil {
		return PriorWorkResult{}, fmt.Errorf("priorwork fpt fragmented: launch: %w", err)
	}
	cpu := sim.New(r.Cfg.Sim, sys.Walker())
	res.FPTFragmented = speedup(base, cpu.Run(1, w).Cycles)

	tb.AddRow("lvm", res.LVM)
	tb.AddRow("ecpt", res.ECPT)
	tb.AddRow("asap", res.ASAP)
	tb.AddRow("midgard", res.Midgard)
	tb.AddRow("fpt", res.FPT)
	tb.AddRow("fpt (fragmented)", res.FPTFragmented)
	res.Table = tb
	return res, nil
}

// translationBoundWorkload picks the most walk-intensive workload in the
// sweep (gups when present) so single-workload studies measure the regime
// where translation dominates. It is a pure function of the config so the
// planning phase can enumerate the same runs the compute phase will read.
func translationBoundWorkload(cfg Config) string {
	for _, n := range cfg.Workloads {
		if n == "gups" {
			return n
		}
	}
	return cfg.Workloads[0]
}

// --- small helpers ----------------------------------------------------------

func heapOf(s *vas.AddressSpace) (*vas.Region, error) {
	for i := range s.Regions {
		if s.Regions[i].Kind == vas.Heap {
			return &s.Regions[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: address space has no heap region")
}
