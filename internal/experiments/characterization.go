package experiments

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/hashpt"
	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/sim"
	"lvm/internal/stats"
	"lvm/internal/vas"
)

// CollisionResult carries the §7.3 collision comparison.
type CollisionResult struct {
	LVM4K, LVMTHP   map[string]float64
	Hash4K, HashTHP map[string]float64
	AvgLVM4K        float64
	AvgLVMTHP       float64
	AvgHash4K       float64
	AvgHashTHP      float64
	AvgExtraPerColl float64
	Table           *stats.Table
}

// collisionHashBaseline is the persisted bespoke half of the §7.3
// collision study: collision rates of the Blake2 open-addressing table at
// load 0.6, per workload, for 4 KB and THP translations.
type collisionHashBaseline struct {
	Hash4K  map[string]float64 `json:"hash_4k"`
	HashTHP map[string]float64 `json:"hash_thp"`
}

// measureCollisionBaseline inserts every workload's translations into an
// open-addressing Blake2 table at load 0.6 and records collision rates.
func (r *Runner) measureCollisionBaseline() (collisionHashBaseline, error) {
	res := collisionHashBaseline{Hash4K: map[string]float64{}, HashTHP: map[string]float64{}}
	for _, thp := range []bool{false, true} {
		for _, name := range r.Cfg.Workloads {
			w, err := r.Workload(name)
			if err != nil {
				return collisionHashBaseline{}, err
			}
			trs := w.Space.Translations(thp)
			h := hashpt.New(len(trs), hashpt.DefaultLoadFactor)
			for _, tr := range trs {
				if _, err := h.Insert(tr.VPN, entryFor(tr)); err != nil {
					return collisionHashBaseline{}, fmt.Errorf("collisions %s thp=%t: hash insert: %w", name, thp, err)
				}
			}
			if thp {
				res.HashTHP[name] = h.CollisionRate()
			} else {
				res.Hash4K[name] = h.CollisionRate()
			}
		}
	}
	return res, nil
}

// CollisionRates reproduces §7.3's collision study: LVM vs a Blake2 hash
// table at load factor 0.6. Paper: LVM 0.2%/0.6%, hash 22%/19%; extra
// accesses per collision avg 2.36 under C_err = 3. LVM's side comes from
// the cached run matrix; the hash baseline persists as an artifact.
func (r *Runner) CollisionRates() (CollisionResult, error) {
	base, err := artifactFor(r, "collisions.hash", r.measureCollisionBaseline)
	if err != nil {
		return CollisionResult{}, err
	}
	res := CollisionResult{
		LVM4K: map[string]float64{}, LVMTHP: map[string]float64{},
		Hash4K: base.Hash4K, HashTHP: base.HashTHP,
	}
	tb := stats.NewTable("workload", "pages", "lvm", "blake2 hash", "extra/coll")
	var l4, lt, h4, ht, extra []float64
	for _, thp := range []bool{false, true} {
		for _, name := range r.Cfg.Workloads {
			lv, err := r.Run(name, oskernel.SchemeLVM, thp)
			if err != nil {
				return CollisionResult{}, err
			}
			label := "4KB"
			var hc float64
			if thp {
				label = "THP"
				hc = base.HashTHP[name]
				res.LVMTHP[name] = lv.CollisionRate
				lt = append(lt, lv.CollisionRate)
				ht = append(ht, hc)
			} else {
				hc = base.Hash4K[name]
				res.LVM4K[name] = lv.CollisionRate
				l4 = append(l4, lv.CollisionRate)
				h4 = append(h4, hc)
			}
			if lv.ExtraPerColl > 0 {
				extra = append(extra, lv.ExtraPerColl)
			}
			tb.AddRow(name, label, pct(lv.CollisionRate), pct(hc), lv.ExtraPerColl)
		}
	}
	res.AvgLVM4K, res.AvgLVMTHP = stats.Mean(l4), stats.Mean(lt)
	res.AvgHash4K, res.AvgHashTHP = stats.Mean(h4), stats.Mean(ht)
	res.AvgExtraPerColl = stats.Mean(extra)
	res.Table = tb
	return res, nil
}

// entryFor builds a placeholder entry for the hash-table baseline (the
// collision study depends only on key placement, not on the PPN).
func entryFor(tr vas.Translation) pte.Entry { return pte.New(1, tr.Size) }

// RetrainResult carries the §7.3 maintenance study.
type RetrainResult struct {
	// Retrain-class events (retrains + rebuilds) per workload run,
	// including a growth phase. Paper: at most 3, average 2 (measured
	// on the authors' OS prototype over complete application runtimes).
	Events map[string]uint64
	Max    uint64
	Avg    float64
	// Management cycles — initialization plus ongoing maintenance, as the
	// paper counts them — as a fraction of a 1-billion-instruction
	// simulation window (the paper's region of interest). Paper: 1.17%
	// average, 1.91% peak (dfs); THP < 0.01%.
	MgmtFraction map[string]float64
	MgmtTHP      map[string]float64
	AvgMgmt      float64
	Table        *stats.Table
}

// paperWindowInstrs is the simulated region of interest in §6: "we execute
// 1 billion instructions". Our traces sample fewer instructions, so the
// management fraction scales run cycles up to this window.
const paperWindowInstrs = 1e9

// RetrainStats reproduces §7.3's retraining study. Two measurements per
// workload, matching the paper's two methodologies:
//
//   - Retrain events: launch, then grow the heap by ~12% page by page
//     past the initially-trained span (the paper ran applications
//     end-to-end on its OS prototype). Events must stay in the low
//     single digits.
//   - Management overhead: all management cycles as they occur —
//     initialization plus growth — against a 1-billion-instruction
//     execution window, the paper's simulated region of interest. Our
//     traces sample fewer instructions, so run cycles are scaled up to
//     that window at the workload's measured CPI.
func (r *Runner) RetrainStats() (RetrainResult, error) {
	growth, err := artifactFor(r, "retrain.growth", r.measureRetrainGrowth)
	if err != nil {
		return RetrainResult{}, err
	}
	res := RetrainResult{
		Events:       growth.Events,
		MgmtFraction: map[string]float64{},
		MgmtTHP:      map[string]float64{},
	}
	tb := stats.NewTable("workload", "retrain events", "mgmt 4KB", "mgmt THP")
	var evs, fracs []float64
	for _, name := range r.Cfg.Workloads {
		events := growth.Events[name]
		evs = append(evs, float64(events))
		// Management fraction over the paper's 1B-instruction window.
		run4k, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return RetrainResult{}, err
		}
		frac := mgmtFraction(growth.Mgmt4K[name], run4k.Sim)
		res.MgmtFraction[name] = frac
		fracs = append(fracs, frac)
		runTHP, err := r.Run(name, oskernel.SchemeLVM, true)
		if err != nil {
			return RetrainResult{}, err
		}
		thpFrac := mgmtFraction(growth.MgmtTHP[name], runTHP.Sim)
		res.MgmtTHP[name] = thpFrac
		tb.AddRow(name, events, pct(frac), pct(thpFrac))
	}
	for _, e := range evs {
		if uint64(e) > res.Max {
			res.Max = uint64(e)
		}
	}
	res.Avg = stats.Mean(evs)
	res.AvgMgmt = stats.Mean(fracs)
	res.Table = tb
	return res, nil
}

// retrainGrowth is the persisted bespoke half of the retraining study:
// retrain-class events and raw management cycles per workload from the
// growth-phase launches. The management *fractions* are derived at render
// time from these cycles and the cached run matrix.
type retrainGrowth struct {
	Events  map[string]uint64 `json:"events"`
	Mgmt4K  map[string]uint64 `json:"mgmt_4k"`
	MgmtTHP map[string]uint64 `json:"mgmt_thp"`
}

// measureRetrainGrowth launches each workload, grows its heap ~12% past
// the initially-trained span, and records the resulting retrain events and
// management cycles (4 KB and THP launches).
func (r *Runner) measureRetrainGrowth() (retrainGrowth, error) {
	res := retrainGrowth{
		Events: map[string]uint64{}, Mgmt4K: map[string]uint64{}, MgmtTHP: map[string]uint64{},
	}
	for _, name := range r.Cfg.Workloads {
		w, err := r.Workload(name)
		if err != nil {
			return retrainGrowth{}, err
		}
		sys, p, err := launchScaled(r.physFor(w), oskernel.SchemeLVM, w.Space, false)
		if err != nil {
			return retrainGrowth{}, fmt.Errorf("retrain %s: launch: %w", name, err)
		}
		// Growth phase: extend the heap tail by ~12% beyond its current
		// high-water mark (brk/mmap growth past the initially-trained span).
		heap, err := heapOf(w.Space)
		if err != nil {
			return retrainGrowth{}, fmt.Errorf("retrain %s: %w", name, err)
		}
		grow := heap.Span / 8
		start := heap.Mapped[len(heap.Mapped)-1] + 1
		for i := 0; i < grow; i++ {
			v := start + addr.VPN(i)
			if _, ok := sys.SoftwareLookup(1, v); ok {
				continue // another region's page: skip, keep extending
			}
			if err := sys.MapPage(1, v, addr.Page4K); err != nil {
				break
			}
		}
		res.Events[name] = p.LvmIx.Stats().Retrains + p.LvmIx.Stats().Rebuilds
		res.Mgmt4K[name] = p.MgmtCycles
		// THP: far fewer translations to manage (paper: < 0.01%).
		_, tp, err := launchScaled(r.physFor(w), oskernel.SchemeLVM, w.Space, true)
		if err != nil {
			return retrainGrowth{}, fmt.Errorf("retrain %s thp: launch: %w", name, err)
		}
		res.MgmtTHP[name] = tp.MgmtCycles
	}
	return res, nil
}

// mgmtFraction scales a sampled run up to the paper's 1B-instruction
// region of interest at the measured CPI and reports management cycles as
// a fraction of that window.
func mgmtFraction(mgmtCycles uint64, run sim.Result) float64 {
	if run.Instructions == 0 {
		return 0
	}
	window := run.Cycles * paperWindowInstrs / float64(run.Instructions)
	return float64(mgmtCycles) / (window + float64(mgmtCycles))
}

// MemoryOverheadResult carries §7.3's memory-consumption comparison.
type MemoryOverheadResult struct {
	// Overhead beyond 8 B per translation, per scheme, for each workload.
	LVM, ECPT, Radix map[string]uint64
	Table            *stats.Table
}

// MemoryOverhead reproduces §7.3: extra memory each structure uses beyond
// the 8-byte-per-translation minimum. Paper: LVM ≤ 1.3× minimum (e.g.
// +12 MB at 20 GB); ECPT +27 MB.
func (r *Runner) MemoryOverhead() (MemoryOverheadResult, error) {
	res := MemoryOverheadResult{
		LVM: map[string]uint64{}, ECPT: map[string]uint64{}, Radix: map[string]uint64{},
	}
	tb := stats.NewTable("workload", "lvm overhead", "ecpt overhead", "radix overhead")
	for _, name := range r.Cfg.Workloads {
		lv, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return MemoryOverheadResult{}, err
		}
		ec, err := r.Run(name, oskernel.SchemeECPT, false)
		if err != nil {
			return MemoryOverheadResult{}, err
		}
		rad, err := r.Run(name, oskernel.SchemeRadix, false)
		if err != nil {
			return MemoryOverheadResult{}, err
		}
		res.LVM[name], res.ECPT[name], res.Radix[name] = lv.OverheadBytes, ec.OverheadBytes, rad.OverheadBytes
		tb.AddRow(name, byteLabel(lv.OverheadBytes), byteLabel(ec.OverheadBytes), byteLabel(rad.OverheadBytes))
	}
	res.Table = tb
	return res, nil
}

// FragmentationResult carries §7.3's fragmentation robustness study.
type FragmentationResult struct {
	// Speedup of LVM over radix per fragmentation level.
	Speedups map[string]float64
	// LWC hit rates per level (paper: stays > 99%).
	LWCHits map[string]float64
	Table   *stats.Table `json:"-"`
}

// fragmentationLabels names the sweep's fragmentation levels in print
// order; measureFragmentation's preparation steps follow the same order.
var fragmentationLabels = []string{"fresh", "cap 256KB", "FMFI 0.8", "FMFI 0.9"}

// measureFragmentation runs the bespoke radix/LVM pairs on memories aged
// to each fragmentation level.
func (r *Runner) measureFragmentation() (FragmentationResult, error) {
	res := FragmentationResult{Speedups: map[string]float64{}, LWCHits: map[string]float64{}}
	name := translationBoundWorkload(r.Cfg)
	w, err := r.Workload(name)
	if err != nil {
		return FragmentationResult{}, err
	}

	preps := []func(*phys.Memory){
		func(m *phys.Memory) {},
		func(m *phys.Memory) {
			m.Fragment(r.Cfg.Params.Seed, phys.DatacenterFragmentation)
			m.SetContiguityCap(6)
		},
		func(m *phys.Memory) { m.FragmentToFMFI(r.Cfg.Params.Seed, 9, 0.8) },
		func(m *phys.Memory) { m.FragmentToFMFI(r.Cfg.Params.Seed, 9, 0.9) },
	}
	for i, label := range fragmentationLabels {
		prep := preps[i]
		run := func(scheme oskernel.Scheme) (cycles, hit float64, err error) {
			// Fragmented memories need headroom: aged memories keep 25%
			// free, so size at 4× footprint.
			mem := phys.New(4*w.FootprintBytes() + r.Cfg.PhysSlackBytes)
			prep(mem)
			sys, _, err := launchScaled(mem, scheme, w.Space, false)
			if err != nil {
				return 0, 0, fmt.Errorf("fragmentation %s/%s: launch: %w", label, scheme, err)
			}
			cpu := sim.New(r.Cfg.Sim, sys.Walker())
			cycles = cpu.Run(1, w).Cycles
			if lw := sys.LVMWalker(); lw != nil {
				hit = lw.LWC().HitRate()
			}
			return cycles, hit, nil
		}
		radCycles, _, err := run(oskernel.SchemeRadix)
		if err != nil {
			return FragmentationResult{}, err
		}
		lvmCycles, hit, err := run(oskernel.SchemeLVM)
		if err != nil {
			return FragmentationResult{}, err
		}
		res.Speedups[label] = speedup(radCycles, lvmCycles)
		res.LWCHits[label] = hit
	}
	return res, nil
}

// FragmentationRobustness reproduces §7.3's fragmentation sweep: LVM with
// contiguity capped at 256 KB and at FMFI 0.8/0.9 must keep its speedup
// and LWC hit rate. The sweep is entirely bespoke, so the whole result
// persists as a run-cache artifact.
func (r *Runner) FragmentationRobustness() (FragmentationResult, error) {
	res, err := artifactFor(r, "fragmentation", r.measureFragmentation)
	if err != nil {
		return FragmentationResult{}, err
	}
	tb := stats.NewTable("environment", "lvm speedup vs radix", "lwc hit")
	for _, label := range fragmentationLabels {
		tb.AddRow(label, res.Speedups[label], pct(res.LWCHits[label]))
	}
	res.Table = tb
	return res, nil
}

// WalkCacheResult carries §7.2's miss-rate characterization.
type WalkCacheResult struct {
	L2TLBMiss  map[string]float64
	PWCPDEMiss map[string]float64
	LWCHit     map[string]float64
	Table      *stats.Table
}

// WalkCacheMissRates reproduces §7.2: L2 TLB miss rates (57.5–99.4%,
// scheme-independent), radix PMD-level PWC miss rates (59.7–99.6%), and
// LVM LWC hit rates (> 99%).
func (r *Runner) WalkCacheMissRates() (WalkCacheResult, error) {
	res := WalkCacheResult{
		L2TLBMiss: map[string]float64{}, PWCPDEMiss: map[string]float64{}, LWCHit: map[string]float64{},
	}
	tb := stats.NewTable("workload", "L2 TLB miss", "radix PDE miss", "LWC hit")
	for _, name := range r.Cfg.Workloads {
		rad, err := r.Run(name, oskernel.SchemeRadix, false)
		if err != nil {
			return WalkCacheResult{}, err
		}
		lv, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return WalkCacheResult{}, err
		}
		res.L2TLBMiss[name] = rad.Sim.L2TLBMiss
		res.PWCPDEMiss[name] = rad.PWCPDEMissRate
		res.LWCHit[name] = lv.LWCHitRate
		tb.AddRow(name, pct(rad.Sim.L2TLBMiss), pct(rad.PWCPDEMissRate), pct(lv.LWCHitRate))
	}
	res.Table = tb
	return res, nil
}

// PTWL1Result carries §7.2's PTW-connection study.
type PTWL1Result struct {
	// Speedups of LVM over radix when walkers connect to L1 vs L2.
	SpeedupL1, SpeedupL2 float64
	// L1 MPKI increase from moving the PTW to L1 (radix vs LVM).
	RadixL1MPKIIncrease, LVML1MPKIIncrease float64
	// Absolute L1 MPKI per scheme at each walker connection point.
	RadixL1MPKIAtL2, RadixL1MPKIAtL1 float64
	LVML1MPKIAtL2, LVML1MPKIAtL1     float64
	Table                            *stats.Table `json:"-"`
}

// measurePTWL1 runs the four bespoke configurations (radix/LVM × walker
// into L2/L1) and derives the study's scalars.
func (r *Runner) measurePTWL1() (PTWL1Result, error) {
	var res PTWL1Result
	name := translationBoundWorkload(r.Cfg)
	w, err := r.Workload(name)
	if err != nil {
		return PTWL1Result{}, err
	}
	type out struct{ cycles, l1mpki float64 }
	run := func(scheme oskernel.Scheme, entry int) (out, error) {
		sys, _, err := launchScaled(r.physFor(w), scheme, w.Space, false)
		if err != nil {
			return out{}, fmt.Errorf("ptw-l1 %s entry=L%d: launch: %w", scheme, entry, err)
		}
		cfg := r.Cfg.Sim
		cfg.Cache.WalkEntryLevel = entry
		cpu := sim.New(cfg, sys.Walker())
		res := cpu.Run(1, w)
		return out{res.Cycles, res.L1MPKI}, nil
	}
	radL2, err := run(oskernel.SchemeRadix, 2)
	if err != nil {
		return PTWL1Result{}, err
	}
	radL1, err := run(oskernel.SchemeRadix, 1)
	if err != nil {
		return PTWL1Result{}, err
	}
	lvmL2, err := run(oskernel.SchemeLVM, 2)
	if err != nil {
		return PTWL1Result{}, err
	}
	lvmL1, err := run(oskernel.SchemeLVM, 1)
	if err != nil {
		return PTWL1Result{}, err
	}
	res.SpeedupL2 = speedup(radL2.cycles, lvmL2.cycles)
	res.SpeedupL1 = speedup(radL1.cycles, lvmL1.cycles)
	res.RadixL1MPKIIncrease = radL1.l1mpki/radL2.l1mpki - 1
	res.LVML1MPKIIncrease = lvmL1.l1mpki/lvmL2.l1mpki - 1
	res.RadixL1MPKIAtL2, res.RadixL1MPKIAtL1 = radL2.l1mpki, radL1.l1mpki
	res.LVML1MPKIAtL2, res.LVML1MPKIAtL1 = lvmL2.l1mpki, lvmL1.l1mpki
	return res, nil
}

// PTWL1Connection reproduces §7.2's study: connecting page walkers to the
// L1 cache. Paper: LVM +11% (L1) vs +14% (L2); L1 MPKI rises 59% for
// radix but only 38% for LVM. The study is entirely bespoke, so the whole
// result persists as a run-cache artifact.
func (r *Runner) PTWL1Connection() (PTWL1Result, error) {
	res, err := artifactFor(r, "ptwl1", r.measurePTWL1)
	if err != nil {
		return PTWL1Result{}, err
	}
	tb := stats.NewTable("config", "lvm speedup", "radix L1 MPKI", "lvm L1 MPKI")
	tb.AddRow("PTW->L2", res.SpeedupL2, res.RadixL1MPKIAtL2, res.LVML1MPKIAtL2)
	tb.AddRow("PTW->L1", res.SpeedupL1, res.RadixL1MPKIAtL1, res.LVML1MPKIAtL1)
	res.Table = tb
	return res, nil
}

// MultiTenancyResult carries §7.1's stacked-workload study.
type MultiTenancyResult struct {
	// Per-workload LVM speedups, solo vs stacked (paper: within 0.5%).
	Solo, Stacked map[string]float64
	MaxDelta      float64
	Table         *stats.Table
}

// tenancyStacked is the persisted bespoke half of the multi-tenancy
// study: cycles per "workload/scheme" measured on the shared system.
type tenancyStacked struct {
	Cycles map[string]float64 `json:"cycles"`
}

// measureTenancyStacked launches the tenant workloads into one shared
// OS/phys memory per scheme, each on its own core, and measures cycles.
func (r *Runner) measureTenancyStacked() (tenancyStacked, error) {
	res := tenancyStacked{Cycles: map[string]float64{}}
	names := tenancyNames(r.Cfg)
	for _, scheme := range []oskernel.Scheme{oskernel.SchemeRadix, oskernel.SchemeLVM} {
		var total uint64
		for _, name := range names {
			w, err := r.Workload(name)
			if err != nil {
				return tenancyStacked{}, err
			}
			total += w.FootprintBytes()
		}
		mem := phys.New(total + total/2 + r.Cfg.PhysSlackBytes)
		sys := newScaledSystem(mem, scheme)
		for i, name := range names {
			w, err := r.Workload(name)
			if err != nil {
				return tenancyStacked{}, err
			}
			if _, err := sys.Launch(uint16(i+1), w.Space, false); err != nil {
				return tenancyStacked{}, fmt.Errorf("multitenancy %s/%s asid=%d: launch: %w", name, scheme, i+1, err)
			}
		}
		for i, name := range names {
			w, err := r.Workload(name)
			if err != nil {
				return tenancyStacked{}, err
			}
			cpu := sim.New(r.Cfg.Sim, sys.Walker())
			res.Cycles[name+"/"+string(scheme)] = cpu.Run(uint16(i+1), w).Cycles
		}
	}
	return res, nil
}

// MultiTenancy reproduces §7.1's multi-tenant study: workloads run on
// separate cores (private caches/TLBs per Table 1) with their own address
// spaces; per-workload speedups must match the solo runs. Solo numbers
// come from the cached run matrix; the stacked launches persist as an
// artifact.
func (r *Runner) MultiTenancy() (MultiTenancyResult, error) {
	stacked, err := artifactFor(r, "multitenancy.stacked", r.measureTenancyStacked)
	if err != nil {
		return MultiTenancyResult{}, err
	}
	stackedCycles := stacked.Cycles
	res := MultiTenancyResult{Solo: map[string]float64{}, Stacked: map[string]float64{}}
	tb := stats.NewTable("workload", "solo speedup", "stacked speedup", "delta")
	names := tenancyNames(r.Cfg)
	for _, name := range names {
		soloBase, err := r.Run(name, oskernel.SchemeRadix, false)
		if err != nil {
			return MultiTenancyResult{}, err
		}
		soloLVM, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return MultiTenancyResult{}, err
		}
		solo := speedup(soloBase.Sim.Cycles, soloLVM.Sim.Cycles)
		stacked := speedup(stackedCycles[name+"/radix"], stackedCycles[name+"/lvm"])
		res.Solo[name], res.Stacked[name] = solo, stacked
		d := stacked - solo
		if d < 0 {
			d = -d
		}
		if d > res.MaxDelta {
			res.MaxDelta = d
		}
		tb.AddRow(name, solo, stacked, d)
	}
	res.Table = tb
	return res, nil
}

// PriorWorkResult carries the §7.5 comparisons.
type PriorWorkResult struct {
	// Speedups over radix for each scheme on the first workload.
	LVM, ECPT, ASAP, Midgard, FPT float64
	// FPT under fragmentation (paper: degrades toward radix).
	FPTFragmented float64
	Table         *stats.Table
}

// PriorWork reproduces §7.5: ASAP (slower than ECPT and LVM from prefetch
// traffic), Midgard (+3% over radix; LVM ahead), and FPT (close behind LVM
// when unfragmented, degrading to radix under fragmentation).
func (r *Runner) PriorWork() (PriorWorkResult, error) {
	var res PriorWorkResult
	tb := stats.NewTable("scheme", "speedup vs radix")
	name := translationBoundWorkload(r.Cfg)
	rad, err := r.Run(name, oskernel.SchemeRadix, false)
	if err != nil {
		return PriorWorkResult{}, err
	}
	base := rad.Sim.Cycles
	for _, sc := range []struct {
		scheme oskernel.Scheme
		dst    *float64
	}{
		{oskernel.SchemeLVM, &res.LVM},
		{oskernel.SchemeECPT, &res.ECPT},
		{oskernel.SchemeASAP, &res.ASAP},
		{oskernel.SchemeMidgard, &res.Midgard},
		{oskernel.SchemeFPT, &res.FPT},
	} {
		out, err := r.Run(name, sc.scheme, false)
		if err != nil {
			return PriorWorkResult{}, err
		}
		*sc.dst = speedup(base, out.Sim.Cycles)
	}

	// FPT under heavy fragmentation: 2MB table allocations fail. The
	// bespoke run persists as an artifact (raw cycles, so the speedup can
	// be re-derived against the cached radix run).
	frag, err := artifactFor(r, "priorwork.fragfpt", r.measureFPTFragmented)
	if err != nil {
		return PriorWorkResult{}, err
	}
	res.FPTFragmented = speedup(base, frag.Cycles)

	tb.AddRow("lvm", res.LVM)
	tb.AddRow("ecpt", res.ECPT)
	tb.AddRow("asap", res.ASAP)
	tb.AddRow("midgard", res.Midgard)
	tb.AddRow("fpt", res.FPT)
	tb.AddRow("fpt (fragmented)", res.FPTFragmented)
	res.Table = tb
	return res, nil
}

// priorWorkFragmented is the persisted bespoke half of the §7.5 study:
// FPT's cycles on a heavily fragmented memory.
type priorWorkFragmented struct {
	Cycles float64 `json:"cycles"`
}

// measureFPTFragmented runs FPT on a datacenter-aged memory with
// contiguity capped at 256 KB.
func (r *Runner) measureFPTFragmented() (priorWorkFragmented, error) {
	name := translationBoundWorkload(r.Cfg)
	w, err := r.Workload(name)
	if err != nil {
		return priorWorkFragmented{}, err
	}
	mem := phys.New(4*w.FootprintBytes() + r.Cfg.PhysSlackBytes)
	mem.Fragment(r.Cfg.Params.Seed, phys.DatacenterFragmentation)
	mem.SetContiguityCap(6)
	sys, _, err := launchScaled(mem, oskernel.SchemeFPT, w.Space, false)
	if err != nil {
		return priorWorkFragmented{}, fmt.Errorf("priorwork fpt fragmented: launch: %w", err)
	}
	cpu := sim.New(r.Cfg.Sim, sys.Walker())
	return priorWorkFragmented{Cycles: cpu.Run(1, w).Cycles}, nil
}

// translationBoundWorkload picks the most walk-intensive workload in the
// sweep (gups when present) so single-workload studies measure the regime
// where translation dominates. It is a pure function of the config so the
// planning phase can enumerate the same runs the compute phase will read.
func translationBoundWorkload(cfg Config) string {
	for _, n := range cfg.Workloads {
		if n == "gups" {
			return n
		}
	}
	return cfg.Workloads[0]
}

// --- small helpers ----------------------------------------------------------

func heapOf(s *vas.AddressSpace) (*vas.Region, error) {
	for i := range s.Regions {
		if s.Regions[i].Kind == vas.Heap {
			return &s.Regions[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: address space has no heap region")
}
