package experiments

import (
	"lvm/internal/oskernel"
	"lvm/internal/stats"
)

// contenderSchemes is the contenders run matrix: the conventional baseline,
// the paper's learned scheme, and the two speculative walkers that exercise
// the verify-overlap walk model.
var contenderSchemes = []oskernel.Scheme{
	oskernel.SchemeRadix, oskernel.SchemeLVM,
	oskernel.SchemeVictima, oskernel.SchemeRevelator,
}

// ContendersResult compares the speculative-translation contenders (Victima's
// cache-resident translation store, Revelator's hash-probe-then-verify) with
// radix and LVM across the full workload sweep. Maps are keyed
// "workload/scheme".
type ContendersResult struct {
	// Speedup vs radix on the same workload (radix rows are 1.0).
	Speedup map[string]float64
	// MMUPct is the fraction of cycles spent in translation (TLB + walks).
	MMUPct map[string]float64
	// RefsPerWalk is the mean memory requests per hardware walk — for the
	// speculative schemes this counts probe, fallback/verify, and fill
	// traffic, the bandwidth cost their latency hiding pays.
	RefsPerWalk map[string]float64
	Table       *stats.Table
}

// Contenders runs the speculative-scheme comparison: every workload under
// radix, LVM, Victima, and Revelator (4 KB pages). The verify-overlap model
// is what differentiates the newcomers — Victima's store fill and
// Revelator's radix verify walk are charged as max(verify, access), so the
// comparison isolates how much of the walk each scheme actually hides.
func (r *Runner) Contenders() (ContendersResult, error) {
	res := ContendersResult{
		Speedup:     map[string]float64{},
		MMUPct:      map[string]float64{},
		RefsPerWalk: map[string]float64{},
	}
	tb := stats.NewTable("workload", "scheme", "speedup vs radix", "mmu %", "refs/walk")
	for _, name := range r.Cfg.Workloads {
		rad, err := r.Run(name, oskernel.SchemeRadix, false)
		if err != nil {
			return ContendersResult{}, err
		}
		base := rad.Sim.Cycles
		for _, scheme := range contenderSchemes {
			out, err := r.Run(name, scheme, false)
			if err != nil {
				return ContendersResult{}, err
			}
			key := name + "/" + string(scheme)
			sp := speedup(base, out.Sim.Cycles)
			mmu := 0.0
			if out.Sim.Cycles > 0 {
				mmu = 100 * out.Sim.MMUCycles() / out.Sim.Cycles
			}
			rpw := 0.0
			if out.Sim.Walks > 0 {
				rpw = float64(out.Sim.WalkRefs) / float64(out.Sim.Walks)
			}
			res.Speedup[key], res.MMUPct[key], res.RefsPerWalk[key] = sp, mmu, rpw
			tb.AddRow(name, string(scheme), sp, mmu, rpw)
		}
	}
	res.Table = tb
	return res, nil
}
