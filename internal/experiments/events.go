package experiments

import (
	"fmt"
	"io"
	"sync"

	"lvm/internal/experiments/sched"
)

// A Sink receives progress events from the experiment pipeline. The runner
// calls it from worker goroutines, so implementations must be safe for
// concurrent use. Timings are host-side wall-clock measurements
// (internal/wallclock) and are strictly observational: no simulated result
// ever depends on them, and sinks should keep them off any stream that is
// compared across runs.
type Sink interface {
	// RunStart fires when a simulation is admitted to a worker.
	RunStart(key RunKey)
	// RunDone fires when a simulation finishes (err is nil on success).
	RunDone(key RunKey, hostSeconds float64, err error)
	// RunCached fires when a run is satisfied from the persistent run
	// cache instead of simulating. RunStart/RunDone do not fire for it.
	RunCached(key RunKey)
	// ExperimentStart fires before an experiment's compute phase.
	ExperimentStart(key, title string)
	// ExperimentDone fires after an experiment's compute phase.
	ExperimentDone(key string, hostSeconds float64, err error)
}

// MemSink is an optional Sink extension: sinks that also implement it
// receive a host-memory sample for every completed run (see
// sched.MemSample for what the numbers mean). Like the timings, samples
// are observational and must stay off streams compared across runs.
type MemSink interface {
	RunHostMem(key RunKey, s sched.MemSample)
}

// OrchSink is an optional Sink extension for the sweep orchestrator: sinks
// that also implement it receive per-worker lifecycle and dispatch events.
// All of it is observational scheduling detail — which worker ran a key,
// steals, retries — and must stay off streams compared across runs.
type OrchSink interface {
	// WorkerConnected fires when a worker passes the handshake.
	WorkerConnected(worker, remote string, capacity int)
	// WorkerGone fires when a worker's connection ends (err is nil on a
	// clean shutdown).
	WorkerGone(worker string, err error)
	// RunAssigned fires when a run is dispatched to a worker; steal marks
	// a duplicate dispatch of a straggler's outstanding run.
	RunAssigned(key RunKey, worker string, steal bool)
	// RunRetry fires when a failed run is queued for another attempt.
	RunRetry(key RunKey, attempt, max int, reason string)
	// RunDuplicate fires when a completion arrives for a run that already
	// finished elsewhere (the losing side of a steal); it is discarded.
	RunDuplicate(key RunKey, worker string)
}

// ArtifactSink is an optional Sink extension: sinks that also implement it
// learn when a bespoke compute-phase measurement is satisfied from (or
// persisted to) the run cache's artifact store.
type ArtifactSink interface {
	ArtifactCached(name string)
	ArtifactStored(name string)
}

// NopSink discards all events; it is the default for benchmarks and tests.
type NopSink struct{}

func (NopSink) RunStart(RunKey)                       {}
func (NopSink) RunDone(RunKey, float64, error)        {}
func (NopSink) RunCached(RunKey)                      {}
func (NopSink) ExperimentStart(string, string)        {}
func (NopSink) ExperimentDone(string, float64, error) {}

// WriterSink streams human-readable progress lines to w. cmd/lvmbench
// points it at stderr so that stdout — the tables — stays byte-identical
// across runs and worker counts while live progress and timings remain
// visible.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer // guarded by mu
}

// NewWriterSink creates a sink writing progress lines to w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

func (s *WriterSink) printf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, format+"\n", args...)
}

func (s *WriterSink) RunStart(key RunKey) {
	s.printf("  running %s...", key)
}

func (s *WriterSink) RunDone(key RunKey, sec float64, err error) {
	if err != nil {
		s.printf("  FAILED  %s after %.1fs: %v", key, sec, err)
		return
	}
	s.printf("  done    %s in %.1fs", key, sec)
}

func (s *WriterSink) RunCached(key RunKey) {
	s.printf("  cached  %s", key)
}

func (s *WriterSink) RunHostMem(key RunKey, m sched.MemSample) {
	s.printf("  mem     %s: %.1f MiB allocated, %.1f MiB heap in use",
		key, float64(m.AllocBytes)/(1<<20), float64(m.HeapInuseBytes)/(1<<20))
}

func (s *WriterSink) WorkerConnected(worker, remote string, capacity int) {
	s.printf("  worker  %s joined (%s, capacity %d)", worker, remote, capacity)
}

func (s *WriterSink) WorkerGone(worker string, err error) {
	if err != nil {
		s.printf("  worker  %s left: %v", worker, err)
		return
	}
	s.printf("  worker  %s done", worker)
}

func (s *WriterSink) RunAssigned(key RunKey, worker string, steal bool) {
	if steal {
		s.printf("  steal   %s -> %s", key, worker)
		return
	}
	s.printf("  assign  %s -> %s", key, worker)
}

func (s *WriterSink) RunRetry(key RunKey, attempt, max int, reason string) {
	s.printf("  retry   %s (attempt %d/%d): %s", key, attempt, max, reason)
}

func (s *WriterSink) RunDuplicate(key RunKey, worker string) {
	s.printf("  dup     %s from %s (discarded)", key, worker)
}

func (s *WriterSink) ArtifactCached(name string) {
	s.printf("  cached  artifact %s", name)
}

func (s *WriterSink) ArtifactStored(name string) {
	s.printf("  stored  artifact %s", name)
}

func (s *WriterSink) ExperimentStart(key, title string) {
	s.printf("== %s: %s", key, title)
}

func (s *WriterSink) ExperimentDone(key string, sec float64, err error) {
	if err != nil {
		s.printf("== %s FAILED after %.1fs: %v", key, sec, err)
		return
	}
	s.printf("== %s computed in %.1fs", key, sec)
}
