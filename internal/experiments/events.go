package experiments

import (
	"fmt"
	"io"
	"sync"

	"lvm/internal/experiments/sched"
)

// A Sink receives progress events from the experiment pipeline. The runner
// calls it from worker goroutines, so implementations must be safe for
// concurrent use. Timings are host-side wall-clock measurements
// (internal/wallclock) and are strictly observational: no simulated result
// ever depends on them, and sinks should keep them off any stream that is
// compared across runs.
type Sink interface {
	// RunStart fires when a simulation is admitted to a worker.
	RunStart(key RunKey)
	// RunDone fires when a simulation finishes (err is nil on success).
	RunDone(key RunKey, hostSeconds float64, err error)
	// RunCached fires when a run is satisfied from the persistent run
	// cache instead of simulating. RunStart/RunDone do not fire for it.
	RunCached(key RunKey)
	// ExperimentStart fires before an experiment's compute phase.
	ExperimentStart(key, title string)
	// ExperimentDone fires after an experiment's compute phase.
	ExperimentDone(key string, hostSeconds float64, err error)
}

// MemSink is an optional Sink extension: sinks that also implement it
// receive a host-memory sample for every completed run (see
// sched.MemSample for what the numbers mean). Like the timings, samples
// are observational and must stay off streams compared across runs.
type MemSink interface {
	RunHostMem(key RunKey, s sched.MemSample)
}

// NopSink discards all events; it is the default for benchmarks and tests.
type NopSink struct{}

func (NopSink) RunStart(RunKey)                       {}
func (NopSink) RunDone(RunKey, float64, error)        {}
func (NopSink) RunCached(RunKey)                      {}
func (NopSink) ExperimentStart(string, string)        {}
func (NopSink) ExperimentDone(string, float64, error) {}

// WriterSink streams human-readable progress lines to w. cmd/lvmbench
// points it at stderr so that stdout — the tables — stays byte-identical
// across runs and worker counts while live progress and timings remain
// visible.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer // guarded by mu
}

// NewWriterSink creates a sink writing progress lines to w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

func (s *WriterSink) printf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, format+"\n", args...)
}

func (s *WriterSink) RunStart(key RunKey) {
	s.printf("  running %s...", key)
}

func (s *WriterSink) RunDone(key RunKey, sec float64, err error) {
	if err != nil {
		s.printf("  FAILED  %s after %.1fs: %v", key, sec, err)
		return
	}
	s.printf("  done    %s in %.1fs", key, sec)
}

func (s *WriterSink) RunCached(key RunKey) {
	s.printf("  cached  %s", key)
}

func (s *WriterSink) RunHostMem(key RunKey, m sched.MemSample) {
	s.printf("  mem     %s: %.1f MiB allocated, %.1f MiB heap in use",
		key, float64(m.AllocBytes)/(1<<20), float64(m.HeapInuseBytes)/(1<<20))
}

func (s *WriterSink) ExperimentStart(key, title string) {
	s.printf("== %s: %s", key, title)
}

func (s *WriterSink) ExperimentDone(key string, sec float64, err error) {
	if err != nil {
		s.printf("== %s FAILED after %.1fs: %v", key, sec, err)
		return
	}
	s.printf("== %s computed in %.1fs", key, sec)
}
