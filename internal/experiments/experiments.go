// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) through a two-phase plan/execute pipeline:
//
//  1. Plan: each experiment is a declarative registry entry (Registry)
//     whose Requires phase enumerates the (workload, scheme, THP)
//     simulations it needs as RunKeys.
//  2. Execute: the scheduler (ExecutePlan, built on internal/experiments/
//     sched) dedupes the RunKeys across all selected experiments, runs
//     them on a bounded worker pool under a memory budget, merges the
//     outputs in deterministic key order, and only then invokes each
//     experiment's compute phase over the cached runs.
//
// Output is bit-for-bit identical at any worker count, and every failure
// on the workload-build/launch/run path propagates as a wrapped error
// naming its RunKey — never a panic. Progress reporting is injected via
// the Sink interface (quiet by default; cmd/lvmbench streams to stderr).
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"lvm/internal/experiments/sched"
	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/sim"
	"lvm/internal/vas"
	"lvm/internal/wallclock"
	"lvm/internal/workload"
)

// Config sizes the experiment sweep.
type Config struct {
	// Workloads to sweep (default: the nine Figure-9 workloads).
	Workloads []string
	// Params scales workload construction.
	Params workload.Params
	// Sim is the machine model (default: the proportionally scaled model;
	// see sim.ScaledConfig).
	Sim sim.Config
	// PhysSlackBytes is added to each workload's footprint when sizing
	// simulated physical memory.
	PhysSlackBytes uint64
	// PhysBytes, when non-zero, overrides the per-run physical memory size
	// entirely (footprint-based sizing is skipped). Used by tests to force
	// launch failures; full- and quick-scale configs leave it zero.
	PhysBytes uint64
	// Warmup, when positive, fast-forwards the first Warmup accesses of
	// every run through functional state (TLBs, walk caches, cache tags)
	// before the measured region begins — counters then cover only the
	// remaining accesses, from warmed state. It changes measured results,
	// so it is part of the RunKey and the config fingerprint; omitempty
	// keeps zero-warmup fingerprints identical to historical ones.
	Warmup int `json:",omitempty"`
}

// Default is the full-scale configuration used by cmd/lvmbench and the
// benchmarks (runtime: a few minutes).
func Default() Config {
	return Config{
		Workloads:      workload.SpeedupNames(),
		Params:         workload.DefaultParams(),
		Sim:            sim.ScaledConfig(),
		PhysSlackBytes: 1 << 30,
	}
}

// Quick is a reduced configuration for tests (runtime: seconds).
func Quick() Config {
	p := workload.QuickParams()
	p.GUPSTableBytes = 1 << 30
	p.MemcachedBytes = 512 << 20
	p.MumerBytes = 512 << 20
	p.GraphScale = 18
	p.TraceLen = 200_000
	return Config{
		Workloads:      []string{"bfs", "gups", "mem$"},
		Params:         p,
		Sim:            sim.ScaledConfig(),
		PhysSlackBytes: 1 << 29,
	}
}

// RunKey identifies one cached simulation. Warmup is part of the key
// because a warmed measured region produces different counters than a
// cold full-trace run — the two must never alias in the run cache.
type RunKey struct {
	Workload string
	Scheme   oskernel.Scheme
	THP      bool
	Warmup   int
}

func (k RunKey) String() string {
	if k.Warmup > 0 {
		return fmt.Sprintf("%s/%s thp=%t warmup=%d", k.Workload, k.Scheme, k.THP, k.Warmup)
	}
	return fmt.Sprintf("%s/%s thp=%t", k.Workload, k.Scheme, k.THP)
}

// RunOutput bundles a simulation result with the scheme-side statistics
// the characterization sections need.
type RunOutput struct {
	Sim sim.Result

	// LVM-side stats (zero for other schemes).
	IndexBytes     int
	IndexPeakBytes int
	IndexDepth     int
	IndexLeaves    int
	LWCHitRate     float64
	Retrains       uint64
	Rebuilds       uint64
	Overflows      uint64
	MgmtCycles     uint64

	// Radix-side stats.
	PWCPDEMissRate float64

	// Table overhead vs the 8-byte minimum (§7.3).
	OverheadBytes uint64

	// Collision stats measured over all mapped keys.
	CollisionRate float64
	ExtraPerColl  float64

	// HostSeconds is the run's host wall-clock time — observational only,
	// emitted into the JSON output solely under the -timings flag.
	HostSeconds float64
}

// Runner executes and caches simulations. The caches are safe for the
// scheduler's concurrent workers; the compute phases run sequentially.
type Runner struct {
	Cfg  Config
	sink Sink

	// arts, when non-nil, persists the bespoke compute-phase measurements
	// (artifactFor) alongside the run outputs. Set before ExecutePlan's
	// sequential compute phase; never touched by scheduler workers.
	arts *RunCache

	mu   sync.Mutex
	runs map[RunKey]*RunOutput         // guarded by mu
	wls  map[string]*workload.Workload // guarded by mu
}

// NewRunner creates a runner. Progress reporting defaults to NopSink
// (quiet); inject a WriterSink for live output.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:  cfg,
		sink: NopSink{},
		runs: make(map[RunKey]*RunOutput),
		wls:  make(map[string]*workload.Workload),
	}
}

// SetSink installs the progress event sink (nil restores quiet).
func (r *Runner) SetSink(s Sink) {
	if s == nil {
		s = NopSink{}
	}
	r.sink = s
}

// Workload builds (and caches) a workload.
func (r *Runner) Workload(name string) (*workload.Workload, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.wls[name]; ok {
		return w, nil
	}
	w, err := workload.Build(name, r.Cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	r.wls[name] = w
	return w, nil
}

// runBytes sizes simulated physical memory for one run of w. It doubles as
// the scheduler's memory-budget cost for the run: admission is bounded by
// the summed simulated footprint of in-flight simulations.
func (r *Runner) runBytes(w *workload.Workload) uint64 {
	return r.costFromFootprint(w.FootprintBytes())
}

// costFromFootprint is the shared footprint→physical-memory formula behind
// both runBytes (built workloads) and EstimateCosts (estimated footprints);
// keeping them one function is what makes shard assignment agree between
// hosts that build a workload and hosts that only estimate it.
func (r *Runner) costFromFootprint(fp uint64) uint64 {
	return r.Cfg.RunCostBytes(fp)
}

// RunCostBytes is the footprint→physical-memory sizing formula for one run:
// the memory-budget cost a simulation of a workload with footprint fp holds
// while in flight, and the phys.Memory size it is given. Exported so
// admission controllers outside the batch runner (the lvmd serving daemon)
// charge tenants with exactly the formula the sweep scheduler uses.
func (c Config) RunCostBytes(fp uint64) uint64 {
	if c.PhysBytes != 0 {
		return c.PhysBytes
	}
	return fp + fp/2 + c.PhysSlackBytes
}

// BuildWorkloads builds the named workloads that are not already cached,
// in parallel on the scheduler's worker pool. Results are registered in
// first-appearance order regardless of which build finished when, so the
// runner's observable state never depends on scheduling; build failures
// come back wrapped, naming the workload.
func (r *Runner) BuildWorkloads(names []string, workers int) error {
	var missing []string
	r.mu.Lock()
	for _, n := range names {
		if _, ok := r.wls[n]; !ok {
			missing = append(missing, n)
		}
	}
	r.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	tasks := make([]sched.Task[string], len(missing))
	for i, n := range missing {
		tasks[i] = sched.Task[string]{Key: n}
	}
	outs, err := sched.Run(tasks, sched.Options{Workers: workers}, func(name string) (*workload.Workload, error) {
		w, err := workload.Build(name, r.Cfg.Params)
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", name, err)
		}
		return w, nil
	})
	r.mu.Lock()
	for i, n := range missing {
		if outs[i] != nil {
			r.wls[n] = outs[i]
		}
	}
	r.mu.Unlock()
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// Sink returns the installed progress event sink (never nil). The
// orchestrator reports coordinator-side events through it, extended ones
// via the optional OrchSink interface.
func (r *Runner) Sink() Sink { return r.sink }

// InstallRun stores a completed output under its key, exactly as if the
// runner had simulated it locally: the seam MergeShards and the sweep
// orchestrator use to feed remotely executed runs into the compute phase.
func (r *Runner) InstallRun(key RunKey, out *RunOutput) { r.installRun(key, out) }

// LookupRun returns the in-memory output for key, if present.
func (r *Runner) LookupRun(key RunKey) (*RunOutput, bool) { return r.lookupRun(key) }

// ExecuteKey simulates one run (reusing the in-memory output when the key
// was already executed) and installs the result. It is the worker-side
// execution entry point of the sweep orchestrator; errors come back
// wrapped, naming the RunKey, exactly like the local execute path.
func (r *Runner) ExecuteKey(key RunKey) (*RunOutput, error) {
	if out, ok := r.lookupRun(key); ok {
		return out, nil
	}
	out, err := r.execute(key)
	if err != nil {
		return nil, err
	}
	r.installRun(key, out)
	return out, nil
}

// installRun stores a completed (or cache-restored) output under its key.
func (r *Runner) installRun(key RunKey, out *RunOutput) {
	r.mu.Lock()
	r.runs[key] = out
	r.mu.Unlock()
}

// lookupRun returns the cached output for key, if present.
func (r *Runner) lookupRun(key RunKey) (*RunOutput, bool) {
	r.mu.Lock()
	out, ok := r.runs[key]
	r.mu.Unlock()
	return out, ok
}

// physFor sizes simulated physical memory for a workload.
func (r *Runner) physFor(w *workload.Workload) *phys.Memory {
	return phys.New(r.runBytes(w))
}

// newScaledSystem creates the OS layer with the sweep's proportionally
// scaled walk caches. Every simulation in the harness — the main Run path,
// the Table-2 scaling study, and the characterization one-offs — goes
// through this one constructor, so scheme-side statistics always come from
// identically configured systems.
func newScaledSystem(mem *phys.Memory, scheme oskernel.Scheme) *oskernel.System {
	pwc, lwc := sim.ScaledHW()
	return oskernel.NewSystemHW(mem, scheme, oskernel.HWConfig{PWCEntriesPerLevel: pwc, LWCEntries: lwc})
}

// launchScaled builds a scaled system over mem and launches space into it
// as ASID 1, the shared single-process launch path.
func launchScaled(mem *phys.Memory, scheme oskernel.Scheme, space *vas.AddressSpace, thp bool) (*oskernel.System, *oskernel.Process, error) {
	sys := newScaledSystem(mem, scheme)
	p, err := sys.Launch(1, space, thp)
	if err != nil {
		return nil, nil, err
	}
	return sys, p, nil
}

// NewRunMachine constructs the complete per-run simulation machine for one
// (workload, scheme, THP) configuration exactly as the sweep's execute
// path does: physical memory sized by RunCostBytes over the workload's
// footprint, the proportionally scaled system, the workload launched at
// ASID 1, and the configured CPU model (Midgard flagged by scheme). It is
// the bit-identity seam the lvmd serving daemon builds per-tenant machines
// through — a served session and a sweep run of the same key simulate on
// byte-identical state because both come from this one constructor.
func (c Config) NewRunMachine(w *workload.Workload, scheme oskernel.Scheme, thp bool) (*oskernel.System, *oskernel.Process, *sim.CPU, error) {
	mem := phys.New(c.RunCostBytes(w.FootprintBytes()))
	sys := newScaledSystem(mem, scheme)
	p, err := sys.Launch(1, w.Space, thp)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := c.Sim
	cfg.Midgard = scheme == oskernel.SchemeMidgard
	return sys, p, sim.New(cfg, sys.Walker()), nil
}

// Run returns the cached simulation for one configuration, executing it
// in-line on a miss. Failures anywhere on the build/launch/run path come
// back as a wrapped error naming the RunKey.
func (r *Runner) Run(name string, scheme oskernel.Scheme, thp bool) (*RunOutput, error) {
	key := RunKey{Workload: name, Scheme: scheme, THP: thp, Warmup: r.Cfg.Warmup}
	r.mu.Lock()
	out, ok := r.runs[key]
	r.mu.Unlock()
	if ok {
		return out, nil
	}
	out, err := r.execute(key)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.runs[key] = out
	r.mu.Unlock()
	return out, nil
}

// execute performs one simulation without touching the run cache; it is
// the unit of work the scheduler hands to its workers.
func (r *Runner) execute(key RunKey) (*RunOutput, error) {
	w, err := r.Workload(key.Workload)
	if err != nil {
		return nil, fmt.Errorf("run %s: %w", key, err)
	}
	r.sink.RunStart(key)
	sw := wallclock.Start()
	sys, p, cpu, err := r.Cfg.NewRunMachine(w, key.Scheme, key.THP)
	if err != nil {
		err = fmt.Errorf("run %s: launch: %w", key, err)
		r.sink.RunDone(key, sw.Seconds(), err)
		return nil, err
	}
	var res sim.Result
	if key.Warmup > 0 {
		n := cpu.FastForward(1, w, key.Warmup)
		res = cpu.RunFrom(1, w, n)
	} else {
		res = cpu.Run(1, w)
	}

	out := &RunOutput{Sim: res}
	if p != nil {
		out.OverheadBytes = sys.TableOverheadBytes(1)
		out.MgmtCycles = p.MgmtCycles
		if p.LvmIx != nil {
			out.IndexBytes = p.LvmIx.SizeBytes()
			out.IndexPeakBytes = p.LvmIx.Stats().PeakIndexBytes
			out.IndexDepth = p.LvmIx.Depth()
			out.IndexLeaves = p.LvmIx.LeafCount()
			out.Retrains = p.LvmIx.Stats().Retrains
			out.Rebuilds = p.LvmIx.Stats().Rebuilds
			out.Overflows = p.LvmIx.Stats().SearchOverflows
			out.LWCHitRate = sys.LVMWalker().LWC().HitRate()
			out.CollisionRate, out.ExtraPerColl = lvmCollisions(p)
		}
	}
	if rw := sys.RadixWalker(); rw != nil {
		_, _, pde := rw.PWCs()
		out.PWCPDEMissRate = pde.MissRate()
	}
	out.HostSeconds = sw.Seconds()
	r.sink.RunDone(key, out.HostSeconds, nil)
	// Simulated memories are large; let the GC reclaim between runs.
	runtime.GC()
	return out, nil
}

// lvmCollisions measures the §7.3 collision metrics by walking every
// mapped key once.
func lvmCollisions(p *oskernel.Process) (rate, extra float64) {
	var collided, total, extraRefs int
	for _, reg := range p.Space.Regions {
		for _, v := range reg.Mapped {
			res := p.LvmIx.Walk(p.Norm.Normalize(v))
			if !res.Found {
				continue
			}
			total++
			if res.PTEAccesses > 1 {
				collided++
				extraRefs += res.PTEAccesses - 1
			}
		}
	}
	if total == 0 {
		return 0, 0
	}
	rate = float64(collided) / float64(total)
	if collided > 0 {
		extra = float64(extraRefs) / float64(collided)
	}
	return rate, extra
}

// speedup computes base/cycles with a zero guard.
func speedup(base, other float64) float64 {
	if other == 0 {
		return 0
	}
	return base / other
}

// pct renders a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
