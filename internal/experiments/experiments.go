// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment has one entry point that returns a
// printable table plus the raw numbers; cmd/lvmbench drives them all and
// bench_test.go wraps each as a testing.B benchmark.
//
// Results are cached per (workload, scheme, page-size) so figures that
// share runs (9–12) pay for each simulation once.
package experiments

import (
	"fmt"
	"runtime"

	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/sim"
	"lvm/internal/workload"
)

// Config sizes the experiment sweep.
type Config struct {
	// Workloads to sweep (default: the nine Figure-9 workloads).
	Workloads []string
	// Params scales workload construction.
	Params workload.Params
	// Sim is the machine model (default: the proportionally scaled model;
	// see sim.ScaledConfig).
	Sim sim.Config
	// PhysSlackBytes is added to each workload's footprint when sizing
	// simulated physical memory.
	PhysSlackBytes uint64
}

// Default is the full-scale configuration used by cmd/lvmbench and the
// benchmarks (runtime: a few minutes).
func Default() Config {
	return Config{
		Workloads:      workload.SpeedupNames(),
		Params:         workload.DefaultParams(),
		Sim:            sim.ScaledConfig(),
		PhysSlackBytes: 1 << 30,
	}
}

// Quick is a reduced configuration for tests (runtime: seconds).
func Quick() Config {
	p := workload.QuickParams()
	p.GUPSTableBytes = 1 << 30
	p.MemcachedBytes = 512 << 20
	p.MumerBytes = 512 << 20
	p.GraphScale = 18
	p.TraceLen = 200_000
	return Config{
		Workloads:      []string{"bfs", "gups", "mem$"},
		Params:         p,
		Sim:            sim.ScaledConfig(),
		PhysSlackBytes: 1 << 29,
	}
}

// RunKey identifies one cached simulation.
type RunKey struct {
	Workload string
	Scheme   oskernel.Scheme
	THP      bool
}

// RunOutput bundles a simulation result with the scheme-side statistics
// the characterization sections need.
type RunOutput struct {
	Sim sim.Result

	// LVM-side stats (zero for other schemes).
	IndexBytes     int
	IndexPeakBytes int
	IndexDepth     int
	IndexLeaves    int
	LWCHitRate     float64
	Retrains       uint64
	Rebuilds       uint64
	Overflows      uint64
	MgmtCycles     uint64

	// Radix-side stats.
	PWCPDEMissRate float64

	// Table overhead vs the 8-byte minimum (§7.3).
	OverheadBytes uint64

	// Collision stats measured over all mapped keys.
	CollisionRate float64
	ExtraPerColl  float64
}

// Runner executes and caches simulations.
type Runner struct {
	Cfg   Config
	runs  map[RunKey]*RunOutput
	wls   map[string]*workload.Workload
	quiet bool
}

// NewRunner creates a runner.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:  cfg,
		runs: make(map[RunKey]*RunOutput),
		wls:  make(map[string]*workload.Workload),
	}
}

// SetQuiet suppresses progress output.
func (r *Runner) SetQuiet(q bool) { r.quiet = q }

func (r *Runner) logf(format string, args ...any) {
	if !r.quiet {
		fmt.Printf(format+"\n", args...)
	}
}

// Workload builds (and caches) a workload.
func (r *Runner) Workload(name string) *workload.Workload {
	if w, ok := r.wls[name]; ok {
		return w
	}
	w, err := workload.Build(name, r.Cfg.Params)
	if err != nil {
		panic(err)
	}
	r.wls[name] = w
	return w
}

// physFor sizes simulated physical memory for a workload.
func (r *Runner) physFor(w *workload.Workload) *phys.Memory {
	need := w.FootprintBytes() + w.FootprintBytes()/2 + r.Cfg.PhysSlackBytes
	return phys.New(need)
}

// Run executes (or returns the cached) simulation for one configuration.
func (r *Runner) Run(name string, scheme oskernel.Scheme, thp bool) *RunOutput {
	key := RunKey{name, scheme, thp}
	if out, ok := r.runs[key]; ok {
		return out
	}
	w := r.Workload(name)
	mem := r.physFor(w)
	pwc, lwc := sim.ScaledHW()
	sys := oskernel.NewSystemHW(mem, scheme, oskernel.HWConfig{PWCEntriesPerLevel: pwc, LWCEntries: lwc})
	if _, err := sys.Launch(1, w.Space, thp); err != nil {
		panic(fmt.Sprintf("experiments: launch %s/%s: %v", name, scheme, err))
	}
	cfg := r.Cfg.Sim
	cfg.Midgard = scheme == oskernel.SchemeMidgard
	cpu := sim.New(cfg, sys.Walker())
	r.logf("  running %s / %s (thp=%t)...", name, scheme, thp)
	res := cpu.Run(1, w)

	out := &RunOutput{Sim: res}
	if p := sys.Process(1); p != nil {
		out.OverheadBytes = sys.TableOverheadBytes(1)
		out.MgmtCycles = p.MgmtCycles
		if p.LvmIx != nil {
			out.IndexBytes = p.LvmIx.SizeBytes()
			out.IndexPeakBytes = p.LvmIx.Stats().PeakIndexBytes
			out.IndexDepth = p.LvmIx.Depth()
			out.IndexLeaves = p.LvmIx.LeafCount()
			out.Retrains = p.LvmIx.Stats().Retrains
			out.Rebuilds = p.LvmIx.Stats().Rebuilds
			out.Overflows = p.LvmIx.Stats().SearchOverflows
			out.LWCHitRate = sys.LVMWalker().LWC().HitRate()
			out.CollisionRate, out.ExtraPerColl = lvmCollisions(sys, p)
		}
	}
	if rw := sys.RadixWalker(); rw != nil {
		_, _, pde := rw.PWCs()
		out.PWCPDEMissRate = pde.MissRate()
	}
	r.runs[key] = out
	// Simulated memories are large; let the GC reclaim between runs.
	runtime.GC()
	return out
}

// lvmCollisions measures the §7.3 collision metrics by walking every
// mapped key once.
func lvmCollisions(sys *oskernel.System, p *oskernel.Process) (rate, extra float64) {
	var collided, total, extraRefs int
	for _, reg := range p.Space.Regions {
		for _, v := range reg.Mapped {
			res := p.LvmIx.Walk(p.Norm.Normalize(v))
			if !res.Found {
				continue
			}
			total++
			if res.PTEAccesses > 1 {
				collided++
				extraRefs += res.PTEAccesses - 1
			}
		}
	}
	if total == 0 {
		return 0, 0
	}
	rate = float64(collided) / float64(total)
	if collided > 0 {
		extra = float64(extraRefs) / float64(collided)
	}
	return rate, extra
}

// speedup computes base/cycles with a zero guard.
func speedup(base, other float64) float64 {
	if other == 0 {
		return 0
	}
	return base / other
}

// pct renders a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
