package experiments

import (
	"testing"

	"lvm/internal/racetest"
)

// The experiments suite is exercised end-to-end at Quick scale: every
// figure driver must run and reproduce the paper's qualitative shape.

// skipSweep skips the full simulation sweeps in -short mode and under the
// race detector, whose 10–20× slowdown pushes this package past the
// per-package test timeout; the shared simulator paths stay race-covered by
// internal/sim's own suite and the cheap shape tests here.
func skipSweep(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	if racetest.Enabled {
		t.Skip("simulation sweep too slow under -race")
	}
}

func quickRunner() *Runner {
	return NewRunner(Quick())
}

func TestFig2Shape(t *testing.T) {
	r := quickRunner()
	res, err := r.Fig2GapCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if res.Min < 0.78 {
		t.Errorf("minimum gap coverage %.3f < 0.78 (Fig. 2)", res.Min)
	}
	if len(res.Coverage) < 14 {
		t.Errorf("only %d profiles measured", len(res.Coverage))
	}
}

func TestFig3Shape(t *testing.T) {
	r := quickRunner()
	res, err := r.Fig3Contiguity()
	if err != nil {
		t.Fatal(err)
	}
	small := res.Fraction[256<<10]
	big := res.Fraction[256<<20]
	if small < 0.15 {
		t.Errorf("256KB contiguity = %.3f, paper ≈ 0.30", small)
	}
	if big > 0.02 {
		t.Errorf("256MB contiguity = %.3f, paper ≈ 0", big)
	}
}

func TestFig9Through12Shape(t *testing.T) {
	skipSweep(t)
	r := quickRunner()
	f9, err := r.Fig9Speedups()
	if err != nil {
		t.Fatal(err)
	}
	if f9.AvgLVM4K <= 1.0 {
		t.Errorf("LVM 4K geomean speedup = %.3f, must exceed 1 (Fig. 9)", f9.AvgLVM4K)
	}
	if f9.AvgIdeal4K < f9.AvgLVM4K-0.001 {
		t.Errorf("ideal (%.3f) below LVM (%.3f)", f9.AvgIdeal4K, f9.AvgLVM4K)
	}
	// LVM within a few percent of ideal (paper: 1%).
	if f9.AvgIdeal4K/f9.AvgLVM4K > 1.06 {
		t.Errorf("LVM %.3f too far from ideal %.3f", f9.AvgLVM4K, f9.AvgIdeal4K)
	}

	f10, err := r.Fig10MMUOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if f10.AvgLVM4K >= 1.0 {
		t.Errorf("LVM MMU overhead ratio = %.3f, must be < 1 (Fig. 10)", f10.AvgLVM4K)
	}
	if f10.LVMWalkReduction4K <= f10.ECPTWalkReduction4K {
		t.Errorf("LVM walk reduction (%.3f) must beat ECPT (%.3f)",
			f10.LVMWalkReduction4K, f10.ECPTWalkReduction4K)
	}

	f11, err := r.Fig11WalkTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if f11.AvgLVM4K >= 1.0 {
		t.Errorf("LVM walk traffic ratio = %.3f, must be < 1 (Fig. 11)", f11.AvgLVM4K)
	}
	if f11.AvgECPT4K <= 1.2 {
		t.Errorf("ECPT walk traffic ratio = %.3f, paper 1.7x (Fig. 11)", f11.AvgECPT4K)
	}
	if f11.LVMvsIdeal > 1.25 {
		t.Errorf("LVM traffic vs ideal = %.3f, paper within 1%%", f11.LVMvsIdeal)
	}

	f12, err := r.Fig12CacheMPKI()
	if err != nil {
		t.Fatal(err)
	}
	if f12.AvgLVML2 > 1.10 || f12.AvgLVML3 > 1.10 {
		t.Errorf("LVM MPKI ratios %.3f/%.3f, paper within ~1%%", f12.AvgLVML2, f12.AvgLVML3)
	}
	if f12.AvgECPTL2 < f12.AvgLVML2 || f12.AvgECPTL3 < f12.AvgLVML3 {
		t.Error("ECPT must pollute caches more than LVM (Fig. 12)")
	}
}

func TestTable2Shape(t *testing.T) {
	skipSweep(t)
	r := quickRunner()
	res, err := r.Table2IndexSize()
	if err != nil {
		t.Fatal(err)
	}
	for name, size := range res.Size4K {
		if size <= 0 || size > 4096 {
			t.Errorf("%s: index size %dB out of the paper's ballpark", name, size)
		}
	}
	// The scaling claim: the index stays tiny at every footprint (a few
	// nodes of jitter from layout holes is fine; what must NOT happen is
	// growth proportional to the 4× footprint sweep).
	maxS := 0
	for _, s := range res.ScalingSizes {
		if s > maxS {
			maxS = s
		}
	}
	if maxS > 512 {
		t.Errorf("index size grew with footprint: %v", res.ScalingSizes)
	}
}

func TestCollisionShape(t *testing.T) {
	skipSweep(t)
	r := quickRunner()
	res, err := r.CollisionRates()
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLVM4K > 0.02 {
		t.Errorf("LVM 4K collision rate %.4f, paper 0.002", res.AvgLVM4K)
	}
	if res.AvgHash4K < 0.10 {
		t.Errorf("hash collision rate %.4f, paper 0.22", res.AvgHash4K)
	}
	if res.AvgHash4K < res.AvgLVM4K*5 {
		t.Error("hash table must collide drastically more than LVM")
	}
}

func TestHardwareShape(t *testing.T) {
	r := quickRunner()
	res, err := r.HardwareArea()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cmp.SizeX < 2 || res.Cmp.AreaX < 1 || res.Cmp.PowerX < 1 {
		t.Errorf("hardware ratios off: %+v", res.Cmp)
	}
}

func TestPriorWorkShape(t *testing.T) {
	skipSweep(t)
	r := quickRunner()
	res, err := r.PriorWork()
	if err != nil {
		t.Fatal(err)
	}
	if res.LVM < res.ASAP-0.02 {
		t.Errorf("LVM (%.3f) must not trail ASAP (%.3f) (§7.5.1)", res.LVM, res.ASAP)
	}
	if res.LVM < res.Midgard-0.02 {
		t.Errorf("LVM (%.3f) must not trail Midgard (%.3f) (§7.5.2)", res.LVM, res.Midgard)
	}
	if res.FPTFragmented > res.FPT+0.02 {
		t.Errorf("fragmentation must not improve FPT: %.3f -> %.3f", res.FPT, res.FPTFragmented)
	}
}

func TestRunCaching(t *testing.T) {
	skipSweep(t)
	r := quickRunner()
	a, err := r.Run("bfs", "radix", false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("bfs", "radix", false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("runs not cached")
	}
}

func TestTailLatencyShape(t *testing.T) {
	skipSweep(t)
	r := quickRunner()
	res, err := r.TailLatency()
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnOps == 0 {
		t.Fatal("no churn injected")
	}
	// §7.3: management must not move the 99th percentile meaningfully.
	if res.ChurnP99 > res.StaticP99*1.10 {
		t.Errorf("p99 moved: %.0f -> %.0f cycles", res.StaticP99, res.ChurnP99)
	}
}
