package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lvm/internal/hwarea"
	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/stats"
	"lvm/internal/vas"
	"lvm/internal/workload"
)

// Fig2Result carries the gap-coverage study data.
type Fig2Result struct {
	Coverage map[string]float64
	Min      float64
	Table    *stats.Table `json:"-"`
}

// measureFig2 computes gap=1 coverage across all application profiles plus
// the evaluation workloads' actual layouts (keyed "wl:<name>").
func (r *Runner) measureFig2() (Fig2Result, error) {
	res := Fig2Result{Coverage: map[string]float64{}, Min: 1}
	profiles := workload.Fig2Profiles()
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		space := vas.Generate(profiles[name], r.Cfg.Params.Seed)
		c := vas.GapCoverage(space.MappedVPNs())
		res.Coverage[name] = c
		if c < res.Min {
			res.Min = c
		}
	}
	for _, name := range r.Cfg.Workloads {
		w, err := r.Workload(name)
		if err != nil {
			return Fig2Result{}, err
		}
		c := vas.GapCoverage(w.Space.MappedVPNs())
		res.Coverage["wl:"+name] = c
		if c < res.Min {
			res.Min = c
		}
	}
	return res, nil
}

// Fig2GapCoverage reproduces Figure 2: the fraction of adjacent mapped-VPN
// pairs with gap = 1 across all application profiles. Paper: minimum 78%.
// The measured data is a pure function of the config and is persisted as a
// run-cache artifact; cold and warm sweeps render from the same struct.
func (r *Runner) Fig2GapCoverage() (Fig2Result, error) {
	res, err := artifactFor(r, "fig2.coverage", r.measureFig2)
	if err != nil {
		return Fig2Result{}, err
	}
	tb := stats.NewTable("profile", "gap=1 coverage")
	var names []string
	for name := range res.Coverage {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.HasPrefix(name, "wl:") {
			continue // workload rows render below, in config order
		}
		tb.AddRow(name, pct(res.Coverage[name]))
	}
	for _, name := range r.Cfg.Workloads {
		tb.AddRow("wl:"+name, pct(res.Coverage["wl:"+name]))
	}
	res.Table = tb
	return res, nil
}

// Fig3Result carries the contiguity study data.
type Fig3Result struct {
	// Fraction[sizeBytes] = fraction of free memory contiguously
	// allocatable at that block size.
	Fraction map[uint64]float64
	Table    *stats.Table `json:"-"`
}

// fig3Orders are the block-size orders Figure 3 samples, in print order.
var fig3Orders = []int{0, 2, 4, 6, 8, 9, 11, 13, 16, 18}

// measureFig3 ages five servers and averages their contiguous-free
// fractions per block size.
func (r *Runner) measureFig3() (Fig3Result, error) {
	res := Fig3Result{Fraction: map[uint64]float64{}}
	const servers = 5
	sums := make([]float64, len(fig3Orders))
	for s := 0; s < servers; s++ {
		mem := phys.New(2 << 30)
		mem.Fragment(r.Cfg.Params.Seed+int64(s), phys.DatacenterFragmentation)
		for i, o := range fig3Orders {
			sums[i] += mem.ContiguousFreeFraction(o)
		}
	}
	for i, o := range fig3Orders {
		res.Fraction[phys.BlockBytes(o)] = sums[i] / servers
	}
	return res, nil
}

// Fig3Contiguity reproduces Figure 3: the median fraction of free memory
// immediately allocatable as a contiguous block, on a datacenter-aged
// buddy allocator. Paper: hundreds-of-MB ≈ 0, ~30% at 256 KB.
func (r *Runner) Fig3Contiguity() (Fig3Result, error) {
	res, err := artifactFor(r, "fig3", r.measureFig3)
	if err != nil {
		return Fig3Result{}, err
	}
	tb := stats.NewTable("block size", "fraction of free memory")
	for _, o := range fig3Orders {
		size := phys.BlockBytes(o)
		tb.AddRow(byteLabel(size), pct(res.Fraction[size]))
	}
	res.Table = tb
	return res, nil
}

func byteLabel(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}

// SpeedupRow is one workload's Figure-9 data.
type SpeedupRow struct {
	Workload string
	// Speedup over radix with the same page size, per scheme.
	ECPT, LVM, Ideal float64
}

// Fig9Result carries the end-to-end speedups.
type Fig9Result struct {
	Rows4K, RowsTHP []SpeedupRow
	// Averages (geometric mean over workloads).
	AvgLVM4K, AvgLVMTHP     float64
	AvgECPT4K, AvgECPTTHP   float64
	AvgIdeal4K, AvgIdealTHP float64
	Table                   *stats.Table
}

// Fig9Speedups reproduces Figure 9: end-to-end speedups relative to radix,
// for 4 KB pages and THP. Paper: LVM +5–26% (avg 14%) at 4 KB, +2–27%
// (avg 7%) with THP; ≥ ECPT; within 1% of ideal.
func (r *Runner) Fig9Speedups() (Fig9Result, error) {
	var res Fig9Result
	tb := stats.NewTable("workload", "pages", "ecpt", "lvm", "ideal")
	for _, thp := range []bool{false, true} {
		var lvms, ecpts, ideals []float64
		for _, name := range r.Cfg.Workloads {
			rad, err := r.Run(name, oskernel.SchemeRadix, thp)
			if err != nil {
				return Fig9Result{}, err
			}
			ec, err := r.Run(name, oskernel.SchemeECPT, thp)
			if err != nil {
				return Fig9Result{}, err
			}
			lv, err := r.Run(name, oskernel.SchemeLVM, thp)
			if err != nil {
				return Fig9Result{}, err
			}
			id, err := r.Run(name, oskernel.SchemeIdeal, thp)
			if err != nil {
				return Fig9Result{}, err
			}
			base := rad.Sim.Cycles
			row := SpeedupRow{
				Workload: name,
				ECPT:     speedup(base, ec.Sim.Cycles),
				LVM:      speedup(base, lv.Sim.Cycles),
				Ideal:    speedup(base, id.Sim.Cycles),
			}
			label := "4KB"
			if thp {
				label = "THP"
				res.RowsTHP = append(res.RowsTHP, row)
			} else {
				res.Rows4K = append(res.Rows4K, row)
			}
			lvms = append(lvms, row.LVM)
			ecpts = append(ecpts, row.ECPT)
			ideals = append(ideals, row.Ideal)
			tb.AddRow(name, label, row.ECPT, row.LVM, row.Ideal)
		}
		if thp {
			res.AvgLVMTHP = stats.GeoMean(lvms)
			res.AvgECPTTHP = stats.GeoMean(ecpts)
			res.AvgIdealTHP = stats.GeoMean(ideals)
		} else {
			res.AvgLVM4K = stats.GeoMean(lvms)
			res.AvgECPT4K = stats.GeoMean(ecpts)
			res.AvgIdeal4K = stats.GeoMean(ideals)
		}
	}
	tb.AddRow("GEOMEAN", "4KB", res.AvgECPT4K, res.AvgLVM4K, res.AvgIdeal4K)
	tb.AddRow("GEOMEAN", "THP", res.AvgECPTTHP, res.AvgLVMTHP, res.AvgIdealTHP)
	res.Table = tb
	return res, nil
}

// Fig10Result carries the MMU-overhead data.
type Fig10Result struct {
	// Relative MMU cycles vs radix (same page size), per workload.
	ECPT4K, LVM4K, ECPTTHP, LVMTHP map[string]float64
	// Walk-cycle reductions (paper: LVM −52% 4K / −44% THP; ECPT −25%/−20%).
	LVMWalkReduction4K, ECPTWalkReduction4K   float64
	LVMWalkReductionTHP, ECPTWalkReductionTHP float64
	AvgLVM4K, AvgLVMTHP                       float64
	Table                                     *stats.Table
}

// Fig10MMUOverhead reproduces Figure 10: MMU overhead relative to radix.
func (r *Runner) Fig10MMUOverhead() (Fig10Result, error) {
	res := Fig10Result{
		ECPT4K: map[string]float64{}, LVM4K: map[string]float64{},
		ECPTTHP: map[string]float64{}, LVMTHP: map[string]float64{},
	}
	tb := stats.NewTable("workload", "pages", "ecpt mmu", "lvm mmu", "lvm walk-cyc")
	for _, thp := range []bool{false, true} {
		var lvmRel, lvmWalk, ecptWalk []float64
		for _, name := range r.Cfg.Workloads {
			base, err := r.Run(name, oskernel.SchemeRadix, thp)
			if err != nil {
				return Fig10Result{}, err
			}
			ec, err := r.Run(name, oskernel.SchemeECPT, thp)
			if err != nil {
				return Fig10Result{}, err
			}
			lv, err := r.Run(name, oskernel.SchemeLVM, thp)
			if err != nil {
				return Fig10Result{}, err
			}
			relE := ec.Sim.MMUCycles() / base.Sim.MMUCycles()
			relL := lv.Sim.MMUCycles() / base.Sim.MMUCycles()
			wL := lv.Sim.WalkCycles / base.Sim.WalkCycles
			wE := ec.Sim.WalkCycles / base.Sim.WalkCycles
			label := "4KB"
			if thp {
				label = "THP"
				res.ECPTTHP[name], res.LVMTHP[name] = relE, relL
			} else {
				res.ECPT4K[name], res.LVM4K[name] = relE, relL
			}
			lvmRel = append(lvmRel, relL)
			lvmWalk = append(lvmWalk, wL)
			ecptWalk = append(ecptWalk, wE)
			tb.AddRow(name, label, relE, relL, wL)
		}
		if thp {
			res.AvgLVMTHP = stats.Mean(lvmRel)
			res.LVMWalkReductionTHP = 1 - stats.Mean(lvmWalk)
			res.ECPTWalkReductionTHP = 1 - stats.Mean(ecptWalk)
		} else {
			res.AvgLVM4K = stats.Mean(lvmRel)
			res.LVMWalkReduction4K = 1 - stats.Mean(lvmWalk)
			res.ECPTWalkReduction4K = 1 - stats.Mean(ecptWalk)
		}
	}
	res.Table = tb
	return res, nil
}

// Fig11Result carries the walk-traffic data.
type Fig11Result struct {
	// Relative page-walk memory requests vs radix (same page size).
	LVM4K, ECPT4K, LVMTHP, ECPTTHP map[string]float64
	AvgLVM4K, AvgECPT4K            float64
	AvgLVMTHP, AvgECPTTHP          float64
	// LVM traffic relative to ideal (paper: within 1%).
	LVMvsIdeal float64
	Table      *stats.Table
}

// Fig11WalkTraffic reproduces Figure 11: memory requests from page walks,
// relative to radix. Paper: LVM −43%/−34%; ECPT 1.7×/2.1×.
func (r *Runner) Fig11WalkTraffic() (Fig11Result, error) {
	res := Fig11Result{
		LVM4K: map[string]float64{}, ECPT4K: map[string]float64{},
		LVMTHP: map[string]float64{}, ECPTTHP: map[string]float64{},
	}
	tb := stats.NewTable("workload", "pages", "ecpt traffic", "lvm traffic")
	var vsIdeal []float64
	for _, thp := range []bool{false, true} {
		var ls, es []float64
		for _, name := range r.Cfg.Workloads {
			rad, err := r.Run(name, oskernel.SchemeRadix, thp)
			if err != nil {
				return Fig11Result{}, err
			}
			lvr, err := r.Run(name, oskernel.SchemeLVM, thp)
			if err != nil {
				return Fig11Result{}, err
			}
			ecr, err := r.Run(name, oskernel.SchemeECPT, thp)
			if err != nil {
				return Fig11Result{}, err
			}
			idr, err := r.Run(name, oskernel.SchemeIdeal, thp)
			if err != nil {
				return Fig11Result{}, err
			}
			base := float64(rad.Sim.WalkRefs)
			lv := float64(lvr.Sim.WalkRefs)
			ec := float64(ecr.Sim.WalkRefs)
			id := float64(idr.Sim.WalkRefs)
			label := "4KB"
			if thp {
				label = "THP"
				res.LVMTHP[name], res.ECPTTHP[name] = lv/base, ec/base
			} else {
				res.LVM4K[name], res.ECPT4K[name] = lv/base, ec/base
			}
			ls = append(ls, lv/base)
			es = append(es, ec/base)
			if id > 0 {
				vsIdeal = append(vsIdeal, lv/id)
			}
			tb.AddRow(name, label, ec/base, lv/base)
		}
		if thp {
			res.AvgLVMTHP, res.AvgECPTTHP = stats.Mean(ls), stats.Mean(es)
		} else {
			res.AvgLVM4K, res.AvgECPT4K = stats.Mean(ls), stats.Mean(es)
		}
	}
	res.LVMvsIdeal = stats.Mean(vsIdeal)
	res.Table = tb
	return res, nil
}

// Fig12Result carries the cache-MPKI data.
type Fig12Result struct {
	// L2/L3 MPKI relative to radix (4 KB pages).
	LVML2, LVML3, ECPTL2, ECPTL3             map[string]float64
	AvgLVML2, AvgLVML3, AvgECPTL2, AvgECPTL3 float64
	Table                                    *stats.Table
}

// Fig12CacheMPKI reproduces Figure 12: L2/L3 MPKI relative to radix.
// Paper: LVM within ~1%; ECPT +44% L2 / +40% L3.
func (r *Runner) Fig12CacheMPKI() (Fig12Result, error) {
	res := Fig12Result{
		LVML2: map[string]float64{}, LVML3: map[string]float64{},
		ECPTL2: map[string]float64{}, ECPTL3: map[string]float64{},
	}
	tb := stats.NewTable("workload", "lvm L2", "lvm L3", "ecpt L2", "ecpt L3")
	var l2s, l3s, e2s, e3s []float64
	for _, name := range r.Cfg.Workloads {
		base, err := r.Run(name, oskernel.SchemeRadix, false)
		if err != nil {
			return Fig12Result{}, err
		}
		lv, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return Fig12Result{}, err
		}
		ec, err := r.Run(name, oskernel.SchemeECPT, false)
		if err != nil {
			return Fig12Result{}, err
		}
		res.LVML2[name] = lv.Sim.L2MPKI / base.Sim.L2MPKI
		res.LVML3[name] = lv.Sim.L3MPKI / base.Sim.L3MPKI
		res.ECPTL2[name] = ec.Sim.L2MPKI / base.Sim.L2MPKI
		res.ECPTL3[name] = ec.Sim.L3MPKI / base.Sim.L3MPKI
		l2s = append(l2s, res.LVML2[name])
		l3s = append(l3s, res.LVML3[name])
		e2s = append(e2s, res.ECPTL2[name])
		e3s = append(e3s, res.ECPTL3[name])
		tb.AddRow(name, res.LVML2[name], res.LVML3[name], res.ECPTL2[name], res.ECPTL3[name])
	}
	res.AvgLVML2, res.AvgLVML3 = stats.Mean(l2s), stats.Mean(l3s)
	res.AvgECPTL2, res.AvgECPTL3 = stats.Mean(e2s), stats.Mean(e3s)
	res.Table = tb
	return res, nil
}

// Table2Result carries the index-size data.
type Table2Result struct {
	Size4K, SizeTHP map[string]int
	Peak            map[string]int
	Table           *stats.Table `json:"-"`
	// Scaling study: index size per memcached footprint.
	ScalingSizes map[uint64]int
}

// table2Scales multiplies quarters of the configured memcached footprint
// for the scaling launches, in print order.
var table2Scales = []uint64{1, 2, 4}

// measureTable2Scaling launches memcached at growing footprints through
// the scaled-HW launch path and records the steady-state index size per
// footprint. The index must not grow with the footprint.
func (r *Runner) measureTable2Scaling() (map[uint64]int, error) {
	sizes := map[uint64]int{}
	for _, scale := range table2Scales {
		p := r.Cfg.Params
		p.MemcachedBytes = p.MemcachedBytes / 4 * scale
		w, err := workload.Build("mem$", p)
		if err != nil {
			return nil, fmt.Errorf("table2 scaling @%s: %w", byteLabel(p.MemcachedBytes), err)
		}
		_, proc, err := launchScaled(r.physFor(w), oskernel.SchemeLVM, w.Space, false)
		if err != nil {
			return nil, fmt.Errorf("table2 scaling @%s: launch: %w", byteLabel(p.MemcachedBytes), err)
		}
		sizes[p.MemcachedBytes] = proc.LvmIx.SizeBytes()
	}
	return sizes, nil
}

// Table2IndexSize reproduces Table 2 plus the scaling study: steady-state
// index sizes in bytes. Paper: 96–128 B (4K), 112–192 B (THP), constant
// across memcached 32→240 GB. The per-workload rows come from the cached
// run matrix; the bespoke scaling launches persist as a run-cache
// artifact.
func (r *Runner) Table2IndexSize() (Table2Result, error) {
	res := Table2Result{
		Size4K: map[string]int{}, SizeTHP: map[string]int{},
		Peak: map[string]int{},
	}
	tb := stats.NewTable("workload", "4KB bytes", "THP bytes", "peak bytes", "depth", "LWC hit")
	for _, name := range r.Cfg.Workloads {
		a, err := r.Run(name, oskernel.SchemeLVM, false)
		if err != nil {
			return Table2Result{}, err
		}
		b, err := r.Run(name, oskernel.SchemeLVM, true)
		if err != nil {
			return Table2Result{}, err
		}
		res.Size4K[name] = a.IndexBytes
		res.SizeTHP[name] = b.IndexBytes
		res.Peak[name] = a.IndexPeakBytes
		tb.AddRow(name, a.IndexBytes, b.IndexBytes, a.IndexPeakBytes, a.IndexDepth, pct(a.LWCHitRate))
	}
	scaling, err := artifactFor(r, "table2.scaling", r.measureTable2Scaling)
	if err != nil {
		return Table2Result{}, err
	}
	res.ScalingSizes = scaling
	for _, scale := range table2Scales {
		size := r.Cfg.Params.MemcachedBytes / 4 * scale
		tb.AddRow(fmt.Sprintf("mem$ @%s", byteLabel(size)), scaling[size], "-", "-", "-", "-")
	}
	res.Table = tb
	return res, nil
}

// HardwareResult carries the §7.4 data.
type HardwareResult struct {
	Cmp   hwarea.Comparison
	Table *stats.Table
}

// HardwareArea reproduces §7.4: area/power/size of LVM's hardware vs
// radix's PWC. Paper: 3.0× size, 1.5× area, 1.9× power; walker
// 0.000637 mm²; LWC 0.00364 mm², 0.588 mW.
func (r *Runner) HardwareArea() (HardwareResult, error) {
	c := hwarea.Compare()
	tb := stats.NewTable("structure", "payload bytes", "area mm2", "leakage mW")
	tb.AddRow("LVM LWC", c.LWC.DataBytes(), fmt.Sprintf("%.5f", c.LWC.AreaMM2()), fmt.Sprintf("%.3f", c.LWC.LeakageMW()))
	tb.AddRow("Radix PWC", c.PWC.DataBytes(), fmt.Sprintf("%.5f", c.PWC.AreaMM2()), fmt.Sprintf("%.3f", c.PWC.LeakageMW()))
	tb.AddRow("LVM walker", "-", fmt.Sprintf("%.6f", c.WalkerMM), "-")
	tb.AddRow("improvement", fmt.Sprintf("%.1fx", c.SizeX), fmt.Sprintf("%.1fx", c.AreaX), fmt.Sprintf("%.1fx", c.PowerX))
	return HardwareResult{Cmp: c, Table: tb}, nil
}
