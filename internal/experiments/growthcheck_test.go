package experiments

import (
	"fmt"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/oskernel"
)

func TestGrowthBreakdown(t *testing.T) {
	skipSweep(t)
	r := NewRunner(Default())
	name := "gups"
	w, err := r.Workload(name)
	if err != nil {
		t.Fatal(err)
	}
	sys, p, err := launchScaled(r.physFor(w), oskernel.SchemeLVM, w.Space, false)
	if err != nil {
		t.Fatal(err)
	}
	base := p.MgmtCycles
	heap, err := heapOf(w.Space)
	if err != nil {
		t.Fatal(err)
	}
	grow := heap.Span / 8
	start := heap.Mapped[len(heap.Mapped)-1] + 1
	inserted := 0
	for i := 0; i < grow; i++ {
		v := start + addr.VPN(i)
		if _, ok := sys.SoftwareLookup(1, v); ok {
			continue
		}
		if err := sys.MapPage(1, v, addr.Page4K); err != nil {
			break
		}
		inserted++
	}
	st := p.LvmIx.Stats()
	fmt.Printf("%s: inserted=%d steady=%d insertPart=%d retrains=%d rebuilds=%d lazy=%d leaves=%d mapped=%d\n",
		name, inserted, p.MgmtCycles-base, uint64(inserted)*150,
		st.Retrains, st.Rebuilds, st.LazyTrains, p.LvmIx.LeafCount(), p.LvmIx.MappedPages())
}
