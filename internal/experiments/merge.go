package experiments

import (
	"encoding/json"
	"fmt"
)

// ShardJSON serializes this host's partition of the plan as a partial run
// document: the v2 header (fingerprint, shard position, config, experiment
// keys, full plan) plus one entry per owned run carrying both the flat
// metrics and the lossless output payload. The document is self-describing
// — MergeShards needs no flags to recombine a set of them — and, like
// RunsJSON, byte-identical across invocations unless opt.Timings adds
// host_seconds.
func (r *Runner) ShardJSON(p Plan, expKeys []string, spec ShardSpec, opt RunJSONOptions) ([]byte, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	fp, err := r.Cfg.Fingerprint()
	if err != nil {
		return nil, err
	}
	assign, err := r.AssignPlan(p, spec.Count)
	if err != nil {
		return nil, err
	}
	doc := runsDoc{
		SchemaVersion: RunJSONSchemaVersion,
		Fingerprint:   fp,
		Shard:         &shardDoc{Index: spec.Index, Count: spec.Count},
		Config:        &r.Cfg,
		Experiments:   expKeys,
		Plan:          make([]keyDoc, 0, len(p.Runs)),
	}
	for i, k := range p.Runs {
		doc.Plan = append(doc.Plan, keyToDoc(k))
		if assign[i] != spec.Index {
			continue
		}
		out, ok := r.lookupRun(k)
		if !ok {
			return nil, fmt.Errorf("experiments: ShardJSON: run %s not executed", k)
		}
		d := flatRunDoc(k, out, opt.Timings)
		od := encodeRunOutput(out)
		d.Output = &od
		doc.Runs = append(doc.Runs, d)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiments: ShardJSON: %w", err)
	}
	return append(b, '\n'), nil
}

// A ShardFile is one partial document handed to MergeShards, tagged with
// the name (usually the path) used in error messages.
type ShardFile struct {
	Name string
	Data []byte
}

// MergeShards recombines a complete set of shard documents into a runner
// holding every plan run, plus the reconstructed plan, so the caller can
// compute tables (ExecutePlan finds nothing left to execute) and emit
// RunsJSON byte-identically to an unsharded sweep.
//
// Every way the set can be wrong is a distinct wrapped error naming the
// offending file and/or RunKey — schema or fingerprint mismatch, plan or
// experiment divergence, duplicate or missing shard index, duplicate or
// missing RunKey, a run outside the plan, a missing or undecodable output
// payload — never a silently wrong table.
func MergeShards(files []ShardFile) (*Runner, Plan, error) {
	if len(files) == 0 {
		return nil, Plan{}, fmt.Errorf("experiments: merge: no shard files")
	}

	var (
		ref      runsDoc // header of the first document, the reference
		refFile  string
		byIndex  = make(map[int]string)    // shard index -> file name
		owner    = make(map[RunKey]string) // run -> file that provided it
		outputs  = make(map[RunKey]*RunOutput)
		planKeys []RunKey
		inPlan   = make(map[RunKey]bool)
	)
	for fi, f := range files {
		var doc runsDoc
		if err := json.Unmarshal(f.Data, &doc); err != nil {
			return nil, Plan{}, fmt.Errorf("experiments: merge: %s: corrupt document: %w", f.Name, err)
		}
		if doc.SchemaVersion != RunJSONSchemaVersion {
			return nil, Plan{}, fmt.Errorf("experiments: merge: %s: schema version v%d, want v%d — regenerate the shard",
				f.Name, doc.SchemaVersion, RunJSONSchemaVersion)
		}
		if doc.Shard == nil || doc.Config == nil || len(doc.Plan) == 0 {
			return nil, Plan{}, fmt.Errorf("experiments: merge: %s: not a shard document (missing shard/config/plan header)", f.Name)
		}
		if fi == 0 {
			ref, refFile = doc, f.Name
			planKeys = make([]RunKey, 0, len(doc.Plan))
			for _, kd := range doc.Plan {
				k := kd.key()
				planKeys = append(planKeys, k)
				inPlan[k] = true
			}
		} else {
			if doc.Fingerprint != ref.Fingerprint {
				return nil, Plan{}, fmt.Errorf("experiments: merge: %s: config fingerprint %.12s does not match %s (%.12s) — shards from different sweeps",
					f.Name, doc.Fingerprint, refFile, ref.Fingerprint)
			}
			if doc.Shard.Count != ref.Shard.Count {
				return nil, Plan{}, fmt.Errorf("experiments: merge: %s: shard count %d, %s has %d",
					f.Name, doc.Shard.Count, refFile, ref.Shard.Count)
			}
			if !slicesEqual(doc.Plan, ref.Plan) {
				return nil, Plan{}, fmt.Errorf("experiments: merge: %s: plan does not match %s", f.Name, refFile)
			}
			if !slicesEqual(doc.Experiments, ref.Experiments) {
				return nil, Plan{}, fmt.Errorf("experiments: merge: %s: experiment selection does not match %s", f.Name, refFile)
			}
		}
		if prev, dup := byIndex[doc.Shard.Index]; dup {
			return nil, Plan{}, fmt.Errorf("experiments: merge: %s and %s both claim shard %d/%d",
				prev, f.Name, doc.Shard.Index, doc.Shard.Count)
		}
		byIndex[doc.Shard.Index] = f.Name

		for _, rd := range doc.Runs {
			k := keyDoc{rd.Workload, rd.Scheme, rd.THP, rd.Warmup}.key()
			if !inPlan[k] {
				return nil, Plan{}, fmt.Errorf("experiments: merge: %s: run %s is not in the plan", f.Name, k)
			}
			if prev, dup := owner[k]; dup {
				return nil, Plan{}, fmt.Errorf("experiments: merge: run %s appears in both %s and %s", k, prev, f.Name)
			}
			owner[k] = f.Name
			if rd.Output == nil {
				return nil, Plan{}, fmt.Errorf("experiments: merge: %s: run %s has no output payload", f.Name, k)
			}
			out, err := decodeRunOutput(*rd.Output)
			if err != nil {
				return nil, Plan{}, fmt.Errorf("experiments: merge: %s: run %s: %w", f.Name, k, err)
			}
			// Host wall-clock is observational: restore it when the shard
			// carried -timings so a merged -timings document has values,
			// but it never participates in any table or identity check.
			out.HostSeconds = rd.HostSeconds
			outputs[k] = out
		}
	}

	if len(files) != ref.Shard.Count {
		var missing []int
		for i := 0; i < ref.Shard.Count; i++ {
			if _, ok := byIndex[i]; !ok {
				missing = append(missing, i)
			}
		}
		return nil, Plan{}, fmt.Errorf("experiments: merge: have %d shard file(s) for shard count %d (missing shard indices %v)",
			len(files), ref.Shard.Count, missing)
	}
	for _, k := range planKeys {
		if _, ok := outputs[k]; !ok {
			return nil, Plan{}, fmt.Errorf("experiments: merge: run %s missing from every shard", k)
		}
	}

	// Rebuild the plan from the header's own config + experiment keys and
	// cross-check it against the serialized run list: a mismatch means the
	// document was produced by a diverging registry or tampered with.
	exps, err := Select(ref.Experiments...)
	if err != nil {
		return nil, Plan{}, fmt.Errorf("experiments: merge: %s: %w", refFile, err)
	}
	p := NewPlan(*ref.Config, exps)
	if len(p.Runs) != len(planKeys) {
		return nil, Plan{}, fmt.Errorf("experiments: merge: %s: plan has %d runs, config derives %d", refFile, len(planKeys), len(p.Runs))
	}
	for i, k := range p.Runs {
		if planKeys[i] != k {
			return nil, Plan{}, fmt.Errorf("experiments: merge: %s: plan run %d is %s, config derives %s", refFile, i, planKeys[i], k)
		}
	}

	r := NewRunner(*ref.Config)
	for _, k := range p.Runs {
		r.installRun(k, outputs[k])
	}
	return r, p, nil
}

// slicesEqual compares two comparable slices element-wise (ordered keys on
// both sides, so order is significant).
func slicesEqual[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
