package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// mergeFixture builds a complete n-way shard-document set over the
// walkcaches plan using fabricated outputs — no simulation involved, so
// every merge path (happy and unhappy) is exercised at unit-test speed.
func mergeFixture(t *testing.T, cfg Config, n int) (*Runner, Plan, []ShardFile) {
	t.Helper()
	exps, err := Select("walkcaches")
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(cfg, exps)
	r := NewRunner(cfg)
	for i, k := range plan.Runs {
		r.installRun(k, fakeOutput(k, i))
	}
	files := make([]ShardFile, n)
	for s := 0; s < n; s++ {
		b, err := r.ShardJSON(plan, []string{"walkcaches"}, ShardSpec{Index: s, Count: n}, RunJSONOptions{Timings: true})
		if err != nil {
			t.Fatal(err)
		}
		files[s] = ShardFile{Name: fmt.Sprintf("part%d.json", s), Data: b}
	}
	return r, plan, files
}

// mutate round-trips a shard document through runsDoc, applies f, and
// re-serializes. (The flat metrics field does not survive the round trip —
// metrics.Set has no unmarshaler — but MergeShards reads only the typed
// output payloads, which do.)
func mutate(t *testing.T, data []byte, f func(*runsDoc)) []byte {
	t.Helper()
	var doc runsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	f(&doc)
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func wantMergeError(t *testing.T, files []ShardFile, substrings ...string) {
	t.Helper()
	_, _, err := MergeShards(files)
	if err == nil {
		t.Fatalf("merge accepted a bad shard set (wanted error mentioning %q)", substrings)
	}
	for _, s := range substrings {
		if !strings.Contains(err.Error(), s) {
			t.Errorf("error %q does not mention %q", err, s)
		}
	}
}

func TestMergeShardsRoundTrip(t *testing.T) {
	cfg := jsonSweepConfig()
	for n := 1; n <= 3; n++ {
		orig, plan, files := mergeFixture(t, cfg, n)
		merged, mp, err := MergeShards(files)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !slicesEqual(mp.Runs, plan.Runs) {
			t.Fatalf("n=%d: merged plan %v, want %v", n, mp.Runs, plan.Runs)
		}
		want, err := orig.RunsJSON(plan, RunJSONOptions{Timings: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := merged.RunsJSON(mp, RunJSONOptions{Timings: true})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("n=%d: merged document differs from the source runner's\n--- want ---\n%s\n--- got ---\n%s", n, want, got)
		}
	}
}

func TestMergeShardsSchemaMismatch(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 2)
	files[1].Data = mutate(t, files[1].Data, func(d *runsDoc) { d.SchemaVersion = RunJSONSchemaVersion - 1 })
	wantMergeError(t, files, "part1.json", "schema version")
}

func TestMergeShardsCorruptDocument(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 2)
	files[0].Data = files[0].Data[:len(files[0].Data)/2] // truncate mid-JSON
	wantMergeError(t, files, "part0.json", "corrupt")
}

func TestMergeShardsNotAShardDocument(t *testing.T) {
	r, plan, files := mergeFixture(t, jsonSweepConfig(), 2)
	flat, err := r.RunsJSON(plan, RunJSONOptions{})
	if err != nil {
		t.Fatal(err)
	}
	files[0].Data = flat
	wantMergeError(t, files, "part0.json", "not a shard document")
}

func TestMergeShardsDuplicateShardIndex(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 2)
	dup := []ShardFile{files[0], {Name: "copy-of-part0.json", Data: files[0].Data}}
	wantMergeError(t, dup, "part0.json", "copy-of-part0.json", "both claim shard 0")
}

func TestMergeShardsMissingShard(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 3)
	wantMergeError(t, files[:2], "shard count 3", "missing shard indices [2]")
}

func TestMergeShardsMissingRun(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 2)
	var dropped RunKey
	files[0].Data = mutate(t, files[0].Data, func(d *runsDoc) {
		dropped = keyDoc{d.Runs[0].Workload, d.Runs[0].Scheme, d.Runs[0].THP, d.Runs[0].Warmup}.key()
		d.Runs = d.Runs[1:]
	})
	wantMergeError(t, files, dropped.String(), "missing from every shard")
}

func TestMergeShardsDuplicateRunAcrossShards(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 2)
	var stolen runDoc
	mutate(t, files[1].Data, func(d *runsDoc) { stolen = d.Runs[0] })
	files[0].Data = mutate(t, files[0].Data, func(d *runsDoc) { d.Runs = append(d.Runs, stolen) })
	key := keyDoc{stolen.Workload, stolen.Scheme, stolen.THP, stolen.Warmup}.key()
	wantMergeError(t, files, key.String(), "part0.json", "part1.json")
}

func TestMergeShardsRunOutsidePlan(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 2)
	files[0].Data = mutate(t, files[0].Data, func(d *runsDoc) { d.Runs[0].Workload = "zzz" })
	wantMergeError(t, files, "part0.json", "not in the plan")
}

func TestMergeShardsMissingOutputPayload(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 2)
	files[0].Data = mutate(t, files[0].Data, func(d *runsDoc) { d.Runs[0].Output = nil })
	wantMergeError(t, files, "part0.json", "no output payload")
}

func TestMergeShardsCorruptMetricKind(t *testing.T) {
	_, _, files := mergeFixture(t, jsonSweepConfig(), 2)
	var key string
	files[0].Data = mutate(t, files[0].Data, func(d *runsDoc) {
		key = keyDoc{d.Runs[0].Workload, d.Runs[0].Scheme, d.Runs[0].THP, d.Runs[0].Warmup}.key().String()
		d.Runs[0].Output.Sim.Metrics[0].Kind = "histogram"
	})
	wantMergeError(t, files, "part0.json", key, "unknown kind")
}

func TestMergeShardsFingerprintMismatch(t *testing.T) {
	cfgA := jsonSweepConfig()
	cfgB := jsonSweepConfig()
	cfgB.Params.TraceLen++ // a different sweep
	_, _, filesA := mergeFixture(t, cfgA, 2)
	_, _, filesB := mergeFixture(t, cfgB, 2)
	wantMergeError(t, []ShardFile{filesA[0], filesB[1]}, "part1.json", "fingerprint")
}

func TestMergeShardsShardCountMismatch(t *testing.T) {
	_, _, files2 := mergeFixture(t, jsonSweepConfig(), 2)
	_, _, files3 := mergeFixture(t, jsonSweepConfig(), 3)
	wantMergeError(t, []ShardFile{files2[0], files3[1]}, "shard count")
}

func TestMergeShardsNoFiles(t *testing.T) {
	wantMergeError(t, nil, "no shard files")
}

func TestConfigFingerprintSensitivity(t *testing.T) {
	a := jsonSweepConfig()
	b := jsonSweepConfig()
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fa2, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fa2 {
		t.Error("identical configs fingerprint differently")
	}
	b.Params.Seed++
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa == fb {
		t.Error("different configs share a fingerprint")
	}
}
