package orch

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lvm/internal/experiments"
)

// Options bounds a coordinator.
type Options struct {
	// Cache, when non-nil, is consulted before dispatching anything (hits
	// install without simulating, exactly like ExecuteRuns) and receives
	// every completed run as it arrives, so an interrupted sweep resumes
	// re-simulating nothing.
	Cache *experiments.RunCache
	// MaxAttempts bounds executions per run, counting worker crashes
	// (0 means 3).
	MaxAttempts int
	// RetryBackoff is the base cooldown before a failed run is
	// redispatched; it doubles per attempt, capped at 8× (0 means 200ms).
	// Crash requeues skip the cooldown — the run was not at fault.
	RetryBackoff time.Duration
}

// ErrRetriesExhausted marks a sweep failure caused by one run failing on
// every allowed attempt; the wrapping error names the RunKey.
var ErrRetriesExhausted = errors.New("orch: run failed on every attempt")

// runState tracks one plan run through dispatch, steals, and retries.
// All fields are guarded by coordinator.mu.
type runState struct {
	key  experiments.RunKey
	cost uint64 // EstimateCosts footprint charge
	// done marks the first accepted completion; later copies are discarded.
	done bool
	// cooling marks a failed run waiting out its retry backoff.
	cooling    bool
	attempts   int
	lastWorker string
	// inFlight lists the workers currently executing a copy of this run
	// (more than one after a steal).
	inFlight []*workerConn
}

// workerConn is one registered worker. All fields are guarded by
// coordinator.mu except name/remote/capacity/budget/w, which are set once
// at registration.
type workerConn struct {
	name     string
	remote   string
	w        *wire
	capacity int
	budget   uint64
	used     uint64 // summed charges of running
	running  []*runState
	gone     bool
}

type coordinator struct {
	r    *experiments.Runner
	opt  Options
	fp   string
	sink experiments.Sink
	os   experiments.OrchSink

	mu       sync.Mutex
	cond     *sync.Cond    // signals finished; uses mu
	states   []*runState   // plan order; guarded by mu
	byKey    map[experiments.RunKey]*runState
	workers  []*workerConn // guarded by mu
	nextName int           // guarded by mu
	// remaining counts runs not yet done; 0 finishes the sweep.
	remaining int  // guarded by mu
	finished  bool // guarded by mu
	err       error
	wg        sync.WaitGroup
}

// Serve runs a sweep coordinator on ln until every run in p has an
// installed output (or a run exhausts its retries, or the cache fails).
// Workers connect with Worker.Run; their handshake is vetted against the
// runner's config fingerprint exactly like -merge vets shard documents.
// On success the runner holds the complete run matrix — byte-identical to
// an unsharded ExecuteRuns — and the compute phase can proceed locally.
//
// Runs already in the runner or restorable from opt.Cache are installed
// up front; a fully warm plan returns before accepting a single
// connection, dispatching zero simulations.
func Serve(ln net.Listener, r *experiments.Runner, p experiments.Plan, opt Options) error {
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 3
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = 200 * time.Millisecond
	}
	fp, err := r.Cfg.Fingerprint()
	if err != nil {
		return err
	}
	costs, err := r.EstimateCosts(p)
	if err != nil {
		return err
	}

	c := &coordinator{
		r: r, opt: opt, fp: fp,
		sink:  r.Sink(),
		os:    orchSinkOf(r.Sink()),
		byKey: make(map[experiments.RunKey]*runState, len(p.Runs)),
	}
	c.cond = sync.NewCond(&c.mu)
	for i, key := range p.Runs {
		st := &runState{key: key, cost: costs[i]}
		if _, ok := r.LookupRun(key); ok {
			st.done = true
		} else if opt.Cache != nil {
			out, hit, err := opt.Cache.Load(key)
			if err != nil {
				return fmt.Errorf("orch: %w", err)
			}
			if hit {
				r.InstallRun(key, out)
				c.sink.RunCached(key)
				st.done = true
			}
		}
		if !st.done {
			c.remaining++
		}
		c.states = append(c.states, st)
		c.byKey[key] = st
	}
	if c.remaining == 0 {
		// Fully warm: nothing to dispatch, no workers needed.
		return nil
	}

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handle(conn)
			}()
		}
	}()

	c.mu.Lock()
	for !c.finished {
		c.cond.Wait()
	}
	err = c.err
	live := append([]*workerConn(nil), c.workers...)
	c.mu.Unlock()

	ln.Close()
	for _, wc := range live {
		if err == nil {
			// Best-effort: the frame lands before the close, so a healthy
			// worker drains it and exits cleanly.
			wc.w.send(message{Type: msgShutdown})
		}
		wc.w.close()
	}
	c.wg.Wait()
	return err
}

// handle runs one connection's lifecycle: handshake, then a read loop
// feeding results in. Install and cache writes happen on this goroutine,
// inside the coordinator's WaitGroup, so they are complete before Serve
// returns.
func (c *coordinator) handle(conn net.Conn) {
	w := &wire{conn: conn}
	defer w.close()
	hello, err := w.recv()
	if err != nil {
		return
	}
	if reason := c.vetHello(hello); reason != "" {
		w.send(message{Type: msgReject, Reason: reason})
		return
	}
	wc := c.register(hello, w, conn)
	c.os.WorkerConnected(wc.name, wc.remote, wc.capacity)
	if err := w.send(message{Type: msgWelcome, Worker: wc.name}); err != nil {
		c.unregister(wc, err)
		return
	}
	c.dispatch()
	for {
		m, err := w.recv()
		if err != nil {
			c.unregister(wc, err)
			c.dispatch()
			return
		}
		if m.Type != msgResult || m.Key == nil {
			continue // unknown frames ignored for forward compatibility
		}
		c.onResult(wc, m)
	}
}

// vetHello mirrors the validation -merge enforces on shard documents:
// protocol, schema version, and config fingerprint must all match, or the
// worker is computing a different sweep.
func (c *coordinator) vetHello(m message) string {
	if m.Type != msgHello {
		return fmt.Sprintf("expected hello, got %q", m.Type)
	}
	if m.Proto != protocolVersion {
		return fmt.Sprintf("protocol v%d, want v%d", m.Proto, protocolVersion)
	}
	if m.SchemaVersion != experiments.RunJSONSchemaVersion {
		return fmt.Sprintf("run schema v%d, want v%d", m.SchemaVersion, experiments.RunJSONSchemaVersion)
	}
	if m.Fingerprint != c.fp {
		return fmt.Sprintf("config fingerprint %.12s does not match coordinator (%.12s) — worker running a different sweep config", m.Fingerprint, c.fp)
	}
	return ""
}

func (c *coordinator) register(m message, w *wire, conn net.Conn) *workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextName++
	wc := &workerConn{
		name:     fmt.Sprintf("w%d", c.nextName),
		remote:   conn.RemoteAddr().String(),
		w:        w,
		capacity: max(1, m.Capacity),
		budget:   m.BudgetBytes,
	}
	if m.Worker != "" {
		wc.remote = m.Worker
	}
	if wc.budget == 0 {
		wc.budget = experiments.DefaultMemBudgetBytes
	}
	c.workers = append(c.workers, wc)
	return wc
}

// unregister removes a dead (or cleanly departing) worker and requeues its
// in-flight runs. A run whose last surviving copy was on this worker
// counts a crash attempt and becomes immediately redispatchable.
func (c *coordinator) unregister(wc *workerConn, cause error) {
	c.mu.Lock()
	if wc.gone {
		c.mu.Unlock()
		return
	}
	wc.gone = true
	for i, w := range c.workers {
		if w == wc {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	for _, st := range wc.running {
		st.inFlight = removeConn(st.inFlight, wc)
		if !st.done && len(st.inFlight) == 0 {
			c.failLocked(st, wc.name, fmt.Errorf("worker %s disconnected: %v", wc.name, cause), true)
		}
	}
	wc.running = nil
	clean := c.finished && c.err == nil
	c.mu.Unlock()
	if clean {
		cause = nil // expected teardown after a completed sweep
	}
	c.os.WorkerGone(wc.name, cause)
}

// dispatch hands out runs until no worker has both free capacity and an
// eligible run. Sends happen outside the lock; a failed send is left for
// that worker's read loop to observe and requeue.
func (c *coordinator) dispatch() {
	type send struct {
		wc    *workerConn
		key   experiments.RunKey
		steal bool
	}
	var sends []send
	c.mu.Lock()
	for !c.finished {
		progressed := false
		for _, wc := range c.workers {
			if wc.gone || len(wc.running) >= wc.capacity {
				continue
			}
			st, steal := c.pickLocked(wc)
			if st == nil {
				continue
			}
			st.inFlight = append(st.inFlight, wc)
			wc.running = append(wc.running, st)
			wc.used += min(st.cost, wc.budget)
			sends = append(sends, send{wc, st.key, steal})
			progressed = true
		}
		if !progressed {
			break
		}
	}
	c.mu.Unlock()
	for _, s := range sends {
		c.os.RunAssigned(s.key, s.wc.name, s.steal)
		key := s.key
		s.wc.w.send(message{Type: msgAssign, Key: &key})
	}
}

// pickLocked chooses wc's next run: the costliest pending run that fits
// its remaining memory budget (largest-first, the same LPT ordering
// AssignShards uses), preferring runs that have not already failed on this
// worker. With nothing pending it steals: the least-duplicated, costliest
// outstanding run wc is not already executing. Ties break toward plan
// order. An idle worker admits an over-budget run alone (charge clamped),
// mirroring sched's oversized-task rule.
func (c *coordinator) pickLocked(wc *workerConn) (st *runState, steal bool) {
	free := wc.budget - wc.used
	var best, rerun *runState
	for _, s := range c.states {
		if s.done || s.cooling || len(s.inFlight) > 0 {
			continue
		}
		if min(s.cost, wc.budget) > free {
			continue
		}
		if s.lastWorker == wc.name {
			// Retries prefer a different worker; keep as fallback.
			if rerun == nil || s.cost > rerun.cost {
				rerun = s
			}
			continue
		}
		if best == nil || s.cost > best.cost {
			best = s
		}
	}
	if best == nil {
		best = rerun
	}
	if best != nil {
		return best, false
	}
	for _, s := range c.states {
		if s.done || len(s.inFlight) == 0 {
			continue
		}
		if containsConn(s.inFlight, wc) {
			continue
		}
		if min(s.cost, wc.budget) > free {
			continue
		}
		if best == nil ||
			len(s.inFlight) < len(best.inFlight) ||
			(len(s.inFlight) == len(best.inFlight) && s.cost > best.cost) {
			best = s
		}
	}
	return best, best != nil
}

// onResult accepts one completion frame: the first success for a key wins
// and is installed + cached; later copies are discarded; failures count an
// attempt and cool down for redispatch.
func (c *coordinator) onResult(wc *workerConn, m message) {
	key := *m.Key
	var out *experiments.RunOutput
	var runErr error
	if m.Error != "" {
		runErr = errors.New(m.Error)
	} else if out, runErr = experiments.UnmarshalRunOutput(m.Output); runErr != nil {
		runErr = fmt.Errorf("decoding result from %s: %w", wc.name, runErr)
	}

	c.mu.Lock()
	st := c.byKey[key]
	if st == nil {
		c.mu.Unlock()
		return // a key outside the plan: ignore
	}
	st.inFlight = removeConn(st.inFlight, wc)
	wc.running = removeState(wc.running, st)
	wc.used -= min(st.cost, wc.budget)
	if st.done {
		c.mu.Unlock()
		c.os.RunDuplicate(key, wc.name)
		c.dispatch()
		return
	}
	if runErr != nil {
		c.failLocked(st, wc.name, runErr, false)
		c.mu.Unlock()
		c.sink.RunDone(key, m.HostSeconds, runErr)
		c.dispatch()
		return
	}
	st.done = true
	st.lastWorker = wc.name
	c.remaining--
	last := c.remaining == 0
	c.mu.Unlock()

	out.HostSeconds = m.HostSeconds
	c.r.InstallRun(key, out)
	c.sink.RunDone(key, m.HostSeconds, nil)
	if c.opt.Cache != nil {
		if err := c.opt.Cache.Store(key, out); err != nil {
			c.finish(fmt.Errorf("orch: %w", err))
			return
		}
	}
	if last {
		c.finish(nil)
		return
	}
	c.dispatch()
}

// failLocked records a failed attempt on st. With attempts left the run
// cools down for a capped exponential backoff before redispatch (none for
// crash requeues — the run was not at fault); with the budget exhausted
// and no other copy still in flight, the sweep fails naming the run.
func (c *coordinator) failLocked(st *runState, worker string, cause error, crashed bool) {
	st.attempts++
	st.lastWorker = worker
	if st.attempts >= c.opt.MaxAttempts {
		if len(st.inFlight) == 0 {
			c.finishLocked(fmt.Errorf("orch: run %s: %w (%d attempts, last: %v)", st.key, ErrRetriesExhausted, st.attempts, cause))
		}
		return
	}
	c.os.RunRetry(st.key, st.attempts, c.opt.MaxAttempts, cause.Error())
	if crashed {
		return // immediately redispatchable
	}
	backoff := c.opt.RetryBackoff << (st.attempts - 1)
	backoff = min(backoff, 8*c.opt.RetryBackoff)
	st.cooling = true
	time.AfterFunc(backoff, func() {
		c.mu.Lock()
		st.cooling = false
		fin := c.finished
		c.mu.Unlock()
		if !fin {
			c.dispatch()
		}
	})
}

func (c *coordinator) finishLocked(err error) {
	if c.finished {
		return
	}
	c.finished = true
	c.err = err
	c.cond.Broadcast()
}

func (c *coordinator) finish(err error) {
	c.mu.Lock()
	c.finishLocked(err)
	c.mu.Unlock()
}

func removeConn(s []*workerConn, wc *workerConn) []*workerConn {
	for i, w := range s {
		if w == wc {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func removeState(s []*runState, st *runState) []*runState {
	for i, x := range s {
		if x == st {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func containsConn(s []*workerConn, wc *workerConn) bool {
	for _, w := range s {
		if w == wc {
			return true
		}
	}
	return false
}
