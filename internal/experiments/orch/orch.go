// Package orch is the distributed sweep orchestrator: a coordinator
// (Serve) owns a deduped experiment plan and hands its runs out to worker
// processes (Worker.Run) over a length-prefixed JSON wire protocol.
//
// The design goal is the same determinism contract the rest of the
// experiment stack upholds: the coordinator's runner ends up with exactly
// the run outputs an unsharded sweep would compute, bit for bit, no matter
// how many workers join, which runs get stolen or retried, or how much of
// the sweep was restored from the run cache. That holds because outputs
// travel through the runio seam (MarshalRunOutput/UnmarshalRunOutput),
// which round-trips RunOutputs losslessly, and because every table renders
// purely from installed runs in plan order — scheduling only ever shows up
// on the Sink's progress stream.
//
// Dispatch is cost-aware (EstimateCosts footprint, largest-first per
// worker budget), idle workers steal outstanding runs from stragglers
// (first completion wins; later duplicates are discarded by RunKey), and
// failed runs are retried with capped backoff, preferring a different
// worker. Completed runs stream into the run cache as they arrive, so an
// interrupted sweep resumes re-simulating nothing.
package orch

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"lvm/internal/experiments"
)

// protocolVersion gates the handshake; a coordinator rejects workers
// speaking a different frame layout.
const protocolVersion = 1

// maxMsgBytes bounds one frame. Run outputs are a few hundred KB of JSON;
// anything near this limit is a corrupt or hostile peer.
const maxMsgBytes = 64 << 20

type msgType string

const (
	msgHello    msgType = "hello"    // worker → coordinator: handshake
	msgWelcome  msgType = "welcome"  // coordinator → worker: handshake accepted
	msgReject   msgType = "reject"   // coordinator → worker: handshake refused
	msgAssign   msgType = "assign"   // coordinator → worker: execute Key
	msgResult   msgType = "result"   // worker → coordinator: Key's output or error
	msgShutdown msgType = "shutdown" // coordinator → worker: sweep complete
)

// message is the single frame shape of the protocol; which fields are
// meaningful depends on Type.
type message struct {
	Type msgType `json:"type"`
	// hello fields: the handshake the coordinator vets, mirroring the
	// validation -merge enforces on shard documents.
	Proto         int    `json:"proto,omitempty"`
	SchemaVersion int    `json:"schema_version,omitempty"`
	Fingerprint   string `json:"fingerprint,omitempty"`
	Worker        string `json:"worker,omitempty"`
	Capacity      int    `json:"capacity,omitempty"`
	BudgetBytes   uint64 `json:"budget_bytes,omitempty"`
	// reject field.
	Reason string `json:"reason,omitempty"`
	// assign/result fields. Output is the MarshalRunOutput form;
	// HostSeconds rides alongside because the runio doc deliberately
	// excludes it (observational, machine-dependent).
	Key         *experiments.RunKey `json:"key,omitempty"`
	Output      json.RawMessage     `json:"output,omitempty"`
	HostSeconds float64             `json:"host_seconds,omitempty"`
	Error       string              `json:"error,omitempty"`
}

// wire frames length-prefixed (4-byte big-endian) JSON messages over one
// connection. Each side runs a single reader loop; sends may come from any
// goroutine.
type wire struct {
	conn net.Conn
	mu   sync.Mutex // guards writes to conn
}

func (w *wire) send(m message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("orch: encoding %s: %w", m.Type, err)
	}
	frame := make([]byte, 4+len(b))
	binary.BigEndian.PutUint32(frame, uint32(len(b)))
	copy(frame[4:], b)
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.conn.Write(frame)
	return err
}

func (w *wire) recv() (message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.conn, hdr[:]); err != nil {
		return message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMsgBytes {
		return message{}, fmt.Errorf("orch: frame of %d bytes exceeds limit %d", n, maxMsgBytes)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(w.conn, b); err != nil {
		return message{}, err
	}
	var m message
	if err := json.Unmarshal(b, &m); err != nil {
		return message{}, fmt.Errorf("orch: decoding frame: %w", err)
	}
	return m, nil
}

func (w *wire) close() error { return w.conn.Close() }

// orchSinkOf returns s's OrchSink extension, or a no-op fallback.
func orchSinkOf(s experiments.Sink) experiments.OrchSink {
	if os, ok := s.(experiments.OrchSink); ok {
		return os
	}
	return nopOrchSink{}
}

type nopOrchSink struct{}

func (nopOrchSink) WorkerConnected(string, string, int)            {}
func (nopOrchSink) WorkerGone(string, error)                       {}
func (nopOrchSink) RunAssigned(experiments.RunKey, string, bool)   {}
func (nopOrchSink) RunRetry(experiments.RunKey, int, int, string)  {}
func (nopOrchSink) RunDuplicate(experiments.RunKey, string)        {}
