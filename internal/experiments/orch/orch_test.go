package orch

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lvm/internal/experiments"
	"lvm/internal/metrics"
	"lvm/internal/oskernel"
	"lvm/internal/sim"
)

// testConfig is a tiny sweep config: the orchestrator tests never simulate
// (Exec is faked), but EstimateCosts and the fingerprint handshake need a
// real config over real workload names.
func testConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Workloads = []string{"bfs", "mem$"}
	return cfg
}

// testPlan builds a hand-rolled plan over real workload names so the
// coordinator's cost estimation works without building anything.
func testPlan(keys ...experiments.RunKey) experiments.Plan {
	return experiments.Plan{Runs: keys}
}

// fakeOut fabricates a distinguishable run output: cycles identifies which
// worker produced it, so duplicate-discard tests can assert who won.
func fakeOut(key experiments.RunKey, cycles float64) *experiments.RunOutput {
	var m metrics.Set
	m.Counter("tlb.l2.misses", uint64(cycles))
	return &experiments.RunOutput{
		Sim: sim.Result{
			Workload:     key.Workload,
			Scheme:       string(key.Scheme),
			Instructions: 1000,
			Accesses:     500,
			Cycles:       cycles,
			Metrics:      m,
		},
		HostSeconds: 0.25,
	}
}

// recorder implements Sink + OrchSink and records every event for
// assertions; waitFor polls a predicate under the lock.
type recorder struct {
	mu         sync.Mutex
	started    []experiments.RunKey
	cached     []experiments.RunKey
	done       []experiments.RunKey
	doneErrs   []error
	assigns    []string // "key@worker" or "key@worker!" for steals
	retries    []string
	duplicates []experiments.RunKey
	joined     []string
	gone       []string
	goneErrs   []error
}

func (s *recorder) RunStart(k experiments.RunKey) {
	s.mu.Lock()
	s.started = append(s.started, k)
	s.mu.Unlock()
}
func (s *recorder) RunCached(k experiments.RunKey) {
	s.mu.Lock()
	s.cached = append(s.cached, k)
	s.mu.Unlock()
}
func (s *recorder) RunDone(k experiments.RunKey, _ float64, err error) {
	s.mu.Lock()
	s.done = append(s.done, k)
	s.doneErrs = append(s.doneErrs, err)
	s.mu.Unlock()
}
func (s *recorder) ExperimentStart(string, string)        {}
func (s *recorder) ExperimentDone(string, float64, error) {}

func (s *recorder) WorkerConnected(worker, _ string, _ int) {
	s.mu.Lock()
	s.joined = append(s.joined, worker)
	s.mu.Unlock()
}
func (s *recorder) WorkerGone(worker string, err error) {
	s.mu.Lock()
	s.gone = append(s.gone, worker)
	s.goneErrs = append(s.goneErrs, err)
	s.mu.Unlock()
}
func (s *recorder) RunAssigned(k experiments.RunKey, worker string, steal bool) {
	tag := k.String() + "@" + worker
	if steal {
		tag += "!"
	}
	s.mu.Lock()
	s.assigns = append(s.assigns, tag)
	s.mu.Unlock()
}
func (s *recorder) RunRetry(k experiments.RunKey, attempt, maxAttempts int, _ string) {
	s.mu.Lock()
	s.retries = append(s.retries, k.String())
	s.mu.Unlock()
}
func (s *recorder) RunDuplicate(k experiments.RunKey, _ string) {
	s.mu.Lock()
	s.duplicates = append(s.duplicates, k)
	s.mu.Unlock()
}

// waitFor polls pred until it holds, failing the test after ~10s.
func (s *recorder) waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		s.mu.Lock()
		ok := pred()
		s.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t.Fatalf("timed out waiting for %s\nassigns=%v done=%v dups=%v joined=%v gone=%v retries=%v",
		what, s.assigns, s.done, s.duplicates, s.joined, s.gone, s.retries)
}

func countSteals(assigns []string) int {
	n := 0
	for _, a := range assigns {
		if strings.HasSuffix(a, "!") {
			n++
		}
	}
	return n
}

// serveAsync starts Serve on a fresh loopback listener and returns the
// address plus the error channel.
func serveAsync(t *testing.T, r *experiments.Runner, p experiments.Plan, opt Options) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- Serve(ln, r, p, opt) }()
	return ln.Addr().String(), errc
}

func newWorker(t *testing.T, cfg experiments.Config, name string, capacity int,
	exec func(experiments.RunKey) (*experiments.RunOutput, error)) *Worker {
	t.Helper()
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return &Worker{
		Exec:        exec,
		Fingerprint: fp,
		Name:        name,
		Capacity:    capacity,
		DialBackoff: 5 * time.Millisecond,
	}
}

// Two workers drain a sweep; every run lands installed in the runner and
// stored in the cache, and both workers exit cleanly on shutdown.
func TestServeCompletesAndInstalls(t *testing.T) {
	cfg := testConfig()
	plan := testPlan(
		experiments.RunKey{Workload: "bfs", Scheme: oskernel.SchemeRadix},
		experiments.RunKey{Workload: "bfs", Scheme: oskernel.SchemeLVM},
		experiments.RunKey{Workload: "mem$", Scheme: oskernel.SchemeRadix},
		experiments.RunKey{Workload: "mem$", Scheme: oskernel.SchemeLVM},
	)
	cache, err := experiments.NewRunCache(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := experiments.NewRunner(cfg)
	sink := &recorder{}
	r.SetSink(sink)

	addr, errc := serveAsync(t, r, plan, Options{Cache: cache})
	exec := func(k experiments.RunKey) (*experiments.RunOutput, error) { return fakeOut(k, 42), nil }
	werrs := make(chan error, 2)
	for _, name := range []string{"alpha", "beta"} {
		wk := newWorker(t, cfg, name, 2, exec)
		go func() { werrs <- wk.Run(addr) }()
	}

	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-werrs; err != nil {
			t.Errorf("worker exit: %v", err)
		}
	}
	for _, key := range plan.Runs {
		out, ok := r.LookupRun(key)
		if !ok {
			t.Fatalf("run %s not installed", key)
		}
		if out.Sim.Cycles != 42 {
			t.Errorf("run %s: cycles %v, want 42", key, out.Sim.Cycles)
		}
		if out.HostSeconds != 0.25 {
			t.Errorf("run %s: HostSeconds %v not carried over the wire", key, out.HostSeconds)
		}
		if _, hit, err := cache.Load(key); err != nil || !hit {
			t.Errorf("run %s not in cache: hit=%v err=%v", key, hit, err)
		}
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.joined) != 2 {
		t.Errorf("%d workers joined, want 2", len(sink.joined))
	}
	if len(sink.done) != len(plan.Runs) {
		t.Errorf("%d RunDone events, want %d", len(sink.done), len(plan.Runs))
	}
	if len(sink.started) != 0 {
		t.Errorf("coordinator simulated %d runs locally", len(sink.started))
	}
}

// A worker whose config fingerprint differs is rejected at the handshake,
// before any run is dispatched; a matching worker then drains the sweep.
func TestServeFingerprintMismatch(t *testing.T) {
	cfg := testConfig()
	plan := testPlan(experiments.RunKey{Workload: "bfs", Scheme: oskernel.SchemeLVM})
	r := experiments.NewRunner(cfg)
	sink := &recorder{}
	r.SetSink(sink)
	addr, errc := serveAsync(t, r, plan, Options{})

	exec := func(k experiments.RunKey) (*experiments.RunOutput, error) { return fakeOut(k, 1), nil }
	bad := newWorker(t, cfg, "impostor", 1, exec)
	bad.Fingerprint = "deadbeefdeadbeef"
	err := bad.Run(addr)
	if err == nil {
		t.Fatal("mismatched fingerprint accepted")
	}
	for _, want := range []string{"rejected", "fingerprint"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("rejection %q does not mention %q", err, want)
		}
	}

	good := newWorker(t, cfg, "genuine", 1, exec)
	gerr := make(chan error, 1)
	go func() { gerr <- good.Run(addr) }()
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := <-gerr; err != nil {
		t.Errorf("worker exit: %v", err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.joined) != 1 {
		t.Errorf("%d workers joined, want only the matching one", len(sink.joined))
	}
}

// A worker that dies mid-run has its in-flight runs requeued (a crash
// attempt, no cooldown) and the sweep completes on the surviving worker.
func TestServeWorkerCrashMidRun(t *testing.T) {
	cfg := testConfig()
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	plan := testPlan(
		experiments.RunKey{Workload: "bfs", Scheme: oskernel.SchemeRadix},
		experiments.RunKey{Workload: "bfs", Scheme: oskernel.SchemeLVM},
	)
	r := experiments.NewRunner(cfg)
	sink := &recorder{}
	r.SetSink(sink)
	addr, errc := serveAsync(t, r, plan, Options{})

	// Raw-protocol crasher: handshake, accept one assignment, drop dead.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := &wire{conn: conn}
	if err := w.send(message{
		Type: msgHello, Proto: protocolVersion,
		SchemaVersion: experiments.RunJSONSchemaVersion,
		Fingerprint:   fp, Worker: "crasher", Capacity: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if m, err := w.recv(); err != nil || m.Type != msgWelcome {
		t.Fatalf("handshake: %v %v", m.Type, err)
	}
	if m, err := w.recv(); err != nil || m.Type != msgAssign {
		t.Fatalf("assignment: %v %v", m.Type, err)
	}
	w.close()
	sink.waitFor(t, "crash detection", func() bool { return len(sink.gone) == 1 })

	survivor := newWorker(t, cfg, "survivor", 2,
		func(k experiments.RunKey) (*experiments.RunOutput, error) { return fakeOut(k, 7), nil })
	serr := make(chan error, 1)
	go func() { serr <- survivor.Run(addr) }()
	if err := <-errc; err != nil {
		t.Fatalf("Serve after crash: %v", err)
	}
	if err := <-serr; err != nil {
		t.Errorf("survivor exit: %v", err)
	}
	for _, key := range plan.Runs {
		if _, ok := r.LookupRun(key); !ok {
			t.Errorf("run %s not installed after crash recovery", key)
		}
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.goneErrs[0] == nil {
		t.Error("crash reported as a clean departure")
	}
}

// An idle worker steals a straggler's run; the first completion wins and
// the straggler's late duplicate is discarded, never re-installed.
func TestServeDuplicateAfterSteal(t *testing.T) {
	cfg := testConfig()
	keyX := experiments.RunKey{Workload: "mem$", Scheme: oskernel.SchemeLVM}
	keyZ := experiments.RunKey{Workload: "mem$", Scheme: oskernel.SchemeRadix}
	plan := testPlan(keyX, keyZ)
	r := experiments.NewRunner(cfg)
	sink := &recorder{}
	r.SetSink(sink)
	addr, errc := serveAsync(t, r, plan, Options{})

	aGate := make(chan struct{})
	bGate := make(chan struct{})
	wait := func(gate chan struct{}, block experiments.RunKey, cycles float64) func(experiments.RunKey) (*experiments.RunOutput, error) {
		return func(k experiments.RunKey) (*experiments.RunOutput, error) {
			if k == block {
				<-gate
			}
			return fakeOut(k, cycles), nil
		}
	}
	// Straggler A takes keyX (plan order) and blocks on it.
	wa := newWorker(t, cfg, "straggler", 1, wait(aGate, keyX, 111))
	aerr := make(chan error, 1)
	go func() { aerr <- wa.Run(addr) }()
	sink.waitFor(t, "straggler's assignment", func() bool { return len(sink.assigns) == 1 })

	// B takes keyZ (the only pending run) and blocks on it.
	wb := newWorker(t, cfg, "plodder", 1, wait(bGate, keyZ, 222))
	berr := make(chan error, 1)
	go func() { berr <- wb.Run(addr) }()
	sink.waitFor(t, "plodder's assignment", func() bool { return len(sink.assigns) == 2 })

	// C finds nothing pending, steals keyX, and wins it. It then steals
	// keyZ too and blocks there, keeping the sweep open for the duplicate.
	cGate := make(chan struct{})
	wc := newWorker(t, cfg, "thief", 1, wait(cGate, keyZ, 333))
	cerr := make(chan error, 1)
	go func() { cerr <- wc.Run(addr) }()
	sink.waitFor(t, "the steal to complete", func() bool { return len(sink.done) == 1 })

	// The straggler's late copy must be discarded as a duplicate …
	close(aGate)
	sink.waitFor(t, "duplicate discard", func() bool { return len(sink.duplicates) == 1 })
	// … which frees the straggler to steal keyZ and finish the sweep.
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	close(bGate)
	close(cGate)
	for _, ch := range []chan error{aerr, berr, cerr} {
		<-ch // exit paths after teardown vary; liveness is what matters
	}

	out, ok := r.LookupRun(keyX)
	if !ok {
		t.Fatalf("stolen run %s not installed", keyX)
	}
	if out.Sim.Cycles != 333 {
		t.Errorf("installed cycles %v: the duplicate overwrote the first completion (want 333)", out.Sim.Cycles)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.duplicates[0] != keyX {
		t.Errorf("duplicate reported for %s, want %s", sink.duplicates[0], keyX)
	}
	if n := countSteals(sink.assigns); n < 1 {
		t.Errorf("no steal recorded in assigns %v", sink.assigns)
	}
}

// A run that fails on every attempt fails the sweep with a wrapped
// ErrRetriesExhausted naming the run; the retry went through a cooldown.
func TestServeRetryExhaustion(t *testing.T) {
	cfg := testConfig()
	key := experiments.RunKey{Workload: "bfs", Scheme: oskernel.SchemeLVM}
	plan := testPlan(key)
	r := experiments.NewRunner(cfg)
	sink := &recorder{}
	r.SetSink(sink)
	addr, errc := serveAsync(t, r, plan, Options{MaxAttempts: 2, RetryBackoff: time.Millisecond})

	wk := newWorker(t, cfg, "doomed", 1,
		func(k experiments.RunKey) (*experiments.RunOutput, error) {
			return nil, errors.New("simulated launch failure")
		})
	werr := make(chan error, 1)
	go func() { werr <- wk.Run(addr) }()

	err := <-errc
	if err == nil {
		t.Fatal("sweep succeeded despite a run failing every attempt")
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("error %v does not wrap ErrRetriesExhausted", err)
	}
	for _, want := range []string{key.String(), "2 attempts", "simulated launch failure"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	<-werr // connection torn down; exact error does not matter
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.retries) != 1 {
		t.Errorf("%d retries recorded, want 1 (attempt 1 of 2)", len(sink.retries))
	}
	if len(sink.assigns) != 2 {
		t.Errorf("%d assignments, want 2 (original + retry)", len(sink.assigns))
	}
}

// Resume after a coordinator restart: a second Serve over a warm cache
// installs everything up front and returns before accepting a single
// connection — zero workers, zero assignments, zero simulations.
func TestServeResumeWarmCache(t *testing.T) {
	cfg := testConfig()
	plan := testPlan(
		experiments.RunKey{Workload: "bfs", Scheme: oskernel.SchemeRadix},
		experiments.RunKey{Workload: "bfs", Scheme: oskernel.SchemeLVM},
	)
	cache, err := experiments.NewRunCache(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	r1 := experiments.NewRunner(cfg)
	r1.SetSink(&recorder{})
	addr, errc := serveAsync(t, r1, plan, Options{Cache: cache})
	wk := newWorker(t, cfg, "filler", 2,
		func(k experiments.RunKey) (*experiments.RunOutput, error) { return fakeOut(k, 9), nil })
	werr := make(chan error, 1)
	go func() { werr <- wk.Run(addr) }()
	if err := <-errc; err != nil {
		t.Fatalf("cold Serve: %v", err)
	}
	if err := <-werr; err != nil {
		t.Errorf("worker exit: %v", err)
	}

	// Fresh coordinator, same cache, no workers started at all.
	r2 := experiments.NewRunner(cfg)
	sink := &recorder{}
	r2.SetSink(sink)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := Serve(ln, r2, plan, Options{Cache: cache}); err != nil {
		t.Fatalf("warm Serve: %v", err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.cached) != len(plan.Runs) {
		t.Errorf("%d runs restored from cache, want %d", len(sink.cached), len(plan.Runs))
	}
	if len(sink.assigns) != 0 || len(sink.started) != 0 || len(sink.joined) != 0 {
		t.Errorf("warm resume dispatched work: assigns=%v started=%v joined=%v",
			sink.assigns, sink.started, sink.joined)
	}
	for _, key := range plan.Runs {
		out, ok := r2.LookupRun(key)
		if !ok {
			t.Fatalf("run %s not restored", key)
		}
		if out.Sim.Cycles != 9 {
			t.Errorf("run %s: cycles %v, want 9", key, out.Sim.Cycles)
		}
	}
}
