package orch

import (
	"fmt"
	"net"
	"sync"
	"time"

	"lvm/internal/experiments"
)

// A Worker connects to a coordinator, executes the runs it is assigned,
// and streams results back until the coordinator shuts the sweep down.
type Worker struct {
	// Exec simulates one run; typically (*experiments.Runner).ExecuteKey.
	// It is called from one goroutine per in-flight assignment, up to
	// Capacity at once.
	Exec func(experiments.RunKey) (*experiments.RunOutput, error)
	// Fingerprint is the worker config's fingerprint; the coordinator
	// rejects the handshake unless it matches its own.
	Fingerprint string
	// Name is a human-readable identity for progress output (host:pid).
	Name string
	// Capacity is the number of runs this worker executes concurrently
	// (min 1).
	Capacity int
	// BudgetBytes advertises the memory budget the coordinator charges
	// dispatched runs against (0 means experiments.DefaultMemBudgetBytes).
	BudgetBytes uint64
	// DialAttempts/DialBackoff retry the initial dial, so workers can be
	// started before the coordinator is listening (0 means 30 / 200ms).
	DialAttempts int
	DialBackoff  time.Duration
}

// Run dials the coordinator at addr and serves assignments until a clean
// shutdown (nil) or a connection/handshake failure (error). In-flight runs
// are always drained before returning, so a result is never abandoned
// mid-send.
func (wk *Worker) Run(addr string) error {
	attempts := wk.DialAttempts
	if attempts <= 0 {
		attempts = 30
	}
	backoff := wk.DialBackoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	var conn net.Conn
	var err error
	for i := 0; i < attempts; i++ {
		if conn, err = net.Dial("tcp", addr); err == nil {
			break
		}
		time.Sleep(backoff)
	}
	if err != nil {
		return fmt.Errorf("orch: worker: dialing %s: %w", addr, err)
	}
	w := &wire{conn: conn}
	defer w.close()

	if err := w.send(message{
		Type:          msgHello,
		Proto:         protocolVersion,
		SchemaVersion: experiments.RunJSONSchemaVersion,
		Fingerprint:   wk.Fingerprint,
		Worker:        wk.Name,
		Capacity:      wk.Capacity,
		BudgetBytes:   wk.BudgetBytes,
	}); err != nil {
		return fmt.Errorf("orch: worker: hello: %w", err)
	}
	m, err := w.recv()
	if err != nil {
		return fmt.Errorf("orch: worker: handshake: %w", err)
	}
	switch m.Type {
	case msgWelcome:
	case msgReject:
		return fmt.Errorf("orch: worker: rejected by coordinator: %s", m.Reason)
	default:
		return fmt.Errorf("orch: worker: unexpected handshake reply %q", m.Type)
	}

	var wg sync.WaitGroup
	for {
		m, err := w.recv()
		if err != nil {
			wg.Wait()
			return fmt.Errorf("orch: worker: connection lost: %w", err)
		}
		switch m.Type {
		case msgAssign:
			if m.Key == nil {
				continue
			}
			key := *m.Key
			wg.Add(1)
			go func() {
				defer wg.Done()
				// A failed send is not handled here: the read loop sees
				// the dead connection and the coordinator requeues.
				w.send(wk.run(key))
			}()
		case msgShutdown:
			wg.Wait()
			return nil
		}
	}
}

// run executes one assignment and builds its result frame.
func (wk *Worker) run(key experiments.RunKey) message {
	res := message{Type: msgResult, Key: &key}
	out, err := wk.Exec(key)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	b, err := experiments.MarshalRunOutput(out)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Output = b
	res.HostSeconds = out.HostSeconds
	return res
}
