package experiments

import (
	"fmt"

	"lvm/internal/experiments/sched"
	"lvm/internal/wallclock"
)

// A Plan is the declarative first phase of the pipeline: the experiments
// to compute, and the deduplicated simulations they require in a
// deterministic (first-appearance) order.
type Plan struct {
	Experiments []Experiment
	Runs        []RunKey
}

// NewPlan collects the RunKeys of the selected experiments in registry
// order and dedupes them. The result depends only on cfg and the
// selection, never on scheduling.
func NewPlan(cfg Config, exps []Experiment) Plan {
	seen := make(map[RunKey]bool)
	var runs []RunKey
	for _, e := range exps {
		if e.Requires == nil {
			continue
		}
		for _, k := range e.Requires(cfg) {
			// Stamp the sweep-wide warmup onto every required key here, so
			// Requires implementations stay warmup-oblivious.
			k.Warmup = cfg.Warmup
			if !seen[k] {
				seen[k] = true
				runs = append(runs, k)
			}
		}
	}
	return Plan{Experiments: exps, Runs: runs}
}

// DefaultMemBudgetBytes bounds the summed simulated physical memory of
// in-flight runs. Host memory per run is a fraction of the simulated size
// (page tables plus allocator metadata, not data pages), so this default
// keeps a full-scale sweep comfortably inside a 16 GB machine while still
// admitting several multi-GB runs at once.
const DefaultMemBudgetBytes = 32 << 30

// ExecOptions bounds a plan execution.
type ExecOptions struct {
	// Workers is the number of simulation worker goroutines (min 1).
	Workers int
	// MemBudgetBytes caps the summed simulated footprint of in-flight
	// runs (0 means DefaultMemBudgetBytes; see sched.Options).
	MemBudgetBytes uint64
	// Shard, when Count > 1, restricts execution to the runs AssignShards
	// gives shard Index. The compute phase needs the full matrix, so
	// sharded execution goes through ExecuteRuns + ShardJSON and the
	// partial documents are recombined with MergeShards.
	Shard ShardSpec
	// Cache, when non-nil, is consulted before simulating (hits skip the
	// simulation entirely) and updated with every newly computed run.
	Cache *RunCache
}

// ExecuteRuns runs the pipeline's execute phase: select the runs this
// host is responsible for (all of them, or one shard), skip the ones
// already computed or restorable from the run cache, build the workloads
// the remainder needs in parallel, execute them on the worker pool, and
// merge the outputs into the runner in plan order. The runner's state
// after ExecuteRuns is bit-for-bit independent of worker count and of the
// cold/warm split; only the Sink's progress stream reflects scheduling.
func (r *Runner) ExecuteRuns(p Plan, opt ExecOptions) error {
	if opt.MemBudgetBytes == 0 {
		opt.MemBudgetBytes = DefaultMemBudgetBytes
	}

	selected := make([]int, 0, len(p.Runs))
	if opt.Shard.enabled() {
		if err := opt.Shard.validate(); err != nil {
			return err
		}
		assign, err := r.AssignPlan(p, opt.Shard.Count)
		if err != nil {
			return err
		}
		for i := range p.Runs {
			if assign[i] == opt.Shard.Index {
				selected = append(selected, i)
			}
		}
	} else {
		for i := range p.Runs {
			selected = append(selected, i)
		}
	}

	// Drop runs already in memory (a warm runner, or outputs installed by
	// MergeShards), then runs restorable from the persistent cache. What
	// remains is the pending set that actually simulates.
	var pending []int
	for _, i := range selected {
		if _, done := r.lookupRun(p.Runs[i]); done {
			continue
		}
		if opt.Cache != nil {
			out, hit, err := opt.Cache.Load(p.Runs[i])
			if err != nil {
				return fmt.Errorf("experiments: %w", err)
			}
			if hit {
				r.installRun(p.Runs[i], out)
				r.sink.RunCached(p.Runs[i])
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return nil
	}

	// Build the workloads the pending runs need — and only those — on the
	// worker pool, in deterministic first-appearance order.
	var names []string
	seenWl := make(map[string]bool)
	for _, i := range pending {
		if k := p.Runs[i]; !seenWl[k.Workload] {
			seenWl[k.Workload] = true
			names = append(names, k.Workload)
		}
	}
	if err := r.BuildWorkloads(names, opt.Workers); err != nil {
		return err
	}

	tasks := make([]sched.Task[RunKey], len(pending))
	for ti, i := range pending {
		w, err := r.Workload(p.Runs[i].Workload)
		if err != nil {
			return err
		}
		tasks[ti] = sched.Task[RunKey]{Key: p.Runs[i], CostBytes: r.runBytes(w)}
	}
	schedOpt := sched.Options{
		Workers:     opt.Workers,
		BudgetBytes: opt.MemBudgetBytes,
		// Correct footprint estimates with the observed host-memory samples
		// as the sweep progresses; admission-only, so results and ordering
		// stay byte-identical.
		CostModel: sched.NewCostModel(),
	}
	if ms, ok := r.sink.(MemSink); ok {
		schedOpt.ObserveMem = func(ti int, s sched.MemSample) {
			ms.RunHostMem(p.Runs[pending[ti]], s)
		}
	}
	outs, err := sched.Run(tasks, schedOpt, r.execute)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	// Merge in plan order — a fixed, deterministic key order independent
	// of which worker finished when.
	r.mu.Lock()
	for ti, i := range pending {
		r.runs[p.Runs[i]] = outs[ti]
	}
	r.mu.Unlock()
	if opt.Cache != nil {
		for ti, i := range pending {
			if err := opt.Cache.Store(p.Runs[i], outs[ti]); err != nil {
				return fmt.Errorf("experiments: %w", err)
			}
		}
	}
	return nil
}

// ExecutePlan runs the full pipeline: the execute phase over the whole run
// matrix (ExecuteRuns), then each experiment's compute phase sequentially.
// The returned results — tables, summaries, and raw structs — are
// bit-for-bit identical at any worker count and whether the runs were
// simulated here, restored from a run cache, or installed by MergeShards.
func (r *Runner) ExecutePlan(p Plan, opt ExecOptions) ([]Result, error) {
	if opt.Shard.enabled() {
		return nil, fmt.Errorf("experiments: ExecutePlan cannot compute tables from shard %s alone; use ExecuteRuns and merge the shards", opt.Shard)
	}
	if opt.Cache != nil {
		// Let the compute phase's bespoke measurements persist their
		// artifacts alongside the run outputs.
		r.SetArtifactCache(opt.Cache)
	}
	if err := r.ExecuteRuns(p, opt); err != nil {
		return nil, err
	}

	results := make([]Result, 0, len(p.Experiments))
	for _, e := range p.Experiments {
		r.sink.ExperimentStart(e.Key, e.Title)
		sw := wallclock.Start()
		res, err := e.Compute(r)
		r.sink.ExperimentDone(e.Key, sw.Seconds(), err)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Key, err)
		}
		res.Key, res.Title = e.Key, e.Title
		results = append(results, res)
	}
	return results, nil
}
