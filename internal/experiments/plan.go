package experiments

import (
	"fmt"

	"lvm/internal/experiments/sched"
	"lvm/internal/wallclock"
)

// A Plan is the declarative first phase of the pipeline: the experiments
// to compute, and the deduplicated simulations they require in a
// deterministic (first-appearance) order.
type Plan struct {
	Experiments []Experiment
	Runs        []RunKey
}

// NewPlan collects the RunKeys of the selected experiments in registry
// order and dedupes them. The result depends only on cfg and the
// selection, never on scheduling.
func NewPlan(cfg Config, exps []Experiment) Plan {
	seen := make(map[RunKey]bool)
	var runs []RunKey
	for _, e := range exps {
		if e.Requires == nil {
			continue
		}
		for _, k := range e.Requires(cfg) {
			if !seen[k] {
				seen[k] = true
				runs = append(runs, k)
			}
		}
	}
	return Plan{Experiments: exps, Runs: runs}
}

// DefaultMemBudgetBytes bounds the summed simulated physical memory of
// in-flight runs. Host memory per run is a fraction of the simulated size
// (page tables plus allocator metadata, not data pages), so this default
// keeps a full-scale sweep comfortably inside a 16 GB machine while still
// admitting several multi-GB runs at once.
const DefaultMemBudgetBytes = 32 << 30

// ExecOptions bounds a plan execution.
type ExecOptions struct {
	// Workers is the number of simulation worker goroutines (min 1).
	Workers int
	// MemBudgetBytes caps the summed simulated footprint of in-flight
	// runs (0 means DefaultMemBudgetBytes; see sched.Options).
	MemBudgetBytes uint64
}

// ExecutePlan runs the pipeline's execute phase: build each required
// workload once, execute the deduped run matrix on the worker pool, merge
// the outputs into the cache in plan order, and then invoke each
// experiment's compute phase sequentially. The returned results — tables,
// summaries, and raw structs — are bit-for-bit identical at any worker
// count; only the Sink's progress stream reflects scheduling.
func (r *Runner) ExecutePlan(p Plan, opt ExecOptions) ([]Result, error) {
	if opt.MemBudgetBytes == 0 {
		opt.MemBudgetBytes = DefaultMemBudgetBytes
	}

	// Build every workload up front, in deterministic first-appearance
	// order, so workers never race on the heavyweight builds.
	var names []string
	seenWl := make(map[string]bool)
	for _, k := range p.Runs {
		if !seenWl[k.Workload] {
			seenWl[k.Workload] = true
			names = append(names, k.Workload)
		}
	}
	tasks := make([]sched.Task[RunKey], len(p.Runs))
	for _, n := range names {
		if _, err := r.Workload(n); err != nil {
			return nil, err
		}
	}
	for i, k := range p.Runs {
		w, err := r.Workload(k.Workload)
		if err != nil {
			return nil, err
		}
		tasks[i] = sched.Task[RunKey]{Key: k, CostBytes: r.runBytes(w)}
	}

	schedOpt := sched.Options{
		Workers:     opt.Workers,
		BudgetBytes: opt.MemBudgetBytes,
	}
	if ms, ok := r.sink.(MemSink); ok {
		schedOpt.ObserveMem = func(i int, s sched.MemSample) {
			ms.RunHostMem(p.Runs[i], s)
		}
	}
	outs, err := sched.Run(tasks, schedOpt, r.execute)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	// Merge in plan order — a fixed, deterministic key order independent
	// of which worker finished when.
	r.mu.Lock()
	for i, k := range p.Runs {
		r.runs[k] = outs[i]
	}
	r.mu.Unlock()

	results := make([]Result, 0, len(p.Experiments))
	for _, e := range p.Experiments {
		r.sink.ExperimentStart(e.Key, e.Title)
		sw := wallclock.Start()
		res, err := e.Compute(r)
		r.sink.ExperimentDone(e.Key, sw.Seconds(), err)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Key, err)
		}
		res.Key, res.Title = e.Key, e.Title
		results = append(results, res)
	}
	return results, nil
}
