package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/sim"
	"lvm/internal/workload"
)

// tinyConfig is a sub-Quick configuration small enough to execute the full
// registry several times in one test.
func tinyConfig() Config {
	return Config{
		Workloads:      []string{"bfs", "gups", "mem$"},
		Params:         workload.QuickParams(),
		Sim:            sim.ScaledConfig(),
		PhysSlackBytes: 1 << 26,
	}
}

func TestNewPlanDedupes(t *testing.T) {
	cfg := tinyConfig()
	exps, err := Select()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(cfg, exps)
	if len(p.Experiments) != len(exps) {
		t.Fatalf("plan has %d experiments, want %d", len(p.Experiments), len(exps))
	}
	seen := make(map[RunKey]int)
	for _, k := range p.Runs {
		seen[k]++
		if seen[k] > 1 {
			t.Errorf("run %s appears %d times in the plan", k, seen[k])
		}
	}
	// fig9 alone needs workloads × 4 schemes × 2 policies; the dedup must
	// not lose any of them.
	if len(p.Runs) < 4*2*len(cfg.Workloads) {
		t.Errorf("plan has only %d runs", len(p.Runs))
	}
	// Planning is deterministic: same inputs, same run list.
	q := NewPlan(cfg, exps)
	if !reflect.DeepEqual(p.Runs, q.Runs) {
		t.Error("two plans over the same config differ")
	}
}

// TestExecutePlanDeterministic is the headline invariant of the scheduler:
// the full registry, executed at 1, 4, and 8 workers, must produce
// bit-for-bit identical rendered tables and identical raw result structs.
func TestExecutePlanDeterministic(t *testing.T) {
	skipSweep(t)
	cfg := tinyConfig()
	exps, err := Select()
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		rendered []string
		raw      []any
	}
	execAt := func(workers int) outcome {
		t.Helper()
		r := NewRunner(cfg)
		results, err := r.ExecutePlan(NewPlan(cfg, exps), ExecOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var o outcome
		for _, res := range results {
			o.rendered = append(o.rendered, res.Render())
			o.raw = append(o.raw, res.Raw)
		}
		return o
	}

	base := execAt(1)
	for _, workers := range []int{4, 8} {
		got := execAt(workers)
		for i := range base.rendered {
			if got.rendered[i] != base.rendered[i] {
				t.Errorf("workers=%d: experiment %s rendered output differs from -j 1:\n-j1:\n%s\n-j%d:\n%s",
					workers, exps[i].Key, base.rendered[i], workers, got.rendered[i])
			}
			if !reflect.DeepEqual(got.raw[i], base.raw[i]) {
				t.Errorf("workers=%d: experiment %s raw result differs from -j 1", workers, exps[i].Key)
			}
		}
	}
}

// TestRunErrorNamesKey asserts the error-propagation contract: a failing
// launch (physical memory far too small for the workload) surfaces as a
// wrapped error that names the RunKey and preserves the phys sentinel —
// never as a panic.
func TestRunErrorNamesKey(t *testing.T) {
	cfg := tinyConfig()
	cfg.PhysBytes = 1 << 20 // 256 pages: no workload fits
	r := NewRunner(cfg)
	_, err := r.Run("gups", oskernel.SchemeLVM, false)
	if err == nil {
		t.Fatal("launch into 1MB of memory succeeded")
	}
	if !errors.Is(err, phys.ErrNoMemory) {
		t.Errorf("error does not wrap phys.ErrNoMemory: %v", err)
	}
	want := RunKey{Workload: "gups", Scheme: oskernel.SchemeLVM}.String()
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the run %q", err, want)
	}
}

func TestExecutePlanPropagatesErrors(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workloads = []string{"gups"}
	cfg.PhysBytes = 1 << 20
	r := NewRunner(cfg)
	exps, err := Select("fig9")
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ExecutePlan(NewPlan(cfg, exps), ExecOptions{Workers: 4})
	if err == nil {
		t.Fatal("plan over 1MB of memory succeeded")
	}
	if !errors.Is(err, phys.ErrNoMemory) {
		t.Errorf("error does not wrap phys.ErrNoMemory: %v", err)
	}
	if !strings.Contains(err.Error(), "gups/lvm") {
		t.Errorf("error %q does not name a failing run", err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	r := NewRunner(tinyConfig())
	_, err := r.Run("nope", oskernel.SchemeLVM, false)
	if err == nil {
		t.Fatal("unknown workload succeeded")
	}
	if !errors.Is(err, workload.ErrUnknown) {
		t.Errorf("error does not wrap workload.ErrUnknown: %v", err)
	}
}

// TestContendersPlanWithoutBuilding covers the -list / -shard path for the
// contenders experiment: planning, cost estimation, and shard assignment
// must handle the new schemes' runs without building a single workload —
// costs are workload-keyed, so victima and revelator rows estimate exactly
// like radix ones.
func TestContendersPlanWithoutBuilding(t *testing.T) {
	cfg := tinyConfig()
	exps, err := Select("contenders")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(cfg, exps)

	want := map[RunKey]bool{}
	for _, name := range cfg.Workloads {
		for _, s := range contenderSchemes {
			want[RunKey{Workload: name, Scheme: s}] = true
		}
	}
	if len(p.Runs) != len(want) {
		t.Fatalf("plan has %d runs, want %d", len(p.Runs), len(want))
	}
	for _, k := range p.Runs {
		if !want[k] {
			t.Errorf("unexpected run %s", k)
		}
	}

	r := NewRunner(cfg)
	costs, err := r.EstimateCosts(p)
	if err != nil {
		t.Fatal(err)
	}
	perWL := map[string]uint64{}
	for i, k := range p.Runs {
		if costs[i] == 0 {
			t.Errorf("run %s estimated at zero cost", k)
		}
		if c, ok := perWL[k.Workload]; ok && c != costs[i] {
			t.Errorf("run %s cost %d differs from its workload's %d (costs must be scheme-independent)",
				k, costs[i], c)
		}
		perWL[k.Workload] = costs[i]
	}

	assign, err := r.AssignPlan(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for i, s := range assign {
		if s < 0 || s >= 3 {
			t.Fatalf("run %s assigned to shard %d", p.Runs[i], s)
		}
		used[s] = true
	}
	if len(used) != 3 {
		t.Errorf("only %d of 3 shards used for %d runs", len(used), len(p.Runs))
	}

	r.mu.Lock()
	built := len(r.wls)
	r.mu.Unlock()
	if built != 0 {
		t.Errorf("planning built %d workloads; -list must not build any", built)
	}
}

// Keys drives the -only flag's help text; every key it lists must be
// selectable and come back in registry order.
func TestKeysMatchRegistry(t *testing.T) {
	keys := Keys()
	if len(keys) != len(Registry()) {
		t.Fatalf("Keys() lists %d keys, registry has %d", len(keys), len(Registry()))
	}
	if keys[0] != "fig2" {
		t.Errorf("first key %q, want fig2 (print order)", keys[0])
	}
	exps, err := Select(keys...)
	if err != nil {
		t.Fatalf("Keys() lists an unselectable key: %v", err)
	}
	for i, e := range exps {
		if e.Key != keys[i] {
			t.Errorf("key %d: Select order %q != Keys order %q", i, e.Key, keys[i])
		}
	}
}

func TestSelectUnknownKey(t *testing.T) {
	_, err := Select("fig9", "nope")
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want unknown-key error naming it, got %v", err)
	}
	exps, err := Select("TABLE2", " fig9 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].Key != "fig9" || exps[1].Key != "table2" {
		t.Errorf("selection wrong: %d entries", len(exps))
	}
}
