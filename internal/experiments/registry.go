package experiments

import (
	"fmt"
	"strings"

	"lvm/internal/oskernel"
	"lvm/internal/stats"
)

// An Experiment is one declarative registry entry: the simulations it
// needs (Requires) and the pure computation over their outputs (Compute).
// Keeping the two phases separate is what lets the scheduler dedupe and
// parallelize the run matrix across every selected experiment before any
// table is rendered.
type Experiment struct {
	// Key is the stable identifier used by lvmbench's -only flag.
	Key string
	// Title is the banner line, including the paper's headline claim.
	Title string
	// Requires enumerates the simulations the compute phase will read.
	// Experiments that only run bespoke one-off simulations (for example
	// the fragmentation sweep) return nil and simulate inside Compute.
	Requires func(cfg Config) []RunKey
	// Compute derives the experiment's result from the runner's cached
	// runs. It must be deterministic given the run outputs.
	Compute func(r *Runner) (Result, error)
}

// Result is one experiment's rendered output plus its raw numbers.
type Result struct {
	Key, Title string
	Table      *stats.Table
	// Summary holds the headline lines printed beneath the table.
	Summary string
	// Raw is the experiment's typed result struct (Fig9Result, …).
	Raw any
}

// Render formats the result exactly as cmd/lvmbench prints it.
func (res Result) Render() string {
	var b strings.Builder
	rule := strings.Repeat("=", 64)
	fmt.Fprintf(&b, "\n%s\n%s\n%s\n", rule, res.Title, rule)
	if res.Table != nil {
		b.WriteString(res.Table.String())
	}
	if res.Summary != "" {
		b.WriteString(res.Summary)
		if !strings.HasSuffix(res.Summary, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// cross enumerates the run matrix workloads × schemes × page policies.
func cross(workloads []string, schemes []oskernel.Scheme, thps ...bool) []RunKey {
	keys := make([]RunKey, 0, len(thps)*len(workloads)*len(schemes))
	for _, thp := range thps {
		for _, name := range workloads {
			for _, s := range schemes {
				keys = append(keys, RunKey{Workload: name, Scheme: s, THP: thp})
			}
		}
	}
	return keys
}

// tenancyNames mirrors MultiTenancy's workload selection (first four).
func tenancyNames(cfg Config) []string {
	names := cfg.Workloads
	if len(names) > 4 {
		names = names[:4]
	}
	return names
}

// Registry returns every experiment of the paper's evaluation in print
// order: the figures, Table 2, and the §7.1–§7.5 characterization studies.
func Registry() []Experiment {
	speedupSchemes := []oskernel.Scheme{
		oskernel.SchemeRadix, oskernel.SchemeECPT, oskernel.SchemeLVM, oskernel.SchemeIdeal,
	}
	mmuSchemes := []oskernel.Scheme{
		oskernel.SchemeRadix, oskernel.SchemeECPT, oskernel.SchemeLVM,
	}
	priorSchemes := []oskernel.Scheme{
		oskernel.SchemeRadix, oskernel.SchemeLVM, oskernel.SchemeECPT,
		oskernel.SchemeASAP, oskernel.SchemeMidgard, oskernel.SchemeFPT,
	}
	lvmOnly := []oskernel.Scheme{oskernel.SchemeLVM}

	return []Experiment{
		{
			Key:   "fig2",
			Title: "Figure 2: virtual memory gap coverage (paper: min 78%)",
			Compute: func(r *Runner) (Result, error) {
				res, err := r.Fig2GapCoverage()
				if err != nil {
					return Result{}, err
				}
				return Result{
					Table:   res.Table,
					Summary: fmt.Sprintf("minimum coverage: %.1f%%", 100*res.Min),
					Raw:     res,
				}, nil
			},
		},
		{
			Key:   "fig3",
			Title: "Figure 3: contiguous free memory on an aged server (paper: ~30% at 256KB, ~0 at 100s of MB)",
			Compute: func(r *Runner) (Result, error) {
				res, err := r.Fig3Contiguity()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "fig9",
			Title: "Figure 9: end-to-end speedups vs radix (paper: LVM avg +14% 4KB / +7% THP, within 1% of ideal)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, speedupSchemes, false, true)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.Fig9Speedups()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "fig10",
			Title: "Figure 10: MMU overhead vs radix (paper: LVM -39% 4KB / -29% THP; walk cycles -52%/-44%)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, mmuSchemes, false, true)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.Fig10MMUOverhead()
				if err != nil {
					return Result{}, err
				}
				return Result{
					Table: res.Table,
					Summary: fmt.Sprintf("LVM walk-cycle reduction: %.1f%% (4KB), %.1f%% (THP); ECPT: %.1f%%, %.1f%%",
						100*res.LVMWalkReduction4K, 100*res.LVMWalkReductionTHP,
						100*res.ECPTWalkReduction4K, 100*res.ECPTWalkReductionTHP),
					Raw: res,
				}, nil
			},
		},
		{
			Key:   "fig11",
			Title: "Figure 11: page walk traffic vs radix (paper: LVM -43%/-34%; ECPT 1.7x/2.1x)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, speedupSchemes, false, true)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.Fig11WalkTraffic()
				if err != nil {
					return Result{}, err
				}
				return Result{
					Table: res.Table,
					Summary: fmt.Sprintf("averages: LVM %.2fx / %.2fx, ECPT %.2fx / %.2fx; LVM vs ideal %.3fx",
						res.AvgLVM4K, res.AvgLVMTHP, res.AvgECPT4K, res.AvgECPTTHP, res.LVMvsIdeal),
					Raw: res,
				}, nil
			},
		},
		{
			Key:   "fig12",
			Title: "Figure 12: cache MPKI vs radix (paper: LVM within ~1%; ECPT +44% L2 / +40% L3)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, mmuSchemes, false)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.Fig12CacheMPKI()
				if err != nil {
					return Result{}, err
				}
				return Result{
					Table: res.Table,
					Summary: fmt.Sprintf("averages: LVM L2 %.3f L3 %.3f; ECPT L2 %.3f L3 %.3f",
						res.AvgLVML2, res.AvgLVML3, res.AvgECPTL2, res.AvgECPTL3),
					Raw: res,
				}, nil
			},
		},
		{
			Key:   "table2",
			Title: "Table 2: learned index size (paper: 96-192B steady state, footprint-independent)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, lvmOnly, false, true)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.Table2IndexSize()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "collisions",
			Title: "§7.3 collision rates (paper: LVM 0.2%/0.6%; Blake2 hash 22%/19%; 2.36 extra accesses/collision)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, lvmOnly, false, true)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.CollisionRates()
				if err != nil {
					return Result{}, err
				}
				return Result{
					Table: res.Table,
					Summary: fmt.Sprintf("averages: LVM %.2f%%/%.2f%%, hash %.1f%%/%.1f%%, extra/coll %.2f",
						100*res.AvgLVM4K, 100*res.AvgLVMTHP, 100*res.AvgHash4K, 100*res.AvgHashTHP, res.AvgExtraPerColl),
					Raw: res,
				}, nil
			},
		},
		{
			Key:   "retrain",
			Title: "§7.3 retraining (paper: at most 3 events, avg 2; mgmt 1.17% avg / 1.91% peak, THP <0.01%)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, lvmOnly, false, true)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.RetrainStats()
				if err != nil {
					return Result{}, err
				}
				return Result{
					Table: res.Table,
					Summary: fmt.Sprintf("max events %d, avg %.1f, avg mgmt %.2f%%",
						res.Max, res.Avg, 100*res.AvgMgmt),
					Raw: res,
				}, nil
			},
		},
		{
			Key:   "memory",
			Title: "§7.3 memory consumption beyond 8B/translation (paper: LVM < ECPT)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, mmuSchemes, false)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.MemoryOverhead()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "fragmentation",
			Title: "§7.3 fragmentation robustness (paper: performance flat, LWC hit >99%)",
			Compute: func(r *Runner) (Result, error) {
				res, err := r.FragmentationRobustness()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "walkcaches",
			Title: "§7.2 TLB/PWC/LWC rates (paper: L2 TLB miss 57-99%, PDE miss 60-99%, LWC hit >99%)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, []oskernel.Scheme{oskernel.SchemeRadix, oskernel.SchemeLVM}, false)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.WalkCacheMissRates()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "ptwl1",
			Title: "§7.2 PTW connected to L1 vs L2 (paper: +11% vs +14%; L1 MPKI +59% radix vs +38% LVM)",
			Compute: func(r *Runner) (Result, error) {
				res, err := r.PTWL1Connection()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "multitenancy",
			Title: "§7.1 multi-tenancy (paper: speedups within 0.5% of solo)",
			Requires: func(cfg Config) []RunKey {
				return cross(tenancyNames(cfg), []oskernel.Scheme{oskernel.SchemeRadix, oskernel.SchemeLVM}, false)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.MultiTenancy()
				if err != nil {
					return Result{}, err
				}
				return Result{
					Table:   res.Table,
					Summary: fmt.Sprintf("max delta: %.3f", res.MaxDelta),
					Raw:     res,
				}, nil
			},
		},
		{
			Key:   "tail",
			Title: "§7.3 memcached tail latency under LVM management churn (paper: p99 unaffected)",
			Compute: func(r *Runner) (Result, error) {
				res, err := r.TailLatency()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "hardware",
			Title: "§7.4 hardware area/power (paper: 3.0x size, 1.5x area, 1.9x power; walker 0.000637mm²)",
			Compute: func(r *Runner) (Result, error) {
				res, err := r.HardwareArea()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			Key:   "priorwork",
			Title: "§7.5 ASAP / Midgard / FPT comparison",
			Requires: func(cfg Config) []RunKey {
				return cross([]string{translationBoundWorkload(cfg)}, priorSchemes, false)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.PriorWork()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
		{
			// Appended after the paper's evaluation so every pre-existing
			// experiment keeps its registry position (and therefore its row
			// order in plans and JSON output).
			Key:   "contenders",
			Title: "Speculative contenders: Victima and Revelator vs radix and LVM (verify-overlap model)",
			Requires: func(cfg Config) []RunKey {
				return cross(cfg.Workloads, contenderSchemes, false)
			},
			Compute: func(r *Runner) (Result, error) {
				res, err := r.Contenders()
				if err != nil {
					return Result{}, err
				}
				return Result{Table: res.Table, Raw: res}, nil
			},
		},
	}
}

// Keys returns every registry key in registry (print) order. cmd/lvmbench
// derives the -only help text and experiment listing from it so they can
// never drift from the registry.
func Keys() []string {
	reg := Registry()
	keys := make([]string, len(reg))
	for i, e := range reg {
		keys[i] = e.Key
	}
	return keys
}

// Select returns the registry entries matching the given keys
// (case-insensitive), in registry order; no keys selects everything.
// Unknown keys are an error listing the valid ones.
func Select(keys ...string) ([]Experiment, error) {
	reg := Registry()
	if len(keys) == 0 {
		return reg, nil
	}
	valid := make(map[string]int, len(reg))
	var names []string
	for i, e := range reg {
		valid[e.Key] = i
		names = append(names, e.Key)
	}
	picked := make([]bool, len(reg))
	for _, k := range keys {
		i, ok := valid[strings.ToLower(strings.TrimSpace(k))]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (valid: %s)", k, strings.Join(names, ", "))
		}
		picked[i] = true
	}
	var out []Experiment
	for i, e := range reg {
		if picked[i] {
			out = append(out, e)
		}
	}
	return out, nil
}
