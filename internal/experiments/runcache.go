package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// cacheEntry is one persisted run. It repeats the schema version and
// config fingerprint so a stale or foreign file is detected even if it was
// copied into the wrong directory by hand.
type cacheEntry struct {
	SchemaVersion int          `json:"schema_version"`
	Fingerprint   string       `json:"fingerprint"`
	Key           keyDoc       `json:"key"`
	Output        runOutputDoc `json:"output"`
	// HostSeconds records how long the cached simulation took when it
	// actually ran — observational, restored only so -timings output has a
	// value, never part of any identity check.
	HostSeconds float64 `json:"host_seconds"`
}

// A RunCache persists completed RunOutputs on disk, one JSON file per
// RunKey, under a directory namespaced by the schema version and the sweep
// config's fingerprint. Repeated sweeps under the same config load their
// runs back instead of simulating; any config or schema change lands in a
// fresh namespace, so stale entries can never be replayed into a different
// sweep. A present-but-unreadable entry is an error naming the key and
// file — never a silent re-simulation and never a wrong table.
type RunCache struct {
	dir         string
	fingerprint string
}

// NewRunCache opens (creating if needed) the cache namespace for cfg under
// root.
func NewRunCache(root string, cfg Config) (*RunCache, error) {
	fp, err := cfg.Fingerprint()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(root, fmt.Sprintf("v%d-%s", RunJSONSchemaVersion, fp[:16]))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: run cache: %w", err)
	}
	return &RunCache{dir: dir, fingerprint: fp}, nil
}

// Dir returns the namespace directory entries live in.
func (c *RunCache) Dir() string { return c.dir }

// sanitizeName makes a key component portable as a file-name fragment
// (mem$ → mem_).
func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// entryPath maps a RunKey to its file. Scheme names and THP are embedded
// readably; the workload name is sanitized (mem$ → mem_) so every key maps
// to a distinct portable file name.
func (c *RunCache) entryPath(key RunKey) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s__%s__thp-%t.json", sanitizeName(key.Workload), sanitizeName(string(key.Scheme)), key.THP))
}

// Load returns the cached output for key. A missing entry is (nil, false,
// nil); a present but corrupt or mismatched entry is an error naming the
// key and file.
func (c *RunCache) Load(key RunKey) (*RunOutput, bool, error) {
	path := c.entryPath(key)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("run cache: %s: reading %s: %w", key, path, err)
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, false, fmt.Errorf("run cache: %s: corrupt entry %s: %w", key, path, err)
	}
	if e.SchemaVersion != RunJSONSchemaVersion {
		return nil, false, fmt.Errorf("run cache: %s: entry %s has schema v%d, want v%d", key, path, e.SchemaVersion, RunJSONSchemaVersion)
	}
	if e.Fingerprint != c.fingerprint {
		return nil, false, fmt.Errorf("run cache: %s: entry %s has config fingerprint %.12s, want %.12s", key, path, e.Fingerprint, c.fingerprint)
	}
	if got := e.Key.key(); got != key {
		return nil, false, fmt.Errorf("run cache: %s: entry %s holds run %s", key, path, got)
	}
	out, err := decodeRunOutput(e.Output)
	if err != nil {
		return nil, false, fmt.Errorf("run cache: %s: corrupt entry %s: %w", key, path, err)
	}
	out.HostSeconds = e.HostSeconds
	return out, true, nil
}

// Store persists a completed run atomically (write to a temp file in the
// same directory, then rename), so a crashed or concurrent sweep can never
// leave a truncated entry behind.
func (c *RunCache) Store(key RunKey, out *RunOutput) error {
	e := cacheEntry{
		SchemaVersion: RunJSONSchemaVersion,
		Fingerprint:   c.fingerprint,
		Key:           keyToDoc(key),
		Output:        encodeRunOutput(out),
		HostSeconds:   out.HostSeconds,
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("run cache: %s: %w", key, err)
	}
	if err := c.writeAtomic(c.entryPath(key), b); err != nil {
		return fmt.Errorf("run cache: %s: %w", key, err)
	}
	return nil
}

// writeAtomic lands b at path via a same-directory temp file + rename.
func (c *RunCache) writeAtomic(path string, b []byte) error {
	tmp, err := os.CreateTemp(c.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("writing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// artifactEntry is one persisted compute-phase measurement (see
// artifactFor). Like cacheEntry it repeats the schema version and config
// fingerprint so a stale or foreign file is a hard error, never a wrong
// table.
type artifactEntry struct {
	SchemaVersion int             `json:"schema_version"`
	Fingerprint   string          `json:"fingerprint"`
	Name          string          `json:"name"`
	Payload       json.RawMessage `json:"payload"`
}

// artifactPath maps an artifact name to its file. The "artifact--" prefix
// keeps the namespace disjoint from run entries, whose names always
// contain "__".
func (c *RunCache) artifactPath(name string) string {
	return filepath.Join(c.dir, "artifact--"+sanitizeName(name)+".json")
}

// LoadArtifact decodes the named artifact into v (a pointer). A missing
// entry is (false, nil); a present but corrupt or mismatched entry is an
// error naming the artifact and file.
func (c *RunCache) LoadArtifact(name string, v any) (bool, error) {
	path := c.artifactPath(name)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("run cache: artifact %s: reading %s: %w", name, path, err)
	}
	var e artifactEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return false, fmt.Errorf("run cache: artifact %s: corrupt entry %s: %w", name, path, err)
	}
	if e.SchemaVersion != RunJSONSchemaVersion {
		return false, fmt.Errorf("run cache: artifact %s: entry %s has schema v%d, want v%d", name, path, e.SchemaVersion, RunJSONSchemaVersion)
	}
	if e.Fingerprint != c.fingerprint {
		return false, fmt.Errorf("run cache: artifact %s: entry %s has config fingerprint %.12s, want %.12s", name, path, e.Fingerprint, c.fingerprint)
	}
	if e.Name != name {
		return false, fmt.Errorf("run cache: artifact %s: entry %s holds artifact %s", name, path, e.Name)
	}
	if err := json.Unmarshal(e.Payload, v); err != nil {
		return false, fmt.Errorf("run cache: artifact %s: corrupt entry %s: %w", name, path, err)
	}
	return true, nil
}

// StoreArtifact persists one compute-phase measurement atomically.
func (c *RunCache) StoreArtifact(name string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("run cache: artifact %s: %w", name, err)
	}
	e := artifactEntry{
		SchemaVersion: RunJSONSchemaVersion,
		Fingerprint:   c.fingerprint,
		Name:          name,
		Payload:       payload,
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("run cache: artifact %s: %w", name, err)
	}
	if err := c.writeAtomic(c.artifactPath(name), b); err != nil {
		return fmt.Errorf("run cache: artifact %s: %w", name, err)
	}
	return nil
}
