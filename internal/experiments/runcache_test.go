package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"lvm/internal/oskernel"
)

func testKey() RunKey { return RunKey{Workload: "mem$", Scheme: oskernel.SchemeLVM} }

func TestRunCacheRoundTrip(t *testing.T) {
	c, err := NewRunCache(t.TempDir(), jsonSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey()

	if _, hit, err := c.Load(key); err != nil || hit {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}

	want := fakeOutput(key, 3)
	if err := c.Store(key, want); err != nil {
		t.Fatal(err)
	}
	got, hit, err := c.Load(key)
	if err != nil || !hit {
		t.Fatalf("Load after Store: hit=%v err=%v", hit, err)
	}
	// Compare through the canonical wire form: metric insertion order is
	// allowed to differ, nothing else is.
	if !reflect.DeepEqual(encodeRunOutput(got), encodeRunOutput(want)) {
		t.Errorf("round trip changed the output:\n got %+v\nwant %+v", encodeRunOutput(got), encodeRunOutput(want))
	}
	if got.HostSeconds != want.HostSeconds {
		t.Errorf("HostSeconds %v, want %v", got.HostSeconds, want.HostSeconds)
	}
}

func TestRunCacheNamespacesByConfig(t *testing.T) {
	root := t.TempDir()
	cfgA := jsonSweepConfig()
	cfgB := jsonSweepConfig()
	cfgB.Params.Seed++
	a, err := NewRunCache(root, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunCache(root, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dir() == b.Dir() {
		t.Fatalf("different configs share namespace %s", a.Dir())
	}
	key := testKey()
	if err := a.Store(key, fakeOutput(key, 1)); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := b.Load(key); err != nil || hit {
		t.Errorf("config B saw config A's entry: hit=%v err=%v", hit, err)
	}
}

func TestRunCacheCorruptEntry(t *testing.T) {
	c, err := NewRunCache(t.TempDir(), jsonSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey()
	if err := c.Store(key, fakeOutput(key, 1)); err != nil {
		t.Fatal(err)
	}
	path := c.entryPath(key)
	if err := os.WriteFile(path, []byte("{ truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.Load(key)
	if err == nil {
		t.Fatal("corrupt entry loaded without error")
	}
	for _, want := range []string{key.String(), path, "corrupt"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRunCacheKeyMismatch(t *testing.T) {
	c, err := NewRunCache(t.TempDir(), jsonSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	keyA := RunKey{Workload: "bfs", Scheme: oskernel.SchemeRadix}
	keyB := RunKey{Workload: "bfs", Scheme: oskernel.SchemeLVM}
	if err := c.Store(keyA, fakeOutput(keyA, 1)); err != nil {
		t.Fatal(err)
	}
	// A hand-copied entry file must be rejected by the embedded key.
	b, err := os.ReadFile(c.entryPath(keyA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.entryPath(keyB), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Load(keyB); err == nil || !strings.Contains(err.Error(), keyA.String()) {
		t.Errorf("copied entry accepted or error unhelpful: %v", err)
	}
}

func TestRunCacheStaleEntryRejected(t *testing.T) {
	c, err := NewRunCache(t.TempDir(), jsonSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey()
	if err := c.Store(key, fakeOutput(key, 1)); err != nil {
		t.Fatal(err)
	}
	rewrite := func(f func(*cacheEntry)) {
		t.Helper()
		b, err := os.ReadFile(c.entryPath(key))
		if err != nil {
			t.Fatal(err)
		}
		var e cacheEntry
		if err := json.Unmarshal(b, &e); err != nil {
			t.Fatal(err)
		}
		f(&e)
		out, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(c.entryPath(key), out, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rewrite(func(e *cacheEntry) { e.SchemaVersion = RunJSONSchemaVersion - 1 })
	if _, _, err := c.Load(key); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("stale schema accepted: %v", err)
	}

	if err := c.Store(key, fakeOutput(key, 1)); err != nil {
		t.Fatal(err)
	}
	rewrite(func(e *cacheEntry) { e.Fingerprint = "beefbeefbeefbeef" })
	if _, _, err := c.Load(key); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign fingerprint accepted: %v", err)
	}
}

// countingSink records which pipeline events fired, for the warm-cache
// zero-simulation assertion.
type countingSink struct {
	mu      sync.Mutex
	started []RunKey
	cached  []RunKey
}

func (s *countingSink) RunStart(k RunKey) {
	s.mu.Lock()
	s.started = append(s.started, k)
	s.mu.Unlock()
}
func (s *countingSink) RunCached(k RunKey) {
	s.mu.Lock()
	s.cached = append(s.cached, k)
	s.mu.Unlock()
}
func (s *countingSink) RunDone(RunKey, float64, error)        {}
func (s *countingSink) ExperimentStart(string, string)        {}
func (s *countingSink) ExperimentDone(string, float64, error) {}

// The cache acceptance test: a cold sweep simulates everything and fills
// the cache; a warm sweep over a fresh runner simulates nothing, reports
// every run as cached, and produces a byte-identical document. A corrupt
// entry surfaces as an error naming the run, never as a silent re-run.
func TestRunCacheColdWarmSweep(t *testing.T) {
	skipSweep(t)
	cfg := jsonSweepConfig()
	plan := jsonSweepPlan(cfg)
	cache, err := NewRunCache(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	cold := &countingSink{}
	r1 := NewRunner(cfg)
	r1.SetSink(cold)
	if _, err := r1.ExecutePlan(plan, ExecOptions{Workers: 2, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if len(cold.started) != len(plan.Runs) || len(cold.cached) != 0 {
		t.Fatalf("cold sweep: %d started, %d cached; want %d/0", len(cold.started), len(cold.cached), len(plan.Runs))
	}
	coldJSON, err := r1.RunsJSON(plan, RunJSONOptions{})
	if err != nil {
		t.Fatal(err)
	}

	warm := &countingSink{}
	r2 := NewRunner(cfg)
	r2.SetSink(warm)
	if _, err := r2.ExecutePlan(plan, ExecOptions{Workers: 2, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if len(warm.started) != 0 {
		t.Errorf("warm sweep simulated %d runs: %v", len(warm.started), warm.started)
	}
	if len(warm.cached) != len(plan.Runs) {
		t.Errorf("warm sweep reported %d cached runs, want %d", len(warm.cached), len(plan.Runs))
	}
	warmJSON, err := r2.RunsJSON(plan, RunJSONOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Error("warm-cache document differs from the cold one")
	}

	// Corrupt one entry: the next sweep must fail loudly, naming the run.
	bad := plan.Runs[1]
	if err := os.WriteFile(cache.entryPath(bad), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := NewRunner(cfg)
	if err := r3.ExecuteRuns(plan, ExecOptions{Workers: 2, Cache: cache}); err == nil {
		t.Fatal("corrupt cache entry did not fail the sweep")
	} else if !strings.Contains(err.Error(), bad.String()) {
		t.Errorf("error %q does not name run %s", err, bad)
	}
}
