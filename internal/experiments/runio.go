package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"lvm/internal/metrics"
	"lvm/internal/sim"
)

// This file is the serialization seam shared by the shard/merge path and
// the persistent run cache: a RunOutput round-trips losslessly through
// runOutputDoc, so a merged or cache-restored runner computes every
// experiment table byte-identically to one that simulated locally.
//
// HostSeconds deliberately never appears in runOutputDoc — host wall-clock
// is observational and machine-dependent, and keeping it out of the
// round-tripped output is what keeps merge identity independent of which
// host executed a run. Shard documents carry it in a separate, clearly
// labeled timing field instead.

// typedMetric is one metrics.Value with its kind preserved — the flat
// metrics.Set JSON form loses the counter/gauge distinction for integral
// gauges, which would break the exact-vs-tolerant comparison split after a
// round trip.
type typedMetric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter" | "gauge"
	Uint  uint64  `json:"uint,omitempty"`
	Float float64 `json:"float,omitempty"`
}

// encodeMetrics flattens a Set in sorted-name order (the serialization
// order of every consumer). Non-finite gauges are pinned to 0 exactly like
// metrics.AppendFloat pins them, so the typed and flat views of one
// document can never disagree.
func encodeMetrics(s metrics.Set) []typedMetric {
	vals := s.Sorted()
	out := make([]typedMetric, 0, len(vals))
	for _, v := range vals {
		m := typedMetric{Name: v.Name}
		if v.Kind == metrics.KindCounter {
			m.Kind = "counter"
			m.Uint = v.Uint
		} else {
			m.Kind = "gauge"
			m.Float = v.Float
			if math.IsNaN(m.Float) || math.IsInf(m.Float, 0) {
				m.Float = 0
			}
		}
		out = append(out, m)
	}
	return out
}

// decodeMetrics rebuilds a Set. Insertion order becomes sorted-name order,
// which is unobservable: every consumer reads sets via Get or Sorted.
func decodeMetrics(ms []typedMetric) (metrics.Set, error) {
	var s metrics.Set
	for _, m := range ms {
		switch m.Kind {
		case "counter":
			s.Counter(m.Name, m.Uint)
		case "gauge":
			s.Gauge(m.Name, m.Float)
		default:
			return metrics.Set{}, fmt.Errorf("metric %q has unknown kind %q", m.Name, m.Kind)
		}
	}
	return s, nil
}

// simDoc mirrors sim.Result field for field. encoding/json round-trips
// float64 exactly (shortest-round-trip formatting), so the scalar fields
// come back bit-identical.
type simDoc struct {
	Workload     string        `json:"workload"`
	Scheme       string        `json:"scheme"`
	Instructions uint64        `json:"instructions"`
	Accesses     uint64        `json:"accesses"`
	Cycles       float64       `json:"cycles"`
	TLBCycles    float64       `json:"tlb_cycles"`
	WalkCycles   float64       `json:"walk_cycles"`
	Walks        uint64        `json:"walks"`
	WalkRefs     uint64        `json:"walk_refs"`
	L1TLBMisses  uint64        `json:"l1_tlb_misses"`
	L2TLBMisses  uint64        `json:"l2_tlb_misses"`
	L2TLBMiss    float64       `json:"l2_tlb_miss"`
	L2MPKI       float64       `json:"l2_mpki"`
	L3MPKI       float64       `json:"l3_mpki"`
	L1MPKI       float64       `json:"l1_mpki"`
	DRAMAccesses uint64        `json:"dram_accesses"`
	Faults       uint64        `json:"faults"`
	Metrics      []typedMetric `json:"metrics"`
}

// runOutputDoc is the lossless wire form of a RunOutput (minus
// HostSeconds; see the file comment).
type runOutputDoc struct {
	Sim            simDoc  `json:"sim"`
	IndexBytes     int     `json:"index_bytes"`
	IndexPeakBytes int     `json:"index_peak_bytes"`
	IndexDepth     int     `json:"index_depth"`
	IndexLeaves    int     `json:"index_leaves"`
	LWCHitRate     float64 `json:"lwc_hit_rate"`
	Retrains       uint64  `json:"retrains"`
	Rebuilds       uint64  `json:"rebuilds"`
	Overflows      uint64  `json:"overflows"`
	MgmtCycles     uint64  `json:"mgmt_cycles"`
	PWCPDEMissRate float64 `json:"pwc_pde_miss_rate"`
	OverheadBytes  uint64  `json:"overhead_bytes"`
	CollisionRate  float64 `json:"collision_rate"`
	ExtraPerColl   float64 `json:"extra_per_collision"`
}

func encodeRunOutput(out *RunOutput) runOutputDoc {
	return runOutputDoc{
		Sim: simDoc{
			Workload:     out.Sim.Workload,
			Scheme:       out.Sim.Scheme,
			Instructions: out.Sim.Instructions,
			Accesses:     out.Sim.Accesses,
			Cycles:       out.Sim.Cycles,
			TLBCycles:    out.Sim.TLBCycles,
			WalkCycles:   out.Sim.WalkCycles,
			Walks:        out.Sim.Walks,
			WalkRefs:     out.Sim.WalkRefs,
			L1TLBMisses:  out.Sim.L1TLBMisses,
			L2TLBMisses:  out.Sim.L2TLBMisses,
			L2TLBMiss:    out.Sim.L2TLBMiss,
			L2MPKI:       out.Sim.L2MPKI,
			L3MPKI:       out.Sim.L3MPKI,
			L1MPKI:       out.Sim.L1MPKI,
			DRAMAccesses: out.Sim.DRAMAccesses,
			Faults:       out.Sim.Faults,
			Metrics:      encodeMetrics(out.Sim.Metrics),
		},
		IndexBytes:     out.IndexBytes,
		IndexPeakBytes: out.IndexPeakBytes,
		IndexDepth:     out.IndexDepth,
		IndexLeaves:    out.IndexLeaves,
		LWCHitRate:     out.LWCHitRate,
		Retrains:       out.Retrains,
		Rebuilds:       out.Rebuilds,
		Overflows:      out.Overflows,
		MgmtCycles:     out.MgmtCycles,
		PWCPDEMissRate: out.PWCPDEMissRate,
		OverheadBytes:  out.OverheadBytes,
		CollisionRate:  out.CollisionRate,
		ExtraPerColl:   out.ExtraPerColl,
	}
}

func decodeRunOutput(d runOutputDoc) (*RunOutput, error) {
	m, err := decodeMetrics(d.Sim.Metrics)
	if err != nil {
		return nil, err
	}
	return &RunOutput{
		Sim: sim.Result{
			Workload:     d.Sim.Workload,
			Scheme:       d.Sim.Scheme,
			Instructions: d.Sim.Instructions,
			Accesses:     d.Sim.Accesses,
			Cycles:       d.Sim.Cycles,
			TLBCycles:    d.Sim.TLBCycles,
			WalkCycles:   d.Sim.WalkCycles,
			Walks:        d.Sim.Walks,
			WalkRefs:     d.Sim.WalkRefs,
			L1TLBMisses:  d.Sim.L1TLBMisses,
			L2TLBMisses:  d.Sim.L2TLBMisses,
			L2TLBMiss:    d.Sim.L2TLBMiss,
			L2MPKI:       d.Sim.L2MPKI,
			L3MPKI:       d.Sim.L3MPKI,
			L1MPKI:       d.Sim.L1MPKI,
			DRAMAccesses: d.Sim.DRAMAccesses,
			Faults:       d.Sim.Faults,
			Metrics:      m,
		},
		IndexBytes:     d.IndexBytes,
		IndexPeakBytes: d.IndexPeakBytes,
		IndexDepth:     d.IndexDepth,
		IndexLeaves:    d.IndexLeaves,
		LWCHitRate:     d.LWCHitRate,
		Retrains:       d.Retrains,
		Rebuilds:       d.Rebuilds,
		Overflows:      d.Overflows,
		MgmtCycles:     d.MgmtCycles,
		PWCPDEMissRate: d.PWCPDEMissRate,
		OverheadBytes:  d.OverheadBytes,
		CollisionRate:  d.CollisionRate,
		ExtraPerColl:   d.ExtraPerColl,
	}, nil
}

// MarshalRunOutput serializes out through the lossless wire form (minus
// HostSeconds; see the file comment). The orchestrator's wire protocol and
// any other transport that moves RunOutputs between processes must go
// through this pair so transported runs stay byte-identical to local ones.
func MarshalRunOutput(out *RunOutput) ([]byte, error) {
	return json.Marshal(encodeRunOutput(out))
}

// UnmarshalRunOutput is the inverse of MarshalRunOutput. HostSeconds comes
// back zero; transports carry it separately if they want timings.
func UnmarshalRunOutput(b []byte) (*RunOutput, error) {
	var d runOutputDoc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, err
	}
	return decodeRunOutput(d)
}

// Fingerprint hashes the full sweep configuration together with the
// document schema version. Shard documents must carry matching
// fingerprints to merge, and the run cache namespaces its entries by it,
// so outputs computed under different configs (or schema layouts) can
// never be combined or replayed as if they were interchangeable.
func (c Config) Fingerprint() (string, error) {
	b, err := json.Marshal(struct {
		SchemaVersion int    `json:"schema_version"`
		Config        Config `json:"config"`
	}{RunJSONSchemaVersion, c})
	if err != nil {
		return "", fmt.Errorf("experiments: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
