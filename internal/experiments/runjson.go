package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"

	"lvm/internal/metrics"
	"lvm/internal/oskernel"
)

// RunJSONSchemaVersion identifies the lvmbench -json layout. Bump it when
// renaming fields or metric names — the regression gate refuses to compare
// documents of different versions rather than reporting spurious diffs,
// and the shard/cache machinery refuses to reuse stale documents.
//
// v2: added the optional shard-document sections (fingerprint, shard,
// config, experiments, plan) and the per-run lossless output payload.
const RunJSONSchemaVersion = 2

// RunJSONOptions selects what RunsJSON emits.
type RunJSONOptions struct {
	// Timings adds host wall-clock fields (host_seconds per run). These
	// are observational and machine-dependent, so they are off by default:
	// without them the document is byte-identical at any worker count.
	Timings bool
}

// runDoc is one run in the JSON document. Field order is the serialization
// order (encoding/json emits struct fields in declaration order).
type runDoc struct {
	Workload    string      `json:"workload"`
	Scheme      string      `json:"scheme"`
	THP         bool        `json:"thp"`
	Warmup      int         `json:"warmup,omitempty"`
	Metrics     metrics.Set `json:"metrics"`
	HostSeconds float64     `json:"host_seconds,omitempty"`
	// Output is the lossless RunOutput payload. Only shard documents carry
	// it (MergeShards needs to reconstruct the runner); the default -json
	// document stays flat-metrics-only for the regression gate.
	Output *runOutputDoc `json:"output,omitempty"`
}

// keyDoc is a RunKey on the wire.
type keyDoc struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	THP      bool   `json:"thp"`
	Warmup   int    `json:"warmup,omitempty"`
}

func keyToDoc(k RunKey) keyDoc { return keyDoc{k.Workload, string(k.Scheme), k.THP, k.Warmup} }

func (d keyDoc) key() RunKey {
	return RunKey{Workload: d.Workload, Scheme: oskernel.Scheme(d.Scheme), THP: d.THP, Warmup: d.Warmup}
}

// shardDoc identifies which partition of the plan a partial document holds.
type shardDoc struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

type runsDoc struct {
	SchemaVersion int `json:"schema_version"`
	// The remaining header fields appear only in shard documents, which
	// must be self-describing: MergeShards revalidates that every shard
	// was cut from the same sweep (fingerprint, config, experiments) and
	// the same plan before it recombines outputs.
	Fingerprint string    `json:"fingerprint,omitempty"`
	Shard       *shardDoc `json:"shard,omitempty"`
	Config      *Config   `json:"config,omitempty"`
	Experiments []string  `json:"experiments,omitempty"`
	Plan        []keyDoc  `json:"plan,omitempty"`
	Runs        []runDoc  `json:"runs"`
}

// schemeMetrics folds a run's scheme-side statistics into the metric
// namespace under "scheme." — integer stats as counters, rates as gauges —
// so the JSON document is one uniform name space.
func schemeMetrics(out *RunOutput) metrics.Set {
	var s metrics.Set
	s.Counter("scheme.index_bytes", uint64(out.IndexBytes))
	s.Counter("scheme.index_peak_bytes", uint64(out.IndexPeakBytes))
	s.Counter("scheme.index_depth", uint64(out.IndexDepth))
	s.Counter("scheme.index_leaves", uint64(out.IndexLeaves))
	s.Counter("scheme.retrains", out.Retrains)
	s.Counter("scheme.rebuilds", out.Rebuilds)
	s.Counter("scheme.overflows", out.Overflows)
	s.Counter("scheme.mgmt_cycles", out.MgmtCycles)
	s.Counter("scheme.overhead_bytes", out.OverheadBytes)
	s.Gauge("scheme.lwc_hit_rate", out.LWCHitRate)
	s.Gauge("scheme.pwc_pde_miss_rate", out.PWCPDEMissRate)
	s.Gauge("scheme.collision_rate", out.CollisionRate)
	s.Gauge("scheme.extra_per_collision", out.ExtraPerColl)
	return s
}

// flatRunDoc renders one executed run in the flat-metrics form shared by
// the default -json document and the shard partials.
func flatRunDoc(k RunKey, out *RunOutput, timings bool) runDoc {
	var m metrics.Set
	m.Merge("", out.Sim.Metrics)
	m.Merge("", schemeMetrics(out))
	d := runDoc{
		Workload: k.Workload,
		Scheme:   string(k.Scheme),
		THP:      k.THP,
		Warmup:   k.Warmup,
		Metrics:  m,
	}
	if timings {
		d.HostSeconds = out.HostSeconds
	}
	return d
}

// RunsJSON serializes the plan's run matrix — every simulation ExecutePlan
// produced, in plan order — as an indented JSON document. All metric maps
// are emitted in sorted key order, so the bytes are fully deterministic;
// with opt.Timings the per-run host_seconds fields (and only those) vary
// between invocations.
func (r *Runner) RunsJSON(p Plan, opt RunJSONOptions) ([]byte, error) {
	doc := runsDoc{SchemaVersion: RunJSONSchemaVersion, Runs: make([]runDoc, 0, len(p.Runs))}
	for _, k := range p.Runs {
		out, ok := r.lookupRun(k)
		if !ok {
			return nil, fmt.Errorf("experiments: RunsJSON: run %s not executed", k)
		}
		doc.Runs = append(doc.Runs, flatRunDoc(k, out, opt.Timings))
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiments: RunsJSON: %w", err)
	}
	return append(b, '\n'), nil
}

// GateOptions tunes CompareRunsJSON.
type GateOptions struct {
	// GaugeRelTol is the relative tolerance for gauge (non-integer)
	// metrics. Gauges derive deterministically from counters, so the
	// default is tight — it only absorbs float-formatting differences.
	GaugeRelTol float64
	// HostFactor bounds wall-clock fields: current may be at most this
	// factor above baseline. Zero ignores wall-clock fields entirely.
	// Wall-clock is noisy by nature; the default gate uses a generous
	// factor as a runaway-regression tripwire, not a benchmark.
	HostFactor float64
	// MaxDiffs caps the mismatches listed in the error (0 means 20).
	MaxDiffs int
}

// DefaultGateOptions is what cmd/benchgate and CI use.
func DefaultGateOptions() GateOptions {
	return GateOptions{GaugeRelTol: 1e-9, HostFactor: 100, MaxDiffs: 20}
}

// parsed mirror of the document for comparison: metric values stay as
// json.Number so integer counters can be compared exactly.
type parsedRun struct {
	Workload    string                 `json:"workload"`
	Scheme      string                 `json:"scheme"`
	THP         bool                   `json:"thp"`
	Warmup      int                    `json:"warmup"`
	Metrics     map[string]json.Number `json:"metrics"`
	HostSeconds float64                `json:"host_seconds"`
}

type parsedDoc struct {
	SchemaVersion int         `json:"schema_version"`
	Runs          []parsedRun `json:"runs"`
}

func (r parsedRun) key() string {
	if r.Warmup > 0 {
		return fmt.Sprintf("%s/%s thp=%t warmup=%d", r.Workload, r.Scheme, r.THP, r.Warmup)
	}
	return fmt.Sprintf("%s/%s thp=%t", r.Workload, r.Scheme, r.THP)
}

// isIntNumber reports whether a json.Number was serialized as an integer —
// the counter/gauge discriminator in the schema (counters are emitted
// without a fraction or exponent, gauges via metrics.AppendFloat).
func isIntNumber(n json.Number) bool {
	return !strings.ContainsAny(n.String(), ".eE")
}

// CompareRunsJSON diffs a current lvmbench -json document against a
// baseline: counters must match exactly, gauges within opt.GaugeRelTol,
// wall-clock fields within opt.HostFactor, and the run matrix and metric
// name sets must be identical. A non-nil error lists every mismatch (up to
// opt.MaxDiffs).
func CompareRunsJSON(baseline, current []byte, opt GateOptions) error {
	if opt.MaxDiffs == 0 {
		opt.MaxDiffs = 20
	}
	var base, cur parsedDoc
	if err := json.Unmarshal(baseline, &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return fmt.Errorf("current: %w", err)
	}
	if base.SchemaVersion != cur.SchemaVersion {
		return fmt.Errorf("schema version mismatch: baseline v%d, current v%d — regenerate the baseline",
			base.SchemaVersion, cur.SchemaVersion)
	}

	var diffs []string
	add := func(format string, args ...any) {
		if len(diffs) <= opt.MaxDiffs {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}

	if len(base.Runs) != len(cur.Runs) {
		add("run count: baseline %d, current %d", len(base.Runs), len(cur.Runs))
	}
	n := len(base.Runs)
	if len(cur.Runs) < n {
		n = len(cur.Runs)
	}
	for i := 0; i < n; i++ {
		b, c := base.Runs[i], cur.Runs[i]
		if b.key() != c.key() {
			add("run %d: baseline %s, current %s", i, b.key(), c.key())
			continue
		}
		compareRun(b, c, opt, add)
	}

	if len(diffs) == 0 {
		return nil
	}
	if len(diffs) > opt.MaxDiffs {
		diffs = append(diffs[:opt.MaxDiffs], "... (more diffs suppressed)")
	}
	return fmt.Errorf("%d difference(s):\n  %s", len(diffs), strings.Join(diffs, "\n  "))
}

func compareRun(b, c parsedRun, opt GateOptions, add func(string, ...any)) {
	names := make([]string, 0, len(b.Metrics)+len(c.Metrics))
	for name := range b.Metrics {
		names = append(names, name)
	}
	for name := range c.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	names = slices.Compact(names)
	for _, name := range names {
		bv, inBase := b.Metrics[name]
		cv, inCur := c.Metrics[name]
		switch {
		case !inBase:
			add("%s %s: not in baseline (current %s) — regenerate the baseline", b.key(), name, cv)
		case !inCur:
			add("%s %s: missing from current (baseline %s)", b.key(), name, bv)
		case isIntNumber(bv) && isIntNumber(cv):
			if bv.String() != cv.String() {
				add("%s %s: baseline %s, current %s", b.key(), name, bv, cv)
			}
		default:
			bf, errB := bv.Float64()
			cf, errC := cv.Float64()
			if errB != nil || errC != nil {
				add("%s %s: unparseable (baseline %s, current %s)", b.key(), name, bv, cv)
				continue
			}
			if !withinRel(bf, cf, opt.GaugeRelTol) {
				add("%s %s: baseline %s, current %s (rel tol %g)", b.key(), name, bv, cv, opt.GaugeRelTol)
			}
		}
	}
	if opt.HostFactor > 0 && b.HostSeconds > 0 && c.HostSeconds > 0 {
		if c.HostSeconds > b.HostSeconds*opt.HostFactor {
			add("%s host_seconds: baseline %.2fs, current %.2fs (over %gx tripwire)",
				b.key(), b.HostSeconds, c.HostSeconds, opt.HostFactor)
		}
	}
}

// withinRel reports |a-b| <= tol*max(|a|,|b|), with exact equality (and
// 0 vs 0) always passing.
func withinRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
