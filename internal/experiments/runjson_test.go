package experiments

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"lvm/internal/oskernel"
)

// jsonSweepConfig is a stripped-down Quick configuration for the JSON
// determinism sweep: two workloads, short traces.
func jsonSweepConfig() Config {
	cfg := Quick()
	cfg.Workloads = []string{"bfs", "mem$"}
	cfg.Params.TraceLen = 50_000
	return cfg
}

// jsonSweepPlan is a 4-run matrix (2 workloads × radix/lvm) shaped like
// the walkcaches experiment.
func jsonSweepPlan(cfg Config) Plan {
	exp := Experiment{
		Key: "tiny",
		Requires: func(cfg Config) []RunKey {
			return cross(cfg.Workloads, []oskernel.Scheme{oskernel.SchemeRadix, oskernel.SchemeLVM}, false)
		},
		Compute: func(r *Runner) (Result, error) { return Result{}, nil },
	}
	return NewPlan(cfg, []Experiment{exp})
}

func executeTiny(t *testing.T, workers int, timings bool) []byte {
	t.Helper()
	cfg := jsonSweepConfig()
	r := NewRunner(cfg)
	plan := jsonSweepPlan(cfg)
	if _, err := r.ExecutePlan(plan, ExecOptions{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	b, err := r.RunsJSON(plan, RunJSONOptions{Timings: timings})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The acceptance check for the JSON path: the document must be
// byte-identical across worker counts.
func TestRunsJSONByteIdenticalAcrossWorkers(t *testing.T) {
	skipSweep(t)
	j1 := executeTiny(t, 1, false)
	j8 := executeTiny(t, 8, false)
	if !bytes.Equal(j1, j8) {
		t.Fatalf("-json output differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", j1, j8)
	}
	if err := CompareRunsJSON(j1, j8, DefaultGateOptions()); err != nil {
		t.Fatalf("gate rejected identical documents: %v", err)
	}

	var doc parsedDoc
	if err := json.Unmarshal(j1, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != RunJSONSchemaVersion {
		t.Errorf("schema_version %d, want %d", doc.SchemaVersion, RunJSONSchemaVersion)
	}
	if len(doc.Runs) != 4 {
		t.Fatalf("%d runs, want 4", len(doc.Runs))
	}
	for _, run := range doc.Runs {
		for _, name := range []string{"run.cycles", "tlb.l2.misses", "dram.accesses", "walk.refs", "cache.l3.demand_misses"} {
			if _, ok := run.Metrics[name]; !ok {
				t.Errorf("%s: metric %s missing", run.key(), name)
			}
		}
	}
	if strings.Contains(string(j1), "host_seconds") {
		t.Error("host_seconds present without -timings")
	}
}

func TestRunsJSONTimings(t *testing.T) {
	skipSweep(t)
	withTimings := executeTiny(t, 2, true)
	if !strings.Contains(string(withTimings), "host_seconds") {
		t.Error("-timings output lacks host_seconds")
	}
}

// The unit tests below exercise the gate on hand-built documents — no
// simulation involved.

func gateDoc(version int, metrics string) []byte {
	return []byte(`{"schema_version":` + strconv.Itoa(version) + `,"runs":[{"workload":"bfs","scheme":"radix","thp":false,"metrics":{` + metrics + `}}]}`)
}

func TestCompareRunsJSONExactCounters(t *testing.T) {
	base := gateDoc(1, `"tlb.l2.misses":100,"run.cycles":1.5`)
	same := gateDoc(1, `"tlb.l2.misses":100,"run.cycles":1.5`)
	if err := CompareRunsJSON(base, same, DefaultGateOptions()); err != nil {
		t.Errorf("identical docs rejected: %v", err)
	}

	offByOne := gateDoc(1, `"tlb.l2.misses":101,"run.cycles":1.5`)
	if err := CompareRunsJSON(base, offByOne, DefaultGateOptions()); err == nil {
		t.Error("counter off by one accepted")
	} else if !strings.Contains(err.Error(), "tlb.l2.misses") {
		t.Errorf("diff does not name the counter: %v", err)
	}
}

func TestCompareRunsJSONGaugeTolerance(t *testing.T) {
	base := gateDoc(1, `"run.cycles":1000.0`)
	within := gateDoc(1, `"run.cycles":1000.0000000001`)
	if err := CompareRunsJSON(base, within, DefaultGateOptions()); err != nil {
		t.Errorf("gauge within tolerance rejected: %v", err)
	}
	outside := gateDoc(1, `"run.cycles":1000.1`)
	if err := CompareRunsJSON(base, outside, DefaultGateOptions()); err == nil {
		t.Error("gauge outside tolerance accepted")
	}
}

// The gate's gauge tolerance is a hard edge: a relative deviation just
// past 1e-9 must fail, just under must pass — that is what lets the gate
// absorb float-formatting noise while still catching real drift.
func TestCompareRunsJSONGaugeToleranceBoundary(t *testing.T) {
	base := gateDoc(1, `"run.ipc":1.0`)
	justOutside := gateDoc(1, `"run.ipc":1.000000002`) // rel diff 2e-9
	if err := CompareRunsJSON(base, justOutside, DefaultGateOptions()); err == nil {
		t.Error("gauge 2e-9 outside tolerance accepted")
	} else if !strings.Contains(err.Error(), "run.ipc") {
		t.Errorf("diff does not name the gauge: %v", err)
	}
	justInside := gateDoc(1, `"run.ipc":1.0000000005`) // rel diff 5e-10
	if err := CompareRunsJSON(base, justInside, DefaultGateOptions()); err != nil {
		t.Errorf("gauge 5e-10 within tolerance rejected: %v", err)
	}
}

func TestCompareRunsJSONStructuralDiffs(t *testing.T) {
	base := gateDoc(1, `"a":1`)
	if err := CompareRunsJSON(base, gateDoc(2, `"a":1`), DefaultGateOptions()); err == nil {
		t.Error("schema version mismatch accepted")
	}
	if err := CompareRunsJSON(base, gateDoc(1, `"a":1,"b":2`), DefaultGateOptions()); err == nil {
		t.Error("extra metric accepted")
	}
	if err := CompareRunsJSON(base, gateDoc(1, `"b":1`), DefaultGateOptions()); err == nil {
		t.Error("renamed metric accepted")
	}
	empty := []byte(`{"schema_version":1,"runs":[]}`)
	if err := CompareRunsJSON(base, empty, DefaultGateOptions()); err == nil {
		t.Error("dropped run accepted")
	}
}
