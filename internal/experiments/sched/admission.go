package sched

import "sync"

// Admission is the exported admission seam: a counting semaphore over
// bytes, optionally correcting each charge with a CostModel before it is
// held against the budget. Run uses it for batch execution; long-running
// servers (lvmd) use it directly to decide how many tenants may be in
// flight at once. Admission only influences *when* work starts, never its
// result.
//
// All methods are safe for concurrent use.
type Admission struct {
	model *CostModel

	mu   sync.Mutex
	cond *sync.Cond
	// cap is the budget in bytes (0 = unbounded). Immutable after New.
	cap uint64
	// inUse is the summed charge of admitted work. guarded by mu.
	inUse uint64
	// inFlight counts admitted, unreleased acquisitions. guarded by mu.
	inFlight int
	// waiting counts goroutines blocked in Acquire — the admission queue
	// depth a load generator reports. guarded by mu.
	waiting int
}

// AdmissionStats is a point-in-time view of the semaphore.
type AdmissionStats struct {
	// CapBytes is the configured budget (0 = unbounded).
	CapBytes uint64
	// InUseBytes is the summed charge currently admitted.
	InUseBytes uint64
	// InFlight is the number of admitted, unreleased acquisitions.
	InFlight int
	// QueueDepth is the number of goroutines blocked waiting for budget.
	QueueDepth int
	// FactorPerMille is the cost model's current correction (1000 when no
	// model is attached).
	FactorPerMille uint64
}

// NewAdmission returns an admission semaphore over budgetBytes (0 =
// unbounded). model, when non-nil, corrects every charge and is fed by
// Observe; it may be shared with other Admissions or a concurrent Run.
func NewAdmission(budgetBytes uint64, model *CostModel) *Admission {
	a := &Admission{cap: budgetBytes, model: model}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Acquire blocks until costBytes (corrected by the model, clamped to the
// budget so oversized work runs alone rather than deadlocking) fits, then
// charges it. The returned charge is what Release must be given back —
// callers hold it verbatim so a moving correction factor can never
// unbalance the ledger. A non-nil cancel channel aborts the wait when
// closed: Acquire returns ok=false and nothing is charged.
func (a *Admission) Acquire(costBytes uint64, cancel <-chan struct{}) (charge uint64, ok bool) {
	charge = costBytes
	if a.model != nil {
		charge = a.model.Corrected(costBytes)
	}
	if a.cap == 0 {
		// Unbounded: nothing is held, so nothing is returned to Release.
		a.mu.Lock()
		a.inFlight++
		a.mu.Unlock()
		return 0, true
	}
	if charge > a.cap {
		charge = a.cap
	}
	// A watcher turns the cancel close into a Broadcast so waiters wake to
	// re-check; stop terminates it on the normal path and the WaitGroup
	// bounds its lifetime to this call (defers run in mutex-unlock,
	// close(stop), Wait order). The lock around the Broadcast orders it
	// after the waiter's park — a Broadcast between the waiter's cancel
	// check and its cond.Wait would otherwise be lost.
	if cancel != nil {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		defer wg.Wait()
		defer close(stop)
		go func() {
			defer wg.Done()
			select {
			case <-cancel:
				a.mu.Lock()
				a.mu.Unlock() // empty section: orders the broadcast after the waiter parks
				a.cond.Broadcast()
			case <-stop:
			}
		}()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.waiting++
	for a.inUse+charge > a.cap {
		if cancel != nil {
			select {
			case <-cancel:
				a.waiting--
				return 0, false
			default:
			}
		}
		a.cond.Wait()
	}
	a.waiting--
	a.inUse += charge
	a.inFlight++
	return charge, true
}

// Release returns a charge obtained from Acquire.
func (a *Admission) Release(charge uint64) {
	a.mu.Lock()
	a.inUse -= charge
	a.inFlight--
	a.mu.Unlock()
	a.cond.Broadcast()
}

// Observe feeds a completed work item's host-memory sample to the cost
// model (no-op without one): estimateBytes is the static estimate the item
// was admitted with, s the observation around its execution.
func (a *Admission) Observe(estimateBytes uint64, s MemSample) {
	if a.model != nil {
		a.model.Observe(estimateBytes, s)
	}
}

// Stats snapshots the semaphore.
func (a *Admission) Stats() AdmissionStats {
	st := AdmissionStats{CapBytes: a.cap, FactorPerMille: 1000}
	if a.model != nil {
		st.FactorPerMille = a.model.FactorPerMille()
	}
	a.mu.Lock()
	st.InUseBytes = a.inUse
	st.InFlight = a.inFlight
	st.QueueDepth = a.waiting
	a.mu.Unlock()
	return st
}
