// Tests for the exported Admission semaphore: ledger balance under a
// moving cost model, cancellation of queued acquisitions, oversized-task
// clamping, the unbounded fast path, and queue-depth reporting — the
// properties the lvmd serving daemon relies on for tenant admission.
package sched

import (
	"sync"
	"testing"
	"time"
)

// TestAdmissionLedger verifies Acquire/Release keep inUse and inFlight
// balanced, and that the returned charge is what was actually held even
// when the model's correction factor moves between Acquire and Release.
func TestAdmissionLedger(t *testing.T) {
	m := NewCostModel()
	a := NewAdmission(1<<20, m)
	c1, ok := a.Acquire(1000, nil)
	if !ok {
		t.Fatal("uncontended Acquire returned ok=false")
	}
	if st := a.Stats(); st.InUseBytes != c1 || st.InFlight != 1 {
		t.Fatalf("after acquire: %+v, charge %d", st, c1)
	}
	// Move the model hard: observations far above estimates push the factor
	// up, so a fresh Acquire of the same estimate charges more.
	for i := 0; i < 20; i++ {
		m.Observe(1000, MemSample{HeapInuseBytes: 4000})
	}
	c2, _ := a.Acquire(1000, nil)
	if c2 <= c1 {
		t.Errorf("corrected charge %d not above original %d after inflating observations", c2, c1)
	}
	a.Release(c1)
	a.Release(c2)
	if st := a.Stats(); st.InUseBytes != 0 || st.InFlight != 0 {
		t.Errorf("ledger unbalanced after releases: %+v", st)
	}
}

// TestAdmissionBlocksAndWakes verifies a second acquisition waits for
// budget and is admitted when the first releases.
func TestAdmissionBlocksAndWakes(t *testing.T) {
	a := NewAdmission(100, nil)
	c1, _ := a.Acquire(80, nil)
	admitted := make(chan uint64)
	go func() {
		c2, ok := a.Acquire(60, nil)
		if !ok {
			t.Error("blocked Acquire returned ok=false without cancel")
		}
		admitted <- c2
	}()
	// The second acquire must be parked, visible as queue depth.
	waitFor(t, func() bool { return a.Stats().QueueDepth == 1 })
	select {
	case <-admitted:
		t.Fatal("second Acquire admitted past the budget")
	default:
	}
	a.Release(c1)
	c2 := <-admitted
	if st := a.Stats(); st.InUseBytes != c2 || st.InFlight != 1 || st.QueueDepth != 0 {
		t.Errorf("after wake: %+v", st)
	}
	a.Release(c2)
}

// TestAdmissionCancel verifies closing the cancel channel aborts a queued
// Acquire without charging anything, and that budget freed later goes to
// waiters that did not cancel.
func TestAdmissionCancel(t *testing.T) {
	a := NewAdmission(100, nil)
	c1, _ := a.Acquire(100, nil)

	cancel := make(chan struct{})
	aborted := make(chan bool)
	go func() {
		_, ok := a.Acquire(50, cancel)
		aborted <- ok
	}()
	waitFor(t, func() bool { return a.Stats().QueueDepth == 1 })
	close(cancel)
	if ok := <-aborted; ok {
		t.Fatal("cancelled Acquire reported ok=true")
	}
	if st := a.Stats(); st.QueueDepth != 0 || st.InUseBytes != c1 || st.InFlight != 1 {
		t.Errorf("after cancel: %+v", st)
	}

	// A survivor queued behind the cancelled waiter still gets the budget.
	got := make(chan uint64)
	go func() {
		c, ok := a.Acquire(50, make(chan struct{}))
		if !ok {
			t.Error("surviving Acquire aborted without its cancel closing")
		}
		got <- c
	}()
	waitFor(t, func() bool { return a.Stats().QueueDepth == 1 })
	a.Release(c1)
	a.Release(<-got)
	if st := a.Stats(); st.InUseBytes != 0 || st.InFlight != 0 {
		t.Errorf("ledger unbalanced at end: %+v", st)
	}
}

// TestAdmissionCancelBeforeWait verifies an already-closed cancel channel
// aborts even when the acquire would have to wait, without deadlock.
func TestAdmissionCancelBeforeWait(t *testing.T) {
	a := NewAdmission(10, nil)
	c1, _ := a.Acquire(10, nil)
	cancel := make(chan struct{})
	close(cancel)
	done := make(chan bool)
	go func() {
		_, ok := a.Acquire(5, cancel)
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Error("pre-cancelled Acquire reported ok=true")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pre-cancelled Acquire deadlocked")
	}
	a.Release(c1)
}

// TestAdmissionOversizedClamp verifies work costing more than the whole
// budget is clamped to it — it runs alone rather than deadlocking.
func TestAdmissionOversizedClamp(t *testing.T) {
	a := NewAdmission(100, nil)
	c, ok := a.Acquire(1<<40, nil)
	if !ok || c != 100 {
		t.Fatalf("oversized Acquire: charge %d ok %v, want 100 true", c, ok)
	}
	a.Release(c)
	if st := a.Stats(); st.InUseBytes != 0 {
		t.Errorf("ledger unbalanced after oversized release: %+v", st)
	}
}

// TestAdmissionUnbounded verifies the zero-budget path admits immediately
// with a zero charge, so Release never underflows.
func TestAdmissionUnbounded(t *testing.T) {
	a := NewAdmission(0, nil)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, ok := a.Acquire(1<<40, nil)
			if !ok || c != 0 {
				t.Errorf("unbounded Acquire: charge %d ok %v, want 0 true", c, ok)
			}
			a.Release(c)
		}()
	}
	wg.Wait()
	if st := a.Stats(); st.InUseBytes != 0 || st.InFlight != 0 {
		t.Errorf("unbounded ledger unbalanced: %+v", st)
	}
}

// TestAdmissionConcurrentChurn hammers a small budget from many goroutines
// (run under -race in CI) and checks the ledger drains to zero.
func TestAdmissionConcurrentChurn(t *testing.T) {
	a := NewAdmission(256, NewCostModel())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, ok := a.Acquire(uint64(16+g), nil)
				if !ok {
					t.Error("uncancellable Acquire aborted")
					return
				}
				a.Observe(uint64(16+g), MemSample{HeapInuseBytes: uint64(8 + i)})
				a.Release(c)
			}
		}(g)
	}
	wg.Wait()
	if st := a.Stats(); st.InUseBytes != 0 || st.InFlight != 0 || st.QueueDepth != 0 {
		t.Errorf("ledger unbalanced after churn: %+v", st)
	}
}

// waitFor polls cond until it holds or the test deadline nears.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
