package sched

import "sync"

// A CostModel corrects static footprint estimates with the host-memory
// samples Run already collects: after each task completes, the ratio of
// observed live heap to the task's estimate is blended into a running
// correction factor, and subsequent admissions charge the corrected cost
// against Options.BudgetBytes. The model only influences admission — when
// a task may start — never results or their order, so batch output stays
// byte-identical with or without it.
//
// All arithmetic is integer per-mille (factor 1000 = 1.0x): the lvmlint
// floatfree discipline aside, integer blending keeps the factor exactly
// reproducible for the unit test that pins it.
type CostModel struct {
	mu sync.Mutex
	// factorPerMille is the current correction in thousandths; 1000 means
	// estimates are charged as-is. guarded by mu.
	factorPerMille uint64
}

const (
	// costFactorMin/Max clamp each observation's ratio before blending, so
	// one wild sample (a tiny estimate, a GC-inflated heap) cannot swing
	// admissions by more than 4x in either direction.
	costFactorMin = 250  // 0.25x
	costFactorMax = 4000 // 4.0x
)

// NewCostModel returns a model with a neutral (1.0x) correction.
func NewCostModel() *CostModel {
	return &CostModel{factorPerMille: 1000}
}

// Corrected returns the estimate scaled by the current correction factor.
func (m *CostModel) Corrected(estimateBytes uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return estimateBytes * m.factorPerMille / 1000
}

// Observe blends one completed task's observed live heap against its
// estimate into the correction factor with an exponential moving average
// (weight 1/4 on the new sample). Zero estimates carry no signal and are
// skipped.
func (m *CostModel) Observe(estimateBytes uint64, s MemSample) {
	if estimateBytes == 0 {
		return
	}
	ratio := s.HeapInuseBytes * 1000 / estimateBytes
	if ratio < costFactorMin {
		ratio = costFactorMin
	}
	if ratio > costFactorMax {
		ratio = costFactorMax
	}
	m.mu.Lock()
	m.factorPerMille = (3*m.factorPerMille + ratio) / 4
	m.mu.Unlock()
}

// FactorPerMille reports the current correction factor in thousandths.
func (m *CostModel) FactorPerMille() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.factorPerMille
}
