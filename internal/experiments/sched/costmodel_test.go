package sched_test

import (
	"testing"

	"lvm/internal/experiments/sched"
)

// The blend is pinned exactly: integer per-mille EMA with weight 1/4 on
// each new sample and observations clamped to [0.25x, 4x]. Admission
// behavior depends on these numbers staying reproducible.
func TestCostModelBlend(t *testing.T) {
	m := sched.NewCostModel()
	if got := m.Corrected(1000); got != 1000 {
		t.Fatalf("neutral Corrected(1000) = %d, want 1000", got)
	}

	// Observed heap 2x the estimate: factor = (3*1000 + 2000) / 4 = 1250.
	m.Observe(1000, sched.MemSample{HeapInuseBytes: 2000})
	if got := m.FactorPerMille(); got != 1250 {
		t.Fatalf("after 2x sample: factor %d, want 1250", got)
	}
	if got := m.Corrected(1000); got != 1250 {
		t.Errorf("Corrected(1000) = %d, want 1250", got)
	}

	// A tiny observation clamps at 0.25x: factor = (3*1250 + 250) / 4 = 1000.
	m.Observe(1000, sched.MemSample{HeapInuseBytes: 100})
	if got := m.FactorPerMille(); got != 1000 {
		t.Fatalf("after clamped-low sample: factor %d, want 1000", got)
	}

	// A huge observation clamps at 4x: factor = (3*1000 + 4000) / 4 = 1750.
	m.Observe(1000, sched.MemSample{HeapInuseBytes: 1 << 40})
	if got := m.FactorPerMille(); got != 1750 {
		t.Fatalf("after clamped-high sample: factor %d, want 1750", got)
	}

	// Zero estimates carry no signal and must not move the factor.
	m.Observe(0, sched.MemSample{HeapInuseBytes: 1 << 30})
	if got := m.FactorPerMille(); got != 1750 {
		t.Errorf("zero-estimate observation moved the factor to %d", got)
	}
}
