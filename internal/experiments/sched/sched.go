// Package sched executes a batch of independent simulation tasks on a
// bounded pool of worker goroutines while keeping the observable output
// bit-for-bit identical at any worker count.
//
// Determinism is structural, not accidental: results are written into a
// slice slot fixed by each task's position in the input, and errors are
// reported joined in input order, so neither completion order nor goroutine
// interleaving can leak into what callers see. This is the property the
// lvmlint nondeterm analyzer guards across the experiment stack — the
// scheduler upholds it by construction and never iterates a map.
//
// Parallelism is bounded twice: by Workers (goroutines) and by BudgetBytes
// (the sum of in-flight tasks' CostBytes). Simulation runs each hold a
// multi-gigabyte simulated phys.Memory plus its page tables, so the
// binding constraint on real machines is footprint, not GOMAXPROCS; the
// budget semaphore admits a new task only when its cost fits.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Task is one unit of work: an opaque key plus its peak memory claim.
type Task[K any] struct {
	// Key identifies the work; it is handed verbatim to the exec function.
	Key K
	// CostBytes is the task's peak memory claim counted against
	// Options.BudgetBytes while the task is in flight. Tasks costing more
	// than the whole budget are clamped to it, so they still run — alone.
	CostBytes uint64
}

// Options bounds a batch execution.
type Options struct {
	// Workers is the number of worker goroutines (values < 1 mean 1).
	Workers int
	// BudgetBytes caps the summed CostBytes of in-flight tasks
	// (0 means unbounded).
	BudgetBytes uint64
	// ObserveMem, when non-nil, receives a host-memory sample for each
	// task after it completes, keyed by the task's input index. Samples
	// are observational — they never influence results or scheduling —
	// and implementations must be safe for concurrent calls from workers.
	ObserveMem func(taskIndex int, s MemSample)
	// CostModel, when non-nil, corrects each task's CostBytes with the
	// host-memory samples of already-completed tasks before charging it
	// against BudgetBytes, and is fed every completed task's sample. It
	// affects only admission timing, never results or their order.
	CostModel *CostModel
}

// MemSample is a host-side memory observation for one task, taken with
// runtime.ReadMemStats around the task's execution.
type MemSample struct {
	// AllocBytes is the growth of the process's cumulative heap
	// allocation (MemStats.TotalAlloc) across the task. The counter is
	// process-global, so with concurrent workers allocations of
	// overlapping tasks are attributed to every task in flight — read it
	// as an upper bound on the task's own allocation (exact at Workers=1).
	AllocBytes uint64
	// HeapInuseBytes is the live heap at task completion — the actual
	// resident set the batch needs while this task's results are held.
	HeapInuseBytes uint64
}

// sampleMem wraps exec with before/after runtime.ReadMemStats reads.
func sampleMem[K any, V any](exec func(K) (V, error), key K) (V, error, MemSample) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	v, err := exec(key)
	runtime.ReadMemStats(&after)
	return v, err, MemSample{
		AllocBytes:     after.TotalAlloc - before.TotalAlloc,
		HeapInuseBytes: after.HeapInuse,
	}
}

// Run executes exec once per task and returns the results aligned with the
// input order: out[i] is the result for tasks[i]. Every task runs to
// completion even when others fail, so the error value — all failures
// wrapped and joined in input order — does not depend on scheduling. A
// failed task leaves its slot at the zero value.
func Run[K any, V any](tasks []Task[K], opt Options, exec func(K) (V, error)) ([]V, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	out := make([]V, len(tasks))
	errs := make([]error, len(tasks))
	if len(tasks) == 0 {
		return out, nil
	}

	adm := NewAdmission(opt.BudgetBytes, opt.CostModel)
	next := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				// Charge the (possibly corrected) cost, and release exactly
				// what was charged even if the model has since moved.
				charge, _ := adm.Acquire(t.CostBytes, nil)
				var v V
				var err error
				if opt.ObserveMem != nil || opt.CostModel != nil {
					var s MemSample
					v, err, s = sampleMem(exec, t.Key)
					if opt.ObserveMem != nil {
						opt.ObserveMem(i, s)
					}
					adm.Observe(t.CostBytes, s)
				} else {
					v, err = exec(t.Key)
				}
				adm.Release(charge)
				// Each goroutine writes only its own slots; the final
				// wg.Wait orders these writes before any read.
				out[i] = v
				errs[i] = err
			}
		}()
	}
	wg.Wait()

	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("task %d: %w", i, err))
		}
	}
	return out, errors.Join(failed...)
}
