package sched_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"lvm/internal/experiments/sched"
)

func tasks(n int, cost uint64) []sched.Task[int] {
	ts := make([]sched.Task[int], n)
	for i := range ts {
		ts[i] = sched.Task[int]{Key: i, CostBytes: cost}
	}
	return ts
}

// Results must land in input order at every worker count.
func TestRunDeterministicOrder(t *testing.T) {
	ts := tasks(50, 1)
	var want []string
	for i := 0; i < 50; i++ {
		want = append(want, fmt.Sprintf("r%d", i))
	}
	for _, workers := range []int{1, 2, 4, 8, 64} {
		out, err := sched.Run(ts, sched.Options{Workers: workers}, func(k int) (string, error) {
			return fmt.Sprintf("r%d", k), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("workers=%d: out = %v", workers, out)
		}
	}
}

// All tasks run even when some fail, and every failure is reported joined
// in input order.
func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	out, err := sched.Run(tasks(10, 0), sched.Options{Workers: 4}, func(k int) (int, error) {
		ran.Add(1)
		if k == 3 || k == 7 {
			return 0, fmt.Errorf("task-%d: %w", k, boom)
		}
		return k * 10, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost: %v", err)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d tasks, want all 10 despite failures", got)
	}
	if out[4] != 40 {
		t.Fatalf("successful slots must survive: out[4] = %d", out[4])
	}
	if out[3] != 0 || out[7] != 0 {
		t.Fatalf("failed slots must stay zero: %v", out)
	}
	// Both failures, in input order.
	msg := err.Error()
	i3, i7 := indexOf(msg, "task-3"), indexOf(msg, "task-7")
	if i3 < 0 || i7 < 0 || i3 > i7 {
		t.Fatalf("errors not joined in input order: %q", msg)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// The budget semaphore must bound the summed cost of in-flight tasks.
func TestRunBudgetBound(t *testing.T) {
	const cost = 1 << 20
	var mu sync.Mutex
	inflight, peak := 0, 0
	_, err := sched.Run(tasks(32, cost), sched.Options{Workers: 16, BudgetBytes: 3 * cost},
		func(k int) (struct{}, error) {
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			mu.Unlock()
			mu.Lock()
			inflight--
			mu.Unlock()
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("budget admitted %d concurrent tasks, cap is 3", peak)
	}
}

// A task costing more than the whole budget is clamped, not deadlocked.
func TestRunOversizedTask(t *testing.T) {
	out, err := sched.Run([]sched.Task[int]{{Key: 1, CostBytes: 1 << 40}},
		sched.Options{Workers: 4, BudgetBytes: 1 << 20},
		func(k int) (int, error) { return k, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := sched.Run(nil, sched.Options{Workers: 4}, func(k int) (int, error) { return k, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// ObserveMem must fire exactly once per task with its input index, and the
// allocation delta must cover what the task demonstrably allocated.
func TestObserveMem(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	samples := make(map[int]sched.MemSample, n)

	sink := make([][]byte, n)
	out, err := sched.Run(tasks(n, 1), sched.Options{
		Workers: 1,
		ObserveMem: func(i int, s sched.MemSample) {
			mu.Lock()
			samples[i] = s
			mu.Unlock()
		},
	}, func(k int) (int, error) {
		sink[k] = make([]byte, 1<<20)
		return k, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n || len(samples) != n {
		t.Fatalf("%d results, %d samples, want %d each", len(out), len(samples), n)
	}
	for i := 0; i < n; i++ {
		s, ok := samples[i]
		if !ok {
			t.Fatalf("no sample for task %d", i)
		}
		// At Workers=1 the global TotalAlloc delta is exactly the task's
		// own allocation, so it must cover the 1 MiB we made.
		if s.AllocBytes < 1<<20 {
			t.Errorf("task %d: AllocBytes %d < allocated 1 MiB", i, s.AllocBytes)
		}
		if s.HeapInuseBytes == 0 {
			t.Errorf("task %d: zero HeapInuseBytes", i)
		}
	}
}

// Samples must also arrive (concurrently, without races) at higher worker
// counts; the -race CI job exercises this path.
func TestObserveMemConcurrent(t *testing.T) {
	var calls atomic.Int64
	_, err := sched.Run(tasks(32, 1), sched.Options{
		Workers: 8,
		ObserveMem: func(int, sched.MemSample) {
			calls.Add(1)
		},
	}, func(k int) (int, error) { return k, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 32 {
		t.Errorf("%d samples, want 32", got)
	}
}
