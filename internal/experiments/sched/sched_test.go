package sched_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"lvm/internal/experiments/sched"
)

func tasks(n int, cost uint64) []sched.Task[int] {
	ts := make([]sched.Task[int], n)
	for i := range ts {
		ts[i] = sched.Task[int]{Key: i, CostBytes: cost}
	}
	return ts
}

// Results must land in input order at every worker count.
func TestRunDeterministicOrder(t *testing.T) {
	ts := tasks(50, 1)
	var want []string
	for i := 0; i < 50; i++ {
		want = append(want, fmt.Sprintf("r%d", i))
	}
	for _, workers := range []int{1, 2, 4, 8, 64} {
		out, err := sched.Run(ts, sched.Options{Workers: workers}, func(k int) (string, error) {
			return fmt.Sprintf("r%d", k), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("workers=%d: out = %v", workers, out)
		}
	}
}

// All tasks run even when some fail, and every failure is reported joined
// in input order.
func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	out, err := sched.Run(tasks(10, 0), sched.Options{Workers: 4}, func(k int) (int, error) {
		ran.Add(1)
		if k == 3 || k == 7 {
			return 0, fmt.Errorf("task-%d: %w", k, boom)
		}
		return k * 10, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost: %v", err)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d tasks, want all 10 despite failures", got)
	}
	if out[4] != 40 {
		t.Fatalf("successful slots must survive: out[4] = %d", out[4])
	}
	if out[3] != 0 || out[7] != 0 {
		t.Fatalf("failed slots must stay zero: %v", out)
	}
	// Both failures, in input order.
	msg := err.Error()
	i3, i7 := indexOf(msg, "task-3"), indexOf(msg, "task-7")
	if i3 < 0 || i7 < 0 || i3 > i7 {
		t.Fatalf("errors not joined in input order: %q", msg)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// The budget semaphore must bound the summed cost of in-flight tasks.
func TestRunBudgetBound(t *testing.T) {
	const cost = 1 << 20
	var mu sync.Mutex
	inflight, peak := 0, 0
	_, err := sched.Run(tasks(32, cost), sched.Options{Workers: 16, BudgetBytes: 3 * cost},
		func(k int) (struct{}, error) {
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			mu.Unlock()
			mu.Lock()
			inflight--
			mu.Unlock()
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("budget admitted %d concurrent tasks, cap is 3", peak)
	}
}

// A task costing more than the whole budget is clamped, not deadlocked.
func TestRunOversizedTask(t *testing.T) {
	out, err := sched.Run([]sched.Task[int]{{Key: 1, CostBytes: 1 << 40}},
		sched.Options{Workers: 4, BudgetBytes: 1 << 20},
		func(k int) (int, error) { return k, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := sched.Run(nil, sched.Options{Workers: 4}, func(k int) (int, error) { return k, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
