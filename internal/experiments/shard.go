package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lvm/internal/workload"
)

// A ShardSpec selects one deterministic partition of a plan's run matrix
// for scale-out execution: shard Index of Count executes only the runs
// AssignShards gives it, and the partial documents are recombined with
// MergeShards. The zero value (Count 0) means unsharded execution.
type ShardSpec struct {
	Index, Count int
}

func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// enabled reports whether the spec actually partitions the plan.
func (s ShardSpec) enabled() bool { return s.Count > 1 }

// validate rejects malformed specs with an error naming the field.
func (s ShardSpec) validate() error {
	if s.Count < 1 {
		return fmt.Errorf("experiments: shard count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("experiments: shard index %d outside [0,%d)", s.Index, s.Count)
	}
	return nil
}

// ParseShard parses the lvmbench -shard syntax "i/n".
func ParseShard(s string) (ShardSpec, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("experiments: shard %q not of the form i/n", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("experiments: shard index %q: %w", idx, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(cnt))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("experiments: shard count %q: %w", cnt, err)
	}
	spec := ShardSpec{Index: i, Count: n}
	if err := spec.validate(); err != nil {
		return ShardSpec{}, err
	}
	return spec, nil
}

// AssignShards partitions cost-weighted runs across n shards with the LPT
// (longest-processing-time) heuristic: runs are considered in order of
// decreasing cost and each goes to the least-loaded shard. Every tie is
// broken on the lower index — run order by plan position, shard choice by
// shard number, so the assignment is a pure function of (costs, n) and
// every host computes the same partition. Returns the shard index per run.
func AssignShards(costs []uint64, n int) []int {
	assign := make([]int, len(costs))
	if n <= 1 {
		return assign
	}
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if costs[order[a]] != costs[order[b]] {
			return costs[order[a]] > costs[order[b]]
		}
		return order[a] < order[b]
	})
	loads := make([]uint64, n)
	counts := make([]int, n)
	for _, i := range order {
		best := 0
		for s := 1; s < n; s++ {
			if loads[s] < loads[best] || (loads[s] == loads[best] && counts[s] < counts[best]) {
				best = s
			}
		}
		assign[i] = best
		loads[best] += costs[i]
		counts[best]++
	}
	return assign
}

// EstimateCosts returns each plan run's CostBytes — the simulated physical
// memory the scheduler will charge it — computed from the workload-footprint
// estimator, so no workload is built. The estimates are exact (the
// estimator reproduces the builders' sizing formulas), which makes shard
// assignment identical whether or not a host ever builds the workloads.
func (r *Runner) EstimateCosts(p Plan) ([]uint64, error) {
	costs := make([]uint64, len(p.Runs))
	est := make(map[string]uint64)
	for i, k := range p.Runs {
		e, ok := est[k.Workload]
		if !ok {
			fp, err := workload.EstimateFootprintBytes(k.Workload, r.Cfg.Params)
			if err != nil {
				return nil, fmt.Errorf("experiments: estimating cost of %s: %w", k, err)
			}
			e = r.costFromFootprint(fp)
			est[k.Workload] = e
		}
		costs[i] = e
	}
	return costs, nil
}

// AssignPlan computes the deterministic n-way shard assignment of p.Runs
// (one shard index per run, aligned with plan order).
func (r *Runner) AssignPlan(p Plan, n int) ([]int, error) {
	costs, err := r.EstimateCosts(p)
	if err != nil {
		return nil, err
	}
	return AssignShards(costs, n), nil
}
