package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"lvm/internal/metrics"
	"lvm/internal/oskernel"
	"lvm/internal/sim"
)

func TestParseShard(t *testing.T) {
	good := map[string]ShardSpec{
		"0/1":   {0, 1},
		"0/2":   {0, 2},
		"1/2":   {1, 2},
		"2/3":   {2, 3},
		" 1/ 4": {1, 4},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil {
			t.Errorf("ParseShard(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseShard(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"", "1", "a/2", "1/b", "2/2", "-1/2", "0/0", "1/-3"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
}

func TestAssignShardsDeterministicAndComplete(t *testing.T) {
	costs := []uint64{100, 100, 50, 900, 25, 25, 300, 100}
	for n := 1; n <= 4; n++ {
		a := AssignShards(costs, n)
		b := AssignShards(costs, n)
		if len(a) != len(costs) {
			t.Fatalf("n=%d: %d assignments for %d runs", n, len(a), len(costs))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: assignment not deterministic at run %d", n, i)
			}
			if a[i] < 0 || a[i] >= n {
				t.Fatalf("n=%d: run %d assigned to shard %d", n, i, a[i])
			}
		}
	}
	// n=1 puts everything on shard 0.
	for i, s := range AssignShards(costs, 1) {
		if s != 0 {
			t.Errorf("n=1: run %d on shard %d", i, s)
		}
	}
}

func TestAssignShardsBalanced(t *testing.T) {
	// LPT on equal costs must spread runs evenly; the heavy-run case must
	// not stack heavies on one shard.
	equal := []uint64{10, 10, 10, 10, 10, 10}
	counts := make([]int, 3)
	for _, s := range AssignShards(equal, 3) {
		counts[s]++
	}
	for s, c := range counts {
		if c != 2 {
			t.Errorf("equal costs: shard %d has %d runs, want 2", s, c)
		}
	}

	skewed := []uint64{900, 800, 10, 10, 10, 10}
	loads := make([]uint64, 2)
	for i, s := range AssignShards(skewed, 2) {
		loads[s] += skewed[i]
	}
	if loads[0] == 0 || loads[1] == 0 {
		t.Fatalf("a shard got nothing: %v", loads)
	}
	if max(loads[0], loads[1]) > 1000 {
		t.Errorf("heavies stacked: loads %v", loads)
	}
}

func TestEstimateCostsMatchRunBytes(t *testing.T) {
	// Cross-host determinism hinges on estimated costs being exactly the
	// scheduler costs a host that builds the workloads would compute.
	cfg := jsonSweepConfig()
	r := NewRunner(cfg)
	p := jsonSweepPlan(cfg)
	costs, err := r.EstimateCosts(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range p.Runs {
		w, err := r.Workload(k.Workload)
		if err != nil {
			t.Fatal(err)
		}
		if costs[i] != r.runBytes(w) {
			t.Errorf("%s: estimated cost %d, built cost %d", k, costs[i], r.runBytes(w))
		}
	}
	if _, err := r.EstimateCosts(Plan{Runs: []RunKey{{Workload: "nope", Scheme: oskernel.SchemeLVM}}}); err == nil {
		t.Error("unknown workload estimated without error")
	}
}

func TestExecutePlanRejectsShard(t *testing.T) {
	r := NewRunner(jsonSweepConfig())
	_, err := r.ExecutePlan(jsonSweepPlan(r.Cfg), ExecOptions{Workers: 1, Shard: ShardSpec{0, 2}})
	if err == nil {
		t.Fatal("ExecutePlan accepted a shard spec")
	}
}

// fakeOutput builds a distinguishable RunOutput without simulating, for
// serialization and merge tests.
func fakeOutput(k RunKey, i int) *RunOutput {
	var m metrics.Set
	m.Counter("tlb.l2.misses", uint64(100+13*i))
	m.Counter("dram.accesses", uint64(7*i))
	m.Gauge("run.ipc", 0.25+0.125*float64(i))
	m.Gauge("tlb.l2.miss_rate", float64(i)/17)
	return &RunOutput{
		Sim: sim.Result{
			Workload:     k.Workload,
			Scheme:       string(k.Scheme),
			Instructions: uint64(1000 + i),
			Accesses:     uint64(500 + i),
			Cycles:       1234.5 + float64(i)/3,
			WalkCycles:   88.25 * float64(i),
			Walks:        uint64(40 * i),
			Metrics:      m,
		},
		IndexBytes:     16 * i,
		IndexPeakBytes: 32 * i,
		IndexDepth:     1 + i%2,
		IndexLeaves:    i,
		LWCHitRate:     1 - float64(i)/64,
		Retrains:       uint64(i),
		Rebuilds:       uint64(i % 2),
		Overflows:      uint64(i % 3),
		MgmtCycles:     uint64(11 * i),
		PWCPDEMissRate: float64(i) / 9,
		OverheadBytes:  uint64(13 * i),
		CollisionRate:  float64(i) / 100,
		ExtraPerColl:   float64(i%2) + 1,
		HostSeconds:    1.5 + float64(i),
	}
}

// The tentpole acceptance test: for shard counts 1, 2 and 3, executing
// each shard on its own runner (real simulations), serializing the shard
// documents and merging them must reproduce the unsharded -json document
// byte for byte.
func TestShardMergeByteIdentical(t *testing.T) {
	skipSweep(t)
	// The walkcaches registry experiment requires exactly the tiny
	// fixture's 4-run matrix, so the unsharded executeTiny document is the
	// byte-for-byte reference for the sharded runs.
	baseline := executeTiny(t, 2, false)
	cfg := jsonSweepConfig()
	exps, err := Select("walkcaches")
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(cfg, exps)
	if want := jsonSweepPlan(cfg); !slicesEqual(plan.Runs, want.Runs) {
		t.Fatalf("walkcaches run matrix %v does not match the tiny fixture %v", plan.Runs, want.Runs)
	}

	for n := 1; n <= 3; n++ {
		files := make([]ShardFile, n)
		for s := 0; s < n; s++ {
			rs := NewRunner(cfg)
			spec := ShardSpec{Index: s, Count: n}
			if err := rs.ExecuteRuns(plan, ExecOptions{Workers: 2, Shard: spec}); err != nil {
				t.Fatalf("n=%d shard %d: %v", n, s, err)
			}
			b, err := rs.ShardJSON(plan, []string{"walkcaches"}, spec, RunJSONOptions{})
			if err != nil {
				t.Fatalf("n=%d shard %d: %v", n, s, err)
			}
			files[s] = ShardFile{Name: fmt.Sprintf("part%d-of-%d.json", s, n), Data: b}
		}
		merged, mp, err := MergeShards(files)
		if err != nil {
			t.Fatalf("n=%d: merge: %v", n, err)
		}
		if !slicesEqual(mp.Runs, plan.Runs) {
			t.Fatalf("n=%d: merged plan diverges", n)
		}
		got, err := merged.RunsJSON(mp, RunJSONOptions{})
		if err != nil {
			t.Fatalf("n=%d: merged RunsJSON: %v", n, err)
		}
		if !bytes.Equal(got, baseline) {
			t.Errorf("n=%d: merged document differs from unsharded baseline", n)
		}
	}
}
