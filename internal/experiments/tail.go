package experiments

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/oskernel"
	"lvm/internal/sim"
	"lvm/internal/stats"
)

// TailLatencyResult carries the §7.3 memcached tail-latency study.
type TailLatencyResult struct {
	// Request latency percentiles, in cycles, for a quiescent run and a
	// run with continuous LVM management churn (maps/unmaps between
	// requests). Paper: LVM's computational costs do not affect even the
	// 99th percentile.
	StaticP50, StaticP99 float64
	ChurnP50, ChurnP99   float64
	// ChurnOps is the number of map/unmap operations injected.
	ChurnOps int
	// MgmtCyclesCharged is the total management time injected.
	MgmtCyclesCharged uint64
	Table             *stats.Table `json:"-"`
}

// measureTail runs the quiescent and churning memcached simulations and
// collects the study's percentiles and churn counters.
func (r *Runner) measureTail() (TailLatencyResult, error) {
	var res TailLatencyResult
	w, err := r.Workload("mem$")
	if err != nil {
		return TailLatencyResult{}, err
	}

	run := func(churn bool) (p50, p99 float64, err error) {
		sys, p, err := launchScaled(r.physFor(w), oskernel.SchemeLVM, w.Space, false)
		if err != nil {
			return 0, 0, fmt.Errorf("tail churn=%t: launch: %w", churn, err)
		}
		heap, err := heapOf(w.Space)
		if err != nil {
			return 0, 0, fmt.Errorf("tail churn=%t: %w", churn, err)
		}
		tail := heap.Mapped[len(heap.Mapped)-1]
		cpu := sim.New(r.Cfg.Sim, sys.Walker())

		var hook func(int) float64
		if churn {
			cursor := heap.Base
			lastMgmt := p.MgmtCycles
			hook = func(i int) float64 {
				if i%512 != 511 {
					return 0
				}
				// Unmap-and-remap churn every 512 requests: frees keep the
				// index untouched (§5.2) and re-maps drive the gapped
				// insert path, the steady-state maintenance load.
				if sys.UnmapPage(1, cursor) {
					res.ChurnOps++
					if err := sys.MapPage(1, cursor, addr.Page4K); err == nil {
						res.ChurnOps++
					}
				}
				cursor++
				if cursor >= tail {
					cursor = heap.Base
				}
				d := p.MgmtCycles - lastMgmt
				lastMgmt = p.MgmtCycles
				res.MgmtCyclesCharged += d
				return float64(d)
			}
		}
		_, lats := cpu.RunTail(1, w, hook)
		return stats.Percentile(lats, 50), stats.Percentile(lats, 99), nil
	}

	if res.StaticP50, res.StaticP99, err = run(false); err != nil {
		return TailLatencyResult{}, err
	}
	if res.ChurnP50, res.ChurnP99, err = run(true); err != nil {
		return TailLatencyResult{}, err
	}
	return res, nil
}

// TailLatency reproduces §7.3's memcached tail study: request latencies
// are measured with the OS continuously mapping and unmapping pages (the
// LVM maintenance path) between requests; p99 must be unaffected. The
// study is entirely bespoke, so the whole result persists as a run-cache
// artifact.
func (r *Runner) TailLatency() (TailLatencyResult, error) {
	res, err := artifactFor(r, "tail", r.measureTail)
	if err != nil {
		return TailLatencyResult{}, err
	}

	tb := stats.NewTable("run", "p50 cycles", "p99 cycles")
	tb.AddRow("static", res.StaticP50, res.StaticP99)
	tb.AddRow("with LVM mgmt churn", res.ChurnP50, res.ChurnP99)
	tb.AddRow("churn ops", res.ChurnOps, fmt.Sprintf("%d mgmt cycles", res.MgmtCyclesCharged))
	res.Table = tb
	return res, nil
}
