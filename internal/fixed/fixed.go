// Package fixed implements the Q44.20 fixed-point arithmetic used by LVM's
// learned index models (paper §4.5).
//
// Each model parameter is stored as a signed 64-bit value with a 44-bit
// integer part and a 20-bit fractional part, so one parameter occupies 8
// bytes and a full linear model (slope + intercept) occupies 16 bytes. The
// lookup pipeline needs only one multiplication and one addition per node,
// which is what makes the hardware walker cheap (§7.4).
package fixed

import (
	"fmt"
	"math"
)

// FracBits is the number of fractional bits in a Q44.20 value.
const FracBits = 20

// IntBits is the number of integer bits, including the sign, in the 44.20
// split of the 64-bit container (paper §4.5).
const IntBits = 44

// One is the fixed-point representation of 1.0.
const One Q = 1 << FracBits

// Scale is the value of one unit in the fractional encoding (2^20).
const Scale = 1 << FracBits

// MaxInt is the largest integer exactly representable in the integer part
// (two's complement: 43 magnitude bits plus sign).
const MaxInt = int64(1)<<(IntBits-1) - 1

// MinInt is the most negative integer representable in the integer part.
const MinInt = -(int64(1) << (IntBits - 1))

// Q is a Q44.20 fixed-point number stored in two's complement.
type Q int64

// FromInt converts an integer to fixed point. Values outside the Q44.20
// integer range saturate, matching hardware clamp behaviour.
func FromInt(v int64) Q {
	if v > MaxInt {
		v = MaxInt
	} else if v < MinInt {
		v = MinInt
	}
	return Q(v << FracBits)
}

// FromFloat converts a float64 to the nearest representable fixed-point
// value. Training runs in floating point in the OS; the result is quantized
// with this function before being stored in a node.
func FromFloat(f float64) Q {
	if math.IsNaN(f) {
		return 0
	}
	scaled := f * Scale
	if scaled >= float64(math.MaxInt64) {
		return Q(math.MaxInt64)
	}
	if scaled <= float64(math.MinInt64) {
		return Q(math.MinInt64)
	}
	return Q(math.Round(scaled))
}

// Float returns the float64 value of q. Used only in training and tests;
// the lookup path never converts back to floating point.
func (q Q) Float() float64 { return float64(q) / Scale }

// Floor returns the largest integer less than or equal to q, i.e. the
// round-down used when a model output selects a child node or a table slot
// (paper Fig. 4, step 5).
func (q Q) Floor() int64 {
	return int64(q >> FracBits)
}

// Round returns q rounded to the nearest integer, half away from zero.
func (q Q) Round() int64 {
	if q >= 0 {
		return int64((q + One/2) >> FracBits)
	}
	return -int64((-q + One/2) >> FracBits)
}

// Add returns q + r with saturation on overflow.
func (q Q) Add(r Q) Q {
	s := q + r
	// Overflow detection: operands with the same sign producing a result
	// with the opposite sign.
	if (q > 0 && r > 0 && s < 0) || (q < 0 && r < 0 && s > 0) {
		if q > 0 {
			return Q(math.MaxInt64)
		}
		return Q(math.MinInt64)
	}
	return s
}

// Neg returns -q with saturation: negating the most negative container
// value yields the most positive, matching the Add/Mul clamp behaviour.
func (q Q) Neg() Q {
	if q == Q(math.MinInt64) {
		return Q(math.MaxInt64)
	}
	return -q
}

// MulInt returns q scaled by an integer factor, floored to an integer — the
// "how many slots does n pages cover" computation the OS performs when
// sizing gapped tables with the same quantized slope the walker predicts
// with. Computing it in fixed point keeps table sizing bit-for-bit
// consistent with walk-time predictions.
func (q Q) MulInt(n int64) int64 {
	return q.Mul(FromInt(n)).Floor()
}

// Mul returns q * r in fixed point using a 128-bit intermediate so that the
// full Q44.20 dynamic range is preserved. This is the single multiplication
// performed by the LVM page walker per node.
func (q Q) Mul(r Q) Q {
	// 128-bit signed multiply via unsigned halves.
	neg := false
	a, b := int64(q), int64(r)
	if a < 0 {
		a = -a
		neg = !neg
	}
	if b < 0 {
		b = -b
		neg = !neg
	}
	hi, lo := mul64(uint64(a), uint64(b))
	// Shift the 128-bit product right by FracBits.
	res := hi<<(64-FracBits) | lo>>FracBits
	if hi>>FracBits != 0 || res > math.MaxInt64 {
		// Saturate on overflow.
		if neg {
			return Q(math.MinInt64)
		}
		return Q(math.MaxInt64)
	}
	if neg {
		return Q(-int64(res))
	}
	return Q(int64(res))
}

// MulAdd returns q*x + b, the full linear-model evaluation the walker
// performs per node: one multiply, one add.
func MulAdd(slope, x, intercept Q) Q {
	return slope.Mul(x).Add(intercept)
}

// mul64 computes the 128-bit product of two unsigned 64-bit integers.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32

	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// String renders the fixed-point value for debugging.
func (q Q) String() string {
	return fmt.Sprintf("%.6f", q.Float())
}

// Bytes is the storage footprint of one model parameter (paper §4.5).
const Bytes = 8

// ModelBytes is the storage footprint of one linear model: slope + intercept.
const ModelBytes = 2 * Bytes
