package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromIntRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 139, -97, 1 << 30, -(1 << 30), MaxInt, MinInt}
	for _, v := range cases {
		q := FromInt(v)
		if got := q.Floor(); got != v {
			t.Errorf("FromInt(%d).Floor() = %d", v, got)
		}
	}
}

func TestFromIntSaturates(t *testing.T) {
	if got := FromInt(MaxInt + 10).Floor(); got != MaxInt {
		t.Errorf("positive saturation: got %d want %d", got, MaxInt)
	}
	if got := FromInt(MinInt - 10).Floor(); got != MinInt {
		t.Errorf("negative saturation: got %d want %d", got, MinInt)
	}
}

func TestFromFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
		tol  float64
	}{
		{0, 0, 0},
		{1, 1, 0},
		{-1, -1, 0},
		{0.5, 0.5, 0},
		{0.01, 0.01, 1e-6},
		{-97.25, -97.25, 0},
		{3.14159, 3.14159, 1e-6},
	}
	for _, c := range cases {
		got := FromFloat(c.in).Float()
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("FromFloat(%v).Float() = %v want %v", c.in, got, c.want)
		}
	}
}

func TestFromFloatNaN(t *testing.T) {
	if got := FromFloat(math.NaN()); got != 0 {
		t.Errorf("FromFloat(NaN) = %v want 0", got)
	}
}

func TestFromFloatInf(t *testing.T) {
	if got := FromFloat(math.Inf(1)); got != Q(math.MaxInt64) {
		t.Errorf("FromFloat(+Inf) = %v", got)
	}
	if got := FromFloat(math.Inf(-1)); got != Q(math.MinInt64) {
		t.Errorf("FromFloat(-Inf) = %v", got)
	}
}

func TestFloor(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{1.9, 1},
		{1.0, 1},
		{0.42, 0},
		{-0.5, -1},
		{-1.0, -1},
		{-1.1, -2},
		{42.0, 42},
	}
	for _, c := range cases {
		if got := FromFloat(c.in).Floor(); got != c.want {
			t.Errorf("Floor(%v) = %d want %d", c.in, got, c.want)
		}
	}
}

func TestRound(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{1.4, 1},
		{1.5, 2},
		{-1.4, -1},
		{-1.5, -2},
		{0, 0},
	}
	for _, c := range cases {
		if got := FromFloat(c.in).Round(); got != c.want {
			t.Errorf("Round(%v) = %d want %d", c.in, got, c.want)
		}
	}
}

func TestMulBasic(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{2, 3, 6},
		{0.5, 8, 4},
		{-2, 3, -6},
		{-2, -3, 6},
		{0.01, 139, 1.39},
		{1, 139, 139},
	}
	for _, c := range cases {
		got := FromFloat(c.a).Mul(FromFloat(c.b)).Float()
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("%v*%v = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMulAddPaperExample(t *testing.T) {
	// Paper Fig. 4: root model y = 0.01x - 1 with x = 139 selects child 0.
	y := MulAdd(FromFloat(0.01), FromInt(139), FromFloat(-1))
	if got := y.Floor(); got != 0 {
		t.Errorf("root model selected child %d, want 0", got)
	}
	// Leaf model y = 1x - 97 with x = 139 yields position 42 (0x2a-ish in
	// the paper's table; the PTE lives at PA 0x8b = base + 42*8... the
	// figure uses PA directly, here we check the linear arithmetic).
	y = MulAdd(FromInt(1), FromInt(139), FromInt(-97))
	if got := y.Floor(); got != 42 {
		t.Errorf("leaf model output %d, want 42", got)
	}
}

func TestMulLargeValues(t *testing.T) {
	// VPNs can be up to 2^36 for a 48-bit VA with 4KB pages; slopes near 1.
	vpn := int64(1) << 36
	y := MulAdd(FromInt(1), FromInt(vpn), FromInt(-5))
	if got := y.Floor(); got != vpn-5 {
		t.Errorf("large VPN eval: got %d want %d", got, vpn-5)
	}
}

func TestAddSaturation(t *testing.T) {
	big := Q(math.MaxInt64 - 5)
	if got := big.Add(Q(100)); got != Q(math.MaxInt64) {
		t.Errorf("positive add should saturate, got %v", int64(got))
	}
	small := Q(math.MinInt64 + 5)
	if got := small.Add(Q(-100)); got != Q(math.MinInt64) {
		t.Errorf("negative add should saturate, got %v", int64(got))
	}
}

func TestMulSaturation(t *testing.T) {
	big := FromInt(MaxInt)
	if got := big.Mul(big); got != Q(math.MaxInt64) {
		t.Errorf("positive mul should saturate, got %v", int64(got))
	}
	if got := big.Mul(FromInt(MinInt)); got != Q(math.MinInt64) {
		t.Errorf("mixed-sign mul should saturate, got %v", int64(got))
	}
}

func TestQuickMulMatchesFloat(t *testing.T) {
	// Property: for values within a moderate range, fixed-point multiply
	// matches float multiply within quantization error.
	f := func(a, b int32) bool {
		// Keep products inside the Q44.20 integer range.
		x := float64(a) / 65536
		y := float64(b) / 65536
		got := FromFloat(x).Mul(FromFloat(y)).Float()
		want := x * y
		return math.Abs(got-want) <= math.Abs(want)*1e-5+1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloorRound(t *testing.T) {
	// Property: Floor(q) <= q.Float() < Floor(q)+1.
	f := func(v int64) bool {
		q := Q(v)
		fl := float64(q.Floor())
		return fl <= q.Float() && q.Float() < fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(a, b int64) bool {
		return Q(a).Add(Q(b)) == Q(b).Add(Q(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelSizeMatchesPaper(t *testing.T) {
	if Bytes != 8 {
		t.Errorf("each parameter must be 8 bytes (paper §4.5), got %d", Bytes)
	}
	if ModelBytes != 16 {
		t.Errorf("each node must be 16 bytes (paper §4.5), got %d", ModelBytes)
	}
}
