package fpt

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// TestChurnOracle runs random map/unmap/lookup traffic over a span wide
// enough to create many regions, on fresh memory (folded fast path).
func TestChurnOracle(t *testing.T) {
	mem := phys.New(512 << 20)
	tb, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	oracle := map[addr.VPN]pte.Entry{}
	for op := 0; op < 10000; op++ {
		v := addr.VPN(rng.Intn(1 << 16)) // ~128 regions of 512 pages
		if _, ok := oracle[v]; ok && rng.Intn(3) == 0 {
			if !tb.Unmap(v) {
				t.Fatalf("op %d: unmap failed", op)
			}
			delete(oracle, v)
		} else {
			e := pte.New(addr.PPN(op+1), addr.Page4K)
			if err := tb.Map(v, e); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			oracle[v] = e
		}
	}
	for v := addr.VPN(0); v < 1<<16; v += 3 {
		got, ok := tb.Lookup(v)
		want, mapped := oracle[v]
		if ok != mapped || (mapped && got != want) {
			t.Fatalf("VPN %d: got (%v,%t) want (%v,%t)", v, got, ok, want, mapped)
		}
	}
	if tb.FoldFailures() != 0 {
		t.Errorf("fresh memory recorded %d fold failures", tb.FoldFailures())
	}
}

// TestFoldedFractionDegradesWithFragmentation maps the same working set
// onto progressively harsher physical memories; the folded fraction must be
// monotone non-increasing while correctness holds throughout — the §7.5
// argument for learning over flattening.
func TestFoldedFractionDegradesWithFragmentation(t *testing.T) {
	fractions := make([]float64, 0, 3)
	for _, cap := range []int{phys.MaxOrder, 8, 6} { // unlimited, 1MB, 256KB
		mem := phys.New(256 << 20)
		if cap < phys.MaxOrder {
			mem.Fragment(3, phys.DatacenterFragmentation)
			mem.SetContiguityCap(cap)
		}
		tb, err := New(mem)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4096; i++ {
			v := addr.VPN(i * 17)
			if err := tb.Map(v, pte.New(addr.PPN(i+1), addr.Page4K)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4096; i += 31 {
			if _, ok := tb.Lookup(addr.VPN(i * 17)); !ok {
				t.Fatalf("cap %d: key lost", cap)
			}
		}
		fractions = append(fractions, tb.FoldedFraction())
	}
	if fractions[0] != 1 {
		t.Errorf("unfragmented folded fraction = %v, want 1", fractions[0])
	}
	for i := 1; i < len(fractions); i++ {
		if fractions[i] > fractions[i-1] {
			t.Errorf("folded fraction rose under harsher fragmentation: %v", fractions)
		}
	}
	if last := fractions[len(fractions)-1]; last > 0.1 {
		t.Errorf("256KB cap still folds %.0f%% of regions", 100*last)
	}
}

// TestWalkRefsFoldedVsUnfolded verifies the performance mechanism directly:
// a cold walk in a folded region needs 2 memory refs, an unfolded region
// needs more (the flattened levels decompose back to radix steps).
func TestWalkRefsFoldedVsUnfolded(t *testing.T) {
	folded := func() int {
		tb, err := New(phys.New(128 << 20))
		if err != nil {
			t.Fatal(err)
		}
		tb.Map(12345, pte.New(1, addr.Page4K))
		w := NewWalker()
		w.Attach(1, tb)
		return w.Walk(1, 12345).Refs()
	}()
	unfolded := func() int {
		mem := phys.New(128 << 20)
		mem.Fragment(3, phys.DatacenterFragmentation)
		mem.SetContiguityCap(6)
		tb, err := New(mem)
		if err != nil {
			t.Fatal(err)
		}
		tb.Map(12345, pte.New(1, addr.Page4K))
		w := NewWalker()
		w.Attach(1, tb)
		return w.Walk(1, 12345).Refs()
	}()
	if folded != 2 {
		t.Errorf("cold folded walk = %d refs, want 2", folded)
	}
	if unfolded <= folded {
		t.Errorf("unfolded walk (%d refs) not more expensive than folded (%d)", unfolded, folded)
	}
}
