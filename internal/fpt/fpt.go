// Package fpt implements Flattened Page Tables (Park et al., ASPLOS'22),
// the §7.5.3 comparison: adjacent radix levels are folded into 2 MB tables
// (L4+L3 into one upper table, L2+L1 into one leaf table per 1 GB region),
// cutting a cold walk from four accesses to two — but only when the 2 MB
// physically contiguous table allocations succeed. Under fragmentation the
// affected regions degrade to radix behaviour, which is exactly the effect
// the paper measures.
package fpt

import (
	"fmt"
	"sort"

	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/stats"
)

// foldOrder is the buddy order of a folded table (2 MB).
const foldOrder = 9

// upperIndexBits is the folded L4+L3 index width (18 VPN bits → 2^18
// entries × 8 B = 2 MB).
const upperIndexBits = 18

// region is one 1 GB VA region's folded leaf table.
type region struct {
	folded bool
	base   addr.PPN // folded L2+L1 table (2 MB), when folded
	// Fallback radix pieces: a PMD page plus one 4 KB PTE table per 2 MB
	// sub-region, allocated lazily — exactly the layout radix would use,
	// so the unfolded path has radix's cache behaviour.
	pmdBase   addr.PPN
	leafPages map[uint64]addr.PPN
}

// Table is one process's flattened page table.
type Table struct {
	mem *phys.Memory
	// upper is the folded L4+L3 table.
	upperFolded bool
	upperBase   addr.PPN
	// regions maps VPN>>18 (1 GB granule) to its leaf table state.
	regions map[uint64]*region
	// entries is the translation store (tagged by aligned VPN).
	entries map[addr.VPN]pte.Entry

	foldFailures stats.Counter
}

// New creates a flattened table; the upper fold is allocated eagerly.
func New(mem *phys.Memory) (*Table, error) {
	t := &Table{
		mem:     mem,
		regions: make(map[uint64]*region),
		entries: make(map[addr.VPN]pte.Entry),
	}
	if base, err := mem.Alloc(foldOrder); err == nil {
		t.upperFolded = true
		t.upperBase = base
	} else {
		// Degenerate: even the upper fold failed; behave as radix from the
		// start.
		base, err := mem.Alloc(0)
		if err != nil {
			return nil, fmt.Errorf("fpt: allocating root: %w", err)
		}
		t.upperBase = base
		t.foldFailures.Inc()
	}
	return t, nil
}

func (t *Table) regionFor(v addr.VPN) *region {
	key := uint64(v) >> upperIndexBits
	r, ok := t.regions[key]
	if !ok {
		// First touch of a 1 GB region: the install below runs once per
		// region per process lifetime, not per translation; the steady-state
		// walk takes the map-hit path above (TestStepZeroAllocs is the
		// dynamic backstop).
		r = &region{} //lint:allow hotalloc first-touch region install, once per 1GB region
		// Try the 2 MB folded leaf allocation; page-fault-time compaction
		// is not tolerable, so failure means a radix fallback (§7.5.3).
		//lint:allow hotalloc first-touch region install, once per 1GB region
		if base, err := t.mem.Alloc(foldOrder); err == nil {
			r.folded = true
			r.base = base
		} else {
			t.foldFailures.Inc()
			r.leafPages = make(map[uint64]addr.PPN) //lint:allow hotalloc first-touch region install, once per 1GB region
			//lint:allow hotalloc first-touch region install, once per 1GB region
			if base, err := t.mem.Alloc(0); err == nil {
				r.pmdBase = base
			}
		}
		t.regions[key] = r
	}
	return r
}

// Map installs a translation.
func (t *Table) Map(v addr.VPN, e pte.Entry) error {
	tag := addr.AlignDown(v, e.Size())
	t.entries[tag] = e
	t.regionFor(v)
	return nil
}

// Unmap removes a translation.
func (t *Table) Unmap(v addr.VPN) bool {
	for _, s := range [...]addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		tag := addr.AlignDown(v, s)
		if e, ok := t.entries[tag]; ok && e.Size() == s {
			delete(t.entries, tag)
			return true
		}
	}
	return false
}

// Lookup is the software walk.
func (t *Table) Lookup(v addr.VPN) (pte.Entry, bool) {
	for _, s := range [...]addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		tag := addr.AlignDown(v, s)
		if e, ok := t.entries[tag]; ok && e.Size() == s {
			return e, true
		}
	}
	return 0, false
}

// FoldFailures counts 2 MB table allocations that fell back to radix.
func (t *Table) FoldFailures() uint64 { return t.foldFailures.Value() }

// FoldedFraction returns the fraction of touched 1 GB regions with folded
// leaf tables.
func (t *Table) FoldedFraction() float64 {
	if len(t.regions) == 0 {
		return 1
	}
	folded := 0
	for _, r := range t.regions {
		if r.folded {
			folded++
		}
	}
	return float64(folded) / float64(len(t.regions))
}

func (t *Table) upperPA(v addr.VPN) addr.PA {
	idx := uint64(v) >> upperIndexBits
	span := phys.BlockBytes(foldOrder) / pte.Bytes
	return addr.SlotPA(t.upperBase, idx%span, pte.Bytes)
}

func (t *Table) leafPA(r *region, v addr.VPN) addr.PA {
	idx := uint64(v) & ((1 << upperIndexBits) - 1)
	if r.folded {
		return addr.SlotPA(r.base, idx, pte.Bytes)
	}
	// Unfolded: one real 4 KB PTE table per 2 MB sub-region, like radix.
	sub := uint64(v) >> 9
	page, ok := r.leafPages[sub]
	if !ok {
		// Lazy PTE-table install, once per 2 MB sub-region; making it eager
		// would reorder PFN allocation and change the measured layout.
		//lint:allow hotalloc first-touch leaf-table install, once per 2MB sub-region
		if p, err := t.mem.Alloc(0); err == nil {
			page = p
		} else {
			page = r.pmdBase
		}
		r.leafPages[sub] = page
	}
	return addr.SlotPA(page, idx%512, pte.Bytes)
}

func (t *Table) pmdPA(r *region, v addr.VPN) addr.PA {
	return addr.SlotPA(r.pmdBase, uint64(v)>>9%512, pte.Bytes)
}

// Release returns every table allocation — the upper fold, folded leaf
// regions, and radix-fallback pieces — to the allocator (process exit).
func (t *Table) Release() {
	upperOrder := 0
	if t.upperFolded {
		upperOrder = foldOrder
	}
	t.mem.Free(t.upperBase, upperOrder)
	// Free in sorted key order (the oskernel.Kill idiom): map iteration is
	// randomized, and the buddy allocator's split/merge history depends on
	// the order frames come back.
	keys := make([]uint64, 0, len(t.regions))
	for key := range t.regions {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		r := t.regions[key]
		if r.folded {
			t.mem.Free(r.base, foldOrder)
			continue
		}
		if r.pmdBase != 0 {
			t.mem.Free(r.pmdBase, 0)
		}
		subs := make([]uint64, 0, len(r.leafPages))
		for sub := range r.leafPages {
			subs = append(subs, sub)
		}
		sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
		for _, sub := range subs {
			t.mem.Free(r.leafPages[sub], 0)
		}
	}
	t.regions = map[uint64]*region{}
	t.entries = map[addr.VPN]pte.Entry{}
}

// Walker is the FPT hardware walker with a PWC over folded upper entries.
type Walker struct {
	tables map[uint16]*Table
	// lastASID/lastTable memoize the most recent tables lookup so batched
	// walks skip the map per access; Attach/Detach invalidate it.
	lastASID  uint16
	lastTable *Table
	upper     *mmu.PWC
	// buf is the reusable walk-trace buffer; Walk outcomes view it and
	// stay valid until the next Walk.
	buf mmu.WalkBuf

	// plans queue the walk plans recorded by Lookup, consumed in order by
	// WalkBatch (see the mmu.Lookuper contract).
	plans    []plan
	planPos  int
	planASID uint16
}

// plan is one functional lookup's record: the fetch PAs of the folded (or
// radix-fallback) chain plus the resolved entry. Region and lazy
// leaf-table installs happen during Lookup, in arrival order — exactly
// where the scalar Walk would perform them.
type plan struct {
	vpn     addr.VPN
	noTable bool
	folded  bool
	upperPA addr.PA
	pmdPA   addr.PA
	leafPA  addr.PA
	entry   pte.Entry
	found   bool
}

// NewWalker creates the walker (32-entry upper PWC, as radix's per-level
// size in Table 1).
func NewWalker() *Walker {
	return &Walker{tables: make(map[uint16]*Table), upper: mmu.NewPWC("fpt-upper", 32)}
}

// Attach registers a table under an ASID.
func (w *Walker) Attach(asid uint16, t *Table) {
	w.tables[asid] = t
	w.lastTable = nil
}

// Detach removes a process's table and flushes its PWC entries.
func (w *Walker) Detach(asid uint16) {
	delete(w.tables, asid)
	w.lastTable = nil
	w.upper.FlushASID(asid)
}

// table resolves an ASID's table through the one-entry memo.
func (w *Walker) table(asid uint16) (*Table, bool) {
	if w.lastTable != nil && w.lastASID == asid {
		return w.lastTable, true
	}
	t, ok := w.tables[asid]
	if ok {
		w.lastASID, w.lastTable = asid, t
	}
	return t, ok
}

// Name implements mmu.Walker.
func (w *Walker) Name() string { return "fpt" }

// Snapshot implements metrics.Source: the folded-upper-level PWC counters.
func (w *Walker) Snapshot() metrics.Set {
	var s metrics.Set
	s.Merge("pwc.upper", w.upper.Snapshot())
	return s
}

var _ metrics.Source = (*Walker)(nil)

// Walk implements mmu.Walker: folded regions take two sequential accesses
// (one with a PWC hit); unfolded regions behave like radix (four cold,
// PWC-trimmed warm).
func (w *Walker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	t, ok := w.table(asid)
	if !ok {
		return mmu.Outcome{}
	}
	w.buf.Reset()
	return w.walkInto(&w.buf, t, asid, v)
}

// walkInto is Walk's engine over a caller-supplied (already reset) buffer,
// so the batch path's mismatch fallback can walk into a slot buffer.
func (w *Walker) walkInto(b *mmu.WalkBuf, t *Table, asid uint16, v addr.VPN) mmu.Outcome {
	r := t.regionFor(v)

	upperHit := w.upper.Lookup(asid, uint64(v)>>upperIndexBits)
	if !upperHit {
		b.AddGroup(t.upperPA(v))
		w.upper.Insert(asid, uint64(v)>>upperIndexBits)
	}
	if r.folded && t.upperFolded {
		b.AddGroup(t.leafPA(r, v))
	} else {
		// Radix fallback inside this region: PMD then PTE (the upper
		// covered L4+L3 equivalents).
		b.AddGroup(t.pmdPA(r, v))
		b.AddGroup(t.leafPA(r, v))
	}
	e, found := t.Lookup(v)
	return b.Outcome(e, found, mmu.StepCycles)
}

// Lookup implements mmu.Lookuper: resolve the translation functionally
// (performing any first-touch region or lazy leaf-table installs exactly
// where the scalar Walk would) and record the fetch chain for WalkBatch.
func (w *Walker) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	if w.planASID != asid {
		w.plans = w.plans[:0]
		w.planPos = 0
		w.planASID = asid
	}
	var p plan
	p.vpn = v
	t, ok := w.table(asid)
	if !ok {
		p.noTable = true
		//lint:allow hotalloc plan queue grows to the batch size once, then recycles
		w.plans = append(w.plans, p)
		return 0, false
	}
	r := t.regionFor(v)
	p.upperPA = t.upperPA(v)
	p.folded = r.folded && t.upperFolded
	if !p.folded {
		p.pmdPA = t.pmdPA(r, v)
	}
	p.leafPA = t.leafPA(r, v)
	p.entry, p.found = t.Lookup(v)
	//lint:allow hotalloc plan queue grows to the batch size once, then recycles
	w.plans = append(w.plans, p)
	return p.entry, p.found
}

// replay performs the timing half of a planned walk: the upper-PWC probe
// and fill run live, the fetch chain comes from the plan.
func (w *Walker) replay(b *mmu.WalkBuf, asid uint16, p *plan) mmu.Outcome {
	if p.noTable {
		return mmu.Outcome{}
	}
	if !w.upper.Lookup(asid, uint64(p.vpn)>>upperIndexBits) {
		b.AddGroup(p.upperPA)
		w.upper.Insert(asid, uint64(p.vpn)>>upperIndexBits)
	}
	if p.folded {
		b.AddGroup(p.leafPA)
	} else {
		b.AddGroup(p.pmdPA)
		b.AddGroup(p.leafPA)
	}
	return b.Outcome(p.entry, p.found, mmu.StepCycles)
}

// WalkBatch implements mmu.BatchWalker: replay the plans recorded by the
// preceding Lookup sequence (falling back to fresh walks on mismatch) and
// drain the plan queue.
func (w *Walker) WalkBatch(asid uint16, vpns []addr.VPN, bufs *mmu.WalkBatchBuf) {
	bufs.Reset(len(vpns))
	for i, v := range vpns {
		b := bufs.Buf(i)
		if w.planPos < len(w.plans) && asid == w.planASID && w.plans[w.planPos].vpn == v {
			p := &w.plans[w.planPos]
			w.planPos++
			bufs.SetOutcome(i, w.replay(b, asid, p))
			continue
		}
		if t, ok := w.table(asid); ok {
			bufs.SetOutcome(i, w.walkInto(b, t, asid, v))
		} else {
			bufs.SetOutcome(i, mmu.Outcome{})
		}
	}
	w.plans = w.plans[:0]
	w.planPos = 0
}

var _ mmu.Walker = (*Walker)(nil)
var _ mmu.BatchWalker = (*Walker)(nil)
var _ mmu.Lookuper = (*Walker)(nil)
