package fpt

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func TestMapLookupWalkFolded(t *testing.T) {
	mem := phys.New(128 << 20)
	tb, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	tb.Map(139, pte.New(0xff, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)

	// Cold folded walk: 2 sequential accesses (upper + leaf).
	out := w.Walk(1, 139)
	if !out.Found {
		t.Fatal("walk failed")
	}
	if out.Refs() != 2 {
		t.Errorf("cold folded walk = %d refs, want 2", out.Refs())
	}
	// Warm: the upper PWC entry trims to 1.
	out = w.Walk(1, 140)
	tb.Map(140, pte.New(0x100, addr.Page4K))
	out = w.Walk(1, 140)
	if !out.Found || out.Refs() != 1 {
		t.Errorf("warm folded walk = %d refs, want 1", out.Refs())
	}
	if tb.FoldedFraction() != 1 {
		t.Errorf("folded fraction = %v", tb.FoldedFraction())
	}
}

func TestFragmentationDegradesToRadix(t *testing.T) {
	mem := phys.New(128 << 20)
	// Exhaust 2MB contiguity before creating the table.
	mem.Fragment(3, phys.DatacenterFragmentation)
	mem.SetContiguityCap(6) // ≤256 KB: no 2MB table allocations possible

	tb, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	tb.Map(139, pte.New(0xff, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)

	out := w.Walk(1, 139)
	if !out.Found {
		t.Fatal("walk failed under fragmentation")
	}
	// Unfolded region: more refs than the folded 2 (radix-like behaviour).
	if out.Refs() < 3 {
		t.Errorf("fragmented FPT walk = %d refs, expected radix-like ≥3", out.Refs())
	}
	if tb.FoldFailures() == 0 {
		t.Error("no fold failures recorded under fragmentation")
	}
	if tb.FoldedFraction() != 0 {
		t.Errorf("folded fraction = %v under full fragmentation", tb.FoldedFraction())
	}
}

func TestUnmapAndHuge(t *testing.T) {
	mem := phys.New(128 << 20)
	tb, _ := New(mem)
	tb.Map(1024, pte.New(512, addr.Page2M))
	if e, ok := tb.Lookup(1300); !ok || e.Size() != addr.Page2M {
		t.Error("huge lookup failed")
	}
	if !tb.Unmap(1300) {
		t.Error("unmap failed")
	}
	if _, ok := tb.Lookup(1024); ok {
		t.Error("unmapped huge page still found")
	}
}

func TestUnknownASID(t *testing.T) {
	w := NewWalker()
	if out := w.Walk(5, 1); out.Found {
		t.Error("unknown ASID translated")
	}
}
