package gapped

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func TestPlaceFromMonotone(t *testing.T) {
	m := phys.New(16 << 20)
	tb, _ := New(m, 1024, phys.MaxOrder)
	hint := 0
	// A plateau of equal predictions must place linearly without quadratic
	// scanning and stay sorted.
	for i := 0; i < 500; i++ {
		slot, err := tb.PlaceFrom(hint, 100, addr.VPN(1000+i), pte.New(addr.PPN(i+1), addr.Page4K))
		if err != nil {
			t.Fatal(err)
		}
		if slot < 100 {
			t.Fatalf("slot %d below prediction", slot)
		}
		hint = slot + 1
	}
	if tb.Unsorted() {
		t.Error("monotone placement must stay sorted")
	}
	prev := addr.VPN(0)
	for i := 0; i < tb.Slots(); i++ {
		if s := tb.Get(i); s.Valid() {
			if s.Tag < prev {
				t.Fatal("order violated")
			}
			prev = s.Tag
		}
	}
}

func TestPlaceFromWrapFlagsUnsorted(t *testing.T) {
	m := phys.New(16 << 20)
	tb, _ := New(m, 256, phys.MaxOrder)
	hint := 0
	for i := 0; i < 200; i++ {
		s, err := tb.PlaceFrom(hint, 450, addr.VPN(1000+i), pte.New(addr.PPN(i+1), addr.Page4K))
		if err != nil {
			t.Fatal(err)
		}
		hint = s + 1
	}
	if !tb.Unsorted() {
		t.Error("wraparound placement must void sortedness")
	}
}

func TestInsertFarDisplacementFlagsUnsorted(t *testing.T) {
	m := phys.New(16 << 20)
	tb, _ := New(m, 1024, phys.MaxOrder)
	// Fill a dense block so an insert is displaced beyond one cluster.
	for i := 0; i < 32; i++ {
		tb.Set(100+i, pte.Tagged{Tag: addr.VPN(5000 + i), Entry: pte.New(addr.PPN(i+1), addr.Page4K)})
	}
	if tb.Unsorted() {
		t.Fatal("Set must not flag")
	}
	if _, _, err := tb.Insert(115, 9999, pte.New(77, addr.Page4K), 64); err != nil {
		t.Fatal(err)
	}
	if !tb.Unsorted() {
		t.Error("displacement beyond a cluster must flag unsorted")
	}
}

func TestLookupBinaryFindsAcrossTable(t *testing.T) {
	m := phys.New(64 << 20)
	tb, _ := New(m, 4096, phys.MaxOrder)
	// Sorted sparse content with in-data gaps (ga-style).
	rng := rand.New(rand.NewSource(5))
	var tags []addr.VPN
	slot := 0
	v := addr.VPN(10000)
	for slot < 3900 {
		v += addr.VPN(1 + rng.Intn(3))
		//lint:allow addrtypes identity VPN=PPN mapping keeps the test's expected entries self-describing
		tb.Set(slot, pte.Tagged{Tag: v, Entry: pte.New(addr.PPN(v), addr.Page4K)})
		tags = append(tags, v)
		slot += 1 + rng.Intn(3) // leaves gaps, sometimes whole empty clusters
	}
	for i, tag := range tags {
		// Deliberately bad predictions: binary search must still find the
		// entry in O(log) accesses.
		pred := (i * 7919) % 4096
		res := tb.LookupBinary(pred, tag)
		if !res.Found {
			t.Fatalf("binary lost tag %#x (pred %d)", uint64(tag), pred)
		}
		if res.Accesses > 40 {
			t.Fatalf("binary took %d accesses", res.Accesses)
		}
	}
	// Misses must terminate with bounded cost.
	res := tb.LookupBinary(2000, 5)
	if res.Found {
		t.Fatal("found nonexistent key")
	}
	if res.Accesses > 40 {
		t.Fatalf("miss took %d accesses", res.Accesses)
	}
}

func TestLookupBinaryHugePages(t *testing.T) {
	m := phys.New(16 << 20)
	tb, _ := New(m, 512, phys.MaxOrder)
	// Sorted huge-page entries.
	for i := 0; i < 100; i++ {
		tb.Set(i*3, pte.Tagged{Tag: addr.VPN(i * 512), Entry: pte.New(addr.PPN(i*512+1), addr.Page2M)})
	}
	// Interior VPNs found via the 2MB-base pass.
	for _, v := range []addr.VPN{100, 512*37 + 400, 512*99 + 511} {
		res := tb.LookupBinary(0, v)
		if !res.Found || res.Entry.Size() != addr.Page2M {
			t.Fatalf("interior VPN %d not resolved", v)
		}
	}
}

func TestUsedPages(t *testing.T) {
	m := phys.New(16 << 20)
	tb, _ := New(m, 256, phys.MaxOrder)
	tb.Set(0, pte.Tagged{Tag: 1, Entry: pte.New(1, addr.Page4K)})
	tb.Set(1, pte.Tagged{Tag: 512, Entry: pte.New(512, addr.Page2M)})
	if got := tb.UsedPages(); got != 513 {
		t.Errorf("used pages = %d want 513", got)
	}
}
