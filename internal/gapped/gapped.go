// Package gapped implements LVM's gapped page tables (paper §4.2.2): small
// arrays of VPN-tagged page table entries with deliberate empty slots
// ("gaps") left at build time so that later insertions rarely displace
// anything.
//
// A table is backed by physically contiguous extents allocated from the
// buddy allocator. The common case is a single extent — the leaf model's
// output plus the extent base yields the PTE's physical address directly.
// When a table is expanded (rescaling, §4.3.4) LVM first tries to grow the
// existing extent in place via phys.AllocExact; only if the neighbouring
// physical block is taken does it chain a second extent. Extent bases are
// part of the leaf node's cached descriptor, so lookups remain single-access
// either way.
package gapped

import (
	"errors"
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// SlotBytes is the physical footprint of one tagged slot.
const SlotBytes = pte.TaggedBytes

// SlotsPerPage is the number of slots in one 4 KB page.
const SlotsPerPage = addr.PageSize4K / SlotBytes

// ErrFull is returned when an insertion cannot find a free slot within its
// search reach; the caller (the learned index) responds by retraining the
// leaf or subdividing (paper §4.3.4).
var ErrFull = errors.New("gapped: no free slot within reach")

// extent is one physically contiguous piece of the table.
type extent struct {
	base  addr.PPN // first physical page
	order int      // buddy order of the allocation
	slots int      // number of slots in this extent
	start int      // first slot index covered
}

// Table is a gapped page table.
type Table struct {
	mem      *phys.Memory
	extents  []extent
	slots    []pte.Tagged
	used     int
	unsorted bool
	// clusterScratch backs LookupResult.Clusters: a result's Clusters view
	// it and stay valid only until the table's next Lookup/LookupBinary.
	clusterScratch []int
}

// New allocates a gapped table with capacity for at least nslots slots,
// bounded by the largest physically contiguous block currently available
// (maxOrder). The actual capacity is rounded up to whole pages.
func New(mem *phys.Memory, nslots, maxOrder int) (*Table, error) {
	if nslots < 1 {
		nslots = 1
	}
	bytes := uint64(nslots) * SlotBytes
	order := phys.OrderForBytes(bytes)
	if order > maxOrder {
		order = maxOrder
	}
	base, err := mem.Alloc(order)
	if err != nil {
		return nil, fmt.Errorf("gapped: allocating order-%d table: %w", order, err)
	}
	capSlots := int(phys.BlockBytes(order) / SlotBytes)
	t := &Table{
		mem:     mem,
		extents: []extent{{base: base, order: order, slots: capSlots, start: 0}},
		slots:   make([]pte.Tagged, capSlots),
	}
	return t, nil
}

// Slots returns the table's slot capacity.
func (t *Table) Slots() int { return len(t.slots) }

// Used returns the number of occupied slots.
func (t *Table) Used() int { return t.used }

// UsedPages returns the total 4 KB base pages covered by live entries
// (huge pages count their full span).
func (t *Table) UsedPages() uint64 {
	var pages uint64
	for _, s := range t.slots {
		if s.Valid() {
			pages += s.Entry.Size().BaseVPNs()
		}
	}
	return pages
}

// LoadFactor returns used/capacity.
func (t *Table) LoadFactor() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return float64(t.used) / float64(len(t.slots))
}

// Extents returns the number of physically contiguous runs backing the
// table (1 in the common case; in-place expansions keep the run count at 1
// even though they add allocator blocks).
func (t *Table) Extents() int {
	runs := 0
	var nextPA addr.PA
	for i, e := range t.extents {
		pa := addr.PAOf(e.base)
		if i == 0 || pa != nextPA {
			runs++
		}
		nextPA = pa + addr.PA(phys.BlockBytes(e.order))
	}
	return runs
}

// FootprintBytes returns the physical memory consumed by the table,
// including gaps — the quantity §7.3's memory-consumption comparison sums.
func (t *Table) FootprintBytes() uint64 {
	var b uint64
	for _, e := range t.extents {
		b += phys.BlockBytes(e.order)
	}
	return b
}

// SlotPA returns the physical address of slot i.
func (t *Table) SlotPA(i int) addr.PA {
	for _, e := range t.extents {
		if i >= e.start && i < e.start+e.slots {
			return addr.SlotPA(e.base, uint64(i-e.start), SlotBytes)
		}
	}
	//lint:allow hotalloc panic guard, unreachable while extents cover the table
	panic(fmt.Sprintf("gapped: slot %d out of range (cap %d)", i, len(t.slots)))
}

// ClusterOf returns the cache-line cluster index containing slot i; the
// walker fetches whole 64-byte clusters (pte.ClusterSlots slots each).
func ClusterOf(i int) int { return i / pte.ClusterSlots }

// ClusterPA returns the physical address of cluster c (its first slot).
func (t *Table) ClusterPA(c int) addr.PA { return t.SlotPA(c * pte.ClusterSlots) }

// Get returns the slot contents.
func (t *Table) Get(i int) pte.Tagged { return t.slots[i] }

// Set stores a slot directly (used by the OS for PTE modifications that do
// not move entries, e.g. permission changes).
func (t *Table) Set(i int, s pte.Tagged) {
	if t.slots[i].Valid() && !s.Valid() {
		t.used--
	} else if !t.slots[i].Valid() && s.Valid() {
		t.used++
	}
	t.slots[i] = s
}

// clamp bounds a predicted slot into the table.
func (t *Table) clamp(pred int) int {
	if pred < 0 {
		return 0
	}
	if pred >= len(t.slots) {
		return len(t.slots) - 1
	}
	return pred
}

// Insert places a tagged entry at the predicted slot, or at the nearest
// free slot found by searching outward (the paper's exponential search,
// §4.3.2). reach bounds how far (in slots) the search may stray; a reach
// of r keeps worst-case lookup within the trained error bound.
//
// It returns the chosen slot and whether the predicted slot was already
// occupied by a different key (a collision in the paper's §7.3 sense).
func (t *Table) Insert(pred int, tag addr.VPN, e pte.Entry, reach int) (slot int, collided bool, err error) {
	p := t.clamp(pred)
	if cur := t.slots[p]; cur.Valid() && cur.Tag == tag {
		// Re-map of an existing key: overwrite in place.
		t.slots[p].Entry = e
		return p, false, nil
	}
	if !t.slots[p].Valid() {
		t.slots[p] = pte.Tagged{Tag: tag, Entry: e}
		t.used++
		return p, false, nil
	}
	// Predicted slot taken by another key: search outward over the full
	// reach for an existing slot holding this key — overwriting in place is
	// mandatory, because placing a second entry for the same tag leaves a
	// stale duplicate that a later walk or retrain can resurrect. Only when
	// the key is provably absent within reach does the entry go to the
	// nearest free slot seen along the way (the paper's exponential search,
	// §4.3.2), preferring the closer side. Displacements beyond one cluster
	// void the approximate sortedness the binary miss path relies on; the
	// table flags itself so misses fall back to the exhaustive search.
	free, freeDist := -1, 0
	for d := 1; d <= reach; d++ {
		if p+d < len(t.slots) {
			if cur := t.slots[p+d]; cur.Valid() && cur.Tag == tag {
				t.slots[p+d].Entry = e
				return p + d, true, nil
			} else if !cur.Valid() && free < 0 {
				free, freeDist = p+d, d
			}
		}
		if p-d >= 0 {
			if cur := t.slots[p-d]; cur.Valid() && cur.Tag == tag {
				t.slots[p-d].Entry = e
				return p - d, true, nil
			} else if !cur.Valid() && free < 0 {
				free, freeDist = p-d, d
			}
		}
	}
	if free >= 0 {
		t.slots[free] = pte.Tagged{Tag: tag, Entry: e}
		t.used++
		if freeDist > pte.ClusterSlots {
			t.unsorted = true
		}
		return free, true, nil
	}
	return 0, true, ErrFull
}

// PlaceFrom inserts during an ascending bulk build: the slot is the first
// free slot at or above max(pred, hint). Because bulk builds insert keys in
// ascending key order with monotone predictions, the scan never needs to
// look below the hint, which keeps pathological plateau placements linear.
// Returns the chosen slot (also the next hint).
func (t *Table) PlaceFrom(hint, pred int, tag addr.VPN, e pte.Entry) (int, error) {
	p := t.clamp(pred)
	if p < hint {
		p = hint
	}
	for p < len(t.slots) && t.slots[p].Valid() {
		p++
	}
	if p >= len(t.slots) {
		// Clamped predictions piled up at the table end; fall back to the
		// first free slot anywhere (rare, pathological spaces only). This
		// voids approximate sortedness.
		t.unsorted = true
		p = 0
		for p < len(t.slots) && t.slots[p].Valid() {
			p++
		}
		if p >= len(t.slots) {
			return 0, ErrFull
		}
	}
	t.slots[p] = pte.Tagged{Tag: tag, Entry: e}
	t.used++
	return p, nil
}

// LookupResult reports the outcome of a table lookup.
type LookupResult struct {
	Entry pte.Entry
	Slot  int
	// Accesses is the number of 64-byte cluster fetches performed,
	// including the first; single-access translation means Accesses == 1.
	Accesses int
	// Clusters lists the cluster indices fetched, in fetch order; the
	// simulator turns these into physical cache-line addresses. The slice
	// views the table's reusable scratch and stays valid only until the
	// table's next Lookup/LookupBinary.
	Clusters []int
	Found    bool
}

// Lookup searches for the entry translating vpn starting at the predicted
// slot. The search fetches the predicted cluster first and then expands
// outward cluster by cluster, up to maxExtra additional fetches — the
// bounded search of §4.3.3 with C_err = maxExtra.
func (t *Table) Lookup(pred int, vpn addr.VPN, maxExtra int) LookupResult {
	p := t.clamp(pred)
	res := LookupResult{Clusters: t.clusterScratch[:0]}
	// The defer and search closures below do not escape Lookup: the
	// compiler stack-allocates them (TestStepZeroAllocs is the dynamic
	// backstop).
	defer func() { t.clusterScratch = res.Clusters }() //lint:allow hotalloc non-escaping closure, stack-allocated
	startCluster := ClusterOf(p)
	lastCluster := ClusterOf(len(t.slots) - 1)

	// checkCluster scans one cluster; it also reports the range of valid
	// tags seen so the search can prune a direction: the table is kept in
	// approximately sorted order (monotone build placement, nearest-slot
	// inserts within InsertReach), so a cluster whose smallest tag already
	// exceeds the target means the target cannot live above it.
	//lint:allow hotalloc non-escaping closure, stack-allocated
	checkCluster := func(c int) (e pte.Entry, slot int, found bool, minTag, maxTag addr.VPN, any bool) {
		lo := c * pte.ClusterSlots
		hi := lo + pte.ClusterSlots
		if hi > len(t.slots) {
			hi = len(t.slots)
		}
		for i := lo; i < hi; i++ {
			s := t.slots[i]
			if s.Matches(vpn) {
				return s.Entry, i, true, 0, 0, true
			}
			if s.Valid() {
				if !any || s.Tag < minTag {
					minTag = s.Tag
				}
				if !any || s.Tag > maxTag {
					maxTag = s.Tag
				}
				any = true
			}
		}
		return 0, 0, false, minTag, maxTag, any
	}

	// Displacement from inserts is bounded by the insert reach (≈ one
	// cluster), so directional evidence from a cluster applies to clusters
	// at least two away. Pruning is a hardware fast-path heuristic: it is
	// only applied to tightly bounded searches (the C_err walk); wide
	// software-assisted searches stay exhaustive, preserving correctness
	// even if a pathological table loses approximate sortedness.
	prune := maxExtra <= 8
	searchDown, searchUp := true, true
	tag2M := addr.AlignDown(vpn, addr.Page2M)
	//lint:allow hotalloc non-escaping closure, stack-allocated
	visit := func(c, dist int) bool {
		res.Accesses++
		res.Clusters = append(res.Clusters, c)
		e, slot, ok, minTag, maxTag, any := checkCluster(c)
		if ok {
			res.Entry, res.Slot, res.Found = e, slot, true
			return true
		}
		if prune && any && dist >= 1 {
			// Tag comparisons use the 2 MB-aligned target so a huge-page
			// entry below the lookup VPN is never pruned away.
			if minTag > vpn {
				searchUp = false
			}
			if maxTag < tag2M {
				searchDown = false
			}
		}
		return false
	}
	res.Accesses = 0
	if visit(startCluster, 0) {
		return res
	}
	// Expand outward, downward side first: model predictions for VPNs
	// inside a huge page floor to (or just above) the huge page's slot, so
	// the round-down direction finds them soonest (paper §4.4).
	for d := 1; res.Accesses <= maxExtra+1; d++ {
		progressed := false
		if c := startCluster - d; searchDown && c >= 0 && res.Accesses <= maxExtra {
			progressed = true
			if visit(c, d) {
				return res
			}
		}
		if c := startCluster + d; searchUp && c <= lastCluster && res.Accesses <= maxExtra {
			progressed = true
			if visit(c, d) {
				return res
			}
		}
		if !progressed {
			break
		}
	}
	return res
}

// LookupBinary resolves a lookup by binary search over the approximately
// sorted table — the paper's §4.3.3 miss path ("a binary search is
// performed within the min/max error range"). Two passes run: one
// navigating to the lookup VPN itself (4 KB entries) and one to its 2 MB
// base (huge-page entries). Navigation compares each probed cluster's tag
// range against the pass target; a short linear sweep finishes. Cost is
// O(log(slots)) cluster fetches, all counted.
func (t *Table) LookupBinary(pred int, vpn addr.VPN) LookupResult {
	res := LookupResult{Clusters: t.clusterScratch[:0]}
	// As in Lookup: the defer and search closures are non-escaping and
	// stack-allocated.
	defer func() { t.clusterScratch = res.Clusters }() //lint:allow hotalloc non-escaping closure, stack-allocated
	if len(t.slots) == 0 {
		return res
	}
	last := ClusterOf(len(t.slots) - 1)
	home := ClusterOf(t.clamp(pred))

	//lint:allow hotalloc non-escaping closure, stack-allocated
	probe := func(c int, target addr.VPN) (found, below, above, empty bool) {
		res.Accesses++
		res.Clusters = append(res.Clusters, c)
		first := c * pte.ClusterSlots
		lastSlot := first + pte.ClusterSlots
		if lastSlot > len(t.slots) {
			lastSlot = len(t.slots)
		}
		var minTag, maxTag addr.VPN
		any := false
		for i := first; i < lastSlot; i++ {
			s := t.slots[i]
			if s.Matches(vpn) {
				res.Entry, res.Slot, res.Found = s.Entry, i, true
				return true, false, false, false
			}
			if s.Valid() {
				if !any || s.Tag < minTag {
					minTag = s.Tag
				}
				if !any || s.Tag > maxTag {
					maxTag = s.Tag
				}
				any = true
			}
		}
		if !any {
			return false, false, false, true
		}
		return false, maxTag < target, minTag > target, false
	}

	//lint:allow hotalloc non-escaping closure, stack-allocated
	pass := func(target addr.VPN) bool {
		lo, hi := 0, last
		for hi-lo > 2 && res.Accesses < 64 {
			mid := (lo + hi) / 2
			found, below, above, empty := probe(mid, target)
			if empty {
				// A fully empty cluster carries no ordering information
				// (gapped arrays keep slack): consult alternating
				// neighbours until one has tags; if the whole
				// neighbourhood is a gap, follow the model's prediction —
				// the data for this key lies on the prediction's side.
				decided := false
				for k := 1; k <= 3 && res.Accesses < 60; k++ {
					for _, c := range [...]int{mid + k, mid - k} {
						if c < lo || c > hi {
							continue
						}
						f2, b2, a2, e2 := probe(c, target)
						if f2 {
							return true
						}
						if e2 {
							continue
						}
						decided = true
						if b2 {
							lo = c + 1
						} else if a2 {
							hi = c - 1
						} else {
							lo, hi = c-1, c+1
							if lo < 0 {
								lo = 0
							}
						}
						break
					}
					if decided {
						break
					}
				}
				if !decided {
					if home <= mid {
						hi = mid - 1
					} else {
						lo = mid + 1
					}
				}
				continue
			}
			switch {
			case found:
				return true
			case below:
				lo = mid + 1
			case above:
				hi = mid - 1
			default:
				// Straddling cluster without a match: the entry, if
				// present, was displaced within insert reach of here.
				lo, hi = mid-1, mid+1
				if lo < 0 {
					lo = 0
				}
			}
		}
		// Final sweep with a one-cluster margin: bounded insert
		// displacement can shift an entry across a cluster boundary.
		for c := lo - 1; c <= hi+1 && c <= last && res.Accesses < 96; c++ {
			if c < 0 {
				continue
			}
			if found, _, _, _ := probe(c, target); found {
				return true
			}
		}
		return false
	}

	if pass(vpn) {
		return res
	}
	if base := addr.AlignDown(vpn, addr.Page2M); base != vpn {
		pass(base)
	}
	return res
}

// Unsorted reports that a pathological bulk placement wrapped around the
// table, voiding the approximate-sortedness the binary miss path relies
// on; callers fall back to exhaustive search.
func (t *Table) Unsorted() bool { return t.unsorted }

// Erase clears the slot holding vpn near the predicted position. LVM keeps
// the gap open for reuse (paper §5.2 "Free"); only the entry is cleared.
func (t *Table) Erase(pred int, vpn addr.VPN, reach int) bool {
	p := t.clamp(pred)
	for d := 0; d <= reach; d++ {
		for _, i := range []int{p + d, p - d} {
			if i >= 0 && i < len(t.slots) && t.slots[i].Matches(vpn) {
				t.slots[i] = pte.Tagged{}
				t.used--
				return true
			}
		}
	}
	return false
}

// Expand grows the table by at least extraSlots slots. It first attempts to
// extend the last extent in place (the physically adjacent buddy block);
// failing that it chains a new extent sized to the largest available
// contiguity.
func (t *Table) Expand(extraSlots, maxOrder int) error {
	if extraSlots < 1 {
		return nil
	}
	last := t.extents[len(t.extents)-1]

	// In-place growth: allocate the buddy block physically adjacent to the
	// last extent at the same order, keeping the table one contiguous run.
	adjacent := last.base + addr.PPN(phys.BlockBytes(last.order)>>addr.PageShift)
	if err := t.mem.AllocExact(adjacent, last.order); err == nil {
		grown := int(phys.BlockBytes(last.order) / SlotBytes)
		t.extents = append(t.extents, extent{
			base:  adjacent,
			order: last.order,
			slots: grown,
			start: len(t.slots),
		})
		t.slots = append(t.slots, make([]pte.Tagged, grown)...)
		if grown >= extraSlots {
			return nil
		}
		extraSlots -= grown
	}

	// Chained extent.
	bytes := uint64(extraSlots) * SlotBytes
	order := phys.OrderForBytes(bytes)
	if order > maxOrder {
		order = maxOrder
	}
	base, err := t.mem.Alloc(order)
	if err != nil {
		return fmt.Errorf("gapped: expanding table: %w", err)
	}
	capSlots := int(phys.BlockBytes(order) / SlotBytes)
	t.extents = append(t.extents, extent{
		base:  base,
		order: order,
		slots: capSlots,
		start: len(t.slots),
	})
	t.slots = append(t.slots, make([]pte.Tagged, capSlots)...)
	return nil
}

// Release returns all physical memory backing the table.
func (t *Table) Release() {
	for _, e := range t.extents {
		t.mem.Free(e.base, e.order)
	}
	t.extents = nil
	t.slots = nil
	t.used = 0
}
