package gapped

import (
	"testing"
	"testing/quick"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func newMem() *phys.Memory { return phys.New(64 << 20) }

func TestNewCapacityRoundsToPages(t *testing.T) {
	m := newMem()
	tb, err := New(m, 10, phys.MaxOrder)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Slots() != SlotsPerPage {
		t.Errorf("capacity = %d slots, want one page (%d)", tb.Slots(), SlotsPerPage)
	}
	if tb.Extents() != 1 {
		t.Errorf("fresh table has %d extents", tb.Extents())
	}
	if tb.FootprintBytes() != addr.PageSize4K {
		t.Errorf("footprint = %d", tb.FootprintBytes())
	}
}

func TestNewRespectsContiguityLimit(t *testing.T) {
	m := newMem()
	// Ask for a big table while only order-2 contiguity is allowed.
	tb, err := New(m, 100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.FootprintBytes() != phys.BlockBytes(2) {
		t.Errorf("capped table footprint = %d want %d", tb.FootprintBytes(), phys.BlockBytes(2))
	}
}

func TestInsertAtPrediction(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	slot, collided, err := tb.Insert(42, 139, pte.New(0xff, addr.Page4K), 16)
	if err != nil || collided || slot != 42 {
		t.Fatalf("insert: slot=%d collided=%t err=%v", slot, collided, err)
	}
	if tb.Used() != 1 {
		t.Errorf("used = %d", tb.Used())
	}
	res := tb.Lookup(42, 139, 3)
	if !res.Found || res.Accesses != 1 {
		t.Errorf("lookup: found=%t accesses=%d", res.Found, res.Accesses)
	}
	if res.Entry.PPN() != 0xff {
		t.Errorf("entry ppn = %#x", uint64(res.Entry.PPN()))
	}
}

func TestInsertCollisionFindsNeighbour(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	tb.Insert(10, 100, pte.New(1, addr.Page4K), 16)
	slot, collided, err := tb.Insert(10, 200, pte.New(2, addr.Page4K), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !collided {
		t.Error("second insert at same prediction must report a collision")
	}
	if slot == 10 {
		t.Error("collided insert must use a different slot")
	}
	// Both keys remain findable.
	if r := tb.Lookup(10, 100, 3); !r.Found {
		t.Error("first key lost")
	}
	if r := tb.Lookup(10, 200, 3); !r.Found {
		t.Error("second key lost")
	}
}

func TestInsertOverwriteSameKey(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	tb.Insert(5, 77, pte.New(1, addr.Page4K), 16)
	slot, collided, err := tb.Insert(5, 77, pte.New(9, addr.Page4K), 16)
	if err != nil || collided || slot != 5 {
		t.Fatalf("overwrite: slot=%d collided=%t err=%v", slot, collided, err)
	}
	if tb.Used() != 1 {
		t.Errorf("used = %d after overwrite", tb.Used())
	}
	if r := tb.Lookup(5, 77, 3); r.Entry.PPN() != 9 {
		t.Errorf("overwritten ppn = %d", r.Entry.PPN())
	}
}

func TestInsertReachExhausted(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	// Fill slots 0..20 around prediction 10.
	for i := 0; i <= 20; i++ {
		tb.Set(i, pte.Tagged{Tag: addr.VPN(1000 + i), Entry: pte.New(addr.PPN(i), addr.Page4K)})
	}
	_, _, err := tb.Insert(10, 5555, pte.New(9, addr.Page4K), 5)
	if err != ErrFull {
		t.Errorf("expected ErrFull, got %v", err)
	}
}

func TestLookupBoundedSearch(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	// Entry lives 2 clusters away from the prediction.
	tb.Set(40, pte.Tagged{Tag: 7, Entry: pte.New(3, addr.Page4K)})
	res := tb.Lookup(32, 7, 3) // prediction in cluster 8, entry in cluster 10
	if !res.Found {
		t.Fatal("bounded search must find the entry")
	}
	if res.Accesses < 2 {
		t.Errorf("accesses = %d, entry was outside predicted cluster", res.Accesses)
	}
	// With a zero extra budget, the same lookup must fail.
	res = tb.Lookup(32, 7, 0)
	if res.Found {
		t.Error("C_err=0 lookup must not find a distant entry")
	}
	if res.Accesses != 1 {
		t.Errorf("C_err=0 must do exactly one access, did %d", res.Accesses)
	}
}

func TestLookupAccessBound(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 1024, phys.MaxOrder)
	for _, maxExtra := range []int{0, 1, 2, 3} {
		res := tb.Lookup(512, 99999, maxExtra) // miss
		if res.Found {
			t.Fatal("found nonexistent key")
		}
		if res.Accesses > maxExtra+1 {
			t.Errorf("maxExtra=%d but %d accesses", maxExtra, res.Accesses)
		}
	}
}

func TestLookupHugePage(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	// 2MB page tagged with first sub-page VPN 1024 (paper §4.4).
	tb.Set(100, pte.Tagged{Tag: 1024, Entry: pte.New(512, addr.Page2M)})
	res := tb.Lookup(100, 1300, 0) // any VPN inside the huge page
	if !res.Found {
		t.Fatal("huge-page lookup failed")
	}
	if res.Entry.Size() != addr.Page2M {
		t.Errorf("size = %s", res.Entry.Size())
	}
}

func TestErase(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	tb.Insert(8, 77, pte.New(1, addr.Page4K), 16)
	if !tb.Erase(8, 77, 16) {
		t.Fatal("erase failed")
	}
	if tb.Used() != 0 {
		t.Errorf("used = %d after erase", tb.Used())
	}
	if tb.Lookup(8, 77, 3).Found {
		t.Error("erased key still found")
	}
	if tb.Erase(8, 77, 16) {
		t.Error("second erase must fail")
	}
}

func TestExpandInPlace(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	before := tb.Slots()
	if err := tb.Expand(256, phys.MaxOrder); err != nil {
		t.Fatal(err)
	}
	if tb.Slots() <= before {
		t.Errorf("slots did not grow: %d -> %d", before, tb.Slots())
	}
	// On a fresh memory the adjacent block is free, so the table must
	// stay one contiguous run.
	if tb.Extents() != 1 {
		t.Errorf("in-place expansion produced %d runs", tb.Extents())
	}
	// Slot addressing must remain linear across the boundary.
	pa0 := tb.SlotPA(before - 1)
	pa1 := tb.SlotPA(before)
	if pa1 != pa0+SlotBytes {
		t.Errorf("slot PAs not contiguous across expansion: %#x -> %#x", pa0, pa1)
	}
}

func TestExpandChainsWhenAdjacentTaken(t *testing.T) {
	m := newMem()
	tb, _ := New(m, 256, phys.MaxOrder)
	// Occupy the adjacent block so in-place growth fails.
	blocker := addr.PPNOf(tb.SlotPA(0)) + 1
	if err := m.AllocExact(blocker, 0); err != nil {
		t.Fatalf("could not place blocker: %v", err)
	}
	if err := tb.Expand(256, phys.MaxOrder); err != nil {
		t.Fatal(err)
	}
	if tb.Extents() != 2 {
		t.Errorf("expected a chained extent, got %d runs", tb.Extents())
	}
	// Slots in the chained extent are addressable and writable.
	last := tb.Slots() - 1
	tb.Set(last, pte.Tagged{Tag: 5, Entry: pte.New(1, addr.Page4K)})
	if !tb.Get(last).Valid() {
		t.Error("chained slot not writable")
	}
	_ = tb.SlotPA(last)
}

func TestRelease(t *testing.T) {
	m := newMem()
	free := m.FreePages()
	tb, _ := New(m, 100000, phys.MaxOrder)
	tb.Expand(100000, phys.MaxOrder)
	tb.Release()
	if m.FreePages() != free {
		t.Errorf("release leaked: %d != %d", m.FreePages(), free)
	}
}

func TestQuickInsertLookupAgree(t *testing.T) {
	// Property: any sequence of inserts with in-range predictions keeps
	// every successfully inserted key findable within the same reach.
	f := func(preds []uint8) bool {
		m := phys.New(1 << 20)
		tb, err := New(m, 256, phys.MaxOrder)
		if err != nil {
			return false
		}
		inserted := map[addr.VPN]int{}
		for i, p := range preds {
			vpn := addr.VPN(10000 + i)
			pred := int(p)
			if _, _, err := tb.Insert(pred, vpn, pte.New(addr.PPN(i), addr.Page4K), 64); err == nil {
				inserted[vpn] = pred
			}
		}
		for vpn, pred := range inserted {
			// reach 64 slots = 16 clusters either side.
			if !tb.Lookup(pred, vpn, 33).Found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
