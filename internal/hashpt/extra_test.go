package hashpt

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/pte"
)

// TestQuickInsertLookupOracle: random keys against a ground-truth map; every
// inserted key must be found with its exact entry and bounded probes.
func TestQuickInsertLookupOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tb := New(4096, DefaultLoadFactor)
	oracle := map[addr.VPN]pte.Entry{}
	for len(oracle) < 4096 {
		v := addr.VPN(rng.Int63n(1 << 30))
		if _, dup := oracle[v]; dup {
			continue
		}
		e := pte.New(addr.PPN(len(oracle)+1), addr.Page4K)
		if _, err := tb.Insert(v, e); err != nil {
			t.Fatalf("insert %d of 4096: %v", len(oracle), err)
		}
		oracle[v] = e
	}
	for v, want := range oracle {
		got, probes, ok := tb.Lookup(v)
		if !ok || got != want {
			t.Fatalf("VPN %#x: got (%v,%t) want %v", uint64(v), got, ok, want)
		}
		if probes < 1 || probes > tb.Slots() {
			t.Fatalf("VPN %#x: nonsensical probe count %d", uint64(v), probes)
		}
	}
	// And absent keys must miss.
	for i := 0; i < 1000; i++ {
		v := addr.VPN(rng.Int63n(1<<30)) | 1<<40
		if _, _, ok := tb.Lookup(v); ok {
			t.Fatalf("phantom key %#x found", uint64(v))
		}
	}
}

// TestCollisionRateMonotoneInLoad: the §7.3 comparison depends on collision
// probability growing with the load factor; verify the open-addressing
// model behaves that way.
func TestCollisionRateMonotoneInLoad(t *testing.T) {
	rate := func(load float64) float64 {
		tb := New(8192, load)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 8192; i++ {
			if _, err := tb.Insert(addr.VPN(rng.Int63n(1<<40)), pte.New(addr.PPN(i+1), addr.Page4K)); err != nil {
				t.Fatal(err)
			}
		}
		return tb.CollisionRate()
	}
	sparse, dense := rate(0.3), rate(0.8)
	if sparse >= dense {
		t.Errorf("collision rate not monotone in load: %.3f @0.3 vs %.3f @0.8", sparse, dense)
	}
	// The rate averages over the whole fill (mean occupancy ≈ final/2).
	if dense < 0.15 {
		t.Errorf("load 0.8 collision rate %.3f implausibly low", dense)
	}
}

// TestInsertBeyondCapacityFails: a full table must reject cleanly rather
// than loop forever probing.
func TestInsertBeyondCapacityFails(t *testing.T) {
	tb := New(8, 0.9)
	var failed bool
	for i := 0; i < tb.Slots()+8; i++ {
		if _, err := tb.Insert(addr.VPN(i*1000+7), pte.New(addr.PPN(i+1), addr.Page4K)); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Error("insertions past capacity never failed")
	}
}
