// Package hashpt implements a conventional open-addressing hashed page
// table using BLAKE2 at a fixed load factor — the collision-rate baseline
// of §7.3 ("a hash table that has a load factor of 0.6 and uses the
// state-of-the-art hash function Blake2").
//
// It exists to quantify how much better a learned placement is than a
// strong hash: the paper reports 22% (4 KB) / 19% (THP) collision rates for
// this baseline against LVM's 0.2% / 0.6%.
package hashpt

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/blake2b"
	"lvm/internal/metrics"
	"lvm/internal/pte"
	"lvm/internal/stats"
)

// DefaultLoadFactor matches the paper's baseline configuration.
const DefaultLoadFactor = 0.6

// Table is an open-addressing hash table of tagged PTEs with linear
// probing for collision resolution.
type Table struct {
	slots []pte.Tagged
	used  int

	insertCollisions stats.Counter
	inserts          stats.Counter
}

// New creates a table sized so that `expected` keys reach the given load
// factor.
func New(expected int, loadFactor float64) *Table {
	if loadFactor <= 0 || loadFactor >= 1 {
		panic(fmt.Sprintf("hashpt: bad load factor %v", loadFactor))
	}
	n := 1
	for float64(n)*loadFactor < float64(expected) {
		n *= 2
	}
	return &Table{slots: make([]pte.Tagged, n)}
}

func (t *Table) home(v addr.VPN) int {
	return int(blake2b.Sum64(uint64(v)) & uint64(len(t.slots)-1))
}

// Insert places a translation, linear-probing past occupied slots. It
// reports whether the home slot was already taken by a different key — the
// §7.3 collision event.
func (t *Table) Insert(v addr.VPN, e pte.Entry) (collided bool, err error) {
	if t.used >= len(t.slots) {
		return false, fmt.Errorf("hashpt: table full")
	}
	tag := addr.AlignDown(v, e.Size())
	h := t.home(tag)
	t.inserts.Inc()
	for d := 0; d < len(t.slots); d++ {
		i := (h + d) & (len(t.slots) - 1)
		if t.slots[i].Valid() && t.slots[i].Tag == tag {
			t.slots[i].Entry = e
			return d > 0, nil
		}
		if !t.slots[i].Valid() {
			t.slots[i] = pte.Tagged{Tag: tag, Entry: e}
			t.used++
			if d > 0 {
				t.insertCollisions.Inc()
			}
			return d > 0, nil
		}
	}
	return true, fmt.Errorf("hashpt: no free slot")
}

// Lookup finds a translation and reports how many slots were probed.
func (t *Table) Lookup(v addr.VPN) (e pte.Entry, probes int, ok bool) {
	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		tag := addr.AlignDown(v, s)
		h := t.home(tag)
		for d := 0; d < len(t.slots); d++ {
			i := (h + d) & (len(t.slots) - 1)
			probes++
			slot := t.slots[i]
			if !slot.Valid() {
				break // linear probing: an empty slot ends the chain
			}
			if slot.Tag == tag && slot.Entry.Size() == s {
				return slot.Entry, probes, true
			}
		}
	}
	return 0, probes, false
}

// CollisionRate returns the fraction of inserts whose home slot was taken —
// the §7.3 metric.
func (t *Table) CollisionRate() float64 {
	return stats.Ratio(t.insertCollisions.Value(), t.inserts.Value())
}

// Snapshot implements metrics.Source: the insert/collision counters behind
// the §7.3 hashed-baseline comparison.
func (t *Table) Snapshot() metrics.Set {
	var s metrics.Set
	s.Counter("inserts", t.inserts.Value())
	s.Counter("insert_collisions", t.insertCollisions.Value())
	return s
}

var _ metrics.Source = (*Table)(nil)

// LoadFactor returns the current occupancy.
func (t *Table) LoadFactor() float64 {
	return float64(t.used) / float64(len(t.slots))
}

// Slots returns the table capacity.
func (t *Table) Slots() int { return len(t.slots) }
