package hashpt

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/pte"
)

func TestInsertLookup(t *testing.T) {
	tb := New(100, DefaultLoadFactor)
	if _, err := tb.Insert(139, pte.New(0xff, addr.Page4K)); err != nil {
		t.Fatal(err)
	}
	e, probes, ok := tb.Lookup(139)
	if !ok || e.PPN() != 0xff {
		t.Fatalf("lookup failed: ok=%t", ok)
	}
	if probes < 1 {
		t.Errorf("probes = %d", probes)
	}
}

func TestOverwrite(t *testing.T) {
	tb := New(100, DefaultLoadFactor)
	tb.Insert(5, pte.New(1, addr.Page4K))
	tb.Insert(5, pte.New(2, addr.Page4K))
	if e, _, _ := tb.Lookup(5); e.PPN() != 2 {
		t.Error("overwrite failed")
	}
}

func TestHugePageLookup(t *testing.T) {
	tb := New(100, DefaultLoadFactor)
	tb.Insert(1024, pte.New(512, addr.Page2M))
	if e, _, ok := tb.Lookup(1300); !ok || e.Size() != addr.Page2M {
		t.Error("huge lookup failed")
	}
}

func TestLoadFactorSizing(t *testing.T) {
	tb := New(600, 0.6)
	if got := tb.Slots(); got != 1024 {
		t.Errorf("slots = %d want 1024", got)
	}
	for i := 0; i < 600; i++ {
		if _, err := tb.Insert(addr.VPN(i*7+1), pte.New(addr.PPN(i+1), addr.Page4K)); err != nil {
			t.Fatal(err)
		}
	}
	lf := tb.LoadFactor()
	if lf < 0.55 || lf > 0.62 {
		t.Errorf("load factor = %v", lf)
	}
}

func TestCollisionRateBallpark(t *testing.T) {
	// With sequential VPNs and a strong hash at load 0.6, the collision
	// rate should be substantial — the paper reports ~22%. Expect the
	// birthday-style regime: well above LVM's <1%, below 50%.
	tb := New(20000, 0.6)
	for i := 0; i < 20000; i++ {
		tb.Insert(addr.VPN(0x10000+i), pte.New(addr.PPN(i+1), addr.Page4K))
	}
	cr := tb.CollisionRate()
	if cr < 0.10 || cr > 0.45 {
		t.Errorf("hash collision rate = %.3f, expected ~0.2 regime", cr)
	}
}

func TestMissOnEmptySlotChain(t *testing.T) {
	tb := New(100, DefaultLoadFactor)
	tb.Insert(1, pte.New(1, addr.Page4K))
	if _, _, ok := tb.Lookup(2); ok {
		t.Error("miss reported as hit")
	}
}

func TestBadLoadFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(10, 1.5)
}
