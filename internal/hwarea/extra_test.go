package hwarea

import "testing"

// TestAreaAndLeakageMonotoneInEntries: the SRAM/CAM model must charge more
// area and leakage for more entries — the basis of §7.3's argument that
// radix PWCs scale linearly with footprint while the LWC stays fixed.
func TestAreaAndLeakageMonotoneInEntries(t *testing.T) {
	prevA, prevL := 0.0, 0.0
	for _, n := range []int{8, 16, 64, 256} {
		s := LWC(n)
		if a := s.AreaMM2(); a <= prevA {
			t.Errorf("LWC(%d) area %.5f not above smaller config %.5f", n, a, prevA)
		} else {
			prevA = a
		}
		if l := s.LeakageMW(); l <= prevL {
			t.Errorf("LWC(%d) leakage %.4f not above smaller config %.4f", n, l, prevL)
		} else {
			prevL = l
		}
	}
}

// TestCAMTagsCostMoreThanRAMTags: a fully associative structure (CAM match
// lines) must cost more per tag bit than a set-associative one (RAM tags) —
// otherwise the §7.4 comparison between the LWC and banked PWCs is
// meaningless.
func TestCAMTagsCostMoreThanRAMTags(t *testing.T) {
	cam := Structure{Name: "cam", Arrays: 1, EntriesPerArray: 64, RAMBitsPerEntry: 64, CAMBitsPerEntry: 46}
	ram := cam
	ram.SetAssocTags = true
	if cam.AreaMM2() <= ram.AreaMM2() {
		t.Errorf("CAM tags (%.6f mm²) not above RAM tags (%.6f mm²)", cam.AreaMM2(), ram.AreaMM2())
	}
	if cam.LeakageMW() <= ram.LeakageMW() {
		t.Errorf("CAM leakage (%.4f) not above RAM leakage (%.4f)", cam.LeakageMW(), ram.LeakageMW())
	}
}

// TestBankPeripheryCharged: splitting the same capacity across more arrays
// must cost additional periphery area (the PWC's per-level banks are not
// free).
func TestBankPeripheryCharged(t *testing.T) {
	mono := Structure{Name: "mono", Arrays: 1, EntriesPerArray: 96, RAMBitsPerEntry: 64, CAMBitsPerEntry: 46, SetAssocTags: true}
	banked := Structure{Name: "banked", Arrays: 3, EntriesPerArray: 32, RAMBitsPerEntry: 64, CAMBitsPerEntry: 46, SetAssocTags: true}
	if banked.Entries() != mono.Entries() || banked.SizeBytes() != mono.SizeBytes() {
		t.Fatal("test structures must hold identical capacity")
	}
	if banked.AreaMM2() <= mono.AreaMM2() {
		t.Errorf("3-bank layout (%.6f mm²) not above monolithic (%.6f mm²)",
			banked.AreaMM2(), mono.AreaMM2())
	}
}
