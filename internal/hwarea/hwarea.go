// Package hwarea is the analytic area/power/size model standing in for the
// paper's RTL synthesis + CACTI flow (§7.4). Walk caches are modeled as
// small SRAM/CAM arrays with a fixed periphery cost (decoders, comparators,
// sense amps — which dominate at these tiny capacities) plus per-bit array
// cost; the walker datapath is a gate-count estimate of the Q44.20
// multiply-add pipeline. Constants are calibrated to a 22 nm process so the
// absolute LWC numbers land on the paper's measurements (0.00364 mm²,
// 0.588 mW), making the radix-vs-LVM ratios meaningful.
package hwarea

// Process constants (22 nm class).
const (
	// ramAreaPerBit is µm² per SRAM bit including local wiring.
	ramAreaPerBit = 0.35
	// camAreaPerBit is µm² per CAM (fully associative tag) bit.
	camAreaPerBit = 0.8
	// peripheryArea is the fixed µm² cost of one array structure.
	peripheryArea = 2500.0
	// leakagePerBit is mW of leakage per storage bit.
	leakagePerBit = 8.6e-5
	// peripheryLeakage is the fixed leakage per structure in mW.
	peripheryLeakage = 0.35
	// bankPeriphery is the incremental µm² for each additional bank that
	// shares the structure's decoders and sense amps.
	bankPeriphery = 300.0
	// camLeakagePerBit is mW of leakage per CAM bit (match-line cost).
	camLeakagePerBit = 1.4e-4
	// gateArea is µm² per NAND2-equivalent gate (high-density 22 nm).
	gateArea = 0.065
)

// Structure describes one caching structure.
type Structure struct {
	Name            string
	Arrays          int // banks (radix PWC has one per level)
	EntriesPerArray int
	RAMBitsPerEntry int
	CAMBitsPerEntry int
	// SetAssocTags marks tag bits held in RAM (set-associative lookup)
	// rather than CAM match lines (fully associative).
	SetAssocTags bool
}

// Entries returns the total entry count.
func (s Structure) Entries() int { return s.Arrays * s.EntriesPerArray }

// SizeBytes returns the storage capacity in bytes (data + tags).
func (s Structure) SizeBytes() int {
	bits := s.Entries() * (s.RAMBitsPerEntry + s.CAMBitsPerEntry)
	return bits / 8
}

// DataBytes returns the payload capacity in bytes (the §7.4 "size" metric:
// 3.0× improvement counts model/entry payload).
func (s Structure) DataBytes() int { return s.Entries() * s.RAMBitsPerEntry / 8 }

// AreaMM2 returns the estimated area in mm².
func (s Structure) AreaMM2() float64 {
	tagCost := camAreaPerBit
	if s.SetAssocTags {
		tagCost = ramAreaPerBit
	}
	ram := float64(s.Entries()*s.RAMBitsPerEntry) * ramAreaPerBit
	tag := float64(s.Entries()*s.CAMBitsPerEntry) * tagCost
	periph := peripheryArea + float64(s.Arrays-1)*bankPeriphery
	return (ram + tag + periph) / 1e6
}

// LeakageMW returns the estimated leakage power in mW.
func (s Structure) LeakageMW() float64 {
	tagLeak := camLeakagePerBit
	if s.SetAssocTags {
		tagLeak = leakagePerBit
	}
	ram := float64(s.Entries()*s.RAMBitsPerEntry) * leakagePerBit
	tag := float64(s.Entries()*s.CAMBitsPerEntry) * tagLeak
	return peripheryLeakage + ram + tag
}

// LWC models LVM's walk cache (Fig. 8): per entry a 128-bit model (Q44.20
// slope + intercept) tagged by ASID (16b) + level (4b) + offset (24b),
// fully associative.
func LWC(entries int) Structure {
	return Structure{
		Name:            "LWC",
		Arrays:          1,
		EntriesPerArray: entries,
		RAMBitsPerEntry: 128,
		CAMBitsPerEntry: 44,
	}
}

// RadixPWC models the three-level radix page walk cache (Table 1): each
// entry holds a 64-bit upper-level PTE tagged by ASID + VPN prefix (~46b);
// banks share periphery, and tags are set-associative RAM as in commercial
// MMU translation caches.
func RadixPWC(levels, entriesPerLevel int) Structure {
	return Structure{
		Name:            "Radix PWC",
		Arrays:          levels,
		EntriesPerArray: entriesPerLevel,
		RAMBitsPerEntry: 64,
		CAMBitsPerEntry: 46,
		SetAssocTags:    true,
	}
}

// WalkerDatapathMM2 estimates the LVM page walker datapath: a 64×64
// fixed-point multiplier (Wallace tree), a 64-bit adder, and walk control.
// The paper reports 0.000637 mm² with a 2-cycle latency at 2 GHz.
func WalkerDatapathMM2() float64 {
	const (
		multiplierGates = 6200
		adderGates      = 350
		controlGates    = 3200
	)
	return (multiplierGates + adderGates + controlGates) * gateArea / 1e6
}

// Comparison is the §7.4 summary: LVM's improvement factors over radix.
type Comparison struct {
	LWC      Structure
	PWC      Structure
	SizeX    float64 // payload bytes ratio (paper: 3.0×)
	AreaX    float64 // area ratio (paper: 1.5×)
	PowerX   float64 // leakage ratio (paper: 1.9×)
	WalkerMM float64
}

// Compare builds the Table-1 configuration comparison.
func Compare() Comparison {
	l := LWC(16)
	p := RadixPWC(3, 32)
	return Comparison{
		LWC:      l,
		PWC:      p,
		SizeX:    float64(p.DataBytes()) / float64(l.DataBytes()),
		AreaX:    p.AreaMM2() / l.AreaMM2(),
		PowerX:   p.LeakageMW() / l.LeakageMW(),
		WalkerMM: WalkerDatapathMM2(),
	}
}
