package hwarea

import "testing"

func TestLWCMatchesPaper(t *testing.T) {
	l := LWC(16)
	// §7.4: LWC area 0.00364 mm², leakage 0.588 mW. The analytic model
	// must land within 15% of both.
	if a := l.AreaMM2(); a < 0.0031 || a > 0.0042 {
		t.Errorf("LWC area = %.5f mm², paper 0.00364", a)
	}
	if p := l.LeakageMW(); p < 0.50 || p > 0.68 {
		t.Errorf("LWC leakage = %.3f mW, paper 0.588", p)
	}
	if l.DataBytes() != 256 {
		t.Errorf("LWC payload = %d bytes, want 16×16", l.DataBytes())
	}
}

func TestWalkerDatapath(t *testing.T) {
	// §7.4: a single LVM page walker needs 0.000637 mm².
	a := WalkerDatapathMM2()
	if a < 0.00055 || a > 0.00072 {
		t.Errorf("walker area = %.6f mm², paper 0.000637", a)
	}
}

func TestComparisonRatiosShape(t *testing.T) {
	c := Compare()
	// §7.4: 3.0× size, 1.5× area, 1.9× power improvements for LVM. The
	// shape requirements: all ratios > 1 (radix costs more), size ratio
	// ≈ 3, area ratio smallest (periphery-dominated), power between.
	if c.SizeX < 2.5 || c.SizeX > 3.5 {
		t.Errorf("size ratio = %.2f, paper 3.0", c.SizeX)
	}
	if c.AreaX < 1.2 || c.AreaX > 2.3 {
		t.Errorf("area ratio = %.2f, paper 1.5", c.AreaX)
	}
	if c.PowerX < 1.5 || c.PowerX > 2.5 {
		t.Errorf("power ratio = %.2f, paper 1.9", c.PowerX)
	}
	if !(c.AreaX < c.PowerX && c.PowerX < c.SizeX+0.8) {
		t.Errorf("ratio ordering off: area %.2f power %.2f size %.2f", c.AreaX, c.PowerX, c.SizeX)
	}
}

func TestStructureAccounting(t *testing.T) {
	s := Structure{Arrays: 2, EntriesPerArray: 4, RAMBitsPerEntry: 64, CAMBitsPerEntry: 16}
	if s.Entries() != 8 {
		t.Errorf("entries = %d", s.Entries())
	}
	if s.SizeBytes() != 8*80/8 {
		t.Errorf("size = %d", s.SizeBytes())
	}
	if s.DataBytes() != 64 {
		t.Errorf("data = %d", s.DataBytes())
	}
	if s.AreaMM2() <= 0 || s.LeakageMW() <= 0 {
		t.Error("non-positive physicals")
	}
}
