package ideal

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// TestSlotPAsDenseAndUniquePerSize: within one page size, the per-granule
// slot layout must give distinct, densely packed slot addresses inside the
// table block — that density (sequential VPNs sharing cache lines) is what
// makes the ideal baseline's cache behaviour realistic.
func TestSlotPAsDenseAndUniquePerSize(t *testing.T) {
	tb, err := New(phys.New(128<<20), 4096)
	if err != nil {
		t.Fatal(err)
	}
	lo := addr.PAOf(tb.base)
	hi := lo + addr.PA(tb.slots*pte.Bytes)
	for _, size := range []addr.PageSize{addr.Page4K, addr.Page2M} {
		seen := map[addr.PA]addr.VPN{}
		for i := 0; i < 2000; i++ {
			v := addr.VPN(uint64(i) * size.BaseVPNs())
			pa := tb.entryPA(v, size)
			if pa < lo || pa >= hi {
				t.Fatalf("%v slot %#x outside table block [%#x,%#x)", size, uint64(pa), uint64(lo), uint64(hi))
			}
			if prev, dup := seen[pa]; dup {
				t.Fatalf("%v slot PA %#x shared by VPN %#x and %#x", size, uint64(pa), uint64(prev), uint64(v))
			}
			seen[pa] = v
		}
		// Dense: consecutive granules land 8 bytes apart.
		if d := tb.entryPA(addr.VPN(size.BaseVPNs()), size) - tb.entryPA(0, size); d != pte.Bytes {
			t.Errorf("%v: consecutive granules %d bytes apart, want %d", size, d, pte.Bytes)
		}
	}
}

// TestWalkAlwaysOneRef: the ideal baseline's defining property (Fig. 9/11's
// upper bound) — every translation costs exactly one memory request, hit or
// miss, 4K or 2M.
func TestWalkAlwaysOneRef(t *testing.T) {
	tb, err := New(phys.New(128<<20), 1024)
	if err != nil {
		t.Fatal(err)
	}
	tb.Map(100, pte.New(1, addr.Page4K))
	tb.Map(512*7, pte.New(512, addr.Page2M))
	w := NewWalker()
	w.Attach(1, tb)
	for _, v := range []addr.VPN{100, 512*7 + 300, 99999} {
		out := w.Walk(1, v)
		if out.Refs() != 1 {
			t.Errorf("VPN %d: %d refs, ideal must always use 1", v, out.Refs())
		}
	}
	if out := w.Walk(1, 100); !out.Found {
		t.Error("mapped page missed")
	}
	if out := w.Walk(1, 99999); out.Found {
		t.Error("unmapped page found")
	}
}

// TestUnmapExact: unmap removes precisely one translation.
func TestUnmapExact(t *testing.T) {
	tb, err := New(phys.New(128<<20), 1024)
	if err != nil {
		t.Fatal(err)
	}
	tb.Map(10, pte.New(1, addr.Page4K))
	tb.Map(11, pte.New(2, addr.Page4K))
	if !tb.Unmap(10) {
		t.Fatal("unmap failed")
	}
	if tb.Unmap(10) {
		t.Error("double unmap succeeded")
	}
	if _, ok := tb.Lookup(10); ok {
		t.Error("unmapped VPN still found")
	}
	if _, ok := tb.Lookup(11); !ok {
		t.Error("neighbour lost")
	}
}
