// Package ideal implements the paper's upper-bound comparison point: a
// page table that always locates the translation with exactly one memory
// access (§6.3). It is not realizable hardware — it exists to show how
// close LVM gets (within 1% in the paper).
package ideal

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// Table maps VPNs to entries and assigns each translation a stable
// physical address inside a dense table region, so cache behaviour is
// realistic (sequential VPNs share cache lines, as a perfect single-access
// table would).
type Table struct {
	mem     *phys.Memory
	entries map[addr.VPN]pte.Entry
	base    addr.PPN
	order   int
	slots   uint64
}

// New creates an ideal table sized for the expected number of mappings.
func New(mem *phys.Memory, expected int) (*Table, error) {
	slots := uint64(1)
	for slots < uint64(expected)*2 {
		slots *= 2
	}
	order := phys.OrderForBytes(slots * pte.Bytes)
	base, err := mem.Alloc(order)
	if err != nil {
		return nil, fmt.Errorf("ideal: allocating table: %w", err)
	}
	return &Table{
		mem:     mem,
		entries: make(map[addr.VPN]pte.Entry, expected),
		base:    base,
		order:   order,
		slots:   phys.BlockBytes(order) / pte.Bytes,
	}, nil
}

// Map installs a translation.
func (t *Table) Map(v addr.VPN, e pte.Entry) {
	t.entries[addr.AlignDown(v, e.Size())] = e
}

// Unmap removes a translation.
func (t *Table) Unmap(v addr.VPN) bool {
	for _, s := range [...]addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		if _, ok := t.entries[addr.AlignDown(v, s)]; ok {
			delete(t.entries, addr.AlignDown(v, s))
			return true
		}
	}
	return false
}

// Lookup is the software walk.
func (t *Table) Lookup(v addr.VPN) (pte.Entry, bool) {
	for _, s := range [...]addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		if e, ok := t.entries[addr.AlignDown(v, s)]; ok && e.Size() == s {
			return e, true
		}
	}
	return 0, false
}

// entryPA gives each translation a deterministic slot in the dense region.
// The slot index is per granule (VPN divided by the page size), so
// consecutive huge pages occupy consecutive slots — a true single-access table
// would be dense per translation, and a strided layout would alias cache
// sets (512-VPN stride × 8 B = exactly the set stride).
func (t *Table) entryPA(v addr.VPN, size addr.PageSize) addr.PA {
	granule := uint64(v) / size.BaseVPNs()
	slot := granule & (t.slots - 1)
	return addr.SlotPA(t.base, slot, pte.Bytes)
}

// Release returns the dense table block to the allocator (process exit).
func (t *Table) Release() {
	t.mem.Free(t.base, t.order)
	t.entries = map[addr.VPN]pte.Entry{}
}

// Walker implements mmu.Walker with exactly one memory request per walk.
type Walker struct {
	tables map[uint16]*Table
	// lastASID/lastTable memoize the most recent tables lookup so batched
	// walks skip the map per access; Attach/Detach invalidate it.
	lastASID  uint16
	lastTable *Table
	// buf is the reusable walk-trace buffer; Walk outcomes view it and
	// stay valid until the next Walk.
	buf mmu.WalkBuf

	// plans queue the walk plans recorded by Lookup, consumed in order by
	// WalkBatch (see the mmu.Lookuper contract).
	plans    []plan
	planPos  int
	planASID uint16
}

// plan is one functional lookup's record: the single slot PA plus the
// resolved entry (the ideal walker has no walk-cache state to replay).
type plan struct {
	vpn     addr.VPN
	noTable bool
	pa      addr.PA
	entry   pte.Entry
	found   bool
}

// NewWalker creates the walker.
func NewWalker() *Walker { return &Walker{tables: make(map[uint16]*Table)} }

// Attach registers a table under an ASID.
func (w *Walker) Attach(asid uint16, t *Table) {
	w.tables[asid] = t
	w.lastTable = nil
}

// Detach removes a process's table (process exit).
func (w *Walker) Detach(asid uint16) {
	delete(w.tables, asid)
	w.lastTable = nil
}

// table resolves an ASID's table through the one-entry memo.
func (w *Walker) table(asid uint16) (*Table, bool) {
	if w.lastTable != nil && w.lastASID == asid {
		return w.lastTable, true
	}
	t, ok := w.tables[asid]
	if ok {
		w.lastASID, w.lastTable = asid, t
	}
	return t, ok
}

// Name implements mmu.Walker.
func (w *Walker) Name() string { return "ideal" }

// Snapshot implements metrics.Source. The ideal walker has no walk caches
// and no counters of its own — every walk is exactly one memory request,
// all visible in the cache/DRAM snapshots — so its set is empty; the
// method exists so the simulator's uniform walker instrumentation covers
// every scheme.
func (w *Walker) Snapshot() metrics.Set { return metrics.Set{} }

var _ metrics.Source = (*Walker)(nil)

// Walk implements mmu.Walker.
func (w *Walker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	t, ok := w.table(asid)
	if !ok {
		return mmu.Outcome{}
	}
	e, found := t.Lookup(v)
	w.buf.Reset()
	w.buf.AddGroup(t.entryPA(addr.AlignDown(v, e.Size()), e.Size()))
	return w.buf.Outcome(e, found, 0)
}

// Lookup implements mmu.Lookuper: resolve the translation and record the
// slot PA the timing walk fetches.
func (w *Walker) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	if w.planASID != asid {
		w.plans = w.plans[:0]
		w.planPos = 0
		w.planASID = asid
	}
	var p plan
	p.vpn = v
	t, ok := w.table(asid)
	if !ok {
		p.noTable = true
		//lint:allow hotalloc plan queue grows to the batch size once, then recycles
		w.plans = append(w.plans, p)
		return 0, false
	}
	p.entry, p.found = t.Lookup(v)
	p.pa = t.entryPA(addr.AlignDown(v, p.entry.Size()), p.entry.Size())
	//lint:allow hotalloc plan queue grows to the batch size once, then recycles
	w.plans = append(w.plans, p)
	return p.entry, p.found
}

// WalkBatch implements mmu.BatchWalker: replay the plans recorded by the
// preceding Lookup sequence (falling back to fresh walks on mismatch) and
// drain the plan queue.
func (w *Walker) WalkBatch(asid uint16, vpns []addr.VPN, bufs *mmu.WalkBatchBuf) {
	bufs.Reset(len(vpns))
	for i, v := range vpns {
		b := bufs.Buf(i)
		if w.planPos < len(w.plans) && asid == w.planASID && w.plans[w.planPos].vpn == v {
			p := &w.plans[w.planPos]
			w.planPos++
			if p.noTable {
				bufs.SetOutcome(i, mmu.Outcome{})
				continue
			}
			b.AddGroup(p.pa)
			bufs.SetOutcome(i, b.Outcome(p.entry, p.found, 0))
			continue
		}
		if t, ok := w.table(asid); ok {
			e, found := t.Lookup(v)
			b.AddGroup(t.entryPA(addr.AlignDown(v, e.Size()), e.Size()))
			bufs.SetOutcome(i, b.Outcome(e, found, 0))
		} else {
			bufs.SetOutcome(i, mmu.Outcome{})
		}
	}
	w.plans = w.plans[:0]
	w.planPos = 0
}

var _ mmu.Walker = (*Walker)(nil)
var _ mmu.BatchWalker = (*Walker)(nil)
var _ mmu.Lookuper = (*Walker)(nil)
