package ideal

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func TestMapLookupWalk(t *testing.T) {
	mem := phys.New(64 << 20)
	tb, err := New(mem, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tb.Map(139, pte.New(0xff, addr.Page4K))
	w := NewWalker()
	w.Attach(1, tb)

	out := w.Walk(1, 139)
	if !out.Found || out.Entry.PPN() != 0xff {
		t.Fatal("walk failed")
	}
	if out.Refs() != 1 {
		t.Errorf("ideal walk made %d refs, must always be exactly 1", out.Refs())
	}
}

func TestHuge(t *testing.T) {
	mem := phys.New(64 << 20)
	tb, _ := New(mem, 10)
	tb.Map(1024, pte.New(512, addr.Page2M))
	w := NewWalker()
	w.Attach(1, tb)
	out := w.Walk(1, 1300)
	if !out.Found || out.Entry.Size() != addr.Page2M {
		t.Error("huge walk failed")
	}
	if out.Refs() != 1 {
		t.Errorf("refs = %d", out.Refs())
	}
}

func TestUnmap(t *testing.T) {
	mem := phys.New(64 << 20)
	tb, _ := New(mem, 10)
	tb.Map(5, pte.New(1, addr.Page4K))
	if !tb.Unmap(5) {
		t.Fatal("unmap failed")
	}
	if _, ok := tb.Lookup(5); ok {
		t.Error("unmapped found")
	}
}

func TestSequentialVPNsShareLines(t *testing.T) {
	mem := phys.New(64 << 20)
	tb, _ := New(mem, 1000)
	w := NewWalker()
	w.Attach(1, tb)
	for i := 0; i < 8; i++ {
		tb.Map(addr.VPN(i), pte.New(addr.PPN(i+1), addr.Page4K))
	}
	// 8 sequential VPNs × 8-byte entries = one 64-byte line.
	line := func(pa addr.PA) uint64 { return uint64(pa) / 64 }
	first := w.Walk(1, 0).Group(0)[0]
	for i := 1; i < 8; i++ {
		pa := w.Walk(1, addr.VPN(i)).Group(0)[0]
		if line(pa) != line(first) {
			t.Errorf("VPN %d entry on different line", i)
		}
	}
}

func TestHugePagesDenseSlots(t *testing.T) {
	// Consecutive huge pages must occupy consecutive slots: a strided
	// layout would alias cache sets and misrepresent the ideal baseline.
	mem := phys.New(256 << 20)
	tb, _ := New(mem, 4096)
	base := addr.AlignDown(0x9a600+511, addr.Page2M)
	for i := 0; i < 2048; i++ {
		tb.Map(base+addr.VPN(i*512), pte.New(addr.PPN(i*512+1), addr.Page2M))
	}
	w := NewWalker()
	w.Attach(1, tb)
	lines := map[uint64]bool{}
	sets := map[uint64]bool{}
	for i := 0; i < 2048; i++ {
		pa := w.Walk(1, base+addr.VPN(i*512)+addr.VPN(i%512)).Group(0)[0]
		lines[uint64(pa)/64] = true
		sets[uint64(pa)/64%64] = true
	}
	if len(lines) > 512 {
		t.Errorf("2048 huge pages spread over %d lines, want dense packing", len(lines))
	}
	if len(sets) < 32 {
		t.Errorf("walk lines land in only %d of 64 cache sets (set aliasing)", len(sets))
	}
}
