package lint

import (
	"go/ast"
	"go/types"
)

const addrPkg = ModulePath + "/internal/addr"

// addrNames are the four address types whose direct cross-conversion the
// analyzer forbids.
var addrNames = []string{"VA", "PA", "VPN", "PPN"}

// AddrTypes flags direct conversions between addr.VA, addr.PA, addr.VPN and
// addr.PPN outside internal/addr — including laundering through an
// intermediate integer conversion such as addr.PPN(uint64(vpn)). A VPN↔PPN
// mix-up produces plausible-looking but wrong walk counts; the only
// sanctioned routes are the named helpers (addr.VPNOf, addr.VAOf,
// addr.Translate, pte.Entry.PPN, …) whose signatures document which side of
// the translation each value lives on.
var AddrTypes = &Analyzer{
	Name: "addrtypes",
	Doc:  "flags direct conversions between addr.VA/PA/VPN/PPN (incl. via uint64) outside internal/addr",
	Run:  runAddrTypes,
}

// addrMember returns the name of the addr quartet member t is, or "".
func addrMember(t types.Type) string {
	if t == nil {
		return ""
	}
	for _, name := range addrNames {
		if isNamed(t, addrPkg, name) {
			return name
		}
	}
	return ""
}

func runAddrTypes(pass *Pass) {
	if pass.PkgPath == addrPkg {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := addrMember(tv.Type)
			if dst == "" {
				return true
			}
			src := pass.rootAddrMember(call.Args[0])
			if src != "" && src != dst {
				pass.Reportf(call.Pos(), "direct addr.%s→addr.%s conversion; use the named addr translation helpers (VPNOf/VAOf/Translate/…)", src, dst)
			}
			return true
		})
	}
}

// rootAddrMember unwraps parentheses, conversions through plain integer
// types, and integer arithmetic to find the addr quartet member an
// expression originates from. This catches addr.PPN(vpn), the laundered
// addr.PPN(uint64(vpn)), and derived values like addr.PPN(uint64(vpn)+1).
func (p *Pass) rootAddrMember(e ast.Expr) string {
	e = ast.Unparen(e)
	if m := addrMember(p.Info.TypeOf(e)); m != "" {
		return m
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if len(e.Args) != 1 {
			return ""
		}
		tv, ok := p.Info.Types[e.Fun]
		if !ok || !tv.IsType() {
			return ""
		}
		if b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
			return ""
		}
		return p.rootAddrMember(e.Args[0])
	case *ast.BinaryExpr:
		if m := p.rootAddrMember(e.X); m != "" {
			return m
		}
		return p.rootAddrMember(e.Y)
	case *ast.UnaryExpr:
		return p.rootAddrMember(e.X)
	}
	return ""
}
