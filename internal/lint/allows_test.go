package lint

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestAllowBudget pins the number of //lint:allow suppressions per
// analyzer to the audited budget in lint_allows.txt at the repo root. The
// match is exact in both directions: a NEW suppression fails until its
// audit is recorded by bumping the budget in the same PR (making the
// escape valve reviewable), and a REMOVED suppression fails until the
// budget is lowered (so the ratchet never silently loosens).
func TestAllowBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and parses the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, pkg := range pkgs {
		allows, _ := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range allows {
			got[a.analyzer]++
		}
	}

	want := map[string]int{}
	data, err := os.ReadFile("../../lint_allows.txt")
	if err != nil {
		t.Fatalf("reading allow budget: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var n int
		if _, err := fmt.Sscanf(line, "%s %d", &name, &n); err != nil {
			t.Fatalf("malformed budget line %q: %v", line, err)
		}
		want[name] = n
	}

	names := map[string]bool{}
	for n := range got {
		names[n] = true
	}
	for n := range want {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		if got[n] != want[n] {
			t.Errorf("analyzer %s: %d //lint:allow comments in the tree, budget says %d; audit the change and update lint_allows.txt", n, got[n], want[n])
		}
	}
}
