package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Result caching for standalone lvmlint runs. Loading the module from
// source costs a few seconds per invocation; since the diagnostics are a
// pure function of the source tree, the toolchain, and the analyzer
// suite, a run whose inputs hash to a previously seen key can replay its
// recorded diagnostics without type-checking anything. The cache is
// strictly transparent: any read problem is a miss (full run), any write
// problem is ignored, and a hash change — one edited byte anywhere in the
// module — lands on a new key.

// resultCacheVersion invalidates the cache file layout itself; bump it
// when cachedResult changes shape. v2 stores structured diagnostics so a
// cached replay can serve both the human format and -json output.
const resultCacheVersion = 2

type cachedResult struct {
	Version     int          `json:"version"`
	Key         string       `json:"key"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// DefaultCacheDir returns the on-disk location of the result cache:
// $LVMLINT_CACHE when set, else <user cache dir>/lvmlint.
func DefaultCacheDir() (string, error) {
	if dir := os.Getenv("LVMLINT_CACHE"); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("lint: no cache dir: %w", err)
	}
	return filepath.Join(base, "lvmlint"), nil
}

// CacheKey hashes everything a standalone run's diagnostics depend on:
// the cache layout version, the Go toolchain, the analyzer suite, the
// module root (diagnostic strings embed absolute paths), the command-line
// patterns, and the relative path plus content of go.mod and of every .go
// file in the module. The file walk mirrors LoadAll's directory skip
// rules, and single-directory runs still hash the whole module because
// the loader resolves imports from source anywhere in it.
func CacheKey(modRoot string, patterns []string) (string, error) {
	h := sha256.New()
	put := func(parts ...string) {
		for _, p := range parts {
			fmt.Fprintf(h, "%d:%s\n", len(p), p)
		}
	}
	put("lvmlint-cache", fmt.Sprint(resultCacheVersion), runtime.Version(), modRoot)
	for _, a := range Analyzers() {
		put("analyzer", a.Name)
	}
	for _, p := range patterns {
		put("pattern", p)
	}

	var files []string
	err := filepath.WalkDir(modRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") || name == "go.mod" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("lint: cache key: %w", err)
	}
	sort.Strings(files)
	for _, path := range files {
		rel, err := filepath.Rel(modRoot, path)
		if err != nil {
			return "", fmt.Errorf("lint: cache key: %w", err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("lint: cache key: %w", err)
		}
		sum := sha256.Sum256(b)
		put("file", filepath.ToSlash(rel), hex.EncodeToString(sum[:]))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// LoadCachedResult returns the recorded diagnostics for key. Any problem
// — absent file, unreadable file, corrupt JSON, layout or key mismatch —
// is reported as a plain miss so the caller falls back to a full run.
func LoadCachedResult(dir, key string) ([]Diagnostic, bool) {
	b, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var r cachedResult
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, false
	}
	if r.Version != resultCacheVersion || r.Key != key {
		return nil, false
	}
	return r.Diagnostics, true
}

// StoreCachedResult records a completed run under key, atomically (temp
// file + rename) so a concurrent reader never sees a partial entry.
func StoreCachedResult(dir, key string, diags []Diagnostic) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(cachedResult{Version: resultCacheVersion, Key: key, Diagnostics: diags}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, key+".json")); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
