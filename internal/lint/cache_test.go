package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCacheKeyTracksSourceEdits(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":        "module example\n",
		"a/a.go":        "package a\n",
		"b/b.go":        "package b\n",
		"testdata/x.go": "not even go\n",
	})
	k1, err := CacheKey(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical tree hashed differently")
	}

	// Edit a file: new key. Revert it: original key.
	orig := "package a\n"
	if err := os.WriteFile(filepath.Join(root, "a/a.go"), []byte("package a // changed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := CacheKey(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if edited == k1 {
		t.Error("edited file did not change the key")
	}
	if err := os.WriteFile(filepath.Join(root, "a/a.go"), []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	reverted, err := CacheKey(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reverted != k1 {
		t.Error("reverting the edit did not restore the key")
	}

	// testdata is outside the loader's view, so edits there are invisible.
	if err := os.WriteFile(filepath.Join(root, "testdata/x.go"), []byte("changed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	afterTestdata, err := CacheKey(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if afterTestdata != k1 {
		t.Error("testdata edit changed the key")
	}

	// A new .go file changes the key; go.mod edits too.
	if err := os.WriteFile(filepath.Join(root, "a/new.go"), []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	withNew, err := CacheKey(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if withNew == k1 {
		t.Error("new file did not change the key")
	}
}

func TestCacheKeyTracksPatterns(t *testing.T) {
	root := writeTree(t, map[string]string{"go.mod": "module example\n", "a/a.go": "package a\n"})
	all, err := CacheKey(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	one, err := CacheKey(root, []string{"./a"})
	if err != nil {
		t.Fatal(err)
	}
	if all == one {
		t.Error("different patterns share a key")
	}
}

func TestCachedResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := "0123456789abcdef"
	diags := []Diagnostic{
		{Analyzer: "nondeterm", Pos: token.Position{Filename: "/m/a.go", Line: 3, Column: 1}, Message: "result-bearing map iteration"},
		{Analyzer: "floatfree", Pos: token.Position{Filename: "/m/b.go", Line: 9, Column: 2}, Message: "float in fixed-point path"},
	}

	if _, ok := LoadCachedResult(dir, key); ok {
		t.Fatal("hit on empty cache")
	}
	if err := StoreCachedResult(dir, key, diags); err != nil {
		t.Fatal(err)
	}
	got, ok := LoadCachedResult(dir, key)
	if !ok || !reflect.DeepEqual(got, diags) {
		t.Fatalf("round trip: ok=%v got=%v", ok, got)
	}

	// A clean run stores an empty (nil) diagnostic list and still hits.
	if err := StoreCachedResult(dir, "clean", nil); err != nil {
		t.Fatal(err)
	}
	got, ok = LoadCachedResult(dir, "clean")
	if !ok || len(got) != 0 {
		t.Fatalf("clean-run entry: ok=%v got=%v", ok, got)
	}
}

func TestCachedResultCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	key := "deadbeef"
	if err := StoreCachedResult(dir, key, []Diagnostic{{Message: "d"}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadCachedResult(dir, key); ok {
		t.Error("corrupt entry replayed")
	}

	// An entry recorded under a different key (hand-renamed file) is a miss.
	if err := StoreCachedResult(dir, "othername", []Diagnostic{{Message: "d"}}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "othername.json"), path); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadCachedResult(dir, key); ok {
		t.Error("key-mismatched entry replayed")
	}
}
