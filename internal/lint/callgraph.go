package lint

// callgraph.go builds a whole-program, CHA-style (class-hierarchy
// analysis) call graph over the packages the loader type-checked. It is
// the foundation the interprocedural analyzers (hotalloc, snapshotpure)
// stand on:
//
//   - static calls resolve to the callee's declaration;
//   - interface calls (mmu.Walker.Walk, metrics.Source.Snapshot, …)
//     resolve to every concrete method in the program whose receiver type
//     implements the interface — the classic CHA over-approximation;
//   - calls through function-typed values resolve to every function or
//     closure of identical signature whose value is taken somewhere in
//     the program (a func-pointer CHA);
//   - closure creation is an edge too, so code inside a func literal is
//     reachable from wherever the literal is built.
//
// Determinism is a hard requirement (the lint result cache and CI diffs
// hash the output): nodes are ordered by their canonical FuncID, CHA
// target lists are sorted, and breadth-first reachability visits
// neighbors in sorted order, so diagnostics and walk paths never depend
// on map iteration.
//
// Calls whose target has no body in the analyzed package set — standard
// library, and other module packages in the vet-tool's one-package-at-a-
// time mode — become ExtTarget frontier entries. Analyzers judge those
// through the facts layer (facts.go) instead of traversing them.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncID is the canonical, position-independent identity of a function:
// types.Func.FullName of the generic origin (e.g.
// "(*lvm/internal/mmu.LWC).Lookup", "lvm/internal/core.Build"), with
// "$N" suffixes for closures in source order within their parent.
type FuncID string

// CallKind classifies how a call site was resolved.
type CallKind int

const (
	// CallStatic is a direct call to a known function or concrete method.
	CallStatic CallKind = iota
	// CallInterface is a dynamic dispatch resolved by CHA over the
	// program's method sets.
	CallInterface
	// CallFuncValue is an indirect call through a function-typed value,
	// resolved by signature against address-taken functions.
	CallFuncValue
	// CallClosure is not a call at all but a closure creation; the edge
	// makes the literal's body reachable from its builder.
	CallClosure
)

// ExtTarget identifies a call target with no body in the analyzed set.
type ExtTarget struct {
	ID      FuncID
	PkgPath string
	Name    string
}

// Call is one call site inside a node's body.
type Call struct {
	Pos  token.Pos
	Kind CallKind
	// Targets are the in-graph candidates, sorted by ID.
	Targets []*Node
	// Externals are candidates without bodies (stdlib, other packages in
	// vet mode), sorted by ID. Analyzers consult facts for these.
	Externals []ExtTarget
}

// Node is one function in the graph.
type Node struct {
	ID  FuncID
	Pkg *Package
	// Fn is the type-checker object; nil for closures.
	Fn *types.Func
	// Exactly one of Decl/Lit is set.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Calls lists the body's call sites in source order.
	Calls []Call
}

// Body returns the function body (nil for bodyless declarations).
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// Name returns the bare function or method name ("Walk", "$1" for a
// closure).
func (n *Node) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	id := string(n.ID)
	if i := strings.LastIndex(id, "$"); i >= 0 {
		return "$" + id[i+1:]
	}
	return id
}

// Recv returns the receiver type for methods, nil otherwise.
func (n *Node) Recv() types.Type {
	if n.Fn == nil {
		return nil
	}
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return sig.Recv().Type()
	}
	return nil
}

// InTestFile reports whether the node is declared in a _test.go file.
func (n *Node) InTestFile() bool {
	var pos token.Pos
	if n.Decl != nil {
		pos = n.Decl.Pos()
	} else if n.Lit != nil {
		pos = n.Lit.Pos()
	} else {
		return false
	}
	return strings.HasSuffix(n.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// Graph is the whole-program call graph.
type Graph struct {
	nodes map[FuncID]*Node
	// order lists node IDs sorted lexically — the only sanctioned
	// iteration order.
	order []FuncID
	// typesPkgs is the transitive import closure of the analyzed
	// packages, sorted by path; CHA scans its named types.
	typesPkgs []*types.Package
}

// Nodes returns every node in deterministic (sorted-ID) order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.order))
	for i, id := range g.order {
		out[i] = g.nodes[id]
	}
	return out
}

// Lookup returns the node with the given ID, or nil.
func (g *Graph) Lookup(id FuncID) *Node { return g.nodes[id] }

// funcID canonicalizes a types.Func (through its generic origin, so every
// instantiation of lruCache[K].lookup shares one node).
func funcID(fn *types.Func) FuncID {
	return FuncID(fn.Origin().FullName())
}

// LookupInterface finds a named interface type anywhere in the analyzed
// packages or their import closure ("lvm/internal/mmu", "Walker").
func (g *Graph) LookupInterface(pkgPath, name string) *types.Interface {
	for _, p := range g.typesPkgs {
		if p.Path() != pkgPath {
			continue
		}
		obj := p.Scope().Lookup(name)
		if obj == nil {
			continue
		}
		if iface, ok := types.Unalias(obj.Type()).Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// graphBuilder accumulates state across the two build passes.
type graphBuilder struct {
	g *Graph
	// addressTaken maps a canonical signature string to the functions and
	// closures whose value escapes into a variable, field, or argument —
	// the candidate set for func-value calls.
	addressTaken map[string][]FuncID
	// chaTypes are the named, non-interface, non-generic types whose
	// method sets CHA consults, sorted by type string.
	chaTypes []types.Type
}

// BuildGraph constructs the call graph over the given packages. Packages
// may come from the whole-module loader (standalone mode) or be a single
// package (vet-tool mode); resolution degrades gracefully to ExtTargets
// for anything without a body.
func BuildGraph(pkgs []*Package) *Graph {
	b := &graphBuilder{
		g:            &Graph{nodes: map[FuncID]*Node{}},
		addressTaken: map[string][]FuncID{},
	}
	b.collectTypePackages(pkgs)
	b.collectCHATypes()

	// Pass 1: one node per declared function, plus closure nodes in
	// source order, and the address-taken candidate sets.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{ID: funcID(fn), Pkg: pkg, Fn: fn, Decl: fd}
				b.g.nodes[n.ID] = n
				b.indexClosures(pkg, n)
			}
		}
	}
	for _, pkg := range pkgs {
		b.collectAddressTaken(pkg)
	}

	// Pass 2: resolve every call site.
	for _, id := range sortedIDs(b.g.nodes) {
		n := b.g.nodes[id]
		if n.Lit == nil { // closures are walked from their parent's pass
			b.resolveCalls(n)
		}
	}

	b.g.order = sortedIDs(b.g.nodes)
	return b.g
}

func sortedIDs(m map[FuncID]*Node) []FuncID {
	ids := make([]FuncID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// collectTypePackages gathers the transitive import closure of the
// analyzed packages (sorted by path) for CHA's type scan.
func (b *graphBuilder) collectTypePackages(pkgs []*Package) {
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		b.g.typesPkgs = append(b.g.typesPkgs, p)
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	for _, pkg := range pkgs {
		visit(pkg.Types)
	}
	sort.Slice(b.g.typesPkgs, func(i, j int) bool {
		return b.g.typesPkgs[i].Path() < b.g.typesPkgs[j].Path()
	})
}

// collectCHATypes indexes every named, non-interface, non-generic type in
// the program whose method set could satisfy an interface.
func (b *graphBuilder) collectCHATypes() {
	for _, p := range b.g.typesPkgs {
		scope := p.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			b.chaTypes = append(b.chaTypes, named)
		}
	}
}

// indexClosures creates one node per func literal inside decl, numbered
// in source order ("parent$1", "parent$2", …, nesting included).
func (b *graphBuilder) indexClosures(pkg *Package, parent *Node) {
	if parent.Decl == nil || parent.Decl.Body == nil {
		return
	}
	i := 0
	ast.Inspect(parent.Decl.Body, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		i++
		id := FuncID(fmt.Sprintf("%s$%d", parent.ID, i))
		b.g.nodes[id] = &Node{ID: id, Pkg: pkg, Lit: lit}
		return true
	})
}

// collectAddressTaken records every function whose value is used outside
// a call position, keyed by canonical signature string.
func (b *graphBuilder) collectAddressTaken(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if ok {
				// The callee expression itself is not "address taken";
				// walk only the arguments.
				for _, arg := range call.Args {
					b.markTaken(pkg, arg)
				}
				return false // args walked manually, incl. nested calls
			}
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					b.markTaken(pkg, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range x.Values {
					b.markTaken(pkg, v)
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					b.markTaken(pkg, r)
				}
			case *ast.CompositeLit:
				for _, e := range x.Elts {
					if kv, ok := e.(*ast.KeyValueExpr); ok {
						b.markTaken(pkg, kv.Value)
					} else {
						b.markTaken(pkg, e)
					}
				}
			}
			return true
		})
	}
	for sig := range b.addressTaken {
		ids := b.addressTaken[sig]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		b.addressTaken[sig] = ids
	}
}

// markTaken records e if it denotes a function value (ident, method
// value, or func literal).
func (b *graphBuilder) markTaken(pkg *Package, e ast.Expr) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			b.take(pkg.Info.TypeOf(e), funcID(fn))
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			b.take(pkg.Info.TypeOf(e), funcID(fn))
		}
	case *ast.FuncLit:
		// The literal's node ID is assigned by indexClosures; find it by
		// position when resolving (cheaper: record by signature with a
		// position-keyed ID at resolve time). Literals are matched in
		// resolveCalls via litIDs, so here we only note the signature —
		// handled below by scanning all nodes once.
	case *ast.CallExpr, *ast.CompositeLit:
		// Nested expressions were already visited by the Inspect walk.
	}
}

func (b *graphBuilder) take(t types.Type, id FuncID) {
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	key := sigKey(sig)
	for _, have := range b.addressTaken[key] {
		if have == id {
			return
		}
	}
	b.addressTaken[key] = append(b.addressTaken[key], id)
}

// sigKey canonicalizes a signature to parameter/result types only (no
// receiver, no names), so a method value and a plain func of the same
// shape share a key.
func sigKey(sig *types.Signature) string {
	nosig := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(nosig, nil)
}

// resolveCalls fills in n.Calls (and, recursively via closure indexing,
// the calls of every literal inside n).
func (b *graphBuilder) resolveCalls(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	pkg := n.Pkg
	// litID maps each func literal in this decl to its node.
	litID := map[*ast.FuncLit]FuncID{}
	i := 0
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			i++
			litID[lit] = FuncID(fmt.Sprintf("%s$%d", n.ID, i))
		}
		return true
	})

	// walk appends to owner's call list; entering a literal switches
	// ownership to the literal's node.
	var walk func(x ast.Node, owner *Node)
	walk = func(x ast.Node, owner *Node) {
		ast.Inspect(x, func(y ast.Node) bool {
			switch y := y.(type) {
			case *ast.FuncLit:
				child := b.g.nodes[litID[y]]
				if child == nil {
					return false
				}
				owner.Calls = append(owner.Calls, Call{
					Pos: y.Pos(), Kind: CallClosure, Targets: []*Node{child},
				})
				walk(y.Body, child)
				return false
			case *ast.CallExpr:
				b.resolveOneCall(pkg, owner, y)
				// Arguments (and the callee expression) may contain
				// further calls/literals; keep walking them, but the
				// FuncLit case above handles ownership switches.
				return true
			}
			return true
		})
	}
	walk(body, n)

	// Also register literal signatures as address-taken: a created
	// closure is by definition a value.
	for lit, id := range litID {
		if sig, ok := pkg.Info.TypeOf(lit).(*types.Signature); ok {
			b.take(sig, id)
		}
	}
}

// resolveOneCall appends one resolved call site to owner.Calls.
func (b *graphBuilder) resolveOneCall(pkg *Package, owner *Node, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Type conversions and builtins are not calls.
	if tv, ok := pkg.Info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := pkg.Info.Uses[id].(*types.Builtin); isB {
			return
		}
	}

	// Static: the callee expression names a *types.Func.
	var fn *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			// Method call: interface receivers dispatch dynamically.
			mfn, _ := sel.Obj().(*types.Func)
			if mfn != nil && types.IsInterface(sel.Recv()) {
				b.addInterfaceCall(owner, call, sel.Recv(), mfn)
				return
			}
			fn = mfn
		} else {
			// Package-qualified function (pkg.F) has no Selection.
			fn, _ = pkg.Info.Uses[f.Sel].(*types.Func)
		}
	case *ast.IndexExpr: // generic instantiation F[T](…)
		if id, ok := f.X.(*ast.Ident); ok {
			fn, _ = pkg.Info.Uses[id].(*types.Func)
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: the closure edge already exists.
		return
	}
	if fn != nil {
		owner.Calls = append(owner.Calls, b.callTo(call.Pos(), CallStatic, fn))
		return
	}

	// Indirect call through a function-typed value: signature CHA.
	if sig, ok := pkg.Info.TypeOf(fun).(*types.Signature); ok {
		c := Call{Pos: call.Pos(), Kind: CallFuncValue}
		for _, id := range b.addressTaken[sigKey(sig)] {
			if t := b.g.nodes[id]; t != nil {
				c.Targets = append(c.Targets, t)
			}
		}
		owner.Calls = append(owner.Calls, c)
	}
}

// callTo builds a single-target call, in-graph or external.
func (b *graphBuilder) callTo(pos token.Pos, kind CallKind, fn *types.Func) Call {
	id := funcID(fn)
	if t := b.g.nodes[id]; t != nil {
		return Call{Pos: pos, Kind: kind, Targets: []*Node{t}}
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	return Call{Pos: pos, Kind: kind, Externals: []ExtTarget{{ID: id, PkgPath: pkgPath, Name: fn.Name()}}}
}

// addInterfaceCall resolves iface.method by CHA over every named type in
// the program.
func (b *graphBuilder) addInterfaceCall(owner *Node, call *ast.CallExpr, recv types.Type, method *types.Func) {
	iface, ok := types.Unalias(recv).Underlying().(*types.Interface)
	if !ok {
		owner.Calls = append(owner.Calls, b.callTo(call.Pos(), CallInterface, method))
		return
	}
	c := Call{Pos: call.Pos(), Kind: CallInterface}
	seen := map[FuncID]bool{}
	for _, t := range b.chaTypes {
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, method.Pkg(), method.Name())
		impl, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		id := funcID(impl)
		if seen[id] {
			continue
		}
		seen[id] = true
		if tgt := b.g.nodes[id]; tgt != nil {
			c.Targets = append(c.Targets, tgt)
		} else {
			pkgPath := ""
			if impl.Pkg() != nil {
				pkgPath = impl.Pkg().Path()
			}
			c.Externals = append(c.Externals, ExtTarget{ID: id, PkgPath: pkgPath, Name: impl.Name()})
		}
	}
	sort.Slice(c.Targets, func(i, j int) bool { return c.Targets[i].ID < c.Targets[j].ID })
	sort.Slice(c.Externals, func(i, j int) bool { return c.Externals[i].ID < c.Externals[j].ID })
	owner.Calls = append(owner.Calls, c)
}

// Reach is the result of a reachability query: which nodes a set of roots
// can reach, with enough bookkeeping to reconstruct one shortest path per
// node for diagnostics.
type Reach struct {
	order  []FuncID
	parent map[FuncID]FuncID
	root   map[FuncID]FuncID
}

// Reachable reports whether id was reached.
func (r *Reach) Reachable(id FuncID) bool { _, ok := r.root[id]; return ok }

// Order returns the reached IDs in BFS-then-ID deterministic order.
func (r *Reach) Order() []FuncID { return r.order }

// Root returns the root that first reached id.
func (r *Reach) Root(id FuncID) FuncID { return r.root[id] }

// Path renders "root → … → id" for diagnostics (at most 6 hops shown).
func (r *Reach) Path(id FuncID) string {
	var hops []string
	for cur := id; ; {
		hops = append(hops, shortID(cur))
		p, ok := r.parent[cur]
		if !ok || p == cur {
			break
		}
		cur = p
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	if len(hops) > 6 {
		hops = append(append([]string{}, hops[:2]...), append([]string{"…"}, hops[len(hops)-3:]...)...)
	}
	return strings.Join(hops, " → ")
}

// shortID strips the module path prefix from a FuncID for readable
// diagnostics: "(*lvm/internal/mmu.LWC).Lookup" → "(*mmu.LWC).Lookup".
func shortID(id FuncID) string {
	s := string(id)
	s = strings.ReplaceAll(s, ModulePath+"/internal/", "")
	s = strings.ReplaceAll(s, ModulePath+"/", "")
	return s
}

// Reach runs a breadth-first reachability query from roots. follow gates
// traversal: edges into nodes for which follow returns false are crossed
// in the result (the node is marked reached, so analyzers can frontier-
// check it) but not traversed further. A nil follow traverses everything.
func (g *Graph) Reach(roots []*Node, follow func(*Node) bool) *Reach {
	r := &Reach{parent: map[FuncID]FuncID{}, root: map[FuncID]FuncID{}}
	sorted := append([]*Node{}, roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	var queue []FuncID
	for _, n := range sorted {
		if _, ok := r.root[n.ID]; ok {
			continue
		}
		r.root[n.ID] = n.ID
		r.parent[n.ID] = n.ID
		queue = append(queue, n.ID)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		r.order = append(r.order, id)
		n := g.nodes[id]
		if n == nil || (follow != nil && r.root[id] != id && !follow(n)) {
			continue // frontier: reached but not traversed
		}
		if follow != nil && r.root[id] == id && !follow(n) {
			continue
		}
		for _, c := range n.Calls {
			for _, t := range c.Targets {
				if _, ok := r.root[t.ID]; ok {
					continue
				}
				r.root[t.ID] = r.root[id]
				r.parent[t.ID] = id
				queue = append(queue, t.ID)
			}
		}
	}
	return r
}
