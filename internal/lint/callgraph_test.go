package lint_test

import (
	"bytes"
	"strings"
	"testing"

	"lvm/internal/lint"
)

// loadFixture loads testdata/src/callgraph as lvm/test/callgraph and
// builds its call graph.
func loadFixture(t *testing.T) ([]*lint.Package, *lint.Graph) {
	t.Helper()
	loader, err := lint.NewLoader("testdata/src/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDir("testdata/src/callgraph", "lvm/test/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs, lint.BuildGraph(pkgs)
}

const fixturePkg = "lvm/test/callgraph"

// TestGraphInterfaceDispatch: total calls Area through the Shape
// interface; CHA must resolve the site to BOTH concrete implementations.
func TestGraphInterfaceDispatch(t *testing.T) {
	_, g := loadFixture(t)
	total := g.Lookup(lint.FuncID(fixturePkg + ".total"))
	if total == nil {
		t.Fatal("no node for total")
	}
	want := map[lint.FuncID]bool{
		lint.FuncID("(" + fixturePkg + ".Square).Area"):  false,
		lint.FuncID("(*" + fixturePkg + ".Circle).Area"): false,
	}
	for _, c := range total.Calls {
		if c.Kind != lint.CallInterface {
			continue
		}
		for _, tgt := range c.Targets {
			if _, ok := want[tgt.ID]; ok {
				want[tgt.ID] = true
			}
		}
	}
	for id, hit := range want {
		if !hit {
			t.Errorf("interface call in total does not target %s", id)
		}
	}
}

// TestGraphReach: reachability from entry includes the dispatch targets
// and excludes the disconnected allocator chain; Path renders the chain
// root-first with arrows.
func TestGraphReach(t *testing.T) {
	_, g := loadFixture(t)
	entry := g.Lookup(lint.FuncID(fixturePkg + ".entry"))
	if entry == nil {
		t.Fatal("no node for entry")
	}
	r := g.Reach([]*lint.Node{entry}, func(*lint.Node) bool { return true })
	for _, id := range []string{
		fixturePkg + ".total",
		"(" + fixturePkg + ".Square).Area",
		"(*" + fixturePkg + ".Circle).Area",
	} {
		if !r.Reachable(lint.FuncID(id)) {
			t.Errorf("%s not reachable from entry", id)
		}
	}
	for _, id := range []string{fixturePkg + ".alloc", fixturePkg + ".callsAlloc"} {
		if r.Reachable(lint.FuncID(id)) {
			t.Errorf("%s reachable from entry; should be disconnected", id)
		}
	}
	path := r.Path(lint.FuncID("(" + fixturePkg + ".Square).Area"))
	if !strings.Contains(path, "entry") || !strings.Contains(path, "→") {
		t.Errorf("Path = %q; want an arrow chain starting at entry", path)
	}
}

// TestFactsFixpoint: direct facts (allocation, receiver write, lock
// acquisition) must propagate one call level to their transitive callers.
func TestFactsFixpoint(t *testing.T) {
	pkgs, g := loadFixture(t)
	fs := lint.ComputeFacts(g, pkgs, nil, nil)
	cases := []struct {
		id   string
		want func(lint.FuncFact) bool
		desc string
	}{
		{fixturePkg + ".alloc", func(f lint.FuncFact) bool { return f.Allocates }, "direct make → Allocates"},
		{fixturePkg + ".callsAlloc", func(f lint.FuncFact) bool { return f.Allocates }, "transitive Allocates"},
		{fixturePkg + ".entry", func(f lint.FuncFact) bool { return !f.Allocates }, "no allocation on the dispatch chain"},
		{"(*" + fixturePkg + ".counter).bump", func(f lint.FuncFact) bool { return f.Mutates }, "direct receiver write → Mutates"},
		{"(*" + fixturePkg + ".counter).bumpTwice", func(f lint.FuncFact) bool { return f.Mutates }, "transitive Mutates via receiver-rooted call"},
		{"(*" + fixturePkg + ".counter).locked", func(f lint.FuncFact) bool { return f.Locks }, "direct mu.Lock → Locks"},
		{"(*" + fixturePkg + ".counter).viaLocked", func(f lint.FuncFact) bool { return f.Locks }, "transitive Locks"},
	}
	for _, c := range cases {
		f, ok := fs.Lookup(lint.FuncID(c.id))
		if !ok {
			t.Errorf("no fact for %s", c.id)
			continue
		}
		if !c.want(f) {
			t.Errorf("%s: fact %+v fails %s", c.id, f, c.desc)
		}
	}
	if f, _ := fs.Lookup(lint.FuncID(fixturePkg + ".callsAlloc")); !strings.Contains(f.AllocWhat, "alloc") {
		t.Errorf("callsAlloc.AllocWhat = %q; want it to name the allocating callee", f.AllocWhat)
	}
}

// TestFactsRoundTrip: Encode is deterministic and DecodeFacts inverts it.
func TestFactsRoundTrip(t *testing.T) {
	pkgs, g := loadFixture(t)
	fs := lint.ComputeFacts(g, pkgs, nil, nil)
	if fs.Len() == 0 {
		t.Fatal("fixture produced no facts")
	}
	enc := fs.Encode()
	if !bytes.Equal(enc, fs.Encode()) {
		t.Fatal("Encode is not deterministic")
	}
	dec, err := lint.DecodeFacts(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != fs.Len() {
		t.Fatalf("round trip lost facts: %d → %d", fs.Len(), dec.Len())
	}
	for _, n := range g.Nodes() {
		want, _ := fs.Lookup(n.ID)
		got, ok := dec.Lookup(n.ID)
		if !ok || got != want {
			t.Errorf("%s: round trip %+v → %+v", n.ID, want, got)
		}
	}
}

// TestFactsVersionMismatch: a fact file from a different schema version
// decodes to an EMPTY set without error — stale facts are recomputed, never
// misread.
func TestFactsVersionMismatch(t *testing.T) {
	future := []byte(`{"version":99,"funcs":[{"id":"x.F","fact":{"a":true}}]}`)
	fs, err := lint.DecodeFacts(future)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 0 {
		t.Fatalf("version-99 facts decoded to %d entries; want 0", fs.Len())
	}
	if _, err := lint.DecodeFacts([]byte("not json")); err == nil {
		t.Fatal("corrupt facts decoded without error")
	}
}

// TestGraphDeterminism: two independent builds over the same source
// produce identical node orders and identical encoded facts.
func TestGraphDeterminism(t *testing.T) {
	pkgs1, g1 := loadFixture(t)
	pkgs2, g2 := loadFixture(t)
	n1, n2 := g1.Nodes(), g2.Nodes()
	if len(n1) != len(n2) {
		t.Fatalf("node counts differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i].ID != n2[i].ID {
			t.Fatalf("node order diverges at %d: %s vs %s", i, n1[i].ID, n2[i].ID)
		}
	}
	e1 := lint.ComputeFacts(g1, pkgs1, nil, nil).Encode()
	e2 := lint.ComputeFacts(g2, pkgs2, nil, nil).Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatal("encoded facts differ between identical builds")
	}
}
