package lint

// facts.go is the facts seam of the whole-program layer: per-function
// summaries (allocates / mutates-receiver / acquires-locks) computed by a
// fixpoint over the call graph, exported as deterministic JSON so the
// vet-tool driver can hand them to dependent packages through cmd/go's
// .vetx fact files, and consumed by the interprocedural analyzers:
//
//   - hotalloc judges calls that leave its scope (or the analyzed set) by
//     the callee's Allocates fact;
//   - snapshotpure judges calls from Snapshot bodies by MutatesReceiver;
//   - syncsafe accepts a guarded-field access when the enclosing function
//     calls a helper with the Locks fact.
//
// Functions with no body anywhere (standard library) are judged by a
// conservative assumption table keyed on package path: formatting,
// string-building, sorting, reflection and I/O packages are assumed to
// allocate; pure-arithmetic packages are assumed clean. Module-internal
// functions missing from the analyzed set (vet mode before their facts
// arrive) are assumed clean — the vet driver always supplies dependency
// facts in import order, so this only relaxes the golden-test harness,
// which loads one package at a time.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncFact is the exported summary of one function.
type FuncFact struct {
	// Allocates: some path through the function heap-allocates.
	Allocates bool `json:"a,omitempty"`
	// AllocWhat is the first allocation reason, for diagnostics.
	AllocWhat string `json:"w,omitempty"`
	// Mutates: the function writes through its receiver.
	Mutates bool `json:"m,omitempty"`
	// Locks: the function acquires a sync.Mutex / sync.RWMutex.
	Locks bool `json:"l,omitempty"`
}

// FactSet maps FuncIDs to their facts.
type FactSet struct {
	funcs map[FuncID]FuncFact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{funcs: map[FuncID]FuncFact{}} }

// Lookup returns the fact for id.
func (fs *FactSet) Lookup(id FuncID) (FuncFact, bool) {
	if fs == nil || fs.funcs == nil {
		return FuncFact{}, false
	}
	f, ok := fs.funcs[id]
	return f, ok
}

// Len returns the number of facts.
func (fs *FactSet) Len() int {
	if fs == nil {
		return 0
	}
	return len(fs.funcs)
}

// Merge copies every fact from src into fs (src wins on collision).
func (fs *FactSet) Merge(src *FactSet) {
	if src == nil {
		return
	}
	for id, f := range src.funcs {
		fs.funcs[id] = f
	}
}

// factJSON is the wire form: a sorted list, so encoding is deterministic
// and diffable.
type factJSON struct {
	Version int         `json:"version"`
	Funcs   []factEntry `json:"funcs"`
}

type factEntry struct {
	ID   FuncID   `json:"id"`
	Fact FuncFact `json:"fact"`
}

// factsVersion is bumped whenever FuncFact's meaning changes; mismatched
// fact files are ignored rather than misread.
const factsVersion = 1

// Encode renders the set as deterministic JSON.
func (fs *FactSet) Encode() []byte {
	out := factJSON{Version: factsVersion}
	ids := make([]FuncID, 0, len(fs.funcs))
	for id := range fs.funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out.Funcs = append(out.Funcs, factEntry{ID: id, Fact: fs.funcs[id]})
	}
	data, err := json.Marshal(out)
	if err != nil {
		// Marshal of plain structs cannot fail; keep the signature simple.
		return []byte(`{"version":0,"funcs":[]}`)
	}
	return data
}

// DecodeFacts parses Encode output. Unknown versions decode to an empty
// set (forward compatibility: stale facts are recomputed, not misread).
func DecodeFacts(data []byte) (*FactSet, error) {
	var in factJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("lint: decoding facts: %w", err)
	}
	fs := NewFactSet()
	if in.Version != factsVersion {
		return fs, nil
	}
	for _, e := range in.Funcs {
		fs.funcs[e.ID] = e.Fact
	}
	return fs, nil
}

// ---------------------------------------------------------------------------
// External assumptions

// assumedAllocPrefixes lists stdlib package-path prefixes whose functions
// are assumed to allocate. The table errs toward allocation: a wrong
// "allocates" costs an audited //lint:allow, a wrong "clean" would let a
// regression through.
var assumedAllocPrefixes = []string{
	"bufio", "bytes", "compress", "container", "context", "encoding",
	"errors", "flag", "fmt", "hash", "io", "log", "math/big", "math/rand",
	"net", "os", "path", "reflect", "regexp", "runtime", "sort", "strconv",
	"strings", "text", "time",
}

// assumedCleanFuncs overrides the prefix table for specific functions
// that demonstrably do not allocate. encoding/binary's fixed-width
// byte-order accessors compile to loads/stores (the ecpt walker hashes
// through them on every walk).
var assumedCleanFuncs = map[string]bool{
	"sort.Search":                  true,
	"sort.SearchInts":              true,
	"sort.SearchFloat64s":          true,
	"sort.SearchStrings":           true,
	"strings.IndexByte":            true,
	"strings.HasPrefix":            true,
	"strings.HasSuffix":            true,
	"strings.Compare":              true,
	"strings.EqualFold":            true,
	"encoding/binary.Uint16":       true,
	"encoding/binary.Uint32":       true,
	"encoding/binary.Uint64":       true,
	"encoding/binary.PutUint16":    true,
	"encoding/binary.PutUint32":    true,
	"encoding/binary.PutUint64":    true,
	"encoding/binary.AppendUint64": false, // grows its argument; listed for clarity
}

// externalFact judges a call target with no body in the analyzed set.
func externalFact(imported *FactSet, ext ExtTarget) FuncFact {
	if f, ok := imported.Lookup(ext.ID); ok {
		return f
	}
	if strings.HasPrefix(ext.PkgPath, ModulePath+"/") || ext.PkgPath == ModulePath {
		// Module-internal without facts: the vet driver supplies deps'
		// facts in dependency order; the golden-test harness loads one
		// package at a time and assumes its module imports clean.
		return FuncFact{}
	}
	key := ext.PkgPath + "." + ext.Name
	if assumedCleanFuncs[key] {
		return FuncFact{}
	}
	if ext.PkgPath == "sync" {
		// Mutex/WaitGroup operations do not allocate; flag Lock acquisition.
		return FuncFact{Locks: ext.Name == "Lock" || ext.Name == "RLock"}
	}
	for _, p := range assumedAllocPrefixes {
		if ext.PkgPath == p || strings.HasPrefix(ext.PkgPath, p+"/") {
			return FuncFact{Allocates: true, AllocWhat: "assumed allocating (stdlib " + ext.PkgPath + ")"}
		}
	}
	return FuncFact{}
}

// ---------------------------------------------------------------------------
// Allocation-site scanning

// allocSite is one heap-allocating construct in a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// collectTruncations records, per package, every slice field or variable
// that is reset with the `x = x[:0]` idiom — the reuse discipline that
// makes a later self-append amortized-allocation-free (mmu.WalkBuf's
// Reset/Add pattern from the zero-allocation hot path).
func collectTruncations(pkg *Package) map[types.Object]bool {
	trunc := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
					return true
				}
				sl, ok := truncationExpr(x.Rhs[0])
				if !ok || types.ExprString(x.Lhs[0]) != types.ExprString(sl.X) {
					return true
				}
				if obj := leafObj(pkg, x.Lhs[0]); obj != nil {
					trunc[obj] = true
				}
			case *ast.CompositeLit:
				// Struct-literal form of the same discipline: a field
				// initialized to someScratch[:0] (gapped's
				// LookupResult{Clusters: t.clusterScratch[:0]}) makes
				// later self-appends to that field reuse the scratch
				// backing array.
				for _, elt := range x.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if _, ok := truncationExpr(kv.Value); !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if obj := pkg.Info.Uses[key]; obj != nil {
						trunc[obj] = true
					}
				}
			}
			return true
		})
	}
	return trunc
}

// truncationExpr reports whether e is a length-zero reslice x[:0] and
// returns the slice expression if so.
func truncationExpr(e ast.Expr) (*ast.SliceExpr, bool) {
	sl, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || sl.Slice3 {
		return nil, false
	}
	if sl.Low != nil && !isZeroLit(sl.Low) {
		return nil, false
	}
	if !isZeroLit(sl.High) {
		return nil, false
	}
	return sl, true
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// leafObj resolves the field or variable an lvalue expression ultimately
// denotes: b.pas → field pas, set → var set, t.sets[i] → field sets.
func leafObj(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := pkg.Info.Uses[e]; o != nil {
			return o
		}
		return pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[e.Sel]
	case *ast.IndexExpr:
		return leafObj(pkg, e.X)
	case *ast.StarExpr:
		return leafObj(pkg, e.X)
	}
	return nil
}

// rootObj resolves the leftmost identifier of an expression: c.walker →
// c, t.sets[i] → t. Used for receiver-rootedness checks.
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := pkg.Info.Uses[x]; o != nil {
				return o
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// scanAllocs returns every directly heap-allocating construct in the
// node's own body (closure bodies are scanned as their own nodes; the
// literal itself is the parent's allocation).
//
// Deliberately not flagged, with the dynamic TestStepZeroAllocs backstop:
// map writes (buckets are amortized by steady-state reuse in this
// codebase), defer statements, and interface boxing through assignment
// or return (only call-boundary boxing is checked).
func scanAllocs(pkg *Package, n *Node, trunc map[types.Object]bool) []allocSite {
	body := n.Body()
	if body == nil {
		return nil
	}
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	qual := types.RelativeTo(pkg.Types)

	// Pre-pass: classify append assignments so the main walk can tell a
	// disciplined self-append from a growing one.
	handledAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltinCall(pkg, call, "append") || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(as.Lhs[0]) != types.ExprString(call.Args[0]) {
			return true // not a self-append; the main walk flags it
		}
		handledAppend[call] = true
		if obj := leafObj(pkg, as.Lhs[0]); obj != nil && trunc[obj] {
			return true // reuse-disciplined: reset with [:0] elsewhere
		}
		add(call.Pos(), "self-append to %s with no [:0] reset in this package (unbounded growth)",
			types.ExprString(as.Lhs[0]))
		return true
	})

	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			add(x.Pos(), "func literal (closure allocation)")
			return false // the literal's body is its own node
		case *ast.GoStmt:
			add(x.Pos(), "go statement (goroutine allocation)")
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					t := pkg.Info.TypeOf(lit)
					add(x.Pos(), "&%s composite literal escapes to the heap", types.TypeString(t, qual))
					return false
				}
			}
			return true
		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(x)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(x.Pos(), "slice literal %s allocates", types.TypeString(t, qual))
				case *types.Map:
					add(x.Pos(), "map literal %s allocates", types.TypeString(t, qual))
				}
			}
			return true
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := pkg.Info.TypeOf(x); t != nil && isStringType(t) {
					add(x.Pos(), "string concatenation allocates")
				}
			}
			return true
		case *ast.CallExpr:
			scanCallAllocs(pkg, x, qual, handledAppend, add)
			return true
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// scanCallAllocs handles the call-shaped allocation constructs: make/new,
// unhandled appends, allocating conversions, and interface boxing of
// arguments at the call boundary.
func scanCallAllocs(pkg *Package, call *ast.CallExpr, qual types.Qualifier,
	handledAppend map[*ast.CallExpr]bool, add func(token.Pos, string, ...any)) {

	fun := ast.Unparen(call.Fun)

	// Conversions.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pkg.Info.TypeOf(call.Args[0])
		if src == nil {
			return
		}
		switch {
		case types.IsInterface(dst) && !types.IsInterface(src) && !isUntypedNil(pkg, call.Args[0]):
			add(call.Pos(), "conversion to interface %s boxes its operand", types.TypeString(dst, qual))
		case isStringType(dst) && isByteOrRuneSlice(src):
			add(call.Pos(), "%s→string conversion allocates", types.TypeString(src, qual))
		case isByteOrRuneSlice(dst) && isStringType(src):
			add(call.Pos(), "string→%s conversion allocates", types.TypeString(dst, qual))
		case isStringType(dst) && isIntegerType(src):
			add(call.Pos(), "integer→string conversion allocates")
		}
		return
	}

	// Builtins.
	switch {
	case isBuiltinCall(pkg, call, "make"):
		t := pkg.Info.TypeOf(call)
		add(call.Pos(), "make(%s) allocates", types.TypeString(t, qual))
		return
	case isBuiltinCall(pkg, call, "new"):
		t := pkg.Info.TypeOf(call)
		add(call.Pos(), "new allocates %s", types.TypeString(t, qual))
		return
	case isBuiltinCall(pkg, call, "append"):
		if !handledAppend[call] {
			add(call.Pos(), "append outside the x = append(x, …) reuse idiom may grow its backing array")
		}
		return
	}
	if isAnyBuiltin(pkg, call) {
		return
	}

	// Interface boxing of concrete arguments at the call boundary.
	sig, ok := pkg.Info.TypeOf(fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(pkg, arg) {
			continue
		}
		add(arg.Pos(), "argument boxes %s into interface %s", types.TypeString(at, qual), types.TypeString(pt, qual))
	}
}

func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pkg.Info.Uses[id].(*types.Builtin)
	return isB
}

func isAnyBuiltin(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isB := pkg.Info.Uses[id].(*types.Builtin)
	return isB
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// isNamedType reports whether t (or what it points to) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// ---------------------------------------------------------------------------
// Fact computation

// nodeLocal is per-node scratch kept during the fixpoint.
type nodeLocal struct {
	// recvCalls lists static callees invoked through a receiver-rooted
	// expression (r.helper() from a method with receiver r); a mutating
	// callee makes the caller mutating.
	recvCalls []FuncID
}

// ComputeFacts runs the direct scans and the transitive fixpoint over the
// graph. allowed filters allocation sites that carry an audited
// //lint:allow hotalloc, so a fully-suppressed function exports a clean
// fact. imported supplies facts for bodyless module-internal targets
// (vet mode); nil means none.
func ComputeFacts(g *Graph, pkgs []*Package, imported *FactSet, allowed func(pkg *Package, pos token.Pos) bool) *FactSet {
	if imported == nil {
		imported = NewFactSet()
	}
	fs := NewFactSet()
	local := map[FuncID]*nodeLocal{}
	trunc := map[*Package]map[types.Object]bool{}
	for _, pkg := range pkgs {
		trunc[pkg] = collectTruncations(pkg)
	}

	// Direct pass.
	for _, n := range g.Nodes() {
		var f FuncFact
		for _, site := range scanAllocs(n.Pkg, n, trunc[n.Pkg]) {
			if allowed != nil && allowed(n.Pkg, site.pos) {
				continue
			}
			f.Allocates = true
			f.AllocWhat = site.what
			break
		}
		f.Mutates = mutatesReceiverDirect(n)
		f.Locks = locksDirect(n)
		loc := &nodeLocal{}
		if recv := receiverObj(n); recv != nil {
			loc.recvCalls = receiverRootedCallees(n, recv)
		}
		local[n.ID] = loc
		fs.funcs[n.ID] = f
	}

	// Fixpoint: propagate Allocates and Locks over call edges, Mutates
	// over receiver-rooted call edges. The graph is small (one module);
	// quadratic worst case is fine and the iteration order is the sorted
	// node order, so the result is deterministic.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			f := fs.funcs[n.ID]
			for _, c := range n.Calls {
				if f.Allocates && f.Locks {
					break
				}
				// An audited //lint:allow hotalloc on the call line keeps
				// the callee's Allocates out of this function's exported
				// fact — otherwise vet mode, which judges cross-package
				// calls by facts alone, would re-report every allocation
				// that standalone mode suppresses at the site. Locks
				// propagation is unaffected: the filter is hotalloc's.
				callAllowed := allowed != nil && allowed(n.Pkg, c.Pos)
				for _, t := range c.Targets {
					tf := fs.funcs[t.ID]
					if !f.Allocates && tf.Allocates && !callAllowed {
						f.Allocates = true
						f.AllocWhat = "calls " + string(shortID(t.ID))
					}
					if !f.Locks && tf.Locks {
						f.Locks = true
					}
				}
				for _, ext := range c.Externals {
					ef := externalFact(imported, ext)
					if !f.Allocates && ef.Allocates && !callAllowed {
						f.Allocates = true
						f.AllocWhat = "calls " + string(shortID(ext.ID))
					}
					if !f.Locks && ef.Locks {
						f.Locks = true
					}
				}
			}
			if !f.Mutates {
				for _, id := range local[n.ID].recvCalls {
					tf, ok := fs.funcs[id]
					if !ok {
						tf, _ = imported.Lookup(id)
					}
					if tf.Mutates {
						f.Mutates = true
						break
					}
				}
			}
			if f != fs.funcs[n.ID] {
				fs.funcs[n.ID] = f
				changed = true
			}
		}
	}
	return fs
}

// receiverObj returns the declared receiver variable of a method node.
func receiverObj(n *Node) types.Object {
	if n.Decl == nil || n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return nil
	}
	names := n.Decl.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return n.Pkg.Info.Defs[names[0]]
}

// mutatesReceiverDirect reports whether the node writes through its
// receiver anywhere in its body, including inside closures (which share
// the receiver variable).
func mutatesReceiverDirect(n *Node) bool {
	recv := receiverObj(n)
	if recv == nil || n.Decl == nil || n.Decl.Body == nil {
		return false
	}
	pkg := n.Pkg
	mutates := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if mutates {
			return false
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isReceiverRooted(pkg, lhs, recv) {
					mutates = true
				}
			}
		case *ast.IncDecStmt:
			if isReceiverRooted(pkg, x.X, recv) {
				mutates = true
			}
		case *ast.CallExpr:
			// delete(r.m, k) mutates the receiver's map.
			if isBuiltinCall(pkg, x, "delete") && len(x.Args) > 0 && isReceiverRooted(pkg, x.Args[0], recv) {
				mutates = true
			}
		}
		return true
	})
	return mutates
}

// isReceiverRooted reports whether e's leftmost identifier is recv, with
// at least one selection step (writing to a shadowing local named like
// the receiver does not count; writing `*r = v` does).
func isReceiverRooted(pkg *Package, e ast.Expr, recv types.Object) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		// A bare `r = v` rebinds the local copy, it does not mutate.
		_ = id
		return false
	}
	if st, ok := e.(*ast.StarExpr); ok {
		if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
			return pkg.Info.Uses[id] == recv
		}
	}
	return rootObj(pkg, e) == recv
}

// receiverRootedCallees lists static callees invoked through recv.
func receiverRootedCallees(n *Node, recv types.Object) []FuncID {
	if n.Decl == nil || n.Decl.Body == nil {
		return nil
	}
	pkg := n.Pkg
	var out []FuncID
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		if rootObj(pkg, sel.X) == recv {
			out = append(out, funcID(fn))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// locksDirect reports whether the node's body acquires a sync lock.
func locksDirect(n *Node) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	pkg := n.Pkg
	locks := false
	ast.Inspect(body, func(x ast.Node) bool {
		if locks {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		t := pkg.Info.TypeOf(sel.X)
		if t != nil && (isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")) {
			locks = true
		}
		return true
	})
	return locks
}
