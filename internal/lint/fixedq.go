package lint

import (
	"go/ast"
	"go/token"
)

const fixedPkg = ModulePath + "/internal/fixed"

// FixedQ flags raw integer arithmetic on fixed.Q values outside
// internal/fixed. A Q44.20 value is an integer container with an implicit
// 2^-20 scale factor; `a * b` on two Q values is off by 2^20 and `q + 3`
// adds 3·2^-20, so every combination must go through the fixed helpers
// (Mul, Add, Neg, MulAdd, FromInt, FromFloat), which carry the rescaling
// and saturation the hardware performs (paper §4.5).
//
// Comparisons (==, <, …) are allowed: Q values of equal scale order
// identically to their real values.
var FixedQ = &Analyzer{
	Name: "fixedq",
	Doc:  "flags raw *, /, +, -, <<, … arithmetic involving fixed.Q outside internal/fixed",
	Run:  runFixedQ,
}

// arithOps are the value-producing operators that silently break the Q44.20
// scale invariant.
var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

// arithAssignOps are the corresponding compound assignments.
var arithAssignOps = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD, token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL, token.QUO_ASSIGN: token.QUO,
	token.REM_ASSIGN: token.REM, token.AND_ASSIGN: token.AND,
	token.OR_ASSIGN: token.OR, token.XOR_ASSIGN: token.XOR,
	token.SHL_ASSIGN: token.SHL, token.SHR_ASSIGN: token.SHR,
	token.AND_NOT_ASSIGN: token.AND_NOT,
}

func runFixedQ(pass *Pass) {
	if pass.PkgPath == fixedPkg {
		return
	}
	isQ := func(e ast.Expr) bool {
		t := pass.Info.TypeOf(e)
		return t != nil && isNamed(t, fixedPkg, "Q")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithOps[n.Op] && (isQ(n.X) || isQ(n.Y)) {
					pass.Reportf(n.OpPos, "raw %s arithmetic on fixed.Q; use the fixed helpers (Mul/Add/Neg/MulAdd/FromInt)", n.Op)
				}
			case *ast.UnaryExpr:
				if (n.Op == token.SUB || n.Op == token.ADD || n.Op == token.XOR) && isQ(n.X) {
					pass.Reportf(n.OpPos, "raw unary %s on fixed.Q; use fixed.Q.Neg", n.Op)
				}
			case *ast.AssignStmt:
				if op, ok := arithAssignOps[n.Tok]; ok && len(n.Lhs) == 1 && isQ(n.Lhs[0]) {
					pass.Reportf(n.TokPos, "raw %s= on fixed.Q; use the fixed helpers (Mul/Add/Neg/MulAdd/FromInt)", op)
				}
			case *ast.IncDecStmt:
				if isQ(n.X) {
					pass.Reportf(n.TokPos, "raw %s on fixed.Q; use the fixed helpers (Add/FromInt)", n.Tok)
				}
			}
			return true
		})
	}
}
