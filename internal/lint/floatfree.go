package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatFreeFiles are the hardware-model hot-path files inside
// internal/core: the walk itself, the hardware walker, and the insert paths
// that size and predict into hardware-resident tables. The OS-side training
// code (build.go) legitimately runs in floating point — the paper trains in
// float and quantizes with fixed.FromFloat — so it is deliberately outside
// the scope.
var floatFreeFiles = map[string]bool{
	"walk.go":   true,
	"hw.go":     true,
	"insert.go": true,
}

// floatFreePkgs are whole packages modeling hardware structures.
var floatFreePkgs = map[string]bool{
	ModulePath + "/internal/mmu": true,
	ModulePath + "/internal/tlb": true,
}

// FloatFree flags float32/float64 arithmetic in hardware-model hot paths.
// The hardware page walker computes exclusively in Q44.20 fixed point
// (paper §4.5/§7.4); a float sneaking into walk.go or the MMU/TLB models
// means the simulation is computing something no hardware would. Reporting
// helpers — functions whose name ends in Rate/Ratio/Percent, or String/
// Float — are allowlisted: hit-rate division for stats output is not model
// math.
var FloatFree = &Analyzer{
	Name: "floatfree",
	Doc:  "flags float arithmetic in hardware-model hot paths (core walk/hw/insert, mmu, tlb) outside stats/reporting helpers",
	Run:  runFloatFree,
	// core counts as covered even though only its hot-path files are
	// checked: the analyzer does look at the package, file by file.
	Covers: func(path string) bool {
		path = StripVariant(path)
		return floatFreePkgs[path] || path == ModulePath+"/internal/core"
	},
}

// reportingFunc reports whether a function name is an allowlisted
// stats/reporting helper.
func reportingFunc(name string) bool {
	return strings.HasSuffix(name, "Rate") || strings.HasSuffix(name, "Ratio") ||
		strings.HasSuffix(name, "Percent") || name == "String" || name == "Float"
}

func runFloatFree(pass *Pass) {
	inScope := floatFreePkgs[pass.PkgPath]
	isFloat := func(e ast.Expr) bool {
		t := pass.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if !inScope && !(pass.PkgPath == ModulePath+"/internal/core" && floatFreeFiles[pass.FileName(f.Pos())]) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || reportingFunc(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if arithOps[n.Op] && (isFloat(n.X) || isFloat(n.Y)) {
						pass.Reportf(n.OpPos, "float arithmetic in hardware-model hot path; compute in fixed.Q (or move to a reporting helper)")
					}
				case *ast.UnaryExpr:
					if n.Op == token.SUB && isFloat(n.X) {
						pass.Reportf(n.OpPos, "float arithmetic in hardware-model hot path; compute in fixed.Q (or move to a reporting helper)")
					}
				case *ast.AssignStmt:
					if _, ok := arithAssignOps[n.Tok]; ok && len(n.Lhs) == 1 && isFloat(n.Lhs[0]) {
						pass.Reportf(n.TokPos, "float arithmetic in hardware-model hot path; compute in fixed.Q (or move to a reporting helper)")
					}
				}
				return true
			})
		}
	}
}
