package lint

// hotalloc statically seals the zero-allocation invariant of the
// translate-then-access hot path. PR 4 made sim.step allocation-free and
// guards it dynamically with TestStepZeroAllocs, but only at the handful
// of scheme/config pairs the test runs; a new scheme or a refactor can
// reintroduce an allocation on an untested path and silently regress
// ns/op. hotalloc walks the whole-program call graph instead: from the
// roots — sim.step, CPU.translate, and every Walk/WalkInto method of a
// type implementing mmu.Walker — it visits everything reachable inside
// the hardware-model packages and flags every heap-allocating construct,
// and judges calls that leave the scope by the callee's exported
// Allocates fact.

import (
	"go/types"
)

// hotAllocPkgs are the packages whose functions the hot-path traversal
// descends into: the simulator core, the MMU/TLB/cache/DRAM hardware
// models, every page-table scheme, and the arithmetic/addressing helpers
// they lean on. Calls that leave this set (phys allocation, oskernel
// fault handling, metrics snapshotting, stdlib) are frontier-checked
// against facts at the call site instead: allocating there is either a
// bug or an audited //lint:allow with a reason (e.g. the OS-side fault
// path, which is software, not hardware).
var hotAllocPkgs = map[string]bool{
	ModulePath + "/internal/sim":       true,
	ModulePath + "/internal/mmu":       true,
	ModulePath + "/internal/tlb":       true,
	ModulePath + "/internal/cache":     true,
	ModulePath + "/internal/dram":      true,
	ModulePath + "/internal/core":      true,
	ModulePath + "/internal/radix":     true,
	ModulePath + "/internal/ecpt":      true,
	ModulePath + "/internal/fpt":       true,
	ModulePath + "/internal/ideal":     true,
	ModulePath + "/internal/asap":      true,
	ModulePath + "/internal/victima":   true,
	ModulePath + "/internal/revelator": true,
	ModulePath + "/internal/gapped":    true,
	ModulePath + "/internal/hashpt":    true,
	ModulePath + "/internal/model":     true,
	ModulePath + "/internal/blake2b":   true,
	ModulePath + "/internal/fixed":     true,
	ModulePath + "/internal/addr":      true,
	ModulePath + "/internal/pte":       true,
	ModulePath + "/internal/stats":     true,
	ModulePath + "/internal/vas":       true,
	ModulePath + "/internal/workload":  true,
}

func inHotAllocScope(path string) bool { return hotAllocPkgs[StripVariant(path)] }

// HotAlloc flags heap allocation reachable from the translation hot path.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "hotalloc statically seals the zero-allocation translate hot path. " +
		"From the roots sim.step, CPU.translate, the batch pipeline " +
		"(CPU.TranslateBatch, CPU.FastForward), the serving drive loop's " +
		"inner call (Session.Step), and every scheme walker's " +
		"Walk/WalkInto/WalkBatch/Lookup (resolved through the cross-package " +
		"call graph, interface dispatch included), it flags every reachable " +
		"heap-allocating construct: make/new, appends outside the " +
		"`x = append(x, …)` + `x = x[:0]` reuse discipline, escaping " +
		"composite literals, closure creation, interface boxing at call " +
		"boundaries, string concatenation and conversions, and go " +
		"statements. Calls leaving the hardware-model package set are " +
		"judged by the callee's exported Allocates fact at the call site, " +
		"so audited exceptions (the OS fault path, bounded warm-up " +
		"appends) carry a //lint:allow where the hot path meets them. " +
		"TestStepZeroAllocs remains the dynamic backstop for what static " +
		"analysis deliberately skips (map writes, defer).",
	RunProgram: runHotAlloc,
	Covers:     inHotAllocScope,
}

func runHotAlloc(pass *ProgramPass) {
	prog := pass.Prog
	g := prog.Graph
	walkerIface := g.LookupInterface(ModulePath+"/internal/mmu", "Walker")

	followable := func(n *Node) bool {
		return inHotAllocScope(n.Pkg.PkgPath) && !n.InTestFile()
	}

	var roots []*Node
	for _, n := range g.Nodes() {
		if n.Fn == nil || !followable(n) {
			continue
		}
		recv := n.Recv()
		switch n.Fn.Name() {
		case "step", "translate", "TranslateBatch", "FastForward":
			if n.Pkg.PkgPath == ModulePath+"/internal/sim" && recv != nil && isCPUType(recv) {
				roots = append(roots, n)
			}
		case "Step":
			// Session.Step is the serving drive loop's inner call (lvmd runs
			// every tenant through it), so it inherits the same sealed
			// zero-allocation bar as the batch pipeline it wraps.
			if n.Pkg.PkgPath == ModulePath+"/internal/sim" && recv != nil && isSessionType(recv) {
				roots = append(roots, n)
			}
		case "Walk", "WalkInto", "WalkBatch", "Lookup":
			if recv != nil && walkerIface != nil && implementsIface(recv, walkerIface) {
				roots = append(roots, n)
			}
		}
	}

	reach := g.Reach(roots, followable)
	trunc := map[*Package]map[types.Object]bool{}
	seen := map[string]bool{}
	report := func(pkg *Package, site allocSite, via string) {
		key := pkg.Fset.Position(site.pos).String() + "|" + site.what
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(pkg, site.pos, "hot-path allocation: %s (reachable via %s)", site.what, via)
	}

	for _, id := range reach.Order() {
		n := g.Lookup(id)
		if n == nil || !followable(n) {
			continue // frontier nodes are judged at their call sites
		}
		via := reach.Path(id)
		if trunc[n.Pkg] == nil {
			trunc[n.Pkg] = collectTruncations(n.Pkg)
		}
		for _, site := range scanAllocs(n.Pkg, n, trunc[n.Pkg]) {
			report(n.Pkg, site, via)
		}
		for _, c := range n.Calls {
			for _, t := range c.Targets {
				if followable(t) {
					continue // traversed; constructs reported in place
				}
				if f, ok := prog.Facts.Lookup(t.ID); ok && f.Allocates {
					report(n.Pkg, allocSite{pos: c.Pos,
						what: "call to " + string(shortID(t.ID)) + ", which allocates (" + f.AllocWhat + ")"}, via)
				}
			}
			for _, ext := range c.Externals {
				if f := prog.FactFor(ext.ID, ext); f.Allocates {
					report(n.Pkg, allocSite{pos: c.Pos,
						what: "call to " + string(shortID(ext.ID)) + ", which allocates (" + f.AllocWhat + ")"}, via)
				}
			}
		}
	}
}

func isCPUType(t types.Type) bool {
	return isNamedType(t, ModulePath+"/internal/sim", "CPU")
}

func isSessionType(t types.Type) bool {
	return isNamedType(t, ModulePath+"/internal/sim", "Session")
}

// implementsIface reports whether the receiver type (value or pointer)
// satisfies iface.
func implementsIface(recv types.Type, iface *types.Interface) bool {
	if p, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = p.Elem()
	}
	return types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface)
}
