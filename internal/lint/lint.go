// Package lint implements lvmlint, the repository's custom static-analysis
// suite. It enforces the three invariants the Go compiler cannot check and
// this reproduction's correctness hangs on:
//
//   - fixed-point hygiene (fixedq): Q44.20 values are only combined through
//     the internal/fixed helpers, never raw integer operators (paper §4.5 —
//     one scaling slip silently corrupts every model prediction);
//   - address-type hygiene (addrtypes): addr.VA/PA/VPN/PPN are never
//     cross-converted directly, including laundering through uint64;
//   - determinism (nondeterm): no wall-clock reads, no global math/rand, and
//     no result-bearing map iteration in the simulator packages, so every
//     EXPERIMENTS.md number is bit-for-bit reproducible;
//   - float-free hot paths (floatfree): the hardware walk path performs no
//     floating-point arithmetic outside reporting helpers.
//
// On top of the per-package checks sits a whole-program layer (callgraph.go,
// facts.go): a CHA-style cross-package call graph with per-function facts
// (allocates / mutates-receiver / locks) that three interprocedural
// analyzers consume:
//
//   - hotalloc: nothing reachable from the translate-then-access hot path
//     (sim.step, CPU.translate, every scheme walker's Walk/WalkInto) may
//     heap-allocate — the static seal over TestStepZeroAllocs;
//   - syncsafe: concurrency discipline for the scheduler and experiment
//     pipeline — no mutex copies, no untracked goroutines, and
//     `// guarded by <mu>` fields only touched with the lock held;
//   - snapshotpure: every Snapshot() metrics.Set implementation is
//     read-only;
//   - sortedfree: physical frames are never freed from inside a map
//     iteration (collect-and-sort first), keeping the buddy allocator's
//     state reproducible.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer / Pass /
// Diagnostic) but is built entirely on the standard library's go/ast and
// go/types so the module stays dependency-free.
//
// Legitimate exceptions are suppressed in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; an allow comment without one is itself reported, which keeps
// every exception auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this module; analyzers use it to
// scope rules to specific packages.
const ModulePath = "lvm"

// An Analyzer describes one invariant checker. Exactly one of Run and
// RunProgram is set: Run analyzers see one package at a time, RunProgram
// analyzers see the whole loaded program (call graph + facts) at once.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the package and reports violations via pass.Report.
	Run func(pass *Pass)
	// RunProgram inspects the whole program at once.
	RunProgram func(pass *ProgramPass)
	// Covers reports whether the analyzer's scope includes the package.
	// Analyzers that sweep everything leave it nil; path-scoped analyzers
	// set it so the suite-wide scope-coverage test can prove that every
	// package importing sim/mmu/metrics is policed by at least one of
	// them.
	Covers func(pkgPath string) bool
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// PkgPath is the package's import path with any test-variant suffix
	// (e.g. " [lvm/internal/sim.test]") already stripped.
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	diags []Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileName returns the base name of the file containing pos.
func (p *Pass) FileName(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// InTestFile reports whether pos is inside a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.FileName(pos), "_test.go")
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full lvmlint suite in a stable order. The order
// is part of the result-cache key, so appending here invalidates stale
// cached runs automatically.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FixedQ, AddrTypes, NonDeterm, FloatFree, NoPanic,
		HotAlloc, SyncSafe, SnapshotPure, SortedFree,
	}
}

// A Program is the whole-program view handed to RunProgram analyzers: the
// loaded packages, the CHA call graph over them, and the per-function
// facts (local ∪ imported).
type Program struct {
	Packages []*Package
	Graph    *Graph
	// Facts holds the summaries computed for this program's functions,
	// closed transitively over Imported.
	Facts *FactSet
	// Imported holds facts received from already-analyzed dependency
	// packages (the vet-tool facts seam); empty in whole-module runs.
	Imported *FactSet
}

// FactFor returns the best-known fact for a call target: a node's
// computed fact, an imported fact, or the external assumption table.
func (prog *Program) FactFor(id FuncID, ext ExtTarget) FuncFact {
	if f, ok := prog.Facts.Lookup(id); ok {
		return f
	}
	if f, ok := prog.Imported.Lookup(id); ok {
		return f
	}
	return externalFact(prog.Imported, ext)
}

// NewProgram builds the graph and facts over pkgs. allowed filters
// //lint:allow hotalloc sites out of the allocation facts; nil applies no
// filtering.
func NewProgram(pkgs []*Package, imported *FactSet, allowed func(pkg *Package, pos token.Pos) bool) *Program {
	if imported == nil {
		imported = NewFactSet()
	}
	g := BuildGraph(pkgs)
	return &Program{
		Packages: pkgs,
		Graph:    g,
		Facts:    ComputeFacts(g, pkgs, imported, allowed),
		Imported: imported,
	}
}

// A ProgramPass provides one program analyzer with the whole program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a violation at pos, resolved through pkg's FileSet.
func (p *ProgramPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunSuite applies the full analyzer set — per-package and whole-program —
// to the loaded packages and returns the surviving diagnostics plus the
// computed facts (for the vet driver to export). Suppression is uniform:
// a //lint:allow in any package suppresses a diagnostic at that position
// regardless of which mode produced it.
func RunSuite(pkgs []*Package, analyzers []*Analyzer, imported *FactSet) ([]Diagnostic, *FactSet) {
	var perPkg, perProg []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			perProg = append(perProg, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	var allAllows []*allow
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, malformed := collectAllows(pkg.Fset, pkg.Files)
		allAllows = append(allAllows, allows...)
		out = append(out, malformed...)
	}
	allowedHot := func(pkg *Package, pos token.Pos) bool {
		p := pkg.Fset.Position(pos)
		for _, a := range allAllows {
			if a.analyzer == HotAlloc.Name && a.file == p.Filename &&
				(a.line == p.Line || a.line == p.Line-1) {
				return true
			}
		}
		return false
	}

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range perPkg {
			pass := &Pass{
				Analyzer: a,
				PkgPath:  pkg.PkgPath,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			raw = append(raw, pass.diags...)
		}
	}

	prog := NewProgram(pkgs, imported, allowedHot)
	for _, a := range perProg {
		pass := &ProgramPass{Analyzer: a, Prog: prog}
		a.RunProgram(pass)
		raw = append(raw, pass.diags...)
	}

	out = append(out, suppress(raw, allAllows)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, prog.Facts
}

// allow is one parsed //lint:allow comment.
type allow struct {
	analyzer string
	line     int
	file     string
	used     bool
}

const allowPrefix = "//lint:allow "

// collectAllows parses every //lint:allow comment in the package, returning
// the usable suppressions and diagnostics for malformed ones (missing
// analyzer name or missing reason).
func collectAllows(fset *token.FileSet, files []*ast.File) (allows []*allow, malformed []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSpace(allowPrefix)) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, strings.TrimSpace(allowPrefix))
				// Ignore a trailing "// want …" so the linttest golden files
				// can annotate expectations on the same line as an allow.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				allows = append(allows, &allow{
					analyzer: fields[0],
					line:     pos.Line,
					file:     pos.Filename,
				})
			}
		}
	}
	return allows, malformed
}

// suppress filters diags through the package's allow comments. An allow on
// the diagnostic's line or the line directly above suppresses it.
func suppress(diags []Diagnostic, allows []*allow) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.analyzer == d.Analyzer && a.file == d.Pos.Filename &&
				(a.line == d.Pos.Line || a.line == d.Pos.Line-1) {
				a.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Run applies the per-package analyzers to one loaded package and returns
// the surviving diagnostics plus any malformed-allow diagnostics, sorted
// by position. Whole-program analyzers in the list are skipped; use
// RunSuite to run both kinds.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allows, malformed := collectAllows(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			PkgPath:  pkg.PkgPath,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		a.Run(pass)
		out = append(out, suppress(pass.diags, allows)...)
	}
	out = append(out, malformed...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out
}

// isNamed reports whether t is the named type pkgPath.name (after
// following aliases).
func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// StripVariant removes cmd/go's test-variant suffix from an import path:
// "p [p.test]" → "p".
func StripVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
