// Package lint implements lvmlint, the repository's custom static-analysis
// suite. It enforces the three invariants the Go compiler cannot check and
// this reproduction's correctness hangs on:
//
//   - fixed-point hygiene (fixedq): Q44.20 values are only combined through
//     the internal/fixed helpers, never raw integer operators (paper §4.5 —
//     one scaling slip silently corrupts every model prediction);
//   - address-type hygiene (addrtypes): addr.VA/PA/VPN/PPN are never
//     cross-converted directly, including laundering through uint64;
//   - determinism (nondeterm): no wall-clock reads, no global math/rand, and
//     no result-bearing map iteration in the simulator packages, so every
//     EXPERIMENTS.md number is bit-for-bit reproducible;
//   - float-free hot paths (floatfree): the hardware walk path performs no
//     floating-point arithmetic outside reporting helpers.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer / Pass /
// Diagnostic) but is built entirely on the standard library's go/ast and
// go/types so the module stays dependency-free.
//
// Legitimate exceptions are suppressed in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; an allow comment without one is itself reported, which keeps
// every exception auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this module; analyzers use it to
// scope rules to specific packages.
const ModulePath = "lvm"

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the package and reports violations via pass.Report.
	Run func(pass *Pass)
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// PkgPath is the package's import path with any test-variant suffix
	// (e.g. " [lvm/internal/sim.test]") already stripped.
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	diags []Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileName returns the base name of the file containing pos.
func (p *Pass) FileName(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// InTestFile reports whether pos is inside a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.FileName(pos), "_test.go")
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full lvmlint suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{FixedQ, AddrTypes, NonDeterm, FloatFree, NoPanic}
}

// allow is one parsed //lint:allow comment.
type allow struct {
	analyzer string
	line     int
	file     string
	used     bool
}

const allowPrefix = "//lint:allow "

// collectAllows parses every //lint:allow comment in the package, returning
// the usable suppressions and diagnostics for malformed ones (missing
// analyzer name or missing reason).
func collectAllows(fset *token.FileSet, files []*ast.File) (allows []*allow, malformed []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSpace(allowPrefix)) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, strings.TrimSpace(allowPrefix))
				// Ignore a trailing "// want …" so the linttest golden files
				// can annotate expectations on the same line as an allow.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				allows = append(allows, &allow{
					analyzer: fields[0],
					line:     pos.Line,
					file:     pos.Filename,
				})
			}
		}
	}
	return allows, malformed
}

// suppress filters diags through the package's allow comments. An allow on
// the diagnostic's line or the line directly above suppresses it.
func suppress(diags []Diagnostic, allows []*allow) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.analyzer == d.Analyzer && a.file == d.Pos.Filename &&
				(a.line == d.Pos.Line || a.line == d.Pos.Line-1) {
				a.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Run applies the analyzers to one loaded package and returns the surviving
// diagnostics plus any malformed-allow diagnostics, sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allows, malformed := collectAllows(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			PkgPath:  pkg.PkgPath,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		a.Run(pass)
		out = append(out, suppress(pass.diags, allows)...)
	}
	out = append(out, malformed...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out
}

// isNamed reports whether t is the named type pkgPath.name (after
// following aliases).
func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// StripVariant removes cmd/go's test-variant suffix from an import path:
// "p [p.test]" → "p".
func StripVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
