package lint_test

import (
	"strings"
	"testing"

	"lvm/internal/lint"
	"lvm/internal/lint/linttest"
)

// Each analyzer is exercised against a golden testdata package seeded with
// violations (the `// want` comments) and clean idioms that must stay
// silent. Scoped analyzers are additionally checked against impersonated
// import paths: the testdata is loaded *as* the package the rule targets or
// exempts.

func TestFixedQ(t *testing.T) {
	linttest.Run(t, lint.FixedQ, "testdata/src/fixedq", "lvm/test/fixedq")
}

func TestFixedQSilentInsideFixed(t *testing.T) {
	linttest.Run(t, lint.FixedQ, "testdata/src/fixedq_exempt", "lvm/internal/fixed")
}

func TestAddrTypes(t *testing.T) {
	linttest.Run(t, lint.AddrTypes, "testdata/src/addrtypes", "lvm/test/addrtypes")
}

func TestNonDeterm(t *testing.T) {
	linttest.Run(t, lint.NonDeterm, "testdata/src/nondeterm", "lvm/internal/sim")
}

func TestNonDetermMapRuleScoped(t *testing.T) {
	linttest.Run(t, lint.NonDeterm, "testdata/src/nondeterm_unscoped", "lvm/internal/workload")
}

// The map-iteration rule extends by prefix to the experiment subpackages:
// the parallel scheduler must not let iteration order reorder results.
func TestNonDetermCoversScheduler(t *testing.T) {
	linttest.Run(t, lint.NonDeterm, "testdata/src/nondeterm", "lvm/internal/experiments/sched")
}

// internal/metrics builds the snapshot sets the regression gate compares
// byte-for-byte, so the map-iteration rule covers it too.
func TestNonDetermCoversMetrics(t *testing.T) {
	linttest.Run(t, lint.NonDeterm, "testdata/src/nondeterm", "lvm/internal/metrics")
}

// TestSuiteScopeCoverage generalizes the point check above: every internal
// package that imports the simulator core (sim, mmu, or metrics) feeds
// simulated results, so at least one scoped analyzer must claim it via
// Covers. A new package wired into the simulator without lint coverage —
// or a scope map that silently drifts out from under the import graph —
// fails here.
func TestSuiteScopeCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	simCore := map[string]bool{
		"lvm/internal/sim":     true,
		"lvm/internal/mmu":     true,
		"lvm/internal/metrics": true,
	}
	var scoped []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if a.Covers != nil {
			scoped = append(scoped, a)
		}
	}
	if len(scoped) < 5 {
		t.Fatalf("only %d analyzers declare Covers; scope map is degenerate", len(scoped))
	}
	checked := 0
	for _, pkg := range pkgs {
		if pkg.IsXTest || !strings.HasPrefix(pkg.PkgPath, "lvm/internal/") {
			continue
		}
		if pkg.PkgPath == "lvm/internal/lint" || strings.HasPrefix(pkg.PkgPath, "lvm/internal/lint/") {
			continue // the linter analyzes the simulator, not itself
		}
		importsCore := simCore[pkg.PkgPath]
		for _, imp := range pkg.Types.Imports() {
			if simCore[imp.Path()] {
				importsCore = true
			}
		}
		if !importsCore {
			continue
		}
		checked++
		covered := false
		for _, a := range scoped {
			if a.Covers(pkg.PkgPath) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("%s imports the simulator core but no analyzer's Covers claims it", pkg.PkgPath)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d simulator-importing packages found; import-graph discovery is broken", checked)
	}
}

func TestNoPanic(t *testing.T) {
	linttest.Run(t, lint.NoPanic, "testdata/src/nopanic", "lvm/internal/experiments/sched")
}

// Outside the simulator/experiment packages (here: workload), panics are the
// caller's business and the analyzer stays silent.
func TestNoPanicUnscoped(t *testing.T) {
	linttest.Run(t, lint.NoPanic, "testdata/src/nopanic_unscoped", "lvm/internal/workload")
}

func TestFloatFree(t *testing.T) {
	linttest.Run(t, lint.FloatFree, "testdata/src/floatfree", "lvm/internal/tlb")
}

// The testdata walker implements mmu.Walker (the real interface, resolved
// from module source), so its Walk method is a traversal root: reachable
// constructs, frontier stdlib calls, and call-boundary boxing all fire;
// the unreachable function and the //lint:allow'd site stay silent.
func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "testdata/src/hotalloc", "lvm/internal/radix")
}

// TestHotAllocResetDeletion is the mutation case the acceptance demands:
// two walkers differing only in the `x = x[:0]` truncation. Deleting the
// Reset discipline must flip the self-append from silent to flagged.
func TestHotAllocResetDeletion(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "testdata/src/hotalloc_reset", "lvm/internal/ecpt")
}

func TestSyncSafe(t *testing.T) {
	linttest.Run(t, lint.SyncSafe, "testdata/src/syncsafe", "lvm/internal/experiments")
}

// Outside the goroutine-running packages the same code is silent: the
// hardware models are single-threaded by design.
func TestSyncSafeUnscoped(t *testing.T) {
	linttest.Run(t, lint.SyncSafe, "testdata/src/syncsafe_unscoped", "lvm/internal/tlb")
}

// snapshotpure is module-wide: any package loaded as any path is checked.
func TestSnapshotPure(t *testing.T) {
	linttest.Run(t, lint.SnapshotPure, "testdata/src/snapshotpure", "lvm/test/snapshotpure")
}

func TestSortedFree(t *testing.T) {
	linttest.Run(t, lint.SortedFree, "testdata/src/sortedfree", "lvm/internal/oskernel")
}

// TestAllowSuppression covers the //lint:allow contract: same-line and
// line-above suppression, the mandatory reason, and analyzer matching.
func TestAllowSuppression(t *testing.T) {
	linttest.Run(t, lint.FixedQ, "testdata/src/allow", "lvm/test/allow")
}

// TestRepoIsLintClean enforces the full suite — per-package AND
// whole-program analyzers — over the module as a tier-1 test: a PR that
// introduces a violation without an auditable //lint:allow fails here, not
// just in CI's lvmlint step. RunSuite (not per-package Run) is essential:
// hotalloc's reachability and syncsafe's Locks facts only exist with the
// cross-package call graph built.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages; module discovery is broken", len(pkgs))
	}
	diags, _ := lint.RunSuite(pkgs, lint.Analyzers(), nil)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
