package lint_test

import (
	"testing"

	"lvm/internal/lint"
	"lvm/internal/lint/linttest"
)

// Each analyzer is exercised against a golden testdata package seeded with
// violations (the `// want` comments) and clean idioms that must stay
// silent. Scoped analyzers are additionally checked against impersonated
// import paths: the testdata is loaded *as* the package the rule targets or
// exempts.

func TestFixedQ(t *testing.T) {
	linttest.Run(t, lint.FixedQ, "testdata/src/fixedq", "lvm/test/fixedq")
}

func TestFixedQSilentInsideFixed(t *testing.T) {
	linttest.Run(t, lint.FixedQ, "testdata/src/fixedq_exempt", "lvm/internal/fixed")
}

func TestAddrTypes(t *testing.T) {
	linttest.Run(t, lint.AddrTypes, "testdata/src/addrtypes", "lvm/test/addrtypes")
}

func TestNonDeterm(t *testing.T) {
	linttest.Run(t, lint.NonDeterm, "testdata/src/nondeterm", "lvm/internal/sim")
}

func TestNonDetermMapRuleScoped(t *testing.T) {
	linttest.Run(t, lint.NonDeterm, "testdata/src/nondeterm_unscoped", "lvm/internal/workload")
}

// The map-iteration rule extends by prefix to the experiment subpackages:
// the parallel scheduler must not let iteration order reorder results.
func TestNonDetermCoversScheduler(t *testing.T) {
	linttest.Run(t, lint.NonDeterm, "testdata/src/nondeterm", "lvm/internal/experiments/sched")
}

// internal/metrics builds the snapshot sets the regression gate compares
// byte-for-byte, so the map-iteration rule covers it too.
func TestNonDetermCoversMetrics(t *testing.T) {
	linttest.Run(t, lint.NonDeterm, "testdata/src/nondeterm", "lvm/internal/metrics")
}

func TestNoPanic(t *testing.T) {
	linttest.Run(t, lint.NoPanic, "testdata/src/nopanic", "lvm/internal/experiments/sched")
}

// Outside the simulator/experiment packages (here: workload), panics are the
// caller's business and the analyzer stays silent.
func TestNoPanicUnscoped(t *testing.T) {
	linttest.Run(t, lint.NoPanic, "testdata/src/nopanic_unscoped", "lvm/internal/workload")
}

func TestFloatFree(t *testing.T) {
	linttest.Run(t, lint.FloatFree, "testdata/src/floatfree", "lvm/internal/tlb")
}

// TestAllowSuppression covers the //lint:allow contract: same-line and
// line-above suppression, the mandatory reason, and analyzer matching.
func TestAllowSuppression(t *testing.T) {
	linttest.Run(t, lint.FixedQ, "testdata/src/allow", "lvm/test/allow")
}

// TestRepoIsLintClean enforces the suite over the whole module as a tier-1
// test: a PR that introduces a violation without an auditable //lint:allow
// fails here, not just in CI's lvmlint step.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages; module discovery is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, lint.Analyzers()) {
			t.Errorf("%s", d)
		}
	}
}
