// Package linttest is an analysistest-style harness for the lvmlint suite:
// it type-checks a testdata package, runs one analyzer over it, and compares
// the diagnostics against `// want "regexp"` comments in the sources.
//
// Expectations follow golang.org/x/tools/go/analysis/analysistest:
//
//	q := a + b // want `raw \+ arithmetic`
//
// A line may carry several expectations (`// want "x" "y"`), each a Go
// string literal holding a regular expression matched against the
// diagnostic message. Suppression comments (//lint:allow) are honored
// exactly as in production, so suppressed violations need no want — and get
// reported as unexpected diagnostics if suppression ever breaks.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lvm/internal/lint"
)

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one // want entry: a line and a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the package in dir under import path asPath (analyzers scope
// rules by import path, so testdata can impersonate e.g. lvm/internal/sim),
// applies the analyzer, and reports any mismatch between diagnostics and
// want comments as test errors.
func Run(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages in %s", dir)
	}
	for _, pkg := range pkgs {
		expects := collectWants(t, pkg)
		// Whole-program analyzers see a one-package program (imports are
		// judged by facts, exactly as in vet mode); per-package analyzers
		// take the direct path.
		var diags []lint.Diagnostic
		if a.RunProgram != nil {
			diags, _ = lint.RunSuite([]*lint.Package{pkg}, []*lint.Analyzer{a}, nil)
		} else {
			diags = lint.Run(pkg, []*lint.Analyzer{a})
		}
		for _, d := range diags {
			if !consume(expects, d) {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
			}
		}
	}
}

// collectWants parses every // want comment in the package.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// "// want" may trail other comment content (e.g. an
				// //lint:allow under test), so search anywhere in the text.
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				text := c.Text[i+len("// want "):]
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range wantRE.FindAllString(text, -1) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// consume matches d against the unmatched expectations on its line.
func consume(expects []*expectation, d lint.Diagnostic) bool {
	for _, e := range expects {
		if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}
