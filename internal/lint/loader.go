package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("lvm/internal/core"). External test
	// packages keep the base path; IsXTest distinguishes them.
	PkgPath string
	Dir     string
	IsXTest bool
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader type-checks packages of this module using only the standard
// library: module-internal imports are resolved from source under the module
// root, everything else is delegated to go/importer's source importer (which
// reads GOROOT). This keeps lvmlint working with zero dependencies and no
// network.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	// cache holds the import variant (non-test files only) of module
	// packages, keyed by import path.
	cache    map[string]*types.Package
	building map[string]bool
}

// NewLoader locates the module root by walking up from dir to the nearest
// go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:     fset,
		modRoot:  root,
		modPath:  modPath,
		cache:    map[string]*types.Package{},
		building: map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil)
	return l, nil
}

// ModRoot returns the module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// Import implements types.Importer, routing module-internal paths to the
// source tree and everything else to the standard importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.importModule(path)
	}
	if from, ok := l.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, l.modRoot, 0)
	}
	return l.std.Import(path)
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(path, l.modPath)
	return filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
}

// importModule type-checks the import variant (no test files) of a module
// package, memoized.
func (l *Loader) importModule(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.building[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.building[path] = true
	defer delete(l.building, path)

	files, err := l.parseDir(l.dirFor(path), goFilesOnly)
	if err != nil {
		return nil, err
	}
	pkg, _, err := l.check(path, files, nil)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

type fileClass int

const (
	goFilesOnly fileClass = iota // GoFiles
	withInPkgTests               // GoFiles + TestGoFiles
	xTestsOnly                   // XTestGoFiles
)

// parseDir parses the requested class of files in dir, honoring build tags
// via go/build.
func (l *Loader) parseDir(dir string, class fileClass) ([]*ast.File, error) {
	ctx := build.Default
	ctx.Dir = l.modRoot
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		// NoGoError still carries the test-file lists; anything else is real.
		if _, nogo := err.(*build.NoGoError); !nogo {
			return nil, err
		}
		if bp == nil {
			bp = &build.Package{Dir: dir}
		}
	}
	var names []string
	switch class {
	case goFilesOnly:
		names = bp.GoFiles
	case withInPkgTests:
		names = append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
	case xTestsOnly:
		names = bp.XTestGoFiles
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as package path, returning the types.Package and
// filled Info.
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, *types.Info, error) {
	if info == nil {
		info = newInfo()
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: type errors in %s: %v", path, errs[0])
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadDir loads the package rooted at dir for analysis, under import path
// asPath (which analyzers use for scoping). It returns the package including
// in-package test files, plus — when present — the external test package.
func (l *Loader) LoadDir(dir, asPath string) ([]*Package, error) {
	var out []*Package
	files, err := l.parseDir(dir, withInPkgTests)
	if err != nil {
		return nil, err
	}
	if len(files) > 0 {
		pkg, info, err := l.check(asPath, files, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			PkgPath: StripVariant(asPath), Dir: dir,
			Fset: l.Fset, Files: files, Types: pkg, Info: info,
		})
	}
	xfiles, err := l.parseDir(dir, xTestsOnly)
	if err != nil {
		return nil, err
	}
	if len(xfiles) > 0 {
		pkg, info, err := l.check(asPath+"_test", xfiles, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			PkgPath: StripVariant(asPath), Dir: dir, IsXTest: true,
			Fset: l.Fset, Files: xfiles, Types: pkg, Info: info,
		})
	}
	return out, nil
}

// LoadAll loads every package in the module (skipping testdata, hidden
// directories, and .github).
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs, err := l.LoadDir(dir, path)
		if err != nil {
			if strings.Contains(err.Error(), "no buildable Go source files") {
				continue
			}
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, pkgs...)
	}
	return out, nil
}

// Load resolves command-line patterns: "./..." (or "all") loads the whole
// module; "./x/y" and "x/y" load single directories.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*Package
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all" || pat == l.modPath+"/...":
			pkgs, err := l.LoadAll()
			if err != nil {
				return nil, err
			}
			out = append(out, pkgs...)
		default:
			dir := pat
			if strings.HasPrefix(pat, l.modPath) {
				dir = l.dirFor(pat)
			} else if !filepath.IsAbs(pat) {
				dir = filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			}
			rel, err := filepath.Rel(l.modRoot, dir)
			if err != nil {
				return nil, err
			}
			path := l.modPath
			if rel != "." {
				path = l.modPath + "/" + filepath.ToSlash(rel)
			}
			pkgs, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", pat, err)
			}
			out = append(out, pkgs...)
		}
	}
	return out, nil
}
