package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wallclockPkg is the single package allowed to read the wall clock. It
// exists so throughput reporting in the benchmark drivers is explicitly
// labelled as measurement-only, instead of the allowlist being a path hack.
const wallclockPkg = ModulePath + "/internal/wallclock"

// simPkgs are the packages whose behavior feeds simulated results and must
// therefore be bit-for-bit deterministic run to run (EXPERIMENTS.md numbers
// are reproduced exactly; Virtuoso and the RISC-V TLB-simulation work both
// call this out as the prerequisite for trustworthy VM evaluation).
var simPkgs = map[string]bool{
	ModulePath + "/internal/sim":      true,
	ModulePath + "/internal/core":     true,
	ModulePath + "/internal/oskernel": true,
	// internal/metrics builds the serialized snapshot sets whose byte
	// output the CI regression gate compares across runs: a map range
	// there would shuffle JSON key order between invocations.
	ModulePath + "/internal/metrics": true,
	// internal/lvmd serves simulation results over the wire under a
	// bit-identity contract (served == standalone, byte for byte); a map
	// range there could reorder session teardown or frame emission.
	ModulePath + "/internal/lvmd": true,
}

// inSimScope also matches internal/experiments and every subpackage by
// prefix, so the parallel scheduler (internal/experiments/sched) is held to
// the same order-independence bar as the experiments it executes: a map
// range there could reorder results between worker counts.
func inSimScope(path string) bool {
	if simPkgs[path] {
		return true
	}
	exp := ModulePath + "/internal/experiments"
	return path == exp || strings.HasPrefix(path, exp+"/")
}

// NonDeterm flags sources of run-to-run nondeterminism in product code:
//
//   - time.Now anywhere in the module except internal/wallclock (and test
//     files): simulated results must never depend on the wall clock;
//   - package-level math/rand functions (rand.Intn, rand.Float64, …), which
//     draw from the global, potentially contended and unseeded source;
//     seeded rand.New(rand.NewSource(seed)) instances are fine;
//   - map iteration in the simulator packages whose result depends on
//     iteration order. Order-insensitive bodies — pure commutative integer
//     accumulation, deletes — are allowed, as is the collect-keys idiom when
//     the collected slice is sorted later in the same block.
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "flags time.Now, global math/rand, and order-dependent map iteration in simulator packages",
	Run:  runNonDeterm,
	// The clock/rand rules are module-wide; Covers declares the stricter
	// map-iteration scope, which is what the suite coverage test audits.
	Covers: func(path string) bool { return inSimScope(StripVariant(path)) },
}

func runNonDeterm(pass *Pass) {
	if pass.PkgPath == wallclockPkg {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pass.checkClockAndRand(n)
			case *ast.BlockStmt:
				if inSimScope(pass.PkgPath) {
					pass.checkMapRanges(n)
				}
			}
			return true
		})
	}
}

// pkgFuncCall returns (package path, function name) when e calls a
// package-level function through a selector, else ("", "").
func (p *Pass) pkgFuncCall(call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

func (p *Pass) checkClockAndRand(call *ast.CallExpr) {
	pkg, name := p.pkgFuncCall(call)
	switch pkg {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			p.Reportf(call.Pos(), "wall-clock read time.%s in simulation code; use internal/wallclock for measurement-only timing", name)
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructors of explicitly seeded generators are the
			// sanctioned route.
		default:
			p.Reportf(call.Pos(), "global math/rand function rand.%s; use a seeded rand.New(rand.NewSource(seed)) instance", name)
		}
	}
}

// checkMapRanges examines every range-over-map statement directly inside
// block and flags the order-dependent ones.
func (p *Pass) checkMapRanges(block *ast.BlockStmt) {
	for i, stmt := range block.List {
		rs, ok := unwrapLabel(stmt).(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			continue
		}
		if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
			continue
		}
		collected, insensitive := p.classifyRangeBody(rs)
		if insensitive {
			continue
		}
		if len(collected) > 0 && p.sortedLater(block.List[i+1:], collected) {
			continue
		}
		p.Reportf(rs.For, "map iteration order leaks into results; collect and sort the keys first, or restrict the body to commutative integer accumulation")
	}
}

func unwrapLabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

// classifyRangeBody inspects a map-range body. It returns the names of
// variables the loop appends to (the collect-then-sort idiom), and whether
// the body is inherently order-insensitive: every statement is either a
// commutative integer accumulation (+=, |=, &=, ^=, ++, --), a boolean set
// (x = true/false), or a delete from a map.
func (p *Pass) classifyRangeBody(rs *ast.RangeStmt) (collected []string, insensitive bool) {
	insensitive = true
	for _, s := range rs.Body.List {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if name, ok := p.appendTarget(s); ok {
				collected = append(collected, name)
				insensitive = false
				continue
			}
			if p.commutativeAssign(s) {
				continue
			}
			return nil, false
		case *ast.IncDecStmt:
			if isIntType(p.Info.TypeOf(s.X)) {
				continue
			}
			return nil, false
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
						continue
					}
				}
			}
			return nil, false
		default:
			return nil, false
		}
	}
	if len(collected) > 0 {
		return collected, false
	}
	return nil, insensitive
}

// appendTarget matches `x = append(x, …)` and returns x's root identifier.
func (p *Pass) appendTarget(s *ast.AssignStmt) (string, bool) {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return "", false
	}
	if root := rootIdent(s.Lhs[0]); root != "" {
		return root, true
	}
	return "", false
}

// commutativeAssign reports whether s is an order-insensitive accumulation:
// an integer +=, |=, &=, ^=, or an assignment of a constant to a boolean
// (set-a-flag inside the loop).
func (p *Pass) commutativeAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return len(s.Lhs) == 1 && isIntType(p.Info.TypeOf(s.Lhs[0]))
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		if t := p.Info.TypeOf(s.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
				if id, ok := s.Rhs[0].(*ast.Ident); ok && (id.Name == "true" || id.Name == "false") {
					return true
				}
			}
		}
	}
	return false
}

// sortedLater reports whether a later statement in the same block sorts one
// of the collected slices (sort.Strings(keys), sort.Slice(keys, …),
// slices.Sort(keys), …).
func (p *Pass) sortedLater(rest []ast.Stmt, collected []string) bool {
	names := map[string]bool{}
	for _, n := range collected {
		names[n] = true
	}
	for _, s := range rest {
		es, ok := unwrapLabel(s).(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		pkg, fn := p.pkgFuncCall(call)
		sorts := false
		switch pkg {
		case "sort":
			sorts = fn == "Sort" || fn == "Stable" || fn == "Slice" || fn == "SliceStable" ||
				fn == "Strings" || fn == "Ints" || fn == "Float64s"
		case "slices":
			sorts = strings.HasPrefix(fn, "Sort")
		}
		if !sorts {
			continue
		}
		for _, arg := range call.Args {
			if names[rootIdent(arg)] {
				return true
			}
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of an lvalue-ish expression
// (x, x.f, x[i], &x, *x), or "".
func rootIdent(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return ""
		}
	}
}

func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
