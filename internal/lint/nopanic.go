package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// noPanicPkgs are the packages that model simulated hardware or drive the
// experiment pipeline. A panic anywhere on the workload-build/launch/run
// path turns a recoverable condition (an undersized physical memory, an
// unknown workload name) into a crash that takes the whole sweep down, and
// since the scheduler runs these paths on worker goroutines, an escaped
// panic there kills the process with no chance to report which run failed.
// Errors must propagate as wrapped error values instead.
var noPanicPkgs = map[string]bool{
	ModulePath + "/internal/sim":   true,
	ModulePath + "/internal/mmu":   true,
	ModulePath + "/internal/tlb":   true,
	ModulePath + "/internal/cache": true,
	ModulePath + "/internal/dram":  true,
	ModulePath + "/internal/core":  true,
}

// inNoPanicScope also matches internal/experiments and every subpackage
// (the registry, the scheduler, …) by prefix.
func inNoPanicScope(path string) bool {
	if noPanicPkgs[path] {
		return true
	}
	exp := ModulePath + "/internal/experiments"
	return path == exp || strings.HasPrefix(path, exp+"/")
}

// NoPanic bans panic calls in the simulated-hardware and experiment
// packages; failures there must return wrapped errors. Test files are
// exempt, and genuinely unreachable invariants can carry a
// //lint:allow nopanic <reason> suppression.
var NoPanic = &Analyzer{
	Name:   "nopanic",
	Doc:    "bans panic in simulator and experiment packages; propagate wrapped errors instead",
	Run:    runNoPanic,
	Covers: func(path string) bool { return inNoPanicScope(StripVariant(path)) },
}

func runNoPanic(pass *Pass) {
	if !inNoPanicScope(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(), "panic on a simulation path; return a wrapped error so failures propagate to the scheduler and exit code")
			}
			return true
		})
	}
}
