package lint

// snapshotpure enforces the PR 3 metrics contract: Snapshot() metrics.Set
// is a pure read. Every number in EXPERIMENTS.md is derived by merging
// component snapshots, and the CI regression gate compares their
// serialized bytes across runs — a Snapshot that increments a counter,
// resets a child, or lazily (re)builds state would make the act of
// observing the simulation change it, so back-to-back snapshots diverge.
//
// The check is interprocedural: a Snapshot body may not write through its
// receiver (closures included — they share the receiver variable), and
// may not call, through the receiver, any function whose exported
// MutatesReceiver fact is true. Interface-dispatched calls (e.g.
// c.walker.(metrics.Source).Snapshot()) are resolved by CHA and every
// candidate implementation is checked.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotPure flags Snapshot() metrics.Set implementations with side
// effects on their receiver.
var SnapshotPure = &Analyzer{
	Name: "snapshotpure",
	Doc: "snapshotpure requires every Snapshot() metrics.Set implementation " +
		"to be a pure read of its receiver: no receiver-field writes " +
		"(including through closures), no delete on receiver maps, and no " +
		"receiver-rooted calls to functions whose MutatesReceiver fact is " +
		"true — interface calls are resolved through the call graph and " +
		"every CHA candidate is checked. Observing the simulation must " +
		"never change it: the CI gate byte-compares serialized snapshots " +
		"across runs.",
	RunProgram: runSnapshotPure,
}

func runSnapshotPure(pass *ProgramPass) {
	prog := pass.Prog
	for _, n := range prog.Graph.Nodes() {
		if n.Decl == nil || n.Fn == nil || n.Fn.Name() != "Snapshot" || n.InTestFile() {
			continue
		}
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if !isNamed(sig.Results().At(0).Type(), ModulePath+"/internal/metrics", "Set") {
			continue
		}
		checkSnapshotBody(pass, n)
	}
}

func checkSnapshotBody(pass *ProgramPass, n *Node) {
	recv := receiverObj(n)
	if recv == nil || n.Decl.Body == nil {
		return
	}
	pkg := n.Pkg
	prog := pass.Prog

	// Index the resolved call sites of this method and its closures by
	// position, so interface calls can be judged through CHA targets.
	callAt := map[token.Pos]Call{}
	indexCalls := func(node *Node) {
		for _, c := range node.Calls {
			callAt[c.Pos] = c
		}
	}
	indexCalls(n)
	for _, child := range prog.Graph.Nodes() {
		if len(child.ID) > len(n.ID) && child.ID[:len(n.ID)+1] == n.ID+"$" {
			indexCalls(child)
		}
	}

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isReceiverRooted(pkg, lhs, recv) {
					pass.Reportf(pkg, lhs.Pos(), "Snapshot must be read-only: writes %s", types.ExprString(lhs))
				}
			}
		case *ast.IncDecStmt:
			if isReceiverRooted(pkg, x.X, recv) {
				pass.Reportf(pkg, x.Pos(), "Snapshot must be read-only: writes %s", types.ExprString(x.X))
			}
		case *ast.CallExpr:
			if isBuiltinCall(pkg, x, "delete") && len(x.Args) > 0 && isReceiverRooted(pkg, x.Args[0], recv) {
				pass.Reportf(pkg, x.Pos(), "Snapshot must be read-only: deletes from %s", types.ExprString(x.Args[0]))
				return true
			}
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || rootObj(pkg, sel.X) != recv {
				return true
			}
			c, ok := callAt[x.Pos()]
			if !ok {
				return true
			}
			for _, t := range c.Targets {
				if f, ok := prog.Facts.Lookup(t.ID); ok && f.Mutates {
					pass.Reportf(pkg, x.Pos(), "Snapshot must be read-only: calls %s, which mutates its receiver", shortID(t.ID))
				}
			}
			for _, ext := range c.Externals {
				if f := prog.FactFor(ext.ID, ext); f.Mutates {
					pass.Reportf(pkg, x.Pos(), "Snapshot must be read-only: calls %s, which mutates its receiver", shortID(ext.ID))
				}
			}
		}
		return true
	})
}
