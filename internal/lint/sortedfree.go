package lint

// sortedfree is the ROADMAP-requested allocator-hygiene rule: physical
// frames must never be freed from inside a map iteration. Go randomizes
// map order, so `for vpn := range pages { mem.Free(...) }` hands frames
// back to the buddy allocator in a different order every run; the
// allocator's split/merge history — and with it the §7.3 fragmentation
// accounting — stops being reproducible. The sanctioned idiom is
// oskernel.Kill's: collect the keys, sort.Slice them, then free in
// sorted order.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// sortedFreePkgs is the issue-scoped package set for the coverage test;
// the analyzer itself additionally polices any package that imports
// internal/phys (every page-table scheme frees frames on Release).
var sortedFreePkgs = map[string]bool{
	ModulePath + "/internal/oskernel": true,
	ModulePath + "/internal/phys":     true,
}

func inSortedFreeScope(path string) bool { return sortedFreePkgs[StripVariant(path)] }

// SortedFree flags frame frees inside map iterations.
var SortedFree = &Analyzer{
	Name: "sortedfree",
	Doc: "sortedfree forbids freeing physical frames from inside a map " +
		"iteration in internal/oskernel, internal/phys, and every package " +
		"that imports the physical allocator: Go randomizes map order, so " +
		"order-dependent free sequences make the buddy allocator's " +
		"split/merge history irreproducible run to run. Collect the keys, " +
		"sort them, then free — the oskernel.Kill idiom.",
	Run:    runSortedFree,
	Covers: inSortedFreeScope,
}

const physPkgPath = ModulePath + "/internal/phys"

func runSortedFree(pass *Pass) {
	inScope := inSortedFreeScope(pass.PkgPath) || StripVariant(pass.PkgPath) == physPkgPath
	if !inScope {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == physPkgPath {
				inScope = true
				break
			}
		}
	}
	if !inScope {
		return
	}
	// Nested map ranges would visit an inner free twice (once per
	// enclosing RangeStmt); report each call position once.
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(x ast.Node) bool {
			rng, ok := x.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(y ast.Node) bool {
				call, ok := y.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !strings.HasPrefix(sel.Sel.Name, "Free") {
					return true
				}
				recv := pass.Info.TypeOf(sel.X)
				if recv == nil || !isNamedType(recv, physPkgPath, "Memory") {
					return true
				}
				if reported[call.Pos()] {
					return true
				}
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(), "freeing frames inside a map iteration scrambles the buddy allocator's history run to run; collect the keys, sort, then free (the oskernel.Kill idiom)")
				return true
			})
			return true
		})
	}
}
