package lint

// syncsafe is the concurrency-discipline analyzer for the packages that
// run goroutines: the experiment pipeline and its scheduler today, the
// multi-tenant lvmd server on the ROADMAP tomorrow. Three rules:
//
//  1. no lock copies: a sync.Mutex/RWMutex/WaitGroup/Once/Cond (or any
//     struct transitively containing one) must not be passed, returned,
//     assigned, or ranged-over by value — a copied lock silently guards
//     nothing;
//  2. no untracked goroutines: a `go` statement must be tied to a
//     completion signal in scope — a sync.WaitGroup.Done, a channel send
//     or close — so the sweep can never exit while a worker still runs;
//  3. `// guarded by <mu>` discipline: a struct field annotated with
//     `// guarded by <mu>` may only be touched by functions that lock
//     that mutex in-function (directly, via a helper whose Locks fact is
//     set, or from a method whose name ends in "Locked" documenting the
//     caller-holds-lock contract).

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

func inSyncSafeScope(path string) bool {
	path = StripVariant(path)
	for _, p := range []string{
		ModulePath + "/internal/experiments",
		ModulePath + "/internal/lvmd",
		ModulePath + "/cmd/lvmd",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// SyncSafe flags concurrency-discipline violations.
var SyncSafe = &Analyzer{
	Name: "syncsafe",
	Doc: "syncsafe enforces concurrency discipline in the goroutine-running " +
		"packages (internal/experiments and its scheduler, the future " +
		"lvmd): no value copies of types containing sync.Mutex/RWMutex/" +
		"WaitGroup/Once/Cond (parameters, results, assignments, range " +
		"variables); no `go` statement without a completion signal " +
		"(WaitGroup.Done, channel send, or close) tying the goroutine to " +
		"its spawner; and `// guarded by <mu>` field annotations are " +
		"binding — annotated fields may only be accessed by functions " +
		"that lock that mutex, call a helper whose Locks fact is set, or " +
		"carry the \"Locked\" name suffix documenting the caller-holds-" +
		"lock contract.",
	RunProgram: runSyncSafe,
	Covers:     inSyncSafeScope,
}

func runSyncSafe(pass *ProgramPass) {
	for _, pkg := range pass.Prog.Packages {
		if !inSyncSafeScope(pkg.PkgPath) {
			continue
		}
		guarded := collectGuardedFields(pkg)
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockCopies(pass, pkg, fd)
				checkGoStmts(pass, pkg, fd)
				checkGuardedAccess(pass, pkg, fd, guarded)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Rule 1: lock copies

// containsLock reports whether t transitively contains a sync primitive
// that must not be copied. Pointers stop the search: sharing a *Mutex is
// the point.
func containsLock(t types.Type) bool {
	return containsLock1(t, map[types.Type]bool{})
}

func containsLock1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	for _, name := range []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond"} {
		if isNamed(t, "sync", name) {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), seen)
	}
	return false
}

func checkLockCopies(pass *ProgramPass, pkg *Package, fd *ast.FuncDecl) {
	// Parameters, results, and by-value receivers.
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	if fd.Type.Results != nil {
		fields = append(fields, fd.Type.Results.List...)
	}
	for _, f := range fields {
		t := pkg.Info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			pass.Reportf(pkg, f.Type.Pos(), "%s passes a lock by value: %s contains a sync primitive; use a pointer",
				fd.Name.Name, types.TypeString(t, types.RelativeTo(pkg.Types)))
		}
	}

	ast.Inspect(fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if copiesLockValue(pkg, rhs) {
					pass.Reportf(pkg, rhs.Pos(), "assignment copies %s, which contains a sync primitive; use a pointer",
						types.ExprString(rhs))
				}
			}
		case *ast.RangeStmt:
			if x.Value != nil {
				if t := pkg.Info.TypeOf(x.Value); t != nil && containsLock(t) {
					pass.Reportf(pkg, x.Value.Pos(), "range copies element values that contain a sync primitive; range over indices or pointers")
				}
			}
		}
		return true
	})
}

// copiesLockValue reports whether e reads an existing lock-containing
// value (a fresh composite literal or a call result is initialization,
// not a copy of a live lock).
func copiesLockValue(pkg *Package, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	t := pkg.Info.TypeOf(e)
	return t != nil && containsLock(t)
}

// ---------------------------------------------------------------------------
// Rule 2: untracked goroutines

func checkGoStmts(pass *ProgramPass, pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		g, ok := x.(*ast.GoStmt)
		if !ok {
			return true
		}
		var body *ast.BlockStmt
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			body = fun.Body
		case *ast.Ident:
			// Same-package function: check its body for a signal.
			if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
				body = findDeclBody(pkg, fn)
			}
		}
		if body == nil || !signalsCompletion(pkg, body) {
			pass.Reportf(pkg, g.Pos(), "goroutine has no completion signal (WaitGroup.Done, channel send, or close); an untracked goroutine can outlive the sweep and race its results")
		}
		return true
	})
}

func findDeclBody(pkg *Package, fn *types.Func) *ast.BlockStmt {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pkg.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// signalsCompletion reports whether the goroutine body contains a
// WaitGroup.Done call, a channel send, or a close.
func signalsCompletion(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isBuiltinCall(pkg, x, "close") {
				found = true
				return true
			}
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "Done" {
				if t := pkg.Info.TypeOf(sel.X); t != nil && isNamedType(t, "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Rule 3: `// guarded by <mu>` discipline

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardedField is one annotated struct field.
type guardedField struct {
	field types.Object // the annotated field
	guard types.Object // the mutex field named in the annotation
	name  string       // guard name, for messages
}

// collectGuardedFields parses `// guarded by <mu>` comments on struct
// fields. The named guard must be a sibling field; a dangling name is
// reported by the caller via a nil guard entry (kept, so access checks
// still fire).
func collectGuardedFields(pkg *Package) map[types.Object]guardedField {
	out := map[types.Object]guardedField{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			st, ok := x.(*ast.StructType)
			if !ok {
				return true
			}
			// Index sibling fields by name for guard resolution.
			byName := map[string]types.Object{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					byName[name.Name] = pkg.Info.Defs[name]
				}
			}
			for _, fld := range st.Fields.List {
				text := ""
				if fld.Doc != nil {
					text += fld.Doc.Text()
				}
				if fld.Comment != nil {
					text += fld.Comment.Text()
				}
				m := guardedByRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range fld.Names {
					obj := pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					out[obj] = guardedField{field: obj, guard: byName[m[1]], name: m[1]}
				}
			}
			return true
		})
	}
	return out
}

func checkGuardedAccess(pass *ProgramPass, pkg *Package, fd *ast.FuncDecl, guarded map[types.Object]guardedField) {
	if len(guarded) == 0 {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // documented caller-holds-lock contract
	}
	holds := heldGuards(pass, pkg, fd)
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[sel.Sel]
		if obj == nil {
			if s, ok := pkg.Info.Selections[sel]; ok {
				obj = s.Obj()
			}
		}
		gf, ok := guarded[obj]
		if !ok {
			return true
		}
		if holds[gf.guard] || holds[nil] {
			return true
		}
		pass.Reportf(pkg, sel.Pos(), "field %s is // guarded by %s, but %s accesses it without locking %s",
			sel.Sel.Name, gf.name, fd.Name.Name, gf.name)
		return true
	})
}

// heldGuards returns the set of mutex field objects this function locks
// somewhere in its body (flow-insensitive, per the in-function
// discipline), plus a nil entry if it calls a helper whose Locks fact is
// set — a coarse "some lock is held" that accepts lock-wrapping helpers.
func heldGuards(pass *ProgramPass, pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	held := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			t := pkg.Info.TypeOf(sel.X)
			if t != nil && (isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")) {
				if obj := leafObj(pkg, sel.X); obj != nil {
					held[obj] = true
				}
			}
		case "Wait":
			// cond.Wait reacquires the cond's lock; holding the cond
			// counts as holding its mutex — approximated by the coarse
			// entry below only when a Lock call exists too, so no extra
			// handling is needed (Wait requires a prior Lock in-function).
		default:
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
				if f, ok := pass.Prog.Facts.Lookup(funcID(fn)); ok && f.Locks {
					held[nil] = true
				}
			}
		}
		return true
	})
	return held
}
