// Seeded violations for the addrtypes analyzer: direct and laundered
// conversions between the four address types, plus the legitimate uses that
// must stay clean.
package addrtypes

import "lvm/internal/addr"

func direct(v addr.VPN, p addr.PPN, va addr.VA, pa addr.PA) {
	_ = addr.PPN(v)  // want `direct addr\.VPN→addr\.PPN conversion`
	_ = addr.VPN(p)  // want `direct addr\.PPN→addr\.VPN conversion`
	_ = addr.PA(va)  // want `direct addr\.VA→addr\.PA conversion`
	_ = addr.VA(pa)  // want `direct addr\.PA→addr\.VA conversion`
	_ = addr.VPN(va) // want `direct addr\.VA→addr\.VPN conversion`
}

func laundered(v addr.VPN, pa addr.PA) {
	_ = addr.PPN(uint64(v))       // want `direct addr\.VPN→addr\.PPN conversion`
	_ = addr.PPN(uint(uint64(v))) // want `direct addr\.VPN→addr\.PPN conversion`
	_ = addr.VPN((uint64(pa)))    // want `direct addr\.PA→addr\.VPN conversion`
}

func derived(v addr.VPN, p addr.PPN) {
	_ = addr.PA(p << 12)      // want `direct addr\.PPN→addr\.PA conversion`
	_ = addr.PPN(uint64(v)+1) // want `direct addr\.VPN→addr\.PPN conversion`
}

func clean(v addr.VPN, va addr.VA, p addr.PPN) {
	_ = addr.VPN(v)              // same-type conversion: allowed
	_ = uint64(v)                // extracting the raw number: allowed
	_ = addr.PPN(uint64(99))     // constant provenance: allowed
	_ = addr.VPNOf(va)           // the named helpers are the sanctioned route
	_ = addr.VAOf(v)
	_ = addr.Translate(va, p, addr.Page4K)
	var raw uint64 = 7
	_ = addr.PPN(raw) // plain integer variable: provenance unknown, allowed
}
