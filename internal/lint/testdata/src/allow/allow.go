// Suppression coverage: //lint:allow <analyzer> <reason> must silence a
// diagnostic on the same line or the line directly above, must require a
// reason, and must only apply to the named analyzer. The test runs the
// fixedq analyzer over this package.
package allow

import "lvm/internal/fixed"

func sameLine(a, b fixed.Q) fixed.Q {
	return a + b //lint:allow fixedq reference implementation cross-checked against fixed.Add in tests
}

func lineAbove(a, b fixed.Q) fixed.Q {
	//lint:allow fixedq container-level bit trick validated by TestAllowPatterns
	c := a & b
	return c
}

func missingReason(a, b fixed.Q) fixed.Q {
	return a * b //lint:allow fixedq // want `raw \* arithmetic on fixed\.Q` `malformed //lint:allow`
}

func wrongAnalyzer(a, b fixed.Q) fixed.Q {
	return a - b //lint:allow nondeterm reason naming another analyzer does not suppress fixedq // want `raw - arithmetic on fixed\.Q`
}

func tooFarAway(a, b fixed.Q) fixed.Q {
	//lint:allow fixedq an allow two lines above the violation is out of range

	return a / b // want `raw / arithmetic on fixed\.Q`
}
