// Package callgraph is a self-contained fixture for the call-graph and
// facts unit tests: an interface with two implementations (CHA dispatch),
// a static call chain (reachability, Path rendering, and fact
// propagation), a mutating helper chain, and a lock-taking method.
package callgraph

import "sync"

// Shape has two in-package implementations; a call through it must
// resolve to both by class-hierarchy analysis.
type Shape interface {
	Area() int
}

type Square struct{ s int }

func (q Square) Area() int { return q.s * q.s }

type Circle struct{ r int }

func (c *Circle) Area() int { return c.r * c.r * 3 }

// total dispatches through the interface.
func total(shapes []Shape) int {
	n := 0
	for _, s := range shapes {
		n += s.Area()
	}
	return n
}

// entry → total → {Square.Area, Circle.Area}; alloc is NOT reachable
// from here.
func entry() int { return total(nil) }

// alloc heap-allocates directly.
func alloc() []int { return make([]int, 4) }

// callsAlloc allocates only transitively; the fixpoint must propagate.
func callsAlloc() []int { return alloc() }

// counter exercises the Mutates and Locks facts.
type counter struct {
	mu sync.Mutex
	n  int
}

// bump writes through the receiver directly.
func (c *counter) bump() { c.n++ }

// bumpTwice mutates only via a receiver-rooted call to bump.
func (c *counter) bumpTwice() { c.bump(); c.bump() }

// locked acquires the mutex directly.
func (c *counter) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// viaLocked locks only transitively.
func (c *counter) viaLocked() int { return c.locked() }
