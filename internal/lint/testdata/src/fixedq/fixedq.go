// Seeded violations for the fixedq analyzer: every raw operator that would
// silently break the Q44.20 scale invariant, plus the sanctioned helper
// calls that must stay clean.
package fixedq

import "lvm/internal/fixed"

func binaryOps(a, b fixed.Q) fixed.Q {
	c := a + b          // want `raw \+ arithmetic on fixed\.Q`
	c = a * b           // want `raw \* arithmetic on fixed\.Q`
	c = a / b           // want `raw / arithmetic on fixed\.Q`
	c = a - b           // want `raw - arithmetic on fixed\.Q`
	c = a % b           // want `raw % arithmetic on fixed\.Q`
	c = a << 2          // want `raw << arithmetic on fixed\.Q`
	c = a >> 2          // want `raw >> arithmetic on fixed\.Q`
	c = a & b           // want `raw & arithmetic on fixed\.Q`
	c = a + fixed.One*2 // want `raw \+ arithmetic on fixed\.Q` `raw \* arithmetic on fixed\.Q`
	return c
}

func mixedOperands(a fixed.Q, n int64) fixed.Q {
	return a * fixed.Q(n) // want `raw \* arithmetic on fixed\.Q`
}

func unaryAndAssign(a, b fixed.Q) fixed.Q {
	c := -a // want `raw unary - on fixed\.Q`
	c += b  // want `raw \+= on fixed\.Q`
	c <<= 1 // want `raw <<= on fixed\.Q`
	c++     // want `raw \+\+ on fixed\.Q`
	return c
}

func clean(a, b fixed.Q, n int64) fixed.Q {
	c := a.Mul(b).Add(fixed.FromInt(n)).Neg()
	c = fixed.MulAdd(a, b, c)
	if a < b || a == b || c >= fixed.One { // comparisons preserve order: allowed
		return c
	}
	_ = a.Floor()
	_ = a.MulInt(n)
	return fixed.FromFloat(0.5)
}
