// The fixedq analyzer must stay silent inside internal/fixed itself — the
// helpers are exactly where raw container arithmetic is implemented. The
// test loads this package under the import path lvm/internal/fixed.
package fixedq_exempt

import "lvm/internal/fixed"

func rawContainerMath(a, b fixed.Q) fixed.Q {
	return a + b<<1 // no diagnostics: in-package raw arithmetic is the implementation
}
