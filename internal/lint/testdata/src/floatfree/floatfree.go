// Seeded violations for the floatfree analyzer. The test loads this package
// under the import path lvm/internal/tlb — a hardware-model package where
// every non-reporting function must stay float-free.
package floatfree

import "lvm/internal/fixed"

func lookupCost(hits, total uint64) int {
	weight := float64(hits) * 1.5 // want `float arithmetic in hardware-model hot path`
	bias := 2.0 / float64(total)  // want `float arithmetic in hardware-model hot path`
	acc := 0.0
	acc += weight // want `float arithmetic in hardware-model hot path`
	neg := -bias  // want `float arithmetic in hardware-model hot path`
	return int(acc + neg) // want `float arithmetic in hardware-model hot path`
}

func fixedPointIsClean(hits, total int64) int64 {
	w := fixed.FromInt(hits).Mul(fixed.FromFloat(1.5))
	return w.Add(fixed.FromInt(total)).Floor()
}

// HitRate is a reporting helper (name ends in Rate): float division for
// stats output is allowlisted.
func HitRate(hits, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// String is a reporting helper: allowlisted.
func (s stats) String() string {
	_ = float64(s.hits) / float64(s.total)
	return "stats"
}

type stats struct{ hits, total uint64 }
