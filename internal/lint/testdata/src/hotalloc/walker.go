// Package hotalloc seeds hot-path allocation violations. Loaded as
// lvm/internal/radix, the Walker below implements mmu.Walker, so its Walk
// method is a traversal root; everything reachable from it is scanned and
// frontier calls are judged by facts.
package hotalloc

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/mmu"
)

// Walker implements mmu.Walker; Walk is a hotalloc root.
type Walker struct {
	buf   mmu.WalkBuf
	trace []addr.PA
}

// Name implements mmu.Walker.
func (w *Walker) Name() string { return "golden" }

// Walk mixes the clean reuse discipline with seeded violations.
func (w *Walker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	w.buf.Reset()
	w.buf.AddGroup(addr.PA(v))       // clean: reuse-disciplined buffer
	scratch := make([]addr.PA, 0, 4) // want `hot-path allocation: make\(\[\].*addr\.PA\) allocates`
	_ = scratch
	w.trace = append(w.trace, addr.PA(v)) // want `self-append to w\.trace with no \[:0\] reset`
	w.describe(v)
	w.audited()
	return w.buf.Outcome(0, false, mmu.StepCycles)
}

// describe is reachable only through Walk; its stdlib call is judged at
// the frontier by the assumption table, and the argument boxes.
func (w *Walker) describe(v addr.VPN) {
	_ = fmt.Sprint(uint64(v)) // want `call to fmt\.Sprint, which allocates` `boxes`
}

// audited carries a reviewed suppression — silent.
func (w *Walker) audited() {
	_ = make([]int, 1) //lint:allow hotalloc golden-test audited exception
}

// cold is unreachable from any root: allocating here is fine.
func (w *Walker) cold() []addr.PA {
	return make([]addr.PA, 8)
}
