// Package hotalloc_reset is the Reset-deletion mutation case: Good keeps
// the `x = x[:0]` reuse discipline and stays silent; Bad is Good with the
// truncation deleted, which must fire — the self-append is then unbounded
// growth on the hot path.
package hotalloc_reset

import (
	"lvm/internal/addr"
	"lvm/internal/mmu"
)

// Good truncates pas in Reset, so the self-append in Walk reuses the
// backing array — silent.
type Good struct {
	pas []addr.PA
}

// Reset clears the buffer, retaining capacity.
func (g *Good) Reset() { g.pas = g.pas[:0] }

// Name implements mmu.Walker.
func (g *Good) Name() string { return "good" }

// Walk implements mmu.Walker.
func (g *Good) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	g.Reset()
	g.pas = append(g.pas, addr.PA(v))
	return mmu.Outcome{}
}

// Bad is Good with the Reset truncation deleted.
type Bad struct {
	pas []addr.PA
}

// Name implements mmu.Walker.
func (b *Bad) Name() string { return "bad" }

// Walk implements mmu.Walker.
func (b *Bad) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	b.pas = append(b.pas, addr.PA(v)) // want `self-append to b\.pas with no \[:0\] reset`
	return mmu.Outcome{}
}
