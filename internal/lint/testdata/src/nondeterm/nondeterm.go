// Seeded violations for the nondeterm analyzer. The test loads this package
// under the import path lvm/internal/sim, so the map-iteration rule — which
// only applies to the simulator packages — is active.
package nondeterm

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now() // want `wall-clock read time\.Now`
	d := time.Since(t) // want `wall-clock read time\.Since`
	return int64(d)
}

func globalRand() int {
	r := rand.New(rand.NewSource(42)) // seeded instance: the sanctioned route
	n := r.Intn(8)
	n += rand.Intn(8) // want `global math/rand function rand\.Intn`
	_ = rand.Float64() // want `global math/rand function rand\.Float64`
	return n
}

func orderDependent(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order leaks into results`
		out = append(out, v*2)
	}
	return out
}

func firstWins(m map[string]int) string {
	best := ""
	for k := range m { // want `map iteration order leaks into results`
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func commutative(m map[string]int) (int, bool) {
	total := 0
	count := 0
	any := false
	for _, v := range m { // commutative integer accumulation: order-insensitive
		total += v
		count++
		any = true
	}
	return total + count, any
}

func collectAndSort(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collected and sorted below: deterministic
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectAndSliceSort(m map[uint64]int) []uint64 {
	var keys []uint64
	for k := range m { // sorted via sort.Slice below: deterministic
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order leaks into results`
		keys = append(keys, k)
	}
	return keys
}

func rangeOverSlice(xs []int) []int {
	var out []int
	for _, v := range xs { // slices iterate in order: never flagged
		out = append(out, v)
	}
	return out
}
