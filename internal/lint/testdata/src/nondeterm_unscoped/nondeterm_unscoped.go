// The map-iteration rule is scoped to the simulator packages; the
// wall-clock and global-rand rules apply module-wide. The test loads this
// package under lvm/internal/workload (outside the map-rule scope).
package nondeterm_unscoped

import "time"

func mapsAreFineHere(m map[string]int) []int {
	var out []int
	for _, v := range m { // outside internal/{sim,core,experiments,oskernel}: not flagged
		out = append(out, v)
	}
	return out
}

func clockIsStillBanned() time.Time {
	return time.Now() // want `wall-clock read time\.Now`
}
