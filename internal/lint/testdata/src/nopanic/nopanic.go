// Seeded violations for the nopanic analyzer. The test loads this package
// under the import path lvm/internal/experiments/sched, where panics are
// banned: an escaped panic on a worker goroutine kills the whole sweep.
package nopanic

import (
	"errors"
	"fmt"
)

func direct(err error) {
	if err != nil {
		panic(err) // want `panic on a simulation path`
	}
}

func parenthesized() {
	(panic)("boom") // want `panic on a simulation path`
}

func message(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n)) // want `panic on a simulation path`
	}
}

// sanctioned: return a wrapped error instead of panicking.
func wrapped(err error) error {
	if err != nil {
		return fmt.Errorf("task failed: %w", err)
	}
	return nil
}

// sanctioned: a genuinely unreachable invariant carries an audited allow.
func invariant(state int) {
	if state > 2 {
		//lint:allow nopanic state is a 2-bit field, >2 is memory corruption
		panic("corrupt state")
	}
}

// shadowed: a local identifier named panic is not the builtin.
func shadowed() {
	panic := func(string) error { return errors.New("not a real panic") }
	_ = panic("fine")
}
