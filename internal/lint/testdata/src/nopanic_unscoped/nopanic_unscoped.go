// Loaded as lvm/internal/workload, which is outside the nopanic scope:
// nothing here may be reported.
package nopanic_unscoped

func outOfScope(err error) {
	if err != nil {
		panic(err)
	}
}
