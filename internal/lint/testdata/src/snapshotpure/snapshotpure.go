// Package snapshotpure seeds Snapshot() metrics.Set implementations with
// side effects: a counter increment, a map delete, a closure write, and a
// receiver-rooted call to a mutating helper. pure stays silent.
package snapshotpure

import "lvm/internal/metrics"

// pure is a correct, read-only Snapshot — silent.
type pure struct {
	hits uint64
}

// Snapshot implements metrics.Source.
func (p *pure) Snapshot() metrics.Set {
	var s metrics.Set
	s.Counter("hits", p.hits)
	return s
}

// comp counts its own observations — the increment is the violation.
type comp struct {
	calls uint64
}

// Snapshot implements metrics.Source.
func (c *comp) Snapshot() metrics.Set {
	c.calls++ // want `Snapshot must be read-only: writes c\.calls`
	var s metrics.Set
	s.Counter("calls", c.calls)
	return s
}

// table prunes stale rows while observing — the delete is the violation.
type table struct {
	rows map[string]uint64
}

// Snapshot implements metrics.Source.
func (t *table) Snapshot() metrics.Set {
	delete(t.rows, "stale") // want `Snapshot must be read-only: deletes from t\.rows`
	var s metrics.Set
	return s
}

// agg resets itself through a closure — receiver writes in closures count.
type agg struct {
	n uint64
}

// Snapshot implements metrics.Source.
func (a *agg) Snapshot() metrics.Set {
	f := func() { a.n = 0 } // want `Snapshot must be read-only: writes a\.n`
	f()
	var s metrics.Set
	return s
}

// lazy rebuilds cached state on observation — the helper call is judged by
// its MutatesReceiver fact.
type lazy struct {
	cached uint64
}

func (l *lazy) fill() { l.cached = 1 }

// Snapshot implements metrics.Source.
func (l *lazy) Snapshot() metrics.Set {
	l.fill() // want `calls .*fill, which mutates its receiver`
	var s metrics.Set
	s.Counter("cached", l.cached)
	return s
}
