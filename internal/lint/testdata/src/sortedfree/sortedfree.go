// Package sortedfree seeds frame frees inside map iterations. drain shows
// the sanctioned collect-sort-free idiom and stays silent; the nested case
// checks that one free inside two map ranges reports exactly once.
package sortedfree

import (
	"sort"

	"lvm/internal/addr"
	"lvm/internal/phys"
)

// scramble frees in randomized map order — the violation.
func scramble(mem *phys.Memory, pages map[addr.VPN]addr.PPN) {
	for _, p := range pages {
		mem.Free(p, 0) // want `freeing frames inside a map iteration`
	}
}

// scrambleNested must report the inner free exactly once, not once per
// enclosing range.
func scrambleNested(mem *phys.Memory, procs map[int]map[addr.VPN]addr.PPN) {
	for _, pages := range procs {
		for _, p := range pages {
			mem.Free(p, 0) // want `freeing frames inside a map iteration`
		}
	}
}

// drain collects the keys, sorts, then frees — the oskernel.Kill idiom.
func drain(mem *phys.Memory, pages map[addr.VPN]addr.PPN) {
	vpns := make([]addr.VPN, 0, len(pages))
	for v := range pages {
		vpns = append(vpns, v)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, v := range vpns {
		mem.Free(pages[v], 0)
	}
}
