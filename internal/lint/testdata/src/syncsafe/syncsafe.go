// Package syncsafe seeds concurrency-discipline violations for all three
// rules: lock copies, untracked goroutines, and `// guarded by` breaches.
package syncsafe

import "sync"

// wgPool transitively contains a sync primitive; copying it by value
// guards nothing.
type wgPool struct {
	wg sync.WaitGroup
}

func byValue(p wgPool) {} // want `byValue passes a lock by value: wgPool contains a sync primitive`

func byPointer(p *wgPool) {} // silent: sharing a pointer is the point

func assign(p *wgPool) {
	dup := *p // want `assignment copies \*p, which contains a sync primitive`
	_ = dup   // want `assignment copies dup, which contains a sync primitive`
}

func rangeCopy(ps []wgPool) int {
	n := 0
	for _, p := range ps { // want `range copies element values that contain a sync primitive`
		_ = p // want `assignment copies p, which contains a sync primitive`
		n++
	}
	for i := range ps { // silent: index ranging copies nothing
		_ = i
	}
	return n
}

func spawnTracked(work func()) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // silent: Done ties the goroutine to its spawner
		defer wg.Done()
		work()
	}()
	return &wg
}

func spawnChan(work func()) chan struct{} {
	done := make(chan struct{})
	go func() { // silent: the channel send signals completion
		work()
		done <- struct{}{}
	}()
	return done
}

func spawnUntracked(work func()) {
	go work() // want `goroutine has no completion signal`
}

// counters carries the guarded-field annotation under test.
type counters struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// get locks the named guard — silent.
func (c *counters) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// getLocked documents the caller-holds-lock contract — silent.
func (c *counters) getLocked() int { return c.n }

// peek reads the guarded field without the lock.
func (c *counters) peek() int {
	return c.n // want `field n is // guarded by mu, but peek accesses it without locking mu`
}

// gauge exercises the Locks-fact path: refresh never touches mu directly
// but calls a helper that does.
type gauge struct {
	mu  sync.Mutex
	val int // guarded by mu
}

func (g *gauge) lockAndClear() {
	g.mu.Lock()
	g.val = 0
	g.mu.Unlock()
}

// refresh holds the lock through the helper's Locks fact — silent.
func (g *gauge) refresh() {
	g.lockAndClear()
}
