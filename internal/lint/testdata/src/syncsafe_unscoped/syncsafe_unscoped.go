// Package syncsafe_unscoped carries syncsafe violations but is loaded as a
// hardware-model package (single-threaded by design), where the analyzer
// stays silent.
package syncsafe_unscoped

import "sync"

type pool struct {
	wg sync.WaitGroup
}

func byValue(p pool) {} // silent outside the goroutine-running packages

func spawn(work func()) {
	go work() // silent outside the goroutine-running packages
}
