package lvmd_test

import (
	"testing"

	"lvm/internal/lvmd"
	"lvm/internal/oskernel"
)

// BenchmarkServedReplay measures end-to-end served translation throughput
// for one tenant: daemon-side replay of the gups quick workload over a
// localhost connection, whole trace as one window. b.N counts sessions;
// translations/sec is reported as a custom metric.
func BenchmarkServedReplay(b *testing.B) {
	cfg := lvmd.Quick()
	srv, addrStr := startServer(b, cfg)
	defer srv.Close()

	var accesses uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := lvmd.Dial(addrStr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, _, err := c.Run(lvmd.OpenRequest{Workload: "gups", Scheme: oskernel.SchemeLVM}, nil)
		if err != nil {
			b.Fatal(err)
		}
		accesses += res.Accesses
		c.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(accesses)/b.Elapsed().Seconds(), "translations/s")
}
