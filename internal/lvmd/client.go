package lvmd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lvm/internal/workload"
)

// Client is one session-scoped connection to a daemon: dial, handshake,
// then exactly one session (Run/RunStream, or the Open/Send/Wait
// primitives they are built on). Kill may be called from any goroutine to
// abort the in-flight session; everything else is caller-serialized.
type Client struct {
	w       *wire
	workers int
	budget  uint64
	st      SessionStats
}

// SessionStats reports what admission observed for one session.
type SessionStats struct {
	// ChargeBytes is the admission charge the session held.
	ChargeBytes uint64
	// QueueDepth is the admission queue depth when this session cleared
	// the semaphore — the backlog signal a load harness aggregates.
	QueueDepth int
}

// ErrKilled reports a session the daemon aborted on a kill request.
var ErrKilled = errors.New("lvmd: session killed")

// Dial connects and performs the handshake. cfg must equal the daemon's
// configuration — the fingerprint exchange enforces it.
func Dial(addr string, cfg Config) (*Client, error) {
	return DialRetry(addr, cfg, 1, 0)
}

// DialRetry dials with retries (for daemons still starting up), then
// performs the handshake. attempts < 1 means 30, backoff <= 0 means 200ms.
func DialRetry(addr string, cfg Config, attempts int, backoff time.Duration) (*Client, error) {
	if attempts < 1 {
		attempts = 30
	}
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	fp, err := cfg.Fingerprint()
	if err != nil {
		return nil, err
	}
	var conn net.Conn
	for i := 0; i < attempts; i++ {
		if conn, err = net.Dial("tcp", addr); err == nil {
			break
		}
		time.Sleep(backoff)
	}
	if err != nil {
		return nil, fmt.Errorf("lvmd: dialing %s: %w", addr, err)
	}
	w := &wire{conn: conn}
	if err := w.send(message{
		Type:          msgHello,
		Proto:         ProtocolVersion,
		SchemaVersion: StreamSchemaVersion,
		Fingerprint:   fp,
	}); err != nil {
		w.close()
		return nil, fmt.Errorf("lvmd: hello: %w", err)
	}
	m, err := w.recv()
	if err != nil {
		w.close()
		return nil, fmt.Errorf("lvmd: handshake: %w", err)
	}
	switch m.Type {
	case msgWelcome:
	case msgReject:
		w.close()
		return nil, fmt.Errorf("lvmd: rejected by daemon: %s", m.Reason)
	default:
		w.close()
		return nil, fmt.Errorf("lvmd: unexpected handshake reply %q", m.Type)
	}
	return &Client{w: w, workers: m.Workers, budget: m.BudgetBytes}, nil
}

// Workers reports the daemon's advertised worker-slot count.
func (c *Client) Workers() int { return c.workers }

// BudgetBytes reports the daemon's advertised admission budget.
func (c *Client) BudgetBytes() uint64 { return c.budget }

// Close releases the connection. Closing mid-session aborts it daemon-side
// exactly like a client crash.
func (c *Client) Close() error { return c.w.close() }

// Kill asks the daemon to abort the in-flight session. Safe from any
// goroutine; the session's Wait returns ErrKilled.
func (c *Client) Kill() error {
	return c.w.send(message{Type: msgKill})
}

// Open starts a session. The caller then drives it with Send (stream
// sessions) and collects it with WaitAdmitted/Wait.
func (c *Client) Open(open OpenRequest) error {
	if err := c.w.send(message{Type: msgOpen, Open: &open}); err != nil {
		return fmt.Errorf("lvmd: open: %w", err)
	}
	return nil
}

// Send delivers one streamed trace chunk; done marks the end of the trace.
func (c *Client) Send(accesses []workload.Access, done bool) error {
	was := make([]WireAccess, len(accesses))
	for i, a := range accesses {
		was[i] = WireAccess{VA: uint64(a.VA), W: a.Write}
	}
	return c.w.send(message{Type: msgTrace, Accesses: was, Done: done})
}

// WaitAdmitted blocks until the daemon admits the session past the memory
// and worker semaphores. A terminal frame arriving first is returned as
// that session's error.
func (c *Client) WaitAdmitted() (SessionStats, error) {
	for {
		m, err := c.w.recv()
		if err != nil {
			return c.st, fmt.Errorf("lvmd: connection lost: %w", err)
		}
		done, _, err := c.consume(m, nil)
		if err != nil {
			return c.st, err
		}
		if done {
			return c.st, errors.New("lvmd: session finished before admission frame")
		}
		if m.Type == msgAdmitted {
			return c.st, nil
		}
	}
}

// Wait drains the session's daemon frames through to its terminal result
// or error, delivering every interval to onInterval (nil to discard) in
// stream order.
func (c *Client) Wait(onInterval func(IntervalDoc)) (*ResultDoc, SessionStats, error) {
	for {
		m, err := c.w.recv()
		if err != nil {
			return nil, c.st, fmt.Errorf("lvmd: connection lost: %w", err)
		}
		done, res, err := c.consume(m, onInterval)
		if err != nil {
			return nil, c.st, err
		}
		if done {
			return res, c.st, nil
		}
	}
}

// consume folds one daemon frame into the session state: (true, res, nil)
// for a result, an error for error frames, (false, nil, nil) otherwise.
func (c *Client) consume(m message, onInterval func(IntervalDoc)) (bool, *ResultDoc, error) {
	switch m.Type {
	case msgAdmitted:
		c.st = SessionStats{ChargeBytes: m.ChargeBytes, QueueDepth: m.QueueDepth}
	case msgInterval:
		if m.Interval != nil && onInterval != nil {
			onInterval(*m.Interval)
		}
	case msgResult:
		if m.Result == nil {
			return false, nil, errors.New("lvmd: result frame without a result")
		}
		return true, m.Result, nil
	case msgError:
		if m.Reason == "session killed" {
			return false, nil, ErrKilled
		}
		return false, nil, fmt.Errorf("lvmd: session failed: %s", m.Reason)
	default:
		// Unknown frames are ignored for forward compatibility.
	}
	return false, nil, nil
}

// Run opens a session replaying the named workload daemon-side and blocks
// until the result.
func (c *Client) Run(open OpenRequest, onInterval func(IntervalDoc)) (*ResultDoc, SessionStats, error) {
	open.Stream = false
	if err := c.Open(open); err != nil {
		return nil, SessionStats{}, err
	}
	return c.Wait(onInterval)
}

// RunStream opens a stream session and feeds it accesses in chunks of
// chunk (<=0 means 4096) while receiving intervals, blocking until the
// result. The daemon replays the streamed trace bit-identically to a
// daemon-side replay of the same accesses.
func (c *Client) RunStream(open OpenRequest, accesses []workload.Access, chunk int, onInterval func(IntervalDoc)) (*ResultDoc, SessionStats, error) {
	if chunk <= 0 {
		chunk = 4096
	}
	open.Stream = true
	if err := c.Open(open); err != nil {
		return nil, SessionStats{}, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(accesses); i += chunk {
			end := i + chunk
			if end > len(accesses) {
				end = len(accesses)
			}
			// A send failure means the session is over (result, error, or
			// drop); the receive loop reports it, so just stop feeding.
			if err := c.Send(accesses[i:end], end == len(accesses)); err != nil {
				return
			}
		}
		if len(accesses) == 0 {
			c.Send(nil, true)
		}
	}()
	res, st, err := c.Wait(onInterval)
	// Unblock a sender stuck on a dead session before waiting it out.
	if err != nil {
		c.w.close()
	}
	wg.Wait()
	return res, st, err
}
