package lvmd

import (
	"runtime"

	"lvm/internal/experiments"
)

// Config sizes the daemon. Exp doubles as the bit-identity anchor: its
// fingerprint is vetted in every handshake, so a client and daemon holding
// different simulation configs can never exchange windows that silently
// mean different machines.
type Config struct {
	// Exp is the simulation configuration every tenant machine is built
	// from (workload params, machine model, footprint sizing).
	Exp experiments.Config
	// MemBudgetBytes caps the summed admission charges of in-flight
	// sessions (0 = experiments.DefaultMemBudgetBytes; the lvmd -mem flag
	// can raise or lower it).
	MemBudgetBytes uint64
	// Workers bounds concurrently *simulating* sessions (admitted sessions
	// beyond it queue for a worker slot); values < 1 mean GOMAXPROCS.
	Workers int
	// DefaultEvery is the interval window for sessions that do not set
	// one (0 = a single window spanning the whole trace).
	DefaultEvery int
}

// Default serves the full-scale sweep configuration.
func Default() Config {
	return Config{Exp: experiments.Default()}
}

// Quick serves the reduced test configuration (small footprints, so many
// tenants fit one budget). Both the daemon and its load harness construct
// this same value, which is what makes their fingerprints agree.
func Quick() Config {
	return Config{Exp: experiments.Quick()}
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MemBudgetBytes == 0 {
		c.MemBudgetBytes = experiments.DefaultMemBudgetBytes
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Fingerprint is the handshake identity: the Exp config's fingerprint
// (schema-versioned sha256), exactly what the sweep orchestrator vets.
func (c Config) Fingerprint() (string, error) {
	return c.Exp.Fingerprint()
}
