// Integration tests for the serving daemon, driven entirely through the
// public wire API: bit-identity of streamed sessions against standalone
// runs, admission accounting under client drops and kills, handshake
// vetting, and goroutine hygiene across Close. All of them run under -race
// in CI (repeatedly), so the concurrency claims are checked, not asserted.
package lvmd_test

import (
	"encoding/json"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"lvm/internal/lvmd"
	"lvm/internal/oskernel"
	"lvm/internal/workload"
)

// testConfig shrinks the quick sweep config so dozens of tenants fit a
// small budget: unit-test workload params and a 32MB per-run slack.
func testConfig() lvmd.Config {
	cfg := lvmd.Quick()
	cfg.Exp.Params = workload.QuickParams()
	cfg.Exp.Workloads = []string{"bfs", "gups"}
	cfg.Exp.PhysSlackBytes = 32 << 20
	return cfg
}

// startServer runs a daemon on an ephemeral localhost port and tears it
// down (checking Serve's exit) in cleanup.
func startServer(t testing.TB, cfg lvmd.Config) (*lvmd.Server, string) {
	t.Helper()
	srv, err := lvmd.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve exited with error: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// waitFor polls cond until it holds or the deadline nears.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("never observed: %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServedMatchesStandalone is the serving bit-identity contract: a
// session replayed daemon-side must stream interval windows and a final
// result byte-identical (in their deterministic JSON encodings) to a
// standalone RunIntervals over the same configuration.
func TestServedMatchesStandalone(t *testing.T) {
	cfg := testConfig()
	_, addrs := startServer(t, cfg)
	const every = 777
	for _, scheme := range []oskernel.Scheme{oskernel.SchemeLVM, oskernel.SchemeRadix} {
		t.Run(string(scheme), func(t *testing.T) {
			c, err := lvmd.Dial(addrs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var ivs []lvmd.IntervalDoc
			res, _, err := c.Run(lvmd.OpenRequest{Workload: "bfs", Scheme: scheme, Every: every},
				func(iv lvmd.IntervalDoc) { ivs = append(ivs, iv) })
			if err != nil {
				t.Fatal(err)
			}

			w, err := workload.Build("bfs", cfg.Exp.Params)
			if err != nil {
				t.Fatal(err)
			}
			_, _, cpu, err := cfg.Exp.NewRunMachine(w, scheme, false)
			if err != nil {
				t.Fatal(err)
			}
			wantRes, wantIv := cpu.RunIntervals(1, w, every)
			wantResB, err := json.Marshal(wantRes)
			if err != nil {
				t.Fatal(err)
			}
			if string(res.Sim) != string(wantResB) {
				t.Errorf("served result diverges from standalone run:\n served: %s\n   want: %s", res.Sim, wantResB)
			}
			if res.Accesses != wantRes.Accesses || res.Cycles != wantRes.Cycles {
				t.Errorf("result scalars diverge: got (%d, %g), want (%d, %g)",
					res.Accesses, res.Cycles, wantRes.Accesses, wantRes.Cycles)
			}
			if len(ivs) != len(wantIv) {
				t.Fatalf("%d served intervals, want %d", len(ivs), len(wantIv))
			}
			for i, iv := range ivs {
				if iv.Start != wantIv[i].Start || iv.End != wantIv[i].End {
					t.Fatalf("interval %d range [%d,%d), want [%d,%d)", i, iv.Start, iv.End, wantIv[i].Start, wantIv[i].End)
				}
				wantM, err := json.Marshal(wantIv[i].Metrics)
				if err != nil {
					t.Fatal(err)
				}
				if string(iv.Metrics) != string(wantM) {
					t.Errorf("interval %d metrics diverge:\n served: %s\n   want: %s", i, iv.Metrics, wantM)
				}
			}
		})
	}
}

// TestServedWarmupMatchesStandalone checks the warmed measured region path
// against FastForward + RunFrom.
func TestServedWarmupMatchesStandalone(t *testing.T) {
	cfg := testConfig()
	_, addrs := startServer(t, cfg)
	c, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const warmup = 5000
	res, _, err := c.Run(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM, Warmup: warmup}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Build("bfs", cfg.Exp.Params)
	if err != nil {
		t.Fatal(err)
	}
	_, _, cpu, err := cfg.Exp.NewRunMachine(w, oskernel.SchemeLVM, false)
	if err != nil {
		t.Fatal(err)
	}
	n := cpu.FastForward(1, w, warmup)
	want, err := json.Marshal(cpu.RunFrom(1, w, n))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Sim) != string(want) {
		t.Errorf("served warmup result diverges from standalone RunFrom")
	}
}

// TestStreamedTraceMatchesReplay streams the workload's own trace from the
// client in uneven chunks and requires the result to equal a standalone
// one-shot run: the wire path must not perturb simulation.
func TestStreamedTraceMatchesReplay(t *testing.T) {
	cfg := testConfig()
	_, addrs := startServer(t, cfg)
	c, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w, err := workload.Build("bfs", cfg.Exp.Params)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := c.RunStream(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM, Every: 997},
		w.Accesses, 501, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, cpu, err := cfg.Exp.NewRunMachine(w, oskernel.SchemeLVM, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(cpu.Run(1, w))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Sim) != string(want) {
		t.Errorf("streamed-trace result diverges from standalone Run:\n served: %s\n   want: %s", res.Sim, want)
	}
}

// TestClientDropReleasesAdmission pins the budget to one session, parks a
// stream session on it, and checks that a queued second client's drop
// releases its admission wait — and that the budget then flows to a third,
// surviving session.
func TestClientDropReleasesAdmission(t *testing.T) {
	cfg := testConfig()
	w, err := workload.Build("bfs", cfg.Exp.Params)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MemBudgetBytes = cfg.Exp.RunCostBytes(w.FootprintBytes())
	cfg.Workers = 2
	srv, addrs := startServer(t, cfg)

	// A: a stream session that holds the whole budget, parked waiting for
	// trace input.
	a, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Open(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM, Stream: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WaitAdmitted(); err != nil {
		t.Fatal(err)
	}

	// B: queued behind A, then dropped mid-queue.
	b, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Open(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "B queued", func() bool { return srv.Stats().Admission.QueueDepth == 1 })
	b.Close()
	waitFor(t, "B's queued admission released by drop", func() bool {
		st := srv.Stats()
		return st.Admission.QueueDepth == 0 && st.Sessions == 1
	})
	if got := srv.Stats().Admission.InFlight; got != 1 {
		t.Fatalf("%d admissions in flight after drop, want 1 (A)", got)
	}

	// C: queues, then runs once A finishes its (empty) stream.
	cc, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Open(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "C queued", func() bool { return srv.Stats().Admission.QueueDepth == 1 })
	if err := a.Send(nil, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Wait(nil); err != nil {
		t.Fatalf("A (empty stream): %v", err)
	}
	if res, _, err := cc.Wait(nil); err != nil || res == nil {
		t.Fatalf("C after budget release: %v", err)
	}
	waitFor(t, "all sessions retired", func() bool {
		st := srv.Stats()
		return st.Sessions == 0 && st.Admission.InFlight == 0 && st.Admission.InUseBytes == 0
	})
}

// TestKillMidSession kills a session between batches (client-requested and
// daemon-side) and checks the tenant is torn down with its budget
// returned.
func TestKillMidSession(t *testing.T) {
	cfg := testConfig()
	srv, addrs := startServer(t, cfg)

	// Client-requested kill: park a stream session mid-trace, kill it.
	c, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w, err := workload.Build("bfs", cfg.Exp.Params)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Open(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM, Stream: true, Every: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitAdmitted(); err != nil {
		t.Fatal(err)
	}
	// Feed a chunk so the session is genuinely mid-simulation, then kill.
	if err := c.Send(w.Accesses[:2000], false); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Wait(nil); !errors.Is(err, lvmd.ErrKilled) {
		t.Fatalf("killed session returned %v, want ErrKilled", err)
	}
	waitFor(t, "killed session torn down", func() bool {
		st := srv.Stats()
		return st.Sessions == 0 && st.Admission.InUseBytes == 0
	})

	// Daemon-side kill via KillSession.
	c2, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Open(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM, Stream: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.WaitAdmitted(); err != nil {
		t.Fatal(err)
	}
	if err := srv.KillSession(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Wait(nil); !errors.Is(err, lvmd.ErrKilled) {
		t.Fatalf("daemon-killed session returned %v, want ErrKilled", err)
	}
	if err := srv.KillSession(99); err == nil {
		t.Error("KillSession of unknown id succeeded")
	}
}

// TestConnectDisconnectStorm hammers the daemon with clients that drop at
// every lifecycle stage and checks it drains clean and keeps serving.
func TestConnectDisconnectStorm(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	srv, addrs := startServer(t, cfg)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := lvmd.Dial(addrs, cfg)
			if err != nil {
				t.Errorf("storm dial: %v", err)
				return
			}
			switch i % 3 {
			case 0: // connect and vanish
				c.Close()
			case 1: // open then vanish mid-session
				c.Open(lvmd.OpenRequest{Workload: "gups", Scheme: oskernel.SchemeRadix, Every: 1000})
				c.Close()
			default: // run to completion
				defer c.Close()
				if _, _, err := c.Run(lvmd.OpenRequest{Workload: "gups", Scheme: oskernel.SchemeRadix}, nil); err != nil {
					t.Errorf("storm run: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, "storm drained", func() bool {
		st := srv.Stats()
		return st.Sessions == 0 && st.Admission.InUseBytes == 0 && st.Admission.QueueDepth == 0
	})
	// The daemon must still serve cleanly after the storm.
	c, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Run(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM}, nil); err != nil {
		t.Fatalf("post-storm run: %v", err)
	}
}

// TestHandshakeVetting checks protocol/fingerprint mismatches are refused
// with a reason, exactly like the sweep orchestrator's handshake.
func TestHandshakeVetting(t *testing.T) {
	cfg := testConfig()
	_, addrs := startServer(t, cfg)
	other := testConfig()
	other.Exp.Params.TraceLen = 777 // different config → different fingerprint
	if _, err := lvmd.Dial(addrs, other); err == nil {
		t.Fatal("mismatched fingerprint was accepted")
	}
	// Unknown workloads surface as session errors, not hangs.
	c, err := lvmd.Dial(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Run(lvmd.OpenRequest{Workload: "nope", Scheme: oskernel.SchemeLVM}, nil); err == nil {
		t.Fatal("unknown workload session succeeded")
	}
}

// TestCloseLeaksNoGoroutines runs sessions (including a parked one cut off
// by shutdown), closes the daemon, and requires the goroutine count to
// return to its pre-server level — the same property cmd/lvmd self-asserts
// on SIGTERM.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig()
	srv, err := lvmd.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := lvmd.Dial(ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Run(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM}, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// A parked stream session, left for Close to cancel.
	p, err := lvmd.Dial(ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Open(lvmd.OpenRequest{Workload: "bfs", Scheme: oskernel.SchemeLVM, Stream: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.WaitAdmitted(); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	waitFor(t, "goroutines drained after Close", func() bool {
		return runtime.NumGoroutine() <= before+2
	})
}
