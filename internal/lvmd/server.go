package lvmd

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"lvm/internal/addr"
	"lvm/internal/experiments/sched"
	"lvm/internal/workload"
)

// Server is the daemon: an accept loop handing each connection one
// session, a build-once workload cache shared across tenants, and a
// two-stage admission pipeline — the sched.Admission byte semaphore
// (footprint cost model with EMA correction) decides how many tenants may
// hold machines, a worker-slot semaphore decides how many simulate at
// once.
type Server struct {
	cfg   Config
	fp    string
	adm   *sched.Admission
	slots chan struct{} // worker-slot semaphore (capacity cfg.Workers)
	quit  chan struct{} // closed by Close; cancels queued admissions

	mu       sync.Mutex
	ln       net.Listener              // guarded by mu
	wls      map[string]*workloadOnce  // guarded by mu
	sessions map[uint64]*session       // guarded by mu
	nextID   uint64                    // guarded by mu
	closing  bool                      // guarded by mu

	wg sync.WaitGroup
}

// workloadOnce deduplicates workload construction across sessions: the
// first session naming a workload builds it, concurrent ones wait.
type workloadOnce struct {
	once sync.Once
	w    *workload.Workload
	err  error
}

// ServerStats is a point-in-time load view.
type ServerStats struct {
	// Admission is the byte semaphore's state (in-use charge, queue depth,
	// correction factor).
	Admission sched.AdmissionStats
	// Sessions is the number of open sessions (admitted or queued).
	Sessions int
}

// session is one connection's server-side state. The handling goroutine
// owns the simulation; the read-loop goroutine only feeds trace chunks and
// turns client drops or kill frames into cancellation.
type session struct {
	w *wire

	// traceCh delivers streamed trace chunks to the simulating goroutine.
	traceCh chan traceChunk
	// cancel is closed (once) on client drop, kill, or daemon shutdown.
	cancel     chan struct{}
	cancelOnce sync.Once
	// killed distinguishes an explicit kill (connection still healthy, an
	// error frame is owed) from a drop.
	killed atomic.Bool
}

// traceChunk is one inbound msgTrace frame, decoded.
type traceChunk struct {
	accesses []workload.Access
	done     bool
}

// abort cancels the session. killed marks an explicit client kill.
func (s *session) abort(killed bool) {
	if killed {
		s.killed.Store(true)
	}
	s.cancelOnce.Do(func() { close(s.cancel) })
}

// NewServer builds a daemon from cfg (zero fields resolved to defaults).
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	fp, err := cfg.Fingerprint()
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:      cfg,
		fp:       fp,
		adm:      sched.NewAdmission(cfg.MemBudgetBytes, sched.NewCostModel()),
		slots:    make(chan struct{}, cfg.Workers),
		quit:     make(chan struct{}),
		wls:      make(map[string]*workloadOnce),
		sessions: make(map[uint64]*session),
	}, nil
}

// Serve accepts sessions on ln until Close. It blocks; the returned error
// is nil after a clean Close and the accept failure otherwise.
func (srv *Server) Serve(ln net.Listener) error {
	srv.mu.Lock()
	if srv.closing {
		srv.mu.Unlock()
		ln.Close()
		return errors.New("lvmd: serve on a closed server")
	}
	srv.ln = ln
	srv.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			srv.mu.Lock()
			closing := srv.closing
			srv.mu.Unlock()
			if closing {
				return nil
			}
			return fmt.Errorf("lvmd: accept: %w", err)
		}
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			srv.handle(conn)
		}()
	}
}

// Close shuts the daemon down: the listener stops accepting, queued
// admissions abort, every open session is cancelled and its connection
// closed, and Close returns only when every handler goroutine has drained
// — callers observe zero leaked goroutines after it returns.
func (srv *Server) Close() {
	srv.mu.Lock()
	if srv.closing {
		srv.mu.Unlock()
		srv.wg.Wait()
		return
	}
	srv.closing = true
	if srv.ln != nil {
		srv.ln.Close()
	}
	// Snapshot in sorted ID order: teardown must not depend on map
	// iteration order any more than the simulation paths do.
	ids := make([]uint64, 0, len(srv.sessions))
	for id := range srv.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	live := make([]*session, 0, len(ids))
	for _, id := range ids {
		live = append(live, srv.sessions[id])
	}
	srv.mu.Unlock()

	close(srv.quit)
	for _, s := range live {
		s.abort(false)
		s.w.close()
	}
	srv.wg.Wait()
}

// Stats snapshots current load.
func (srv *Server) Stats() ServerStats {
	srv.mu.Lock()
	n := len(srv.sessions)
	srv.mu.Unlock()
	return ServerStats{Admission: srv.adm.Stats(), Sessions: n}
}

// KillSession aborts the identified open session server-side, as if its
// client had sent a kill frame. Unknown IDs report an error.
func (srv *Server) KillSession(id uint64) error {
	srv.mu.Lock()
	s := srv.sessions[id]
	srv.mu.Unlock()
	if s == nil {
		return fmt.Errorf("lvmd: kill of unknown session %d", id)
	}
	s.abort(true)
	return nil
}

// workload returns the named workload, building it at most once across all
// sessions.
func (srv *Server) workload(name string) (*workload.Workload, error) {
	srv.mu.Lock()
	wo := srv.wls[name]
	if wo == nil {
		wo = &workloadOnce{}
		srv.wls[name] = wo
	}
	srv.mu.Unlock()
	wo.once.Do(func() {
		wo.w, wo.err = workload.Build(name, srv.cfg.Exp.Params)
	})
	return wo.w, wo.err
}

// register allocates a session identity; unregister retires it.
func (srv *Server) register(w *wire) (uint64, *session) {
	srv.mu.Lock()
	srv.nextID++
	id := srv.nextID
	s := &session{
		w:       w,
		traceCh: make(chan traceChunk, 4),
		cancel:  make(chan struct{}),
	}
	srv.sessions[id] = s
	srv.mu.Unlock()
	return id, s
}

func (srv *Server) unregister(id uint64) {
	srv.mu.Lock()
	delete(srv.sessions, id)
	srv.mu.Unlock()
}

// vetHello mirrors the sweep orchestrator's handshake validation:
// protocol, stream schema, and config fingerprint must all match, or the
// client is speaking about a different machine.
func (srv *Server) vetHello(m message) string {
	if m.Type != msgHello {
		return fmt.Sprintf("expected hello, got %q", m.Type)
	}
	if m.Proto != ProtocolVersion {
		return fmt.Sprintf("protocol v%d, want v%d", m.Proto, ProtocolVersion)
	}
	if m.SchemaVersion != StreamSchemaVersion {
		return fmt.Sprintf("stream schema v%d, want v%d", m.SchemaVersion, StreamSchemaVersion)
	}
	if m.Fingerprint != srv.fp {
		return fmt.Sprintf("config fingerprint %.12s does not match daemon (%.12s) — client configured for a different machine", m.Fingerprint, srv.fp)
	}
	return ""
}

// handle runs one connection's lifecycle end to end: handshake, open,
// admission, simulation, teardown. It owns the connection; the read loop
// it spawns only feeds it.
func (srv *Server) handle(conn net.Conn) {
	w := &wire{conn: conn}
	defer w.close()
	hello, err := w.recv()
	if err != nil {
		return
	}
	if reason := srv.vetHello(hello); reason != "" {
		w.send(message{Type: msgReject, Reason: reason})
		return
	}
	if err := w.send(message{Type: msgWelcome, Workers: srv.cfg.Workers, BudgetBytes: srv.cfg.MemBudgetBytes}); err != nil {
		return
	}
	m, err := w.recv()
	if err != nil {
		return
	}
	if m.Type != msgOpen || m.Open == nil {
		w.send(message{Type: msgError, Reason: fmt.Sprintf("expected open, got %q", m.Type)})
		return
	}
	open := *m.Open
	if open.Stream && open.Warmup > 0 {
		w.send(message{Type: msgError, Reason: "warmup is not supported for stream sessions"})
		return
	}

	wl, err := srv.workload(open.Workload)
	if err != nil {
		w.send(message{Type: msgError, Reason: err.Error()})
		return
	}

	id, s := srv.register(w)
	defer srv.unregister(id)
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		srv.readLoop(s)
	}()

	// Cancellation covers both the client (drop/kill via s.cancel) and the
	// daemon (Close via quit); fold them into the one channel Acquire and
	// the drive loop watch.
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		select {
		case <-srv.quit:
			s.abort(false)
		case <-s.cancel:
		}
	}()

	// Stage 1: memory admission. The charge is the sweep scheduler's exact
	// footprint formula, EMA-corrected by what completed sessions actually
	// cost; a cancelled wait charges nothing.
	cost := srv.cfg.Exp.RunCostBytes(wl.FootprintBytes())
	charge, ok := srv.adm.Acquire(cost, s.cancel)
	if !ok {
		srv.sendAborted(s)
		return
	}
	defer srv.adm.Release(charge)

	// Stage 2: a worker slot bounds concurrent simulation.
	select {
	case srv.slots <- struct{}{}:
	case <-s.cancel:
		srv.sendAborted(s)
		return
	}
	defer func() { <-srv.slots }()

	if err := w.send(message{Type: msgAdmitted, ChargeBytes: charge, QueueDepth: srv.adm.Stats().QueueDepth}); err != nil {
		return
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	runErr := srv.runSession(s, wl, open)
	runtime.ReadMemStats(&after)
	srv.adm.Observe(cost, sched.MemSample{
		AllocBytes:     after.TotalAlloc - before.TotalAlloc,
		HeapInuseBytes: after.HeapInuse,
	})
	if runErr != nil {
		w.send(message{Type: msgError, Reason: runErr.Error()})
	}
}

// readLoop drains the client's frames: trace chunks feed the simulating
// goroutine, a kill frame or connection loss cancels the session. It exits
// when the connection dies — handle's deferred close guarantees that.
func (srv *Server) readLoop(s *session) {
	for {
		m, err := s.w.recv()
		if err != nil {
			s.abort(false)
			return
		}
		switch m.Type {
		case msgTrace:
			accesses := make([]workload.Access, len(m.Accesses))
			for i, a := range m.Accesses {
				accesses[i] = workload.Access{VA: addr.VA(a.VA), Write: a.W}
			}
			select {
			case s.traceCh <- traceChunk{accesses: accesses, done: m.Done}:
			case <-s.cancel:
				return
			}
			if m.Done {
				return
			}
		case msgKill:
			s.abort(true)
			return
		}
	}
}

// sendAborted owes an explicitly killed session an error frame; dropped
// clients get nothing (the connection is gone).
func (srv *Server) sendAborted(s *session) {
	if s.killed.Load() {
		s.w.send(message{Type: msgError, Reason: "session killed"})
	}
}

// errAborted marks a session cancelled mid-simulation.
var errAborted = errors.New("lvmd: session aborted")
