package lvmd

import (
	"encoding/json"
	"fmt"

	"lvm/internal/sim"
	"lvm/internal/workload"
)

// maxStepChunk bounds one Step between cancellation checks. It must never
// influence results — sim.Session guarantees chunking is invisible — so it
// is purely a kill/drop latency bound.
const maxStepChunk = 1 << 16

// runSession owns one tenant's simulation from machine construction to the
// result frame. The machine comes from experiments.Config.NewRunMachine
// and the trace is driven through sim.Session in interval-bounded Step
// chunks, so everything streamed back — window deltas and the sealed
// result — is bit-identical to a standalone run of the same key; the only
// thing this loop adds is *where* the cancellation points and frame sends
// fall between chunks.
//
// A nil return means the result frame was sent (or at least attempted); a
// non-nil return is turned into an error frame by the caller. errAborted
// is returned for cancelled sessions — handle's sendAborted has already
// owed killed clients their frame by the time it is checked.
func (srv *Server) runSession(s *session, wl *workload.Workload, open OpenRequest) error {
	// The machine is private to this session — its own phys.Memory, tables,
	// and TLBs — so end-of-life is simply dropping the reference. An explicit
	// sys.Close() here would walk every mapped page back into a buddy
	// allocator that dies with it (measured at ~40% of served CPU on
	// TLB-hostile tenants).
	_, _, cpu, err := srv.cfg.Exp.NewRunMachine(wl, open.Scheme, open.THP)
	if err != nil {
		return fmt.Errorf("launch: %w", err)
	}

	var sess *sim.Session
	switch {
	case open.Stream:
		sess = cpu.NewStreamSession(1, wl.Name, wl.InstrsPerAccess)
	case open.Warmup > 0:
		n := cpu.FastForward(1, wl, open.Warmup)
		sess = cpu.NewSessionFrom(1, wl, n)
	default:
		sess = cpu.NewSession(1, wl)
	}
	every := open.Every
	if every <= 0 {
		every = srv.cfg.DefaultEvery
	}

	origin := sess.Pos()
	winStart := origin
	prev := cpu.Snapshot()
	cut := func() error {
		cur := cpu.Snapshot()
		mb, err := json.Marshal(cur.Delta(prev))
		if err != nil {
			return fmt.Errorf("encoding interval: %w", err)
		}
		err = s.w.send(message{Type: msgInterval, Interval: &IntervalDoc{
			Start: winStart, End: sess.Pos(), Metrics: mb,
		}})
		prev = cur
		winStart = sess.Pos()
		return err
	}

	traceDone := !open.Stream
	for {
		select {
		case <-s.cancel:
			srv.sendAborted(s)
			return errAborted
		default:
		}
		if sess.Done() {
			if traceDone {
				break
			}
			// Streamed trace drained: wait for the next chunk (or the end
			// of the trace, or cancellation).
			select {
			case ch := <-s.traceCh:
				sess.Extend(ch.accesses)
				if ch.done {
					traceDone = true
				}
			case <-s.cancel:
				srv.sendAborted(s)
				return errAborted
			}
			continue
		}
		// Chunking is a pure performance knob (sim.Session's contract), so
		// bounding it costs nothing and guarantees cancellation points even
		// for sessions running a single whole-trace window.
		chunk := sess.Remaining()
		if chunk > maxStepChunk {
			chunk = maxStepChunk
		}
		if every > 0 {
			if next := every - (sess.Pos()-origin)%every; next < chunk {
				chunk = next
			}
		}
		sess.Step(chunk)
		if every > 0 && (sess.Pos()-origin)%every == 0 && sess.Pos() > winStart {
			if err := cut(); err != nil {
				return err
			}
		}
	}
	// Final partial window, exactly like RunIntervals' trailing cut.
	if sess.Pos() > winStart {
		if err := cut(); err != nil {
			return err
		}
	}

	res := sess.Finish()
	rb, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("encoding result: %w", err)
	}
	return s.w.send(message{Type: msgResult, Result: &ResultDoc{
		Workload:     res.Workload,
		Scheme:       res.Scheme,
		Accesses:     res.Accesses,
		Instructions: res.Instructions,
		Cycles:       res.Cycles,
		Sim:          rb,
	}})
}
