// Package lvmd is the simulation-as-a-service daemon: clients open
// access-trace sessions over a length-prefixed JSON wire protocol, each
// session simulates on its own per-tenant machine (physical memory, OS
// kernel, CPU) driven through the batched translation pipeline, and live
// per-tenant metric windows stream back as the trace advances.
//
// The serving contract is the same determinism bar the experiment stack
// upholds: a served session's interval deltas and final result are
// bit-identical to a standalone sim run of the same configuration
// (test-enforced), because tenant machines are built through the
// experiments.Config.NewRunMachine seam and driven by sim.Session, whose
// chunking is a pure performance knob. Concurrency decides only *when* a
// tenant simulates — admission is sched.Admission over the sweep's
// footprint cost formula — never what it computes.
package lvmd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"lvm/internal/oskernel"
)

// ProtocolVersion gates the handshake; the daemon rejects clients speaking
// a different frame layout.
const ProtocolVersion = 1

// StreamSchemaVersion versions the interval/result stream documents. It is
// vetted in the handshake alongside the config fingerprint so a client
// never misreads windows produced under a different schema.
const StreamSchemaVersion = 1

// maxMsgBytes bounds one frame. Interval and result documents are a few KB
// of JSON and trace chunks are client-bounded; anything near this limit is
// a corrupt or hostile peer.
const maxMsgBytes = 64 << 20

type msgType string

const (
	msgHello    msgType = "hello"    // client → daemon: handshake
	msgWelcome  msgType = "welcome"  // daemon → client: handshake accepted
	msgReject   msgType = "reject"   // daemon → client: handshake refused
	msgOpen     msgType = "open"     // client → daemon: start a session
	msgAdmitted msgType = "admitted" // daemon → client: session past admission
	msgTrace    msgType = "trace"    // client → daemon: streamed access chunk
	msgInterval msgType = "interval" // daemon → client: one metric window
	msgResult   msgType = "result"   // daemon → client: final result, session over
	msgError    msgType = "error"    // daemon → client: session failed
	msgKill     msgType = "kill"     // client → daemon: abort the session
)

// OpenRequest configures one session. With Stream false the daemon replays
// the named workload's own trace; with Stream true the client delivers the
// trace in msgTrace chunks (the workload still names the address space the
// tenant is launched with — a trace is meaningless without the mappings it
// references).
type OpenRequest struct {
	// Workload names the workload whose address space (and, when Stream is
	// false, trace) the tenant runs.
	Workload string          `json:"workload"`
	Scheme   oskernel.Scheme `json:"scheme"`
	THP      bool            `json:"thp,omitempty"`
	// Warmup fast-forwards the first Warmup accesses through functional
	// state before the measured session begins, exactly like the sweep's
	// warmup runs. Rejected for stream sessions.
	Warmup int `json:"warmup,omitempty"`
	// Every is the interval window in accesses (0 uses the daemon's
	// default; windows are cut relative to the measured region's start).
	Every int `json:"every,omitempty"`
	// Stream marks a client-fed trace session.
	Stream bool `json:"stream,omitempty"`
}

// WireAccess is one streamed trace access.
type WireAccess struct {
	VA uint64 `json:"va"`
	W  bool   `json:"w,omitempty"`
}

// IntervalDoc is one streamed metric window: the component-counter deltas
// that accrued over the half-open access range [Start, End), serialized
// with the deterministic metrics.Set encoding — the bytes equal what a
// standalone sim.RunIntervals window marshals to.
type IntervalDoc struct {
	Start   int             `json:"start"`
	End     int             `json:"end"`
	Metrics json.RawMessage `json:"metrics"`
}

// ResultDoc is the session's sealed outcome. Sim holds the full sim.Result
// document (scalar fields plus the final metrics snapshot); the scalar
// mirrors exist so throughput harnesses need not parse it.
type ResultDoc struct {
	Workload     string          `json:"workload"`
	Scheme       string          `json:"scheme"`
	Accesses     uint64          `json:"accesses"`
	Instructions uint64          `json:"instructions"`
	Cycles       float64         `json:"cycles"`
	Sim          json.RawMessage `json:"sim"`
}

// message is the single frame shape of the protocol; which fields are
// meaningful depends on Type.
type message struct {
	Type msgType `json:"type"`
	// hello fields, vetted exactly like the sweep orchestrator's handshake.
	Proto         int    `json:"proto,omitempty"`
	SchemaVersion int    `json:"schema_version,omitempty"`
	Fingerprint   string `json:"fingerprint,omitempty"`
	// welcome fields: the daemon's capacity advertisement.
	Workers     int    `json:"workers,omitempty"`
	BudgetBytes uint64 `json:"budget_bytes,omitempty"`
	// reject/error field.
	Reason string `json:"reason,omitempty"`
	// open field.
	Open *OpenRequest `json:"open,omitempty"`
	// admitted fields: the admission charge and the queue depth observed
	// when this session cleared the semaphore.
	ChargeBytes uint64 `json:"charge_bytes,omitempty"`
	QueueDepth  int    `json:"queue_depth,omitempty"`
	// trace fields; Done marks the end of a streamed trace.
	Accesses []WireAccess `json:"accesses,omitempty"`
	Done     bool         `json:"done,omitempty"`
	// interval / result payloads.
	Interval *IntervalDoc `json:"interval,omitempty"`
	Result   *ResultDoc   `json:"result,omitempty"`
}

// wire frames length-prefixed (4-byte big-endian) JSON messages over one
// connection. Each side runs a single reader loop; sends may come from any
// goroutine.
type wire struct {
	conn net.Conn
	mu   sync.Mutex // guards writes to conn
}

func (w *wire) send(m message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lvmd: encoding %s: %w", m.Type, err)
	}
	frame := make([]byte, 4+len(b))
	binary.BigEndian.PutUint32(frame, uint32(len(b)))
	copy(frame[4:], b)
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.conn.Write(frame)
	return err
}

func (w *wire) recv() (message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.conn, hdr[:]); err != nil {
		return message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMsgBytes {
		return message{}, fmt.Errorf("lvmd: frame of %d bytes exceeds limit %d", n, maxMsgBytes)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(w.conn, b); err != nil {
		return message{}, err
	}
	var m message
	if err := json.Unmarshal(b, &m); err != nil {
		return message{}, fmt.Errorf("lvmd: decoding frame: %w", err)
	}
	return m, nil
}

func (w *wire) close() error { return w.conn.Close() }
