// Package metrics is the uniform instrumentation contract of the
// simulator: every stat-bearing component — TLB hierarchy, cache
// hierarchy, DRAM model, the walk caches, and the scheme walkers
// themselves — exposes its counters as a Set of stable, dot-namespaced
// names (`tlb.l2.misses`, `cache.l3.walk_misses`, `dram.accesses`, ...).
// The experiment harness serializes these sets into lvmbench's JSON run
// output, and the CI regression gate exact-matches the counters against a
// committed baseline; per-structure statistics are the primary interface
// of a translation simulator (Fast TLB Simulation, arXiv:1905.06825), so
// they are typed and ordered here rather than scattered across ad-hoc
// accessors.
//
// Determinism is part of the contract: a Set is backed by an ordered
// slice, never a map, so serialization order can not depend on map
// iteration (the lvmlint nondeterm analyzer bans map ranges in this
// package to keep it that way by construction).
package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the two metric value types.
type Kind uint8

const (
	// KindCounter is a monotonically increasing uint64 event count. All
	// counters are bit-for-bit deterministic run to run; the regression
	// gate compares them exactly.
	KindCounter Kind = iota
	// KindGauge is a float64 level or derived rate (miss rates, MPKI).
	// Gauges are derived from counters and equally deterministic, but the
	// gate compares them with a tiny relative tolerance to stay robust to
	// float formatting differences.
	KindGauge
)

// Value is one named metric.
type Value struct {
	Name string
	Kind Kind
	// Uint holds the value of a KindCounter, Float of a KindGauge.
	Uint  uint64
	Float float64
}

// A Set is an ordered collection of named metrics. The zero value is an
// empty set ready for use. Sets are built by the components' Snapshot
// methods and merged under namespace prefixes by their containers.
type Set struct {
	vals []Value
}

// A Source is a component that can snapshot its statistics. Snapshots are
// cumulative (counters since construction), so callers can window them
// with Delta.
type Source interface {
	Snapshot() Set
}

// find returns the index of name, or -1.
func (s *Set) find(name string) int {
	for i := range s.vals {
		if s.vals[i].Name == name {
			return i
		}
	}
	return -1
}

// Counter records a counter value. Recording an existing counter name
// accumulates into it (addition is commutative, so merge order can not
// leak into the result); recording over a gauge replaces it.
func (s *Set) Counter(name string, v uint64) {
	if i := s.find(name); i >= 0 {
		if s.vals[i].Kind == KindCounter {
			s.vals[i].Uint += v
			return
		}
		s.vals[i] = Value{Name: name, Kind: KindCounter, Uint: v}
		return
	}
	s.vals = append(s.vals, Value{Name: name, Kind: KindCounter, Uint: v})
}

// Gauge records a gauge value, replacing any existing metric of the name.
func (s *Set) Gauge(name string, v float64) {
	if i := s.find(name); i >= 0 {
		s.vals[i] = Value{Name: name, Kind: KindGauge, Float: v}
		return
	}
	s.vals = append(s.vals, Value{Name: name, Kind: KindGauge, Float: v})
}

// Merge folds every metric of o into s under "prefix." (or verbatim when
// prefix is empty), with Counter/Gauge recording semantics.
func (s *Set) Merge(prefix string, o Set) {
	for _, v := range o.vals {
		name := v.Name
		if prefix != "" {
			name = prefix + "." + name
		}
		if v.Kind == KindCounter {
			s.Counter(name, v.Uint)
		} else {
			s.Gauge(name, v.Float)
		}
	}
}

// Len returns the number of metrics in the set.
func (s Set) Len() int { return len(s.vals) }

// Get returns the metric of the given name.
func (s Set) Get(name string) (Value, bool) {
	if i := s.find(name); i >= 0 {
		return s.vals[i], true
	}
	return Value{}, false
}

// Uint returns the named counter's value (0 when absent or a gauge).
func (s Set) Uint(name string) uint64 {
	if v, ok := s.Get(name); ok && v.Kind == KindCounter {
		return v.Uint
	}
	return 0
}

// Float returns the named gauge's value (0 when absent or a counter).
func (s Set) Float(name string) float64 {
	if v, ok := s.Get(name); ok && v.Kind == KindGauge {
		return v.Float
	}
	return 0
}

// Sorted returns the metrics as a fresh slice sorted by name — the
// serialization order of every consumer.
func (s Set) Sorted() []Value {
	out := append([]Value(nil), s.vals...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delta returns the counter increments of s over prev: for every counter
// in s, its value minus prev's (clamped at 0; a counter absent from prev
// contributes its full value). Gauges are levels, not accumulations, so
// they are dropped — recompute them over the window if needed.
func (s Set) Delta(prev Set) Set {
	var out Set
	for _, v := range s.vals {
		if v.Kind != KindCounter {
			continue
		}
		d := v.Uint
		if p, ok := prev.Get(v.Name); ok && p.Kind == KindCounter {
			if p.Uint >= d {
				d = 0
			} else {
				d -= p.Uint
			}
		}
		out.Counter(v.Name, d)
	}
	return out
}

// AppendFloat formats a gauge value in the canonical JSON form shared by
// every serializer of a Set: shortest round-trip representation, with
// non-finite values (which no derivation should produce) pinned to 0.
func AppendFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// MarshalJSON renders the set as a JSON object with keys in sorted order,
// counters as integers and gauges as numbers. The implementation iterates
// the sorted slice — never a map — so the byte output is deterministic.
func (s Set) MarshalJSON() ([]byte, error) {
	b := []byte{'{'}
	for i, v := range s.Sorted() {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, v.Name)
		b = append(b, ':')
		if v.Kind == KindCounter {
			b = strconv.AppendUint(b, v.Uint, 10)
		} else {
			b = AppendFloat(b, v.Float)
		}
	}
	return append(b, '}'), nil
}

// String renders the set one "name value" pair per line in sorted order,
// for debugging and test failure output.
func (s Set) String() string {
	var b strings.Builder
	for _, v := range s.Sorted() {
		b.WriteString(v.Name)
		b.WriteByte(' ')
		if v.Kind == KindCounter {
			b.WriteString(strconv.FormatUint(v.Uint, 10))
		} else {
			b.WriteString(strconv.FormatFloat(v.Float, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
