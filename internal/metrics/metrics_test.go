package metrics_test

import (
	"encoding/json"
	"math"
	"testing"

	"lvm/internal/metrics"
)

func TestCounterAccumulatesOnDuplicate(t *testing.T) {
	var s metrics.Set
	s.Counter("a.hits", 3)
	s.Counter("a.hits", 4)
	if got := s.Uint("a.hits"); got != 7 {
		t.Fatalf("a.hits = %d, want 7", got)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
}

func TestGaugeReplaces(t *testing.T) {
	var s metrics.Set
	s.Gauge("rate", 0.5)
	s.Gauge("rate", 0.25)
	if got := s.Float("rate"); got != 0.25 {
		t.Fatalf("rate = %v, want 0.25", got)
	}
}

func TestKindAccessorsAreStrict(t *testing.T) {
	var s metrics.Set
	s.Counter("c", 9)
	s.Gauge("g", 1.5)
	if s.Uint("g") != 0 || s.Float("c") != 0 {
		t.Fatal("cross-kind accessor must return 0")
	}
	if s.Uint("missing") != 0 || s.Float("missing") != 0 {
		t.Fatal("missing name must return 0")
	}
}

func TestMergePrefixes(t *testing.T) {
	var inner metrics.Set
	inner.Counter("hits", 5)
	inner.Gauge("rate", 0.1)

	var outer metrics.Set
	outer.Counter("tlb.l2.hits", 1)
	outer.Merge("tlb.l2", inner)
	outer.Merge("", inner)

	if got := outer.Uint("tlb.l2.hits"); got != 6 {
		t.Fatalf("tlb.l2.hits = %d, want 6 (merge accumulates counters)", got)
	}
	if got := outer.Float("tlb.l2.rate"); got != 0.1 {
		t.Fatalf("tlb.l2.rate = %v", got)
	}
	if got := outer.Uint("hits"); got != 5 {
		t.Fatalf("empty-prefix merge: hits = %d", got)
	}
}

func TestSortedOrderAndDeterministicJSON(t *testing.T) {
	var s metrics.Set
	s.Counter("z.last", 1)
	s.Gauge("a.first", 2.5)
	s.Counter("m.mid", 3)

	sorted := s.Sorted()
	want := []string{"a.first", "m.mid", "z.last"}
	for i, v := range sorted {
		if v.Name != want[i] {
			t.Fatalf("sorted[%d] = %s, want %s", i, v.Name, want[i])
		}
	}

	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != `{"a.first":2.5,"m.mid":3,"z.last":1}` {
		t.Fatalf("json = %s", b1)
	}
	// Round-trips through encoding/json as a plain object.
	var m map[string]float64
	if err := json.Unmarshal(b1, &m); err != nil {
		t.Fatal(err)
	}
	if m["z.last"] != 1 || m["a.first"] != 2.5 {
		t.Fatalf("round-trip = %v", m)
	}
}

func TestDeltaWindowsCounters(t *testing.T) {
	var prev, cur metrics.Set
	prev.Counter("hits", 10)
	prev.Counter("gone", 3)
	cur.Counter("hits", 25)
	cur.Counter("fresh", 4)
	cur.Gauge("rate", 0.9)

	d := cur.Delta(prev)
	if got := d.Uint("hits"); got != 15 {
		t.Fatalf("delta hits = %d, want 15", got)
	}
	if got := d.Uint("fresh"); got != 4 {
		t.Fatalf("delta fresh = %d, want 4", got)
	}
	if _, ok := d.Get("rate"); ok {
		t.Fatal("gauges must be dropped from deltas")
	}
	if _, ok := d.Get("gone"); ok {
		t.Fatal("counters absent from the current set must not appear")
	}
}

func TestDeltaClampsRegressions(t *testing.T) {
	var prev, cur metrics.Set
	prev.Counter("c", 10)
	cur.Counter("c", 7)
	if got := cur.Delta(prev).Uint("c"); got != 0 {
		t.Fatalf("regressed counter delta = %d, want 0 (clamped)", got)
	}
}

func TestAppendFloatPinsNonFinite(t *testing.T) {
	if got := string(metrics.AppendFloat(nil, math.NaN())); got != "0" {
		t.Fatalf("NaN -> %q", got)
	}
	if got := string(metrics.AppendFloat(nil, math.Inf(1))); got != "0" {
		t.Fatalf("+Inf -> %q", got)
	}
	if got := string(metrics.AppendFloat(nil, 0.6)); got != "0.6" {
		t.Fatalf("0.6 -> %q", got)
	}
}
