// Package mmu defines the hardware page-walker interface shared by every
// translation scheme, plus the walk-cache building blocks: the radix page
// walk cache (PWC) and LVM's walk cache (LWC, paper §4.6.2 / Fig. 8).
//
// A Walker turns an L2-TLB miss into a sequence of memory requests. The
// simulator charges each request to the cache hierarchy; requests within a
// group are issued in parallel (ECPT's probes), groups are sequential
// (radix's pointer chase, LVM's node fetches).
package mmu

import (
	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/pte"
	"lvm/internal/stats"
)

// Outcome is the trace of one hardware page walk.
type Outcome struct {
	Entry pte.Entry
	Found bool
	// Groups holds the memory requests: groups are sequential, requests
	// within one group are issued in parallel.
	Groups [][]addr.PA
	// WalkCacheCycles is the time spent in walk-cache lookups and model
	// computation (2 cycles per step in Table 1).
	WalkCacheCycles int
}

// Refs returns the total number of memory requests — the page-walk-traffic
// metric of Figure 11.
func (o Outcome) Refs() int {
	n := 0
	for _, g := range o.Groups {
		n += len(g)
	}
	return n
}

// Latency is a helper for tests: sequential sum over groups of the max of a
// fixed per-request latency.
func (o Outcome) Latency(perRef, walkCache int) int {
	total := o.WalkCacheCycles * walkCache
	for _, g := range o.Groups {
		if len(g) > 0 {
			total += perRef
		}
	}
	return total
}

// Walker is a hardware page table walker.
type Walker interface {
	// Name identifies the scheme ("radix", "ecpt", "lvm", ...).
	Name() string
	// Walk translates v in address space asid.
	Walk(asid uint16, v addr.VPN) Outcome
}

// StepCycles is the walk-cache lookup / model-computation latency per step
// (Table 1: 2 cycles for PWC, CWC and LWC).
const StepCycles = 2

// --- LVM walk cache -------------------------------------------------------

// LWCEntry is one cached learned-index node (Fig. 8): the 16-byte model
// plus its (ASID, level, offset) identity.
type lwcEntry struct {
	valid  bool
	asid   uint16
	level  int
	offset int
}

// LWC is LVM's fully associative walk cache. Per §4.6.2 it stores
// individual models on demand, is ASID-tagged (no flush on context switch),
// and is flushed per-entry only when the OS retrains a node.
type LWC struct {
	entries []lwcEntry // most-recent-first

	hits, misses stats.Counter
}

// NewLWC creates an LWC with the given entry count (Table 1: 16).
func NewLWC(entries int) *LWC {
	return &LWC{entries: make([]lwcEntry, 0, entries)}
}

// Lookup probes for a node; on hit the entry moves to MRU.
func (c *LWC) Lookup(asid uint16, level, offset int) bool {
	for i, e := range c.entries {
		if e.valid && e.asid == asid && e.level == level && e.offset == offset {
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = e
			c.hits.Inc()
			return true
		}
	}
	c.misses.Inc()
	return false
}

// Insert caches a node fetched from memory, evicting the LRU entry.
func (c *LWC) Insert(asid uint16, level, offset int) {
	e := lwcEntry{valid: true, asid: asid, level: level, offset: offset}
	if len(c.entries) < cap(c.entries) {
		c.entries = append(c.entries, lwcEntry{})
	}
	copy(c.entries[1:], c.entries[:len(c.entries)-1])
	c.entries[0] = e
}

// FlushNode drops one node (the OS does this after retraining, §5.2).
func (c *LWC) FlushNode(asid uint16, level, offset int) {
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.asid == asid && e.level == level && e.offset == offset {
			e.valid = false
		}
	}
}

// FlushASID drops all nodes of one address space (used on index rebuild).
func (c *LWC) FlushASID(asid uint16) {
	for i := range c.entries {
		if c.entries[i].asid == asid {
			c.entries[i].valid = false
		}
	}
}

// HitRate returns hits / lookups.
func (c *LWC) HitRate() float64 {
	return stats.Ratio(c.hits.Value(), c.hits.Value()+c.misses.Value())
}

// Hits returns the hit count.
func (c *LWC) Hits() uint64 { return c.hits.Value() }

// Misses returns the miss count.
func (c *LWC) Misses() uint64 { return c.misses.Value() }

// SizeBytes returns the SRAM capacity implied by the configuration: 16
// bytes of model per entry (plus tags, accounted in internal/hwarea).
func (c *LWC) SizeBytes() int { return cap(c.entries) * 16 }

// Snapshot implements metrics.Source: the walk cache's hit/miss counters.
func (c *LWC) Snapshot() metrics.Set {
	var s metrics.Set
	s.Counter("hits", c.hits.Value())
	s.Counter("misses", c.misses.Value())
	return s
}

var _ metrics.Source = (*LWC)(nil)

// --- Radix page walk cache -------------------------------------------------

// PWC is one level of a radix page walk cache: a fully associative cache of
// upper-level entries keyed by the VPN prefix that indexes that level.
type PWC struct {
	name    string
	entries []pwcEntry

	hits, misses stats.Counter
}

type pwcEntry struct {
	valid  bool
	asid   uint16
	prefix uint64
}

// NewPWC creates one PWC level with the given capacity (Table 1: 32
// entries per level, 3 levels).
func NewPWC(name string, entries int) *PWC {
	return &PWC{name: name, entries: make([]pwcEntry, 0, entries)}
}

// Lookup probes for the upper-level entry covering the VPN prefix.
func (c *PWC) Lookup(asid uint16, prefix uint64) bool {
	for i, e := range c.entries {
		if e.valid && e.asid == asid && e.prefix == prefix {
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = e
			c.hits.Inc()
			return true
		}
	}
	c.misses.Inc()
	return false
}

// Insert caches an upper-level entry.
func (c *PWC) Insert(asid uint16, prefix uint64) {
	e := pwcEntry{valid: true, asid: asid, prefix: prefix}
	if len(c.entries) < cap(c.entries) {
		c.entries = append(c.entries, pwcEntry{})
	}
	copy(c.entries[1:], c.entries[:len(c.entries)-1])
	c.entries[0] = e
}

// Invalidate drops one prefix (on unmap of upper-level structures).
func (c *PWC) Invalidate(asid uint16, prefix uint64) {
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.asid == asid && e.prefix == prefix {
			e.valid = false
		}
	}
}

// FlushASID drops all entries of one address space (process exit).
func (c *PWC) FlushASID(asid uint16) {
	for i := range c.entries {
		if c.entries[i].asid == asid {
			c.entries[i].valid = false
		}
	}
}

// HitRate returns hits / lookups.
func (c *PWC) HitRate() float64 {
	return stats.Ratio(c.hits.Value(), c.hits.Value()+c.misses.Value())
}

// MissRate returns misses / lookups.
func (c *PWC) MissRate() float64 {
	return stats.Ratio(c.misses.Value(), c.hits.Value()+c.misses.Value())
}

// Name returns the level label ("pml4e", "pdpte", "pde").
func (c *PWC) Name() string { return c.name }

// Snapshot implements metrics.Source: the level's hit/miss counters. The
// owning walker namespaces them by the level's Name.
func (c *PWC) Snapshot() metrics.Set {
	var s metrics.Set
	s.Counter("hits", c.hits.Value())
	s.Counter("misses", c.misses.Value())
	return s
}

var _ metrics.Source = (*PWC)(nil)
