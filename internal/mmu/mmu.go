// Package mmu defines the hardware page-walker interface shared by every
// translation scheme, plus the walk-cache building blocks: the radix page
// walk cache (PWC) and LVM's walk cache (LWC, paper §4.6.2 / Fig. 8).
//
// A Walker turns an L2-TLB miss into a sequence of memory requests. The
// simulator charges each request to the cache hierarchy; requests within a
// group are issued in parallel (ECPT's probes), groups are sequential
// (radix's pointer chase, LVM's node fetches).
//
// Walk traces are flat and allocation-free: each walker owns a reusable
// WalkBuf holding the requests of the current walk as one []addr.PA plus
// group boundaries, and Outcome is a read-only view into that buffer. The
// view is valid until the walker's next Walk — the simulator consumes it
// immediately, so the steady-state translate-then-access loop never touches
// the heap.
package mmu

import (
	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/pte"
	"lvm/internal/stats"
)

// Outcome is the trace of one hardware page walk. The request trace
// (Group/AllRefs) aliases the walker's reusable buffer and is valid only
// until that walker's next Walk; callers that need it longer must copy.
//
// A trace optionally carries a verify region: a suffix of trailing groups
// (marked via WalkBuf.BeginVerify) that resolves speculation rather than the
// translation itself. The critical prefix must complete before the data
// access can start; the verify suffix runs concurrently with it, so the
// simulator charges max(verify, access) instead of their sum. Traces without
// a verify region (every non-speculative scheme) are charged exactly as
// before.
type Outcome struct {
	Entry pte.Entry
	Found bool
	// WalkCacheCycles is the time spent in walk-cache lookups and model
	// computation (2 cycles per step in Table 1).
	WalkCacheCycles int

	// pas holds every memory request of the walk, flattened in issue
	// order; ends[i] is the index one past group i's last request. Groups
	// are sequential, requests within one group are issued in parallel.
	pas  []addr.PA
	ends []int
	// verifyGroups counts the trailing groups forming the verify suffix;
	// zero means no verify region (the flat pre-speculation contract).
	verifyGroups int
}

// Refs returns the total number of memory requests — the page-walk-traffic
// metric of Figure 11.
func (o Outcome) Refs() int { return len(o.pas) }

// NumGroups returns the number of sequential request groups. Groups are
// never empty by construction.
func (o Outcome) NumGroups() int { return len(o.ends) }

// Group returns the i-th group's requests as a read-only view into the
// walker's buffer (capped so an append cannot clobber the neighbors).
func (o Outcome) Group(i int) []addr.PA {
	lo := 0
	if i > 0 {
		lo = o.ends[i-1]
	}
	hi := o.ends[i]
	return o.pas[lo:hi:hi]
}

// AllRefs returns every request of the walk in issue order, flattened
// across groups — a read-only view into the walker's buffer.
func (o Outcome) AllRefs() []addr.PA { return o.pas[:len(o.pas):len(o.pas)] }

// VerifyGroups returns the number of trailing groups in the verify suffix
// (0 = no verify region).
func (o Outcome) VerifyGroups() int { return o.verifyGroups }

// CriticalGroups returns the number of leading groups on the critical
// resolve path — everything the data access must wait for. With no verify
// region this is NumGroups.
func (o Outcome) CriticalGroups() int { return len(o.ends) - o.verifyGroups }

// HasVerify reports whether the walk carries an overlappable verify suffix.
func (o Outcome) HasVerify() bool { return o.verifyGroups > 0 }

// Latency is a helper for tests: sequential sum over groups of the max of a
// fixed per-request latency, ignoring verify overlap. Identical to
// OverlapLatency with a zero access (nothing to hide the suffix behind).
func (o Outcome) Latency(perRef, walkCache int) int {
	// Every group carries at least one request, so each charges perRef.
	return o.WalkCacheCycles*walkCache + len(o.ends)*perRef
}

// OverlapLatency is the overlap-aware companion of Latency for tests: the
// critical prefix is serial as before, while the verify suffix runs
// concurrently with a data access of the given latency — the walk's exposed
// cost is the prefix plus max(verify, access). With no verify region this
// degenerates to Latency(perRef, walkCache) + access.
func (o Outcome) OverlapLatency(perRef, walkCache, access int) int {
	crit := o.WalkCacheCycles*walkCache + o.CriticalGroups()*perRef
	tail := o.verifyGroups * perRef
	if access > tail {
		tail = access
	}
	return crit + tail
}

// WalkBuf is the reusable walk-trace buffer a walker owns. A walk resets
// it, appends request groups, and snapshots it into an Outcome; in steady
// state (after the buffer has grown to the scheme's maximum trace length)
// no call allocates. WalkBuf is not safe for concurrent use — a walker,
// like the hardware it models, performs one walk at a time.
type WalkBuf struct {
	pas  []addr.PA
	ends []int
	// collapse folds every group into one (ASAP issues its prefetches and
	// the validating radix walk as a single parallel burst).
	collapse bool
	// verifyMark, when non-zero, is 1 + the number of groups sealed before
	// BeginVerify was called: groups from that index on form the verify
	// suffix. Zero (the zero value and the Reset state) means no verify
	// region.
	verifyMark int
}

// Reset clears the buffer for a new walk, retaining capacity.
func (b *WalkBuf) Reset() {
	b.pas = b.pas[:0]
	b.ends = b.ends[:0]
	b.collapse = false
	b.verifyMark = 0
}

// Collapse makes every subsequent group boundary fold into a single
// parallel group, until the next Reset.
func (b *WalkBuf) Collapse() { b.collapse = true }

// BeginVerify seals the critical prefix and marks everything appended from
// here on as the verify suffix — the requests that resolve speculation
// concurrently with the data access (Outcome's verify region). A walk that
// appends nothing after the mark seals with no verify region. BeginVerify
// does not compose with Collapse: a collapsed trace is one parallel group,
// so the mark would select an empty suffix.
func (b *WalkBuf) BeginVerify() {
	b.closeGroup()
	b.verifyMark = len(b.ends) + 1
}

// closeGroup seals the requests appended since the last boundary into a
// group. Empty groups are never recorded.
func (b *WalkBuf) closeGroup() {
	n := len(b.pas)
	last := 0
	if len(b.ends) > 0 {
		last = b.ends[len(b.ends)-1]
	}
	if n == last {
		return
	}
	if b.collapse && len(b.ends) > 0 {
		b.ends[len(b.ends)-1] = n
		return
	}
	b.ends = append(b.ends, n)
}

// Group starts a new sequential group; requests Added afterwards belong to
// it. A group left empty is dropped.
func (b *WalkBuf) Group() { b.closeGroup() }

// Add appends one request to the current group.
func (b *WalkBuf) Add(pa addr.PA) { b.pas = append(b.pas, pa) }

// AddGroup appends one sequential group of parallel requests. The variadic
// slice does not escape, so constant-arity calls stay on the stack.
func (b *WalkBuf) AddGroup(pas ...addr.PA) {
	b.closeGroup()
	b.pas = append(b.pas, pas...)
}

// Outcome seals the trace and returns the walk's read-only view, valid
// until the buffer's next Reset.
func (b *WalkBuf) Outcome(e pte.Entry, found bool, walkCacheCycles int) Outcome {
	b.closeGroup()
	vg := 0
	if b.verifyMark > 0 {
		vg = len(b.ends) - (b.verifyMark - 1)
	}
	return Outcome{Entry: e, Found: found, WalkCacheCycles: walkCacheCycles,
		pas: b.pas, ends: b.ends, verifyGroups: vg}
}

// Walker is a hardware page table walker.
type Walker interface {
	// Name identifies the scheme ("radix", "ecpt", "lvm", ...).
	Name() string
	// Walk translates v in address space asid. The returned Outcome's
	// request trace is valid until the walker's next Walk.
	Walk(asid uint16, v addr.VPN) Outcome
}

// Lookuper is the functional half of a batched walker: Lookup resolves a
// translation without charging walk caches or emitting a memory-request
// trace, so the simulator can fill the TLB before the timing walk runs.
// Walkers record a per-VPN walk plan during Lookup; a following WalkBatch
// over the same (asid, vpn) sequence replays the recorded plans, so each
// table traversal happens exactly once per miss.
type Lookuper interface {
	Lookup(asid uint16, v addr.VPN) (pte.Entry, bool)
}

// BatchWalker extends Walker with a batched seam: one call walks a whole
// miss batch, amortizing per-walk dispatch and keeping walker scratch and
// walk caches hot. Implementations must preserve per-access outcome
// ordering and produce, for each vpns[i], exactly the walk-cache operations
// and request trace the scalar Walk would — slot i's Outcome views
// bufs.Buf(i) and stays valid until the next WalkBatch.
type BatchWalker interface {
	Walker
	WalkBatch(asid uint16, vpns []addr.VPN, bufs *WalkBatchBuf)
}

// WalkBatchBuf holds the per-slot walk buffers and sealed outcomes of one
// batched walk. The caller owns one and passes it to WalkBatch; slots are
// reused across batches, so in steady state no call allocates.
type WalkBatchBuf struct {
	bufs []WalkBuf
	outs []Outcome
}

// Reset prepares n slots for a new batch, retaining per-slot capacity.
func (b *WalkBatchBuf) Reset(n int) {
	for len(b.bufs) < n {
		//lint:allow hotalloc slot slices grow to the batch size once, then recycle
		b.bufs = append(b.bufs, WalkBuf{})
		//lint:allow hotalloc slot slices grow to the batch size once, then recycle
		b.outs = append(b.outs, Outcome{})
	}
	for i := 0; i < n; i++ {
		b.bufs[i].Reset()
	}
}

// Buf returns slot i's walk buffer for the walker to fill.
func (b *WalkBatchBuf) Buf(i int) *WalkBuf { return &b.bufs[i] }

// SetOutcome seals slot i's result.
func (b *WalkBatchBuf) SetOutcome(i int, o Outcome) { b.outs[i] = o }

// Outcome returns slot i's sealed result, valid until the next Reset.
func (b *WalkBatchBuf) Outcome(i int) Outcome { return b.outs[i] }

// WalkSerial adapts any Walker to the WalkBatch seam by looping Walk and
// copying each trace into its slot, so schemes can adopt native batched
// walks incrementally.
func WalkSerial(w Walker, asid uint16, vpns []addr.VPN, bufs *WalkBatchBuf) {
	bufs.Reset(len(vpns))
	for i, v := range vpns {
		out := w.Walk(asid, v)
		b := &bufs.bufs[i]
		//lint:allow hotalloc appends grow each slot to the scheme's max trace once
		b.pas = append(b.pas[:0], out.pas...)
		//lint:allow hotalloc appends grow each slot to the scheme's max trace once
		b.ends = append(b.ends[:0], out.ends...)
		bufs.outs[i] = Outcome{
			Entry:           out.Entry,
			Found:           out.Found,
			WalkCacheCycles: out.WalkCacheCycles,
			pas:             b.pas,
			ends:            b.ends,
			verifyGroups:    out.verifyGroups,
		}
	}
}

// StepCycles is the walk-cache lookup / model-computation latency per step
// (Table 1: 2 cycles for PWC, CWC and LWC).
const StepCycles = 2

// --- Shared LRU engine ------------------------------------------------------

// lruNode is one recency slot: a key plus its intrusive list links. Slots
// are slab-allocated up front; an invalidated slot stays in recency order
// as a tombstone (exactly like the historical in-place valid=false mark)
// until it ages out through the tail.
type lruNode[K comparable] struct {
	key        K
	asid       uint16
	valid      bool
	prev, next int32
}

// lruCache is the fully associative LRU shared by the LWC and PWC: lookup
// is a linear scan over a dense key slice (walk-cache capacities top out at
// 32 entries, so a few cache lines of keys beat a map's hashing and probe
// on the walk hot path), recency updates are O(1) via the intrusive list.
// It reproduces the historical move-to-front slice semantics exactly —
// including tombstoned slots occupying capacity until evicted. None of the
// steady-state operations allocate once the slabs reach the fixed capacity.
type lruCache[K comparable] struct {
	keys       []K          // dense scan target, parallel to nodes
	nodes      []lruNode[K] // recency links + validity; len mirrors keys
	head, tail int32        // recency list: head = MRU, tail = LRU
	capacity   int
	// missKey memoizes the last failed find: the walk-path pattern is
	// lookup-miss immediately followed by insert of the same key, and the
	// memo lets that insert skip its duplicate-detection rescan. Any insert
	// clears it (the only operation that can add a key).
	missKey   K
	missValid bool
}

func newLRU[K comparable](capacity int) lruCache[K] {
	return lruCache[K]{
		keys:     make([]K, 0, max(capacity, 0)),
		nodes:    make([]lruNode[K], 0, max(capacity, 0)),
		head:     -1,
		tail:     -1,
		capacity: capacity,
	}
}

// find returns the slab index of the valid entry for key, or -1 (recording
// the miss memo). At most one valid slot carries a given key (insert
// tombstones duplicates).
func (c *lruCache[K]) find(key K) int32 {
	for i, k := range c.keys {
		if k == key && c.nodes[i].valid {
			return int32(i)
		}
	}
	c.missKey = key
	c.missValid = true
	return -1
}

func (c *lruCache[K]) unlink(i int32) {
	n := c.nodes[i]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *lruCache[K]) pushFront(i int32) {
	c.nodes[i].prev = -1
	c.nodes[i].next = c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// lookup probes for a key; on hit the slot moves to MRU.
func (c *lruCache[K]) lookup(key K) bool {
	i := c.find(key)
	if i < 0 {
		return false
	}
	if i != c.head {
		c.unlink(i)
		c.pushFront(i)
	}
	return true
}

// insert places a key at MRU, consuming one recency slot exactly as the
// historical shift-down did: below capacity the slab grows, at capacity the
// tail slot — LRU entry or aged tombstone — is evicted and reused. A
// duplicate insert tombstones the older copy first; observationally
// identical to the old duplicate-in-slice behavior, where the newer copy
// always sat closer to MRU (only it could hit) and the older one aged out
// through the tail.
func (c *lruCache[K]) insert(key K, asid uint16) {
	if c.capacity <= 0 {
		return
	}
	// Skip the duplicate rescan when a find for this exact key just missed
	// (the universal walk-path sequence); no insert happened in between, so
	// the key is still absent.
	if !(c.missValid && c.missKey == key) {
		if old := c.find(key); old >= 0 {
			c.nodes[old].valid = false
		}
	}
	c.missValid = false
	var i int32
	if len(c.nodes) < c.capacity {
		//lint:allow hotalloc append bounded by capacity; nodes fill during warmup then recycle via LRU tail
		c.nodes = append(c.nodes, lruNode[K]{})
		//lint:allow hotalloc append bounded by capacity; keys fill during warmup then recycle via LRU tail
		c.keys = append(c.keys, key)
		i = int32(len(c.nodes) - 1)
	} else {
		i = c.tail
		c.unlink(i)
	}
	c.keys[i] = key
	c.nodes[i] = lruNode[K]{key: key, asid: asid, valid: true, prev: -1, next: -1}
	c.pushFront(i)
}

// invalidate tombstones one key: the slot keeps its recency position (it
// still ages out through the tail) but can no longer hit.
func (c *lruCache[K]) invalidate(key K) {
	if i := c.find(key); i >= 0 {
		c.nodes[i].valid = false
	}
}

// flushASID tombstones every entry of one address space. Flushes are rare
// control events (process exit, OS retrain), never on the walk path.
func (c *lruCache[K]) flushASID(asid uint16) {
	for i := range c.nodes {
		if c.nodes[i].valid && c.nodes[i].asid == asid {
			c.nodes[i].valid = false
		}
	}
}

// --- LVM walk cache -------------------------------------------------------

// lwcKey identifies one cached learned-index node (Fig. 8): the 16-byte
// model's (ASID, level, offset) identity.
type lwcKey struct {
	asid          uint16
	level, offset int
}

// LWC is LVM's fully associative walk cache. Per §4.6.2 it stores
// individual models on demand, is ASID-tagged (no flush on context switch),
// and is flushed per-entry only when the OS retrains a node. Lookup and
// Insert are O(1).
type LWC struct {
	lru lruCache[lwcKey]

	hits, misses stats.Counter
}

// NewLWC creates an LWC with the given entry count (Table 1: 16).
func NewLWC(entries int) *LWC {
	return &LWC{lru: newLRU[lwcKey](entries)}
}

// Lookup probes for a node; on hit the entry moves to MRU.
func (c *LWC) Lookup(asid uint16, level, offset int) bool {
	if c.lru.lookup(lwcKey{asid, level, offset}) {
		c.hits.Inc()
		return true
	}
	c.misses.Inc()
	return false
}

// Insert caches a node fetched from memory, evicting the LRU entry.
func (c *LWC) Insert(asid uint16, level, offset int) {
	c.lru.insert(lwcKey{asid, level, offset}, asid)
}

// FlushNode drops one node (the OS does this after retraining, §5.2).
func (c *LWC) FlushNode(asid uint16, level, offset int) {
	c.lru.invalidate(lwcKey{asid, level, offset})
}

// FlushASID drops all nodes of one address space (used on index rebuild).
func (c *LWC) FlushASID(asid uint16) { c.lru.flushASID(asid) }

// HitRate returns hits / lookups.
func (c *LWC) HitRate() float64 {
	return stats.Ratio(c.hits.Value(), c.hits.Value()+c.misses.Value())
}

// Hits returns the hit count.
func (c *LWC) Hits() uint64 { return c.hits.Value() }

// Misses returns the miss count.
func (c *LWC) Misses() uint64 { return c.misses.Value() }

// SizeBytes returns the SRAM capacity implied by the configuration: 16
// bytes of model per entry (plus tags, accounted in internal/hwarea).
func (c *LWC) SizeBytes() int { return c.lru.capacity * 16 }

// Snapshot implements metrics.Source: the walk cache's hit/miss counters.
func (c *LWC) Snapshot() metrics.Set {
	var s metrics.Set
	s.Counter("hits", c.hits.Value())
	s.Counter("misses", c.misses.Value())
	return s
}

var _ metrics.Source = (*LWC)(nil)

// --- Radix page walk cache -------------------------------------------------

// pwcKey is the (ASID, VPN-prefix) identity of one upper-level entry.
type pwcKey struct {
	asid   uint16
	prefix uint64
}

// PWC is one level of a radix page walk cache: a fully associative cache of
// upper-level entries keyed by the VPN prefix that indexes that level.
// Lookup and Insert are O(1).
type PWC struct {
	name string
	lru  lruCache[pwcKey]

	hits, misses stats.Counter
}

// NewPWC creates one PWC level with the given capacity (Table 1: 32
// entries per level, 3 levels).
func NewPWC(name string, entries int) *PWC {
	return &PWC{name: name, lru: newLRU[pwcKey](entries)}
}

// Lookup probes for the upper-level entry covering the VPN prefix.
func (c *PWC) Lookup(asid uint16, prefix uint64) bool {
	if c.lru.lookup(pwcKey{asid, prefix}) {
		c.hits.Inc()
		return true
	}
	c.misses.Inc()
	return false
}

// Insert caches an upper-level entry.
func (c *PWC) Insert(asid uint16, prefix uint64) {
	c.lru.insert(pwcKey{asid, prefix}, asid)
}

// Invalidate drops one prefix (on unmap of upper-level structures).
func (c *PWC) Invalidate(asid uint16, prefix uint64) {
	c.lru.invalidate(pwcKey{asid, prefix})
}

// FlushASID drops all entries of one address space (process exit).
func (c *PWC) FlushASID(asid uint16) { c.lru.flushASID(asid) }

// HitRate returns hits / lookups.
func (c *PWC) HitRate() float64 {
	return stats.Ratio(c.hits.Value(), c.hits.Value()+c.misses.Value())
}

// MissRate returns misses / lookups.
func (c *PWC) MissRate() float64 {
	return stats.Ratio(c.misses.Value(), c.hits.Value()+c.misses.Value())
}

// Name returns the level label ("pml4e", "pdpte", "pde").
func (c *PWC) Name() string { return c.name }

// Snapshot implements metrics.Source: the level's hit/miss counters. The
// owning walker namespaces them by the level's Name.
func (c *PWC) Snapshot() metrics.Set {
	var s metrics.Set
	s.Counter("hits", c.hits.Value())
	s.Counter("misses", c.misses.Value())
	return s
}

var _ metrics.Source = (*PWC)(nil)
