package mmu

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/pte"
)

func TestOutcomeRefs(t *testing.T) {
	var b WalkBuf
	b.AddGroup(1)
	b.AddGroup(2, 3, 4)
	o := b.Outcome(0, false, 0)
	if o.Refs() != 4 {
		t.Errorf("refs = %d", o.Refs())
	}
	if o.NumGroups() != 2 {
		t.Errorf("groups = %d", o.NumGroups())
	}
	if g := o.Group(1); len(g) != 3 || g[0] != 2 || g[2] != 4 {
		t.Errorf("group 1 = %v", g)
	}
	if all := o.AllRefs(); len(all) != 4 || all[0] != addr.PA(1) {
		t.Errorf("all refs = %v", all)
	}
}

// TestWalkBufGoldenTraces replays golden walk traces through WalkBuf and
// checks the flat representation reproduces the old grouped semantics
// ([][]addr.PA) exactly: group count, group membership, ref count, and the
// latency formula over groups.
func TestWalkBufGoldenTraces(t *testing.T) {
	cases := []struct {
		name     string
		build    func(b *WalkBuf)
		groups   [][]addr.PA
		collapse bool
	}{
		{"empty", func(b *WalkBuf) {}, nil, false},
		{"radix-cold", func(b *WalkBuf) {
			for _, pa := range []addr.PA{0x1000, 0x2000, 0x3000, 0x4000} {
				b.AddGroup(pa)
			}
		}, [][]addr.PA{{0x1000}, {0x2000}, {0x3000}, {0x4000}}, false},
		{"ecpt-warm", func(b *WalkBuf) {
			b.Group()
			b.Add(0x10)
			b.Add(0x20)
			b.Add(0x30)
		}, [][]addr.PA{{0x10, 0x20, 0x30}}, false},
		{"ecpt-cold", func(b *WalkBuf) {
			b.AddGroup(0x99) // CWT fetch
			b.Group()
			b.Add(0x10)
			b.Add(0x20)
		}, [][]addr.PA{{0x99}, {0x10, 0x20}}, false},
		{"empty-group-dropped", func(b *WalkBuf) {
			b.Group()
			b.Group()
			b.AddGroup(0x40)
		}, [][]addr.PA{{0x40}}, false},
		{"asap-collapsed", func(b *WalkBuf) {
			b.Collapse()
			b.Add(0x1) // prefetch PT
			b.Add(0x2) // prefetch PMD
			// radix walk composed in: each AddGroup folds into the burst
			b.AddGroup(0x3)
			b.AddGroup(0x4)
		}, [][]addr.PA{{0x1, 0x2, 0x3, 0x4}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b WalkBuf
			// Exercise reuse: dirty the buffer, then Reset must restore a
			// clean trace.
			b.AddGroup(0xdead, 0xbeef)
			b.Reset()
			tc.build(&b)
			o := b.Outcome(0, true, 3)

			wantRefs := 0
			for _, g := range tc.groups {
				wantRefs += len(g)
			}
			if o.Refs() != wantRefs {
				t.Errorf("refs = %d, want %d", o.Refs(), wantRefs)
			}
			if o.NumGroups() != len(tc.groups) {
				t.Fatalf("groups = %d, want %d", o.NumGroups(), len(tc.groups))
			}
			for gi, want := range tc.groups {
				got := o.Group(gi)
				if len(got) != len(want) {
					t.Fatalf("group %d = %v, want %v", gi, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("group %d[%d] = %#x, want %#x", gi, i, got[i], want[i])
					}
				}
			}
			// Old latency semantics: WalkCacheCycles·walkCache + groups·perRef.
			if got, want := o.Latency(10, 2), 3*2+len(tc.groups)*10; got != want {
				t.Errorf("latency = %d, want %d", got, want)
			}
		})
	}
}

// TestWalkBufVerifyRegion checks the verify seam: BeginVerify partitions the
// sealed trace into a critical prefix and a verify suffix without changing
// the trace itself — group count, membership, and the plain Latency formula
// are exactly what the same trace produces with no mark.
func TestWalkBufVerifyRegion(t *testing.T) {
	cases := []struct {
		name         string
		build        func(b *WalkBuf)
		groups       [][]addr.PA
		verifyGroups int
	}{
		{"no-mark", func(b *WalkBuf) {
			b.AddGroup(0x1000)
			b.AddGroup(0x2000)
		}, [][]addr.PA{{0x1000}, {0x2000}}, 0},
		{"victima-fill", func(b *WalkBuf) {
			b.AddGroup(0x10) // store probe (miss)
			b.AddGroup(0x1000)
			b.AddGroup(0x2000)
			b.BeginVerify()
			b.AddGroup(0x10) // store fill, off the critical path
		}, [][]addr.PA{{0x10}, {0x1000}, {0x2000}, {0x10}}, 1},
		{"revelator-verify-walk", func(b *WalkBuf) {
			b.AddGroup(0x8) // speculative hash probe
			b.BeginVerify()
			for _, pa := range []addr.PA{0x1000, 0x2000, 0x3000, 0x4000} {
				b.AddGroup(pa) // full radix verify walk overlaps the access
			}
		}, [][]addr.PA{{0x8}, {0x1000}, {0x2000}, {0x3000}, {0x4000}}, 4},
		{"mark-then-nothing", func(b *WalkBuf) {
			b.AddGroup(0x1000)
			b.BeginVerify()
		}, [][]addr.PA{{0x1000}}, 0},
		{"mark-splits-open-group", func(b *WalkBuf) {
			b.Group()
			b.Add(0x10)
			b.Add(0x20)
			b.BeginVerify()
			b.Add(0x30)
		}, [][]addr.PA{{0x10, 0x20}, {0x30}}, 1},
		{"verify-suffix-grouped", func(b *WalkBuf) {
			b.AddGroup(0x1)
			b.BeginVerify()
			b.Group()
			b.Add(0x2)
			b.Add(0x3)
			b.AddGroup(0x4)
		}, [][]addr.PA{{0x1}, {0x2, 0x3}, {0x4}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b WalkBuf
			// Reuse must clear a previous walk's mark too.
			b.AddGroup(0xdead)
			b.BeginVerify()
			b.AddGroup(0xbeef)
			b.Reset()
			tc.build(&b)
			o := b.Outcome(0, true, 3)

			if o.NumGroups() != len(tc.groups) {
				t.Fatalf("groups = %d, want %d", o.NumGroups(), len(tc.groups))
			}
			for gi, want := range tc.groups {
				got := o.Group(gi)
				if len(got) != len(want) {
					t.Fatalf("group %d = %v, want %v", gi, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("group %d[%d] = %#x, want %#x", gi, i, got[i], want[i])
					}
				}
			}
			if o.VerifyGroups() != tc.verifyGroups {
				t.Errorf("verify groups = %d, want %d", o.VerifyGroups(), tc.verifyGroups)
			}
			if got, want := o.CriticalGroups(), len(tc.groups)-tc.verifyGroups; got != want {
				t.Errorf("critical groups = %d, want %d", got, want)
			}
			if o.HasVerify() != (tc.verifyGroups > 0) {
				t.Errorf("has verify = %v, want %v", o.HasVerify(), tc.verifyGroups > 0)
			}
			// The mark never changes the serial latency view.
			if got, want := o.Latency(10, 2), 3*2+len(tc.groups)*10; got != want {
				t.Errorf("latency = %d, want %d", got, want)
			}
		})
	}
}

// TestOverlapLatency pins the overlap formula: critical prefix serial, verify
// suffix charged as max(verify, access).
func TestOverlapLatency(t *testing.T) {
	build := func(critical, verify int) Outcome {
		var b WalkBuf
		for i := 0; i < critical; i++ {
			b.AddGroup(addr.PA(0x1000 * (i + 1)))
		}
		if verify > 0 {
			b.BeginVerify()
			for i := 0; i < verify; i++ {
				b.AddGroup(addr.PA(0x9000 * (i + 1)))
			}
		}
		return b.Outcome(0, true, 3)
	}
	const perRef, walkCache = 10, 2
	cases := []struct {
		name             string
		critical, verify int
		access           int
		want             int
	}{
		// No verify region: OverlapLatency ≡ Latency + access, always.
		{"no-verify-zero-access", 4, 0, 0, 3*walkCache + 4*perRef},
		{"no-verify-with-access", 4, 0, 37, 3*walkCache + 4*perRef + 37},
		// Verify fully hidden behind a slower access.
		{"verify-hidden", 1, 1, 50, 3*walkCache + 1*perRef + 50},
		// Verify longer than the access: only the excess is exposed.
		{"verify-exposed", 1, 4, 15, 3*walkCache + 1*perRef + 4*perRef},
		// Equal lengths: no exposure either way.
		{"verify-equal", 2, 2, 2 * perRef, 3*walkCache + 2*perRef + 2*perRef},
		// Zero access degenerates to the serial Latency.
		{"verify-zero-access", 2, 3, 0, 3*walkCache + 5*perRef},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := build(tc.critical, tc.verify)
			if got := o.OverlapLatency(perRef, walkCache, tc.access); got != tc.want {
				t.Errorf("overlap latency = %d, want %d", got, tc.want)
			}
			if tc.verify == 0 {
				if got, want := o.OverlapLatency(perRef, walkCache, tc.access), o.Latency(perRef, walkCache)+tc.access; got != want {
					t.Errorf("no-verify overlap = %d, want Latency+access = %d", got, want)
				}
			}
		})
	}
}

// verifyWalker emits a per-VPN trace with a verify suffix, for exercising
// the WalkSerial adaptation. Fixtures are explicit so slot mix-ups surface
// as value mismatches.
type verifyWalker struct{ buf WalkBuf }

var verifyWalkerFixtures = map[addr.VPN]struct {
	probe addr.PA
	ppn   addr.PPN
}{
	3: {0x3000, 0x33},
	5: {0x5000, 0x55},
	9: {0x9000, 0x99},
}

func (w *verifyWalker) Name() string { return "verify-test" }

func (w *verifyWalker) Walk(asid uint16, v addr.VPN) Outcome {
	fx := verifyWalkerFixtures[v]
	w.buf.Reset()
	w.buf.AddGroup(fx.probe)
	w.buf.BeginVerify()
	w.buf.AddGroup(0x7000, 0x8000)
	return w.buf.Outcome(pte.New(fx.ppn, addr.Page4K), true, StepCycles)
}

// TestWalkSerialVerifyPassthrough checks the serial batch adapter copies the
// verify partition along with the trace: each slot's Outcome must agree with
// the scalar walk on groups, verify split, and overlap latency.
func TestWalkSerialVerifyPassthrough(t *testing.T) {
	w := &verifyWalker{}
	vpns := []addr.VPN{3, 5, 9}
	var bufs WalkBatchBuf
	mmuWalkSerialTwice(t, w, vpns, &bufs)
}

// mmuWalkSerialTwice runs WalkSerial twice over the same batch (slot reuse
// must not leak a previous verify mark) and checks every slot both times.
func mmuWalkSerialTwice(t *testing.T, w Walker, vpns []addr.VPN, bufs *WalkBatchBuf) {
	t.Helper()
	for round := 0; round < 2; round++ {
		WalkSerial(w, 1, vpns, bufs)
		for i, v := range vpns {
			got := bufs.Outcome(i)
			want := w.Walk(1, v)
			if got.NumGroups() != want.NumGroups() || got.VerifyGroups() != want.VerifyGroups() {
				t.Fatalf("round %d slot %d: groups %d/%d, want %d/%d",
					round, i, got.NumGroups(), got.VerifyGroups(), want.NumGroups(), want.VerifyGroups())
			}
			if got.Entry != want.Entry || got.Found != want.Found {
				t.Errorf("round %d slot %d: entry %v/%v, want %v/%v",
					round, i, got.Entry, got.Found, want.Entry, want.Found)
			}
			if g, ww := got.OverlapLatency(10, 2, 15), want.OverlapLatency(10, 2, 15); g != ww {
				t.Errorf("round %d slot %d: overlap latency %d, want %d", round, i, g, ww)
			}
			for gi := 0; gi < want.NumGroups(); gi++ {
				gg, wg := got.Group(gi), want.Group(gi)
				if len(gg) != len(wg) {
					t.Fatalf("round %d slot %d group %d: %v, want %v", round, i, gi, gg, wg)
				}
				for j := range wg {
					if gg[j] != wg[j] {
						t.Errorf("round %d slot %d group %d[%d]: %#x, want %#x",
							round, i, gi, j, gg[j], wg[j])
					}
				}
			}
		}
	}
}

func TestLWCHitMiss(t *testing.T) {
	c := NewLWC(16)
	if c.Lookup(1, 1, 0) {
		t.Fatal("empty LWC hit")
	}
	c.Insert(1, 1, 0)
	if !c.Lookup(1, 1, 0) {
		t.Fatal("miss after insert")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestLWCASIDTagging(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	if c.Lookup(2, 1, 0) {
		t.Error("LWC leaked across ASIDs: context switch safety broken")
	}
	if !c.Lookup(1, 1, 0) {
		t.Error("original ASID lost — no flush should be needed on context switch")
	}
}

func TestLWCEviction(t *testing.T) {
	c := NewLWC(4)
	for i := 0; i < 4; i++ {
		c.Insert(1, 2, i)
	}
	c.Lookup(1, 2, 0) // make node 0 MRU
	c.Insert(1, 2, 9) // evicts LRU (node 1)
	if !c.Lookup(1, 2, 0) {
		t.Error("MRU node evicted")
	}
	if c.Lookup(1, 2, 1) {
		t.Error("LRU node survived")
	}
}

func TestLWCFlushNode(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	c.Insert(1, 2, 3)
	c.FlushNode(1, 2, 3)
	if c.Lookup(1, 2, 3) {
		t.Error("flushed node hit (stale model after retrain)")
	}
	if !c.Lookup(1, 1, 0) {
		t.Error("unrelated node flushed")
	}
}

func TestLWCFlushASID(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	c.Insert(2, 1, 0)
	c.FlushASID(1)
	if c.Lookup(1, 1, 0) {
		t.Error("ASID flush failed")
	}
	if !c.Lookup(2, 1, 0) {
		t.Error("other ASID flushed")
	}
}

func TestLWCSizeBytes(t *testing.T) {
	if got := NewLWC(16).SizeBytes(); got != 256 {
		t.Errorf("16-entry LWC = %d bytes, want 256 (16×16B models)", got)
	}
}

func TestPWC(t *testing.T) {
	c := NewPWC("pde", 32)
	if c.Lookup(1, 0x123) {
		t.Fatal("empty PWC hit")
	}
	c.Insert(1, 0x123)
	if !c.Lookup(1, 0x123) {
		t.Fatal("miss after insert")
	}
	if c.Lookup(2, 0x123) {
		t.Error("PWC leaked across ASIDs")
	}
	c.Invalidate(1, 0x123)
	if c.Lookup(1, 0x123) {
		t.Error("invalidated prefix hit")
	}
	if c.Name() != "pde" {
		t.Errorf("name = %q", c.Name())
	}
	if c.MissRate()+c.HitRate() != 1 {
		t.Errorf("rates do not sum to 1: %v + %v", c.MissRate(), c.HitRate())
	}
}
