package mmu

import (
	"testing"

	"lvm/internal/addr"
)

func TestOutcomeRefs(t *testing.T) {
	var b WalkBuf
	b.AddGroup(1)
	b.AddGroup(2, 3, 4)
	o := b.Outcome(0, false, 0)
	if o.Refs() != 4 {
		t.Errorf("refs = %d", o.Refs())
	}
	if o.NumGroups() != 2 {
		t.Errorf("groups = %d", o.NumGroups())
	}
	if g := o.Group(1); len(g) != 3 || g[0] != 2 || g[2] != 4 {
		t.Errorf("group 1 = %v", g)
	}
	if all := o.AllRefs(); len(all) != 4 || all[0] != addr.PA(1) {
		t.Errorf("all refs = %v", all)
	}
}

// TestWalkBufGoldenTraces replays golden walk traces through WalkBuf and
// checks the flat representation reproduces the old grouped semantics
// ([][]addr.PA) exactly: group count, group membership, ref count, and the
// latency formula over groups.
func TestWalkBufGoldenTraces(t *testing.T) {
	cases := []struct {
		name     string
		build    func(b *WalkBuf)
		groups   [][]addr.PA
		collapse bool
	}{
		{"empty", func(b *WalkBuf) {}, nil, false},
		{"radix-cold", func(b *WalkBuf) {
			for _, pa := range []addr.PA{0x1000, 0x2000, 0x3000, 0x4000} {
				b.AddGroup(pa)
			}
		}, [][]addr.PA{{0x1000}, {0x2000}, {0x3000}, {0x4000}}, false},
		{"ecpt-warm", func(b *WalkBuf) {
			b.Group()
			b.Add(0x10)
			b.Add(0x20)
			b.Add(0x30)
		}, [][]addr.PA{{0x10, 0x20, 0x30}}, false},
		{"ecpt-cold", func(b *WalkBuf) {
			b.AddGroup(0x99) // CWT fetch
			b.Group()
			b.Add(0x10)
			b.Add(0x20)
		}, [][]addr.PA{{0x99}, {0x10, 0x20}}, false},
		{"empty-group-dropped", func(b *WalkBuf) {
			b.Group()
			b.Group()
			b.AddGroup(0x40)
		}, [][]addr.PA{{0x40}}, false},
		{"asap-collapsed", func(b *WalkBuf) {
			b.Collapse()
			b.Add(0x1) // prefetch PT
			b.Add(0x2) // prefetch PMD
			// radix walk composed in: each AddGroup folds into the burst
			b.AddGroup(0x3)
			b.AddGroup(0x4)
		}, [][]addr.PA{{0x1, 0x2, 0x3, 0x4}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b WalkBuf
			// Exercise reuse: dirty the buffer, then Reset must restore a
			// clean trace.
			b.AddGroup(0xdead, 0xbeef)
			b.Reset()
			tc.build(&b)
			o := b.Outcome(0, true, 3)

			wantRefs := 0
			for _, g := range tc.groups {
				wantRefs += len(g)
			}
			if o.Refs() != wantRefs {
				t.Errorf("refs = %d, want %d", o.Refs(), wantRefs)
			}
			if o.NumGroups() != len(tc.groups) {
				t.Fatalf("groups = %d, want %d", o.NumGroups(), len(tc.groups))
			}
			for gi, want := range tc.groups {
				got := o.Group(gi)
				if len(got) != len(want) {
					t.Fatalf("group %d = %v, want %v", gi, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("group %d[%d] = %#x, want %#x", gi, i, got[i], want[i])
					}
				}
			}
			// Old latency semantics: WalkCacheCycles·walkCache + groups·perRef.
			if got, want := o.Latency(10, 2), 3*2+len(tc.groups)*10; got != want {
				t.Errorf("latency = %d, want %d", got, want)
			}
		})
	}
}

func TestLWCHitMiss(t *testing.T) {
	c := NewLWC(16)
	if c.Lookup(1, 1, 0) {
		t.Fatal("empty LWC hit")
	}
	c.Insert(1, 1, 0)
	if !c.Lookup(1, 1, 0) {
		t.Fatal("miss after insert")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestLWCASIDTagging(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	if c.Lookup(2, 1, 0) {
		t.Error("LWC leaked across ASIDs: context switch safety broken")
	}
	if !c.Lookup(1, 1, 0) {
		t.Error("original ASID lost — no flush should be needed on context switch")
	}
}

func TestLWCEviction(t *testing.T) {
	c := NewLWC(4)
	for i := 0; i < 4; i++ {
		c.Insert(1, 2, i)
	}
	c.Lookup(1, 2, 0) // make node 0 MRU
	c.Insert(1, 2, 9) // evicts LRU (node 1)
	if !c.Lookup(1, 2, 0) {
		t.Error("MRU node evicted")
	}
	if c.Lookup(1, 2, 1) {
		t.Error("LRU node survived")
	}
}

func TestLWCFlushNode(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	c.Insert(1, 2, 3)
	c.FlushNode(1, 2, 3)
	if c.Lookup(1, 2, 3) {
		t.Error("flushed node hit (stale model after retrain)")
	}
	if !c.Lookup(1, 1, 0) {
		t.Error("unrelated node flushed")
	}
}

func TestLWCFlushASID(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	c.Insert(2, 1, 0)
	c.FlushASID(1)
	if c.Lookup(1, 1, 0) {
		t.Error("ASID flush failed")
	}
	if !c.Lookup(2, 1, 0) {
		t.Error("other ASID flushed")
	}
}

func TestLWCSizeBytes(t *testing.T) {
	if got := NewLWC(16).SizeBytes(); got != 256 {
		t.Errorf("16-entry LWC = %d bytes, want 256 (16×16B models)", got)
	}
}

func TestPWC(t *testing.T) {
	c := NewPWC("pde", 32)
	if c.Lookup(1, 0x123) {
		t.Fatal("empty PWC hit")
	}
	c.Insert(1, 0x123)
	if !c.Lookup(1, 0x123) {
		t.Fatal("miss after insert")
	}
	if c.Lookup(2, 0x123) {
		t.Error("PWC leaked across ASIDs")
	}
	c.Invalidate(1, 0x123)
	if c.Lookup(1, 0x123) {
		t.Error("invalidated prefix hit")
	}
	if c.Name() != "pde" {
		t.Errorf("name = %q", c.Name())
	}
	if c.MissRate()+c.HitRate() != 1 {
		t.Errorf("rates do not sum to 1: %v + %v", c.MissRate(), c.HitRate())
	}
}
