package mmu

import (
	"testing"

	"lvm/internal/addr"
)

func TestOutcomeRefs(t *testing.T) {
	o := Outcome{Groups: [][]addr.PA{{1}, {2, 3, 4}}}
	if o.Refs() != 4 {
		t.Errorf("refs = %d", o.Refs())
	}
}

func TestLWCHitMiss(t *testing.T) {
	c := NewLWC(16)
	if c.Lookup(1, 1, 0) {
		t.Fatal("empty LWC hit")
	}
	c.Insert(1, 1, 0)
	if !c.Lookup(1, 1, 0) {
		t.Fatal("miss after insert")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestLWCASIDTagging(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	if c.Lookup(2, 1, 0) {
		t.Error("LWC leaked across ASIDs: context switch safety broken")
	}
	if !c.Lookup(1, 1, 0) {
		t.Error("original ASID lost — no flush should be needed on context switch")
	}
}

func TestLWCEviction(t *testing.T) {
	c := NewLWC(4)
	for i := 0; i < 4; i++ {
		c.Insert(1, 2, i)
	}
	c.Lookup(1, 2, 0) // make node 0 MRU
	c.Insert(1, 2, 9) // evicts LRU (node 1)
	if !c.Lookup(1, 2, 0) {
		t.Error("MRU node evicted")
	}
	if c.Lookup(1, 2, 1) {
		t.Error("LRU node survived")
	}
}

func TestLWCFlushNode(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	c.Insert(1, 2, 3)
	c.FlushNode(1, 2, 3)
	if c.Lookup(1, 2, 3) {
		t.Error("flushed node hit (stale model after retrain)")
	}
	if !c.Lookup(1, 1, 0) {
		t.Error("unrelated node flushed")
	}
}

func TestLWCFlushASID(t *testing.T) {
	c := NewLWC(16)
	c.Insert(1, 1, 0)
	c.Insert(2, 1, 0)
	c.FlushASID(1)
	if c.Lookup(1, 1, 0) {
		t.Error("ASID flush failed")
	}
	if !c.Lookup(2, 1, 0) {
		t.Error("other ASID flushed")
	}
}

func TestLWCSizeBytes(t *testing.T) {
	if got := NewLWC(16).SizeBytes(); got != 256 {
		t.Errorf("16-entry LWC = %d bytes, want 256 (16×16B models)", got)
	}
}

func TestPWC(t *testing.T) {
	c := NewPWC("pde", 32)
	if c.Lookup(1, 0x123) {
		t.Fatal("empty PWC hit")
	}
	c.Insert(1, 0x123)
	if !c.Lookup(1, 0x123) {
		t.Fatal("miss after insert")
	}
	if c.Lookup(2, 0x123) {
		t.Error("PWC leaked across ASIDs")
	}
	c.Invalidate(1, 0x123)
	if c.Lookup(1, 0x123) {
		t.Error("invalidated prefix hit")
	}
	if c.Name() != "pde" {
		t.Errorf("name = %q", c.Name())
	}
	if c.MissRate()+c.HitRate() != 1 {
		t.Errorf("rates do not sum to 1: %v + %v", c.MissRate(), c.HitRate())
	}
}
