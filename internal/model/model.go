// Package model implements the training-side machinery of LVM's learned
// index: least-squares linear models over (key, position) pairs with
// residual error bounds, and the greedy spline-point count that the cost
// model uses to estimate how many children a node needs (paper §4.2.3).
//
// Training runs in floating point in the OS; trained parameters are
// quantized to Q44.20 fixed point (internal/fixed) before being installed
// in a node, because the hardware walker computes only in fixed point
// (paper §4.5).
package model

import (
	"lvm/internal/fixed"
)

// Linear is a trained linear model y = Slope·x + Intercept together with
// the residual bounds observed during training. MinErr/MaxErr are the
// extreme values of (actual − predicted), so the true position of a key is
// always inside [predict+MinErr, predict+MaxErr] — the bounded-search window
// used on a misprediction (paper §4.3.3).
type Linear struct {
	Slope     float64
	Intercept float64
	MinErr    float64
	MaxErr    float64
}

// Predict evaluates the model in floating point (training-side use only).
func (l Linear) Predict(x float64) float64 { return l.Slope*x + l.Intercept }

// Quantize converts the trained parameters to the fixed-point form stored
// in a 16-byte node.
func (l Linear) Quantize() (slope, intercept fixed.Q) {
	return fixed.FromFloat(l.Slope), fixed.FromFloat(l.Intercept)
}

// MaxAbsErr returns the largest absolute residual.
func (l Linear) MaxAbsErr() float64 {
	a, b := l.MinErr, l.MaxErr
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// Fit performs least-squares regression of positions onto keys. Keys must
// be sorted ascending (they are VPNs from a sorted address space). The keys
// are centered on keys[0] internally for numerical stability; the returned
// intercept is already re-expressed in absolute key coordinates.
func Fit(keys []uint64, positions []float64) Linear {
	n := len(keys)
	if n != len(positions) {
		panic("model: keys and positions length mismatch")
	}
	if n == 0 {
		return Linear{}
	}
	if n == 1 {
		return Linear{Slope: 0, Intercept: positions[0]}
	}
	base := float64(keys[0])
	var sx, sy, sxx, sxy float64
	for i, k := range keys {
		x := float64(k) - base
		y := positions[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	var slope float64
	if den != 0 {
		slope = (fn*sxy - sx*sy) / den
	}
	interceptCentered := (sy - slope*sx) / fn
	l := Linear{
		Slope:     slope,
		Intercept: interceptCentered - slope*base,
	}
	// Residual bounds.
	l.MinErr, l.MaxErr = residualBounds(l, keys, positions)
	return l
}

// FitRanks fits sorted keys to their ranks 0..n−1, the CDF approximation
// every LVM node learns (output range scaling is applied by the caller).
func FitRanks(keys []uint64) Linear {
	positions := make([]float64, len(keys))
	for i := range positions {
		positions[i] = float64(i)
	}
	return Fit(keys, positions)
}

// FitEndpoints fits a line through the first and last (key, position)
// pairs. Internal nodes use this: the relationship between a node's key
// range and its evenly divided children is exactly linear, so heavyweight
// regression is unnecessary (paper §4.3.2).
func FitEndpoints(loKey, hiKey uint64, loPos, hiPos float64) Linear {
	if hiKey == loKey {
		return Linear{Slope: 0, Intercept: loPos}
	}
	slope := (hiPos - loPos) / (float64(hiKey) - float64(loKey))
	return Linear{
		Slope:     slope,
		Intercept: loPos - slope*float64(loKey),
	}
}

func residualBounds(l Linear, keys []uint64, positions []float64) (minErr, maxErr float64) {
	for i, k := range keys {
		r := positions[i] - l.Predict(float64(k))
		if r < minErr {
			minErr = r
		}
		if r > maxErr {
			maxErr = r
		}
	}
	return minErr, maxErr
}

// SplinePoints counts the number of spline points needed to approximate the
// CDF of the sorted keys within maxErr positions, using the single-pass
// greedy corridor algorithm of RadixSpline. The count estimates the
// complexity of the key distribution: LVM's cost model uses it as the
// starting guess for a node's child count and evaluates ±2 around it
// (paper §4.2.3).
func SplinePoints(keys []uint64, maxErr float64) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	if n <= 2 {
		return 1
	}
	if maxErr < 0 {
		maxErr = 0
	}
	points := 1
	// Corridor state: the current spline segment starts at (x0, y0); the
	// feasible slope range [loSlope, hiSlope] keeps all intermediate keys
	// within ±maxErr of the line.
	x0, y0 := float64(keys[0]), 0.0
	loSlope, hiSlope := -1e300, 1e300
	for i := 1; i < n; i++ {
		x, y := float64(keys[i]), float64(i)
		dx := x - x0
		if dx <= 0 {
			// Duplicate key: no constraint tightening possible.
			continue
		}
		lo := (y - maxErr - y0) / dx
		hi := (y + maxErr - y0) / dx
		if lo > hiSlope || hi < loSlope {
			// The corridor collapsed: place a spline point here and
			// start a new segment anchored at the current key.
			points++
			x0, y0 = x, y
			loSlope, hiSlope = -1e300, 1e300
			continue
		}
		if lo > loSlope {
			loSlope = lo
		}
		if hi < hiSlope {
			hiSlope = hi
		}
	}
	return points
}
