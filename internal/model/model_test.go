package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitPerfectLine(t *testing.T) {
	// VPNs 100..150 mapping to positions 0..50: the paper's heap example
	// y = 1·x − 100 (Fig. 4 uses −97 with a different origin).
	keys := make([]uint64, 51)
	for i := range keys {
		keys[i] = uint64(100 + i)
	}
	l := FitRanks(keys)
	if math.Abs(l.Slope-1) > 1e-9 {
		t.Errorf("slope = %v", l.Slope)
	}
	if math.Abs(l.Intercept+100) > 1e-6 {
		t.Errorf("intercept = %v", l.Intercept)
	}
	if l.MaxAbsErr() > 1e-6 {
		t.Errorf("perfect line must have zero residuals, got %v", l.MaxAbsErr())
	}
}

func TestFitStride(t *testing.T) {
	// Every other page mapped: slope 0.5.
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(1000 + 2*i)
	}
	l := FitRanks(keys)
	if math.Abs(l.Slope-0.5) > 1e-9 {
		t.Errorf("slope = %v", l.Slope)
	}
}

func TestFitLargeVPNsStable(t *testing.T) {
	// Keys near the top of the 48-bit address space must not lose
	// precision (the centering path).
	base := uint64(1)<<36 - 500
	keys := make([]uint64, 400)
	for i := range keys {
		keys[i] = base + uint64(i)
	}
	l := FitRanks(keys)
	if math.Abs(l.Slope-1) > 1e-6 {
		t.Errorf("slope = %v", l.Slope)
	}
	if l.MaxAbsErr() > 1e-3 {
		t.Errorf("residual on exact line = %v", l.MaxAbsErr())
	}
	// Prediction must hit the correct rank after rounding.
	if got := math.Round(l.Predict(float64(base + 123))); got != 123 {
		t.Errorf("predict = %v want 123", got)
	}
}

func TestFitDegenerate(t *testing.T) {
	if l := Fit(nil, nil); l.Slope != 0 || l.Intercept != 0 {
		t.Errorf("empty fit = %+v", l)
	}
	l := Fit([]uint64{42}, []float64{7})
	if l.Slope != 0 || l.Intercept != 7 {
		t.Errorf("single-point fit = %+v", l)
	}
	// All-equal keys: zero denominator path.
	l = Fit([]uint64{5, 5, 5}, []float64{0, 1, 2})
	if l.Slope != 0 {
		t.Errorf("equal-keys slope = %v", l.Slope)
	}
}

func TestFitMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Fit([]uint64{1, 2}, []float64{1})
}

func TestResidualBoundsContainTruth(t *testing.T) {
	// Property: for any key set, every true position lies within
	// [predict+MinErr, predict+MaxErr].
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 0, 500)
	k := uint64(1 << 20)
	for i := 0; i < 500; i++ {
		k += uint64(1 + rng.Intn(50))
		keys = append(keys, k)
	}
	l := FitRanks(keys)
	for i, key := range keys {
		p := l.Predict(float64(key))
		if float64(i) < p+l.MinErr-1e-9 || float64(i) > p+l.MaxErr+1e-9 {
			t.Fatalf("key %d rank %d outside residual bounds [%v, %v] around %v",
				key, i, p+l.MinErr, p+l.MaxErr, p)
		}
	}
}

func TestFitEndpoints(t *testing.T) {
	l := FitEndpoints(100, 200, 0, 10)
	if math.Abs(l.Predict(100)) > 1e-12 {
		t.Errorf("predict(100) = %v", l.Predict(100))
	}
	if math.Abs(l.Predict(200)-10) > 1e-12 {
		t.Errorf("predict(200) = %v", l.Predict(200))
	}
	if math.Abs(l.Predict(150)-5) > 1e-12 {
		t.Errorf("predict(150) = %v", l.Predict(150))
	}
	// Degenerate range.
	l = FitEndpoints(5, 5, 3, 9)
	if l.Slope != 0 || l.Intercept != 3 {
		t.Errorf("degenerate endpoints = %+v", l)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	l := Linear{Slope: 0.01, Intercept: -1}
	s, b := l.Quantize()
	if math.Abs(s.Float()-0.01) > 1e-5 {
		t.Errorf("quantized slope = %v", s.Float())
	}
	if math.Abs(b.Float()+1) > 1e-5 {
		t.Errorf("quantized intercept = %v", b.Float())
	}
}

func TestSplinePointsSequential(t *testing.T) {
	// A perfectly regular space needs a single spline segment.
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = uint64(7777 + i)
	}
	if got := SplinePoints(keys, 1); got != 1 {
		t.Errorf("sequential keys need %d spline points, want 1", got)
	}
}

func TestSplinePointsTwoSegments(t *testing.T) {
	// Two contiguous runs separated by a huge gap (heap vs stack): the
	// corridor must collapse exactly once.
	var keys []uint64
	for i := 0; i < 1000; i++ {
		keys = append(keys, uint64(1000+i))
	}
	for i := 0; i < 1000; i++ {
		keys = append(keys, uint64(1<<30+i))
	}
	got := SplinePoints(keys, 4)
	if got != 2 {
		t.Errorf("two-segment space needs %d spline points, want 2", got)
	}
}

func TestSplinePointsIrregular(t *testing.T) {
	// Random gaps: more spline points than a regular space, fewer with a
	// looser error budget.
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 0, 2000)
	k := uint64(0)
	for i := 0; i < 2000; i++ {
		k += uint64(1 + rng.Intn(1000))
		keys = append(keys, k)
	}
	tight := SplinePoints(keys, 2)
	loose := SplinePoints(keys, 64)
	if tight <= 2 {
		t.Errorf("irregular keys with tight bound: %d points", tight)
	}
	if loose >= tight {
		t.Errorf("loose bound must need fewer points: tight=%d loose=%d", tight, loose)
	}
}

func TestSplinePointsDegenerate(t *testing.T) {
	if SplinePoints(nil, 1) != 0 {
		t.Error("empty keys")
	}
	if SplinePoints([]uint64{1}, 1) != 1 {
		t.Error("single key")
	}
	if SplinePoints([]uint64{1, 9}, 1) != 1 {
		t.Error("two keys are always one segment")
	}
	if SplinePoints([]uint64{4, 4, 4}, 0) != 1 {
		t.Error("duplicate keys must not split segments")
	}
}

func TestQuickSplineMonotoneInError(t *testing.T) {
	// Property: a larger error budget never needs more spline points.
	f := func(raw []uint16, e1, e2 uint8) bool {
		if len(raw) < 3 {
			return true
		}
		keys := make([]uint64, len(raw))
		k := uint64(0)
		for i, r := range raw {
			k += uint64(r) + 1
			keys[i] = k
		}
		lo, hi := float64(e1), float64(e1)+float64(e2)
		return SplinePoints(keys, hi) <= SplinePoints(keys, lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFitResidualsBounded(t *testing.T) {
	// Property: residual bounds always contain every training point.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]uint64, len(raw))
		k := uint64(1000)
		for i, r := range raw {
			k += uint64(r) + 1
			keys[i] = k
		}
		l := FitRanks(keys)
		for i, key := range keys {
			r := float64(i) - l.Predict(float64(key))
			if r < l.MinErr-1e-6 || r > l.MaxErr+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitEndpointsQuantizationExactPowers(t *testing.T) {
	// The internal-node granule snapping depends on slopes 1/(512·2^j) and
	// intercepts lo/(512·2^j) being exact in Q44.20.
	for j := uint(0); j <= 11; j++ {
		g := float64(uint64(512) << j)
		l := Linear{Slope: 1 / g, Intercept: -float64(uint64(1024)<<j) / g}
		s, b := l.Quantize()
		if s.Float() != 1/g {
			t.Fatalf("slope 1/%v not exact: %v", g, s.Float())
		}
		if b.Float() != l.Intercept {
			t.Fatalf("intercept %v not exact: %v", l.Intercept, b.Float())
		}
	}
}
