package oskernel

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/vas"
)

// oracle tracks the ground-truth mapped set for one process during churn.
type oracle map[addr.VPN]bool

func oracleFrom(space *vas.AddressSpace) oracle {
	o := oracle{}
	for _, r := range space.Regions {
		for _, v := range r.Mapped {
			o[v] = true
		}
	}
	return o
}

// TestChurnOracleAllSchemes drives every scheme through thousands of
// interleaved map/unmap operations against two co-resident processes and
// checks the software tables and the hardware walker against a ground-truth
// map after every phase. This is the integration-level equivalent of the
// per-structure quick tests: it exercises LVM's insert/free/retrain paths,
// ECPT's cuckoo displacement and resize, and radix's table allocation all
// through the one interface the OS actually uses.
func TestChurnOracleAllSchemes(t *testing.T) {
	for _, scheme := range AllSchemes() {
		t.Run(string(scheme), func(t *testing.T) {
			mem := phys.New(512 << 20)
			sys := NewSystem(mem, scheme)
			procs := map[uint16]oracle{}
			heaps := map[uint16]*vas.Region{}
			for _, asid := range []uint16{1, 2} {
				space := smallSpace(int64(asid) * 11)
				if _, err := sys.Launch(asid, space, false); err != nil {
					t.Fatalf("launch %d: %v", asid, err)
				}
				procs[asid] = oracleFrom(space)
				heaps[asid] = heapOf(space)
			}

			rng := rand.New(rand.NewSource(99))
			for op := 0; op < 4000; op++ {
				asid := uint16(1 + rng.Intn(2))
				o, heap := procs[asid], heaps[asid]
				v := heap.Base + addr.VPN(rng.Intn(heap.Span))
				switch {
				case rng.Intn(3) == 0 && o[v]: // unmap a mapped page
					if !sys.UnmapPage(asid, v) {
						t.Fatalf("op %d: unmap of mapped %#x failed", op, uint64(v))
					}
					delete(o, v)
				case !o[v]: // map a hole
					if err := sys.MapPage(asid, v, addr.Page4K); err != nil {
						t.Fatalf("op %d: map %#x: %v", op, uint64(v), err)
					}
					o[v] = true
				default: // lookup an existing page mid-churn
					if _, ok := sys.SoftwareLookup(asid, v); !ok {
						t.Fatalf("op %d: mapped %#x not found mid-churn", op, uint64(v))
					}
				}
			}

			// Full reconciliation: software tables, hardware walker, and
			// oracle must agree exactly — presence and absence.
			w := sys.Walker()
			for asid, o := range procs {
				heap := heaps[asid]
				for i := 0; i < heap.Span; i += 7 {
					v := heap.Base + addr.VPN(i)
					sw, okSW := sys.SoftwareLookup(asid, v)
					hw := w.Walk(asid, v)
					if o[v] != okSW {
						t.Fatalf("asid %d VPN %#x: oracle=%t software=%t",
							asid, uint64(v), o[v], okSW)
					}
					if o[v] != hw.Found {
						t.Fatalf("asid %d VPN %#x: oracle=%t hardware=%t",
							asid, uint64(v), o[v], hw.Found)
					}
					if okSW && hw.Entry != sw {
						t.Fatalf("asid %d VPN %#x: hw entry %v != sw entry %v",
							asid, uint64(v), hw.Entry, sw)
					}
				}
			}
		})
	}
}

// TestChurnIsolationBetweenProcesses maps pages into one address space and
// verifies the other ASID never observes them, even when both heaps occupy
// overlapping virtual ranges.
func TestChurnIsolationBetweenProcesses(t *testing.T) {
	for _, scheme := range AllSchemes() {
		mem := phys.New(256 << 20)
		sys := NewSystem(mem, scheme)
		space1 := smallSpace(3)
		space2 := smallSpace(3) // same seed: identical virtual layout
		if _, err := sys.Launch(1, space1, false); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Launch(2, space2, false); err != nil {
			t.Fatal(err)
		}
		heap := heapOf(space1)
		// Unmap a page from process 2 only; process 1 must still see it.
		v := heap.Mapped[len(heap.Mapped)/2]
		if !sys.UnmapPage(2, v) {
			t.Fatalf("%s: unmap in asid 2 failed", scheme)
		}
		if _, ok := sys.SoftwareLookup(1, v); !ok {
			t.Fatalf("%s: unmap in asid 2 removed asid 1's page", scheme)
		}
		if _, ok := sys.SoftwareLookup(2, v); ok {
			t.Fatalf("%s: asid 2 still sees unmapped page", scheme)
		}
		w := sys.Walker()
		if out := w.Walk(1, v); !out.Found {
			t.Fatalf("%s: hardware walk lost asid 1's page", scheme)
		}
		if out := w.Walk(2, v); out.Found {
			t.Fatalf("%s: hardware walk found asid 2's unmapped page", scheme)
		}
	}
}

// TestLaunchOutOfMemory verifies that every scheme fails cleanly — an
// error, not a panic or a partial table — when physical memory cannot hold
// the address space.
func TestLaunchOutOfMemory(t *testing.T) {
	for _, scheme := range AllSchemes() {
		mem := phys.New(1 << 20) // 1 MB: far too small for smallSpace
		sys := NewSystem(mem, scheme)
		if _, err := sys.Launch(1, smallSpace(5), false); err == nil {
			t.Errorf("%s: launch into 1MB memory succeeded", scheme)
		}
	}
}

// TestMapPageOutOfMemory fills memory with mappings until allocation fails
// and verifies the failure is a clean error with the tables still
// consistent for everything mapped before exhaustion.
func TestMapPageOutOfMemory(t *testing.T) {
	for _, scheme := range AllSchemes() {
		mem := phys.New(32 << 20)
		sys := NewSystem(mem, scheme)
		cfg := vas.DefaultConfig()
		cfg.HeapPages = 512
		cfg.MmapRegions = 1
		cfg.MmapPages = 128
		space := vas.Generate(cfg, 5)
		if _, err := sys.Launch(1, space, false); err != nil {
			t.Fatalf("%s: launch: %v", scheme, err)
		}
		heap := heapOf(space)
		var lastMapped []addr.VPN
		exhausted := false
		for i := 0; i < 1<<20; i++ {
			v := heap.Base + addr.VPN(heap.Span+i)
			if err := sys.MapPage(1, v, addr.Page4K); err != nil {
				exhausted = true
				break
			}
			if len(lastMapped) < 64 {
				lastMapped = append(lastMapped, v)
			}
		}
		if !exhausted {
			t.Fatalf("%s: never exhausted 32MB of memory", scheme)
		}
		for _, v := range lastMapped {
			if _, ok := sys.SoftwareLookup(1, v); !ok {
				t.Errorf("%s: pre-exhaustion mapping %#x lost", scheme, uint64(v))
				break
			}
		}
	}
}
