package oskernel

import (
	"testing"

	"lvm/internal/phys"
)

// TestCloseReleasesEverything launches several processes per scheme,
// closes the system, and verifies every page the launches consumed came
// back to the allocator, the kernel space survived, and the system can
// launch fresh processes afterwards — the per-tenant teardown path the
// serving daemon exercises for every finished session.
func TestCloseReleasesEverything(t *testing.T) {
	for _, scheme := range AllSchemes() {
		t.Run(string(scheme), func(t *testing.T) {
			mem := phys.New(512 << 20)
			sys := NewSystem(mem, scheme)
			baseline := mem.FreePages()
			for _, asid := range []uint16{1, 2, 3} {
				if _, err := sys.Launch(asid, smallSpace(int64(asid)), false); err != nil {
					t.Fatalf("launch %d: %v", asid, err)
				}
			}
			if mem.FreePages() == baseline {
				t.Fatal("launches consumed no memory; test is vacuous")
			}
			sys.Close()
			if got := mem.FreePages(); got != baseline {
				t.Errorf("FreePages after Close = %d, want pre-launch %d", got, baseline)
			}
			for _, asid := range []uint16{1, 2, 3} {
				if sys.Process(asid) != nil {
					t.Errorf("process %d survived Close", asid)
				}
			}
			// A second Close is a no-op, and the system remains usable.
			sys.Close()
			if _, err := sys.Launch(7, smallSpace(7), false); err != nil {
				t.Fatalf("launch after Close: %v", err)
			}
			if _, ok := sys.SoftwareLookup(7, heapOf(smallSpace(7)).Mapped[0]); !ok {
				t.Error("post-Close process cannot translate")
			}
		})
	}
}
