package oskernel

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/core"
	"lvm/internal/pte"
)

// Kernel address space support (paper §5.2 "Kernel Mappings"): the Linux
// kernel's address space is mapped into every process. LVM keeps ONE
// learned page table for it, shared across processes — saving the memory
// and training cost of duplicating it per process, exactly as the paper
// describes.
//
// The kernel half of the canonical address space starts at the sign-extended
// boundary; we model it with the canonical direct-map base.

// KernelASID is the reserved ASID under which the shared kernel index is
// attached (global mappings; hardware treats kernel entries as shared).
const KernelASID uint16 = 0

// KernelBaseVPN is the first kernel VPN (the direct map of a 48-bit
// kernel half, in 4 KB units).
const KernelBaseVPN addr.VPN = 0xffff8800_00000000 >> addr.PageShift & addr.MaxVPN

// KernelLayout describes the kernel mappings to install.
type KernelLayout struct {
	// DirectMapPages is the size of the linear direct map (usually all of
	// physical memory), mapped with 2 MB pages where aligned.
	DirectMapPages int
	// TextPages is the kernel text size (4 KB pages).
	TextPages int
}

// DefaultKernelLayout sizes the direct map to the physical memory.
func (s *System) DefaultKernelLayout() KernelLayout {
	return KernelLayout{
		DirectMapPages: int(s.Mem.TotalPages() / 64), // sampled direct map
		TextPages:      2048,
	}
}

// InstallKernel builds the shared kernel translation structure once. For
// LVM this is a single learned index reused by every process (§5.2); other
// schemes get a kernel table under the reserved ASID for parity.
func (s *System) InstallKernel(l KernelLayout) error {
	if s.kernelInstalled {
		return fmt.Errorf("oskernel: kernel already installed")
	}
	var ms []core.Mapping
	v := KernelBaseVPN
	// Kernel text: 4 KB pages.
	for i := 0; i < l.TextPages; i++ {
		ppn, err := s.Mem.Alloc(0)
		if err != nil {
			return err
		}
		ms = append(ms, core.Mapping{VPN: v, Entry: pte.New(ppn, addr.Page4K)})
		v++
	}
	// Direct map: 2 MB pages from the next huge boundary.
	v = addr.AlignDown(v+511, addr.Page2M)
	for mapped := 0; mapped < l.DirectMapPages; mapped += 512 {
		ppn, err := s.Mem.Alloc(9)
		if err != nil {
			return err
		}
		ms = append(ms, core.Mapping{VPN: v, Entry: pte.New(ppn, addr.Page2M)})
		v += 512
	}

	switch s.Scheme {
	case SchemeLVM:
		ix, err := core.Build(s.Mem, ms, s.LVMParams)
		if err != nil {
			return err
		}
		s.kernelIx = ix
		// One index, one attachment: every process's kernel accesses
		// resolve through the same structure under the global ASID.
		s.lvmWalker.Attach(KernelASID, ix)
	case SchemeRadix, SchemeMidgard:
		t, err := newRadixFrom(s, ms)
		if err != nil {
			return err
		}
		s.radWalker.Attach(KernelASID, t)
	default:
		return fmt.Errorf("oskernel: kernel space modeled for radix and lvm schemes only")
	}
	s.kernelInstalled = true
	s.kernelMappings = len(ms)
	return nil
}

// KernelIndex returns the shared kernel learned index (LVM scheme).
func (s *System) KernelIndex() *core.Index { return s.kernelIx }

// KernelMappings returns the number of kernel translations installed.
func (s *System) KernelMappings() int { return s.kernelMappings }

// KernelIndexBytes returns the size of the shared kernel index — the
// memory a per-process design would pay once per process, and LVM pays
// once per machine (§5.2).
func (s *System) KernelIndexBytes() int {
	if s.kernelIx == nil {
		return 0
	}
	return s.kernelIx.SizeBytes()
}

// IsKernelVPN reports whether a VPN belongs to the kernel half.
func IsKernelVPN(v addr.VPN) bool { return v >= KernelBaseVPN }
