package oskernel

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/core"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/vas"
)

func TestKernelSharedIndex(t *testing.T) {
	mem := phys.New(512 << 20)
	sys := NewSystem(mem, SchemeLVM)
	if err := sys.InstallKernel(sys.DefaultKernelLayout()); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallKernel(sys.DefaultKernelLayout()); err == nil {
		t.Fatal("double install must fail")
	}
	// Launch two processes; the kernel index must not be duplicated.
	for asid := uint16(1); asid <= 2; asid++ {
		if _, err := sys.Launch(asid, smallSpace(int64(asid)), false); err != nil {
			t.Fatal(err)
		}
	}
	if sys.KernelIndexBytes() == 0 {
		t.Fatal("no kernel index")
	}
	// Kernel translations resolve under the global ASID regardless of
	// which process is running.
	w := sys.Walker()
	text := KernelBaseVPN
	out := w.Walk(KernelASID, text)
	if !out.Found {
		t.Fatal("kernel text not translated")
	}
	// Direct-map huge pages resolve too (interior VPN).
	direct := addr.AlignDown(KernelBaseVPN+addr.VPN(2048)+511, addr.Page2M)
	if out := w.Walk(KernelASID, direct+300); !out.Found || out.Entry.Size() != addr.Page2M {
		t.Fatalf("kernel direct map walk failed (found=%t)", out.Found)
	}
	// User translations still isolated per process.
	p1 := sys.Process(1)
	heap := heapOf(p1.Space)
	if out := w.Walk(1, heap.Mapped[0]); !out.Found {
		t.Fatal("user mapping lost after kernel install")
	}
}

func TestKernelSharedAcrossSchemeRadix(t *testing.T) {
	mem := phys.New(512 << 20)
	sys := NewSystem(mem, SchemeRadix)
	if err := sys.InstallKernel(sys.DefaultKernelLayout()); err != nil {
		t.Fatal(err)
	}
	if out := sys.Walker().Walk(KernelASID, KernelBaseVPN); !out.Found {
		t.Fatal("radix kernel walk failed")
	}
}

func TestKernelUnsupportedScheme(t *testing.T) {
	mem := phys.New(256 << 20)
	sys := NewSystem(mem, SchemeECPT)
	if err := sys.InstallKernel(sys.DefaultKernelLayout()); err == nil {
		t.Fatal("expected unsupported-scheme error")
	}
}

func TestIsKernelVPN(t *testing.T) {
	if IsKernelVPN(0x1000) {
		t.Error("user VPN classified as kernel")
	}
	if !IsKernelVPN(KernelBaseVPN + 5) {
		t.Error("kernel VPN not recognized")
	}
}

// coreMapping1G builds a 1 GB mapping for tests.
func coreMapping1G(base addr.VPN) core.Mapping {
	return core.Mapping{VPN: base, Entry: pte.New(0x40000, addr.Page1G)}
}

// TestOneGigabytePages exercises 1 GB translations end to end through the
// LVM scheme — the paper's §4.4 claim is that ANY page size fits the same
// index through its slope encoding.
func TestOneGigabytePages(t *testing.T) {
	mem := phys.New(512 << 20)
	sys := NewSystem(mem, SchemeLVM)
	cfg := vas.DefaultConfig()
	cfg.HeapPages = 2048
	cfg.MmapRegions = 1
	cfg.MmapPages = 512
	space := vas.Generate(cfg, 3)
	p, err := sys.Launch(1, space, false)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a 1 GB translation manually (aligned VPN, synthetic PPN).
	base := addr.AlignDown(addr.VPN(0x40000000>>addr.PageShift)+addr.VPN(addr.VPNsPer1G), addr.Page1G)
	normBase := p.Norm.Normalize(base)
	_ = normBase
	ix := p.LvmIx
	if err := ix.Insert(coreMapping1G(base)); err != nil {
		t.Fatalf("1GB insert: %v", err)
	}
	for _, off := range []addr.VPN{0, 12345, addr.VPNsPer1G - 1} {
		r := ix.Walk(base + off)
		if !r.Found || r.Entry.Size() != addr.Page1G {
			t.Fatalf("1GB interior walk failed at +%d (found=%t size=%s)", off, r.Found, r.Entry.Size())
		}
	}
}
