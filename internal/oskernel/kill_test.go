package oskernel

import (
	"testing"

	"lvm/internal/phys"
)

// TestKillReturnsAllMemory: after launch + kill, the allocator must be back
// to exactly its pre-launch free-page count for every scheme — any
// discrepancy is a leak (table pages, data frames, or walk-cache-side
// allocations left behind).
func TestKillReturnsAllMemory(t *testing.T) {
	for _, scheme := range AllSchemes() {
		for _, thp := range []bool{false, true} {
			mem := phys.New(256 << 20)
			before := mem.FreePages()
			sys := NewSystem(mem, scheme)
			if _, err := sys.Launch(1, smallSpace(7), thp); err != nil {
				t.Fatalf("%s: launch: %v", scheme, err)
			}
			if mem.FreePages() == before {
				t.Fatalf("%s: launch allocated nothing", scheme)
			}
			if err := sys.Kill(1); err != nil {
				t.Fatalf("%s: kill: %v", scheme, err)
			}
			if got := mem.FreePages(); got != before {
				t.Errorf("%s thp=%t: leaked %d pages (free %d -> %d)",
					scheme, thp, before-got, before, got)
			}
		}
	}
}

// TestKillIsolatesSurvivors: killing one process must leave a co-resident
// process's translations intact in both software and hardware, while the
// killed ASID stops translating.
func TestKillIsolatesSurvivors(t *testing.T) {
	for _, scheme := range AllSchemes() {
		mem := phys.New(256 << 20)
		sys := NewSystem(mem, scheme)
		if _, err := sys.Launch(1, smallSpace(3), false); err != nil {
			t.Fatal(err)
		}
		p2, err := sys.Launch(2, smallSpace(4), false)
		if err != nil {
			t.Fatal(err)
		}
		victim := heapOf(sys.Process(1).Space).Mapped[0]
		survivor := heapOf(p2.Space).Mapped[0]

		if err := sys.Kill(1); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		w := sys.Walker()
		if out := w.Walk(1, victim); out.Found {
			t.Errorf("%s: killed ASID still translates", scheme)
		}
		if _, ok := sys.SoftwareLookup(1, victim); ok {
			t.Errorf("%s: killed ASID still in software tables", scheme)
		}
		if out := w.Walk(2, survivor); !out.Found {
			t.Errorf("%s: survivor lost its translation", scheme)
		}
	}
}

// TestKillASIDReuse: a killed ASID must be immediately reusable by a new
// process, with no stale walk-cache entries answering for the old one.
func TestKillASIDReuse(t *testing.T) {
	for _, scheme := range AllSchemes() {
		mem := phys.New(256 << 20)
		sys := NewSystem(mem, scheme)
		if _, err := sys.Launch(1, smallSpace(5), false); err != nil {
			t.Fatal(err)
		}
		// Warm the walk caches on the first incarnation.
		w := sys.Walker()
		old := heapOf(sys.Process(1).Space).Mapped
		for i := 0; i < len(old); i += 64 {
			w.Walk(1, old[i])
		}
		if err := sys.Kill(1); err != nil {
			t.Fatal(err)
		}
		p, err := sys.Launch(1, smallSpace(6), false)
		if err != nil {
			t.Fatalf("%s: relaunch with reused ASID: %v", scheme, err)
		}
		for _, r := range p.Space.Regions {
			for i := 0; i < len(r.Mapped); i += 97 {
				hw := w.Walk(1, r.Mapped[i])
				sw, ok := sys.SoftwareLookup(1, r.Mapped[i])
				if !ok || !hw.Found || hw.Entry != sw {
					t.Fatalf("%s: reused ASID mistranslates VPN %#x", scheme, uint64(r.Mapped[i]))
				}
			}
		}
	}
}

// TestKillErrors: the kernel address space and unknown ASIDs must be
// rejected; double-kill must fail the second time.
func TestKillErrors(t *testing.T) {
	mem := phys.New(256 << 20)
	sys := NewSystem(mem, SchemeLVM)
	if err := sys.Kill(KernelASID); err == nil {
		t.Error("killing the kernel succeeded")
	}
	if err := sys.Kill(42); err == nil {
		t.Error("killing an unknown ASID succeeded")
	}
	if _, err := sys.Launch(1, smallSpace(5), false); err != nil {
		t.Fatal(err)
	}
	if err := sys.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Kill(1); err == nil {
		t.Error("double kill succeeded")
	}
}
