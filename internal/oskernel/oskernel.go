// Package oskernel is the operating-system layer of the reproduction: it
// owns physical page allocation, builds and maintains the page-table
// structure of whichever scheme is under evaluation, applies the THP
// policy, exposes ASLR normalization to LVM's walker (§5.2), and accounts
// the software management cost (§7.3 "LVM Overheads in the OS").
//
// It replaces the paper's Linux 5.15 extensions + userspace LVM agent: the
// same map/unmap event stream drives the same index operations.
package oskernel

import (
	"fmt"
	"sort"

	"lvm/internal/addr"
	"lvm/internal/asap"
	"lvm/internal/core"
	"lvm/internal/ecpt"
	"lvm/internal/fpt"
	"lvm/internal/ideal"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/radix"
	"lvm/internal/revelator"
	"lvm/internal/vas"
	"lvm/internal/victima"
)

// Scheme selects the page-table structure.
type Scheme string

// Supported schemes.
const (
	SchemeRadix   Scheme = "radix"
	SchemeECPT    Scheme = "ecpt"
	SchemeLVM     Scheme = "lvm"
	SchemeIdeal   Scheme = "ideal"
	SchemeFPT     Scheme = "fpt"
	SchemeASAP    Scheme = "asap"
	SchemeMidgard Scheme = "midgard" // radix tables; walk gating done by the simulator
	// SchemeVictima parks TLB-extending translation entries in the modeled
	// L2 (evicted under cache pressure); SchemeRevelator resolves misses
	// speculatively from a hash table with an overlapped radix verify walk.
	SchemeVictima   Scheme = "victima"
	SchemeRevelator Scheme = "revelator"
)

// AllSchemes lists every supported scheme.
func AllSchemes() []Scheme {
	return []Scheme{SchemeRadix, SchemeECPT, SchemeLVM, SchemeIdeal, SchemeFPT, SchemeASAP, SchemeMidgard,
		SchemeVictima, SchemeRevelator}
}

// MgmtCosts model the software cost, in cycles, of LVM maintenance
// operations (§7.3 reports retrains < 1.9 ms and total management ~1.17%
// of runtime; these constants land in that regime at 2 GHz).
type MgmtCosts struct {
	InsertCycles       uint64
	PerKeyRetrain      uint64
	PerKeyRebuild      uint64
	EdgeExpansionFixed uint64
}

// DefaultMgmtCosts is the standard cost model.
func DefaultMgmtCosts() MgmtCosts {
	return MgmtCosts{
		InsertCycles:       150,
		PerKeyRetrain:      40,
		PerKeyRebuild:      60,
		EdgeExpansionFixed: 2000,
	}
}

// System is one simulated machine's OS state for a single scheme.
type System struct {
	Mem    *phys.Memory
	Scheme Scheme

	LVMParams core.Params
	Costs     MgmtCosts

	radWalker     *radix.Walker
	ecptWalker    *ecpt.Walker
	lvmWalker     *core.HWWalker
	idealWalker   *ideal.Walker
	fptWalker     *fpt.Walker
	asapWalker    *asap.Walker
	victimaWalker *victima.Walker
	revWalker     *revelator.Walker

	procs map[uint16]*Process

	// Shared kernel address space (§5.2): one structure for all processes.
	kernelInstalled bool
	kernelIx        *core.Index
	kernelMappings  int
}

// newRadixFrom builds a radix table from core mappings (kernel install).
func newRadixFrom(s *System, ms []core.Mapping) (*radix.Table, error) {
	t, err := radix.New(s.Mem)
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		if err := t.Map(m.VPN, m.Entry); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Process is one launched address space.
type Process struct {
	ASID  uint16
	Space *vas.AddressSpace
	THP   bool
	Norm  *vas.Normalizer

	RadixT   *radix.Table
	EcptT    *ecpt.Table
	LvmIx    *core.Index
	IdealT   *ideal.Table
	FptT     *fpt.Table
	AsapT    *asap.Table
	VictimaT *victima.Table
	RevT     *revelator.Table

	// MgmtCycles accumulates the software cost of page-table management.
	MgmtCycles uint64
	// dataPages maps VPN → allocation (for freeing).
	dataPages map[addr.VPN]dataPage
}

type dataPage struct {
	base  addr.PPN
	order int
}

// HWConfig sizes the per-scheme walk caches. The zero value means
// Table-1 defaults.
type HWConfig struct {
	// PWCEntriesPerLevel sizes each of radix's three PWC levels (Table 1:
	// 32).
	PWCEntriesPerLevel int
	// LWCEntries sizes LVM's walk cache (Table 1: 16). The LWC does not
	// scale with memory footprint — that independence is the property
	// §7.3 demonstrates.
	LWCEntries int
}

// DefaultHWConfig returns Table-1 walk-cache sizing.
func DefaultHWConfig() HWConfig {
	return HWConfig{PWCEntriesPerLevel: 32, LWCEntries: 16}
}

// NewSystem creates the OS for one scheme over the given physical memory
// with Table-1 walk caches.
func NewSystem(mem *phys.Memory, scheme Scheme) *System {
	return NewSystemHW(mem, scheme, DefaultHWConfig())
}

// NewSystemHW creates the OS with explicit walk-cache sizing.
func NewSystemHW(mem *phys.Memory, scheme Scheme, hw HWConfig) *System {
	if hw.PWCEntriesPerLevel == 0 {
		hw.PWCEntriesPerLevel = 32
	}
	if hw.LWCEntries == 0 {
		hw.LWCEntries = 16
	}
	s := &System{
		Mem:       mem,
		Scheme:    scheme,
		LVMParams: core.DefaultParams(),
		Costs:     DefaultMgmtCosts(),
		procs:     make(map[uint16]*Process),
	}
	switch scheme {
	case SchemeRadix, SchemeMidgard:
		s.radWalker = radix.NewWalker(hw.PWCEntriesPerLevel)
	case SchemeECPT:
		s.ecptWalker = ecpt.NewWalker()
	case SchemeLVM:
		s.lvmWalker = core.NewHWWalker(hw.LWCEntries)
	case SchemeIdeal:
		s.idealWalker = ideal.NewWalker()
	case SchemeFPT:
		s.fptWalker = fpt.NewWalker()
	case SchemeASAP:
		s.asapWalker = asap.NewWalker()
	case SchemeVictima:
		s.victimaWalker = victima.NewWalker()
	case SchemeRevelator:
		s.revWalker = revelator.NewWalker()
	default:
		panic(fmt.Sprintf("oskernel: unknown scheme %q", scheme))
	}
	return s
}

// Walker returns the scheme's hardware walker.
func (s *System) Walker() mmu.Walker {
	switch s.Scheme {
	case SchemeRadix, SchemeMidgard:
		return s.radWalker
	case SchemeECPT:
		return s.ecptWalker
	case SchemeLVM:
		return s.lvmWalker
	case SchemeIdeal:
		return s.idealWalker
	case SchemeFPT:
		return s.fptWalker
	case SchemeASAP:
		return s.asapWalker
	case SchemeVictima:
		return s.victimaWalker
	case SchemeRevelator:
		return s.revWalker
	}
	return nil
}

// LVMWalker returns the LVM walker (nil for other schemes), for LWC stats.
func (s *System) LVMWalker() *core.HWWalker { return s.lvmWalker }

// RadixWalker returns the radix walker (nil for other schemes).
func (s *System) RadixWalker() *radix.Walker { return s.radWalker }

// ECPTWalker returns the ECPT walker (nil for other schemes).
func (s *System) ECPTWalker() *ecpt.Walker { return s.ecptWalker }

// Process returns a launched process by ASID.
func (s *System) Process(asid uint16) *Process { return s.procs[asid] }

// Launch creates a process: physical frames are allocated for every mapped
// page (the paper's workloads run at steady state, so we map eagerly), the
// scheme's translation structure is built, and the walker is attached.
// Failures come back wrapped with the ASID and scheme so callers several
// layers up can report which launch failed.
func (s *System) Launch(asid uint16, space *vas.AddressSpace, thp bool) (*Process, error) {
	p, err := s.launch(asid, space, thp)
	if err != nil {
		return nil, fmt.Errorf("oskernel: launch asid=%d scheme=%s: %w", asid, s.Scheme, err)
	}
	return p, nil
}

func (s *System) launch(asid uint16, space *vas.AddressSpace, thp bool) (*Process, error) {
	trs := space.Translations(thp)
	p := &Process{
		ASID:      asid,
		Space:     space,
		THP:       thp,
		dataPages: make(map[addr.VPN]dataPage, len(trs)),
	}

	// Allocate physical frames. 2 MB translations need an order-9 block;
	// if fragmentation denies it, the OS falls back to 4 KB pages exactly
	// as Linux THP does.
	mappings := make([]mapping, 0, len(trs))
	for _, tr := range trs {
		if tr.Size == addr.Page2M {
			if base, err := s.Mem.Alloc(9); err == nil {
				p.dataPages[tr.VPN] = dataPage{base, 9}
				mappings = append(mappings, mapping{tr.VPN, pte.New(base, addr.Page2M)})
				continue
			}
			for i := addr.VPN(0); i < 512; i++ {
				base, err := s.Mem.Alloc(0)
				if err != nil {
					return nil, fmt.Errorf("out of memory mapping %#x: %w", uint64(tr.VPN+i), err)
				}
				p.dataPages[tr.VPN+i] = dataPage{base, 0}
				mappings = append(mappings, mapping{tr.VPN + i, pte.New(base, addr.Page4K)})
			}
			continue
		}
		base, err := s.Mem.Alloc(0)
		if err != nil {
			return nil, fmt.Errorf("out of memory mapping %#x: %w", uint64(tr.VPN), err)
		}
		p.dataPages[tr.VPN] = dataPage{base, 0}
		mappings = append(mappings, mapping{tr.VPN, pte.New(base, tr.Size)})
	}

	if err := s.buildTables(p, mappings); err != nil {
		return nil, err
	}
	s.procs[asid] = p
	return p, nil
}

type mapping struct {
	vpn addr.VPN
	e   pte.Entry
}

func (s *System) buildTables(p *Process, mappings []mapping) error {
	switch s.Scheme {
	case SchemeRadix, SchemeMidgard:
		t, err := radix.New(s.Mem)
		if err != nil {
			return err
		}
		for _, m := range mappings {
			if err := t.Map(m.vpn, m.e); err != nil {
				return err
			}
		}
		p.RadixT = t
		s.radWalker.Attach(p.ASID, t)

	case SchemeECPT:
		t, err := ecpt.New(s.Mem, 0)
		if err != nil {
			return err
		}
		for _, m := range mappings {
			if err := t.Map(m.vpn, m.e); err != nil {
				return err
			}
		}
		p.EcptT = t
		s.ecptWalker.Attach(p.ASID, t)

	case SchemeLVM:
		p.Norm = vas.NewNormalizer(p.Space)
		ms := make([]core.Mapping, len(mappings))
		for i, m := range mappings {
			ms[i] = core.Mapping{VPN: p.Norm.Normalize(m.vpn), Entry: m.e}
		}
		ix, err := core.Build(s.Mem, ms, s.LVMParams)
		if err != nil {
			return err
		}
		p.LvmIx = ix
		p.MgmtCycles += uint64(len(ms)) * s.Costs.PerKeyRebuild // initial training
		s.lvmWalker.AttachNormalized(p.ASID, ix, p.Norm.Normalize)

	case SchemeIdeal:
		t, err := ideal.New(s.Mem, len(mappings))
		if err != nil {
			return err
		}
		for _, m := range mappings {
			t.Map(m.vpn, m.e)
		}
		p.IdealT = t
		s.idealWalker.Attach(p.ASID, t)

	case SchemeFPT:
		t, err := fpt.New(s.Mem)
		if err != nil {
			return err
		}
		for _, m := range mappings {
			if err := t.Map(m.vpn, m.e); err != nil {
				return err
			}
		}
		p.FptT = t
		s.fptWalker.Attach(p.ASID, t)

	case SchemeASAP:
		t, err := asap.New(s.Mem)
		if err != nil {
			return err
		}
		for _, r := range p.Space.Regions {
			// Best-effort: unprefetchable VMAs degrade to radix walks.
			_ = t.AddVMA(r.Base, r.Base+addr.VPN(r.Span)-1)
		}
		for _, m := range mappings {
			if err := t.Map(m.vpn, m.e); err != nil {
				return err
			}
		}
		p.AsapT = t
		s.asapWalker.Attach(p.ASID, t)

	case SchemeVictima:
		t, err := victima.New(s.Mem)
		if err != nil {
			return err
		}
		for _, m := range mappings {
			if err := t.Map(m.vpn, m.e); err != nil {
				return err
			}
		}
		p.VictimaT = t
		s.victimaWalker.Attach(p.ASID, t)

	case SchemeRevelator:
		t, err := revelator.New(s.Mem, len(mappings))
		if err != nil {
			return err
		}
		for _, m := range mappings {
			if err := t.Map(m.vpn, m.e); err != nil {
				return err
			}
		}
		p.RevT = t
		s.revWalker.Attach(p.ASID, t)
	}
	return nil
}

// MapPage is the page-fault path for dynamic growth: allocate a frame and
// insert the translation.
func (s *System) MapPage(asid uint16, v addr.VPN, size addr.PageSize) error {
	p := s.procs[asid]
	if p == nil {
		return fmt.Errorf("oskernel: no process %d", asid)
	}
	order := 0
	if size == addr.Page2M {
		order = 9
	}
	base, err := s.Mem.Alloc(order)
	if err != nil {
		return err
	}
	p.dataPages[v] = dataPage{base, order}
	e := pte.New(base, size)

	switch s.Scheme {
	case SchemeRadix, SchemeMidgard:
		return p.RadixT.Map(v, e)
	case SchemeECPT:
		return p.EcptT.Map(v, e)
	case SchemeIdeal:
		p.IdealT.Map(v, e)
		return nil
	case SchemeFPT:
		return p.FptT.Map(v, e)
	case SchemeASAP:
		return p.AsapT.Map(v, e)
	case SchemeVictima:
		return p.VictimaT.Map(v, e)
	case SchemeRevelator:
		return p.RevT.Map(v, e)
	case SchemeLVM:
		before := p.LvmIx.Stats()
		err := p.LvmIx.Insert(core.Mapping{VPN: p.Norm.Normalize(v), Entry: e})
		after := p.LvmIx.Stats()
		p.MgmtCycles += s.Costs.InsertCycles
		if after.Retrains > before.Retrains {
			p.MgmtCycles += uint64(p.LvmIx.MappedPages()) * s.Costs.PerKeyRetrain / uint64(p.LvmIx.LeafCount())
		}
		if after.Rebuilds > before.Rebuilds {
			p.MgmtCycles += uint64(p.LvmIx.MappedPages()) * s.Costs.PerKeyRebuild
		}
		if after.EdgeExpansions > before.EdgeExpansions {
			p.MgmtCycles += s.Costs.EdgeExpansionFixed
		}
		return err
	}
	return fmt.Errorf("oskernel: unsupported scheme")
}

// UnmapPage frees a page. For LVM the index keeps the gap (§5.2 "Free").
func (s *System) UnmapPage(asid uint16, v addr.VPN) bool {
	p := s.procs[asid]
	if p == nil {
		return false
	}
	ok := false
	switch s.Scheme {
	case SchemeRadix, SchemeMidgard:
		ok = p.RadixT.Unmap(v)
	case SchemeECPT:
		ok = p.EcptT.Unmap(v)
	case SchemeIdeal:
		ok = p.IdealT.Unmap(v)
	case SchemeFPT:
		ok = p.FptT.Unmap(v)
	case SchemeASAP:
		ok = p.AsapT.Unmap(v)
	case SchemeVictima:
		ok = p.VictimaT.Unmap(v)
	case SchemeRevelator:
		ok = p.RevT.Unmap(v)
	case SchemeLVM:
		ok = p.LvmIx.Free(p.Norm.Normalize(v))
	}
	if ok {
		if dp, have := p.dataPages[v]; have {
			s.Mem.Free(dp.base, dp.order)
			delete(p.dataPages, v)
		}
	}
	return ok
}

// ProtectableFlags are the entry bits Protect may change: permission and
// accessed/dirty state. Present, size, and PPN bits are never touched.
const ProtectableFlags = pte.FlagWritable | pte.FlagUser | pte.FlagAccessed | pte.FlagDirty

// Protect applies an mprotect-style flag change to one mapped page: bits
// in set are raised, then bits in clear are dropped (both masked to
// ProtectableFlags). For LVM this is the paper's software-walk
// modification path (§5.1's OS management of in-place PTEs); for the
// baselines the entry is re-installed in place. Returns false if the page
// is not mapped.
func (s *System) Protect(asid uint16, v addr.VPN, set, clear pte.Entry) bool {
	p := s.procs[asid]
	if p == nil {
		return false
	}
	set &= ProtectableFlags
	clear &= ProtectableFlags
	if s.Scheme == SchemeLVM {
		return p.LvmIx.SetFlags(p.Norm.Normalize(v), set, clear)
	}
	e, ok := s.SoftwareLookup(asid, v)
	if !ok {
		return false
	}
	ne := (e | set) &^ clear
	if ne == e {
		return true
	}
	aligned := addr.AlignDown(v, e.Size())
	var err error
	switch s.Scheme {
	case SchemeRadix, SchemeMidgard:
		err = p.RadixT.Map(aligned, ne)
	case SchemeECPT:
		err = p.EcptT.Map(aligned, ne)
	case SchemeIdeal:
		p.IdealT.Map(aligned, ne)
	case SchemeFPT:
		err = p.FptT.Map(aligned, ne)
	case SchemeASAP:
		err = p.AsapT.Map(aligned, ne)
	case SchemeVictima:
		err = p.VictimaT.Map(aligned, ne)
	case SchemeRevelator:
		err = p.RevT.Map(aligned, ne)
	}
	return err == nil
}

// Kill terminates a process: every translation structure is returned to
// the physical allocator, the process's data frames are freed, and the
// hardware walker drops its tables and per-ASID walk-cache entries. The
// kernel's shared index (ASID 0) cannot be killed. Returns an error for
// unknown ASIDs so double-kills surface as bugs.
func (s *System) Kill(asid uint16) error {
	if asid == KernelASID {
		return fmt.Errorf("oskernel: cannot kill the kernel address space")
	}
	p := s.procs[asid]
	if p == nil {
		return fmt.Errorf("oskernel: kill of unknown ASID %d", asid)
	}
	switch s.Scheme {
	case SchemeRadix, SchemeMidgard:
		p.RadixT.Release()
		s.radWalker.Detach(asid)
	case SchemeECPT:
		p.EcptT.Release()
		s.ecptWalker.Detach(asid)
	case SchemeIdeal:
		p.IdealT.Release()
		s.idealWalker.Detach(asid)
	case SchemeFPT:
		p.FptT.Release()
		s.fptWalker.Detach(asid)
	case SchemeASAP:
		p.AsapT.Release()
		s.asapWalker.Detach(asid)
	case SchemeVictima:
		p.VictimaT.Release()
		s.victimaWalker.Detach(asid)
	case SchemeRevelator:
		p.RevT.Release()
		s.revWalker.Detach(asid)
	case SchemeLVM:
		p.LvmIx.Release()
		s.lvmWalker.Detach(asid)
	}
	// Free in VPN order: releasing in map-iteration order would scramble
	// the buddy allocator's free lists run to run, making every later
	// allocation — and therefore every later result — nondeterministic.
	vpns := make([]addr.VPN, 0, len(p.dataPages))
	for v := range p.dataPages {
		vpns = append(vpns, v)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, v := range vpns {
		dp := p.dataPages[v]
		s.Mem.Free(dp.base, dp.order)
	}
	delete(s.procs, asid)
	return nil
}

// Close tears down every launched process in ascending ASID order — the
// deterministic end-of-life path a per-tenant server takes when a session
// ends or the daemon shuts down. The kernel address space (ASID 0) is left
// in place; after Close the System can launch fresh processes against the
// same physical memory.
func (s *System) Close() {
	// Sorted order for the same reason Kill frees pages in VPN order: the
	// buddy allocator's free lists must not depend on map iteration.
	asids := make([]uint16, 0, len(s.procs))
	for asid := range s.procs {
		asids = append(asids, asid)
	}
	sort.Slice(asids, func(i, j int) bool { return asids[i] < asids[j] })
	for _, asid := range asids {
		if asid == KernelASID {
			continue
		}
		_ = s.Kill(asid) // cannot fail: asid came from the live proc table
	}
}

// SoftwareLookup is the OS's own walk (e.g. for permission changes).
func (s *System) SoftwareLookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	p := s.procs[asid]
	if p == nil {
		return 0, false
	}
	switch s.Scheme {
	case SchemeRadix, SchemeMidgard:
		return p.RadixT.Lookup(v)
	case SchemeECPT:
		return p.EcptT.Lookup(v)
	case SchemeIdeal:
		return p.IdealT.Lookup(v)
	case SchemeFPT:
		return p.FptT.Lookup(v)
	case SchemeASAP:
		return p.AsapT.Lookup(v)
	case SchemeVictima:
		return p.VictimaT.Lookup(v)
	case SchemeRevelator:
		return p.RevT.Lookup(v)
	case SchemeLVM:
		r := p.LvmIx.Walk(p.Norm.Normalize(v))
		return r.Entry, r.Found
	}
	return 0, false
}

// TableOverheadBytes returns the physical memory the scheme uses beyond
// the 8-byte-per-translation minimum (§7.3 "Memory Consumption").
func (s *System) TableOverheadBytes(asid uint16) uint64 {
	p := s.procs[asid]
	if p == nil {
		return 0
	}
	minimum := uint64(len(p.dataPages)) * pte.Bytes
	var used uint64
	switch s.Scheme {
	case SchemeRadix, SchemeMidgard:
		used = p.RadixT.TableBytes()
	case SchemeECPT:
		used = p.EcptT.TableBytes()
	case SchemeLVM:
		used = p.LvmIx.TableFootprintBytes() + uint64(p.LvmIx.SizeBytes())
	case SchemeVictima:
		used = p.VictimaT.TableBytes()
	case SchemeRevelator:
		used = p.RevT.TableBytes()
	default:
		return 0
	}
	if used < minimum {
		return 0
	}
	return used - minimum
}
