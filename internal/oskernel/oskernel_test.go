package oskernel

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/vas"
)

func smallSpace(seed int64) *vas.AddressSpace {
	cfg := vas.DefaultConfig()
	cfg.HeapPages = 4096
	cfg.MmapPages = 1024
	cfg.MmapRegions = 2
	return vas.Generate(cfg, seed)
}

func launch(t *testing.T, scheme Scheme, thp bool) (*System, *Process) {
	t.Helper()
	mem := phys.New(256 << 20)
	sys := NewSystem(mem, scheme)
	p, err := sys.Launch(1, smallSpace(7), thp)
	if err != nil {
		t.Fatalf("%s: launch: %v", scheme, err)
	}
	return sys, p
}

func TestLaunchAllSchemes(t *testing.T) {
	for _, scheme := range AllSchemes() {
		for _, thp := range []bool{false, true} {
			sys, p := launch(t, scheme, thp)
			// Every mapped page translates through the hardware walker.
			w := sys.Walker()
			checked := 0
			for _, r := range p.Space.Regions {
				for i := 0; i < len(r.Mapped); i += 97 {
					v := r.Mapped[i]
					out := w.Walk(1, v)
					if !out.Found {
						t.Fatalf("%s thp=%t: VPN %#x not translated", scheme, thp, uint64(v))
					}
					if out.Refs() < 1 {
						t.Fatalf("%s: walk with zero memory refs", scheme)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no pages checked")
			}
		}
	}
}

func TestWalkerAgreesWithSoftwareLookup(t *testing.T) {
	for _, scheme := range AllSchemes() {
		sys, p := launch(t, scheme, true)
		w := sys.Walker()
		for _, r := range p.Space.Regions {
			for i := 0; i < len(r.Mapped); i += 131 {
				v := r.Mapped[i]
				hw := w.Walk(1, v)
				sw, ok := sys.SoftwareLookup(1, v)
				if !ok || !hw.Found || hw.Entry != sw {
					t.Fatalf("%s: hw/sw disagree at %#x", scheme, uint64(v))
				}
			}
		}
	}
}

func TestTHPReducesWalks(t *testing.T) {
	// With THP, translations per footprint shrink; verify 2MB entries
	// appear for the LVM scheme. Use a hole-free heap so full 512-page
	// runs exist.
	mem := phys.New(256 << 20)
	sys := NewSystem(mem, SchemeLVM)
	cfg := vas.DefaultConfig()
	cfg.HeapPages = 4096
	cfg.MmapRegions = 1
	cfg.MmapPages = 1024
	cfg.HoleFraction = 0
	p, err := sys.Launch(1, vas.Generate(cfg, 7), true)
	if err != nil {
		t.Fatal(err)
	}
	w := sys.Walker()
	huge := 0
	for _, r := range p.Space.Regions {
		for i := 0; i < len(r.Mapped); i += 64 {
			if out := w.Walk(1, r.Mapped[i]); out.Found && out.Entry.Size() == addr.Page2M {
				huge++
			}
		}
	}
	if huge == 0 {
		t.Error("no huge translations under THP")
	}
	_ = sys
}

func TestMapUnmapDynamic(t *testing.T) {
	for _, scheme := range AllSchemes() {
		sys, p := launch(t, scheme, false)
		heap := heapOf(p.Space)
		// Map a page in a heap hole or beyond the mapped tail.
		v := heap.Base + addr.VPN(heap.Span-1)
		if _, ok := sys.SoftwareLookup(1, v); ok {
			t.Logf("%s: tail already mapped; skipping", scheme)
			continue
		}
		if err := sys.MapPage(1, v, addr.Page4K); err != nil {
			t.Fatalf("%s: MapPage: %v", scheme, err)
		}
		if out := sys.Walker().Walk(1, v); !out.Found {
			t.Fatalf("%s: dynamically mapped page not translated", scheme)
		}
		if !sys.UnmapPage(1, v) {
			t.Fatalf("%s: unmap failed", scheme)
		}
		if out := sys.Walker().Walk(1, v); out.Found {
			t.Fatalf("%s: unmapped page still translated", scheme)
		}
	}
}

func heapOf(s *vas.AddressSpace) *vas.Region {
	for i := range s.Regions {
		if s.Regions[i].Kind == vas.Heap {
			return &s.Regions[i]
		}
	}
	panic("no heap")
}

func TestLVMHeapGrowthUsesEdgePath(t *testing.T) {
	mem := phys.New(256 << 20)
	sys := NewSystem(mem, SchemeLVM)
	// A heap with room to grow: span 8192, only first 4096 mapped.
	cfg := vas.DefaultConfig()
	cfg.HeapPages = 8192
	cfg.MmapRegions = 1
	cfg.MmapPages = 512
	space := vas.Generate(cfg, 3)
	heap := heapOf(space)
	heap.Mapped = heap.Mapped[:0]
	for i := 0; i < 4096; i++ {
		heap.Mapped = append(heap.Mapped, heap.Base+addr.VPN(i))
	}
	p, err := sys.Launch(1, space, false)
	if err != nil {
		t.Fatal(err)
	}
	rebuildsBefore := p.LvmIx.Stats().Rebuilds
	// Grow the heap page by page — the common contiguous-expansion
	// pattern (§4.3.4): no rebuilds should occur.
	for i := 4096; i < 6000; i++ {
		if err := sys.MapPage(1, heap.Base+addr.VPN(i), addr.Page4K); err != nil {
			t.Fatalf("grow %d: %v", i, err)
		}
	}
	s := p.LvmIx.Stats()
	if s.Rebuilds != rebuildsBefore {
		t.Errorf("heap growth triggered %d rebuilds", s.Rebuilds-rebuildsBefore)
	}
	// All grown pages translate.
	w := sys.Walker()
	for i := 4096; i < 6000; i += 111 {
		if out := w.Walk(1, heap.Base+addr.VPN(i)); !out.Found {
			t.Fatalf("grown page %d not translated", i)
		}
	}
	// Management cost was accounted.
	if p.MgmtCycles == 0 {
		t.Error("no management cycles recorded")
	}
}

func TestLVMRetrainStatsWithinPaperRange(t *testing.T) {
	// §7.3: retrains at most 3, on average 2, over a full run. Exercise a
	// launch plus sustained growth and check the count stays tiny.
	mem := phys.New(512 << 20)
	sys := NewSystem(mem, SchemeLVM)
	cfg := vas.DefaultConfig()
	cfg.HeapPages = 1 << 15
	cfg.MmapRegions = 2
	cfg.MmapPages = 4096
	space := vas.Generate(cfg, 5)
	heap := heapOf(space)
	heap.Mapped = heap.Mapped[:1<<14]
	p, err := sys.Launch(1, space, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1 << 14; i < 1<<15; i++ {
		if err := sys.MapPage(1, heap.Base+addr.VPN(i), addr.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	s := p.LvmIx.Stats()
	// §7.3: retraining events are at most 3 (average 2) over a full run;
	// rebuilds and retrains are both full-model-refresh events.
	if s.Retrains+s.Rebuilds > 3 {
		t.Errorf("retrains+rebuilds = %d+%d, paper reports ≤ 3 total", s.Retrains, s.Rebuilds)
	}
}

func TestTableOverheadOrdering(t *testing.T) {
	// §7.3 memory consumption: LVM ≤ ~1.3× minimum; ECPT overhead larger.
	mem1 := phys.New(512 << 20)
	lvm := NewSystem(mem1, SchemeLVM)
	cfg := vas.DefaultConfig()
	cfg.HeapPages = 1 << 15
	cfg.MmapRegions = 2
	cfg.MmapPages = 4096
	if _, err := lvm.Launch(1, vas.Generate(cfg, 9), false); err != nil {
		t.Fatal(err)
	}
	mem2 := phys.New(512 << 20)
	ec := NewSystem(mem2, SchemeECPT)
	if _, err := ec.Launch(1, vas.Generate(cfg, 9), false); err != nil {
		t.Fatal(err)
	}
	lvmOver := lvm.TableOverheadBytes(1)
	ecptOver := ec.TableOverheadBytes(1)
	if lvmOver >= ecptOver {
		t.Errorf("LVM overhead %d ≥ ECPT overhead %d, paper shows the reverse", lvmOver, ecptOver)
	}
}

func TestNormalizationTransparent(t *testing.T) {
	// ASLR on vs off must not change LVM translation results.
	sys, p := launch(t, SchemeLVM, false)
	w := sys.Walker()
	for _, r := range p.Space.Regions {
		for i := 0; i < len(r.Mapped); i += 53 {
			v := r.Mapped[i]
			out := w.Walk(1, v)
			if !out.Found {
				t.Fatalf("ASLR'd VPN %#x failed", uint64(v))
			}
		}
	}
	if p.Norm.Regions() == 0 {
		t.Error("normalizer has no regions")
	}
}
