package oskernel

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// TestProtectSetAndClear: Protect must raise and drop permission bits for
// every scheme, visible through both the software walk and the hardware
// walker, without disturbing the PPN or page size.
func TestProtectSetAndClear(t *testing.T) {
	for _, scheme := range AllSchemes() {
		sys, p := launch(t, scheme, false)
		v := heapOf(p.Space).Mapped[3]
		orig, ok := sys.SoftwareLookup(1, v)
		if !ok {
			t.Fatalf("%s: page not mapped", scheme)
		}

		if !sys.Protect(1, v, pte.FlagWritable|pte.FlagDirty, 0) {
			t.Fatalf("%s: protect failed", scheme)
		}
		e, ok := sys.SoftwareLookup(1, v)
		if !ok || !e.Dirty() || e&pte.FlagWritable == 0 {
			t.Fatalf("%s: flags not set: %v", scheme, e)
		}
		if e.PPN() != orig.PPN() || e.Size() != orig.Size() {
			t.Fatalf("%s: protect corrupted translation: %v -> %v", scheme, orig, e)
		}

		if !sys.Protect(1, v, 0, pte.FlagWritable) {
			t.Fatalf("%s: clear failed", scheme)
		}
		e, _ = sys.SoftwareLookup(1, v)
		if e&pte.FlagWritable != 0 {
			t.Fatalf("%s: writable bit survived clear", scheme)
		}
		if !e.Dirty() {
			t.Fatalf("%s: clear dropped an unrelated bit", scheme)
		}

		// The hardware walker observes the updated entry (the OS modified
		// the PTE in place; no table was moved).
		if out := sys.Walker().Walk(1, v); !out.Found || out.Entry != e {
			t.Fatalf("%s: hardware walk sees %v, software %v", scheme, out.Entry, e)
		}
	}
}

// TestProtectMasksDangerousBits: attempts to flip Present, size, or PPN
// bits through Protect must be ignored entirely.
func TestProtectMasksDangerousBits(t *testing.T) {
	sys, p := launch(t, SchemeLVM, false)
	v := heapOf(p.Space).Mapped[0]
	orig, _ := sys.SoftwareLookup(1, v)
	if !sys.Protect(1, v, ^pte.Entry(0)&^ProtectableFlags, 0) {
		t.Fatal("no-op protect reported failure")
	}
	e, ok := sys.SoftwareLookup(1, v)
	if !ok || e != orig {
		t.Fatalf("dangerous set leaked through the mask: %v -> %v", orig, e)
	}
	if sys.Protect(1, v, 0, pte.FlagPresent) {
		e, ok = sys.SoftwareLookup(1, v)
		if !ok || !e.Present() {
			t.Fatal("clear of Present leaked through the mask")
		}
	}
}

// TestProtectUnmapped: Protect on a hole or an unknown ASID returns false.
func TestProtectUnmapped(t *testing.T) {
	mem := phys.New(256 << 20)
	sys := NewSystem(mem, SchemeRadix)
	space := smallSpace(9)
	if _, err := sys.Launch(1, space, false); err != nil {
		t.Fatal(err)
	}
	heap := heapOf(space)
	hole := heap.Base + addr.VPN(heap.Span) + 100
	if sys.Protect(1, hole, pte.FlagWritable, 0) {
		t.Error("protect of unmapped page succeeded")
	}
	if sys.Protect(9, heap.Mapped[0], pte.FlagWritable, 0) {
		t.Error("protect under unknown ASID succeeded")
	}
}

// TestProtectHugePage: flag changes on a 2 MB mapping apply to the whole
// huge page — any interior VPN addresses the same entry.
func TestProtectHugePage(t *testing.T) {
	for _, scheme := range AllSchemes() {
		sys, p := launch(t, scheme, true)
		var huge *pte.Entry
		var base uint64
		for _, r := range p.Space.Regions {
			for _, v := range r.Mapped {
				if e, ok := sys.SoftwareLookup(1, v); ok && e.Size().BaseVPNs() == 512 {
					huge, base = &e, uint64(v)
					break
				}
			}
			if huge != nil {
				break
			}
		}
		if huge == nil {
			continue // this layout produced no huge pages for the scheme
		}
		interior := base | 137
		if !sys.Protect(1, addr.VPN(interior), pte.FlagDirty, 0) {
			t.Fatalf("%s: protect via interior VPN failed", scheme)
		}
		e, ok := sys.SoftwareLookup(1, addr.VPN(base))
		if !ok || !e.Dirty() {
			t.Fatalf("%s: huge-page base does not see the flag", scheme)
		}
	}
}
