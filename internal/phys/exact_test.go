package phys

import (
	"testing"

	"lvm/internal/addr"
)

func TestAllocExactFreeRange(t *testing.T) {
	m := New(1 << 20) // 256 pages
	if err := m.AllocExact(16, 2); err != nil {
		t.Fatalf("AllocExact on fresh memory: %v", err)
	}
	// The exact range is now taken: allocating it again must fail.
	if err := m.AllocExact(16, 2); err == nil {
		t.Fatal("double AllocExact succeeded")
	}
	// And the surrounding space is still allocatable.
	if err := m.AllocExact(20, 2); err != nil {
		t.Fatalf("adjacent block: %v", err)
	}
	m.Free(16, 2)
	m.Free(20, 2)
	if m.FreePages() != m.TotalPages() {
		t.Errorf("leak after frees: %d != %d", m.FreePages(), m.TotalPages())
	}
}

func TestAllocExactUnaligned(t *testing.T) {
	m := New(1 << 20)
	if err := m.AllocExact(3, 2); err == nil {
		t.Fatal("unaligned AllocExact succeeded")
	}
}

func TestAllocExactOutOfRange(t *testing.T) {
	m := New(1 << 20) // 256 pages
	if err := m.AllocExact(256, 0); err != ErrNoMemory {
		t.Fatalf("out-of-range AllocExact: %v", err)
	}
}

func TestAllocExactAfterSplits(t *testing.T) {
	m := New(1 << 20)
	// Take the first page, which splits the top block into buddies.
	p, _ := m.Alloc(0)
	if p != 0 {
		t.Fatalf("expected lowest-address policy, got %#x", uint64(p))
	}
	// Page 1 is free inside a split block; exact-allocating it must work.
	if err := m.AllocExact(1, 0); err != nil {
		t.Fatalf("AllocExact after splits: %v", err)
	}
	// Page 0 is allocated; exact must fail.
	if err := m.AllocExact(0, 0); err == nil {
		t.Fatal("AllocExact of an allocated page succeeded")
	}
}

func TestDeterministicAllocationOrder(t *testing.T) {
	// Two identical allocation sequences must hand out identical PFNs —
	// the property the simulation's reproducibility depends on.
	runSeq := func() []addr.PPN {
		m := New(4 << 20)
		var out []addr.PPN
		var held []addr.PPN
		for i := 0; i < 500; i++ {
			p, err := m.Alloc(i % 3)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
			held = append(held, p)
			if i%7 == 6 {
				m.Free(held[0], 0%3) // first alloc was order 0
				held = held[1:]
				// Only free order-0 allocations deterministically: track
				// the order via index.
				break
			}
		}
		return out
	}
	a, b := runSeq(), runSeq()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation %d differs: %#x vs %#x", i, uint64(a[i]), uint64(b[i]))
		}
	}
}

func TestLowestAddressFirst(t *testing.T) {
	m := New(1 << 20)
	a, _ := m.Alloc(0)
	b, _ := m.Alloc(0)
	if a != 0 || b != 1 {
		t.Errorf("allocations not lowest-first: %#x %#x", uint64(a), uint64(b))
	}
	m.Free(a, 0)
	c, _ := m.Alloc(0)
	if c != 0 {
		t.Errorf("freed lowest block not reused first: %#x", uint64(c))
	}
}
