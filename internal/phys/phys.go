// Package phys simulates physical memory managed by a Linux-style buddy
// allocator.
//
// It provides the substrate the paper's evaluation depends on in three ways:
//
//  1. Every page-table scheme allocates its tables here, so physical
//     contiguity constraints are real: LVM's leaf training asks the
//     allocator for the next available allocation order (paper §4.3.2) and
//     sizes gapped page tables accordingly.
//  2. The buddy allocator can be aged into datacenter-like fragmentation to
//     reproduce Figure 3 (contiguous-allocatable free memory by block size)
//     and the free-memory-fragmentation-index (FMFI) sweeps of §7.3.
//  3. Data pages for the simulated workloads are allocated here so that
//     PPN assignment reflects a fragmented machine rather than an identity
//     mapping.
package phys

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"

	"lvm/internal/addr"
)

// freeSet is a deterministic free-block set for one buddy order: a bitmap
// over block indices (base PFN >> order) with a lower-bound hint on the
// lowest set bit, so allocation always hands out the lowest-address block.
// Determinism matters — simulation results must be reproducible run to run
// — and the bitmap keeps the per-page launch cost of a tenant machine flat
// (a map-based set dominated serving profiles with hashing and rehash
// churn).
type freeSet struct {
	words []uint64
	shift uint   // block index = base PFN >> shift
	n     int    // set-bit count
	min   uint64 // lower bound on the lowest set block index
}

func newFreeSet(order int, totalPages uint64) *freeSet {
	nblocks := (totalPages + blockPages(order) - 1) >> uint(order)
	return &freeSet{
		words: make([]uint64, (nblocks+63)/64),
		shift: uint(order),
		min:   ^uint64(0),
	}
}

func (f *freeSet) add(b uint64) {
	i := b >> f.shift
	w, bit := i/64, uint(i%64)
	if f.words[w]&(1<<bit) != 0 {
		return
	}
	f.words[w] |= 1 << bit
	f.n++
	if i < f.min {
		f.min = i
	}
}

func (f *freeSet) remove(b uint64) {
	i := b >> f.shift
	w, bit := i/64, uint(i%64)
	if f.words[w]&(1<<bit) != 0 {
		f.words[w] &^= 1 << bit
		f.n--
	}
}

func (f *freeSet) contains(b uint64) bool {
	// Out-of-range probes happen legitimately: Free probes the buddy of the
	// last block, which can lie past the end of a non-power-of-two memory.
	i := b >> f.shift
	if w := i / 64; w < uint64(len(f.words)) {
		return f.words[w]&(1<<uint(i%64)) != 0
	}
	return false
}

func (f *freeSet) len() int { return f.n }

// popMin removes and returns the lowest-address free block. min never
// overshoots the lowest set bit (add lowers it, removals only raise the
// true minimum), so scanning forward from it is exact.
func (f *freeSet) popMin() (uint64, bool) {
	if f.n == 0 {
		return 0, false
	}
	for w := f.min / 64; w < uint64(len(f.words)); w++ {
		if f.words[w] == 0 {
			continue
		}
		bit := uint(bits.TrailingZeros64(f.words[w]))
		i := w*64 + uint64(bit)
		f.words[w] &^= 1 << bit
		f.n--
		f.min = i + 1
		return i << f.shift, true
	}
	return 0, false
}

// MaxOrder is the largest buddy order: order 18 blocks are 1 GB
// (2^18 × 4 KB), matching Linux's MAX_ORDER territory for huge allocations.
const MaxOrder = 18

// ErrNoMemory is returned when no block of the requested order (or larger)
// is free.
var ErrNoMemory = errors.New("phys: out of contiguous memory")

// Memory is a simulated physical address space with a buddy allocator.
// The zero value is not usable; call New.
type Memory struct {
	totalPages uint64
	freePages  uint64
	// freeLists[o] holds the base PFN of every free block of order o.
	freeLists [MaxOrder + 1]*freeSet
	// allocOrder records, per base PFN, order+1 of the block allocated
	// there (0 = no live allocation), for Free validation. A dense slice:
	// one byte per page beats a map by an order of magnitude on the
	// per-tenant launch path.
	allocOrder []int8
	// contiguityCap, when >= 0, caps the order the allocator will hand
	// out, emulating environments where large contiguity is exhausted
	// (the ≤256 KB experiment of §7.3).
	contiguityCap int
	// Stats.
	allocCalls, freeCalls, splits, merges uint64
}

// New creates a memory of the given size in bytes. The size is rounded down
// to a whole number of base pages; at least one max-order block is required.
func New(totalBytes uint64) *Memory {
	pages := totalBytes >> addr.PageShift
	if pages == 0 {
		panic("phys: memory too small")
	}
	m := &Memory{
		totalPages:    pages,
		freePages:     0,
		allocOrder:    make([]int8, pages),
		contiguityCap: -1,
	}
	for o := range m.freeLists {
		m.freeLists[o] = newFreeSet(o, pages)
	}
	// Seed the free lists greedily with the largest aligned blocks.
	var pfn uint64
	remaining := pages
	for remaining > 0 {
		o := MaxOrder
		for o > 0 && (blockPages(o) > remaining || pfn%blockPages(o) != 0) {
			o--
		}
		m.freeLists[o].add(pfn)
		m.freePages += blockPages(o)
		pfn += blockPages(o)
		remaining -= blockPages(o)
	}
	return m
}

func blockPages(order int) uint64 { return 1 << uint(order) }

// BlockBytes returns the size in bytes of a block of the given order.
func BlockBytes(order int) uint64 { return blockPages(order) << addr.PageShift }

// OrderForBytes returns the smallest order whose block covers n bytes.
func OrderForBytes(n uint64) int {
	for o := 0; o <= MaxOrder; o++ {
		if BlockBytes(o) >= n {
			return o
		}
	}
	return MaxOrder
}

// TotalPages returns the number of base pages in the memory.
func (m *Memory) TotalPages() uint64 { return m.totalPages }

// FreePages returns the number of free base pages.
func (m *Memory) FreePages() uint64 { return m.freePages }

// SetContiguityCap caps the largest order Alloc will satisfy, simulating a
// machine whose large contiguity is exhausted. Pass a negative value to
// remove the cap.
func (m *Memory) SetContiguityCap(order int) { m.contiguityCap = order }

// MaxFreeOrder returns the largest order that currently has a free block,
// honoring the contiguity cap. This is the "next available allocation
// order" query LVM's leaf training performs (paper §4.3.2). Returns -1 when
// memory is exhausted.
func (m *Memory) MaxFreeOrder() int {
	best := -1
	for o := MaxOrder; o >= 0; o-- {
		if m.freeLists[o].len() > 0 {
			best = o
			break
		}
	}
	if best >= 0 && m.contiguityCap >= 0 && best > m.contiguityCap {
		best = m.contiguityCap
	}
	return best
}

// Alloc allocates a block of 2^order pages and returns its base PFN.
func (m *Memory) Alloc(order int) (addr.PPN, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("phys: invalid order %d", order)
	}
	if m.contiguityCap >= 0 && order > m.contiguityCap {
		return 0, ErrNoMemory
	}
	m.allocCalls++
	// Find the smallest free order >= requested. The contiguity cap limits
	// the order a caller may *request* (no large allocation succeeds), but
	// small requests may still split larger free blocks, exactly as a real
	// buddy allocator would.
	from := -1
	for o := order; o <= MaxOrder; o++ {
		if m.freeLists[o].len() > 0 {
			from = o
			break
		}
	}
	if from < 0 {
		return 0, ErrNoMemory
	}
	base, ok := m.freeLists[from].popMin()
	if !ok {
		return 0, ErrNoMemory
	}
	// Split down to the requested order, returning the upper halves.
	for o := from; o > order; o-- {
		m.splits++
		half := base + blockPages(o-1)
		m.freeLists[o-1].add(half)
	}
	m.allocOrder[base] = int8(order) + 1
	m.freePages -= blockPages(order)
	return addr.PPN(base), nil
}

// AllocPage allocates a single base page.
func (m *Memory) AllocPage() (addr.PPN, error) { return m.Alloc(0) }

// AllocExact allocates the specific block [base, base+2^order) if it is
// entirely free. Gapped page tables use this to expand in place: when the
// physically adjacent block is still free, a table can grow without
// scattering (paper §4.3.4 rescaling).
//
// Buddy invariant: a fully free naturally-aligned range is always contained
// in a single free block of equal or larger order (free buddies always
// coalesce), so it suffices to search containers upward.
func (m *Memory) AllocExact(base addr.PPN, order int) error {
	if order < 0 || order > MaxOrder {
		return fmt.Errorf("phys: invalid order %d", order)
	}
	b := uint64(base)
	if b%blockPages(order) != 0 {
		return fmt.Errorf("phys: base %#x not aligned for order %d", b, order)
	}
	if b+blockPages(order) > m.totalPages {
		return ErrNoMemory
	}
	for o := order; o <= MaxOrder; o++ {
		container := b &^ (blockPages(o) - 1)
		if !m.freeLists[o].contains(container) {
			continue
		}
		m.allocCalls++
		m.freeLists[o].remove(container)
		// Split the container down, freeing the sibling halves that do
		// not contain the target block.
		cur := container
		for co := o; co > order; co-- {
			m.splits++
			half := blockPages(co - 1)
			if b < cur+half {
				// Target is in the lower half; free the upper.
				m.freeLists[co-1].add(cur + half)
			} else {
				// Target is in the upper half; free the lower.
				m.freeLists[co-1].add(cur)
				cur += half
			}
		}
		m.allocOrder[b] = int8(order) + 1
		m.freePages -= blockPages(order)
		return nil
	}
	return ErrNoMemory
}

// Free returns a previously allocated block to the allocator, coalescing
// with free buddies.
func (m *Memory) Free(base addr.PPN, order int) {
	b := uint64(base)
	got := int(m.allocOrder[b]) - 1
	if got != order {
		panic(fmt.Sprintf("phys: bad free of pfn %#x order %d (allocated order %d, ok=%t)", b, order, got, got >= 0))
	}
	m.allocOrder[b] = 0
	m.freeCalls++
	m.freePages += blockPages(order)
	for order < MaxOrder {
		buddy := b ^ blockPages(order)
		if !m.freeLists[order].contains(buddy) {
			break
		}
		m.freeLists[order].remove(buddy)
		m.merges++
		if buddy < b {
			b = buddy
		}
		order++
	}
	m.freeLists[order].add(b)
}

// ContiguousFreeFraction returns the fraction of free memory that is
// immediately allocatable as a contiguous block of at least the given order
// — the metric plotted in Figure 3.
func (m *Memory) ContiguousFreeFraction(order int) float64 {
	if m.freePages == 0 {
		return 0
	}
	var pages uint64
	for o := order; o <= MaxOrder; o++ {
		pages += uint64(m.freeLists[o].len()) * blockPages(o)
	}
	return float64(pages) / float64(m.freePages)
}

// FMFI returns the free memory fragmentation index at the given order:
// the fraction of free memory NOT usable for an allocation of that order
// (0 = fully defragmented, →1 = fully fragmented). This matches the
// unusable-free-space index of Gorman & Whitcroft used by the paper's
// §7.3 fragmentation sweep (FMFI 0.8 / 0.85 / 0.9).
func (m *Memory) FMFI(order int) float64 {
	if m.freePages == 0 {
		return 1
	}
	return 1 - m.ContiguousFreeFraction(order)
}

// FreeBlockCount returns the number of free blocks at exactly the given
// order (for tests and diagnostics).
func (m *Memory) FreeBlockCount(order int) int { return m.freeLists[order].len() }

// Stats returns cumulative allocator statistics.
func (m *Memory) Stats() (allocs, frees, splits, merges uint64) {
	return m.allocCalls, m.freeCalls, m.splits, m.merges
}

// FragmentConfig controls how Fragment ages the allocator.
type FragmentConfig struct {
	// TargetFreeFraction is the fraction of memory left free after aging.
	TargetFreeFraction float64
	// MeanRunPages is the mean length (in pages) of the contiguous free
	// runs the aging process leaves behind. Datacenter-like fragmentation
	// uses runs of a few dozen pages: contiguity survives at the
	// hundreds-of-KB scale but not at MBs (paper Fig. 3).
	MeanRunPages int
	// MaxRunPages caps individual free runs.
	MaxRunPages int
}

// DatacenterFragmentation is the aging profile matching the paper's Meta
// datacenter study: ~25% memory free, free runs averaging 32 pages (128 KB)
// and capped at 512 pages (2 MB).
var DatacenterFragmentation = FragmentConfig{
	TargetFreeFraction: 0.25,
	MeanRunPages:       32,
	MaxRunPages:        512,
}

// Fragment ages the memory into a fragmented state: it fills memory with
// single-page allocations and then frees geometrically distributed runs
// until the target free fraction is reached. The result is a machine with
// plentiful small contiguity and essentially no large contiguity, the
// regime of Figure 3.
func (m *Memory) Fragment(seed int64, cfg FragmentConfig) {
	if cfg.TargetFreeFraction <= 0 || cfg.TargetFreeFraction >= 1 {
		panic("phys: TargetFreeFraction must be in (0,1)")
	}
	if cfg.MeanRunPages < 1 {
		cfg.MeanRunPages = 1
	}
	if cfg.MaxRunPages < cfg.MeanRunPages {
		cfg.MaxRunPages = cfg.MeanRunPages * 8
	}
	rng := rand.New(rand.NewSource(seed))

	// Phase 1: exhaust memory with order-0 allocations.
	var held []uint64
	for {
		p, err := m.Alloc(0)
		if err != nil {
			break
		}
		held = append(held, uint64(p))
	}

	// Phase 2: free geometric runs of consecutive pages at random
	// positions until the free target is met. Runs of consecutive pages
	// coalesce up to the run length but no further, because neighbours
	// remain allocated.
	want := uint64(float64(m.totalPages) * cfg.TargetFreeFraction)
	freed := make(map[uint64]bool, want)
	for m.freePages < want && len(held) > 0 {
		run := 1 + int(rng.ExpFloat64()*float64(cfg.MeanRunPages-1))
		if run > cfg.MaxRunPages {
			run = cfg.MaxRunPages
		}
		start := uint64(rng.Int63n(int64(m.totalPages)))
		for i := 0; i < run && m.freePages < want; i++ {
			pfn := start + uint64(i)
			if pfn >= m.totalPages || freed[pfn] {
				continue
			}
			if m.allocOrder[pfn] == 1 { // a live order-0 allocation
				m.Free(addr.PPN(pfn), 0)
				freed[pfn] = true
			}
		}
	}
	// The remaining held pages stay allocated, representing resident
	// application data on the aged machine.
}

// FragmentToFMFI ages the memory until the FMFI at the given order meets or
// exceeds the target, used by the §7.3 FMFI-0.8/0.85/0.9 sweep. It works by
// repeatedly aging with progressively smaller free runs.
func (m *Memory) FragmentToFMFI(seed int64, order int, target float64) {
	run := 1 << uint(order)
	for attempt := 0; attempt < 12; attempt++ {
		cfg := FragmentConfig{
			TargetFreeFraction: 0.25,
			MeanRunPages:       run,
			MaxRunPages:        run * 2,
		}
		m.Fragment(seed+int64(attempt), cfg)
		if m.FMFI(order) >= target {
			return
		}
		if run > 1 {
			run /= 2
		}
	}
}
