package phys

import (
	"testing"
	"testing/quick"

	"lvm/internal/addr"
)

const testMem = 64 << 20 // 64 MB

func TestNewAllFree(t *testing.T) {
	m := New(testMem)
	if m.FreePages() != m.TotalPages() {
		t.Errorf("fresh memory: free=%d total=%d", m.FreePages(), m.TotalPages())
	}
	if m.TotalPages() != testMem>>addr.PageShift {
		t.Errorf("total pages = %d", m.TotalPages())
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	m := New(testMem)
	base, err := m.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreePages() != m.TotalPages()-16 {
		t.Errorf("free after order-4 alloc = %d", m.FreePages())
	}
	m.Free(base, 4)
	if m.FreePages() != m.TotalPages() {
		t.Errorf("free after release = %d", m.FreePages())
	}
}

func TestAllocAlignment(t *testing.T) {
	m := New(testMem)
	for order := 0; order <= 10; order++ {
		base, err := m.Alloc(order)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(base)%blockPages(order) != 0 {
			t.Errorf("order-%d block at %#x not naturally aligned", order, uint64(base))
		}
	}
}

func TestAllocDistinct(t *testing.T) {
	m := New(1 << 20) // 256 pages
	seen := map[addr.PPN]bool{}
	for {
		p, err := m.Alloc(0)
		if err != nil {
			break
		}
		if seen[p] {
			t.Fatalf("page %#x handed out twice", uint64(p))
		}
		seen[p] = true
	}
	if len(seen) != 256 {
		t.Errorf("allocated %d pages from 256-page memory", len(seen))
	}
}

func TestExhaustion(t *testing.T) {
	m := New(1 << 20)
	for i := 0; i < 256; i++ {
		if _, err := m.Alloc(0); err != nil {
			t.Fatalf("alloc %d failed early: %v", i, err)
		}
	}
	if _, err := m.Alloc(0); err != ErrNoMemory {
		t.Errorf("expected ErrNoMemory, got %v", err)
	}
}

func TestCoalescing(t *testing.T) {
	m := New(1 << 20)
	var pages []addr.PPN
	for i := 0; i < 256; i++ {
		p, _ := m.Alloc(0)
		pages = append(pages, p)
	}
	for _, p := range pages {
		m.Free(p, 0)
	}
	// Everything freed: the memory must coalesce back so a max-size block
	// is allocatable again.
	if got := m.MaxFreeOrder(); got != 8 { // 256 pages = order 8
		t.Errorf("MaxFreeOrder after full free = %d want 8", got)
	}
}

func TestDoubleFreepanics(t *testing.T) {
	m := New(1 << 20)
	p, _ := m.Alloc(0)
	m.Free(p, 0)
	defer func() {
		if recover() == nil {
			t.Error("double free must panic")
		}
	}()
	m.Free(p, 0)
}

func TestWrongOrderFreePanics(t *testing.T) {
	m := New(1 << 20)
	p, _ := m.Alloc(2)
	defer func() {
		if recover() == nil {
			t.Error("free with wrong order must panic")
		}
	}()
	m.Free(p, 3)
}

func TestContiguityCap(t *testing.T) {
	m := New(testMem)
	m.SetContiguityCap(6) // 256 KB
	if _, err := m.Alloc(7); err != ErrNoMemory {
		t.Errorf("alloc above cap: err = %v", err)
	}
	if _, err := m.Alloc(6); err != nil {
		t.Errorf("alloc at cap: err = %v", err)
	}
	if got := m.MaxFreeOrder(); got != 6 {
		t.Errorf("MaxFreeOrder with cap = %d", got)
	}
	m.SetContiguityCap(-1)
	if _, err := m.Alloc(10); err != nil {
		t.Errorf("alloc after removing cap: %v", err)
	}
}

func TestContiguousFreeFractionFresh(t *testing.T) {
	m := New(testMem)
	// Fresh memory is one giant run: 100% of free memory is allocatable at
	// every order up to the memory size.
	if got := m.ContiguousFreeFraction(10); got != 1.0 {
		t.Errorf("fresh contiguous fraction at order 10 = %v", got)
	}
}

func TestFragmentShape(t *testing.T) {
	m := New(testMem)
	m.Fragment(1, DatacenterFragmentation)

	free := float64(m.FreePages()) / float64(m.TotalPages())
	if free < 0.15 || free > 0.35 {
		t.Errorf("fragmented free fraction = %v, want ≈0.25", free)
	}
	// Figure 3 shape: small contiguity plentiful, large contiguity gone.
	small := m.ContiguousFreeFraction(3)   // 32 KB
	mid := m.ContiguousFreeFraction(6)     // 256 KB
	large := m.ContiguousFreeFraction(13)  // 32 MB
	larger := m.ContiguousFreeFraction(16) // 256 MB
	if small < 0.5 {
		t.Errorf("32KB contiguity = %.2f, want most free memory", small)
	}
	if mid <= large {
		t.Errorf("contiguity must fall with size: 256KB=%.3f 32MB=%.3f", mid, large)
	}
	if larger > 0.01 {
		t.Errorf("256MB contiguity = %.3f, want ≈0 (paper Fig. 3)", larger)
	}
}

func TestFMFI(t *testing.T) {
	m := New(testMem)
	if got := m.FMFI(9); got != 0 {
		t.Errorf("fresh FMFI = %v", got)
	}
	m.Fragment(7, DatacenterFragmentation)
	if got := m.FMFI(9); got <= 0.2 {
		t.Errorf("fragmented FMFI(2MB) = %v, want high", got)
	}
	if got := m.FMFI(0); got != 0 {
		t.Errorf("FMFI at order 0 must be 0 (any free page works), got %v", got)
	}
}

func TestFragmentToFMFI(t *testing.T) {
	m := New(testMem)
	m.FragmentToFMFI(3, 9, 0.8)
	if got := m.FMFI(9); got < 0.8 {
		t.Errorf("FMFI after targeting 0.8 = %v", got)
	}
	// Even at FMFI 0.9-class fragmentation, small allocations must still
	// succeed — this is the property LVM's adaptive leaf sizing relies on.
	if _, err := m.Alloc(0); err != nil {
		t.Errorf("order-0 alloc under fragmentation failed: %v", err)
	}
}

func TestOrderForBytes(t *testing.T) {
	cases := []struct {
		bytes uint64
		want  int
	}{
		{1, 0},
		{4096, 0},
		{4097, 1},
		{8192, 1},
		{256 << 10, 6},
		{2 << 20, 9},
		{1 << 30, 18},
	}
	for _, c := range cases {
		if got := OrderForBytes(c.bytes); got != c.want {
			t.Errorf("OrderForBytes(%d) = %d want %d", c.bytes, got, c.want)
		}
	}
}

func TestQuickAllocFreeConservesPages(t *testing.T) {
	// Property: any interleaving of allocs and frees conserves pages.
	f := func(ops []uint8) bool {
		m := New(4 << 20)
		type block struct {
			base  addr.PPN
			order int
		}
		var live []block
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				order := int(op % 5)
				base, err := m.Alloc(order)
				if err == nil {
					live = append(live, block{base, order})
				}
			} else {
				i := int(op) % len(live)
				m.Free(live[i].base, live[i].order)
				live = append(live[:i], live[i+1:]...)
			}
			var held uint64
			for _, b := range live {
				held += blockPages(b.order)
			}
			if m.FreePages()+held != m.TotalPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
