// Package pte defines the 8-byte page table entry format shared by every
// scheme in the repository, plus the VPN-tagged entry used by hashed and
// learned page tables.
//
// Radix page tables locate a PTE purely by position, so a bare 8-byte entry
// suffices. Hashed page tables and LVM's gapped page tables locate entries
// by (possibly colliding) prediction, so each slot also carries the VPN it
// maps; the walker fetches the 64-byte cluster containing the slot and
// validates the tag (paper Fig. 4 step 7).
package pte

import (
	"fmt"

	"lvm/internal/addr"
)

// Entry is an 8-byte page table entry laid out x86-64 style:
//
//	bit 0        present
//	bit 1        writable
//	bit 2        user
//	bit 5        accessed
//	bit 6        dirty
//	bits 8-9     page size (00=4K, 01=2M, 10=1G) — LVM's 2-bit encoding (§4.4)
//	bits 12-51   physical page number (4 KB units)
type Entry uint64

// Flag bits.
const (
	FlagPresent  Entry = 1 << 0
	FlagWritable Entry = 1 << 1
	FlagUser     Entry = 1 << 2
	FlagAccessed Entry = 1 << 5
	FlagDirty    Entry = 1 << 6

	sizeShift = 8
	sizeMask  = Entry(0x3) << sizeShift

	ppnShift = 12
	ppnMask  = Entry((uint64(1)<<40)-1) << ppnShift
)

// Bytes is the size of an entry: the absolute minimum of eight bytes per
// translation that §7.3's memory-consumption comparison uses as its floor.
const Bytes = 8

// New builds a present entry for the given physical page and page size.
func New(ppn addr.PPN, size addr.PageSize) Entry {
	e := FlagPresent
	e |= Entry(size) << sizeShift & sizeMask
	e |= Entry(ppn) << ppnShift & ppnMask
	return e
}

// Present reports whether the entry maps a page.
func (e Entry) Present() bool { return e&FlagPresent != 0 }

// PPN returns the mapped physical page number.
func (e Entry) PPN() addr.PPN { return addr.PPN((e & ppnMask) >> ppnShift) }

// Size returns the translation granularity encoded in the two size bits.
func (e Entry) Size() addr.PageSize { return addr.PageSize((e & sizeMask) >> sizeShift) }

// WithFlags returns the entry with the given flag bits set.
func (e Entry) WithFlags(flags Entry) Entry { return e | flags }

// ClearFlags returns the entry with the given flag bits cleared.
func (e Entry) ClearFlags(flags Entry) Entry { return e &^ flags }

// Accessed reports the accessed bit.
func (e Entry) Accessed() bool { return e&FlagAccessed != 0 }

// Dirty reports the dirty bit.
func (e Entry) Dirty() bool { return e&FlagDirty != 0 }

// String implements fmt.Stringer for diagnostics.
func (e Entry) String() string {
	if !e.Present() {
		return "PTE{not present}"
	}
	return fmt.Sprintf("PTE{ppn=%#x size=%s a=%t d=%t}", uint64(e.PPN()), e.Size(), e.Accessed(), e.Dirty())
}

// Tagged is a VPN-tagged slot used in gapped and hashed page tables. The tag
// stores the base-page VPN the entry maps (for huge pages, the VPN of the
// first 4 KB sub-page) so the walker can validate a predicted location.
//
// Architecturally a slot occupies 8 bytes: the paper's §7.3 memory
// accounting (gapped tables cost at most 1.3× the 8-byte-per-translation
// minimum) implies the VPN tag is not a second 8-byte word per slot.
// Tag bits live at cluster granularity plus the PTE's spare bits, as in
// clustered hashed page tables (§2.2); this struct keeps the tag explicit
// for simulation correctness while TaggedBytes models the hardware layout.
type Tagged struct {
	Tag   addr.VPN
	Entry Entry
}

// TaggedBytes is the architectural footprint of one tagged slot.
const TaggedBytes = 8

// Valid reports whether the slot holds a live translation.
func (t Tagged) Valid() bool { return t.Entry.Present() }

// Matches reports whether the slot translates the given lookup VPN, taking
// huge pages into account: a 2 MB entry tagged with its first sub-page VPN
// matches any VPN inside its 512-page span (paper §4.4).
func (t Tagged) Matches(v addr.VPN) bool {
	if !t.Valid() {
		return false
	}
	return addr.AlignDown(v, t.Entry.Size()) == t.Tag
}

// ClusterSlots is the number of tagged slots that fit in one 64-byte cache
// line; the walker fetches whole clusters and checks every tag in the line
// before declaring a collision.
const ClusterSlots = 64 / TaggedBytes
