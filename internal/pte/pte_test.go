package pte

import (
	"testing"
	"testing/quick"

	"lvm/internal/addr"
)

func TestNewRoundTrip(t *testing.T) {
	e := New(0xff, addr.Page4K)
	if !e.Present() {
		t.Fatal("new entry must be present")
	}
	if e.PPN() != 0xff {
		t.Errorf("PPN = %#x", uint64(e.PPN()))
	}
	if e.Size() != addr.Page4K {
		t.Errorf("Size = %s", e.Size())
	}
}

func TestSizeEncoding(t *testing.T) {
	for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G} {
		e := New(42, s)
		if e.Size() != s {
			t.Errorf("size %s round-trips to %s", s, e.Size())
		}
	}
}

func TestFlags(t *testing.T) {
	e := New(1, addr.Page4K)
	e = e.WithFlags(FlagAccessed | FlagDirty | FlagWritable)
	if !e.Accessed() || !e.Dirty() {
		t.Error("flags not set")
	}
	e = e.ClearFlags(FlagDirty)
	if e.Dirty() {
		t.Error("dirty flag not cleared")
	}
	if !e.Accessed() {
		t.Error("accessed flag lost on clear of dirty")
	}
	if e.PPN() != 1 {
		t.Error("flag edits must not disturb the PPN")
	}
}

func TestQuickPPNRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		ppn := addr.PPN(raw & ((1 << 40) - 1))
		return New(ppn, addr.Page2M).PPN() == ppn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaggedMatches4K(t *testing.T) {
	slot := Tagged{Tag: 139, Entry: New(0xff, addr.Page4K)}
	if !slot.Matches(139) {
		t.Error("exact VPN must match")
	}
	if slot.Matches(140) {
		t.Error("different VPN must not match")
	}
}

func TestTaggedMatchesHuge(t *testing.T) {
	// Paper §4.4: 2MB page spanning VPNs [1024, 1536) tagged with 1024.
	slot := Tagged{Tag: 1024, Entry: New(512, addr.Page2M)}
	for _, v := range []addr.VPN{1024, 1100, 1535} {
		if !slot.Matches(v) {
			t.Errorf("VPN %d inside huge page must match", v)
		}
	}
	for _, v := range []addr.VPN{1023, 1536, 2048} {
		if slot.Matches(v) {
			t.Errorf("VPN %d outside huge page must not match", v)
		}
	}
}

func TestTaggedInvalid(t *testing.T) {
	var slot Tagged
	if slot.Valid() {
		t.Error("zero slot must be invalid")
	}
	if slot.Matches(0) {
		t.Error("invalid slot must never match")
	}
}

func TestClusterGeometry(t *testing.T) {
	if ClusterSlots != 8 {
		t.Errorf("64-byte line holds %d tagged slots, want 8", ClusterSlots)
	}
	if TaggedBytes != 8 || Bytes != 8 {
		t.Errorf("entry sizes changed: tagged=%d plain=%d", TaggedBytes, Bytes)
	}
}

func TestNotPresentString(t *testing.T) {
	var e Entry
	if got := e.String(); got != "PTE{not present}" {
		t.Errorf("String() = %q", got)
	}
}
