// Package racetest exposes whether the race detector is compiled in, so
// heavyweight end-to-end tests can skip themselves under the 10–20×
// -race slowdown (which would push whole-sweep packages past the per-package
// test timeout) while the cheap tests keep full race coverage.
package racetest
