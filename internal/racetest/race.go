//go:build race

package racetest

// Enabled reports that this binary was built with -race.
const Enabled = true
