// Package radix implements the x86-64 four-level radix page table and its
// hardware walker with a three-level page walk cache — the status-quo
// baseline of the paper (§2.1, Table 1).
//
// The table is built in simulated physical memory so every walk step has a
// real physical address; the walker issues up to four sequential requests
// (PGD→PUD→PMD→PTE), trimmed by PWC hits on the three upper levels, and
// stops at the PMD for 2 MB pages.
package radix

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// tableNode is one 4 KB page table (512 entries of 8 bytes).
type tableNode struct {
	ppn addr.PPN
	// children[i] points to the next-level table, for non-leaf entries.
	children [addr.RadixFanout]*tableNode
	// leaves[i] holds a leaf translation (PTE at level 1, or a 2 MB leaf
	// PMD entry at level 2).
	leaves [addr.RadixFanout]pte.Entry
}

func (n *tableNode) entryPA(index int) addr.PA {
	return addr.SlotPA(n.ppn, uint64(index), pte.Bytes)
}

// Table is one process's radix page table.
type Table struct {
	mem  *phys.Memory
	root *tableNode

	// tablePages counts allocated page-table pages, for the memory
	// overhead comparison of §7.3.
	tablePages uint64
}

// New creates an empty four-level table.
func New(mem *phys.Memory) (*Table, error) {
	t := &Table{mem: mem}
	root, err := t.newNode()
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func (t *Table) newNode() (*tableNode, error) {
	ppn, err := t.mem.Alloc(0)
	if err != nil {
		return nil, fmt.Errorf("radix: allocating table page: %w", err)
	}
	t.tablePages++
	return &tableNode{ppn: ppn}, nil
}

// Map installs a translation. 2 MB entries are installed at the PMD
// (level 2) and must be aligned.
func (t *Table) Map(v addr.VPN, e pte.Entry) error {
	leafLevel := 1
	if e.Size() == addr.Page2M {
		leafLevel = 2
		if !addr.Aligned(v, addr.Page2M) {
			return fmt.Errorf("radix: unaligned 2MB mapping at VPN %#x", uint64(v))
		}
	} else if e.Size() == addr.Page1G {
		leafLevel = 3
		if !addr.Aligned(v, addr.Page1G) {
			return fmt.Errorf("radix: unaligned 1GB mapping at VPN %#x", uint64(v))
		}
	}
	n := t.root
	for level := addr.RadixLevels; level > leafLevel; level-- {
		idx := addr.RadixIndex(v, level)
		if n.children[idx] == nil {
			child, err := t.newNode()
			if err != nil {
				return err
			}
			n.children[idx] = child
		}
		n = n.children[idx]
	}
	n.leaves[addr.RadixIndex(v, leafLevel)] = e
	return nil
}

// Unmap clears a translation. Upper-level tables are retained (Linux frees
// them lazily); returns false if nothing was mapped.
func (t *Table) Unmap(v addr.VPN) bool {
	n := t.root
	for level := addr.RadixLevels; level >= 1; level-- {
		idx := addr.RadixIndex(v, level)
		if e := n.leaves[idx]; e.Present() && level > 1 {
			// Huge leaf at this level.
			n.leaves[idx] = 0
			return true
		}
		if level == 1 {
			if !n.leaves[idx].Present() {
				return false
			}
			n.leaves[idx] = 0
			return true
		}
		if n.children[idx] == nil {
			return false
		}
		n = n.children[idx]
	}
	return false
}

// Lookup is the software walk.
func (t *Table) Lookup(v addr.VPN) (pte.Entry, bool) {
	n := t.root
	for level := addr.RadixLevels; level >= 1; level-- {
		idx := addr.RadixIndex(v, level)
		if e := n.leaves[idx]; e.Present() {
			return e, true
		}
		if level == 1 || n.children[idx] == nil {
			return 0, false
		}
		n = n.children[idx]
	}
	return 0, false
}

// TableBytes returns the physical memory consumed by page-table pages —
// the §7.3 memory-overhead metric for radix.
func (t *Table) TableBytes() uint64 { return t.tablePages * addr.PageSize4K }

// Release returns every page-table page to the allocator; the table is
// unusable afterwards (process exit).
func (t *Table) Release() {
	var free func(n *tableNode)
	free = func(n *tableNode) {
		for _, c := range n.children {
			if c != nil {
				free(c)
			}
		}
		t.mem.Free(n.ppn, 0)
	}
	if t.root != nil {
		free(t.root)
	}
	t.root = nil
	t.tablePages = 0
}

// Walker is the hardware radix page walker with a 3-level PWC.
type Walker struct {
	tables map[uint16]*Table
	// lastASID/lastTable memoize the most recent tables lookup so batched
	// walks skip the map on every access; Attach/Detach invalidate it.
	lastASID  uint16
	lastTable *Table
	// pml4e caches root entries (prefix v>>27), pdpte caches level-3
	// entries (v>>18), pde caches level-2 entries (v>>9).
	pml4e, pdpte, pde *mmu.PWC
	// buf is the reusable walk-trace buffer; Walk outcomes view it and
	// stay valid until the next Walk.
	buf mmu.WalkBuf

	// plans queue the walk plans recorded by Lookup, consumed in order by
	// WalkBatch (see the mmu.Lookuper contract).
	plans    []plan
	planPos  int
	planASID uint16
}

// plan is one functional traversal's record: the entry PAs along the
// chain, how deep it reached, and where a leaf (if any) sits. The timing
// replay combines it with live PWC probes to emit exactly the scalar
// Walk's trace without touching the table again.
type plan struct {
	vpn addr.VPN
	// pas[l-1] is the entry PA the walk fetches at level l.
	pas [addr.RadixLevels]addr.PA
	// leafLevel is the level holding a present leaf (0 = not mapped).
	leafLevel int8
	// reach is the deepest level the chain reaches before a leaf or a
	// missing child stops it.
	reach   int8
	noTable bool
	entry   pte.Entry
}

// NewWalker creates a walker over per-ASID tables with Table-1 PWC sizing
// (32 entries per level).
func NewWalker(entriesPerLevel int) *Walker {
	return &Walker{
		tables: make(map[uint16]*Table),
		pml4e:  mmu.NewPWC("pml4e", entriesPerLevel),
		pdpte:  mmu.NewPWC("pdpte", entriesPerLevel),
		pde:    mmu.NewPWC("pde", entriesPerLevel),
	}
}

// Attach registers a process's table under an ASID.
func (w *Walker) Attach(asid uint16, t *Table) {
	w.tables[asid] = t
	w.lastTable = nil
}

// Detach removes a process's table and flushes its PWC entries (process
// exit / context teardown).
func (w *Walker) Detach(asid uint16) {
	delete(w.tables, asid)
	w.lastTable = nil
	w.pml4e.FlushASID(asid)
	w.pdpte.FlushASID(asid)
	w.pde.FlushASID(asid)
}

// table resolves an ASID's table through the one-entry memo.
func (w *Walker) table(asid uint16) (*Table, bool) {
	if w.lastTable != nil && w.lastASID == asid {
		return w.lastTable, true
	}
	t, ok := w.tables[asid]
	if ok {
		w.lastASID, w.lastTable = asid, t
	}
	return t, ok
}

// Name implements mmu.Walker.
func (w *Walker) Name() string { return "radix" }

// PWCs returns the three walk-cache levels for stats inspection
// (pml4e, pdpte, pde).
func (w *Walker) PWCs() (pml4e, pdpte, pde *mmu.PWC) { return w.pml4e, w.pdpte, w.pde }

// Snapshot implements metrics.Source: the per-level PWC counters
// (pwc.pml4e.hits, pwc.pdpte.misses, ...).
func (w *Walker) Snapshot() metrics.Set {
	var s metrics.Set
	s.Merge("pwc."+w.pml4e.Name(), w.pml4e.Snapshot())
	s.Merge("pwc."+w.pdpte.Name(), w.pdpte.Snapshot())
	s.Merge("pwc."+w.pde.Name(), w.pde.Snapshot())
	return s
}

var _ metrics.Source = (*Walker)(nil)

// Walk implements mmu.Walker: probe the PWC deepest-first, then chase the
// remaining pointers sequentially. The outcome views the walker's reusable
// buffer and is valid until the next Walk.
func (w *Walker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	w.buf.Reset()
	return w.WalkInto(&w.buf, asid, v)
}

// WalkInto runs the walk appending its request groups to b, which the
// caller has prepared (ASAP seeds b with its prefetch requests and a
// collapsed group so the validating radix walk lands in the same parallel
// burst, composing the trace without an intermediate copy). The returned
// Outcome views b.
func (w *Walker) WalkInto(b *mmu.WalkBuf, asid uint16, v addr.VPN) mmu.Outcome {
	t, ok := w.table(asid)
	if !ok {
		return mmu.Outcome{}
	}

	// Deepest-first PWC probe; each level probed costs StepCycles (2
	// cycles, Table 1), symmetric with LVM's per-node model computation.
	// A pde hit skips PGD/PUD/PMD fetches, a pdpte hit skips PGD/PUD, a
	// pml4e hit skips PGD.
	startLevel := addr.RadixLevels
	wcc := mmu.StepCycles
	if w.pde.Lookup(asid, uint64(v)>>9) {
		startLevel = 1
	} else if wcc += mmu.StepCycles; w.pdpte.Lookup(asid, uint64(v)>>18) {
		startLevel = 2
	} else if wcc += mmu.StepCycles; w.pml4e.Lookup(asid, uint64(v)>>27) {
		startLevel = 3
	}

	n := t.root
	// Descend silently to startLevel's table (these levels were served by
	// the PWC).
	for level := addr.RadixLevels; level > startLevel; level-- {
		idx := addr.RadixIndex(v, level)
		if e := n.leaves[idx]; e.Present() {
			// A huge leaf above the PWC-covered level: the PWC would not
			// have cached past it; treat as found with one fetch.
			b.AddGroup(n.entryPA(idx))
			return b.Outcome(e, true, wcc)
		}
		if n.children[idx] == nil {
			return b.Outcome(0, false, wcc)
		}
		n = n.children[idx]
	}

	// Fetch the remaining levels sequentially.
	for level := startLevel; level >= 1; level-- {
		idx := addr.RadixIndex(v, level)
		b.AddGroup(n.entryPA(idx))
		if e := n.leaves[idx]; e.Present() {
			w.fill(asid, v, level)
			return b.Outcome(e, true, wcc)
		}
		if level == 1 || n.children[idx] == nil {
			// Not mapped.
			return b.Outcome(0, false, wcc)
		}
		n = n.children[idx]
	}
	return b.Outcome(0, false, wcc)
}

// Lookup implements mmu.Lookuper: a functional traversal that resolves
// the translation without walk-cache charges or trace emission, recording
// a plan the next WalkBatch replays.
func (w *Walker) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	if w.planASID != asid {
		w.plans = w.plans[:0]
		w.planPos = 0
		w.planASID = asid
	}
	var p plan
	p.vpn = v
	t, ok := w.table(asid)
	if !ok {
		p.noTable = true
		//lint:allow hotalloc plan queue grows to the batch size once, then recycles
		w.plans = append(w.plans, p)
		return 0, false
	}
	n := t.root
	for level := addr.RadixLevels; ; level-- {
		idx := addr.RadixIndex(v, level)
		p.pas[level-1] = n.entryPA(idx)
		if e := n.leaves[idx]; e.Present() {
			p.leafLevel = int8(level)
			p.reach = int8(level)
			p.entry = e
			break
		}
		if level == 1 || n.children[idx] == nil {
			p.reach = int8(level)
			break
		}
		n = n.children[idx]
	}
	//lint:allow hotalloc plan queue grows to the batch size once, then recycles
	w.plans = append(w.plans, p)
	return p.entry, p.leafLevel != 0
}

// WalkNextInto is WalkInto's batched counterpart: if the next queued plan
// matches (asid, v) it replays the recorded traversal against live PWC
// state; otherwise it falls back to a fresh full walk. ASAP composes it
// the same way it composes WalkInto.
func (w *Walker) WalkNextInto(b *mmu.WalkBuf, asid uint16, v addr.VPN) mmu.Outcome {
	if w.planPos < len(w.plans) && asid == w.planASID && w.plans[w.planPos].vpn == v {
		p := &w.plans[w.planPos]
		w.planPos++
		return w.replay(b, asid, v, p)
	}
	return w.WalkInto(b, asid, v)
}

// replay performs the timing half of a planned walk: the PWC probes and
// fills run against live cache state, the table chain comes from the plan.
// The emitted trace is exactly WalkInto's for the same table state.
func (w *Walker) replay(b *mmu.WalkBuf, asid uint16, v addr.VPN, p *plan) mmu.Outcome {
	if p.noTable {
		return mmu.Outcome{}
	}
	startLevel := addr.RadixLevels
	wcc := mmu.StepCycles
	if w.pde.Lookup(asid, uint64(v)>>9) {
		startLevel = 1
	} else if wcc += mmu.StepCycles; w.pdpte.Lookup(asid, uint64(v)>>18) {
		startLevel = 2
	} else if wcc += mmu.StepCycles; w.pml4e.Lookup(asid, uint64(v)>>27) {
		startLevel = 3
	}
	if ll := int(p.leafLevel); ll != 0 {
		if ll > startLevel {
			// Huge leaf above the PWC-covered level (the silent-descent
			// hit of WalkInto): one fetch, no PWC fill.
			b.AddGroup(p.pas[ll-1])
			return b.Outcome(p.entry, true, wcc)
		}
		for level := startLevel; level >= ll; level-- {
			b.AddGroup(p.pas[level-1])
		}
		w.fill(asid, v, ll)
		return b.Outcome(p.entry, true, wcc)
	}
	r := int(p.reach)
	if r > startLevel {
		// The chain breaks above the fetch region: WalkInto's silent
		// descent returns without emitting a request.
		return b.Outcome(0, false, wcc)
	}
	for level := startLevel; level >= r; level-- {
		b.AddGroup(p.pas[level-1])
	}
	return b.Outcome(0, false, wcc)
}

// WalkBatch implements mmu.BatchWalker: replay the plans recorded by the
// preceding Lookup sequence (falling back to fresh walks on mismatch) and
// drain the plan queue.
func (w *Walker) WalkBatch(asid uint16, vpns []addr.VPN, bufs *mmu.WalkBatchBuf) {
	bufs.Reset(len(vpns))
	for i, v := range vpns {
		bufs.SetOutcome(i, w.WalkNextInto(bufs.Buf(i), asid, v))
	}
	w.FlushPlans()
}

// FlushPlans drains the plan queue after a batch. Composing walkers (ASAP)
// that consume plans through WalkNextInto call this at the end of their
// own WalkBatch.
func (w *Walker) FlushPlans() {
	w.plans = w.plans[:0]
	w.planPos = 0
}

var _ mmu.BatchWalker = (*Walker)(nil)
var _ mmu.Lookuper = (*Walker)(nil)

// fill populates the PWC levels traversed down to (but not including) the
// leaf level.
func (w *Walker) fill(asid uint16, v addr.VPN, leafLevel int) {
	if leafLevel <= 1 {
		w.pde.Insert(asid, uint64(v)>>9)
	}
	if leafLevel <= 2 {
		w.pdpte.Insert(asid, uint64(v)>>18)
	}
	if leafLevel <= 3 {
		w.pml4e.Insert(asid, uint64(v)>>27)
	}
}

var _ mmu.Walker = (*Walker)(nil)
