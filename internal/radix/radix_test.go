package radix

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	tb, err := New(phys.New(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestMapLookup4K(t *testing.T) {
	tb := newTable(t)
	e := pte.New(0xff, addr.Page4K)
	if err := tb.Map(139, e); err != nil {
		t.Fatal(err)
	}
	got, ok := tb.Lookup(139)
	if !ok || got != e {
		t.Fatalf("lookup: ok=%t got=%v", ok, got)
	}
	if _, ok := tb.Lookup(140); ok {
		t.Error("unmapped VPN found")
	}
}

func TestMap2M(t *testing.T) {
	tb := newTable(t)
	e := pte.New(512, addr.Page2M)
	if err := tb.Map(1024, e); err != nil {
		t.Fatal(err)
	}
	for _, v := range []addr.VPN{1024, 1300, 1535} {
		if got, ok := tb.Lookup(v); !ok || got != e {
			t.Errorf("VPN %d missed inside 2M page", v)
		}
	}
	if _, ok := tb.Lookup(1536); ok {
		t.Error("VPN beyond 2M page found")
	}
	if err := tb.Map(1025, pte.New(1, addr.Page2M)); err == nil {
		t.Error("unaligned 2M map accepted")
	}
}

func TestUnmap(t *testing.T) {
	tb := newTable(t)
	tb.Map(7, pte.New(1, addr.Page4K))
	if !tb.Unmap(7) {
		t.Fatal("unmap failed")
	}
	if tb.Unmap(7) {
		t.Error("double unmap succeeded")
	}
	if _, ok := tb.Lookup(7); ok {
		t.Error("unmapped VPN still found")
	}
}

func TestTableBytesGrowWithSpread(t *testing.T) {
	tb := newTable(t)
	base := tb.TableBytes()
	// Two VPNs in distant regions force distinct intermediate tables.
	tb.Map(0, pte.New(1, addr.Page4K))
	tb.Map(addr.VPN(1)<<30, pte.New(2, addr.Page4K))
	if tb.TableBytes() <= base {
		t.Error("spread mappings must allocate more table pages")
	}
}

func TestWalkerSequentialAccesses(t *testing.T) {
	mem := phys.New(64 << 20)
	tb, _ := New(mem)
	tb.Map(139, pte.New(0xff, addr.Page4K))
	w := NewWalker(32)
	w.Attach(1, tb)

	// Cold walk: all four levels fetched sequentially.
	out := w.Walk(1, 139)
	if !out.Found {
		t.Fatal("walk failed")
	}
	if out.Refs() != 4 {
		t.Errorf("cold radix walk made %d refs, want 4", out.Refs())
	}
	for gi := 0; gi < out.NumGroups(); gi++ {
		if len(out.Group(gi)) != 1 {
			t.Error("radix requests must be sequential (groups of 1)")
		}
	}
	// Warm walk: the PDE PWC entry now covers the 2MB region; only the
	// PTE fetch remains.
	out = w.Walk(1, 140)
	if out.Found {
		t.Fatal("VPN 140 should not be mapped")
	}
	tb.Map(140, pte.New(0x100, addr.Page4K))
	out = w.Walk(1, 140)
	if !out.Found || out.Refs() != 1 {
		t.Errorf("warm radix walk made %d refs, want 1 (PWC hit)", out.Refs())
	}
}

func TestWalker2MStopsAtPMD(t *testing.T) {
	mem := phys.New(64 << 20)
	tb, _ := New(mem)
	tb.Map(1024, pte.New(512, addr.Page2M))
	w := NewWalker(32)
	w.Attach(1, tb)

	out := w.Walk(1, 1300)
	if !out.Found {
		t.Fatal("2M walk failed")
	}
	if out.Refs() != 3 {
		t.Errorf("cold 2M walk made %d refs, want 3 (stops at PMD)", out.Refs())
	}
	if out.Entry.Size() != addr.Page2M {
		t.Errorf("size = %s", out.Entry.Size())
	}
	// Warm: PDPTE hit leaves 1 ref.
	out = w.Walk(1, 1400)
	if !out.Found || out.Refs() != 1 {
		t.Errorf("warm 2M walk made %d refs, want 1", out.Refs())
	}
}

func TestWalkerASIDIsolation(t *testing.T) {
	mem := phys.New(64 << 20)
	t1, _ := New(mem)
	t2, _ := New(mem)
	t1.Map(5, pte.New(1, addr.Page4K))
	w := NewWalker(32)
	w.Attach(1, t1)
	w.Attach(2, t2)
	if out := w.Walk(2, 5); out.Found {
		t.Error("walk crossed address spaces")
	}
}

func TestWalkerUnknownASID(t *testing.T) {
	w := NewWalker(32)
	if out := w.Walk(9, 5); out.Found || out.Refs() != 0 {
		t.Error("unknown ASID must produce an empty outcome")
	}
}

func TestPWCMissRatesExposed(t *testing.T) {
	mem := phys.New(64 << 20)
	tb, _ := New(mem)
	for i := 0; i < 1024; i++ {
		tb.Map(addr.VPN(i), pte.New(addr.PPN(i+1), addr.Page4K))
	}
	w := NewWalker(32)
	w.Attach(1, tb)
	for i := 0; i < 1024; i++ {
		w.Walk(1, addr.VPN(i))
	}
	_, _, pde := w.PWCs()
	if pde.HitRate() < 0.9 {
		t.Errorf("sequential walks should hit the PDE cache: %v", pde.HitRate())
	}
}
